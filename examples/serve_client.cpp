// serve_client — protocol driver for lmds_serve, speaking either transport:
// the newline-delimited JSON/TCP line protocol (default) or, with --http,
// the HTTP/1.1 front-end — same verbs, same response bodies.
//
// The --demo flow is the CI smoke test: a mixed-solver batch (three solvers
// over the same generated graph set), a stats probe, and optional cache
// snapshot verbs, so one client invocation exercises solve + admin paths
// end-to-end. The --handles flow is the protocol-v2 smoke: put_graph each
// demo graph once, solve by handle, then solve by handle again — the repeat
// must be all cache hits. The --patch flow is the v2.1 smoke: put a grid,
// solve it, patch_graph a small edit batch onto it, then solve the derived
// handle twice — first incrementally (ball-granular re-solve), then from
// cache.
//
//   $ ./serve_client --port 7411 --demo --save cache.lmds --shutdown
//   $ ./serve_client --port 7411 --demo --expect-hits       # warm restart
//   $ ./serve_client --port 7412 --http --handles --expect-hits --shutdown
//
// --expect-hits makes the run fail (exit 3) unless the demo/handles batches
// hit the server's response cache at least once — the assertion behind "a
// restarted server with a snapshot answers replayed batches from cache" and
// "a handle upload makes the repeat solve free".
//
// --namespace NS runs every request in cache namespace NS (open_session on
// the line protocol, the X-Lmds-Namespace header over HTTP).
//
// Exit codes: 0 success; 1 connection/protocol failure; 2 usage;
//             3 --expect-hits saw zero cache hits.

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"

namespace {

using namespace lmds;

int usage() {
  std::fprintf(stderr,
               "usage: serve_client [--host H] --port P [--http] [--namespace NS]\n"
               "                    [--demo] [--handles] [--patch] [--expect-hits]\n"
               "                    [--solvers] [--stats] [--save FILE] [--load FILE]\n"
               "                    [--send JSON_LINE] [--shutdown]\n"
               "Actions run in the order listed above; --send may repeat.\n"
               "--http speaks the HTTP front-end (lmds_serve --http-port);\n"
               "--save/--load/--send are line-protocol only.\n");
  return 2;
}

// The connection itself lives in src/server/client.hpp (ProtocolClient):
// one class abstracting both transports behind "send this verb with these
// JSON object members, give me the parsed response body". This file is only
// the flag parsing and the demo/handles flows.
using server::ProtocolClient;
using server::require_ok;

// The demo workload: small instances from the paper's generator families —
// enough variety that a mixed-solver pass touches twin removal, cuts and the
// brute-force step, small enough to finish in milliseconds.
std::vector<graph::Graph> demo_graphs() {
  std::vector<graph::Graph> gs;
  gs.push_back(graph::gen::path(12));
  gs.push_back(graph::gen::cycle(9));
  gs.push_back(graph::gen::grid(4, 5));
  gs.push_back(graph::gen::theta_chain(5, 3));
  gs.push_back(graph::gen::clique_with_pendants(9));
  gs.push_back(graph::gen::spider(4, 3));
  return gs;
}

// The three-solver pass set both --demo and --handles run.
struct Pass {
  const char* solver;
  const char* options;
};
constexpr Pass kPasses[] = {
    {"algorithm1", "{\"t\":5,\"radius1\":4,\"radius2\":4}"},
    {"theorem44", "{}"},
    {"greedy", "{}"},
};

// Runs one solve pass and returns the pass's cache hits. The patch flow runs
// with measure_ratio off: the ratio measurement is part of the cache key, and
// the incremental path only fires when the child solve's key matches the key
// the parent's response was cached under.
unsigned long long run_pass(ProtocolClient& client, const Pass& pass,
                            const std::string& graphs_json, bool measure_ratio = true) {
  const std::string members = std::string("\"solver\":\"") + pass.solver +
                              "\",\"options\":" + pass.options +
                              (measure_ratio ? ",\"measure_ratio\":true" : "") +
                              ",\"graphs\":" + graphs_json;
  const auto response = client.exchange("solve", members);
  require_ok(response, std::string("solve ") + pass.solver);
  const auto& responses = response.find("responses")->as_array();
  std::size_t total_size = 0;
  for (const auto& r : responses) {
    if (!r.find("valid")->as_bool()) {
      throw std::runtime_error(std::string(pass.solver) + " returned invalid solution");
    }
    total_size += r.find("solution")->as_array().size();
  }
  const server::JsonValue* diag = response.find("diag");
  const auto hits = static_cast<unsigned long long>(diag->find("cache_hits")->as_int());
  std::string incremental;
  if (const server::JsonValue* inc = diag->find("incremental_solves")) {
    incremental = "  incremental=" + std::to_string(inc->as_int()) +
                  " dirty=" + std::to_string(diag->find("incremental_dirty")->as_int());
  }
  std::printf("solve %-12s %zu graphs  Σ|S|=%-4zu  hits=%llu misses=%lld%s\n", pass.solver,
              responses.size(), total_size, hits,
              static_cast<long long>(diag->find("cache_misses")->as_int()),
              incremental.c_str());
  return hits;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  bool http = false, demo = false, handles = false, patch = false, expect_hits = false;
  bool solvers = false, stats = false, shutdown = false;
  std::string ns, save_path, load_path;
  std::vector<std::string> raw_lines;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--host" && value) {
      host = value;
      ++i;
    } else if (arg == "--port" && value) {
      const auto p = api::parse_param_value(value, api::ParamValue::Type::Int);
      if (!p || p->as_int() < 1 || p->as_int() > 65535) {
        std::fprintf(stderr, "serve_client: bad port '%s'\n", value);
        return usage();
      }
      port = p->as_int();
      ++i;
    } else if (arg == "--http") {
      http = true;
    } else if (arg == "--namespace" && value) {
      ns = value;
      ++i;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--handles") {
      handles = true;
    } else if (arg == "--patch") {
      patch = true;
    } else if (arg == "--expect-hits") {
      expect_hits = true;
    } else if (arg == "--solvers") {
      solvers = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--save" && value) {
      save_path = value;
      ++i;
    } else if (arg == "--load" && value) {
      load_path = value;
      ++i;
    } else if (arg == "--send" && value) {
      raw_lines.emplace_back(value);
      ++i;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      std::fprintf(stderr, "serve_client: bad flag: %s\n", arg.c_str());
      return usage();
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "serve_client: --port is required\n");
    return usage();
  }
  if (http && (!save_path.empty() || !load_path.empty() || !raw_lines.empty())) {
    std::fprintf(stderr, "serve_client: --save/--load/--send are line-protocol only\n");
    return usage();
  }

  std::unique_ptr<ProtocolClient> connection;
  try {
    connection = std::make_unique<ProtocolClient>(host, port, http, ns);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_client: %s\n", e.what());
    return 1;
  }
  ProtocolClient& client = *connection;
  unsigned long long total_hits = 0;

  try {
    client.open_session();

    if (solvers) {
      const auto response = client.exchange("solvers", "");
      require_ok(response, "solvers");
      for (const auto& spec : response.find("solvers")->as_array()) {
        std::printf("solver %-15s %s\n", spec.find("name")->as_string().c_str(),
                    spec.find("summary")->as_string().c_str());
      }
    }

    const std::vector<graph::Graph> gs =
        demo || handles ? demo_graphs() : std::vector<graph::Graph>();

    if (demo) {
      std::string graphs_json = "[";
      for (std::size_t i = 0; i < gs.size(); ++i) {
        if (i) graphs_json += ',';
        graphs_json += server::encode_graph_json(gs[i]);
      }
      graphs_json += ']';
      // One request per solver over the same graphs: a mixed-solver batch
      // from the cache's point of view (distinct key per solver).
      for (const Pass& pass : kPasses) total_hits += run_pass(client, pass, graphs_json);
    }

    if (handles) {
      // Protocol v2: upload once, solve by handle, repeat — the repeat must
      // be answered from cache without re-sending a single edge.
      std::string handles_json = "[";
      for (std::size_t i = 0; i < gs.size(); ++i) {
        const auto response = client.put_graph(server::encode_graph_json(gs[i]));
        require_ok(response, "put_graph");
        if (i) handles_json += ',';
        handles_json += '"' + response.find("handle")->as_string() + '"';
      }
      handles_json += ']';
      std::printf("put_graph: %zu graphs uploaded\n", gs.size());
      for (const Pass& pass : kPasses) (void)run_pass(client, pass, handles_json);
      for (const Pass& pass : kPasses) total_hits += run_pass(client, pass, handles_json);
    }

    if (patch) {
      // Protocol v2.1: upload a grid, solve it cold, derive a child handle
      // with a three-edit patch, then solve the child twice. The first child
      // solve must be answered incrementally (ball-granular re-solve over the
      // edited balls only), the second from cache.
      const auto put = client.put_graph(server::encode_graph_json(graph::gen::grid(6, 6)));
      require_ok(put, "put_graph");
      const std::string parent = put.find("handle")->as_string();
      const Pass local_pass{"theorem44", "{}"};
      (void)run_pass(client, local_pass, "[\"" + parent + "\"]", /*measure_ratio=*/false);
      graph::GraphPatch edits;
      edits.add = {{0, 7}, {14, 21}};
      edits.del = {{0, 1}};
      const auto patched = client.patch_graph(parent, server::encode_patch_members(edits));
      require_ok(patched, "patch_graph");
      const std::string child = patched.find("handle")->as_string();
      std::printf("patch_graph: %s -> %s (n=%lld m=%lld)\n", parent.c_str(), child.c_str(),
                  static_cast<long long>(patched.find("n")->as_int()),
                  static_cast<long long>(patched.find("m")->as_int()));
      (void)run_pass(client, local_pass, "[\"" + child + "\"]", /*measure_ratio=*/false);
      total_hits += run_pass(client, local_pass, "[\"" + child + "\"]", /*measure_ratio=*/false);
    }

    for (const std::string& line : raw_lines) {
      const auto response = client.exchange_line(line);
      const server::JsonValue* ok = response.find("ok");
      std::printf("send -> ok=%s\n", ok && ok->as_bool() ? "true" : "false");
    }

    if (stats) {
      const auto response = client.exchange("stats", "");
      require_ok(response, "stats");
      const server::JsonValue* cache = response.find("cache");
      std::printf("stats: cache hits=%lld misses=%lld size=%lld/%lld uptime=%.1fs\n",
                  static_cast<long long>(cache->find("hits")->as_int()),
                  static_cast<long long>(cache->find("misses")->as_int()),
                  static_cast<long long>(cache->find("size")->as_int()),
                  static_cast<long long>(cache->find("capacity")->as_int()),
                  response.find("server")->find("uptime_seconds")->as_double());
    }

    if (!save_path.empty()) {
      std::string members = "\"path\":";
      server::json_append_string(members, save_path);
      const auto response = client.exchange("save_cache", members);
      require_ok(response, "save_cache");
      std::printf("save_cache %s: %lld entries\n", save_path.c_str(),
                  static_cast<long long>(response.find("entries")->as_int()));
    }

    if (!load_path.empty()) {
      std::string members = "\"path\":";
      server::json_append_string(members, load_path);
      const auto response = client.exchange("load_cache", members);
      require_ok(response, "load_cache");
      std::printf("load_cache %s: %lld entries\n", load_path.c_str(),
                  static_cast<long long>(response.find("entries")->as_int()));
    }

    if (shutdown) {
      const auto response = client.exchange("shutdown", "");
      require_ok(response, "shutdown");
      std::printf("shutdown acknowledged\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_client: %s\n", e.what());
    return 1;
  }

  if (expect_hits && total_hits == 0) {
    std::fprintf(stderr, "serve_client: expected cache hits > 0, saw none\n");
    return 3;
  }
  return 0;
}
