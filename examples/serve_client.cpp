// serve_client — protocol driver for lmds_serve. Connects over TCP, sends
// newline-delimited JSON requests, prints one summary line per response.
// The --demo flow is the CI smoke test: a mixed-solver batch (three solvers
// over the same generated graph set), a stats probe, and optional cache
// snapshot verbs, so one client invocation exercises solve + admin paths
// end-to-end.
//
//   $ ./serve_client --port 7411 --demo --save cache.lmds --shutdown
//   $ ./serve_client --port 7411 --demo --expect-hits       # warm restart
//
// --expect-hits makes the run fail (exit 3) unless the demo batches hit the
// server's response cache at least once — the assertion behind "a restarted
// server with a snapshot answers replayed batches from cache".
//
// Exit codes: 0 success; 1 connection/protocol failure; 2 usage;
//             3 --expect-hits saw zero cache hits.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "server/json.hpp"
#include "server/net.hpp"

namespace {

using namespace lmds;

int usage() {
  std::fprintf(stderr,
               "usage: serve_client [--host H] --port P [--demo] [--expect-hits]\n"
               "                    [--solvers] [--stats] [--save FILE] [--load FILE]\n"
               "                    [--send JSON_LINE] [--shutdown]\n"
               "Actions run in the order listed above; --send may repeat.\n");
  return 2;
}

// One request/response exchange; returns the parsed response object.
server::JsonValue exchange(int fd, server::LineReader& reader, const std::string& line) {
  if (!server::send_all(fd, line + "\n")) {
    throw std::runtime_error("send failed (server closed the connection?)");
  }
  const auto response = reader.next_line(64u << 20);
  if (!response) throw std::runtime_error("server closed the connection mid-exchange");
  return server::json_parse(*response);
}

void require_ok(const server::JsonValue& response, const std::string& what) {
  const server::JsonValue* ok = response.find("ok");
  if (ok && ok->as_bool()) return;
  const server::JsonValue* error = response.find("error");
  throw std::runtime_error(what + " failed: " +
                           (error ? error->as_string() : std::string("no error field")));
}

std::string encode_graph(const graph::Graph& g) {
  std::string out = "{\"n\":" + std::to_string(g.num_vertices()) + ",\"edges\":[";
  bool first = true;
  for (const auto& [u, v] : g.edges()) {
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
  }
  out += "]}";
  return out;
}

// The demo workload: small instances from the paper's generator families —
// enough variety that a mixed-solver pass touches twin removal, cuts and the
// brute-force step, small enough to finish in milliseconds.
std::vector<graph::Graph> demo_graphs() {
  std::vector<graph::Graph> gs;
  gs.push_back(graph::gen::path(12));
  gs.push_back(graph::gen::cycle(9));
  gs.push_back(graph::gen::grid(4, 5));
  gs.push_back(graph::gen::theta_chain(5, 3));
  gs.push_back(graph::gen::clique_with_pendants(9));
  gs.push_back(graph::gen::spider(4, 3));
  return gs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  bool demo = false, expect_hits = false, solvers = false, stats = false, shutdown = false;
  std::string save_path, load_path;
  std::vector<std::string> raw_lines;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--host" && value) {
      host = value;
      ++i;
    } else if (arg == "--port" && value) {
      const auto p = api::parse_param_value(value, api::ParamValue::Type::Int);
      if (!p || p->as_int() < 1 || p->as_int() > 65535) {
        std::fprintf(stderr, "serve_client: bad port '%s'\n", value);
        return usage();
      }
      port = p->as_int();
      ++i;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--expect-hits") {
      expect_hits = true;
    } else if (arg == "--solvers") {
      solvers = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--save" && value) {
      save_path = value;
      ++i;
    } else if (arg == "--load" && value) {
      load_path = value;
      ++i;
    } else if (arg == "--send" && value) {
      raw_lines.emplace_back(value);
      ++i;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      std::fprintf(stderr, "serve_client: bad flag: %s\n", arg.c_str());
      return usage();
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "serve_client: --port is required\n");
    return usage();
  }

  const int fd = server::tcp_connect(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "serve_client: cannot connect to %s:%d: %s\n", host.c_str(), port,
                 std::strerror(errno));
    return 1;
  }
  server::LineReader reader(fd);
  unsigned long long total_hits = 0;

  try {
    if (solvers) {
      const auto response = exchange(fd, reader, "{\"op\":\"solvers\"}");
      require_ok(response, "solvers");
      for (const auto& spec : response.find("solvers")->as_array()) {
        std::printf("solver %-15s %s\n", spec.find("name")->as_string().c_str(),
                    spec.find("summary")->as_string().c_str());
      }
    }

    if (demo) {
      const std::vector<graph::Graph> gs = demo_graphs();
      std::string graphs_json = "[";
      for (std::size_t i = 0; i < gs.size(); ++i) {
        if (i) graphs_json += ',';
        graphs_json += encode_graph(gs[i]);
      }
      graphs_json += ']';

      // One request per solver over the same graphs: a mixed-solver batch
      // from the cache's point of view (distinct key per solver).
      const struct {
        const char* solver;
        const char* options;
      } passes[] = {
          {"algorithm1", "{\"t\":5,\"radius1\":4,\"radius2\":4}"},
          {"theorem44", "{}"},
          {"greedy", "{}"},
      };
      for (const auto& pass : passes) {
        const std::string line = std::string("{\"op\":\"solve\",\"solver\":\"") +
                                 pass.solver + "\",\"options\":" + pass.options +
                                 ",\"measure_ratio\":true,\"graphs\":" + graphs_json + "}";
        const auto response = exchange(fd, reader, line);
        require_ok(response, std::string("solve ") + pass.solver);
        const auto& responses = response.find("responses")->as_array();
        std::size_t total_size = 0;
        for (const auto& r : responses) {
          if (!r.find("valid")->as_bool()) {
            throw std::runtime_error(std::string(pass.solver) + " returned invalid solution");
          }
          total_size += r.find("solution")->as_array().size();
        }
        const server::JsonValue* diag = response.find("diag");
        const auto hits = static_cast<unsigned long long>(diag->find("cache_hits")->as_int());
        total_hits += hits;
        std::printf("solve %-12s %zu graphs  Σ|S|=%-4zu  hits=%llu misses=%lld\n",
                    pass.solver, responses.size(), total_size, hits,
                    static_cast<long long>(diag->find("cache_misses")->as_int()));
      }
    }

    for (const std::string& line : raw_lines) {
      const auto response = exchange(fd, reader, line);
      const server::JsonValue* ok = response.find("ok");
      std::printf("send -> ok=%s\n", ok && ok->as_bool() ? "true" : "false");
    }

    if (stats) {
      const auto response = exchange(fd, reader, "{\"op\":\"stats\"}");
      require_ok(response, "stats");
      const server::JsonValue* cache = response.find("cache");
      std::printf("stats: cache hits=%lld misses=%lld size=%lld/%lld\n",
                  static_cast<long long>(cache->find("hits")->as_int()),
                  static_cast<long long>(cache->find("misses")->as_int()),
                  static_cast<long long>(cache->find("size")->as_int()),
                  static_cast<long long>(cache->find("capacity")->as_int()));
    }

    if (!save_path.empty()) {
      std::string line = "{\"op\":\"save_cache\",\"path\":";
      server::json_append_string(line, save_path);
      line += '}';
      const auto response = exchange(fd, reader, line);
      require_ok(response, "save_cache");
      std::printf("save_cache %s: %lld entries\n", save_path.c_str(),
                  static_cast<long long>(response.find("entries")->as_int()));
    }

    if (!load_path.empty()) {
      std::string line = "{\"op\":\"load_cache\",\"path\":";
      server::json_append_string(line, load_path);
      line += '}';
      const auto response = exchange(fd, reader, line);
      require_ok(response, "load_cache");
      std::printf("load_cache %s: %lld entries\n", load_path.c_str(),
                  static_cast<long long>(response.find("entries")->as_int()));
    }

    if (shutdown) {
      const auto response = exchange(fd, reader, "{\"op\":\"shutdown\"}");
      require_ok(response, "shutdown");
      std::printf("shutdown acknowledged\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_client: %s\n", e.what());
    server::close_fd(fd);
    return 1;
  }
  server::close_fd(fd);

  if (expect_hits && total_hits == 0) {
    std::fprintf(stderr, "serve_client: expected cache hits > 0, saw none\n");
    return 3;
  }
  return 0;
}
