// Wireless sensor network scenario (the application the paper's
// introduction motivates): a deployed network must elect a small set of
// always-on coordinator nodes such that every sleeping sensor has an awake
// neighbour to wake it up — exactly a dominating set. Coordinators burn
// energy, so fewer is better; the election must run distributedly in few
// rounds because the network has no central controller.
//
// The deployment is a cactus of fans/strips/theta bundles (a certified
// K_{2,6}-minor-free topology: chains of relays with parallel redundant
// links, cluster fans around gateways). Every election runs through the
// api::Registry surface: measure_traffic routes the distributed algorithms
// through the LOCAL-model message-passing simulator, measure_ratio scores
// them against the exact optimum; the centralized greedy reference is just
// another registry solver.
//
//   $ ./sensor_network [seed]

#include <cstdio>
#include <cstdlib>
#include <random>

#include "api/registry.hpp"
#include "ding/generators.hpp"

int main(int argc, char** argv) {
  using namespace lmds;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  std::mt19937_64 rng(seed);

  ding::CactusConfig topology;
  topology.pieces = 14;
  topology.max_piece_size = 12;
  topology.t = 6;
  const graph::Graph g = ding::random_cactus_of_structures(topology, rng);
  std::printf("sensor deployment: %s (certified K_{2,%d}-minor-free), seed %llu\n\n",
              g.summary().c_str(), topology.t, static_cast<unsigned long long>(seed));

  const auto report = [&](const char* name, const api::Response& res) {
    const double awake = 100.0 * static_cast<double>(res.solution.size()) / g.num_vertices();
    const int rounds = res.diag.traffic_measured ? res.diag.traffic.rounds : -1;
    std::printf("%-28s %4zu awake (%5.1f%%)  ratio %-16s rounds %3d  msgs %8llu  %s\n", name,
                res.solution.size(), awake, res.ratio.to_string().c_str(), rounds,
                static_cast<unsigned long long>(res.diag.traffic.messages),
                res.valid ? "valid" : "INVALID");
  };

  const auto& registry = api::Registry::instance();
  {
    api::Request req;
    req.graph = &g;
    req.measure_traffic = true;  // distributed execution via the simulator
    req.measure_ratio = true;
    report("Theorem 4.4 (3-round rule)", registry.run("theorem44", req));

    req.options["t"] = topology.t;
    req.options["radius1"] = 4;
    req.options["radius2"] = 4;
    report("Algorithm 1 (Theorem 4.1)", registry.run("algorithm1", req));
  }
  {
    // Centralized greedy — what a base station could do with a full map;
    // the quality target the distributed algorithms chase.
    api::Request req;
    req.graph = &g;
    req.measure_ratio = true;
    report("centralized greedy", registry.run("greedy", req));
  }
  std::printf(
      "\nrounds = synchronous LOCAL rounds (a -1 marks centralized references);\n"
      "messages = point-to-point messages the simulator actually delivered.\n");
  return 0;
}
