// Wireless sensor network scenario (the application the paper's
// introduction motivates): a deployed network must elect a small set of
// always-on coordinator nodes such that every sleeping sensor has an awake
// neighbour to wake it up — exactly a dominating set. Coordinators burn
// energy, so fewer is better; the election must run distributedly in few
// rounds because the network has no central controller.
//
// The deployment is a cactus of fans/strips/theta bundles (a certified
// K_{2,6}-minor-free topology: chains of relays with parallel redundant
// links, cluster fans around gateways). We run the paper's algorithms
// through the LOCAL-model simulator and report rounds, messages and the
// fraction of nodes kept awake.
//
//   $ ./sensor_network [seed]

#include <cstdio>
#include <cstdlib>

#include "core/algorithm1.hpp"
#include "core/metrics.hpp"
#include "core/theorem44.hpp"
#include "ding/generators.hpp"
#include "local/simulator.hpp"
#include "solve/greedy.hpp"
#include "solve/validate.hpp"

int main(int argc, char** argv) {
  using namespace lmds;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  std::mt19937_64 rng(seed);

  ding::CactusConfig topology;
  topology.pieces = 14;
  topology.max_piece_size = 12;
  topology.t = 6;
  const graph::Graph g = ding::random_cactus_of_structures(topology, rng);
  std::printf("sensor deployment: %s (certified K_{2,%d}-minor-free), seed %llu\n\n",
              g.summary().c_str(), topology.t, static_cast<unsigned long long>(seed));

  const auto report = [&](const char* name, const std::vector<graph::Vertex>& coordinators,
                          int rounds, std::uint64_t messages) {
    const auto ratio = core::measure_mds_ratio(g, coordinators);
    const double awake = 100.0 * static_cast<double>(coordinators.size()) / g.num_vertices();
    std::printf("%-28s %4zu awake (%5.1f%%)  ratio %-16s rounds %3d  msgs %8llu  %s\n", name,
                coordinators.size(), awake, ratio.to_string().c_str(), rounds,
                static_cast<unsigned long long>(messages),
                solve::is_dominating_set(g, coordinators) ? "valid" : "INVALID");
  };

  // Distributed executions through the message-passing simulator with random
  // 48-bit node identifiers, as in the model.
  const local::Network net = local::Network::with_random_ids(g, rng);

  {
    const auto result = core::theorem44_mds_local(net);
    report("Theorem 4.4 (3-round rule)", result.solution, result.traffic.rounds,
           result.traffic.messages);
  }
  {
    core::Algorithm1Config cfg;
    cfg.t = topology.t;
    cfg.radius1 = 4;
    cfg.radius2 = 4;
    const auto result = core::algorithm1_local(net, cfg);
    report("Algorithm 1 (Theorem 4.1)", result.dominating_set, result.diag.rounds,
           result.diag.traffic.messages);
  }
  {
    // Centralized greedy — what a base station could do with a full map;
    // the quality target the distributed algorithms chase.
    const auto greedy = solve::greedy_mds(g);
    report("centralized greedy", greedy, -1, 0);
  }
  std::printf(
      "\nrounds = synchronous LOCAL rounds (a -1 marks centralized references);\n"
      "messages = point-to-point messages the simulator actually delivered.\n");
  return 0;
}
