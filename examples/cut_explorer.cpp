// Structure explorer: dissects a graph with the library's connectivity
// substrate — block-cut tree, SPQR decomposition, r-local cuts at several
// radii, interesting vertices, and the §5.3 interesting-2-cut forest — then
// runs every solver the api::Registry knows on it, so the structural view
// and the algorithmic outcomes sit side by side.
// Reads an edge list from stdin, or demonstrates on a built-in instance.
//
//   $ ./cut_explorer < graph.txt
//   $ ./cut_explorer            # built-in demo graph

#include <cstdio>
#include <iostream>
#include <unistd.h>

#include "api/registry.hpp"
#include "cuts/block_cut.hpp"
#include "cuts/interesting.hpp"
#include "cuts/local_cuts.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/hash.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "spqr/cut_forest.hpp"
#include "spqr/spqr_tree.hpp"

int main() {
  using namespace lmds;

  graph::Graph g;
  if (isatty(STDIN_FILENO)) {
    // Demo: a C8 with a chord plus a pendant fan — shows every node type.
    graph::GraphBuilder b(8);
    b.add_cycle({0, 1, 2, 3, 4, 5, 6, 7});
    b.add_edge(0, 4);
    for (graph::Vertex p = 8; p < 12; ++p) b.add_edge(2, p);
    b.add_path({8, 9, 10, 11});
    g = b.build();
    std::printf("no stdin graph; using the built-in demo %s\n", g.summary().c_str());
  } else {
    g = graph::read_edge_list(std::cin);
    std::printf("read %s\n", g.summary().c_str());
  }
  std::printf("fingerprint %016llx (graph_hash — the response-cache key component)\n",
              static_cast<unsigned long long>(graph::graph_hash(g)));

  std::printf("\n== block-cut tree ==\n");
  const auto bct = cuts::block_cut_tree(g);
  std::printf("%d blocks, %d cut vertices\n", bct.num_blocks(), bct.num_cut_vertices());
  for (int b = 0; b < bct.num_blocks(); ++b) {
    std::printf("  block %d:", b);
    for (graph::Vertex v : bct.blocks[static_cast<std::size_t>(b)]) std::printf(" %d", v);
    std::printf("\n");
  }

  std::printf("\n== SPQR decomposition (per biconnected block) ==\n");
  for (int bi = 0; bi < bct.num_blocks(); ++bi) {
    const auto& block = bct.blocks[static_cast<std::size_t>(bi)];
    if (block.size() < 3) continue;
    const auto sub = graph::induced_subgraph(g, block);
    const auto tree = spqr::spqr_tree(sub.graph);
    std::printf("block %d: %d SPQR nodes (", bi, tree.num_nodes());
    std::printf("%zu S, %zu P, %zu R)\n", tree.nodes_of_type(spqr::NodeType::kS).size(),
                tree.nodes_of_type(spqr::NodeType::kP).size(),
                tree.nodes_of_type(spqr::NodeType::kR).size());
  }

  std::printf("\n== r-local cuts ==\n");
  for (const int r : {1, 2, 3, g.num_vertices()}) {
    const auto ones = cuts::local_one_cuts(g, r);
    const auto interesting = cuts::interesting_vertices(g, r);
    std::printf("r = %-3d  local 1-cuts: %3zu   interesting vertices: %3zu\n", r, ones.size(),
                interesting.size());
  }

  std::printf("\n== interesting-2-cut forest (Proposition 5.8) ==\n");
  const auto forest = spqr::interesting_cut_forest(g);
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("P%zu:", i + 1);
    for (const cuts::VertexPair p : forest.families[i]) std::printf(" {%d,%d}", p.u, p.v);
    std::printf("\n");
  }

  // How the structure plays out algorithmically: every registered solver on
  // this graph, through the uniform Request -> Response surface. The exact
  // references are skipped on large inputs (branch & bound).
  std::printf("\n== every registered solver on this graph ==\n");
  const auto& registry = api::Registry::instance();
  for (const api::SolverSpec* spec : registry.specs()) {
    if (spec->name.rfind("exact", 0) == 0 && g.num_vertices() > 60) {
      std::printf("%-15s (skipped: n > 60)\n", spec->name.c_str());
      continue;
    }
    api::Request req;
    req.graph = &g;
    const api::Response res = registry.run(spec->name, req);
    std::printf("%-15s (%s) |S| = %3zu  %s", spec->name.c_str(),
                std::string(to_string(spec->problem)).c_str(), res.solution.size(),
                res.valid ? "valid" : "INVALID");
    if (res.diag.rounds >= 0) std::printf("  rounds %d", res.diag.rounds);
    std::printf("\n");
  }

  std::printf("\nDOT of the input (pipe to `dot -Tpng`):\n%s", graph::to_dot(g).c_str());
  return 0;
}
