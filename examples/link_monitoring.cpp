// Link monitoring with vertex covers: place probes on switches so that
// every link has a probing endpoint — a minimum vertex cover. The paper
// extends both of its results to MVC; this example runs the 3-round
// t-approximation (Theorem 4.4) and the Algorithm-1 variant (all local
// 2-cuts + per-component brute force) on a redundant backbone topology,
// all three solvers (exact reference included) through api::Registry.
//
//   $ ./link_monitoring [links] [parallel]

#include <cstdio>
#include <cstdlib>

#include "api/registry.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace lmds;
  const int links = argc > 1 ? std::atoi(argv[1]) : 7;
  const int parallel = argc > 2 ? std::atoi(argv[2]) : 4;
  const int t = parallel + 1;

  // Backbone: a chain of switch sites, consecutive sites joined through
  // `parallel` redundant relays (theta chain — K_{2,t}-minor-free).
  const graph::Graph g = graph::gen::theta_chain(links, parallel);
  std::printf("backbone: %s, K_{2,%d}-minor-free (%d sites, %d relays/link)\n\n",
              g.summary().c_str(), t, links + 1, parallel);

  const auto& registry = api::Registry::instance();

  api::Request req;
  req.graph = &g;
  const api::Response exact = registry.run("exact-mvc", req);
  std::printf("exact MVC: %zu probes\n\n", exact.solution.size());

  req.measure_ratio = true;
  {
    const api::Response res = registry.run("theorem44-mvc", req);
    std::printf("Theorem 4.4 MVC (3 rounds, guarantee %d-approx):  %3zu probes  ratio %s  %s\n",
                t, res.solution.size(), res.ratio.to_string().c_str(),
                res.valid ? "valid" : "INVALID");
  }
  {
    req.options["t"] = t;
    req.options["radius1"] = 4;
    req.options["radius2"] = 4;
    const api::Response res = registry.run("algorithm1-mvc", req);
    std::printf("Algorithm 1 MVC (%2d rounds, O(1)-approx):         %3zu probes  ratio %s  %s\n",
                res.diag.rounds, res.solution.size(), res.ratio.to_string().c_str(),
                res.valid ? "valid" : "INVALID");
    std::printf("  breakdown: %zu local 1-cut vertices, %zu local 2-cut vertices, "
                "%zu brute-forced\n",
                res.diag.one_cuts.size(), res.diag.two_cut_vertices.size(),
                res.diag.brute_forced.size());
  }

  std::printf("\nNote the trade-off the paper's Table 1 row pair captures: the 3-round rule\n"
              "pays a factor that grows with the redundancy t, the Algorithm-1 variant\n"
              "stays near-optimal at the cost of more rounds.\n");
  return 0;
}
