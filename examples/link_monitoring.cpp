// Link monitoring with vertex covers: place probes on switches so that
// every link has a probing endpoint — a minimum vertex cover. The paper
// extends both of its results to MVC; this example runs the 3-round
// t-approximation (Theorem 4.4) and the Algorithm-1 variant (all local
// 2-cuts + per-component brute force) on a redundant backbone topology.
//
//   $ ./link_monitoring [links] [parallel]

#include <cstdio>
#include <cstdlib>

#include "core/algorithm1.hpp"
#include "core/metrics.hpp"
#include "core/mvc.hpp"
#include "core/theorem44.hpp"
#include "graph/generators.hpp"
#include "solve/exact_mvc.hpp"
#include "solve/validate.hpp"

int main(int argc, char** argv) {
  using namespace lmds;
  const int links = argc > 1 ? std::atoi(argv[1]) : 7;
  const int parallel = argc > 2 ? std::atoi(argv[2]) : 4;
  const int t = parallel + 1;

  // Backbone: a chain of switch sites, consecutive sites joined through
  // `parallel` redundant relays (theta chain — K_{2,t}-minor-free).
  const graph::Graph g = graph::gen::theta_chain(links, parallel);
  std::printf("backbone: %s, K_{2,%d}-minor-free (%d sites, %d relays/link)\n\n",
              g.summary().c_str(), t, links + 1, parallel);

  const auto exact = solve::exact_mvc(g);
  std::printf("exact MVC: %zu probes\n\n", exact.size());

  {
    const auto result = core::theorem44_mvc(g);
    const auto ratio = core::measure_mvc_ratio(g, result.solution);
    std::printf("Theorem 4.4 MVC (3 rounds, guarantee %d-approx):  %3zu probes  ratio %s  %s\n",
                t, result.solution.size(), ratio.to_string().c_str(),
                solve::is_vertex_cover(g, result.solution) ? "valid" : "INVALID");
  }
  {
    core::Algorithm1Config cfg;
    cfg.t = t;
    cfg.radius1 = 4;
    cfg.radius2 = 4;
    const auto result = core::algorithm1_mvc(g, cfg);
    const auto ratio = core::measure_mvc_ratio(g, result.vertex_cover);
    std::printf("Algorithm 1 MVC (%2d rounds, O(1)-approx):         %3zu probes  ratio %s  %s\n",
                result.diag.rounds, result.vertex_cover.size(), ratio.to_string().c_str(),
                solve::is_vertex_cover(g, result.vertex_cover) ? "valid" : "INVALID");
    std::printf("  breakdown: %zu local 1-cut vertices, %zu local 2-cut vertices, "
                "%zu brute-forced\n",
                result.diag.one_cuts.size(), result.diag.two_cut_vertices.size(),
                result.diag.brute_forced.size());
  }

  std::printf("\nNote the trade-off the paper's Table 1 row pair captures: the 3-round rule\n"
              "pays a factor that grows with the redundancy t, the Algorithm-1 variant\n"
              "stays near-optimal at the cost of more rounds.\n");
  return 0;
}
