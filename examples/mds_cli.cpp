// Command-line driver: run any of the library's dominating-set / vertex-
// cover algorithms on an edge-list graph from a file or stdin.
//
//   usage: mds_cli <algorithm> [file] [--t N] [--r1 N] [--r2 N] [--quiet]
//
//   algorithms: algorithm1 | algorithm1-mvc | theorem44 | theorem44-mvc |
//               greedy | exact | exact-mvc | ksv | take-all | tree-rule
//
//   $ ./mds_cli algorithm1 graph.txt --t 5 --r1 4 --r2 4
//   $ ./mds_cli theorem44 < graph.txt

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/algorithm1.hpp"
#include "core/baselines.hpp"
#include "core/metrics.hpp"
#include "core/mvc.hpp"
#include "core/theorem44.hpp"
#include "graph/io.hpp"
#include "solve/exact_mds.hpp"
#include "solve/exact_mvc.hpp"
#include "solve/greedy.hpp"
#include "solve/validate.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mds_cli <algorithm> [file] [--t N] [--r1 N] [--r2 N] [--quiet]\n"
               "algorithms: algorithm1 | algorithm1-mvc | theorem44 | theorem44-mvc |\n"
               "            greedy | exact | exact-mvc | ksv | take-all | tree-rule\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lmds;
  if (argc < 2) return usage();
  const std::string algorithm = argv[1];

  std::string file;
  int t = 5;
  int r1 = 4;
  int r2 = 4;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--t" && i + 1 < argc) {
      t = std::atoi(argv[++i]);
    } else if (arg == "--r1" && i + 1 < argc) {
      r1 = std::atoi(argv[++i]);
    } else if (arg == "--r2" && i + 1 < argc) {
      r2 = std::atoi(argv[++i]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] != '-') {
      file = arg;
    } else {
      return usage();
    }
  }

  graph::Graph g;
  try {
    if (file.empty()) {
      g = graph::read_edge_list(std::cin);
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "mds_cli: cannot open %s\n", file.c_str());
        return 1;
      }
      g = graph::read_edge_list(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mds_cli: %s\n", e.what());
    return 1;
  }

  core::Algorithm1Config cfg;
  cfg.t = t;
  cfg.radius1 = r1;
  cfg.radius2 = r2;

  std::vector<graph::Vertex> solution;
  bool is_cover_problem = false;
  int rounds = -1;
  try {
    if (algorithm == "algorithm1") {
      const auto result = core::algorithm1(g, cfg);
      solution = result.dominating_set;
      rounds = result.diag.rounds;
    } else if (algorithm == "algorithm1-mvc") {
      const auto result = core::algorithm1_mvc(g, cfg);
      solution = result.vertex_cover;
      rounds = result.diag.rounds;
      is_cover_problem = true;
    } else if (algorithm == "theorem44") {
      const auto result = core::theorem44_mds(g);
      solution = result.solution;
      rounds = result.traffic.rounds;
    } else if (algorithm == "theorem44-mvc") {
      const auto result = core::theorem44_mvc(g);
      solution = result.solution;
      rounds = result.traffic.rounds;
      is_cover_problem = true;
    } else if (algorithm == "greedy") {
      solution = solve::greedy_mds(g);
    } else if (algorithm == "exact") {
      solution = solve::exact_mds(g);
    } else if (algorithm == "exact-mvc") {
      solution = solve::exact_mvc(g);
      is_cover_problem = true;
    } else if (algorithm == "ksv") {
      solution = core::ksv_style(g, 3);
    } else if (algorithm == "take-all") {
      solution = core::take_all(g);
    } else if (algorithm == "tree-rule") {
      solution = core::tree_degree_rule(g);
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mds_cli: %s failed: %s\n", algorithm.c_str(), e.what());
    return 1;
  }

  const bool valid = is_cover_problem ? solve::is_vertex_cover(g, solution)
                                      : solve::is_dominating_set(g, solution);
  if (!quiet) {
    std::printf("# %s on %s\n", algorithm.c_str(), g.summary().c_str());
    std::printf("# |S| = %zu, valid = %s", solution.size(), valid ? "yes" : "NO");
    if (rounds >= 0) std::printf(", rounds = %d", rounds);
    if (g.num_vertices() <= 300) {
      const auto report = is_cover_problem ? core::measure_mvc_ratio(g, solution)
                                           : core::measure_mds_ratio(g, solution);
      std::printf(", ratio = %s", report.to_string().c_str());
    }
    std::printf("\n");
  }
  for (graph::Vertex v : solution) std::printf("%d\n", v);
  return valid ? 0 : 1;
}
