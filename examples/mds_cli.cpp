// Command-line driver: run any registered dominating-set / vertex-cover
// solver on an edge-list graph from a file or stdin. The algorithm list and
// per-solver options come straight from api::Registry, so this driver can
// never drift from the library: anything registered is runnable here.
//
//   usage: mds_cli <algorithm> [file] [--<param> N ...] [--local] [--quiet]
//
// Any parameter the chosen solver's SolverSpec declares is accepted as
// --<name> N (--r1/--r2 are kept as aliases for radius1/radius2); the
// registry rejects names the solver does not declare.
//
//   $ ./mds_cli algorithm1 graph.txt --t 5 --r1 4 --r2 4
//   $ ./mds_cli theorem44 --local < graph.txt
//
// Exit codes: 0 valid solution; 1 solver failure or invalid solution;
//             2 usage error; 3 unknown algorithm;
//             4 unreadable or unparseable input.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "api/registry.hpp"
#include "graph/io.hpp"

namespace {

constexpr int kExitInvalid = 1;
constexpr int kExitUsage = 2;
constexpr int kExitUnknownAlgorithm = 3;
constexpr int kExitUnreadableFile = 4;

int usage() {
  const auto& reg = lmds::api::Registry::instance();
  std::fprintf(stderr,
               "usage: mds_cli <algorithm> [file] [--<param> N ...] [--local] [--quiet]\n"
               "algorithms (with their --<param>=default options):\n");
  for (const lmds::api::SolverSpec* spec : reg.specs()) {
    std::string params;
    for (const auto& p : spec->params) {
      params += params.empty() ? "  [" : ", ";
      params += p.name + "=" + p.default_value.to_string();
    }
    if (!params.empty()) params += "]";
    const std::string_view problem = to_string(spec->problem);
    std::fprintf(stderr, "  %-15s (%.*s%s) %s%s\n", spec->name.c_str(),
                 static_cast<int>(problem.size()), problem.data(),
                 spec->supports(lmds::api::Mode::Local) ? ", local" : "",
                 spec->summary.c_str(), params.c_str());
  }
  std::fprintf(stderr,
               "For repeated solves over the same graphs, use the serving front-end\n"
               "instead: lmds_serve (TCP line protocol + HTTP /v2, graph handles,\n"
               "response cache) driven by serve_client — see README.md \"Serving\".\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lmds;
  const auto& reg = api::Registry::instance();
  if (argc < 2) return usage();
  const std::string algorithm = argv[1];
  const api::SolverSpec* spec = reg.find(algorithm);
  if (!spec) {
    std::fprintf(stderr, "mds_cli: unknown algorithm '%s'\n", algorithm.c_str());
    usage();
    return kExitUnknownAlgorithm;
  }

  std::string file;
  api::Request req;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--local") {
      req.measure_traffic = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      // Generic --<param> V: any name the solver's spec declares works
      // (validated by the registry); --r1/--r2 stay as short aliases. The
      // value goes through api::parse_param_value against the declared
      // ParamValue type — int, bool (0/1/true/false) or double; undeclared
      // names parse as int and let the registry reject them. A malformed
      // ("--t graph.txt") or out-of-range ("--t 99999999999") value is a
      // usage error (exit 2), never a silent 0 or wrapped integer.
      std::string name = arg.substr(2);
      if (name == "r1") name = "radius1";
      if (name == "r2") name = "radius2";
      const char* raw = argv[++i];
      auto declared = lmds::api::ParamValue::Type::Int;
      for (const auto& p : spec->params) {
        if (p.name == name) declared = p.type();
      }
      const auto value = lmds::api::parse_param_value(raw, declared);
      if (!value) {
        std::fprintf(stderr,
                     "mds_cli: invalid value '%s' for %s (expected %.*s; malformed or "
                     "out of range)\n",
                     raw, arg.c_str(), static_cast<int>(to_string(declared).size()),
                     to_string(declared).data());
        return kExitUsage;
      }
      req.options[name] = *value;
    } else if (!arg.empty() && arg[0] != '-') {
      file = arg;
    } else {
      return usage();
    }
  }

  graph::Graph g;
  try {
    if (file.empty()) {
      g = graph::read_edge_list(std::cin);
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "mds_cli: cannot open %s\n", file.c_str());
        return kExitUnreadableFile;
      }
      g = graph::read_edge_list(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mds_cli: %s\n", e.what());
    return kExitUnreadableFile;
  }

  req.graph = &g;
  req.measure_ratio = !quiet && g.num_vertices() <= 300;
  api::Response res;
  try {
    res = reg.run(algorithm, req);
  } catch (const api::RequestError& e) {
    // Option the solver does not declare, or --local on a centralized-only
    // solver: a usage problem, not a solver failure. Solver-internal
    // exceptions (including invalid_argument) fall through to exit 1.
    std::fprintf(stderr, "mds_cli: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mds_cli: %s failed: %s\n", algorithm.c_str(), e.what());
    return kExitInvalid;
  }

  if (!quiet) {
    std::printf("# %s on %s\n", algorithm.c_str(), g.summary().c_str());
    std::printf("# |S| = %zu, valid = %s", res.solution.size(), res.valid ? "yes" : "NO");
    if (res.diag.rounds >= 0) std::printf(", rounds = %d", res.diag.rounds);
    if (res.diag.traffic_measured) {
      std::printf(", messages = %llu, bytes = %llu",
                  static_cast<unsigned long long>(res.diag.traffic.messages),
                  static_cast<unsigned long long>(res.diag.traffic.bytes));
    }
    if (res.ratio_measured) std::printf(", ratio = %s", res.ratio.to_string().c_str());
    std::printf("\n");
  }
  for (graph::Vertex v : res.solution) std::printf("%d\n", v);
  return res.valid ? 0 : kExitInvalid;
}
