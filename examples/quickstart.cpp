// Quickstart: build a K_{2,t}-minor-free graph, run the paper's two
// algorithms (Algorithm 1 of Theorem 4.1 and the 3-round rule of
// Theorem 4.4), and compare against the exact optimum.
//
//   $ ./quickstart

#include <cstdio>

#include "core/algorithm1.hpp"
#include "core/metrics.hpp"
#include "core/theorem44.hpp"
#include "graph/generators.hpp"
#include "solve/exact_mds.hpp"
#include "solve/validate.hpp"

int main() {
  using namespace lmds;

  // A theta chain: 9 hubs in a row, consecutive hubs joined by 4 parallel
  // length-2 paths. This graph is K_{2,5}-minor-free (t = 5).
  const int t = 5;
  const graph::Graph g = graph::gen::theta_chain(8, t - 1);
  std::printf("input: %s, K_{2,%d}-minor-free\n", g.summary().c_str(), t);

  // Exact optimum (ground truth for the ratios below).
  const auto optimum = solve::exact_mds(g);
  std::printf("exact MDS: %zu vertices\n\n", optimum.size());

  // Theorem 4.4: 3 rounds, (2t-1)-approximation.
  const auto quick = core::theorem44_mds(g);
  const auto quick_ratio = core::measure_mds_ratio(g, quick.solution);
  std::printf("Theorem 4.4  (3 rounds):        |S| = %3zu   ratio %s\n",
              quick.solution.size(), quick_ratio.to_string().c_str());

  // Algorithm 1: constant approximation independent of t. The paper radii
  // m3.2 = 43t+2 and m3.3 = 73t+5 exceed this graph's diameter, so radius 4
  // already realises the same local cuts.
  core::Algorithm1Config cfg;
  cfg.t = t;
  cfg.radius1 = 4;
  cfg.radius2 = 4;
  const auto full = core::algorithm1(g, cfg);
  const auto full_ratio = core::measure_mds_ratio(g, full.dominating_set);
  std::printf("Algorithm 1  (%2d rounds):       |S| = %3zu   ratio %s\n",
              full.diag.rounds, full.dominating_set.size(), full_ratio.to_string().c_str());
  std::printf("  breakdown: %zu local 1-cut vertices, %zu interesting vertices, "
              "%zu brute-forced, %d residual components (max diameter %d)\n",
              full.diag.one_cuts.size(), full.diag.interesting.size(),
              full.diag.brute_forced.size(), full.diag.residual_components,
              full.diag.max_residual_diameter);

  // Both outputs really are dominating sets.
  const bool ok = solve::is_dominating_set(g, quick.solution) &&
                  solve::is_dominating_set(g, full.dominating_set);
  std::printf("\nvalidation: %s\n", ok ? "both outputs dominate" : "BUG: invalid output");
  return ok ? 0 : 1;
}
