// Quickstart: build a K_{2,t}-minor-free graph and run the paper's two
// algorithms (Algorithm 1 of Theorem 4.1 and the 3-round rule of
// Theorem 4.4) against the exact optimum — all through the one uniform
// api::Registry surface every solver in this library is reachable from.
//
//   $ ./quickstart

#include <cstdio>
#include <vector>

#include "api/registry.hpp"
#include "graph/generators.hpp"
#include "solve/validate.hpp"

int main() {
  using namespace lmds;
  const auto& registry = api::Registry::instance();

  // A theta chain: 9 hubs in a row, consecutive hubs joined by 4 parallel
  // length-2 paths. This graph is K_{2,5}-minor-free (t = 5).
  const int t = 5;
  const graph::Graph g = graph::gen::theta_chain(8, t - 1);
  std::printf("input: %s, K_{2,%d}-minor-free\n", g.summary().c_str(), t);

  // One request shape serves every solver: graph + named options + flags.
  api::Request req;
  req.graph = &g;
  req.measure_ratio = true;

  // Exact optimum (ground truth for the ratios below; no measure_ratio —
  // comparing the exact solver against itself would just solve twice).
  api::Request exact_req;
  exact_req.graph = &g;
  const api::Response exact = registry.run("exact", exact_req);
  std::printf("exact MDS: %zu vertices\n\n", exact.solution.size());

  // Theorem 4.4: 3 rounds, (2t-1)-approximation.
  const api::Response quick = registry.run("theorem44", req);
  std::printf("Theorem 4.4  (%d rounds):        |S| = %3zu   ratio %s\n", quick.diag.rounds,
              quick.solution.size(), quick.ratio.to_string().c_str());

  // Algorithm 1: constant approximation independent of t. The paper radii
  // m3.2 = 43t+2 and m3.3 = 73t+5 exceed this graph's diameter, so radius 4
  // (the registry default) already realises the same local cuts.
  api::Request alg1 = req;
  alg1.options["t"] = t;
  const api::Response full = registry.run("algorithm1", alg1);
  std::printf("Algorithm 1  (%2d rounds):       |S| = %3zu   ratio %s\n", full.diag.rounds,
              full.solution.size(), full.ratio.to_string().c_str());
  std::printf("  breakdown: %zu local 1-cut vertices, %zu interesting vertices, "
              "%zu brute-forced, %d residual components (max diameter %d)\n",
              full.diag.one_cuts.size(), full.diag.two_cut_vertices.size(),
              full.diag.brute_forced.size(), full.diag.residual_components,
              full.diag.max_residual_diameter);

  // The same request executed across a batch of graphs — the serving seam.
  const std::vector<graph::Graph> batch = {graph::gen::theta_chain(4, t - 1),
                                           graph::gen::theta_chain(6, t - 1), g};
  api::Request batch_req;  // only |S| is printed; skip the exact-reference solves
  const auto responses =
      registry.run_batch("theorem44", {batch.data(), batch.size()}, batch_req);
  std::printf("\nrun_batch(theorem44) over %zu graphs:", batch.size());
  for (const auto& res : responses) std::printf(" |S|=%zu", res.solution.size());
  std::printf("\n");

  std::printf("\nregistered solvers:");
  for (const auto& name : registry.names()) std::printf(" %s", name.c_str());
  std::printf("\n");

  // Both outputs really are dominating sets (the registry checks too).
  const bool ok = quick.valid && full.valid &&
                  solve::is_dominating_set(g, quick.solution) &&
                  solve::is_dominating_set(g, full.solution);
  std::printf("\nvalidation: %s\n", ok ? "both outputs dominate" : "BUG: invalid output");
  return ok ? 0 : 1;
}
