#!/usr/bin/env bash
# End-to-end cluster smoke cycle: start 2 workers + 1 router (lmds_serve
# --router, both transports), run the serve_client handle/patch/warm-hit
# cycle THROUGH the router over the line protocol and over HTTP — the router
# fans the mixed batches out across the workers and must reassemble them
# exactly as a single server would, so --expect-hits works unchanged — then
# warm worker 1 directly with the demo batch, push-replicate worker 1 ->
# worker 2 (replicate_out with "peer"), and require the replayed demo batch
# on worker 2 to answer from the replicated cache (--expect-hits on the
# FIRST pass: worker 2 never solved those graphs itself).
#
# Usage: scripts/cluster_smoke.sh BUILD_DIR [WORK_DIR]
#
# Runs against whatever BUILD_DIR was built with, like serve_smoke.sh.

set -euo pipefail

BUILD_DIR=$(cd "$1" && pwd)
WORK_DIR=${2:-$(mktemp -d)}
mkdir -p "$WORK_DIR"
cd "$WORK_DIR"
rm -f w1_port.txt w2_port.txt router_port.txt router_http_port.txt

wait_for_file() {
  for _ in $(seq 1 300); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "cluster_smoke: timed out waiting for $1" >&2
  return 1
}

# Two workers with pin leases on (a crashed client's pins must expire), then
# the router in front of them.
"$BUILD_DIR/lmds_serve" --port 0 --port-file w1_port.txt \
  --lease-ttl-ms 30000 --no-snapshot-verbs &
W1_PID=$!
"$BUILD_DIR/lmds_serve" --port 0 --port-file w2_port.txt \
  --lease-ttl-ms 30000 --no-snapshot-verbs &
W2_PID=$!
wait_for_file w1_port.txt
wait_for_file w2_port.txt
W1_PORT=$(cat w1_port.txt)
W2_PORT=$(cat w2_port.txt)

"$BUILD_DIR/lmds_serve" --port 0 --port-file router_port.txt \
  --http-port 0 --http-port-file router_http_port.txt \
  --router --peer "127.0.0.1:$W1_PORT" --peer "127.0.0.1:$W2_PORT" \
  --no-snapshot-verbs &
ROUTER_PID=$!
wait_for_file router_port.txt
wait_for_file router_http_port.txt

# The protocol-v2 put_graph/solve/patch/warm-hit cycle through the router,
# over the line protocol and over HTTP: handles land on their ring owners,
# patches are forwarded to the parent's owner, and the repeated batches must
# be all cache hits exactly as against a single server.
"$BUILD_DIR/serve_client" --port "$(cat router_port.txt)" \
  --handles --patch --expect-hits --stats
"$BUILD_DIR/serve_client" --port "$(cat router_http_port.txt)" --http \
  --handles --patch --expect-hits

# Replication: warm worker 1's response cache with the demo batch, push the
# store + cache to worker 2, and replay the demo batch against worker 2 —
# which must answer warm on the first pass.
"$BUILD_DIR/serve_client" --port "$W1_PORT" --demo --stats
"$BUILD_DIR/serve_client" --port "$W1_PORT" \
  --send "{\"op\":\"replicate_out\",\"peer\":\"127.0.0.1:$W2_PORT\"}" \
  | grep -q "send -> ok=true"
"$BUILD_DIR/serve_client" --port "$W2_PORT" --demo --expect-hits --stats

# The stats verb through the router reports the router block (peer count and
# per-peer forward counters) on top of the local core's stats.
"$BUILD_DIR/serve_client" --port "$(cat router_port.txt)" \
  --send '{"op":"stats"}' | grep -q "send -> ok=true"

# Clean shutdown: router first (it holds connections into the workers).
"$BUILD_DIR/serve_client" --port "$(cat router_port.txt)" --shutdown
wait "$ROUTER_PID"
"$BUILD_DIR/serve_client" --port "$W1_PORT" --shutdown
"$BUILD_DIR/serve_client" --port "$W2_PORT" --shutdown
wait "$W1_PID" "$W2_PID"

echo "cluster_smoke: OK ($BUILD_DIR)"
