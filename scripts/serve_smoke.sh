#!/usr/bin/env bash
# End-to-end serving smoke cycle: start lmds_serve (both transports), drive
# the line protocol with a mixed-solver demo batch + admin verbs, run the
# protocol-v2 put_graph/solve/warm-hit cycle over HTTP and over the line
# protocol in an isolated namespace — each v2 pass also exercising the
# v2.1 put→patch→solve cycle (--patch derives a handle and requires the
# child solve to be answered incrementally) — save a cache snapshot,
# restart the server from it, and require the replayed batch to answer
# from the warmed cache (--expect-hits exits non-zero on zero hits).
#
# Usage: scripts/serve_smoke.sh BUILD_DIR [WORK_DIR]
#
# Runs against whatever BUILD_DIR was built with — CI invokes it once per
# build flavor (plain, asan-ubsan, tsan), so the whole accept/solve/
# snapshot/drain path executes under each sanitizer.

set -euo pipefail

BUILD_DIR=$(cd "$1" && pwd)
WORK_DIR=${2:-$(mktemp -d)}
cd "$WORK_DIR"
rm -f port.txt http_port.txt

wait_for_file() {
  for _ in $(seq 1 300); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "serve_smoke: timed out waiting for $1" >&2
  return 1
}

"$BUILD_DIR/lmds_serve" --port 0 --port-file port.txt \
  --http-port 0 --http-port-file http_port.txt \
  --snapshot cache.lmds --cache-capacity 256 &
SERVER_PID=$!
wait_for_file port.txt
wait_for_file http_port.txt

"$BUILD_DIR/serve_client" --port "$(cat port.txt)" --demo --stats \
  --save cache_explicit.lmds
# Protocol v2 over HTTP: upload handles, solve by handle, repeat — the
# repeat must be all cache hits (warm-hit cycle).
"$BUILD_DIR/serve_client" --port "$(cat http_port.txt)" --http \
  --handles --patch --expect-hits --stats
# Same cycle over the line protocol in an isolated namespace: the first
# pass must be cold again (namespace isolation), the repeat warm.
"$BUILD_DIR/serve_client" --port "$(cat port.txt)" --namespace ci-tenant \
  --handles --patch --expect-hits --shutdown
wait "$SERVER_PID"
test -s cache.lmds
test -s cache_explicit.lmds

# Restart from the snapshot: the replayed demo batch must be warm.
rm port.txt http_port.txt
"$BUILD_DIR/lmds_serve" --port 0 --port-file port.txt \
  --snapshot cache.lmds --cache-capacity 256 &
SERVER_PID=$!
wait_for_file port.txt
"$BUILD_DIR/serve_client" --port "$(cat port.txt)" --demo --expect-hits \
  --stats --shutdown
wait "$SERVER_PID"

echo "serve_smoke: OK ($BUILD_DIR)"
