#!/usr/bin/env python3
"""Run clang-tidy over the serving core and fail on any finding.

Drives the checked-in .clang-tidy config over every translation unit in a
compile_commands.json whose source lives under the scoped directories
(src/api, src/server, src/common, src/cluster by default — the concurrent
serving core this repo's lint gate covers). CI calls this after configuring the `tidy`
CMake preset; locally:

    cmake --preset tidy          # needs clang/clang++ on PATH
    python3 scripts/run_clang_tidy.py

Exit codes: 0 clean, 1 findings, 2 environment problems (no clang-tidy
binary, no compile_commands.json). The script is stdlib-only on purpose.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BUILD_DIR = os.path.join(REPO_ROOT, "build", "tidy")
DEFAULT_SCOPE = ("src/api", "src/server", "src/common", "src/cluster")


def scoped_sources(build_dir: str, scope: tuple[str, ...]) -> list[str]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(
            f"error: {db_path} not found.\n"
            "Configure the tidy preset first: cmake --preset tidy\n"
            "(or pass --build-dir for a tree configured with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
        )
    with open(db_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    prefixes = tuple(os.path.join(REPO_ROOT, s) + os.sep for s in scope)
    sources = sorted(
        {
            os.path.normpath(
                e["file"]
                if os.path.isabs(e["file"])
                else os.path.join(e["directory"], e["file"])
            )
            for e in entries
        }
    )
    return [s for s in sources if s.startswith(prefixes)]


def run_one(tidy: str, build_dir: str, source: str, extra_args: list[str]):
    cmd = [tidy, "-p", build_dir, "--quiet", *extra_args, source]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang-tidy exits nonzero when WarningsAsErrors matched, and prints the
    # findings on stdout; stderr carries "N warnings treated as errors" noise
    # plus any real driver errors, so keep it only on failure.
    return source, proc.returncode, proc.stdout, proc.stderr


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=DEFAULT_BUILD_DIR,
                        help="build tree holding compile_commands.json "
                             f"(default: {DEFAULT_BUILD_DIR})")
    parser.add_argument("--scope", action="append", default=None,
                        metavar="DIR",
                        help="repo-relative directory to lint (repeatable; "
                             f"default: {', '.join(DEFAULT_SCOPE)})")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: $CLANG_TIDY or "
                             "'clang-tidy' from PATH)")
    parser.add_argument("-j", "--jobs", type=int,
                        default=multiprocessing.cpu_count(),
                        help="parallel clang-tidy processes")
    parser.add_argument("extra", nargs="*",
                        help="extra arguments passed through to clang-tidy "
                             "(after '--', e.g. -- --fix)")
    args = parser.parse_args()

    tidy = args.clang_tidy or os.environ.get("CLANG_TIDY") or "clang-tidy"
    resolved = shutil.which(tidy)
    if resolved is None:
        sys.exit(
            f"error: '{tidy}' not found on PATH. Install clang-tidy (the lint "
            "gate runs it in CI) or point --clang-tidy/$CLANG_TIDY at one."
        )

    scope = tuple(args.scope) if args.scope else DEFAULT_SCOPE
    sources = scoped_sources(args.build_dir, scope)
    if not sources:
        sys.exit(f"error: no sources under {', '.join(scope)} in the "
                 "compile database — wrong --build-dir?")

    print(f"clang-tidy: {resolved}")
    print(f"linting {len(sources)} files under {', '.join(scope)} "
          f"with {args.jobs} jobs")

    failures = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [
            pool.submit(run_one, resolved, args.build_dir, s, args.extra)
            for s in sources
        ]
        for future in futures:
            source, rc, out, err = future.result()
            rel = os.path.relpath(source, REPO_ROOT)
            if rc == 0:
                print(f"  ok    {rel}")
                continue
            failures += 1
            print(f"  FAIL  {rel}")
            if out.strip():
                print(out.rstrip())
            if err.strip():
                print(err.rstrip(), file=sys.stderr)

    if failures:
        print(f"\nclang-tidy: findings in {failures}/{len(sources)} files",
              file=sys.stderr)
        return 1
    print(f"\nclang-tidy: clean ({len(sources)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
