#!/usr/bin/env bash
# Soak determinism gate: run lmds_soak twice with identical seed/duration and
# require byte-identical JSON reports plus a clean exit (zero oracle
# violations, zero fuzz failures — lmds_soak exits non-zero on either).
#
# Usage: scripts/soak_smoke.sh BUILD_DIR [DURATION] [SEED]
#
# `--duration` is a deterministic work budget, not wall-clock, which is what
# makes the byte-compare meaningful: same seed, same requests, same report.
# CI runs this against the plain build and `lmds_soak --check` separately
# under the asan-ubsan preset (docs/SOAK.md).

set -euo pipefail

BUILD_DIR=$(cd "$1" && pwd)
DURATION=${2:-4}
SEED=${3:-42}
WORK_DIR=$(mktemp -d)

"$BUILD_DIR/lmds_soak" --duration "$DURATION" --seed "$SEED" \
  --repro-dir "$WORK_DIR/repro-a" --report "$WORK_DIR/a.json"
"$BUILD_DIR/lmds_soak" --duration "$DURATION" --seed "$SEED" \
  --repro-dir "$WORK_DIR/repro-b" --report "$WORK_DIR/b.json"

if ! cmp -s "$WORK_DIR/a.json" "$WORK_DIR/b.json"; then
  echo "soak_smoke: reports differ between identical runs (determinism regression):" >&2
  diff "$WORK_DIR/a.json" "$WORK_DIR/b.json" >&2 || true
  exit 1
fi

echo "soak_smoke: OK ($BUILD_DIR, duration=$DURATION seed=$SEED, reports identical)"
