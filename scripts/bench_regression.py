#!/usr/bin/env python3
"""Compare two bench_batch_throughput --json artifacts and fail on regression.

Usage: bench_regression.py PREVIOUS.json CURRENT.json [--max-drop 0.20]

The compared metric is the best graphs/sec across the per-thread runs — the
figure a deployment actually gets from the serving layer. CI runners are
noisy, so the gate is a relative drop (default 20%, the ROADMAP's threshold),
not an absolute number. Exit codes: 0 ok / within tolerance, 1 regression,
2 unusable input (missing file, malformed JSON, no runs).
"""

import argparse
import json
import sys


def best_rate(path: str) -> float:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rates = [run["graphs_per_sec"] for run in data.get("runs", [])
             if isinstance(run.get("graphs_per_sec"), (int, float))]
    if not rates:
        print(f"bench_regression: no graphs_per_sec runs in {path}", file=sys.stderr)
        sys.exit(2)
    return max(rates)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--max-drop", type=float, default=0.20,
                        help="maximum tolerated relative drop (0.20 = 20%%)")
    args = parser.parse_args()

    prev = best_rate(args.previous)
    curr = best_rate(args.current)
    change = (curr - prev) / prev
    print(f"bench_regression: previous best {prev:.1f} graphs/sec, "
          f"current best {curr:.1f} graphs/sec ({change:+.1%})")
    if curr < prev * (1.0 - args.max_drop):
        print(f"bench_regression: REGRESSION — throughput dropped more than "
              f"{args.max_drop:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
