// Tests for the LOCAL-model simulator: networks, flooding knowledge
// propagation, ball views (message-passing vs direct cut), and the
// ball-decision runner.

#include <gtest/gtest.h>

#include <random>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "local/runner.hpp"
#include "local/simulator.hpp"
#include "local/view.hpp"

namespace lmds::local {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(Network, DefaultIdsAreIdentity) {
  const Network net(graph::gen::path(4));
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(net.id_of(v), static_cast<NodeId>(v));
}

TEST(Network, RejectsDuplicateIds) {
  EXPECT_THROW(Network(graph::gen::path(3), {1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(Network(graph::gen::path(3), {1, 2}), std::invalid_argument);
}

TEST(Network, RandomIdsUnique) {
  std::mt19937_64 rng(137);
  const Network net = Network::with_random_ids(graph::gen::cycle(50), rng);
  std::set<NodeId> ids(net.ids().begin(), net.ids().end());
  EXPECT_EQ(ids.size(), 50u);
}

// ---------------------------------------------------------------------------
// Flooding

TEST(Flooding, InitialKnowledgeIsIncidentEdges) {
  const Network net(graph::gen::path(4));  // edges (0,1),(1,2),(2,3)
  FloodingState state(net);
  EXPECT_EQ(state.known_edges(0), (std::vector<int>{0}));
  EXPECT_EQ(state.known_edges(1), (std::vector<int>{0, 1}));
}

TEST(Flooding, KnowledgeSpreadsOneHopPerRound) {
  const Network net(graph::gen::path(5));
  FloodingState state(net);
  TrafficStats stats;
  state.step(stats);
  // After one round, node 0 knows edges within distance 1: (0,1),(1,2).
  EXPECT_EQ(state.known_edges(0), (std::vector<int>{0, 1}));
  state.step(stats);
  EXPECT_EQ(state.known_edges(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(stats.rounds, 2);
}

TEST(Flooding, MessagesPerRoundEqualsDirectedEdges) {
  const Network net(graph::gen::cycle(7));
  FloodingState state(net);
  TrafficStats stats;
  state.step(stats);
  EXPECT_EQ(stats.messages, 14u);
  state.step(stats);
  EXPECT_EQ(stats.messages, 28u);
}

TEST(Flooding, EventuallyEveryoneKnowsEverything) {
  std::mt19937_64 rng(139);
  const Graph g = graph::gen::random_connected(20, 6, rng);
  const Network net(g);
  FloodingState state(net);
  TrafficStats stats;
  state.run(graph::diameter(g) + 1, stats);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(state.known_edges(v).size(), static_cast<std::size_t>(g.num_edges()));
  }
}

TEST(Flooding, BytesGrowMonotonically) {
  const Network net(graph::gen::cycle(10));
  FloodingState state(net);
  TrafficStats stats;
  state.step(stats);
  const auto bytes_round1 = stats.bytes;
  state.step(stats);
  EXPECT_GT(stats.bytes, bytes_round1);
}

// ---------------------------------------------------------------------------
// Views

TEST(Views, CutViewMatchesBall) {
  const Graph g = graph::gen::cycle(12);
  const Network net(g);
  const BallView view = cut_view(net, 0, 3);
  EXPECT_EQ(view.num_vertices(), 7);  // 0, ±1, ±2, ±3
  EXPECT_EQ(view.dist[static_cast<std::size_t>(view.centre)], 0);
  EXPECT_EQ(view.radius, 3);
  // The view graph is the induced path 9-10-11-0-1-2-3.
  EXPECT_EQ(view.graph.num_edges(), 6);
}

TEST(Views, GatheredViewsMatchCutViews) {
  std::mt19937_64 rng(149);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::gen::random_connected(18, 6, rng);
    const Network net = Network::with_random_ids(g, rng);
    for (const int radius : {0, 1, 2, 3}) {
      const auto views = gather_views(net, radius);
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        const BallView direct = cut_view(net, v, radius);
        const BallView& flooded = views[static_cast<std::size_t>(v)];
        EXPECT_EQ(flooded.graph, direct.graph);
        EXPECT_EQ(flooded.ids, direct.ids);
        EXPECT_EQ(flooded.dist, direct.dist);
        EXPECT_EQ(flooded.centre, direct.centre);
      }
    }
  }
}

TEST(Views, RadiusZeroIsSelfOnly) {
  const Network net(graph::gen::complete(5));
  const auto views = gather_views(net, 0);
  for (const auto& view : views) {
    EXPECT_EQ(view.num_vertices(), 1);
    EXPECT_EQ(view.graph.num_edges(), 0);
  }
}

TEST(Views, ViewRoundsAreRadiusPlusOne) {
  const Network net(graph::gen::path(9));
  TrafficStats stats;
  gather_views(net, 3, &stats);
  EXPECT_EQ(stats.rounds, 4);
}

TEST(Views, IdsPreserved) {
  const Graph g = graph::gen::star(5);
  const Network net(g, {100, 200, 300, 400, 500});
  const BallView view = cut_view(net, 0, 1);
  EXPECT_EQ(view.num_vertices(), 5);
  EXPECT_EQ(view.ids[static_cast<std::size_t>(view.centre)], 100u);
  EXPECT_NE(view.local_index_of(300), graph::kNoVertex);
  EXPECT_EQ(view.local_index_of(999), graph::kNoVertex);
}

TEST(Views, InnerBall) {
  const Network net(graph::gen::path(9));
  const BallView view = cut_view(net, 4, 3);
  EXPECT_EQ(view.inner_ball(1).size(), 3u);
  EXPECT_EQ(view.inner_ball(3).size(), 7u);
}

TEST(Views, DistancesInsideViewAreGlobal) {
  // Distances measured inside the trimmed ball equal global distances for
  // vertices within the radius.
  std::mt19937_64 rng(151);
  const Graph g = graph::gen::random_connected(20, 8, rng);
  const Network net(g);
  const int radius = 3;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const BallView view = cut_view(net, v, radius);
    const auto global_dist = graph::bfs_distances(g, v);
    for (Vertex local = 0; local < view.num_vertices(); ++local) {
      const Vertex global = static_cast<Vertex>(view.ids[static_cast<std::size_t>(local)]);
      EXPECT_EQ(view.dist[static_cast<std::size_t>(local)],
                global_dist[static_cast<std::size_t>(global)]);
    }
  }
}

// ---------------------------------------------------------------------------
// Runner

TEST(Runner, DegreeRuleOnStar) {
  // "Join if I have >= 2 neighbours" — the folklore tree rule. On a star
  // only the centre joins.
  const Network net(graph::gen::star(8));
  const auto decide = [](const BallView& view) {
    return view.graph.degree(view.centre) >= 2;
  };
  const RunResult result = run_ball_algorithm(net, 1, decide);
  EXPECT_EQ(result.selected, (std::vector<Vertex>{0}));
  EXPECT_EQ(result.traffic.rounds, 2);
  EXPECT_GT(result.traffic.messages, 0u);
}

TEST(Runner, FastAndSimulatedAgree) {
  std::mt19937_64 rng(157);
  const Graph g = graph::gen::random_connected(25, 10, rng);
  const Network net = Network::with_random_ids(g, rng);
  const auto decide = [](const BallView& view) {
    // An arbitrary view-dependent rule: centre id is a local minimum among
    // the ball.
    for (NodeId id : view.ids) {
      if (id < view.ids[static_cast<std::size_t>(view.centre)]) return false;
    }
    return true;
  };
  const RunResult slow = run_ball_algorithm(net, 2, decide);
  const RunResult fast = run_ball_algorithm_fast(net, 2, decide);
  EXPECT_EQ(slow.selected, fast.selected);
  EXPECT_EQ(fast.traffic.messages, 0u);
  EXPECT_EQ(slow.traffic.rounds, fast.traffic.rounds);
}

TEST(Runner, DecisionsDependOnlyOnView) {
  // Two networks that agree on a node's r-ball (including ids) must produce
  // the same decision at that node: a long path and a long cycle agree
  // around their middles.
  const int radius = 2;
  const Network path_net(graph::gen::path(11));
  const Network cycle_net(graph::gen::cycle(11));
  const auto decide = [](const BallView& view) {
    return view.graph.num_edges() % 2 == 0;
  };
  const BallView path_view = cut_view(path_net, 5, radius);
  // Vertex 5 of the cycle has the same ids 3..7 in its 2-ball and the same
  // path topology.
  const BallView cycle_view = cut_view(cycle_net, 5, radius);
  EXPECT_EQ(path_view.graph, cycle_view.graph);
  EXPECT_EQ(decide(path_view), decide(cycle_view));
}

}  // namespace
}  // namespace lmds::local
