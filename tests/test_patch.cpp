// Differential test layer for the dynamic-graph serving path: graph patches
// (graph::apply_patch), the GraphStore's derived handles + lineage records +
// the eviction protection of shared parents, the executor's ball-granular
// incremental re-solve, the patch_graph protocol verb over both transports,
// and the soak workload's patch generator / malformed-patch fuzz kind.
//
// The load-bearing suite is IncrementalDifferential: for EVERY registered
// solver and every workload family, a solve against a patched handle must be
// field-for-field identical to a fresh full solve of the patched graph —
// solvers with a locality radius through the incremental splice, everything
// else through the (counted) full fallback.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/graph_store.hpp"
#include "api/registry.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/hash.hpp"
#include "graph/ops.hpp"
#include "server/http.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"
#include "server/session.hpp"
#include "soak/fuzz.hpp"
#include "soak/workload.hpp"

namespace lmds {
namespace {

using graph::Edge;
using graph::Graph;
using graph::GraphPatch;

// ---------------------------------------------------------------------------
// graph::apply_patch

TEST(ApplyPatch, AddsDeletesAndGrows) {
  const Graph parent = graph::gen::path(4);  // 0-1-2-3
  GraphPatch p;
  p.add = {{3, 0}, {5, 4}};  // unordered endpoints on purpose
  p.del = {{1, 2}};
  p.n = 7;
  const graph::PatchedGraph out = graph::apply_patch(parent, p);
  EXPECT_EQ(out.graph.num_vertices(), 7);
  EXPECT_TRUE(out.graph.has_edge(0, 3));
  EXPECT_TRUE(out.graph.has_edge(4, 5));
  EXPECT_FALSE(out.graph.has_edge(1, 2));
  EXPECT_TRUE(out.graph.has_edge(0, 1));  // untouched edges survive
  EXPECT_TRUE(out.graph.has_edge(2, 3));
  EXPECT_EQ(out.graph.degree(6), 0);  // n-growth allocates isolated vertices
  // The recorded lineage lists are normalized: u < v, sorted.
  EXPECT_EQ(out.added, (std::vector<Edge>{{0, 3}, {4, 5}}));
  EXPECT_EQ(out.removed, (std::vector<Edge>{{1, 2}}));
}

TEST(ApplyPatch, MatchesFromScratchRebuild) {
  // The row-splicing construction must equal the naive "edit an adjacency
  // list, rebuild" reference on a graph with touched and untouched rows.
  const Graph parent = graph::gen::grid(5, 5);
  GraphPatch p;
  p.add = {{0, 7}, {13, 21}};
  p.del = {{0, 1}, {12, 13}};
  const Graph patched = graph::apply_patch(parent, p).graph;

  std::vector<std::vector<graph::Vertex>> adj(static_cast<std::size_t>(parent.num_vertices()));
  for (const Edge& e : parent.edges()) {
    adj[static_cast<std::size_t>(e.u)].push_back(e.v);
    adj[static_cast<std::size_t>(e.v)].push_back(e.u);
  }
  for (const Edge& e : p.add) {
    adj[static_cast<std::size_t>(e.u)].push_back(e.v);
    adj[static_cast<std::size_t>(e.v)].push_back(e.u);
  }
  for (const Edge& e : p.del) {
    std::erase(adj[static_cast<std::size_t>(e.u)], e.v);
    std::erase(adj[static_cast<std::size_t>(e.v)], e.u);
  }
  EXPECT_EQ(patched, Graph(adj));
  EXPECT_EQ(graph::graph_hash(patched), graph::graph_hash(Graph(adj)));
}

TEST(ApplyPatch, RejectsInconsistentEdits) {
  const Graph parent = graph::gen::path(4);
  const auto rejects = [&](GraphPatch p) {
    EXPECT_THROW((void)graph::apply_patch(parent, p), std::invalid_argument);
  };
  rejects({.add = {{2, 2}}, .del = {}, .n = -1});          // self-loop
  rejects({.add = {{0, 2}, {2, 0}}, .del = {}, .n = -1});  // duplicate (orientation-blind)
  rejects({.add = {{0, 1}}, .del = {}, .n = -1});          // add of a present edge
  rejects({.add = {}, .del = {{0, 2}}, .n = -1});          // del of an absent edge
  rejects({.add = {{0, 2}}, .del = {{0, 2}}, .n = -1});    // add ∩ del
  rejects({.add = {{-1, 2}}, .del = {}, .n = -1});         // negative endpoint
  rejects({.add = {}, .del = {}, .n = 2});                 // n may only grow
  rejects({.add = {}, .del = {{0, 9}}, .n = -1});          // del endpoint out of range
}

// ---------------------------------------------------------------------------
// GraphStore: patch handles, lineage, eviction protection

TEST(GraphStorePatch, DerivesContentAddressedChild) {
  api::GraphStore store(8);
  const auto parent = store.put(graph::gen::path(6));
  GraphPatch p;
  p.add = {{0, 5}};
  const auto child = store.patch(parent.handle, p);
  EXPECT_TRUE(child.put.inserted);
  EXPECT_EQ(child.parent, parent.handle);
  EXPECT_EQ(child.put.handle,
            api::GraphStore::handle_for(graph::graph_hash(graph::gen::cycle(6))));
  // Content-addressed: the same patch again re-pins the same entry.
  const auto again = store.patch(parent.handle, p);
  EXPECT_FALSE(again.put.inserted);
  EXPECT_EQ(again.put.handle, child.put.handle);

  const auto lineage = store.lineage(child.put.handle);
  ASSERT_NE(lineage, nullptr);
  EXPECT_EQ(lineage->parent_hash, parent.hash);
  EXPECT_EQ(lineage->added, (std::vector<Edge>{{0, 5}}));
  EXPECT_TRUE(lineage->removed.empty());
  ASSERT_NE(lineage->parent, nullptr);
  EXPECT_EQ(*lineage->parent, graph::gen::path(6));
  // put() handles carry no lineage; unknown handles resolve to none.
  EXPECT_EQ(store.lineage(parent.handle), nullptr);
  EXPECT_EQ(store.lineage("gdeadbeefdeadbeef"), nullptr);

  const auto stats = store.stats();
  EXPECT_EQ(stats.patches, 1u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(GraphStorePatch, UnknownParentThrows) {
  api::GraphStore store(4);
  GraphPatch p;
  p.add = {{0, 2}};
  EXPECT_THROW((void)store.patch("gdeadbeefdeadbeef", p), api::UnknownGraphHandle);
  // Inconsistent edits surface as apply_patch's invalid_argument.
  const auto parent = store.put(graph::gen::path(4));
  GraphPatch bad;
  bad.del = {{0, 3}};  // not an edge of the path
  EXPECT_THROW((void)store.patch(parent.handle, bad), std::invalid_argument);
}

TEST(GraphStoreEviction, ParentOfDerivedHandleIsNotEvicted) {
  // Regression: LRU eviction used to treat an unpinned parent like any other
  // entry, severing a live child's lineage (and with it the incremental
  // path). A parent with stored children must survive until the last child
  // leaves the store.
  api::GraphStore store(2);
  const auto a = store.put(graph::gen::path(8));
  GraphPatch p;
  p.add = {{0, 7}};
  const auto b = store.patch(a.handle, p);
  ASSERT_TRUE(b.put.inserted);
  ASSERT_TRUE(store.drop(a.handle));  // A unpinned, but B still derives from it

  // At capacity: A is eviction-protected (child B), B is pinned -> full.
  EXPECT_THROW((void)store.put(graph::gen::cycle(5)), api::GraphStoreFull);
  EXPECT_NE(store.get(a.handle), nullptr);

  // Dropping B makes B evictable; A stays protected until B is *evicted*.
  ASSERT_TRUE(store.drop(b.put.handle));
  const auto c = store.put(graph::gen::cycle(5));  // evicts B, releases A
  EXPECT_TRUE(c.inserted);
  EXPECT_EQ(store.get(b.put.handle), nullptr);
  EXPECT_NE(store.get(a.handle), nullptr);

  // With its last child gone, A is ordinary unpinned prey again.
  const auto d = store.put(graph::gen::grid(3, 3));
  EXPECT_TRUE(d.inserted);
  EXPECT_EQ(store.get(a.handle), nullptr);
  EXPECT_EQ(store.stats().evictions, 2u);
}

// ---------------------------------------------------------------------------
// Executor: ball-granular incremental re-solve, differential against full

struct PatchedFixture {
  api::GraphStore store{64};
  std::shared_ptr<const Graph> parent;
  std::shared_ptr<const Graph> child;
  std::shared_ptr<const api::PatchLineage> lineage;

  explicit PatchedFixture(Graph g, const GraphPatch& p) {
    const auto put = store.put(std::move(g));
    parent = store.get(put.handle);
    const auto patched = store.patch(put.handle, p);
    child = store.get(patched.put.handle);
    lineage = store.lineage(patched.put.handle);
  }
};

// Solves parent (priming the cache), then child with lineage attached, and
// checks the child response equals a fresh full solve — field for field,
// diagnostics included. Returns the child batch's diagnostics.
api::BatchDiagnostics check_differential(api::BatchExecutor& ex, const PatchedFixture& fx,
                                         const std::string& solver, const api::Request& req) {
  const api::BatchOverrides over;
  const Graph* pg = fx.parent.get();
  (void)ex.run_batch(solver, std::span<const Graph* const>(&pg, 1), req, over);

  const Graph* cg = fx.child.get();
  std::vector<std::shared_ptr<const api::PatchLineage>> lineages = {fx.lineage};
  api::BatchDiagnostics diag;
  const std::vector<api::Response> got =
      ex.run_batch(solver, std::span<const Graph* const>(&cg, 1), req, over, &diag, {},
                   {lineages.data(), lineages.size()});

  api::Request full = req;
  full.graph = cg;
  const api::Response want = api::Registry::instance().run(solver, full);
  EXPECT_EQ(got.at(0), want) << solver << ": incremental result diverged from full solve";
  return diag;
}

TEST(IncrementalDifferential, EverySolverEveryFamilyMatchesFullSolve) {
  const api::Registry& reg = api::Registry::instance();
  for (const std::string& solver : reg.names()) {
    const int locality = reg.at(solver).locality_radius;
    for (std::uint64_t family = 0; family < soak::kFamilies; ++family) {
      const soak::GraphCase c = soak::make_case(/*run_seed=*/7, family);
      const GraphPatch p = soak::make_patch(c.graph, soak::mix_seed(7, family ^ 0xED17ULL), 3);
      if (p.add.empty() && p.del.empty()) continue;
      PatchedFixture fx(c.graph, p);
      api::BatchExecutor ex({.threads = 1, .shard_size = 4, .cache_capacity = 256}, reg);
      api::Request req;  // defaults for every declared option
      const api::BatchDiagnostics diag = check_differential(ex, fx, solver, req);
      if (locality >= 0) {
        EXPECT_EQ(diag.incremental_solves, 1u) << solver << " family " << c.family;
        EXPECT_GT(diag.incremental_dirty, 0u) << solver << " family " << c.family;
      } else {
        EXPECT_EQ(diag.incremental_solves, 0u) << solver << " family " << c.family;
        EXPECT_EQ(diag.incremental_fallbacks, 1u) << solver << " family " << c.family;
      }
    }
  }
}

TEST(IncrementalDifferential, VertexGrowthIsReDecided) {
  // New vertices have no parent decision to inherit — they are dirty by
  // definition, even when no edit touches the old vertex range.
  GraphPatch p;
  p.add = {{5, 8}};
  p.n = 10;  // vertex 9 is isolated in the child
  PatchedFixture fx(graph::gen::path(6), p);
  api::BatchExecutor ex({.threads = 1, .shard_size = 4, .cache_capacity = 64},
                        api::Registry::instance());
  const api::Request req;
  const api::BatchDiagnostics diag = check_differential(ex, fx, "theorem44", req);
  EXPECT_EQ(diag.incremental_solves, 1u);
  EXPECT_GE(diag.incremental_dirty, 4u);  // 8, 9 and the ball around {5,8}
}

TEST(IncrementalDifferential, ChainedPatchesStayIncremental) {
  // grandparent -> parent -> child: each hop carries its own lineage, so the
  // second solve splices from the first's cached response, and so on.
  api::GraphStore store(16);
  const auto g0 = store.put(graph::gen::grid(6, 6));
  GraphPatch p1;
  p1.add = {{0, 7}};
  const auto g1 = store.patch(g0.handle, p1);
  GraphPatch p2;
  p2.del = {{14, 15}};
  const auto g2 = store.patch(g1.put.handle, p2);

  api::BatchExecutor ex({.threads = 1, .shard_size = 4, .cache_capacity = 64},
                        api::Registry::instance());
  const api::Request req;
  const api::BatchOverrides over;
  for (const std::string& handle : {g0.handle, g1.put.handle, g2.put.handle}) {
    const std::shared_ptr<const Graph> g = store.get(handle);
    const Graph* ptr = g.get();
    std::vector<std::shared_ptr<const api::PatchLineage>> lineages = {store.lineage(handle)};
    api::BatchDiagnostics diag;
    const auto got = ex.run_batch("theorem44", std::span<const Graph* const>(&ptr, 1), req,
                                  over, &diag, {}, {lineages.data(), 1});
    api::Request full = req;
    full.graph = ptr;
    EXPECT_EQ(got.at(0), api::Registry::instance().run("theorem44", full));
    if (handle != g0.handle) {
      EXPECT_EQ(diag.incremental_solves, 1u) << handle;
    }
  }
}

TEST(IncrementalDifferential, BallSignatureSubSolveIsShared) {
  // Two patches applying "the same" edit far apart on a long path produce
  // isomorphic, identically-relabelled support subgraphs — the second child
  // solve must reuse the first's memoized sub-solve (ball-signature key)
  // instead of running the solver again.
  api::GraphStore store(16);
  const auto parent = store.put(graph::gen::path(100));
  GraphPatch pa;
  pa.add = {{10, 12}};
  GraphPatch pb;
  pb.add = {{50, 52}};
  const auto ca = store.patch(parent.handle, pa);
  const auto cb = store.patch(parent.handle, pb);

  api::BatchExecutor ex({.threads = 1, .shard_size = 4, .cache_capacity = 64},
                        api::Registry::instance());
  const api::Request req;
  const api::BatchOverrides over;
  const std::shared_ptr<const Graph> pg = store.get(parent.handle);
  const Graph* ptr = pg.get();
  (void)ex.run_batch("theorem44", std::span<const Graph* const>(&ptr, 1), req, over);

  const auto solve_child = [&](const std::string& handle) {
    const std::shared_ptr<const Graph> g = store.get(handle);
    const Graph* cp = g.get();
    std::vector<std::shared_ptr<const api::PatchLineage>> lineages = {store.lineage(handle)};
    api::BatchDiagnostics diag;
    const auto got = ex.run_batch("theorem44", std::span<const Graph* const>(&cp, 1), req,
                                  over, &diag, {}, {lineages.data(), 1});
    EXPECT_EQ(diag.incremental_solves, 1u);
    api::Request full = req;
    full.graph = cp;
    EXPECT_EQ(got.at(0), api::Registry::instance().run("theorem44", full));
  };

  solve_child(ca.put.handle);
  const api::CacheStats before = ex.cache_stats();
  solve_child(cb.put.handle);
  const api::CacheStats after = ex.cache_stats();
  // Child B: top-level key misses, then parent response + memoized sub-solve
  // both hit — no solver run needed beyond the splice.
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 2u);
}

TEST(IncrementalDifferential, RatioAndTrafficRequestsSkipTheIncrementalPath) {
  // measure_ratio / measure_traffic are whole-graph measurements no splice
  // can reconstruct: the lineage must be ignored entirely (not even counted
  // as a fallback), and the result must still match the full solve.
  GraphPatch p;
  p.add = {{0, 7}};
  PatchedFixture fx(graph::gen::grid(5, 5), p);
  api::BatchExecutor ex({.threads = 1, .shard_size = 4, .cache_capacity = 64},
                        api::Registry::instance());
  api::Request req;
  req.measure_ratio = true;
  const api::BatchDiagnostics diag = check_differential(ex, fx, "theorem44", req);
  EXPECT_EQ(diag.incremental_solves, 0u);
  EXPECT_EQ(diag.incremental_fallbacks, 0u);
}

TEST(IncrementalDifferential, CacheBypassFallsBackToFullSolve) {
  GraphPatch p;
  p.add = {{0, 7}};
  PatchedFixture fx(graph::gen::grid(5, 5), p);
  api::BatchExecutor ex({.threads = 1, .shard_size = 4, .cache_capacity = 64},
                        api::Registry::instance());
  const api::Request req;
  api::BatchOverrides over;
  over.bypass_cache = true;
  const Graph* cg = fx.child.get();
  std::vector<std::shared_ptr<const api::PatchLineage>> lineages = {fx.lineage};
  api::BatchDiagnostics diag;
  const auto got = ex.run_batch("theorem44", std::span<const Graph* const>(&cg, 1), req, over,
                                &diag, {}, {lineages.data(), 1});
  EXPECT_EQ(diag.incremental_solves, 0u);
  api::Request full = req;
  full.graph = cg;
  EXPECT_EQ(got.at(0), api::Registry::instance().run("theorem44", full));
}

// ---------------------------------------------------------------------------
// Protocol: decode_patch / encode_patch_members

TEST(PatchProtocol, DecodeAcceptsAndRoundTrips) {
  const server::ServerLimits limits;
  const GraphPatch p = server::decode_patch(
      server::json_parse(R"({"op":"patch_graph","add":[[3,0]],"del":[[1,2]],"n":9})"), limits);
  EXPECT_EQ(p.add, (std::vector<Edge>{{0, 3}}));  // decode orients each pair u < v
  EXPECT_EQ(p.del, (std::vector<Edge>{{1, 2}}));
  EXPECT_EQ(p.n, 9);

  GraphPatch original;
  original.add = {{0, 3}, {4, 5}};
  original.n = 8;
  const std::string members = server::encode_patch_members(original);
  const GraphPatch round =
      server::decode_patch(server::json_parse("{" + members + "}"), limits);
  EXPECT_EQ(round.add, original.add);
  EXPECT_EQ(round.del, original.del);
  EXPECT_EQ(round.n, original.n);
}

TEST(PatchProtocol, DecodeRejectsMalformedShapes) {
  const server::ServerLimits limits;
  for (const char* bad : {
           R"({"op":"patch_graph"})",                       // no edit field at all
           R"({"add":[[0]]})",                              // not a pair
           R"({"add":[[0,1,2]]})",                          // not a pair
           R"({"add":[[0,0]]})",                            // self-loop
           R"({"add":[[0,-1]]})",                           // negative endpoint
           R"({"add":[[0,1.5]]})",                          // non-integer endpoint
           R"({"add":7})",                                  // list is not an array
           R"({"n":-3})",                                   // negative n
           R"({"n":2000000})",                              // n beyond max_graph_vertices
           R"({"add":[[0,2000000]]})",                      // endpoint beyond the limit
       }) {
    EXPECT_THROW((void)server::decode_patch(server::json_parse(bad), limits),
                 server::ProtocolError)
        << "accepted: " << bad;
  }
}

// ---------------------------------------------------------------------------
// Session + HTTP front-end

TEST(PatchSession, PutPatchSolveFlow) {
  server::CoreOptions opts;
  opts.batch = {.threads = 1, .shard_size = 4, .cache_capacity = 128};
  server::ServerCore core(opts, api::Registry::instance());
  server::Session session(core);

  const server::JsonValue put = server::json_parse(session.handle_line(
      "{\"op\":\"put_graph\",\"graph\":" +
      server::encode_graph_json(graph::gen::grid(6, 6)) + "}"));
  ASSERT_TRUE(put.find("ok")->as_bool());
  const std::string parent = put.find("handle")->as_string();

  // Prime the parent's cached response (no ratio/traffic, default options).
  const std::string solve_parent = "{\"op\":\"solve\",\"solver\":\"theorem44\",\"graphs\":[\"" +
                                   parent + "\"]}";
  ASSERT_TRUE(server::json_parse(session.handle_line(solve_parent)).find("ok")->as_bool());

  const server::JsonValue patched = server::json_parse(session.handle_line(
      "{\"op\":\"patch_graph\",\"handle\":\"" + parent +
      "\",\"add\":[[0,7],[14,21]],\"del\":[[0,1]]}"));
  ASSERT_TRUE(patched.find("ok")->as_bool());
  EXPECT_TRUE(patched.find("new")->as_bool());
  EXPECT_EQ(patched.find("parent")->as_string(), parent);
  const std::string child = patched.find("handle")->as_string();
  EXPECT_NE(child, parent);

  const server::JsonValue solved = server::json_parse(session.handle_line(
      "{\"op\":\"solve\",\"solver\":\"theorem44\",\"graphs\":[\"" + child + "\"]}"));
  ASSERT_TRUE(solved.find("ok")->as_bool());
  EXPECT_TRUE(solved.find("responses")->as_array().at(0).find("valid")->as_bool());
  const server::JsonValue* diag = solved.find("diag");
  ASSERT_NE(diag->find("incremental_solves"), nullptr);
  EXPECT_EQ(diag->find("incremental_solves")->as_int(), 1);
  EXPECT_GT(diag->find("incremental_dirty")->as_int(), 0);

  // Same patch again: content-addressed re-pin, "new": false.
  const server::JsonValue again = server::json_parse(session.handle_line(
      "{\"op\":\"patch_graph\",\"handle\":\"" + parent +
      "\",\"add\":[[0,7],[14,21]],\"del\":[[0,1]]}"));
  ASSERT_TRUE(again.find("ok")->as_bool());
  EXPECT_FALSE(again.find("new")->as_bool());

  // Stats surface the patch counter.
  const server::JsonValue stats = server::json_parse(session.handle_line("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.find("store")->find("patches")->as_int(), 1);
}

TEST(PatchSession, ErrorClasses) {
  server::CoreOptions opts;
  server::ServerCore core(opts, api::Registry::instance());
  server::Session session(core);

  const auto code_of = [&](const std::string& line) {
    const server::JsonValue v = server::json_parse(session.handle_line(line));
    EXPECT_FALSE(v.find("ok")->as_bool());
    return v.find("code")->as_string();
  };
  // Well-formed handle that resolves to nothing: unknown_handle (retryable).
  EXPECT_EQ(code_of(R"({"op":"patch_graph","handle":"gdeadbeefdeadbeef","add":[[0,2]]})"),
            "unknown_handle");
  // Handle of the wrong shape: the request's fault.
  EXPECT_EQ(code_of(R"({"op":"patch_graph","handle":"nope","add":[[0,2]]})"), "bad_request");
  // Missing handle / missing edit fields.
  EXPECT_EQ(code_of(R"({"op":"patch_graph","add":[[0,2]]})"), "bad_request");
  // Edits inconsistent with the actual parent.
  const server::JsonValue put = server::json_parse(session.handle_line(
      "{\"op\":\"put_graph\",\"graph\":" + server::encode_graph_json(graph::gen::path(4)) +
      "}"));
  const std::string parent = put.find("handle")->as_string();
  EXPECT_EQ(code_of("{\"op\":\"patch_graph\",\"handle\":\"" + parent +
                    "\",\"del\":[[0,3]]}"),
            "bad_request");

  // A zero-capacity store can never patch: configuration error, not busy.
  server::CoreOptions disabled;
  disabled.store_capacity = 0;
  server::ServerCore core0(disabled, api::Registry::instance());
  server::Session session0(core0);
  const server::JsonValue v = server::json_parse(session0.handle_line(
      R"({"op":"patch_graph","handle":"gdeadbeefdeadbeef","add":[[0,2]]})"));
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("code")->as_string(), "bad_request");
}

TEST(PatchHttp, RouteCreatesAndReusesDerivedHandles) {
  server::CoreOptions opts;
  server::ServerCore core(opts, api::Registry::instance());
  server::Session session(core);

  server::HttpRequest put;
  put.method = "PUT";
  put.target = "/v2/graphs";
  put.body = server::encode_graph_json(graph::gen::grid(4, 4));
  const std::string put_response = server::handle_http_request(put, session);
  ASSERT_NE(put_response.find("201 Created"), std::string::npos);
  const std::size_t body_at = put_response.find("\r\n\r\n");
  const server::JsonValue put_body = server::json_parse(put_response.substr(body_at + 4));
  const std::string parent = put_body.find("handle")->as_string();

  server::HttpRequest patch;
  patch.method = "POST";
  patch.target = "/v2/graphs/" + parent + "/patch";
  patch.body = R"({"add":[[0,5]]})";
  const std::string first = server::handle_http_request(patch, session);
  EXPECT_NE(first.find("201 Created"), std::string::npos);
  const server::JsonValue first_body =
      server::json_parse(first.substr(first.find("\r\n\r\n") + 4));
  EXPECT_TRUE(first_body.find("new")->as_bool());
  EXPECT_EQ(first_body.find("parent")->as_string(), parent);

  // Replaying the identical patch reuses the child: 200, "new": false.
  const std::string second = server::handle_http_request(patch, session);
  EXPECT_NE(second.find("200 OK"), std::string::npos);

  // Unknown parent -> 404; non-object body -> 400.
  server::HttpRequest unknown = patch;
  unknown.target = "/v2/graphs/gdeadbeefdeadbeef/patch";
  EXPECT_NE(server::handle_http_request(unknown, session).find("404 Not Found"),
            std::string::npos);
  server::HttpRequest bad = patch;
  bad.body = "[1,2,3]";
  EXPECT_NE(server::handle_http_request(bad, session).find("400 Bad Request"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Soak workload + fuzz integration

TEST(SoakPatch, MakePatchIsDeterministicAndConsistent) {
  for (std::uint64_t index = 0; index < 10; ++index) {
    const soak::GraphCase c = soak::make_case(99, index);
    const std::uint64_t seed = soak::mix_seed(99, index ^ 0xED17ULL);
    const GraphPatch a = soak::make_patch(c.graph, seed, 3);
    const GraphPatch b = soak::make_patch(c.graph, seed, 3);
    EXPECT_EQ(a.add, b.add);
    EXPECT_EQ(a.del, b.del);
    EXPECT_LE(a.add.size() + a.del.size(), 3u);
    // Consistent by construction: apply_patch accepts it as-is.
    EXPECT_NO_THROW((void)graph::apply_patch(c.graph, a));
  }
}

TEST(SoakPatch, MalformedPatchMutationAlwaysRejected) {
  EXPECT_EQ(soak::to_string(soak::MutationKind::MalformedPatch), "malformed_patch");
  server::CoreOptions opts;
  server::ServerCore core(opts, api::Registry::instance());
  server::Session session(core);
  std::mt19937_64 rng(0xF00D);
  std::set<std::string> distinct;
  for (int i = 0; i < 64; ++i) {
    const std::string line = soak::mutate_line("{}", soak::MutationKind::MalformedPatch, rng);
    distinct.insert(line);
    const server::JsonValue response = server::json_parse(session.handle_line(line));
    EXPECT_FALSE(response.find("ok")->as_bool()) << line;
    const std::string code = response.find("code")->as_string();
    EXPECT_TRUE(code == "bad_request" || code == "unknown_handle") << line << " -> " << code;
  }
  EXPECT_GT(distinct.size(), 4u);  // the generator cycles through its variants
}

}  // namespace
}  // namespace lmds
