// Tests for the batch-serving layer: graph_hash fingerprints, the LRU
// response cache (hit identity, eviction, counters), the sharded parallel
// executor (determinism across thread counts, work stealing, error
// propagation, concurrent callers) and the typed ParamValue widening of
// SolverSpec parameters.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/graph_store.hpp"
#include "api/registry.hpp"
#include "ding/generators.hpp"
#include "graph/generators.hpp"
#include "graph/hash.hpp"

namespace lmds::api {
namespace {

using graph::Graph;
using graph::Vertex;

// Same families as test_api's suite, slightly larger so parallel runs have
// real work per graph.
std::vector<Graph> generator_suite() {
  std::mt19937_64 rng(20250727);
  std::vector<Graph> gs;
  gs.push_back(graph::gen::path(12));
  gs.push_back(graph::gen::cycle(9));
  gs.push_back(graph::gen::star(7));
  gs.push_back(graph::gen::grid(4, 5));
  gs.push_back(graph::gen::spider(4, 3));
  gs.push_back(graph::gen::theta_chain(4, 4));
  gs.push_back(graph::gen::theta_chain(7, 3));
  gs.push_back(graph::gen::caterpillar(8, 2));
  gs.push_back(graph::gen::clique_with_pendants(9));
  gs.push_back(graph::gen::random_tree(30, rng));
  ding::CactusConfig cc;
  cc.pieces = 6;
  cc.t = 5;
  gs.push_back(ding::random_cactus_of_structures(cc, rng));
  return gs;
}

std::span<const Graph> span_of(const std::vector<Graph>& gs) {
  return {gs.data(), gs.size()};
}

// ---------------------------------------------------------------------------
// graph_hash

TEST(GraphHash, EqualGraphsHashEqual) {
  const Graph a = graph::gen::theta_chain(5, 3);
  const Graph b = graph::gen::theta_chain(5, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(graph::graph_hash(a), graph::graph_hash(b));
}

TEST(GraphHash, DistinctStructuresHashDistinct) {
  // Pairwise-distinct small graphs; a collision among these would be a bug
  // in the mixer, not bad luck.
  std::vector<Graph> gs = generator_suite();
  gs.push_back(Graph());
  gs.push_back(graph::gen::path(1));
  std::vector<std::uint64_t> hashes;
  for (const Graph& g : gs) hashes.push_back(graph::graph_hash(g));
  for (std::size_t i = 0; i < gs.size(); ++i) {
    for (std::size_t j = i + 1; j < gs.size(); ++j) {
      if (gs[i] == gs[j]) continue;
      EXPECT_NE(hashes[i], hashes[j]) << "collision between graphs " << i << " and " << j;
    }
  }
}

TEST(GraphHash, SensitiveToSingleEdge) {
  const Graph path = graph::gen::path(10);
  const Graph cycle = graph::gen::cycle(10);  // path + closing edge
  EXPECT_NE(graph::graph_hash(path), graph::graph_hash(cycle));
}

// ---------------------------------------------------------------------------
// ResponseCache unit behaviour

CacheKey key_of(int tag) {
  return CacheKey{static_cast<std::uint64_t>(tag), "solver", "opts", ""};
}

CacheKey key_in_ns(int tag, std::string ns) {
  return CacheKey{static_cast<std::uint64_t>(tag), "solver", "opts", std::move(ns)};
}

Response response_of(int tag) {
  Response r;
  r.solver = "solver";
  r.solution = {static_cast<Vertex>(tag)};
  r.valid = true;
  return r;
}

TEST(ResponseCache, HitReturnsStoredResponseAndPromotes) {
  ResponseCache cache(2);
  cache.insert(key_of(1), response_of(1));
  cache.insert(key_of(2), response_of(2));

  const auto hit = cache.lookup(key_of(1));  // promotes 1 to MRU
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, response_of(1));

  cache.insert(key_of(3), response_of(3));  // evicts LRU = 2, not 1
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.hits, 3u);
  // Misses are counted at insert (one per completed computation), not at
  // lookup: three inserts happened, and the failed lookup of key 2 counts
  // nothing because no computation completed it.
  EXPECT_EQ(stats.misses, 3u);
}

TEST(ResponseCache, EvictsAtCapacity) {
  ResponseCache cache(3);
  for (int tag = 0; tag < 10; ++tag) cache.insert(key_of(tag), response_of(tag));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 3u);
  EXPECT_EQ(stats.evictions, 7u);
  // The three most recently inserted survive.
  EXPECT_TRUE(cache.lookup(key_of(9)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(8)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(7)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(6)).has_value());
}

TEST(ResponseCache, ZeroCapacityIsDisabled) {
  ResponseCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(key_of(1), response_of(1));
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  EXPECT_EQ(cache.stats().misses, 0u);  // disabled lookups do not count
}

TEST(ResponseCache, CanonicalOptionsSpellOutResolvedParams) {
  Options params;
  params["t"] = 5;
  params["twin_removal"] = true;
  params["alpha"] = 0.25;
  EXPECT_EQ(canonical_options(params, false, true),
            "alpha=0.25;t=5;twin_removal=true;|traffic=0;ratio=1");
}

TEST(ResponseCache, CanonicalOptionsEscapeStructuralCharacters) {
  // Without escaping, the parameter *name* "a=1;b" with value 2 would
  // serialize exactly like the two-parameter map {a: 1, b: 2} — an aliased
  // cache key. Escaping keeps the grammar unambiguous before the snapshot
  // format freezes the key encoding (future string ParamValues included).
  Options crafted;
  crafted["a=1;b"] = 2;
  Options plain;
  plain["a"] = 1;
  plain["b"] = 2;
  EXPECT_EQ(canonical_options(plain, false, false), "a=1;b=2;|traffic=0;ratio=0");
  EXPECT_EQ(canonical_options(crafted, false, false), "a\\=1\\;b=2;|traffic=0;ratio=0");
  EXPECT_NE(canonical_options(crafted, false, false), canonical_options(plain, false, false));

  Options backslash;
  backslash["x\\y|z"] = 1;
  EXPECT_EQ(canonical_options(backslash, false, false),
            "x\\\\y\\|z=1;|traffic=0;ratio=0");
}

// ---------------------------------------------------------------------------
// Snapshot persistence (serialize/deserialize); the cross-restart warm-hit
// story is covered end-to-end in tests/test_server.cpp.

TEST(ResponseCache, SnapshotRoundTripPreservesEntriesAndRecency) {
  ResponseCache cache(3);
  for (int tag = 1; tag <= 3; ++tag) cache.insert(key_of(tag), response_of(tag));
  (void)cache.lookup(key_of(1));  // recency now: 1 (MRU), 3, 2 (LRU)

  std::stringstream snapshot(std::ios::in | std::ios::out | std::ios::binary);
  cache.serialize(snapshot);

  ResponseCache restored(3);
  restored.deserialize(snapshot);
  EXPECT_EQ(restored.stats().size, 3u);
  for (int tag = 1; tag <= 3; ++tag) {
    const auto hit = restored.lookup(key_of(tag));
    ASSERT_TRUE(hit.has_value()) << "tag " << tag;
    EXPECT_EQ(*hit, response_of(tag));
  }
  // Recency survived the round trip: inserting one new entry must evict the
  // snapshot's LRU entry (2), not 1 or 3. Rebuild to avoid the lookups above.
  ResponseCache again(3);
  snapshot.clear();
  snapshot.seekg(0);
  again.deserialize(snapshot);
  again.insert(key_of(99), response_of(99));
  EXPECT_TRUE(again.lookup(key_of(1)).has_value());
  EXPECT_TRUE(again.lookup(key_of(3)).has_value());
  EXPECT_FALSE(again.lookup(key_of(2)).has_value());
}

TEST(ResponseCache, SnapshotPreservesFullResponsePayload) {
  // Exercise every serialized field, including diagnostics and ratio.
  Response r;
  r.solver = "algorithm1";
  r.problem = Problem::Mds;
  r.solution = {1, 4, 7};
  r.valid = true;
  r.ratio = {3, 2, true, 1.5};
  r.ratio_measured = true;
  r.diag.rounds = 9;
  r.diag.traffic = {9, 1234, 56789};
  r.diag.traffic_measured = true;
  r.diag.twin_classes = 4;
  r.diag.one_cuts = {2, 3};
  r.diag.two_cut_vertices = {5};
  r.diag.brute_forced = {6, 7, 8};
  r.diag.residual_components = 2;
  r.diag.max_residual_diameter = 11;

  ResponseCache cache(4);
  cache.insert(key_of(42), r);
  std::stringstream snapshot(std::ios::in | std::ios::out | std::ios::binary);
  cache.serialize(snapshot);
  ResponseCache restored(4);
  restored.deserialize(snapshot);
  const auto hit = restored.lookup(key_of(42));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, r);  // field-wise, the determinism operator
}

TEST(ResponseCache, SnapshotClampsToCapacityKeepingMostRecent) {
  ResponseCache big(8);
  for (int tag = 0; tag < 8; ++tag) big.insert(key_of(tag), response_of(tag));
  std::stringstream snapshot(std::ios::in | std::ios::out | std::ios::binary);
  big.serialize(snapshot);

  ResponseCache small(3);
  small.deserialize(snapshot);
  const CacheStats stats = small.stats();
  EXPECT_EQ(stats.size, 3u);
  EXPECT_EQ(stats.evictions, 0u);  // clamping a snapshot is not an eviction
  EXPECT_TRUE(small.lookup(key_of(7)).has_value());
  EXPECT_TRUE(small.lookup(key_of(6)).has_value());
  EXPECT_TRUE(small.lookup(key_of(5)).has_value());
  EXPECT_FALSE(small.lookup(key_of(4)).has_value());
}

TEST(ResponseCache, RejectsCorruptAndTruncatedSnapshots) {
  ResponseCache cache(4);
  for (int tag = 0; tag < 4; ++tag) cache.insert(key_of(tag), response_of(tag));
  std::stringstream snapshot(std::ios::in | std::ios::out | std::ios::binary);
  cache.serialize(snapshot);
  const std::string bytes = snapshot.str();

  ResponseCache target(4);
  target.insert(key_of(100), response_of(100));

  std::stringstream bad_magic(std::string("XXXXXXXX") + bytes.substr(8),
                              std::ios::in | std::ios::binary);
  EXPECT_THROW(target.deserialize(bad_magic), std::runtime_error);

  for (const std::size_t cut : {std::size_t{0}, std::size_t{7}, std::size_t{20},
                                bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, cut), std::ios::in | std::ios::binary);
    EXPECT_THROW(target.deserialize(truncated), std::runtime_error) << "cut at " << cut;
  }

  // Every failed load left the target untouched.
  EXPECT_EQ(target.stats().size, 1u);
  EXPECT_TRUE(target.lookup(key_of(100)).has_value());
}

// ---------------------------------------------------------------------------
// Parallel executor: determinism, caching, diagnostics

TEST(BatchExecutor, ThreadCountsProduceIdenticalResponses) {
  const auto graphs = generator_suite();
  const auto& reg = Registry::instance();

  for (const char* solver : {"algorithm1", "theorem44", "greedy"}) {
    Request req;
    req.measure_ratio = true;
    const std::vector<Response> sequential = reg.run_batch(solver, span_of(graphs), req);

    for (const int threads : {1, 2, 8}) {
      BatchOptions opts;
      opts.threads = threads;
      opts.shard_size = 2;
      BatchDiagnostics diag;
      const auto parallel = reg.run_batch(solver, span_of(graphs), req, opts, &diag);
      ASSERT_EQ(parallel.size(), graphs.size());
      EXPECT_EQ(parallel, sequential) << solver << " diverged at threads=" << threads;
      EXPECT_EQ(diag.shards, static_cast<int>((graphs.size() + 1) / 2));
      EXPECT_LE(diag.threads, threads == 1 ? 1 : threads);
    }
  }
}

TEST(BatchExecutor, LocalModeStaysDeterministicInParallel) {
  const auto graphs = generator_suite();
  Request req;
  req.measure_traffic = true;  // exercise the simulator path concurrently
  const auto& reg = Registry::instance();
  const auto sequential = reg.run_batch("theorem44", span_of(graphs), req);
  BatchOptions opts;
  opts.threads = 8;
  opts.shard_size = 1;
  EXPECT_EQ(reg.run_batch("theorem44", span_of(graphs), req, opts), sequential);
}

TEST(BatchExecutor, CacheHitIsBitIdentical) {
  const auto graphs = generator_suite();
  BatchOptions opts;
  opts.threads = 2;
  opts.shard_size = 2;
  opts.cache_capacity = graphs.size();
  BatchExecutor executor(opts);

  Request req;
  req.measure_ratio = true;
  BatchDiagnostics cold;
  const auto first = executor.run_batch("algorithm1", span_of(graphs), req, &cold);
  BatchDiagnostics warm;
  const auto second = executor.run_batch("algorithm1", span_of(graphs), req, &warm);

  EXPECT_EQ(second, first);  // bit-identical Responses, field by field
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, graphs.size());
  EXPECT_EQ(warm.cache_hits, graphs.size());
  EXPECT_EQ(warm.cache_misses, 0u);
}

TEST(BatchExecutor, CacheKeyCanonicalizationMergesSpelledOutDefaults) {
  const auto graphs = generator_suite();
  BatchOptions opts;
  opts.cache_capacity = graphs.size();
  BatchExecutor executor(opts);

  Request defaults;  // t/radius1/radius2/twin_removal all defaulted
  (void)executor.run_batch("algorithm1", span_of(graphs), defaults);

  Request spelled;  // the same values, spelled out (ints coerced to bool)
  spelled.options["t"] = 5;
  spelled.options["radius1"] = 4;
  spelled.options["radius2"] = 4;
  spelled.options["twin_removal"] = 1;
  BatchDiagnostics diag;
  (void)executor.run_batch("algorithm1", span_of(graphs), spelled, &diag);
  EXPECT_EQ(diag.cache_hits, graphs.size()) << "canonicalized keys should collide";
}

TEST(BatchExecutor, DifferentOptionsDoNotShareCacheLines) {
  const auto graphs = generator_suite();
  BatchOptions opts;
  opts.cache_capacity = 4 * graphs.size();
  BatchExecutor executor(opts);

  Request req;
  (void)executor.run_batch("algorithm1", span_of(graphs), req);
  Request other;
  other.options["radius1"] = 2;
  BatchDiagnostics diag;
  (void)executor.run_batch("algorithm1", span_of(graphs), other, &diag);
  EXPECT_EQ(diag.cache_hits, 0u);
  // Same solver+graph but different flags must miss too.
  Request ratio = req;
  ratio.measure_ratio = true;
  BatchDiagnostics flag_diag;
  (void)executor.run_batch("algorithm1", span_of(graphs), ratio, &flag_diag);
  EXPECT_EQ(flag_diag.cache_hits, 0u);
}

TEST(BatchExecutor, EvictionAtCapacityStillCorrect) {
  const auto graphs = generator_suite();
  BatchOptions opts;
  opts.cache_capacity = 2;  // far below the batch size: constant churn
  BatchExecutor executor(opts);

  Request req;
  const auto expected = Registry::instance().run_batch("theorem44", span_of(graphs), req);
  for (int pass = 0; pass < 2; ++pass) {
    EXPECT_EQ(executor.run_batch("theorem44", span_of(graphs), req), expected);
  }
  const CacheStats stats = executor.cache_stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(BatchExecutor, ConcurrentCallersAreSafe) {
  const auto graphs = generator_suite();
  BatchOptions opts;
  opts.threads = 2;
  opts.shard_size = 1;
  opts.cache_capacity = 2 * graphs.size();
  BatchExecutor executor(opts);  // one shared executor, one shared cache

  Request req;
  const auto expected = Registry::instance().run_batch("theorem44", span_of(graphs), req);

  constexpr int kCallers = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        if (executor.run_batch("theorem44", span_of(graphs), req) != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const CacheStats stats = executor.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, kCallers * 3 * graphs.size());
}

TEST(BatchExecutor, SolverExceptionPropagatesAndAbortsBatch) {
  Registry reg;
  reg.add({.name = "boom", .problem = Problem::Mds, .summary = "throws on cycles", .params = {}},
          [](const SolveContext& ctx) {
            if (ctx.graph.num_edges() == ctx.graph.num_vertices()) {
              throw std::runtime_error("boom");
            }
            SolverOutput out;
            for (Vertex v = 0; v < ctx.graph.num_vertices(); ++v) out.solution.push_back(v);
            return out;
          });

  std::vector<Graph> graphs;
  for (int i = 0; i < 6; ++i) graphs.push_back(graph::gen::path(4 + i));
  graphs.push_back(graph::gen::cycle(5));  // the poisoned graph

  BatchOptions opts;
  opts.threads = 4;
  opts.shard_size = 1;
  BatchExecutor executor(opts, reg);
  Request req;
  EXPECT_THROW((void)executor.run_batch("boom", span_of(graphs), req), std::runtime_error);
}

TEST(BatchExecutor, ThrowingSolveDoesNotCountAMiss) {
  // Regression: the miss used to be counted between the failed lookup and
  // the compute, so a throwing solve left hits + misses ahead of the work
  // that actually completed. Misses now track completed compute+insert.
  Registry reg;
  reg.add({.name = "boom", .problem = Problem::Mds, .summary = "throws on cycles", .params = {}},
          [](const SolveContext& ctx) {
            if (ctx.graph.num_edges() == ctx.graph.num_vertices()) {
              throw std::runtime_error("boom");
            }
            SolverOutput out;
            for (Vertex v = 0; v < ctx.graph.num_vertices(); ++v) out.solution.push_back(v);
            return out;
          });

  std::vector<Graph> graphs;
  for (int i = 0; i < 3; ++i) graphs.push_back(graph::gen::path(4 + i));
  graphs.push_back(graph::gen::cycle(5));  // poisoned: solve throws here
  graphs.push_back(graph::gen::path(9));

  BatchOptions opts;
  opts.threads = 1;  // deterministic progress: graphs run in index order
  opts.shard_size = 1;
  opts.cache_capacity = 16;
  BatchExecutor executor(opts, reg);
  EXPECT_THROW((void)executor.run_batch("boom", span_of(graphs), Request{}),
               std::runtime_error);

  const CacheStats stats = executor.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u) << "only the three completed graphs may count";
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(stats.size))
      << "every counted miss corresponds to an inserted Response";
}

TEST(BatchExecutor, ValidatesRequestBeforeSpawning) {
  const auto graphs = generator_suite();
  BatchOptions opts;
  opts.threads = 4;
  BatchExecutor executor(opts);
  Request bad;
  bad.options["radius9"] = 1;
  EXPECT_THROW((void)executor.run_batch("algorithm1", span_of(graphs), bad), RequestError);
  EXPECT_THROW((void)executor.run_batch("no-such", span_of(graphs), Request{}), RequestError);
}

TEST(BatchExecutor, RejectsNonPositiveShardSize) {
  BatchOptions opts;
  opts.shard_size = 0;
  EXPECT_THROW(BatchExecutor{opts}, std::invalid_argument);
}

TEST(BatchExecutor, EmptyBatchReturnsEmpty) {
  BatchOptions opts;
  opts.threads = 4;
  BatchExecutor executor(opts);
  BatchDiagnostics diag;
  const auto out = executor.run_batch("greedy", {}, Request{}, &diag);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(diag.shards, 0);
}

// ---------------------------------------------------------------------------
// Typed ParamValue

TEST(ParamValue, TypedAccessors) {
  const ParamValue i = 7;
  const ParamValue b = true;
  const ParamValue d = 0.5;
  EXPECT_EQ(i.type(), ParamValue::Type::Int);
  EXPECT_EQ(b.type(), ParamValue::Type::Bool);
  EXPECT_EQ(d.type(), ParamValue::Type::Double);

  EXPECT_EQ(i.as_int(), 7);
  EXPECT_TRUE(b.as_bool());
  EXPECT_DOUBLE_EQ(d.as_double(), 0.5);

  EXPECT_TRUE(i.as_bool());             // int widens to bool
  EXPECT_DOUBLE_EQ(i.as_double(), 7.0); // ...and to double
  EXPECT_THROW((void)d.as_int(), std::invalid_argument);   // never truncates
  EXPECT_THROW((void)b.as_int(), std::invalid_argument);
  EXPECT_THROW((void)d.as_bool(), std::invalid_argument);
  EXPECT_THROW((void)b.as_double(), std::invalid_argument);

  EXPECT_EQ(i.to_string(), "7");
  EXPECT_EQ(b.to_string(), "true");
  EXPECT_EQ(d.to_string(), "0.5");
  EXPECT_NE(ParamValue(1), ParamValue(true));  // typed: int 1 != bool true
}

TEST(ParamValue, RegistryCoercesAndRejectsByDeclaredType) {
  Registry reg;
  reg.add({.name = "typed",
           .problem = Problem::Mds,
           .summary = "typed parameter probe",
           .params = {{"count", 3, "int knob"},
                      {"enabled", true, "bool knob"},
                      {"alpha", 0.5, "double knob"}}},
          [](const SolveContext& ctx) {
            SolverOutput out;
            // Encode the received values so the test can observe them.
            out.diag.rounds = ctx.params.find("count")->second.as_int();
            out.diag.twin_classes = ctx.params.find("enabled")->second.as_bool() ? 1 : 0;
            out.diag.residual_components =
                static_cast<int>(ctx.params.find("alpha")->second.as_double() * 100);
            for (Vertex v = 0; v < ctx.graph.num_vertices(); ++v) out.solution.push_back(v);
            return out;
          });

  const Graph g = graph::gen::path(4);
  Request req;
  req.graph = &g;
  req.options["count"] = 9;
  req.options["enabled"] = 0;     // int -> bool coercion
  req.options["alpha"] = 1;       // int -> double promotion
  const Response res = reg.run("typed", req);
  EXPECT_EQ(res.diag.rounds, 9);
  EXPECT_EQ(res.diag.twin_classes, 0);
  EXPECT_EQ(res.diag.residual_components, 100);

  Request narrow;
  narrow.graph = &g;
  narrow.options["count"] = 2.5;  // double -> int would truncate: rejected
  EXPECT_THROW((void)reg.run("typed", narrow), RequestError);
  Request bool_for_int;
  bool_for_int.graph = &g;
  bool_for_int.options["count"] = true;
  EXPECT_THROW((void)reg.run("typed", bool_for_int), RequestError);

  // resolve_options exposes the canonical map the cache key is built from.
  Request partial;
  partial.options["enabled"] = 1;
  const Options resolved = reg.resolve_options("typed", partial);
  EXPECT_EQ(resolved.find("count")->second, ParamValue(3));
  EXPECT_EQ(resolved.find("enabled")->second, ParamValue(true));
  EXPECT_EQ(resolved.find("alpha")->second, ParamValue(0.5));
}

TEST(ParamValue, ParseParamValueAcceptsWellFormedSpellings) {
  using T = ParamValue::Type;
  EXPECT_EQ(parse_param_value("5", T::Int), ParamValue(5));
  EXPECT_EQ(parse_param_value("-3", T::Int), ParamValue(-3));
  EXPECT_EQ(parse_param_value("2147483647", T::Int), ParamValue(2147483647));
  EXPECT_EQ(parse_param_value("true", T::Bool), ParamValue(true));
  EXPECT_EQ(parse_param_value("false", T::Bool), ParamValue(false));
  // Integer spellings of a bool stay Int; the registry's coercion decides.
  EXPECT_EQ(parse_param_value("1", T::Bool), ParamValue(1));
  EXPECT_EQ(parse_param_value("0.25", T::Double), ParamValue(0.25));
  EXPECT_EQ(parse_param_value("1e-3", T::Double), ParamValue(0.001));
  EXPECT_EQ(parse_param_value("7", T::Double), ParamValue(7.0));
}

TEST(ParamValue, ParseParamValueRejectsMalformedAndOutOfRange) {
  using T = ParamValue::Type;
  // The mds_cli regression: out-of-range ints must not silently wrap.
  EXPECT_FALSE(parse_param_value("99999999999", T::Int).has_value());
  EXPECT_FALSE(parse_param_value("-99999999999", T::Int).has_value());
  EXPECT_FALSE(parse_param_value("2147483648", T::Int).has_value());
  for (const char* bad : {"", "5x", "x5", "graph.txt", "2.5", "--quiet", " 5", "5 "}) {
    EXPECT_FALSE(parse_param_value(bad, T::Int).has_value()) << "accepted: " << bad;
  }
  for (const char* bad : {"", "0.25.5", "1e", "inf", "-inf", "nan", "0,5"}) {
    EXPECT_FALSE(parse_param_value(bad, T::Double).has_value()) << "accepted: " << bad;
  }
  EXPECT_FALSE(parse_param_value("yes", T::Bool).has_value());
  EXPECT_FALSE(parse_param_value("TRUE", T::Bool).has_value());
}

// ---------------------------------------------------------------------------
// Cache namespaces (protocol v2): isolation, per-namespace counters,
// snapshot round trip and read-compat with the pre-namespace format.

TEST(ResponseCache, NamespacesNeverShareEntries) {
  ResponseCache cache(8);
  cache.insert(key_in_ns(1, ""), response_of(1));
  EXPECT_FALSE(cache.lookup(key_in_ns(1, "tenant-a")).has_value());
  cache.insert(key_in_ns(1, "tenant-a"), response_of(2));
  // Same (hash, solver, options) — distinct namespaces hold distinct values.
  EXPECT_EQ(cache.lookup(key_in_ns(1, ""))->solution, response_of(1).solution);
  EXPECT_EQ(cache.lookup(key_in_ns(1, "tenant-a"))->solution, response_of(2).solution);

  const auto ns = cache.namespace_stats();
  ASSERT_TRUE(ns.contains(""));
  ASSERT_TRUE(ns.contains("tenant-a"));
  EXPECT_EQ(ns.at("").size, 1u);
  EXPECT_EQ(ns.at("").hits, 1u);
  EXPECT_EQ(ns.at("tenant-a").size, 1u);
  EXPECT_EQ(ns.at("tenant-a").hits, 1u);
  EXPECT_EQ(ns.at("tenant-a").misses, 1u);
}

TEST(ResponseCache, EvictionChargedToTheNamespaceLosingTheEntry) {
  ResponseCache cache(2);  // capacity is shared across namespaces
  cache.insert(key_in_ns(1, "a"), response_of(1));
  cache.insert(key_in_ns(2, "b"), response_of(2));
  cache.insert(key_in_ns(3, "b"), response_of(3));  // evicts a's entry (LRU)
  const auto ns = cache.namespace_stats();
  EXPECT_EQ(ns.at("a").evictions, 1u);
  EXPECT_EQ(ns.at("a").size, 0u);
  EXPECT_EQ(ns.at("b").evictions, 0u);
  EXPECT_EQ(ns.at("b").size, 2u);
  EXPECT_FALSE(cache.lookup(key_in_ns(1, "a")).has_value());
}

TEST(ResponseCache, NamespaceCountersAreBoundedAgainstTenantChurn) {
  // Namespaces are client-supplied: a stream of never-repeating tenant tags
  // must not grow the counter map without bound. Counters of namespaces
  // holding no entries are pruned once ~1024 are tracked.
  ResponseCache cache(4);
  for (int i = 0; i < 1500; ++i) {
    cache.insert(key_in_ns(i, "tenant-" + std::to_string(i)), response_of(i));
  }
  EXPECT_LE(cache.namespace_stats().size(), 1025u);
  // The namespaces still holding entries (the 4 most recent) survived.
  EXPECT_EQ(cache.namespace_stats().at("tenant-1499").size, 1u);
}

TEST(ResponseCache, SnapshotRoundTripPreservesNamespaces) {
  ResponseCache cache(4);
  cache.insert(key_in_ns(1, ""), response_of(1));
  cache.insert(key_in_ns(1, "tenant-a"), response_of(2));
  std::stringstream snapshot(std::ios::in | std::ios::out | std::ios::binary);
  cache.serialize(snapshot);

  ResponseCache restored(4);
  restored.deserialize(snapshot);
  EXPECT_EQ(restored.lookup(key_in_ns(1, ""))->solution, response_of(1).solution);
  EXPECT_EQ(restored.lookup(key_in_ns(1, "tenant-a"))->solution, response_of(2).solution);
  const auto ns = restored.namespace_stats();
  EXPECT_EQ(ns.at("").size, 1u);
  EXPECT_EQ(ns.at("tenant-a").size, 1u);
}

TEST(ResponseCache, ReadsVersion1SnapshotsIntoDefaultNamespace) {
  // A hand-written version-1 snapshot (the pre-namespace format): one entry,
  // key (7, "solver", "opts"), minimal Response {solver, solution=[5],
  // valid}. Byte-for-byte what PR 4's serialize() wrote — the compat
  // contract is that v2 still loads it, placing the entry in namespace "".
  std::string bytes;
  const auto put_u8 = [&](std::uint8_t v) { bytes.push_back(static_cast<char>(v)); };
  const auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  const auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  const auto put_str = [&](std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    bytes.append(s);
  };
  bytes = "LMDSCACH";
  put_u32(1);  // version 1: no ns field per entry
  put_u64(1);  // one entry
  put_u64(7);  // key.graph_hash
  put_str("solver");
  put_str("opts");
  // Response: solver, problem, solution, valid, ratio, ratio_measured, diag.
  put_str("solver");
  put_u8(0);   // Problem::Mds
  put_u32(1);  // |solution|
  put_u32(5);  // solution[0]
  put_u8(1);   // valid
  put_u32(0);  // ratio.solution_size
  put_u32(0);  // ratio.reference
  put_u8(0);   // ratio.exact
  put_u64(0);  // ratio.ratio (0.0 bits)
  put_u8(0);   // ratio_measured
  put_u32(static_cast<std::uint32_t>(-1));  // diag.rounds = -1
  put_u32(0);  // traffic.rounds
  put_u64(0);  // traffic.messages
  put_u64(0);  // traffic.bytes
  put_u8(0);   // traffic_measured
  put_u32(0);  // twin_classes
  put_u32(0);  // one_cuts
  put_u32(0);  // two_cut_vertices
  put_u32(0);  // brute_forced
  put_u32(0);  // residual_components
  put_u32(0);  // max_residual_diameter
  put_u64(0x4C4D44534E415053ULL);  // footer "LMDSNAPS"

  ResponseCache cache(4);
  std::stringstream snapshot(bytes, std::ios::in | std::ios::binary);
  cache.deserialize(snapshot);
  const auto hit = cache.lookup(CacheKey{7, "solver", "opts", ""});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution, std::vector<Vertex>{5});
  EXPECT_FALSE(cache.lookup(CacheKey{7, "solver", "opts", "tenant-a"}).has_value());
}

// ---------------------------------------------------------------------------
// GraphStore: content-addressed handles, refcounts, capacity eviction

TEST(GraphStore, HandlesRoundTripAndRejectMalformedSpellings) {
  EXPECT_EQ(GraphStore::handle_for(0), "g0000000000000000");
  EXPECT_EQ(GraphStore::handle_for(0xDEADBEEFULL), "g00000000deadbeef");
  for (const std::uint64_t h : {std::uint64_t{0}, std::uint64_t{0xDEADBEEF},
                                ~std::uint64_t{0}}) {
    EXPECT_EQ(GraphStore::parse_handle(GraphStore::handle_for(h)), h);
  }
  for (const char* bad : {"", "g", "x0000000000000000", "g00000000deadbee",
                          "g00000000deadbeef0", "g00000000DEADBEEF", "g00000000deadbeeg"}) {
    EXPECT_FALSE(GraphStore::parse_handle(bad).has_value()) << "accepted: " << bad;
  }
}

TEST(GraphStore, PutIsContentAddressedAndRefcounted) {
  GraphStore store(4);
  const auto first = store.put(graph::gen::path(5));
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(first.vertices, 5);
  EXPECT_EQ(first.edges, 4);
  const auto second = store.put(graph::gen::path(5));  // identical content
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(second.handle, first.handle);
  EXPECT_EQ(store.stats().size, 1u);
  EXPECT_EQ(store.stats().reuses, 1u);

  const auto resolved = store.get(first.handle);
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(*resolved, graph::gen::path(5));

  // Two puts need two drops before the entry is unpinned; a third drop has
  // nothing left to release.
  EXPECT_TRUE(store.drop(first.handle));
  EXPECT_EQ(store.stats().pinned, 1u);
  EXPECT_TRUE(store.drop(first.handle));
  EXPECT_EQ(store.stats().pinned, 0u);
  EXPECT_FALSE(store.drop(first.handle));
  // Unpinned but not evicted: still resolvable until capacity pressure.
  EXPECT_NE(store.get(first.handle), nullptr);
}

TEST(GraphStore, CapacityEvictsUnpinnedLruAndRefusesWhenAllPinned) {
  GraphStore store(2);
  const auto a = store.put(graph::gen::path(3));
  const auto b = store.put(graph::gen::cycle(4));
  EXPECT_THROW(store.put(graph::gen::star(5)), GraphStoreFull);  // both pinned

  EXPECT_TRUE(store.drop(a.handle));  // a unpinned -> evictable
  const auto c = store.put(graph::gen::star(5));
  EXPECT_TRUE(c.inserted);
  EXPECT_EQ(store.get(a.handle), nullptr);  // evicted
  EXPECT_NE(store.get(b.handle), nullptr);
  EXPECT_EQ(store.stats().evictions, 1u);

  // A graph a solve is still holding survives its eviction (shared_ptr).
  const auto pinned_by_solve = store.get(b.handle);
  EXPECT_TRUE(store.drop(b.handle));
  EXPECT_TRUE(store.drop(c.handle));
  (void)store.put(graph::gen::grid(2, 3));
  (void)store.put(graph::gen::grid(2, 4));
  EXPECT_EQ(*pinned_by_solve, graph::gen::cycle(4));
}

TEST(GraphStore, ZeroCapacityDisablesPuts) {
  GraphStore store(0);
  EXPECT_THROW(store.put(graph::gen::path(3)), GraphStoreFull);
}

// ---------------------------------------------------------------------------
// BatchOverrides: per-request executor knobs (protocol v2)

TEST(BatchExecutor, OverridesChangeThreadsAndShardsForOneBatchOnly) {
  const auto graphs = generator_suite();
  BatchExecutor executor({.threads = 1, .shard_size = 4, .cache_capacity = 0});
  Request req;

  BatchDiagnostics diag;
  BatchOverrides over;
  over.threads = 3;
  over.shard_size = 1;
  const auto overridden =
      executor.run_batch("greedy", span_of(graphs), req, over, &diag);
  EXPECT_EQ(diag.threads, 3);
  EXPECT_EQ(diag.shards, static_cast<int>(graphs.size()));

  BatchDiagnostics plain;
  const auto defaults = executor.run_batch("greedy", span_of(graphs), req, &plain);
  EXPECT_EQ(plain.threads, 1);  // the configured defaults are untouched
  EXPECT_EQ(overridden, defaults);  // determinism across worker counts

  BatchOverrides bad;
  bad.shard_size = 0;
  EXPECT_THROW((void)executor.run_batch("greedy", span_of(graphs), req, bad, nullptr),
               RequestError);
}

TEST(BatchExecutor, BypassCacheComputesFreshAndLeavesCacheUntouched) {
  const auto graphs = generator_suite();
  BatchExecutor executor({.threads = 2, .shard_size = 2, .cache_capacity = 64});
  Request req;
  (void)executor.run_batch("greedy", span_of(graphs), req, nullptr);  // fill
  const CacheStats before = executor.cache_stats();
  EXPECT_EQ(before.size, graphs.size());

  BatchOverrides over;
  over.bypass_cache = true;
  BatchDiagnostics diag;
  const auto fresh = executor.run_batch("greedy", span_of(graphs), req, over, &diag);
  EXPECT_EQ(diag.cache_hits, 0u);    // did not read
  EXPECT_EQ(diag.cache_misses, 0u);  // did not write
  EXPECT_EQ(executor.cache_stats(), before);  // cache bit-identical

  // And the bypass run computed the same responses a cached run returns.
  EXPECT_EQ(fresh, executor.run_batch("greedy", span_of(graphs), req, nullptr));
}

TEST(BatchExecutor, CacheNamespacesIsolateIdenticalRequests) {
  const auto graphs = generator_suite();
  BatchExecutor executor({.threads = 2, .shard_size = 2, .cache_capacity = 256});
  Request req;

  BatchOverrides tenant_a;
  tenant_a.cache_namespace = "tenant-a";
  BatchDiagnostics first;
  (void)executor.run_batch("greedy", span_of(graphs), req, tenant_a, &first);
  EXPECT_EQ(first.cache_misses, graphs.size());

  // Same graphs + solver + options in another namespace: all misses again.
  BatchOverrides tenant_b;
  tenant_b.cache_namespace = "tenant-b";
  BatchDiagnostics second;
  (void)executor.run_batch("greedy", span_of(graphs), req, tenant_b, &second);
  EXPECT_EQ(second.cache_hits, 0u);
  EXPECT_EQ(second.cache_misses, graphs.size());

  // Back in the first namespace: all hits.
  BatchDiagnostics third;
  (void)executor.run_batch("greedy", span_of(graphs), req, tenant_a, &third);
  EXPECT_EQ(third.cache_hits, graphs.size());
  EXPECT_EQ(third.cache_misses, 0u);

  const auto ns = executor.cache().namespace_stats();
  EXPECT_EQ(ns.at("tenant-a").size, graphs.size());
  EXPECT_EQ(ns.at("tenant-b").size, graphs.size());
  EXPECT_EQ(ns.at("tenant-a").hits, graphs.size());
}

TEST(BatchExecutor, PointerSpanBatchesMatchValueSpans) {
  const auto graphs = generator_suite();
  std::vector<const Graph*> ptrs;
  for (const Graph& g : graphs) ptrs.push_back(&g);

  BatchExecutor executor({.threads = 2, .shard_size = 2, .cache_capacity = 0});
  Request req;
  req.measure_ratio = true;
  const auto by_value = executor.run_batch("theorem44", span_of(graphs), req, nullptr);
  const auto by_pointer = executor.run_batch(
      "theorem44", std::span<const Graph* const>{ptrs.data(), ptrs.size()}, req,
      BatchOverrides{}, nullptr);
  EXPECT_EQ(by_value, by_pointer);
}

TEST(ParamValue, BuiltinTwinRemovalIsBoolTyped) {
  const auto& spec = Registry::instance().at("algorithm1");
  EXPECT_EQ(spec.param_default("twin_removal").type(), ParamValue::Type::Bool);
  EXPECT_EQ(spec.param_default("twin_removal"), ParamValue(true));
  EXPECT_EQ(spec.param_default("t"), ParamValue(5));

  // Legacy int spelling still works through coercion.
  const Graph g = graph::gen::clique_with_pendants(8);
  Request off_int;
  off_int.graph = &g;
  off_int.options["twin_removal"] = 0;
  Request off_bool;
  off_bool.graph = &g;
  off_bool.options["twin_removal"] = false;
  const auto& reg = Registry::instance();
  EXPECT_EQ(reg.run("algorithm1", off_int), reg.run("algorithm1", off_bool));
}

}  // namespace
}  // namespace lmds::api
