// Tests for the cluster subsystem: consistent-hash ring placement, the raw
// solve-response splitter, pin leases (ownership, expiry, connection
// teardown), per-namespace quotas (store bytes + solve admission), peer
// replication (in-process and pushed over a socket), and — the heart of the
// subsystem — a routed 2-worker cluster whose mixed handle/inline batches
// come back BIT-IDENTICAL to a single server on both transports.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/graph_store.hpp"
#include "cluster/hash_ring.hpp"
#include "cluster/replication.hpp"
#include "cluster/router.hpp"
#include "graph/generators.hpp"
#include "graph/hash.hpp"
#include "server/net.hpp"
#include "server/server.hpp"
#include "server/session.hpp"

namespace lmds::cluster {
namespace {

using graph::Graph;
using server::JsonValue;
using server::json_parse;
using server::LineReader;
using server::Server;
using server::ServerOptions;
using server::Session;

std::string graphs_json(const std::vector<Graph>& gs) {
  std::string out = "[";
  for (std::size_t i = 0; i < gs.size(); ++i) {
    if (i) out += ',';
    out += "{\"n\":" + std::to_string(gs[i].num_vertices()) + ",\"edges\":[";
    bool first = true;
    for (const auto& [u, v] : gs[i].edges()) {
      if (!first) out += ',';
      first = false;
      out += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
    }
    out += "]}";
  }
  return out + "]";
}

std::string graph_json(const Graph& g) {
  const std::string wrapped = graphs_json({g});
  return wrapped.substr(1, wrapped.size() - 2);  // strip the array brackets
}

ServerOptions worker_options() {
  ServerOptions opts;
  opts.port = 0;  // ephemeral
  opts.core.batch.threads = 2;
  opts.core.batch.shard_size = 1;
  opts.core.batch.cache_capacity = 64;
  return opts;
}

/// One raw line-protocol exchange over an already-connected socket; the
/// bit-identity tests need the verbatim response text, not a parse.
std::string raw_line_exchange(int fd, LineReader& reader, const std::string& line) {
  EXPECT_TRUE(server::send_all(fd, line + "\n"));
  const std::optional<std::string> response = reader.next_line(64u << 20);
  EXPECT_TRUE(response.has_value());
  return response.value_or("");
}

/// One raw HTTP exchange; returns the verbatim response body.
std::string raw_http_exchange(int fd, LineReader& reader, const std::string& method,
                              const std::string& target, const std::string& body) {
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  EXPECT_TRUE(server::send_all(fd, request));
  std::size_t content_length = 0;
  const std::optional<std::string> status = reader.next_line(1u << 16);
  EXPECT_TRUE(status.has_value());
  while (true) {
    const std::optional<std::string> header = reader.next_line(1u << 16);
    EXPECT_TRUE(header.has_value());
    if (!header || header->empty()) break;
    if (header->starts_with("Content-Length: ")) {
      content_length = std::stoul(header->substr(sizeof("Content-Length: ") - 1));
    }
  }
  const std::optional<std::string> body_out = reader.read_exact(content_length);
  EXPECT_TRUE(body_out.has_value());
  return body_out.value_or("");
}

// ---------------------------------------------------------------------------
// Hash ring

TEST(HashRing, DeterministicCoveringPlacement) {
  const std::vector<std::string> peers{"a:1", "b:2", "c:3"};
  const HashRing ring(peers, 64);
  const HashRing twin(peers, 64);
  std::set<std::size_t> seen;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    const std::uint64_t hash = graph::mix64(k);
    const std::size_t owner = ring.owner_index(hash);
    ASSERT_LT(owner, peers.size());
    EXPECT_EQ(owner, twin.owner_index(hash));  // same config, same placement
    seen.insert(owner);
  }
  EXPECT_EQ(seen.size(), peers.size());  // every peer owns some keyspace
}

TEST(HashRing, PreferenceStartsAtOwnerAndCoversAllPeers) {
  const HashRing ring({"a:1", "b:2", "c:3", "d:4"}, 16);
  for (std::uint64_t k = 0; k < 256; ++k) {
    const std::vector<std::size_t> order = ring.preference(k);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), ring.owner_index(k));
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 4u);
  }
}

TEST(HashRing, RejectsEmptyAndDuplicatePeers) {
  EXPECT_THROW(HashRing({}, 4), std::invalid_argument);
  EXPECT_THROW(HashRing({"a:1", "a:1"}, 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Raw response splitter (what routed bit-identity rests on)

TEST(SplitRawResponses, RoundTripsNestedBracketsAndStrings) {
  const std::string line =
      "{\"ok\":true,\"op\":\"solve\",\"responses\":["
      "{\"solver\":\"x\",\"solution\":[1,2,[3]]},"
      "{\"note\":\"tricky \\\"}]\\\" string\"},"
      "{\"empty\":{}}"
      "],\"diag\":{\"threads\":1}}";
  const auto pieces = split_raw_responses(line);
  ASSERT_TRUE(pieces.has_value());
  ASSERT_EQ(pieces->size(), 3u);
  EXPECT_EQ((*pieces)[0], "{\"solver\":\"x\",\"solution\":[1,2,[3]]}");
  EXPECT_EQ((*pieces)[1], "{\"note\":\"tricky \\\"}]\\\" string\"}");
  EXPECT_EQ((*pieces)[2], "{\"empty\":{}}");
}

TEST(SplitRawResponses, RejectsNonSolveAndTruncatedLines) {
  EXPECT_FALSE(split_raw_responses("{\"ok\":false,\"code\":\"server_busy\"}").has_value());
  EXPECT_FALSE(split_raw_responses("{\"ok\":true,\"op\":\"stats\"}").has_value());
  EXPECT_FALSE(
      split_raw_responses("{\"ok\":true,\"op\":\"solve\",\"responses\":[{\"a\":1}").has_value());
  const auto empty = split_raw_responses("{\"ok\":true,\"op\":\"solve\",\"responses\":[],...");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

// ---------------------------------------------------------------------------
// Pin leases

TEST(PinLeases, DropByAnotherSessionFailsReleaseSessionFrees) {
  api::GraphStore store(8);
  const auto put = store.put(graph::gen::path(5), /*session=*/1);
  EXPECT_FALSE(store.drop(put.handle, /*session=*/2));  // not its pin
  EXPECT_FALSE(store.drop(put.handle, api::kSharedSession));
  EXPECT_EQ(store.stats().pinned, 1u);
  EXPECT_EQ(store.release_session(1), 1u);
  EXPECT_EQ(store.stats().pinned, 0u);
  EXPECT_NE(store.get(put.handle), nullptr);  // unpinned, not erased
}

TEST(PinLeases, ExpiryReleasesPinsAndFreesCapacity) {
  api::GraphStore::StoreOptions opts;
  opts.capacity = 2;
  opts.lease_ttl = std::chrono::milliseconds(40);
  api::GraphStore store(opts);
  (void)store.put(graph::gen::path(3), /*session=*/7);
  (void)store.put(graph::gen::cycle(4), /*session=*/7);
  EXPECT_EQ(store.stats().pinned, 2u);
  // Pinned to capacity: a third put has nothing to evict.
  EXPECT_THROW((void)store.put(graph::gen::grid(2, 3), /*session=*/8),
               api::GraphStoreFull);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(store.expire_leases(), 2u);
  const api::GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.pinned, 0u);
  EXPECT_EQ(stats.lease_expiries, 2u);
  // The expired entries are now evictable — the same put succeeds.
  EXPECT_NO_THROW((void)store.put(graph::gen::grid(2, 3), /*session=*/8));
}

TEST(PinLeases, TouchRenewsTheLease) {
  api::GraphStore::StoreOptions opts;
  opts.capacity = 2;
  opts.lease_ttl = std::chrono::milliseconds(120);
  api::GraphStore store(opts);
  const auto put = store.put(graph::gen::path(3), /*session=*/7);
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_NE(store.get(put.handle, /*session=*/7), nullptr);  // renews
  }
  EXPECT_EQ(store.expire_leases(), 0u);  // 160ms elapsed, but never idle >120
  EXPECT_EQ(store.stats().pinned, 1u);
}

TEST(PinLeases, SharedSessionNeverExpires) {
  api::GraphStore::StoreOptions opts;
  opts.capacity = 2;
  opts.lease_ttl = std::chrono::milliseconds(10);
  api::GraphStore store(opts);
  (void)store.put(graph::gen::path(3));  // kSharedSession
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(store.expire_leases(), 0u);
  EXPECT_EQ(store.stats().pinned, 1u);
}

// A client that puts a graph and vanishes (connection dropped without
// drop_graph) must not leave capacity pinned: the connection's Session dies
// with the socket and releases its leases.
TEST(PinLeases, DroppedConnectionReleasesLeases) {
  ServerOptions opts = worker_options();
  Server srv(opts);
  srv.bind_and_listen();
  std::thread serving([&] { srv.serve(); });

  const int fd = server::tcp_connect("127.0.0.1", srv.port());
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  const std::string put = raw_line_exchange(
      fd, reader, "{\"op\":\"put_graph\",\"graph\":" + graph_json(graph::gen::path(6)) + "}");
  ASSERT_TRUE(json_parse(put).find("ok")->as_bool()) << put;
  EXPECT_EQ(srv.core().store().stats().pinned, 1u);

  ::close(fd);  // crash-client: no drop_graph, no clean shutdown

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (srv.core().store().stats().pinned != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(srv.core().store().stats().pinned, 0u);
  EXPECT_EQ(srv.core().store().stats().size, 1u);  // still resolvable, unpinned

  srv.request_stop();
  serving.join();
}

// ---------------------------------------------------------------------------
// Per-namespace quotas

TEST(Quotas, StoreBytesQuotaAnswersServerBusyNotSilentEviction) {
  ServerOptions opts = worker_options();
  // Room for exactly one small graph per namespace.
  opts.core.limits.max_namespace_store_bytes = api::GraphStore::approx_bytes(8, 8);
  Server srv(opts);
  Session session(srv.core());

  const std::string first = session.handle_line(
      "{\"op\":\"put_graph\",\"graph\":" + graph_json(graph::gen::path(5)) + "}");
  ASSERT_TRUE(json_parse(first).find("ok")->as_bool()) << first;
  const std::string handle = json_parse(first).find("handle")->as_string();

  const std::string second = session.handle_line(
      "{\"op\":\"put_graph\",\"graph\":" + graph_json(graph::gen::cycle(7)) + "}");
  const JsonValue rejected = json_parse(second);
  EXPECT_FALSE(rejected.find("ok")->as_bool());
  EXPECT_EQ(rejected.find("code")->as_string(), "server_busy");
  EXPECT_EQ(srv.core().store().stats().quota_rejections, 1u);
  // The first graph was NOT evicted to make room.
  EXPECT_NE(srv.core().store().get(handle), nullptr);

  // drop_graph frees quota; the same put then succeeds.
  ASSERT_TRUE(json_parse(session.handle_line("{\"op\":\"drop_graph\",\"handle\":\"" + handle +
                                             "\"}"))
                  .find("ok")
                  ->as_bool());
  const std::string third = session.handle_line(
      "{\"op\":\"put_graph\",\"graph\":" + graph_json(graph::gen::cycle(7)) + "}");
  EXPECT_TRUE(json_parse(third).find("ok")->as_bool()) << third;
}

TEST(Quotas, SolveAdmissionAnswersServerBusy) {
  ServerOptions opts = worker_options();
  opts.core.limits.max_namespace_inflight = 1;
  Server srv(opts);

  // try_begin_solve/end_solve is the underlying slot discipline.
  EXPECT_TRUE(srv.core().try_begin_solve("t"));
  EXPECT_FALSE(srv.core().try_begin_solve("t"));
  EXPECT_TRUE(srv.core().try_begin_solve("other"));  // per-namespace, not global
  srv.core().end_solve("other");

  // With namespace "t"'s only slot occupied, a solve in "t" bounces with
  // server_busy — admission control, before any solver runs.
  Session session(srv.core());
  const std::string busy = session.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"namespace\":\"t\",\"graphs\":" +
      graphs_json({graph::gen::path(4)}) + "}");
  const JsonValue parsed = json_parse(busy);
  EXPECT_FALSE(parsed.find("ok")->as_bool());
  EXPECT_EQ(parsed.find("code")->as_string(), "server_busy");

  srv.core().end_solve("t");
  const std::string ok = session.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"namespace\":\"t\",\"graphs\":" +
      graphs_json({graph::gen::path(4)}) + "}");
  EXPECT_TRUE(json_parse(ok).find("ok")->as_bool()) << ok;
}

// ---------------------------------------------------------------------------
// Replication

TEST(Replication, InProcessRoundTripWarmHitsAndInstallsUnpinned) {
  ServerOptions opts = worker_options();
  Server source(opts);
  Server target(opts);
  Session src(source.core());
  Session dst(target.core());

  // Source: store a graph, solve it by handle (fills the response cache).
  const std::string put = src.handle_line(
      "{\"op\":\"put_graph\",\"graph\":" + graph_json(graph::gen::grid(3, 3)) + "}");
  const std::string handle = json_parse(put).find("handle")->as_string();
  const std::string solved = src.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" + handle + "\"]}");
  ASSERT_TRUE(json_parse(solved).find("ok")->as_bool()) << solved;

  // Pull the payload and install it on the target.
  const JsonValue payload = json_parse(src.handle_line("{\"op\":\"replicate_out\"}"));
  ASSERT_TRUE(payload.find("ok")->as_bool());
  JsonValue::Object in = payload.as_object();
  in.insert_or_assign("op", JsonValue(std::string("replicate_in")));
  const JsonValue installed =
      json_parse(dst.handle_line(server::json_dump(JsonValue(std::move(in)))));
  ASSERT_TRUE(installed.find("ok")->as_bool());
  EXPECT_EQ(installed.find("installed")->as_int(), 1);
  EXPECT_TRUE(installed.find("cache_merged")->as_bool());

  // The graph arrived unpinned (owned by nobody) but resolvable...
  EXPECT_EQ(target.core().store().stats().pinned, 0u);
  EXPECT_EQ(target.core().store().stats().size, 1u);
  // ...and the merged cache answers the first solve on the target warm.
  const JsonValue warm = json_parse(dst.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" + handle + "\"]}"));
  ASSERT_TRUE(warm.find("ok")->as_bool());
  EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(), 1);
}

TEST(Replication, PushOverSocketWarmsThePeer) {
  ServerOptions opts = worker_options();
  Server source(opts);
  Server peer(opts);
  peer.bind_and_listen();
  std::thread peer_serving([&] { peer.serve(); });

  Session src(source.core());
  const std::string put = src.handle_line(
      "{\"op\":\"put_graph\",\"graph\":" + graph_json(graph::gen::theta_chain(4, 3)) + "}");
  const std::string handle = json_parse(put).find("handle")->as_string();
  ASSERT_TRUE(json_parse(src.handle_line("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" +
                                         handle + "\"]}"))
                  .find("ok")
                  ->as_bool());

  const JsonValue pushed = json_parse(src.handle_line(
      "{\"op\":\"replicate_out\",\"peer\":\"127.0.0.1:" + std::to_string(peer.port()) + "\"}"));
  ASSERT_TRUE(pushed.find("ok")->as_bool()) << "push failed";
  EXPECT_EQ(pushed.find("installed")->as_int(), 1);

  Session on_peer(peer.core());
  const JsonValue warm = json_parse(on_peer.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" + handle + "\"]}"));
  ASSERT_TRUE(warm.find("ok")->as_bool());
  EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(), 1);

  peer.request_stop();
  peer_serving.join();
}

TEST(Replication, RejectsGarbagePayloads) {
  ServerOptions opts = worker_options();
  Server srv(opts);
  Session session(srv.core());
  const JsonValue bad_cache =
      json_parse(session.handle_line(R"({"op":"replicate_in","cache":"!not base64!"})"));
  EXPECT_FALSE(bad_cache.find("ok")->as_bool());
  EXPECT_EQ(bad_cache.find("code")->as_string(), "bad_request");
  const JsonValue bad_graph = json_parse(
      session.handle_line(R"({"op":"replicate_in","graphs":[{"edges":[[0,0]]}]})"));
  EXPECT_FALSE(bad_graph.find("ok")->as_bool());
}

TEST(Base64, RoundTripsAndRejectsMalformedInput) {
  for (const std::string& data :
       {std::string(""), std::string("a"), std::string("ab"), std::string("abc"),
        std::string("\x00\xff\x7f\x80", 4)}) {
    const std::optional<std::string> back = base64_decode(base64_encode(data));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
  }
  for (const char* bad : {"abc", "ab=c", "a===", "====", "ab!d"}) {
    EXPECT_FALSE(base64_decode(bad).has_value()) << bad;
  }
}

// ---------------------------------------------------------------------------
// The routed cluster: 2 workers + 1 router, bit-identical to a single server

class RoutedClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    worker1_ = std::make_unique<Server>(worker_options());
    worker2_ = std::make_unique<Server>(worker_options());
    worker1_->bind_and_listen();
    worker2_->bind_and_listen();
    threads_.emplace_back([this] { worker1_->serve(); });
    threads_.emplace_back([this] { worker2_->serve(); });

    ServerOptions router_opts = worker_options();
    router_opts.http_port = 0;  // the router speaks both transports
    router_srv_ = std::make_unique<Server>(router_opts);
    RouterOptions ropts;
    ropts.peers = {"127.0.0.1:" + std::to_string(worker1_->port()),
                   "127.0.0.1:" + std::to_string(worker2_->port())};
    router_ = std::make_unique<Router>(ropts, router_srv_->core());
    router_->install();
    router_srv_->bind_and_listen();
    threads_.emplace_back([this] { router_srv_->serve(); });

    // The single-server reference the routed responses must match.
    reference_ = std::make_unique<Server>(worker_options());
  }

  void TearDown() override {
    router_srv_->request_stop();
    worker1_->request_stop();
    worker2_->request_stop();
    for (std::thread& t : threads_) t.join();
    router_.reset();  // drops its pooled worker connections
  }

  std::unique_ptr<Server> worker1_, worker2_, router_srv_, reference_;
  std::unique_ptr<Router> router_;
  std::vector<std::thread> threads_;
};

TEST_F(RoutedClusterTest, MixedBatchBitIdenticalOnBothTransports) {
  const int fd = server::tcp_connect("127.0.0.1", router_srv_->port());
  ASSERT_GE(fd, 0);
  LineReader reader(fd);

  // Store two graphs through the router (consistent-hashed to the workers)
  // and the same two on the reference server. Content-addressed handles
  // guarantee both sides mint identical handles.
  std::vector<std::string> handles;
  Session ref(reference_->core());
  for (const Graph& g : {graph::gen::grid(4, 5), graph::gen::cycle(9)}) {
    const std::string line = "{\"op\":\"put_graph\",\"graph\":" + graph_json(g) + "}";
    const JsonValue routed = json_parse(raw_line_exchange(fd, reader, line));
    ASSERT_TRUE(routed.find("ok")->as_bool());
    const JsonValue direct = json_parse(ref.handle_line(line));
    ASSERT_TRUE(direct.find("ok")->as_bool());
    ASSERT_EQ(routed.find("handle")->as_string(), direct.find("handle")->as_string());
    handles.push_back(routed.find("handle")->as_string());
  }

  // A mixed batch: handles interleaved with inline graphs, ratio measurement
  // on so the response objects are rich.
  const std::string request =
      "{\"op\":\"solve\",\"solver\":\"theorem44\",\"measure_ratio\":true,\"graphs\":[\"" +
      handles[0] + "\"," + graph_json(graph::gen::path(8)) + ",\"" + handles[1] + "\"," +
      graph_json(graph::gen::theta_chain(3, 4)) + "]}";

  const std::string single = ref.handle_line(request);
  const auto single_pieces = split_raw_responses(single);
  ASSERT_TRUE(single_pieces.has_value()) << single;
  ASSERT_EQ(single_pieces->size(), 4u);

  // Line protocol through the router.
  const std::string routed_line = raw_line_exchange(fd, reader, request);
  const auto routed_pieces = split_raw_responses(routed_line);
  ASSERT_TRUE(routed_pieces.has_value()) << routed_line;
  ASSERT_EQ(routed_pieces->size(), single_pieces->size());
  for (std::size_t i = 0; i < single_pieces->size(); ++i) {
    EXPECT_EQ((*routed_pieces)[i], (*single_pieces)[i]) << "slot " << i;
  }

  // HTTP through the router: same body, same bit-identical responses array.
  const int http_fd = server::tcp_connect("127.0.0.1", router_srv_->http_port());
  ASSERT_GE(http_fd, 0);
  LineReader http_reader(http_fd);
  const std::string http_body =
      raw_http_exchange(http_fd, http_reader, "POST", "/v2/solve", request);
  const auto http_pieces = split_raw_responses(http_body);
  ASSERT_TRUE(http_pieces.has_value()) << http_body;
  ASSERT_EQ(http_pieces->size(), single_pieces->size());
  for (std::size_t i = 0; i < single_pieces->size(); ++i) {
    EXPECT_EQ((*http_pieces)[i], (*single_pieces)[i]) << "slot " << i;
  }
  ::close(http_fd);

  // Both workers actually took part: the router's stats line reports its
  // per-peer forward counters next to the local stats members.
  const JsonValue stats = json_parse(raw_line_exchange(fd, reader, "{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  const JsonValue* router_stats = stats.find("router");
  ASSERT_NE(router_stats, nullptr);
  EXPECT_EQ(router_stats->find("peers")->as_int(), 2);
  std::uint64_t total_forwards = 0;
  for (const auto& [peer, count] : router_stats->find("forwards")->as_object()) {
    total_forwards += static_cast<std::uint64_t>(count.as_int());
  }
  EXPECT_GE(total_forwards, 4u);  // 2 puts + at least 2 solve sub-batches
  ::close(fd);
}

TEST_F(RoutedClusterTest, PatchForwardsToParentOwnerAndChildStaysRouted) {
  const int fd = server::tcp_connect("127.0.0.1", router_srv_->port());
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  Session ref(reference_->core());

  const std::string put = "{\"op\":\"put_graph\",\"graph\":" +
                          graph_json(graph::gen::grid(3, 4)) + "}";
  const std::string parent =
      json_parse(raw_line_exchange(fd, reader, put)).find("handle")->as_string();
  ASSERT_TRUE(json_parse(ref.handle_line(put)).find("ok")->as_bool());

  const std::string patch = "{\"op\":\"patch_graph\",\"handle\":\"" + parent +
                            "\",\"add\":[[0,5]],\"del\":[[0,1]]}";
  const JsonValue routed = json_parse(raw_line_exchange(fd, reader, patch));
  ASSERT_TRUE(routed.find("ok")->as_bool());
  const JsonValue direct = json_parse(ref.handle_line(patch));
  ASSERT_EQ(routed.find("handle")->as_string(), direct.find("handle")->as_string());
  const std::string child = routed.find("handle")->as_string();

  // Solving the child goes to the peer that owns it (the parent's owner, via
  // the location map — its content hash may belong elsewhere on the ring).
  const std::string solve =
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" + child + "\"]}";
  const auto routed_pieces = split_raw_responses(raw_line_exchange(fd, reader, solve));
  const auto single_pieces = split_raw_responses(ref.handle_line(solve));
  ASSERT_TRUE(routed_pieces.has_value());
  ASSERT_TRUE(single_pieces.has_value());
  EXPECT_EQ((*routed_pieces)[0], (*single_pieces)[0]);

  // Dropping parent and child through the router reaches their owner.
  for (const std::string& h : {child, parent}) {
    const JsonValue dropped = json_parse(
        raw_line_exchange(fd, reader, "{\"op\":\"drop_graph\",\"handle\":\"" + h + "\"}"));
    EXPECT_TRUE(dropped.find("ok")->as_bool()) << h;
  }
  ::close(fd);
}

TEST_F(RoutedClusterTest, UnknownHandleAndBadRequestsMatchSingleServerCodes) {
  const int fd = server::tcp_connect("127.0.0.1", router_srv_->port());
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  Session ref(reference_->core());

  for (const std::string& request :
       {std::string("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"g00000000000000aa\"]}"),
        std::string("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"nonsense\"]}"),
        std::string("{\"op\":\"drop_graph\",\"handle\":\"g00000000000000aa\"}"),
        std::string("{\"op\":\"solve\",\"solver\":\"nope\",\"graphs\":[{\"edges\":[[0,1]]}]}")}) {
    const JsonValue routed = json_parse(raw_line_exchange(fd, reader, request));
    const JsonValue direct = json_parse(ref.handle_line(request));
    ASSERT_FALSE(routed.find("ok")->as_bool()) << request;
    ASSERT_FALSE(direct.find("ok")->as_bool()) << request;
    EXPECT_EQ(routed.find("code")->as_string(), direct.find("code")->as_string()) << request;
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Client timeouts (satellite: net.cpp configurable timeouts)

TEST(NetTimeouts, ReadTimeoutIsDistinguishedFromEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(server::set_io_timeout(fds[0], 50));
  LineReader reader(fds[0]);
  const std::optional<std::string> line = reader.next_line(1024);
  EXPECT_FALSE(line.has_value());
  EXPECT_TRUE(reader.timed_out());  // nothing arrived in 50ms: timeout...
  ASSERT_TRUE(server::send_all(fds[1], "late\n"));
  const std::optional<std::string> late = reader.next_line(1024);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(*late, "late");
  EXPECT_FALSE(reader.timed_out());  // ...and a successful read clears it
  ::close(fds[1]);
  const std::optional<std::string> eof = reader.next_line(1024);
  EXPECT_FALSE(eof.has_value());
  EXPECT_FALSE(reader.timed_out());  // a real EOF is not a timeout
  ::close(fds[0]);
}

}  // namespace
}  // namespace lmds::cluster
