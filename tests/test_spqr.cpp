// Tests for the SPQR / triconnected decomposition and the §5.3
// interesting-2-cut forests (Proposition 5.7, Proposition 5.8).

#include <gtest/gtest.h>

#include <random>

#include "cuts/interesting.hpp"
#include "cuts/two_cuts.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "spqr/cut_forest.hpp"
#include "spqr/split_pairs.hpp"
#include "spqr/spqr_tree.hpp"

namespace lmds::spqr {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::Vertex;

TEST(Spqr, CycleIsSingleSNode) {
  const SpqrTree tree = spqr_tree(graph::gen::cycle(8));
  ASSERT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.nodes[0].type, NodeType::kS);
  EXPECT_EQ(tree.nodes[0].cycle_order.size(), 8u);
  EXPECT_TRUE(tree.tree_edges.empty());
}

TEST(Spqr, CompleteGraphIsSingleRNode) {
  const SpqrTree tree = spqr_tree(graph::gen::complete(5));
  ASSERT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.nodes[0].type, NodeType::kR);
}

TEST(Spqr, ThetaBundleIsPNodeWithSChildren) {
  // Two hubs joined by 3 parallel length-2 paths: P node + 3 S (triangle)
  // children.
  const Graph g = graph::gen::theta_chain(1, 3);
  const SpqrTree tree = spqr_tree(g);
  const auto p_nodes = tree.nodes_of_type(NodeType::kP);
  const auto s_nodes = tree.nodes_of_type(NodeType::kS);
  ASSERT_EQ(p_nodes.size(), 1u);
  EXPECT_EQ(s_nodes.size(), 3u);
  EXPECT_EQ(tree.num_nodes(), 4);
  EXPECT_EQ(tree.tree_edges.size(), 3u);
  // P node poles are the two hubs.
  EXPECT_EQ(tree.nodes[static_cast<std::size_t>(p_nodes[0])].vertices,
            (std::vector<Vertex>{0, 1}));
}

TEST(Spqr, CycleWithChordSplits) {
  // C6 + chord {0,3}: P node on {0,3} with the chord and two S children.
  GraphBuilder b(6);
  b.add_cycle({0, 1, 2, 3, 4, 5});
  b.add_edge(0, 3);
  const SpqrTree tree = spqr_tree(b.build());
  EXPECT_EQ(tree.nodes_of_type(NodeType::kP).size(), 1u);
  EXPECT_EQ(tree.nodes_of_type(NodeType::kS).size(), 2u);
}

TEST(Spqr, TreeIsATree) {
  std::mt19937_64 rng(229);
  for (int trial = 0; trial < 5; ++trial) {
    // Random maximal outerplanar graphs are 2-connected.
    const Graph g = graph::gen::random_maximal_outerplanar(12, rng);
    const SpqrTree tree = spqr_tree(g);
    EXPECT_EQ(tree.tree_edges.size(), static_cast<std::size_t>(tree.num_nodes() - 1));
  }
}

TEST(Spqr, VirtualEdgesComeInPairs) {
  const Graph g = graph::gen::theta_chain(1, 4);  // single link: 2-connected
  const SpqrTree tree = spqr_tree(g);
  int virtual_edges = 0;
  for (const SpqrNode& node : tree.nodes) {
    for (const SkeletonEdge& e : node.edges) {
      if (e.is_virtual) {
        ++virtual_edges;
        ASSERT_GE(e.peer, 0);
        ASSERT_LT(e.peer, tree.num_nodes());
      }
    }
  }
  EXPECT_EQ(virtual_edges % 2, 0);
  EXPECT_EQ(virtual_edges / 2, static_cast<int>(tree.tree_edges.size()));
}

TEST(Spqr, RejectsNonBiconnected) {
  EXPECT_THROW(spqr_tree(graph::gen::path(5)), std::invalid_argument);
  EXPECT_THROW(spqr_tree(graph::gen::star(5)), std::invalid_argument);
}

TEST(Spqr, Proposition57AllTwoCutsDisplayed) {
  // Every minimal 2-cut must appear among the displayed pairs.
  std::mt19937_64 rng(233);
  std::vector<Graph> instances;
  instances.push_back(graph::gen::theta_chain(1, 3));
  instances.push_back(graph::gen::cycle(9));
  instances.push_back(graph::gen::random_maximal_outerplanar(10, rng));
  {
    GraphBuilder b(6);
    b.add_cycle({0, 1, 2, 3, 4, 5});
    b.add_edge(0, 3);
    instances.push_back(b.build());
  }
  for (const Graph& g : instances) {
    const auto displayed = displayed_pairs(spqr_tree(g));
    for (const cuts::VertexPair cut : cuts::minimal_two_cuts(g)) {
      EXPECT_TRUE(std::binary_search(displayed.begin(), displayed.end(), cut))
          << g.summary() << " cut {" << cut.u << "," << cut.v << "}";
    }
  }
}

// ---------------------------------------------------------------------------
// Crossing predicate

TEST(Crossing, OppositeCutsOfC6Cross) {
  const Graph g = graph::gen::cycle(6);
  EXPECT_TRUE(cuts_cross(g, {0, 3}, {1, 4}));
  EXPECT_TRUE(cuts_cross(g, {1, 4}, {2, 5}));
}

TEST(Crossing, NestedCutsDoNotCross) {
  const Graph g = graph::gen::cycle(10);
  EXPECT_FALSE(cuts_cross(g, {0, 7}, {1, 6}));
  EXPECT_FALSE(cuts_cross(g, {1, 6}, {2, 5}));
}

TEST(Crossing, SharedVertexNeverCrosses) {
  const Graph g = graph::gen::cycle(8);
  EXPECT_FALSE(cuts_cross(g, {0, 4}, {4, 1}));
  EXPECT_FALSE(cuts_cross(g, {0, 4}, {0, 3}));
}

TEST(SplitPairs, ContainsEdgesAndCuts) {
  const Graph g = graph::gen::cycle(5);
  const auto pairs = split_pairs(g);
  // 5 edges + 5 non-adjacent pairs (all are minimal 2-cuts in a cycle).
  EXPECT_EQ(pairs.size(), 10u);
}

// ---------------------------------------------------------------------------
// Cut forests (Proposition 5.8)

void check_proposition_58(const Graph& g, const std::string& label) {
  const CutForest forest = interesting_cut_forest(g);

  // Property 2: within each family, cuts are pairwise non-crossing.
  for (const auto& family : forest.families) {
    for (std::size_t i = 0; i < family.size(); ++i) {
      for (std::size_t j = i + 1; j < family.size(); ++j) {
        EXPECT_FALSE(cuts_cross(g, family[i], family[j]))
            << label << ": {" << family[i].u << "," << family[i].v << "} x {"
            << family[j].u << "," << family[j].v << "}";
      }
    }
  }

  // Property 1: every globally interesting vertex appears in some family
  // with a friend certifying it.
  const auto all = forest.all();
  for (Vertex v : cuts::globally_interesting_vertices(g)) {
    bool displayed = false;
    for (const cuts::VertexPair cut : all) {
      if (cut.u == v && cuts::certifies_globally_interesting(g, v, cut.v)) displayed = true;
      if (cut.v == v && cuts::certifies_globally_interesting(g, v, cut.u)) displayed = true;
    }
    EXPECT_TRUE(displayed) << label << ": interesting vertex " << v << " not displayed";
  }
}

TEST(CutForest, CyclesOfAllLengths) {
  for (int k = 3; k <= 14; ++k) {
    check_proposition_58(graph::gen::cycle(k), "C" + std::to_string(k));
  }
}

TEST(CutForest, ThetaChains) {
  check_proposition_58(graph::gen::theta_chain(3, 3), "theta(3,3)");
  check_proposition_58(graph::gen::theta_chain(4, 2), "theta(4,2)");
}

TEST(CutForest, CycleWithChord) {
  GraphBuilder b(8);
  b.add_cycle({0, 1, 2, 3, 4, 5, 6, 7});
  b.add_edge(0, 4);
  check_proposition_58(b.build(), "C8+chord");
}

TEST(CutForest, Outerplanar) {
  std::mt19937_64 rng(239);
  for (int trial = 0; trial < 4; ++trial) {
    check_proposition_58(graph::gen::random_maximal_outerplanar(10, rng), "outerplanar");
  }
}

TEST(CutForest, CliqueHasNoCuts) {
  const CutForest forest = interesting_cut_forest(graph::gen::complete(6));
  EXPECT_TRUE(forest.all().empty());
}

}  // namespace
}  // namespace lmds::spqr
