// Hot-path differential suite: the CSR-native view extraction and the
// intra-graph threading mode must be BIT-IDENTICAL to the seed
// implementations they replaced. The seed code survives in
// local::detail::{gather_views_reference, cut_view_reference} precisely so
// this file can hold it against the rewrite on every generator, every
// radius, and adversarial (shuffled) id assignments; the executor half
// asserts every registered solver returns the same Response for every
// intra_threads value, composed with cross-graph sharding and both
// transports' batch-override decode.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "ding/generators.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "local/simulator.hpp"
#include "local/view.hpp"
#include "server/http.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/session.hpp"

namespace lmds {
namespace {

using graph::Graph;
using graph::Vertex;

// Same instances as tests/test_api.cpp — both generator families, small
// enough that the O(n·m)-per-vertex reference gather stays fast.
std::vector<Graph> generator_suite() {
  std::mt19937_64 rng(20250727);
  std::vector<Graph> gs;
  gs.push_back(graph::gen::path(12));
  gs.push_back(graph::gen::cycle(9));
  gs.push_back(graph::gen::star(7));
  gs.push_back(graph::gen::grid(4, 5));
  gs.push_back(graph::gen::spider(4, 3));
  gs.push_back(graph::gen::theta_chain(4, 4));
  gs.push_back(graph::gen::caterpillar(8, 2));
  gs.push_back(graph::gen::random_tree(30, rng));
  ding::CactusConfig cc;
  cc.pieces = 6;
  cc.t = 5;
  gs.push_back(ding::random_cactus_of_structures(cc, rng));
  return gs;
}

void expect_views_equal(const local::BallView& got, const local::BallView& want,
                        const std::string& where) {
  EXPECT_EQ(got.graph, want.graph) << where;
  EXPECT_EQ(got.ids, want.ids) << where;
  EXPECT_EQ(got.dist, want.dist) << where;
  EXPECT_EQ(got.centre, want.centre) << where;
  EXPECT_EQ(got.radius, want.radius) << where;
}

// ---------------------------------------------------------------------------
// View extraction vs the seed implementations

TEST(HotPath, GatherViewsMatchesReferenceBitForBit) {
  std::mt19937_64 rng(7);
  for (const Graph& g : generator_suite()) {
    // Shuffled ids: the monotone-relabelling argument must not silently
    // depend on ids following the vertex order.
    const local::Network net = local::Network::with_random_ids(g, rng);
    for (int radius : {0, 1, 2, 3}) {
      local::TrafficStats fast_stats;
      local::TrafficStats ref_stats;
      const auto fast = local::gather_views(net, radius, &fast_stats);
      const auto ref = local::detail::gather_views_reference(net, radius, &ref_stats);
      ASSERT_EQ(fast.size(), ref.size());
      EXPECT_EQ(fast_stats, ref_stats) << "r=" << radius;
      for (std::size_t v = 0; v < fast.size(); ++v) {
        expect_views_equal(fast[v], ref[v],
                           "n=" + std::to_string(g.num_vertices()) +
                               " r=" + std::to_string(radius) + " v=" + std::to_string(v));
      }
    }
  }
}

TEST(HotPath, CutViewMatchesReferenceBitForBit) {
  std::mt19937_64 rng(11);
  for (const Graph& g : generator_suite()) {
    const local::Network net = local::Network::with_random_ids(g, rng);
    for (int radius : {0, 1, 2, 4}) {
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        expect_views_equal(local::cut_view(net, v, radius),
                           local::detail::cut_view_reference(net, v, radius),
                           "r=" + std::to_string(radius) + " v=" + std::to_string(v));
      }
    }
  }
}

TEST(HotPath, ParallelGatherIsBitIdenticalToSequential) {
  std::mt19937_64 rng(13);
  for (const Graph& g : generator_suite()) {
    const local::Network net = local::Network::with_random_ids(g, rng);
    local::TrafficStats seq_stats;
    local::TrafficStats par_stats;
    const auto seq = local::gather_views(net, 2, &seq_stats, /*threads=*/1);
    const auto par = local::gather_views(net, 2, &par_stats, /*threads=*/4);
    ASSERT_EQ(seq.size(), par.size());
    EXPECT_EQ(seq_stats, par_stats);
    for (std::size_t v = 0; v < seq.size(); ++v) {
      expect_views_equal(par[v], seq[v], "v=" + std::to_string(v));
    }
    const auto cut_seq = local::cut_views(net, 2, /*threads=*/1);
    const auto cut_par = local::cut_views(net, 2, /*threads=*/3);
    ASSERT_EQ(cut_seq.size(), cut_par.size());
    for (std::size_t v = 0; v < cut_seq.size(); ++v) {
      expect_views_equal(cut_par[v], cut_seq[v], "cut v=" + std::to_string(v));
    }
  }
}

TEST(HotPath, ScratchReuseAcrossGraphSizesIsClean) {
  // One scratch serving graphs of shrinking then growing size: the
  // epoch-stamp invalidation must never leak a previous extraction's marks.
  local::ViewScratch scratch;
  std::mt19937_64 rng(17);
  const std::vector<Graph> gs = {graph::gen::grid(6, 6), graph::gen::path(3),
                                 graph::gen::cycle(40), graph::gen::star(5)};
  for (const Graph& g : gs) {
    const local::Network net = local::Network::with_random_ids(g, rng);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      expect_views_equal(local::cut_view_into(net, v, 2, scratch),
                         local::detail::cut_view_reference(net, v, 2),
                         "n=" + std::to_string(g.num_vertices()) + " v=" + std::to_string(v));
    }
  }
}

// ---------------------------------------------------------------------------
// BallView id index (satellite: binary-search local_index_of)

TEST(BallViewIndex, LocalIndexOfFindsEveryIdAndRejectsUnknown) {
  std::mt19937_64 rng(23);
  const Graph g = graph::gen::grid(5, 5);
  const local::Network net = local::Network::with_random_ids(g, rng);
  const auto views = local::gather_views(net, 2);
  for (const local::BallView& view : views) {
    ASSERT_EQ(view.id_order.size(), view.ids.size());
    for (Vertex local = 0; local < view.num_vertices(); ++local) {
      EXPECT_EQ(view.local_index_of(view.ids[static_cast<std::size_t>(local)]), local);
    }
    // Ids are drawn from a 64-bit space; 0 and max are all but surely absent.
    EXPECT_EQ(view.local_index_of(0), graph::kNoVertex);
    EXPECT_EQ(view.local_index_of(~local::NodeId{0}), graph::kNoVertex);
  }
}

TEST(BallViewIndex, HandAssembledViewFallsBackToLinearScan) {
  local::BallView view;
  view.graph = graph::gen::path(3);
  view.ids = {50, 10, 30};  // no build_id_index() call: id_order stays empty
  EXPECT_EQ(view.local_index_of(10), 1);
  EXPECT_EQ(view.local_index_of(50), 0);
  EXPECT_EQ(view.local_index_of(99), graph::kNoVertex);
  view.build_id_index();
  EXPECT_EQ(view.local_index_of(10), 1);
  EXPECT_EQ(view.local_index_of(30), 2);
  EXPECT_EQ(view.local_index_of(99), graph::kNoVertex);
}

// ---------------------------------------------------------------------------
// Satellite fix: with_random_ids must actually permute

TEST(RandomIds, AssignmentIsShuffledDeterministicAndUnique) {
  const Graph g = graph::gen::path(64);
  std::mt19937_64 rng_a(123);
  std::mt19937_64 rng_b(123);
  const local::Network a = local::Network::with_random_ids(g, rng_a);
  const local::Network b = local::Network::with_random_ids(g, rng_b);
  EXPECT_EQ(a.ids(), b.ids()) << "same seed must give the same assignment";

  std::set<local::NodeId> unique(a.ids().begin(), a.ids().end());
  EXPECT_EQ(unique.size(), a.ids().size());
  // The old bug: ids were handed out in sorted order, so id rank leaked the
  // vertex index. A shuffled assignment of 64 ids is monotone with
  // probability 1/64! — if this is sorted, the shuffle is gone.
  EXPECT_FALSE(std::is_sorted(a.ids().begin(), a.ids().end()));
}

// ---------------------------------------------------------------------------
// Flooding semantics after the double-buffer rewrite

TEST(Flooding, KnowledgeAfterRPlusOneRoundsIsExactlyTheDistanceRuleSet) {
  std::mt19937_64 rng(31);
  for (const Graph& g : generator_suite()) {
    const local::Network net = local::Network::with_random_ids(g, rng);
    const auto edges = g.edges();
    for (int rounds : {1, 3}) {
      local::FloodingState flooding(net);
      local::TrafficStats stats;
      flooding.run(rounds, stats);
      EXPECT_EQ(stats.rounds, rounds);
      EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(rounds) * 2 *
                                    static_cast<std::uint64_t>(g.num_edges()));
      // Invariant of k flooding rounds: v knows exactly the edges with an
      // endpoint at distance <= k (incident edges at k=0, +1 hop per round).
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        const auto dist = graph::bfs_distances(g, v);
        std::vector<int> expected;
        for (int e = 0; e < g.num_edges(); ++e) {
          const auto du = dist[static_cast<std::size_t>(edges[static_cast<std::size_t>(e)].u)];
          const auto dv = dist[static_cast<std::size_t>(edges[static_cast<std::size_t>(e)].v)];
          const bool known = (du >= 0 && du <= rounds) || (dv >= 0 && dv <= rounds);
          if (known) expected.push_back(e);
          EXPECT_EQ(flooding.knows_edge(v, e), known) << "v=" << v << " e=" << e;
        }
        EXPECT_EQ(flooding.known_edges(v), expected) << "v=" << v;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Executor: intra-graph threading is response-invisible for every solver

TEST(IntraGraph, EverySolverIsBitIdenticalAcrossIntraThreadCounts) {
  const auto graphs_vec = generator_suite();
  const std::span<const Graph> graphs(graphs_vec);
  api::BatchExecutor executor(api::BatchOptions{});
  for (const api::SolverSpec* spec : api::Registry::instance().specs()) {
    api::Request req;
    req.measure_ratio = true;
    api::BatchOverrides seq_over;
    seq_over.intra_graph_threads = 1;
    seq_over.bypass_cache = true;
    api::BatchOverrides par_over;
    par_over.intra_graph_threads = 4;
    par_over.threads = 2;  // compose with cross-graph sharding
    par_over.bypass_cache = true;
    api::BatchDiagnostics par_diag;
    const auto seq = executor.run_batch(spec->name, graphs, req, seq_over);
    const auto par = executor.run_batch(spec->name, graphs, req, par_over, &par_diag);
    EXPECT_EQ(par_diag.intra_threads, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].solution, par[i].solution) << spec->name << " graph " << i;
      EXPECT_EQ(seq[i].valid, par[i].valid) << spec->name << " graph " << i;
      EXPECT_EQ(seq[i].ratio, par[i].ratio) << spec->name << " graph " << i;
      EXPECT_EQ(seq[i].diag.rounds, par[i].diag.rounds) << spec->name << " graph " << i;
    }
  }
}

TEST(IntraGraph, LocalModeTrafficIsIdenticalAcrossIntraThreadCounts) {
  const auto graphs_vec = generator_suite();
  const std::span<const Graph> graphs(graphs_vec);
  api::BatchExecutor executor(api::BatchOptions{});
  for (const api::SolverSpec* spec : api::Registry::instance().specs()) {
    if (!spec->supports(api::Mode::Local)) continue;
    api::Request req;
    req.measure_traffic = true;
    api::BatchOverrides seq_over;
    seq_over.intra_graph_threads = 1;
    seq_over.bypass_cache = true;
    api::BatchOverrides par_over;
    par_over.intra_graph_threads = 3;
    par_over.bypass_cache = true;
    const auto seq = executor.run_batch(spec->name, graphs, req, seq_over);
    const auto par = executor.run_batch(spec->name, graphs, req, par_over);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].solution, par[i].solution) << spec->name << " graph " << i;
      EXPECT_EQ(seq[i].diag.traffic, par[i].diag.traffic) << spec->name << " graph " << i;
    }
  }
}

TEST(IntraGraph, OversizedOverrideIsARequestError) {
  api::BatchExecutor executor(api::BatchOptions{});
  const std::vector<Graph> graphs_vec = {graph::gen::path(4)};
  api::BatchOverrides over;
  over.intra_graph_threads = 5000;
  EXPECT_THROW(executor.run_batch("greedy", std::span<const Graph>(graphs_vec),
                                  api::Request{}, over),
               api::RequestError);
}

// ---------------------------------------------------------------------------
// Protocol: the intra_threads batch override on both transports

TEST(Protocol, IntraThreadsOverrideRoundTripsOverTcpTransport) {
  server::ServerOptions opts;
  opts.core.batch.threads = 1;
  opts.core.snapshot_dir.clear();
  server::Server server(opts);
  const Graph g = graph::gen::grid(4, 4);
  const std::string graph_json = server::encode_graph_json(g);

  const std::string plain = server.handle_line(
      "{\"op\":\"solve\",\"solver\":\"theorem44\",\"graphs\":[" + graph_json + "]}");
  const server::JsonValue plain_parsed = server::json_parse(plain);
  ASSERT_TRUE(plain_parsed.find("ok")->as_bool()) << plain;
  // Single-threaded responses stay byte-compatible: no intra_threads field.
  EXPECT_EQ(plain_parsed.find("diag")->find("intra_threads"), nullptr);

  const std::string sharded = server.handle_line(
      "{\"op\":\"solve\",\"solver\":\"theorem44\",\"batch\":{\"intra_threads\":2,"
      "\"no_cache\":true},\"graphs\":[" + graph_json + "]}");
  const server::JsonValue sharded_parsed = server::json_parse(sharded);
  ASSERT_TRUE(sharded_parsed.find("ok")->as_bool()) << sharded;
  EXPECT_EQ(sharded_parsed.find("diag")->find("intra_threads")->as_int(), 2);
  // Same solution either way.
  const auto solution_of = [](const server::JsonValue& parsed) {
    std::vector<long long> out;
    for (const server::JsonValue& v :
         parsed.find("responses")->as_array().at(0).find("solution")->as_array()) {
      out.push_back(v.as_int());
    }
    return out;
  };
  EXPECT_EQ(solution_of(plain_parsed), solution_of(sharded_parsed));

  for (const std::string& bad :
       {std::string("{\"op\":\"solve\",\"solver\":\"greedy\",\"batch\":{\"intra_threads\":0},"
                    "\"graphs\":[" + graph_json + "]}"),
        std::string("{\"op\":\"solve\",\"solver\":\"greedy\",\"batch\":{\"intra_threads\":65536},"
                    "\"graphs\":[" + graph_json + "]}"),
        std::string("{\"op\":\"solve\",\"solver\":\"greedy\",\"batch\":{\"frobnicate\":1},"
                    "\"graphs\":[" + graph_json + "]}")}) {
    const server::JsonValue parsed = server::json_parse(server.handle_line(bad));
    EXPECT_FALSE(parsed.find("ok")->as_bool()) << bad;
    EXPECT_EQ(parsed.find("code")->as_string(), "bad_request") << bad;
  }
}

TEST(Protocol, IntraThreadsOverrideRoundTripsOverHttpTransport) {
  server::CoreOptions core_opts;
  core_opts.batch.threads = 1;
  core_opts.snapshot_dir.clear();
  server::ServerCore core(core_opts, api::Registry::instance());
  server::Session session(core);

  server::HttpRequest req;
  req.method = "POST";
  req.target = "/v2/solve";
  req.body =
      "{\"solver\":\"theorem44\",\"batch\":{\"intra_threads\":2,\"no_cache\":true},"
      "\"graphs\":[{\"n\":4,\"edges\":[[0,1],[1,2],[2,3]]}]}";
  const std::string response = server::handle_http_request(req, session);
  EXPECT_EQ(std::atoi(response.c_str() + sizeof("HTTP/1.1 ") - 1), 200);
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  const server::JsonValue body = server::json_parse(response.substr(split + 4));
  ASSERT_TRUE(body.find("ok")->as_bool());
  EXPECT_EQ(body.find("diag")->find("intra_threads")->as_int(), 2);
}

}  // namespace
}  // namespace lmds
