// Unit tests for the core graph substrate: Graph, GraphBuilder, BFS
// utilities, structural operations, I/O and generators.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"

namespace lmds::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_FALSE(g.has_vertex(0));
}

TEST(Graph, BuilderBasics) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 1);  // duplicate, deduplicated at build
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, BuilderRejectsSelfLoop) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, BuilderCreatesVerticesOnDemand) {
  GraphBuilder b;
  b.add_edge(0, 5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, AsymmetricAdjacencyRejected) {
  std::vector<std::vector<Vertex>> adj{{1}, {}};
  EXPECT_THROW(Graph{adj}, std::invalid_argument);
}

TEST(Graph, NeighborsSorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 3u);
}

TEST(Graph, EdgesListedOnce) {
  const Graph g = gen::cycle(5);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 5u);
  for (const Edge e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, ClosedNeighborhood) {
  const Graph g = gen::path(4);  // 0-1-2-3
  EXPECT_EQ(g.closed_neighborhood(1), (std::vector<Vertex>{0, 1, 2}));
  EXPECT_EQ(g.closed_neighborhood(0), (std::vector<Vertex>{0, 1}));
}

TEST(Graph, ClosedNeighborhoodContainment) {
  // Star: leaf neighbourhoods contained in centre's.
  const Graph g = gen::star(5);
  EXPECT_TRUE(g.closed_neighborhood_contained(1, 0));
  EXPECT_FALSE(g.closed_neighborhood_contained(0, 1));
  // Non-adjacent leaves: not contained (a not in N[b]).
  EXPECT_FALSE(g.closed_neighborhood_contained(1, 2));
}

TEST(Graph, TrueTwins) {
  // Triangle: all three vertices are pairwise true twins.
  const Graph g = gen::complete(3);
  EXPECT_TRUE(g.true_twins(0, 1));
  EXPECT_TRUE(g.true_twins(1, 2));
  // Path: no true twins.
  const Graph p = gen::path(3);
  EXPECT_FALSE(p.true_twins(0, 2));
  EXPECT_FALSE(p.true_twins(0, 1));
}

// ---------------------------------------------------------------------------
// BFS utilities

TEST(Bfs, DistancesOnPath) {
  const Graph g = gen::path(5);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bfs, DistancesDisconnected) {
  const Graph g = disjoint_union(gen::path(2), gen::path(2));
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Bfs, MultiSourceDistances) {
  const Graph g = gen::path(7);
  const std::vector<Vertex> sources{0, 6};
  const auto dist = bfs_distances_multi(g, sources);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[5], 1);
}

TEST(Bfs, BallRadius) {
  const Graph g = gen::path(9);
  EXPECT_EQ(ball(g, 4, 2), (std::vector<Vertex>{2, 3, 4, 5, 6}));
  EXPECT_EQ(ball(g, 0, 0), (std::vector<Vertex>{0}));
}

TEST(Bfs, BallOfSet) {
  const Graph g = gen::path(9);
  const std::vector<Vertex> sources{0, 8};
  EXPECT_EQ(ball_of_set(g, sources, 1), (std::vector<Vertex>{0, 1, 7, 8}));
}

TEST(Bfs, ConnectedComponents) {
  const Graph g = disjoint_union(gen::cycle(3), gen::path(2));
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 2);
  EXPECT_EQ(comps.groups()[0], (std::vector<Vertex>{0, 1, 2}));
  EXPECT_EQ(comps.groups()[1], (std::vector<Vertex>{3, 4}));
}

TEST(Bfs, ComponentsWithout) {
  const Graph g = gen::path(5);
  const std::vector<Vertex> removed{2};
  const auto comps = components_without(g, removed);
  EXPECT_EQ(comps.count, 2);
  EXPECT_EQ(comps.component[2], -1);
}

TEST(Bfs, Diameter) {
  EXPECT_EQ(diameter(gen::path(6)), 5);
  EXPECT_EQ(diameter(gen::cycle(6)), 3);
  EXPECT_EQ(diameter(gen::complete(4)), 1);
  EXPECT_EQ(diameter(disjoint_union(gen::path(2), gen::path(2))), -1);
}

TEST(Bfs, WeakDiameterUsesWholeGraph) {
  // On a cycle, the two endpoints of a "broken" arc are close through the
  // rest of the graph: weak diameter of {0, 5} in C6 is 1? no: d(0,5)=1.
  const Graph g = gen::cycle(6);
  const std::vector<Vertex> s{0, 3};
  EXPECT_EQ(weak_diameter(g, s), 3);
  const std::vector<Vertex> s2{0, 1, 5};
  EXPECT_EQ(weak_diameter(g, s2), 2);
}

TEST(Bfs, IsConnected) {
  EXPECT_TRUE(is_connected(gen::cycle(4)));
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_FALSE(is_connected(disjoint_union(gen::path(2), gen::path(2))));
}

// ---------------------------------------------------------------------------
// Operations

TEST(Ops, InducedSubgraph) {
  const Graph g = gen::cycle(6);
  const std::vector<Vertex> vs{0, 1, 2, 4};
  const Subgraph sub = induced_subgraph(g, vs);
  EXPECT_EQ(sub.graph.num_vertices(), 4);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 0-1, 1-2 survive; 4 isolated
  EXPECT_EQ(sub.to_parent[3], 4);
  EXPECT_EQ(sub.from_parent[4], 3);
  EXPECT_EQ(sub.from_parent[5], kNoVertex);
}

TEST(Ops, InducedSubgraphLift) {
  const Graph g = gen::path(5);
  const std::vector<Vertex> vs{1, 3, 4};
  const Subgraph sub = induced_subgraph(g, vs);
  const std::vector<Vertex> picked{0, 2};
  EXPECT_EQ(sub.lift(picked), (std::vector<Vertex>{1, 4}));
}

TEST(Ops, RemoveVertices) {
  const Graph g = gen::cycle(5);
  const std::vector<Vertex> rm{0};
  const Subgraph sub = remove_vertices(g, rm);
  EXPECT_EQ(sub.graph.num_vertices(), 4);
  EXPECT_EQ(sub.graph.num_edges(), 3);
}

TEST(Ops, TrueTwinReductionOnClique) {
  // All vertices of K5 are true twins; reduction keeps one.
  const TwinReduction red = remove_true_twins(gen::complete(5));
  EXPECT_EQ(red.num_classes, 1);
  EXPECT_EQ(red.reduced.graph.num_vertices(), 1);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(red.representative[v], 0);
}

TEST(Ops, TrueTwinReductionPreservesTwinless) {
  const Graph g = gen::path(6);
  const TwinReduction red = remove_true_twins(g);
  EXPECT_EQ(red.num_classes, 6);
  EXPECT_EQ(red.reduced.graph, g);
}

TEST(Ops, TrueTwinReductionLiftSolution) {
  const TwinReduction red = remove_true_twins(gen::complete(4));
  const std::vector<Vertex> sol{0};
  const auto lifted = red.lift_solution(sol);
  ASSERT_EQ(lifted.size(), 1u);
  EXPECT_EQ(lifted[0], 0);
}

TEST(Ops, TwinReductionMixedClasses) {
  // K3 with a pendant on vertex 0: vertices 1 and 2 are true twins.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(0, 3);
  const TwinReduction red = remove_true_twins(b.build());
  EXPECT_EQ(red.num_classes, 3);
  EXPECT_EQ(red.representative[2], 1);
  EXPECT_EQ(red.representative[1], 1);
  EXPECT_EQ(red.representative[0], 0);
}

TEST(Ops, ContractPartition) {
  const Graph g = gen::path(6);
  const std::vector<std::vector<Vertex>> parts{{0, 1}, {2, 3}, {4, 5}};
  const Graph contracted = contract_partition(g, parts);
  EXPECT_EQ(contracted.num_vertices(), 3);
  EXPECT_EQ(contracted.num_edges(), 2);
  EXPECT_TRUE(contracted.has_edge(0, 1));
  EXPECT_TRUE(contracted.has_edge(1, 2));
  EXPECT_FALSE(contracted.has_edge(0, 2));
}

TEST(Ops, ContractPartitionRejectsOverlap) {
  const Graph g = gen::path(4);
  const std::vector<std::vector<Vertex>> parts{{0, 1}, {1, 2}};
  EXPECT_THROW(contract_partition(g, parts), std::invalid_argument);
}

TEST(Ops, GraphPower) {
  const Graph g = gen::path(5);
  const Graph g2 = power(g, 2);
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(0, 3));
  EXPECT_EQ(g2.degree(2), 4);
}

TEST(Ops, DisjointUnion) {
  const Graph g = disjoint_union(gen::cycle(3), gen::cycle(4));
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Ops, RComponents) {
  // On a path 0..8, S = {0, 2, 7} with r = 2: {0,2} chain together, {7} apart.
  const Graph g = gen::path(9);
  const std::vector<Vertex> s{0, 2, 7};
  const auto comps = r_components(g, s, 2);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<Vertex>{0, 2}));
  EXPECT_EQ(comps[1], (std::vector<Vertex>{7}));
}

TEST(Ops, RComponentsOfCycleBand) {
  // All of C9 with r=1 forms one r-component.
  const Graph g = gen::cycle(9);
  std::vector<Vertex> all(9);
  std::iota(all.begin(), all.end(), 0);
  EXPECT_EQ(r_components(g, all, 1).size(), 1u);
}

// ---------------------------------------------------------------------------
// I/O

TEST(Io, RoundTripEdgeList) {
  const Graph g = gen::cycle(5);
  std::ostringstream out;
  write_edge_list(out, g);
  const Graph back = parse_edge_list(out.str());
  EXPECT_EQ(back, g);
}

TEST(Io, ParseWithComments) {
  const Graph g = parse_edge_list("# a triangle\nn 3\n0 1\n1 2 # chord\n0 2\n");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(Io, ParseRejectsGarbage) {
  EXPECT_THROW(parse_edge_list("0 x\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("hello world\n"), std::runtime_error);
}

TEST(Io, DotContainsHighlights) {
  const Graph g = gen::path(3);
  const std::vector<Vertex> hl{1};
  const std::string dot = to_dot(g, hl);
  EXPECT_NE(dot.find("1 [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Generators

TEST(Generators, BasicShapes) {
  EXPECT_EQ(gen::path(1).num_edges(), 0);
  EXPECT_EQ(gen::path(10).num_edges(), 9);
  EXPECT_EQ(gen::cycle(10).num_edges(), 10);
  EXPECT_EQ(gen::star(7).num_edges(), 6);
  EXPECT_EQ(gen::complete(6).num_edges(), 15);
  EXPECT_EQ(gen::complete_bipartite(2, 5).num_edges(), 10);
  EXPECT_EQ(gen::grid(3, 4).num_edges(), 17);
  EXPECT_EQ(gen::wheel(7).num_edges(), 12);
}

TEST(Generators, SpiderShape) {
  const Graph g = gen::spider(3, 4);
  EXPECT_EQ(g.num_vertices(), 13);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(diameter(g), 8);
}

TEST(Generators, RandomTreeIsTree) {
  std::mt19937_64 rng(42);
  const Graph g = gen::random_tree(50, rng);
  EXPECT_EQ(g.num_edges(), 49);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CaterpillarShape) {
  const Graph g = gen::caterpillar(5, 3);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 19);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, ThetaChainShape) {
  const Graph g = gen::theta_chain(3, 4);
  // 4 hubs + 3*4 internal vertices.
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 24);
  // No hub-hub edges.
  EXPECT_FALSE(g.has_edge(0, 1));
  // Internal vertices have degree exactly 2.
  for (Vertex v = 4; v < 16; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CliqueWithPendantsShape) {
  const Graph g = gen::clique_with_pendants(5);
  EXPECT_EQ(g.num_vertices(), 9);
  // C(5,2) clique edges + 2 per pendant * 4 pendants.
  EXPECT_EQ(g.num_edges(), 18);
  for (Vertex v = 5; v < 9; ++v) {
    EXPECT_EQ(g.degree(v), 2);
    EXPECT_TRUE(g.has_edge(v, 0));
  }
}

TEST(Generators, ApollonianIsPlanarSized) {
  std::mt19937_64 rng(7);
  const Graph g = gen::apollonian(30, rng);
  EXPECT_EQ(g.num_vertices(), 30);
  // Planar triangulation: m = 3n - 6.
  EXPECT_EQ(g.num_edges(), 3 * 30 - 6);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, MaximalOuterplanarEdgeCount) {
  std::mt19937_64 rng(11);
  const Graph g = gen::random_maximal_outerplanar(20, rng);
  // Maximal outerplanar: m = 2n - 3.
  EXPECT_EQ(g.num_edges(), 2 * 20 - 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, OuterplanarKeepsCycle) {
  std::mt19937_64 rng(13);
  const Graph g = gen::random_outerplanar(15, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 15);  // all chords dropped, cycle kept
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, MaxDegreeRespected) {
  std::mt19937_64 rng(17);
  const Graph g = gen::random_max_degree(60, 4, 30, rng);
  EXPECT_TRUE(is_connected(g));
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_LE(g.degree(v), 4);
}

TEST(Generators, RandomConnected) {
  std::mt19937_64 rng(19);
  const Graph g = gen::random_connected(40, 20, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 59);
}

TEST(Generators, InvalidArgumentsThrow) {
  EXPECT_THROW(gen::path(0), std::invalid_argument);
  EXPECT_THROW(gen::cycle(2), std::invalid_argument);
  EXPECT_THROW(gen::theta_chain(0, 1), std::invalid_argument);
  EXPECT_THROW(gen::clique_with_pendants(1), std::invalid_argument);
}

}  // namespace
}  // namespace lmds::graph
