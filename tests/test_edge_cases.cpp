// Edge cases, failure injection and robustness sweeps across the public
// API: degenerate graphs (empty / single vertex / single edge /
// disconnected), solver budget exhaustion, lower-bound fallbacks, random
// identifier assignments, and LOCAL/centralized agreement for the MVC
// pipeline.

#include <gtest/gtest.h>

#include <random>

#include "asdim/cover.hpp"
#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"
#include "core/baselines.hpp"
#include "core/metrics.hpp"
#include "core/mvc.hpp"
#include "core/theorem44.hpp"
#include "ding/generators.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "local/runner.hpp"
#include "solve/exact_mds.hpp"
#include "solve/validate.hpp"

namespace lmds {
namespace {

using graph::Graph;
using graph::Vertex;

Graph single_vertex() { return Graph(std::vector<std::vector<Vertex>>(1)); }

// ---------------------------------------------------------------------------
// Degenerate inputs

TEST(EdgeCases, Theorem44SingleVertex) {
  const auto result = core::theorem44_mds(single_vertex());
  EXPECT_EQ(result.solution, (std::vector<Vertex>{0}));
}

TEST(EdgeCases, Theorem44SingleEdge) {
  // K2: true twins; exactly the representative survives.
  const auto result = core::theorem44_mds(graph::gen::path(2));
  EXPECT_EQ(result.solution, (std::vector<Vertex>{0}));
}

TEST(EdgeCases, Theorem44MvcSingleVertex) {
  EXPECT_TRUE(core::theorem44_mvc(single_vertex()).solution.empty());
}

TEST(EdgeCases, Algorithm1SingleVertex) {
  core::Algorithm1Config cfg;
  cfg.t = 2;
  const auto result = core::algorithm1(single_vertex(), cfg);
  EXPECT_EQ(result.dominating_set, (std::vector<Vertex>{0}));
}

TEST(EdgeCases, Algorithm1TinyGraphs) {
  core::Algorithm1Config cfg;
  cfg.t = 3;
  cfg.radius1 = 2;
  cfg.radius2 = 2;
  for (int n = 2; n <= 5; ++n) {
    const Graph g = graph::gen::path(n);
    const auto result = core::algorithm1(g, cfg);
    EXPECT_TRUE(solve::is_dominating_set(g, result.dominating_set)) << "P" << n;
  }
}

TEST(EdgeCases, Algorithm1DisconnectedInput) {
  const Graph g = graph::disjoint_union(graph::gen::cycle(9), graph::gen::path(6));
  core::Algorithm1Config cfg;
  cfg.t = 3;
  cfg.radius1 = 3;
  cfg.radius2 = 3;
  const auto result = core::algorithm1(g, cfg);
  EXPECT_TRUE(solve::is_dominating_set(g, result.dominating_set));
}

TEST(EdgeCases, Algorithm1MvcDisconnected) {
  const Graph g = graph::disjoint_union(graph::gen::star(5), graph::gen::cycle(6));
  core::Algorithm1Config cfg;
  cfg.t = 3;
  cfg.radius1 = 3;
  cfg.radius2 = 3;
  const auto result = core::algorithm1_mvc(g, cfg);
  EXPECT_TRUE(solve::is_vertex_cover(g, result.vertex_cover));
}

TEST(EdgeCases, Theorem44DisconnectedWithIsolated) {
  // An isolated vertex must join any dominating set.
  std::vector<std::vector<Vertex>> adj(4);
  adj[0] = {1};
  adj[1] = {0};
  const Graph g(adj);
  const auto result = core::theorem44_mds(g);
  EXPECT_TRUE(solve::is_dominating_set(g, result.solution));
  EXPECT_TRUE(std::binary_search(result.solution.begin(), result.solution.end(), Vertex{2}));
  EXPECT_TRUE(std::binary_search(result.solution.begin(), result.solution.end(), Vertex{3}));
}

TEST(EdgeCases, BaselinesTiny) {
  EXPECT_EQ(core::take_all(single_vertex()).size(), 1u);
  EXPECT_EQ(core::tree_degree_rule(single_vertex()), (std::vector<Vertex>{0}));
  EXPECT_TRUE(solve::is_dominating_set(single_vertex(), core::ksv_style(single_vertex(), 2)));
}

TEST(EdgeCases, CoverOfEmptyGraph) {
  const Graph g;
  const auto cover = asdim::bfs_band_cover(g, 2);
  EXPECT_TRUE(asdim::validate_cover(g, cover).is_cover);
}

// ---------------------------------------------------------------------------
// Failure injection

TEST(FailureInjection, SetCoverBudgetExhaustion) {
  // A 12x12 instance with a tiny node budget must throw, not loop.
  std::vector<std::vector<int>> sets;
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) sets.push_back({i, j});
  }
  EXPECT_THROW(solve::minimum_set_cover(sets, 12, 3), std::runtime_error);
}

TEST(FailureInjection, MetricsFallbackToLowerBound) {
  // A graph large and knotty enough that the budgeted exact solve may fail:
  // we only require a *consistent* report (ratio computed against whichever
  // reference was reached, exact flag truthful).
  std::mt19937_64 rng(4096);
  const Graph g = graph::gen::random_connected(400, 800, rng);
  const auto solution = core::take_all(g);
  const auto report = core::measure_mds_ratio(g, solution);
  EXPECT_GT(report.reference, 0);
  EXPECT_GE(report.ratio, 1.0);
}

TEST(FailureInjection, MvcMetricsLargeGraphUsesBound) {
  std::mt19937_64 rng(8192);
  const Graph g = graph::gen::random_connected(600, 900, rng);
  const auto report = core::measure_mvc_ratio(g, core::take_all(g));
  EXPECT_FALSE(report.exact);  // > 400 vertices: matching bound by policy
  EXPECT_GE(report.ratio, 1.0);
}

// ---------------------------------------------------------------------------
// Random identifiers: outputs remain valid and size-stable

TEST(RandomIds, Theorem44ValidUnderAnyIds) {
  std::mt19937_64 rng(555);
  const Graph g = graph::gen::clique_with_pendants(7);
  for (int trial = 0; trial < 5; ++trial) {
    const local::Network net = local::Network::with_random_ids(g, rng);
    const auto result = core::theorem44_mds_local(net);
    EXPECT_TRUE(solve::is_dominating_set(g, result.solution));
    // Twin-class tie-breaks may move *which* representative joins, never
    // how many.
    EXPECT_EQ(result.solution.size(), core::theorem44_mds(g).solution.size());
  }
}

TEST(RandomIds, Theorem44MvcValidUnderAnyIds) {
  std::mt19937_64 rng(556);
  const Graph g = graph::disjoint_union(graph::gen::path(2), graph::gen::theta_chain(3, 2));
  for (int trial = 0; trial < 5; ++trial) {
    const local::Network net = local::Network::with_random_ids(g, rng);
    const auto result = core::theorem44_mvc_local(net);
    EXPECT_TRUE(solve::is_vertex_cover(g, result.solution));
  }
}

// ---------------------------------------------------------------------------
// MVC LOCAL path agrees with the centralized pipeline

TEST(MvcLocal, MatchesCentralized) {
  std::mt19937_64 rng(557);
  core::Algorithm1Config cfg;
  cfg.t = 5;
  cfg.radius1 = 3;
  cfg.radius2 = 3;
  std::vector<Graph> instances;
  instances.push_back(graph::gen::theta_chain(5, 3));
  instances.push_back(graph::gen::cycle(18));
  ding::CactusConfig ccfg;
  ccfg.pieces = 5;
  ccfg.t = 5;
  instances.push_back(ding::random_cactus_of_structures(ccfg, rng));
  for (const Graph& g : instances) {
    const local::Network net(g);
    const auto central = core::algorithm1_mvc(g, cfg);
    const auto distributed = core::algorithm1_mvc_local(net, cfg);
    EXPECT_EQ(central.vertex_cover, distributed.vertex_cover) << g.summary();
    EXPECT_EQ(central.diag.two_cut_vertices, distributed.diag.two_cut_vertices) << g.summary();
  }
}

// ---------------------------------------------------------------------------
// Algorithm 2 driven by a *measured* control function (cross-module
// integration: asdim -> core)

TEST(Integration, Algorithm2WithMeasuredControl) {
  std::mt19937_64 rng(558);
  const Graph g = graph::gen::theta_chain(8, 3);
  core::Algorithm2Config cfg;
  cfg.d = 1;
  // Empirical control function of this instance (far below (5r+18)t): the
  // resulting radii are small but any radii yield a valid dominating set.
  cfg.f = [&g](int r) { return asdim::measured_control(g, r); };
  const auto result = core::algorithm2(g, cfg);
  EXPECT_TRUE(solve::is_dominating_set(g, result.dominating_set));
  // Quality: still constant-factor on this instance.
  EXPECT_LE(result.dominating_set.size(), 3u * static_cast<std::size_t>(solve::mds_size(g)));
}

// ---------------------------------------------------------------------------
// Output hygiene

TEST(OutputHygiene, SortedUniqueInRange) {
  std::mt19937_64 rng(559);
  ding::CactusConfig ccfg;
  ccfg.pieces = 6;
  ccfg.t = 5;
  const Graph g = ding::random_cactus_of_structures(ccfg, rng);
  core::Algorithm1Config cfg;
  cfg.t = 5;
  cfg.radius1 = 3;
  cfg.radius2 = 3;
  for (const auto& solution :
       {core::algorithm1(g, cfg).dominating_set, core::theorem44_mds(g).solution,
        core::algorithm1_mvc(g, cfg).vertex_cover, core::theorem44_mvc(g).solution}) {
    EXPECT_TRUE(std::is_sorted(solution.begin(), solution.end()));
    EXPECT_EQ(std::adjacent_find(solution.begin(), solution.end()), solution.end());
    for (Vertex v : solution) EXPECT_TRUE(g.has_vertex(v));
  }
}

}  // namespace
}  // namespace lmds
