// Tests for the exact and approximate sequential solvers (set cover engine,
// exact MDS / B-domination / MVC, tree DP, greedy baselines, lower bounds).

#include <gtest/gtest.h>

#include <random>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "solve/bounds.hpp"
#include "solve/exact_mds.hpp"
#include "solve/exact_mvc.hpp"
#include "solve/greedy.hpp"
#include "solve/tree_dp.hpp"
#include "solve/validate.hpp"

namespace lmds::solve {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::Vertex;

// ---------------------------------------------------------------------------
// Set cover engine

TEST(SetCover, EmptyUniverse) {
  EXPECT_TRUE(minimum_set_cover({}, 0).empty());
}

TEST(SetCover, SingleSet) {
  const std::vector<std::vector<int>> sets{{0, 1, 2}};
  EXPECT_EQ(minimum_set_cover(sets, 3), (std::vector<int>{0}));
}

TEST(SetCover, PrefersFewerSets) {
  const std::vector<std::vector<int>> sets{{0}, {1}, {2}, {0, 1, 2}};
  EXPECT_EQ(minimum_set_cover(sets, 3), (std::vector<int>{3}));
}

TEST(SetCover, NeedsTwo) {
  const std::vector<std::vector<int>> sets{{0, 1}, {2, 3}, {1, 2}};
  const auto cover = minimum_set_cover(sets, 4);
  EXPECT_EQ(cover.size(), 2u);
}

TEST(SetCover, InfeasibleThrows) {
  const std::vector<std::vector<int>> sets{{0}};
  EXPECT_THROW(minimum_set_cover(sets, 2), std::runtime_error);
}

TEST(SetCover, GreedyIsNotOptimalButBnbIs) {
  // Classic greedy trap: two rows covered by either the big row-sets or
  // chunked column sets. Verify B&B returns the true optimum of 2.
  // Universe {0..5}; optimal: {0,1,2,3,4,5} split as {0,2,4},{1,3,5}.
  const std::vector<std::vector<int>> sets{{0, 1}, {2, 3}, {4, 5}, {0, 2, 4}, {1, 3, 5}};
  EXPECT_EQ(minimum_set_cover(sets, 6).size(), 2u);
}

// ---------------------------------------------------------------------------
// Exact MDS

TEST(ExactMds, PathOptima) {
  // MDS(P_n) = ceil(n/3).
  for (int n = 1; n <= 12; ++n) {
    EXPECT_EQ(mds_size(graph::gen::path(n)), (n + 2) / 3) << "n=" << n;
  }
}

TEST(ExactMds, CycleOptima) {
  for (int n = 3; n <= 12; ++n) {
    EXPECT_EQ(mds_size(graph::gen::cycle(n)), (n + 2) / 3) << "n=" << n;
  }
}

TEST(ExactMds, StarIsOne) { EXPECT_EQ(mds_size(graph::gen::star(20)), 1); }

TEST(ExactMds, CompleteIsOne) { EXPECT_EQ(mds_size(graph::gen::complete(8)), 1); }

TEST(ExactMds, CliqueWithPendantsIsOne) {
  // The Section 4 example is dominated by vertex 0 alone.
  const Graph g = graph::gen::clique_with_pendants(8);
  const auto mds = exact_mds(g);
  EXPECT_EQ(mds.size(), 1u);
  EXPECT_EQ(mds[0], 0);
}

TEST(ExactMds, SolutionIsDominating) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(30, 15, rng);
    const auto mds = exact_mds(g);
    EXPECT_TRUE(is_dominating_set(g, mds));
  }
}

TEST(ExactMds, MatchesTreeDpOnRandomTrees) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::gen::random_tree(40, rng);
    EXPECT_EQ(mds_size(g), tree_mds_size(g));
  }
}

TEST(ExactMds, GridKnownValue) {
  // MDS of the 4x4 grid is 4.
  EXPECT_EQ(mds_size(graph::gen::grid(4, 4)), 4);
}

TEST(ExactMds, ThetaChainFeasible) {
  const Graph g = graph::gen::theta_chain(6, 4);
  const auto mds = exact_mds(g);
  EXPECT_TRUE(is_dominating_set(g, mds));
  // Hubs at every other position plus endpoints dominate: check optimum is
  // at most the number of hubs.
  EXPECT_LE(mds.size(), 7u);
  EXPECT_GE(mds.size(), 3u);
}

// ---------------------------------------------------------------------------
// B-domination

TEST(BDomination, DominatesOnlyB) {
  const Graph g = graph::gen::path(9);
  const std::vector<Vertex> b{0, 1};
  const auto s = exact_b_domination(g, b);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(is_b_dominating_set(g, s, b));
}

TEST(BDomination, UsesVerticesOutsideB) {
  // B = two leaves of a star: the centre (not in B) dominates both.
  const Graph g = graph::gen::star(6);
  const std::vector<Vertex> b{1, 2, 3};
  const auto s = exact_b_domination(g, b);
  EXPECT_EQ(s, (std::vector<Vertex>{0}));
}

TEST(BDomination, EmptyB) {
  const Graph g = graph::gen::path(4);
  EXPECT_TRUE(exact_b_domination(g, {}).empty());
}

TEST(SetDomination, RestrictedCandidates) {
  // Path 0-1-2; dominate {0,2} but only candidates {0,2} allowed: need both.
  const Graph g = graph::gen::path(3);
  const std::vector<Vertex> targets{0, 2};
  const std::vector<Vertex> candidates{0, 2};
  EXPECT_EQ(exact_set_domination(g, targets, candidates).size(), 2u);
}

TEST(SetDomination, InfeasibleThrows) {
  const Graph g = graph::gen::path(4);  // 0-1-2-3
  const std::vector<Vertex> targets{3};
  const std::vector<Vertex> candidates{0};
  EXPECT_THROW(exact_set_domination(g, targets, candidates), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Tree DP

TEST(TreeDp, PathOptima) {
  for (int n = 1; n <= 15; ++n) {
    EXPECT_EQ(tree_mds_size(graph::gen::path(n)), (n + 2) / 3) << "n=" << n;
  }
}

TEST(TreeDp, StarIsOne) { EXPECT_EQ(tree_mds_size(graph::gen::star(30)), 1); }

TEST(TreeDp, SpiderValue) {
  // Spider with 4 legs of length 3: centre + one per leg... verify against
  // the exact solver instead of a hand value.
  const Graph g = graph::gen::spider(4, 3);
  EXPECT_EQ(tree_mds_size(g), mds_size(g));
}

TEST(TreeDp, SolutionDominates) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::gen::random_tree(60, rng);
    const auto s = tree_mds(g);
    EXPECT_TRUE(is_dominating_set(g, s));
    EXPECT_EQ(s.size(), static_cast<std::size_t>(mds_size(g)));
  }
}

TEST(TreeDp, ForestHandled) {
  const Graph g = graph::disjoint_union(graph::gen::path(4), graph::gen::star(5));
  EXPECT_EQ(tree_mds_size(g), 2 + 1);
}

TEST(TreeDp, IsolatedVertices) {
  const Graph g = graph::Graph(std::vector<std::vector<Vertex>>(3));
  EXPECT_EQ(tree_mds_size(g), 3);
}

TEST(TreeDp, RejectsCycles) {
  EXPECT_THROW(tree_mds(graph::gen::cycle(5)), std::invalid_argument);
}

TEST(TreeDp, CaterpillarMatchesExact) {
  const Graph g = graph::gen::caterpillar(6, 2);
  EXPECT_EQ(tree_mds_size(g), mds_size(g));
}

// ---------------------------------------------------------------------------
// Exact MVC

TEST(ExactMvc, PathOptima) {
  // MVC(P_n) = floor(n/2).
  for (int n = 2; n <= 12; ++n) {
    EXPECT_EQ(mvc_size(graph::gen::path(n)), n / 2) << "n=" << n;
  }
}

TEST(ExactMvc, CycleOptima) {
  // MVC(C_n) = ceil(n/2).
  for (int n = 3; n <= 12; ++n) {
    EXPECT_EQ(mvc_size(graph::gen::cycle(n)), (n + 1) / 2) << "n=" << n;
  }
}

TEST(ExactMvc, CompleteOptima) { EXPECT_EQ(mvc_size(graph::gen::complete(7)), 6); }

TEST(ExactMvc, BipartiteKonig) {
  // MVC(K_{s,t}) = min(s, t).
  EXPECT_EQ(mvc_size(graph::gen::complete_bipartite(3, 8)), 3);
  EXPECT_EQ(mvc_size(graph::gen::complete_bipartite(2, 9)), 2);
}

TEST(ExactMvc, StarIsOne) { EXPECT_EQ(mvc_size(graph::gen::star(15)), 1); }

TEST(ExactMvc, SolutionCovers) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(25, 20, rng);
    const auto cover = exact_mvc(g);
    EXPECT_TRUE(is_vertex_cover(g, cover));
  }
}

TEST(ExactMvc, EdgeSubsetCover) {
  // Cover only the two end edges of P5: the two inner endpoints suffice.
  const Graph g = graph::gen::path(5);
  const std::vector<graph::Edge> edges{{0, 1}, {3, 4}};
  const auto cover = exact_edge_cover_vertices(g, edges);
  EXPECT_EQ(cover.size(), 2u);
}

TEST(ExactMvc, EdgeSubsetRejectsNonEdge) {
  const Graph g = graph::gen::path(3);
  const std::vector<graph::Edge> edges{{0, 2}};
  EXPECT_THROW(exact_edge_cover_vertices(g, edges), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Greedy and bounds

TEST(Greedy, MdsIsDominating) {
  std::mt19937_64 rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(50, 30, rng);
    EXPECT_TRUE(is_dominating_set(g, greedy_mds(g)));
  }
}

TEST(Greedy, MvcIsCover) {
  std::mt19937_64 rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(50, 30, rng);
    EXPECT_TRUE(is_vertex_cover(g, greedy_mvc(g)));
  }
}

TEST(Greedy, MvcWithinTwiceOptimal) {
  std::mt19937_64 rng(47);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::gen::random_connected(20, 15, rng);
    EXPECT_LE(greedy_mvc(g).size(), 2u * static_cast<std::size_t>(mvc_size(g)));
  }
}

TEST(Bounds, TwoPackingIsValidLowerBound) {
  std::mt19937_64 rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(24, 10, rng);
    EXPECT_LE(mds_lower_bound(g), mds_size(g));
  }
}

TEST(Bounds, TwoPackingPairwiseFar) {
  std::mt19937_64 rng(59);
  const Graph g = graph::gen::random_connected(40, 10, rng);
  const auto packed = two_packing(g);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    for (std::size_t j = i + 1; j < packed.size(); ++j) {
      EXPECT_GE(graph::distance(g, packed[i], packed[j]), 3);
    }
  }
}

TEST(Bounds, MatchingLowerBoundsMvc) {
  std::mt19937_64 rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(22, 14, rng);
    EXPECT_LE(mvc_lower_bound(g), mvc_size(g));
  }
}

TEST(Bounds, DegreeLowerBound) {
  // Footnote 4: MDS >= n/(Δ+1); tight on stars.
  EXPECT_EQ(mds_degree_lower_bound(graph::gen::star(10)), 1);
  EXPECT_EQ(mds_degree_lower_bound(graph::gen::path(9)), 3);
  std::mt19937_64 rng(67);
  const Graph g = graph::gen::random_connected(30, 12, rng);
  EXPECT_LE(mds_degree_lower_bound(g), mds_size(g));
}

}  // namespace
}  // namespace lmds::solve
