// Soak-harness unit suite: the validity oracle (accepts every registry
// solver's real output, rejects planted invalid and over-ratio solutions),
// the BAI sampler on synthetic reward streams, the workload generator's
// determinism + minor-free certificates, and every fuzz mutation kind
// round-tripped through the protocol parser (the asan-ubsan preset is where
// this test has teeth).

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "api/registry.hpp"
#include "graph/generators.hpp"
#include "minor/k2t.hpp"
#include "server/json.hpp"
#include "server/session.hpp"
#include "soak/bai.hpp"
#include "soak/fuzz.hpp"
#include "soak/oracle.hpp"
#include "soak/report.hpp"
#include "soak/workload.hpp"

namespace lmds {
namespace {

using soak::GraphCase;

GraphCase tree_case(int n, std::uint64_t seed) {
  GraphCase c;
  c.family = "tree";
  c.graph = graph::gen::random_tree(n, seed);
  c.seed = seed;
  c.certified_t = 2;
  return c;
}

// --------------------------------------------------------------- oracle ---

TEST(SoakOracle, AcceptsEveryRegistrySolversRealOutput) {
  const api::Registry& reg = api::Registry::instance();
  std::vector<GraphCase> cases;
  for (std::uint64_t i = 0; i < 2 * soak::kFamilies; ++i) cases.push_back(soak::make_case(7, i));
  for (const api::SolverSpec* spec : reg.specs()) {
    for (const GraphCase& c : cases) {
      api::Request req;
      req.graph = &c.graph;
      const api::Response r = reg.run(spec->name, req);
      const soak::OracleVerdict v =
          soak::check_response(c, spec->name, {}, spec->problem, r.solution);
      EXPECT_TRUE(v.ok()) << spec->name << " on " << c.family << ": " << v.reason;
    }
  }
}

TEST(SoakOracle, RejectsPlantedInvalidForEverySolver) {
  const GraphCase c = tree_case(12, 3);
  const std::vector<graph::Vertex> empty;
  for (const api::SolverSpec* spec : api::Registry::instance().specs()) {
    const soak::OracleVerdict v =
        soak::check_response(c, spec->name, {}, spec->problem, empty);
    EXPECT_FALSE(v.ok()) << spec->name << " accepted an empty solution";
    EXPECT_FALSE(v.valid);
  }
}

TEST(SoakOracle, RejectsOutOfRangeVertices) {
  const GraphCase c = tree_case(10, 3);
  const std::vector<graph::Vertex> bad{0, 99};
  const soak::OracleVerdict v =
      soak::check_response(c, "greedy", {}, api::Problem::Mds, bad);
  EXPECT_FALSE(v.ok());
}

TEST(SoakOracle, RejectsPlantedOverRatio) {
  // All vertices of a star: a valid dominating set at ratio n / 1 — over
  // every asserted bound (exact's 1 and greedy's 1 + ln n).
  GraphCase c;
  c.family = "star";
  c.graph = graph::gen::star(50);
  c.certified_t = 3;
  std::vector<graph::Vertex> all;
  for (graph::Vertex v = 0; v < c.graph.num_vertices(); ++v) all.push_back(v);
  for (const char* solver : {"exact", "greedy"}) {
    const soak::OracleVerdict v =
        soak::check_response(c, solver, {}, api::Problem::Mds, all);
    EXPECT_TRUE(v.valid) << solver;
    EXPECT_FALSE(v.ok()) << solver << " accepted ratio " << v.ratio;
    EXPECT_TRUE(v.ratio_checked) << solver;
  }
}

TEST(SoakOracle, Algorithm1BoundOnlyAtPaperRadii) {
  api::Options ablation{{"t", 5}, {"radius1", 4}, {"radius2", 4}};
  api::Options paper{{"t", 5}, {"radius1", 0}, {"radius2", 0}};
  EXPECT_EQ(soak::ratio_bound("algorithm1", ablation, 5, 30), 0.0);
  EXPECT_EQ(soak::ratio_bound("algorithm1", paper, 5, 30), 51.0);
  // Options t below the certificate: the class parameter does not contain
  // the input's class, so no bound.
  EXPECT_EQ(soak::ratio_bound("algorithm1", paper, 7, 30), 0.0);
  EXPECT_EQ(soak::ratio_bound("theorem44", {}, 3, 30), 5.0);
  EXPECT_EQ(soak::ratio_bound("theorem44-mvc", {}, 3, 30), 3.0);
  EXPECT_EQ(soak::ratio_bound("tree-rule", {}, 3, 30), 0.0);  // validity-only
}

// ----------------------------------------------------------------- BAI ---

TEST(SoakBai, TopTwoFindsBestArmOnSyntheticStream) {
  soak::BaiSampler sampler(4, soak::SamplingRule::TopTwo, /*threshold=*/3.0,
                           /*min_pulls=*/3, /*seed=*/99);
  const double means[] = {0.30, 0.55, 0.80, 0.40};
  std::mt19937_64 noise(42);
  std::normal_distribution<double> jitter(0.0, 0.05);
  for (int i = 0; i < 400; ++i) {
    const std::size_t arm = sampler.next_arm();
    sampler.record(arm, means[arm] + jitter(noise));
  }
  EXPECT_EQ(sampler.best_arm(), 2u);
  EXPECT_TRUE(sampler.confident());
  EXPECT_GT(sampler.decided_after(), 0u);
  // After confidence the sampler exploits: the winner holds a plurality.
  for (std::size_t a = 0; a < 4; ++a) {
    if (a != 2) {
      EXPECT_GT(sampler.arms()[2].pulls, sampler.arms()[a].pulls);
    }
  }
}

TEST(SoakBai, RoundRobinStaysUniform) {
  soak::BaiSampler sampler(3, soak::SamplingRule::RoundRobin, 3.0, 1, 7);
  for (int i = 0; i < 30; ++i) sampler.record(sampler.next_arm(), 0.5);
  for (const soak::ArmStats& a : sampler.arms()) EXPECT_EQ(a.pulls, 10u);
}

TEST(SoakBai, DeterministicForFixedSeed) {
  const auto run = [] {
    soak::BaiSampler s(3, soak::SamplingRule::TopTwo, 2.0, 2, 1234);
    const double means[] = {0.2, 0.6, 0.4};
    std::vector<std::size_t> picks;
    for (int i = 0; i < 60; ++i) {
      const std::size_t arm = s.next_arm();
      picks.push_back(arm);
      s.record(arm, means[arm]);
    }
    return picks;
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------------------- workload ---

TEST(SoakWorkload, DeterministicAndCertified) {
  for (std::uint64_t i = 0; i < 2 * soak::kFamilies; ++i) {
    const GraphCase a = soak::make_case(42, i);
    const GraphCase b = soak::make_case(42, i);
    EXPECT_EQ(a.graph, b.graph) << "case " << i << " not deterministic";
    EXPECT_EQ(a.family, b.family);
    ASSERT_GE(a.graph.num_vertices(), 3);
    if (a.certified_t > 0 && a.graph.num_vertices() <= 28) {
      EXPECT_TRUE(minor::is_k2t_minor_free(a.graph, a.certified_t))
          << a.family << " case " << i << " violates its K_{2," << a.certified_t
          << "} certificate";
    }
  }
}

TEST(SoakWorkload, SeedOverloadsMatchEngineOverloads) {
  std::mt19937_64 rng(123);
  EXPECT_EQ(graph::gen::random_tree(20, 123), graph::gen::random_tree(20, rng));
  std::mt19937_64 rng2(9);
  EXPECT_EQ(graph::gen::apollonian(15, 9), graph::gen::apollonian(15, rng2));
}

// ----------------------------------------------------------------- fuzz ---

TEST(SoakFuzz, EveryMutationKindRoundTripsThroughProtocol) {
  server::ServerCore core(server::CoreOptions{}, api::Registry::instance());
  server::Session session(core);
  const std::string base =
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[{\"n\":4,\"edges\":[[0,1],[1,2],[2,3]]}]}";
  std::mt19937_64 rng(2026);
  for (int kind = 0; kind < soak::kMutationKinds; ++kind) {
    for (int i = 0; i < 64; ++i) {
      const std::string mutated =
          soak::mutate_line(base, static_cast<soak::MutationKind>(kind), rng);
      EXPECT_EQ(mutated.find('\n'), std::string::npos);
      EXPECT_EQ(mutated.find('\r'), std::string::npos);
      // The protocol core must answer every mutation with a JSON line — an
      // exception or a sanitizer report here is the failure mode.
      const std::string response = session.handle_line(mutated);
      ASSERT_FALSE(response.empty());
      const server::JsonValue body = server::json_parse(response);
      ASSERT_NE(body.find("ok"), nullptr)
          << soak::to_string(static_cast<soak::MutationKind>(kind)) << ": " << response;
    }
  }
}

TEST(SoakFuzz, MutationsAreDeterministic) {
  const std::string base = "{\"op\":\"stats\"}";
  const auto run = [&] {
    std::mt19937_64 rng(5);
    std::vector<std::string> out;
    for (int kind = 0; kind < soak::kMutationKinds; ++kind) {
      out.push_back(soak::mutate_line(base, static_cast<soak::MutationKind>(kind), rng));
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

// --------------------------------------------------------------- report ---

TEST(SoakReport, HistogramBucketsAndJson) {
  soak::RatioHistogram h;
  h.add(1.0);
  h.add(1.3);
  h.add(2.5);
  h.add(10.0);
  EXPECT_EQ(h.samples, 4u);
  EXPECT_EQ(h.counts[0], 1u);  // <= 1.0
  EXPECT_EQ(h.counts[2], 1u);  // <= 1.5
  EXPECT_EQ(h.counts[4], 1u);  // <= 3.0
  EXPECT_EQ(h.counts[6], 1u);  // > 5
  EXPECT_DOUBLE_EQ(h.max_ratio, 10.0);

  soak::SoakReport report;
  report.seed = 42;
  report.duration = 10;
  report.tcp = report.http = true;
  report.sampling_rule = "top-two";
  report.best_config = "greedy";
  const std::string json = report.to_json();
  // The report is valid JSON and omits wall-clock by default (determinism).
  const server::JsonValue parsed = server::json_parse(json);
  ASSERT_NE(parsed.find("soak"), nullptr);
  EXPECT_EQ(parsed.find("soak")->find("wall_seconds"), nullptr);
  EXPECT_EQ(parsed.find("oracle_violations")->as_int(), 0);
}

}  // namespace
}  // namespace lmds
