// Tests for the unified lmds::api solver registry: every registered solver
// produces a valid solution over the generator suite, registry output is
// bit-identical to the legacy direct-call API on the same inputs, and the
// Request/Response surface (options, modes, batching, errors) behaves as
// documented.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>

#include "api/registry.hpp"
#include "core/algorithm1.hpp"
#include "core/baselines.hpp"
#include "core/mvc.hpp"
#include "core/theorem44.hpp"
#include "ding/generators.hpp"
#include "graph/generators.hpp"
#include "solve/exact_mds.hpp"
#include "solve/exact_mvc.hpp"
#include "solve/greedy.hpp"
#include "solve/validate.hpp"

namespace lmds::api {
namespace {

using graph::Graph;
using graph::Vertex;

// Small instances from both generator families; kept modest so the exact
// solvers stay fast inside the all-solvers sweep.
std::vector<Graph> generator_suite() {
  std::mt19937_64 rng(20250727);
  std::vector<Graph> gs;
  gs.push_back(graph::gen::path(12));
  gs.push_back(graph::gen::cycle(9));
  gs.push_back(graph::gen::star(7));
  gs.push_back(graph::gen::grid(4, 5));
  gs.push_back(graph::gen::spider(4, 3));
  gs.push_back(graph::gen::theta_chain(4, 4));
  gs.push_back(graph::gen::caterpillar(8, 2));
  gs.push_back(graph::gen::random_tree(30, rng));
  ding::CactusConfig cc;
  cc.pieces = 6;
  cc.t = 5;
  gs.push_back(ding::random_cactus_of_structures(cc, rng));
  return gs;
}

std::vector<Vertex> sorted(std::vector<Vertex> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<std::string> names_for(Problem problem) {
  std::vector<std::string> out;
  for (const SolverSpec* spec : Registry::instance().specs()) {
    if (spec->problem == problem) out.push_back(spec->name);
  }
  return out;
}

std::string test_name(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

TEST(Registry, EnumeratesAllTenSolvers) {
  const auto names = Registry::instance().names();
  const std::vector<std::string> expected = {
      "algorithm1", "algorithm1-mvc", "exact",    "exact-mvc", "greedy",
      "ksv",        "take-all",       "theorem44", "theorem44-mvc", "tree-rule"};
  for (const auto& name : expected) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), name) != names.end())
        << "missing solver: " << name;
  }
  EXPECT_EQ(names.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, SpecsDeclareProblemsAndParams) {
  const auto& reg = Registry::instance();
  EXPECT_EQ(reg.at("algorithm1").problem, Problem::Mds);
  EXPECT_EQ(reg.at("algorithm1-mvc").problem, Problem::Mvc);
  EXPECT_EQ(reg.at("exact-mvc").problem, Problem::Mvc);
  EXPECT_EQ(reg.at("algorithm1").param_default("t"), 5);
  EXPECT_EQ(reg.at("algorithm1").param_default("radius1"), 4);
  EXPECT_EQ(reg.at("ksv").param_default("k"), 3);
  EXPECT_TRUE(reg.at("theorem44").supports(Mode::Local));
  EXPECT_FALSE(reg.at("greedy").supports(Mode::Local));
  EXPECT_THROW((void)reg.at("greedy").param_default("t"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Every registered solver x every generated graph: solution is valid.

class MdsSolverSuite : public testing::TestWithParam<std::string> {};

TEST_P(MdsSolverSuite, DominatesEveryGeneratedGraph) {
  const auto& reg = Registry::instance();
  for (const Graph& g : generator_suite()) {
    Request req;
    req.graph = &g;
    const Response res = reg.run(GetParam(), req);
    EXPECT_TRUE(res.valid) << GetParam() << " invalid on " << g.summary();
    EXPECT_TRUE(solve::is_dominating_set(g, res.solution))
        << GetParam() << " on " << g.summary();
    EXPECT_TRUE(std::is_sorted(res.solution.begin(), res.solution.end()));
    EXPECT_EQ(res.problem, Problem::Mds);
    EXPECT_EQ(res.solver, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllMds, MdsSolverSuite, testing::ValuesIn(names_for(Problem::Mds)),
                         test_name);

class MvcSolverSuite : public testing::TestWithParam<std::string> {};

TEST_P(MvcSolverSuite, CoversEveryGeneratedGraph) {
  const auto& reg = Registry::instance();
  for (const Graph& g : generator_suite()) {
    Request req;
    req.graph = &g;
    const Response res = reg.run(GetParam(), req);
    EXPECT_TRUE(res.valid) << GetParam() << " invalid on " << g.summary();
    EXPECT_TRUE(solve::is_vertex_cover(g, res.solution))
        << GetParam() << " on " << g.summary();
    EXPECT_EQ(res.problem, Problem::Mvc);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMvc, MvcSolverSuite, testing::ValuesIn(names_for(Problem::Mvc)),
                         test_name);

// ---------------------------------------------------------------------------
// Registry output == legacy direct-call output on identical inputs (the
// acceptance criterion of the API redesign: no algorithm changed behaviour).

TEST(Registry, MatchesDirectCallsOnIdenticalInputs) {
  const auto& reg = Registry::instance();
  core::Algorithm1Config cfg;  // the registry defaults: t=5, r1=r2=4
  cfg.t = 5;
  cfg.radius1 = 4;
  cfg.radius2 = 4;

  for (const Graph& g : generator_suite()) {
    Request req;
    req.graph = &g;
    const auto run = [&](const char* name) { return reg.run(name, req).solution; };

    EXPECT_EQ(run("algorithm1"), sorted(core::algorithm1(g, cfg).dominating_set));
    EXPECT_EQ(run("algorithm1-mvc"), sorted(core::algorithm1_mvc(g, cfg).vertex_cover));
    EXPECT_EQ(run("theorem44"), sorted(core::theorem44_mds(g).solution));
    EXPECT_EQ(run("theorem44-mvc"), sorted(core::theorem44_mvc(g).solution));
    EXPECT_EQ(run("greedy"), sorted(solve::greedy_mds(g)));
    EXPECT_EQ(run("exact").size(), solve::exact_mds(g).size());
    EXPECT_EQ(run("exact-mvc").size(), solve::exact_mvc(g).size());
    EXPECT_EQ(run("ksv"), sorted(core::ksv_style(g, 3)));
    EXPECT_EQ(run("take-all"), sorted(core::take_all(g)));
    EXPECT_EQ(run("tree-rule"), sorted(core::tree_degree_rule(g)));
  }
}

TEST(Registry, OptionsReachTheAlgorithm) {
  const Graph g = graph::gen::theta_chain(5, 4);
  const auto& reg = Registry::instance();

  Request req;
  req.graph = &g;
  req.options["k"] = 1;
  const auto k1 = reg.run("ksv", req).solution;
  EXPECT_EQ(k1, sorted(core::ksv_style(g, 1)));

  Request areq;
  areq.graph = &g;
  areq.options["t"] = 7;
  areq.options["radius1"] = 3;
  areq.options["radius2"] = 3;
  core::Algorithm1Config acfg;
  acfg.t = 7;
  acfg.radius1 = 3;
  acfg.radius2 = 3;
  EXPECT_EQ(reg.run("algorithm1", areq).solution,
            sorted(core::algorithm1(g, acfg).dominating_set));
}

// ---------------------------------------------------------------------------
// LOCAL execution and traffic measurement through the unified surface.

TEST(Registry, LocalModeMeasuresTrafficAndAgrees) {
  const Graph g = graph::gen::theta_chain(4, 3);
  const auto& reg = Registry::instance();

  for (const char* name : {"theorem44", "theorem44-mvc", "algorithm1", "algorithm1-mvc"}) {
    Request central;
    central.graph = &g;
    Request local = central;
    local.measure_traffic = true;

    const Response c = reg.run(name, central);
    const Response l = reg.run(name, local);
    EXPECT_EQ(c.solution, l.solution) << name << ": LOCAL path diverged from centralized";
    EXPECT_FALSE(c.diag.traffic_measured);
    EXPECT_TRUE(l.diag.traffic_measured);
    EXPECT_GT(l.diag.traffic.rounds, 0) << name;
    EXPECT_GT(l.diag.traffic.messages, 0u) << name;
  }
}

TEST(Registry, RatioMeasurementOnRequest) {
  const Graph g = graph::gen::theta_chain(4, 3);
  Request req;
  req.graph = &g;
  req.measure_ratio = true;
  const Response res = Registry::instance().run("exact", req);
  ASSERT_TRUE(res.ratio_measured);
  EXPECT_TRUE(res.ratio.exact);
  EXPECT_DOUBLE_EQ(res.ratio.ratio, 1.0);  // exact solver is ratio 1 by definition
}

// ---------------------------------------------------------------------------
// Batch entry point.

TEST(Registry, RunBatchAnswersEachGraph) {
  const auto graphs = generator_suite();
  Request req;  // graph deliberately unset: run_batch supplies each graph
  const auto responses =
      Registry::instance().run_batch("theorem44", {graphs.data(), graphs.size()}, req);
  ASSERT_EQ(responses.size(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_TRUE(responses[i].valid);
    EXPECT_EQ(responses[i].solution, sorted(core::theorem44_mds(graphs[i]).solution));
  }
}

// ---------------------------------------------------------------------------
// Error surface.

TEST(Registry, RejectsBadRequests) {
  const Graph g = graph::gen::path(5);
  const auto& reg = Registry::instance();

  // All request-validation failures throw RequestError (a subclass of
  // std::invalid_argument), so callers can tell them apart from
  // solver-internal exceptions.
  Request req;
  req.graph = &g;
  EXPECT_THROW((void)reg.run("no-such-solver", req), RequestError);
  EXPECT_THROW((void)reg.at("no-such-solver"), RequestError);
  EXPECT_EQ(reg.find("no-such-solver"), nullptr);

  Request no_graph;
  EXPECT_THROW((void)reg.run("greedy", no_graph), RequestError);

  Request bad_option;
  bad_option.graph = &g;
  bad_option.options["radius9"] = 1;
  EXPECT_THROW((void)reg.run("algorithm1", bad_option), RequestError);
  EXPECT_THROW((void)reg.run("algorithm1", bad_option), std::invalid_argument);

  Request traffic_on_centralized;
  traffic_on_centralized.graph = &g;
  traffic_on_centralized.measure_traffic = true;
  EXPECT_THROW((void)reg.run("greedy", traffic_on_centralized), RequestError);
}

}  // namespace
}  // namespace lmds::api
