// Property tests for the paper's quantitative lemmas, evaluated empirically
// on the certified instance families:
//   Lemma 3.2      — #(local 1-cuts) <= 3(d+1) · MDS(G)
//   Lemma 3.3      — #(interesting vertices) <= 22(d+1) · MDS(G)
//   Lemma 4.2      — residual components have bounded diameter
//   Lemma 5.16     — Ore: MDS <= n/2 without isolated vertices
//   Lemma 5.18     — |A| <= (t-1)|B| for bipartite-minor shapes
//   Corollary 5.20 — |D2(G)| <= (2t-1) · MDS(G)
// plus the Theorem 4.1/4.4 end-to-end ratio guarantees on parameterized
// family sweeps (TEST_P).

#include <gtest/gtest.h>

#include <random>

#include "core/algorithm1.hpp"
#include "core/constants.hpp"
#include "core/theorem44.hpp"
#include "cuts/interesting.hpp"
#include "cuts/local_cuts.hpp"
#include "ding/generators.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "minor/k2t.hpp"
#include "solve/exact_mds.hpp"
#include "solve/tree_dp.hpp"
#include "solve/validate.hpp"

namespace lmds {
namespace {

using graph::Graph;
using graph::Vertex;

// The instance families the lemma sweeps run on. Every graph comes with the
// t for which it is K_{2,t}-minor-free (certified by construction).
struct Instance {
  Graph graph;
  int t;
  std::string label;
};

std::vector<Instance> lemma_instances() {
  std::vector<Instance> result;
  std::mt19937_64 rng(977);
  result.push_back({graph::gen::cycle(30), 3, "C30"});
  result.push_back({graph::gen::cycle(13), 3, "C13"});
  result.push_back({graph::gen::theta_chain(6, 3), 4, "theta_6_3"});
  result.push_back({graph::gen::theta_chain(4, 6), 7, "theta_4_6"});
  result.push_back({graph::gen::caterpillar(8, 2), 2, "caterpillar"});
  result.push_back({graph::gen::random_tree(40, rng), 2, "tree40"});
  result.push_back({graph::gen::random_maximal_outerplanar(20, rng), 3, "outerplanar20"});
  result.push_back({ding::fan(8), 3, "fan8"});
  result.push_back({ding::strip(7), 5, "strip7"});
  {
    ding::CactusConfig cfg;
    cfg.pieces = 6;
    cfg.max_piece_size = 8;
    cfg.t = 5;
    result.push_back({ding::random_cactus_of_structures(cfg, rng), 5, "cactus5"});
  }
  return result;
}

class LemmaSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Families, LemmaSweep, ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return lemma_instances()[static_cast<std::size_t>(info.param)].label;
                         });

// ---------------------------------------------------------------------------
// Lemma 3.2: local 1-cuts are at most 3(d+1) MDS(G). K_{2,t}-minor-free
// classes have d = 1, so the bound is 6 MDS(G). The paper proves it at
// radius m3.2; local cuts are radius-monotone (more local cuts at smaller
// radii is possible only up to the global-cut limit at radius >= diameter),
// so we check the *global* count (radius = n) and a mid radius.

TEST_P(LemmaSweep, Lemma32GlobalOneCuts) {
  const Instance inst = lemma_instances()[static_cast<std::size_t>(GetParam())];
  const core::PaperConstants constants{.t = inst.t, .d = 1};
  const int mds = solve::mds_size(inst.graph);
  const int global = static_cast<int>(
      cuts::local_one_cuts(inst.graph, inst.graph.num_vertices()).size());
  EXPECT_LE(global, constants.c32() * mds) << inst.label;
}

TEST_P(LemmaSweep, Lemma32MidRadiusOneCuts) {
  const Instance inst = lemma_instances()[static_cast<std::size_t>(GetParam())];
  const core::PaperConstants constants{.t = inst.t, .d = 1};
  const int mds = solve::mds_size(inst.graph);
  // Radius 4 stands in for m3.2 (the paper constant exceeds every diameter
  // here); the charging argument is what the bound tests.
  const int count = static_cast<int>(cuts::local_one_cuts(inst.graph, 4).size());
  EXPECT_LE(count, constants.c32() * mds) << inst.label;
}

// ---------------------------------------------------------------------------
// Lemma 3.3: interesting vertices are at most 22(d+1) MDS(G) = 44 MDS(G).

TEST_P(LemmaSweep, Lemma33GlobalInteresting) {
  const Instance inst = lemma_instances()[static_cast<std::size_t>(GetParam())];
  const core::PaperConstants constants{.t = inst.t, .d = 1};
  const int mds = solve::mds_size(inst.graph);
  const int count = static_cast<int>(cuts::globally_interesting_vertices(inst.graph).size());
  EXPECT_LE(count, constants.c33() * mds) << inst.label;
}

TEST_P(LemmaSweep, Lemma33MidRadiusInteresting) {
  const Instance inst = lemma_instances()[static_cast<std::size_t>(GetParam())];
  const core::PaperConstants constants{.t = inst.t, .d = 1};
  const int mds = solve::mds_size(inst.graph);
  const int count = static_cast<int>(cuts::interesting_vertices(inst.graph, 4).size());
  EXPECT_LE(count, constants.c33() * mds) << inst.label;
}

// ---------------------------------------------------------------------------
// Theorem 4.1 / 4.4 end-to-end guarantees on the same sweep.

TEST_P(LemmaSweep, Algorithm1WithinDerivedRatio) {
  const Instance inst = lemma_instances()[static_cast<std::size_t>(GetParam())];
  core::Algorithm1Config cfg;
  cfg.t = inst.t;
  cfg.radius1 = 4;
  cfg.radius2 = 4;
  const auto result = core::algorithm1(inst.graph, cfg);
  ASSERT_TRUE(solve::is_dominating_set(inst.graph, result.dominating_set)) << inst.label;
  const int mds = solve::mds_size(inst.graph);
  const core::PaperConstants constants{.t = inst.t, .d = 1};
  EXPECT_LE(static_cast<int>(result.dominating_set.size()), constants.derived_ratio() * mds)
      << inst.label;
}

TEST_P(LemmaSweep, Theorem44WithinRatio) {
  const Instance inst = lemma_instances()[static_cast<std::size_t>(GetParam())];
  const auto result = core::theorem44_mds(inst.graph);
  ASSERT_TRUE(solve::is_dominating_set(inst.graph, result.solution)) << inst.label;
  const int mds = solve::mds_size(inst.graph);
  const core::PaperConstants constants{.t = inst.t, .d = 1};
  EXPECT_LE(static_cast<int>(result.solution.size()), constants.theorem44_mds_ratio() * mds)
      << inst.label;
}

// ---------------------------------------------------------------------------
// Lemma 4.2: residual components have bounded diameter. On instances with
// long strips, the residual diameter must stay far below the strip length.

TEST(Lemma42, LongStripsResidualBounded) {
  // A path base with two long strips: strip interiors survive steps 1-2 but
  // split into bounded-diameter pieces.
  std::mt19937_64 rng(983);
  ding::AugmentationConfig cfg;
  cfg.base_vertices = 16;
  cfg.fans = 1;
  cfg.strips = 2;
  cfg.min_length = 12;
  cfg.max_length = 16;
  const auto aug = ding::random_augmentation(cfg, rng);
  core::Algorithm1Config acfg;
  acfg.t = 6;
  acfg.radius1 = 3;
  acfg.radius2 = 3;
  const auto result = core::algorithm1(aug.graph, acfg);
  EXPECT_TRUE(solve::is_dominating_set(aug.graph, result.dominating_set));
  // The residual diameter stays bounded by a small multiple of the radii,
  // never the strip length (Lemma 4.2's content).
  EXPECT_LE(result.diag.max_residual_diameter, 12);
}

TEST(Lemma42, CactusResidualBounded) {
  std::mt19937_64 rng(991);
  ding::CactusConfig cfg;
  cfg.pieces = 10;
  cfg.max_piece_size = 14;
  cfg.t = 5;
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = ding::random_cactus_of_structures(cfg, rng);
    core::Algorithm1Config acfg;
    acfg.t = 5;
    acfg.radius1 = 3;
    acfg.radius2 = 3;
    const auto result = core::algorithm1(g, acfg);
    EXPECT_LE(result.diag.max_residual_diameter, 14) << g.summary();
  }
}

// ---------------------------------------------------------------------------
// Lemma 5.16 (Ore).

TEST(Lemma516, OreBound) {
  std::mt19937_64 rng(997);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(24, 10, rng);
    EXPECT_LE(2 * solve::mds_size(g), g.num_vertices());
  }
}

TEST(Lemma516, TightOnK2Unions) {
  // Disjoint edges: MDS = n/2 exactly.
  Graph g = graph::disjoint_union(graph::gen::path(2), graph::gen::path(2));
  g = graph::disjoint_union(g, graph::gen::path(2));
  EXPECT_EQ(solve::mds_size(g), 3);
}

// ---------------------------------------------------------------------------
// Lemma 5.18: in a K_{2,t}-minor-free graph split as A ⊔ B with A edgeless
// and deg(a) >= 2 for all a in A, |A| <= (t-1)|B|.

TEST(Lemma518, RandomBipartiteMinorShapes) {
  std::mt19937_64 rng(1009);
  for (int trial = 0; trial < 10; ++trial) {
    // B: a random connected "core"; A: vertices attached to >= 2 core
    // vertices, added only while the graph stays K_{2,4}-minor-free.
    const int b_size = 8;
    Graph core_graph = graph::gen::random_connected(b_size, 4, rng);
    graph::GraphBuilder builder(b_size);
    for (const graph::Edge e : core_graph.edges()) builder.add_edge(e.u, e.v);
    std::uniform_int_distribution<Vertex> pick(0, b_size - 1);
    const int t = 4;
    int a_size = 0;
    for (int attempt = 0; attempt < 40; ++attempt) {
      const Vertex x = pick(rng);
      const Vertex y = pick(rng);
      if (x == y) continue;
      graph::GraphBuilder trial_builder = builder;
      const Vertex fresh = static_cast<Vertex>(b_size + a_size);
      trial_builder.add_edge(fresh, x);
      trial_builder.add_edge(fresh, y);
      const Graph candidate = trial_builder.build();
      if (minor::is_k2t_minor_free(candidate, t, 2)) {
        builder = trial_builder;
        ++a_size;
      }
    }
    EXPECT_LE(a_size, (t - 1) * b_size);
  }
}

TEST(Lemma518, TightOnThetaBundle) {
  // K_{2,t-1} itself: A = the t-1 middle vertices, B = the two hubs.
  // |A| = t-1 <= (t-1)*2 with room; the extremal examples chain bundles.
  const int t = 5;
  const Graph g = graph::gen::theta_chain(3, t - 1);
  ASSERT_TRUE(minor::is_k2t_minor_free(g, t));
  const int a = 3 * (t - 1);  // internals (edgeless, degree 2)
  const int b = 4;            // hubs
  EXPECT_LE(a, (t - 1) * b);
}

// ---------------------------------------------------------------------------
// Corollary 5.20: |D2(G)| <= (2t-1) MDS(G) on twin-less K_{2,t}-minor-free
// graphs — the engine of Theorem 4.4, checked directly through the D2 rule.

TEST(Corollary520, ThetaChainsNearTight) {
  for (const int parallel : {2, 4, 6}) {
    const int t = parallel + 1;
    const Graph g = graph::gen::theta_chain(8, parallel);
    const auto d2 = core::theorem44_mds(g);
    const int mds = solve::mds_size(g);
    EXPECT_LE(static_cast<int>(d2.solution.size()), (2 * t - 1) * mds) << "t=" << t;
    // Near-tightness: the rule really does pay Θ(t) here.
    EXPECT_GE(static_cast<int>(d2.solution.size()), (t - 1) * mds / 2) << "t=" << t;
  }
}

TEST(Corollary520, CertifiedCactuses) {
  std::mt19937_64 rng(1013);
  ding::CactusConfig cfg;
  cfg.pieces = 7;
  cfg.t = 6;
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = ding::random_cactus_of_structures(cfg, rng);
    const auto d2 = core::theorem44_mds(g);
    const int mds = solve::mds_size(g);
    EXPECT_LE(static_cast<int>(d2.solution.size()), (2 * cfg.t - 1) * mds) << g.summary();
  }
}

}  // namespace
}  // namespace lmds
