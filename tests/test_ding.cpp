// Tests for Ding's structures (§5.4): fans, strips, type-I validity,
// augmentations, and the certified K_{2,t}-minor-free cactus generator.

#include <gtest/gtest.h>

#include <random>

#include "ding/generators.hpp"
#include "ding/structures.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "minor/k2t.hpp"

namespace lmds::ding {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(Fan, Shape) {
  const Graph g = fan(4);
  EXPECT_EQ(g.num_vertices(), 6);
  // Path edges 1-2,2-3,3-4,4-5 plus centre edges to 1..5.
  EXPECT_EQ(g.num_edges(), 4 + 5);
  EXPECT_EQ(g.degree(0), 5);
}

TEST(Fan, IsK23MinorFree) {
  for (int len = 1; len <= 8; ++len) {
    EXPECT_TRUE(minor::is_k2t_minor_free(fan(len), 3)) << "len=" << len;
    EXPECT_EQ(minor::max_k2t(fan(len)), len >= 2 ? 2 : 1) << "len=" << len;
  }
}

TEST(Fan, CornersAreOnGraph) {
  const auto corners = fan_corners(5);
  const Graph g = fan(5);
  for (Vertex c : corners) EXPECT_TRUE(g.has_vertex(c));
  EXPECT_EQ(corners[0], 0);
  EXPECT_EQ(corners[2], 6);
}

TEST(Strip, LadderShape) {
  const Graph g = strip(5);
  EXPECT_EQ(g.num_vertices(), 10);
  // 2*(k-1) path edges + 2 end edges + (k-2) interior rungs.
  EXPECT_EQ(g.num_edges(), 8 + 2 + 3);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Strip, IsK25MinorFree) {
  for (int len = 2; len <= 7; ++len) {
    EXPECT_TRUE(minor::is_k2t_minor_free(strip(len), 5)) << "len=" << len;
    EXPECT_TRUE(minor::is_k2t_minor_free(strip(len, true), 5)) << "crossed len=" << len;
  }
}

TEST(Strip, MinimumDegreeTwo) {
  for (const bool crossed : {false, true}) {
    const Graph g = strip(6, crossed);
    for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_GE(g.degree(v), 2);
  }
}

TEST(Strip, RadiusGrowsWithLength) {
  const auto corners10 = strip_corners(10);
  const auto corners4 = strip_corners(4);
  EXPECT_GT(structure_radius(strip(10), corners10), structure_radius(strip(4), corners4));
}

TEST(Strip, CornersDistinct) {
  const auto corners = strip_corners(5);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) EXPECT_NE(corners[i], corners[j]);
  }
}

// ---------------------------------------------------------------------------
// Type-I validity

TEST(TypeOne, PlainCycleIsTypeOne) {
  const Graph g = graph::gen::cycle(8);
  std::vector<Vertex> cycle{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_TRUE(is_type_one(g, cycle));
}

TEST(TypeOne, OuterplanarIsTypeOne) {
  // Non-crossing chords always qualify.
  std::mt19937_64 rng(107);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::gen::random_maximal_outerplanar(10, rng);
    std::vector<Vertex> cycle;
    for (Vertex v = 0; v < 10; ++v) cycle.push_back(v);
    EXPECT_TRUE(is_type_one(g, cycle));
  }
}

TEST(TypeOne, AllowedCrossingPattern) {
  // C6 with chords {0,4} and {1,5}: they cross, and endpoints 0,1 / 4,5 are
  // cycle-adjacent — the allowed X pattern.
  graph::GraphBuilder b(6);
  b.add_cycle({0, 1, 2, 3, 4, 5});
  b.add_edge(0, 4);
  b.add_edge(1, 5);
  std::vector<Vertex> cycle{0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(is_type_one(b.build(), cycle));
}

TEST(TypeOne, ForbiddenCrossingPattern) {
  // C8 with chords {0,4} and {2,6}: crossing, endpoints not cycle-adjacent.
  graph::GraphBuilder b(8);
  b.add_cycle({0, 1, 2, 3, 4, 5, 6, 7});
  b.add_edge(0, 4);
  b.add_edge(2, 6);
  std::vector<Vertex> cycle{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_FALSE(is_type_one(b.build(), cycle));
}

TEST(TypeOne, TripleCrossingRejected) {
  // One chord crossing two others violates "crosses at most one".
  graph::GraphBuilder b(8);
  b.add_cycle({0, 1, 2, 3, 4, 5, 6, 7});
  b.add_edge(0, 4);  // crossed by both below
  b.add_edge(1, 5);
  b.add_edge(3, 7);
  std::vector<Vertex> cycle{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_FALSE(is_type_one(b.build(), cycle));
}

TEST(TypeOne, NotHamiltonianRejected) {
  const Graph g = graph::gen::path(4);
  std::vector<Vertex> cycle{0, 1, 2, 3};
  EXPECT_FALSE(is_type_one(g, cycle));
}

TEST(TypeOne, StripIsTypeOne) {
  // The strip's reference cycle: top path then reversed bottom path.
  const int k = 5;
  const Graph g = strip(k);
  std::vector<Vertex> cycle;
  for (int i = 0; i < k; ++i) cycle.push_back(static_cast<Vertex>(i));
  for (int i = k - 1; i >= 0; --i) cycle.push_back(static_cast<Vertex>(k + i));
  EXPECT_TRUE(is_type_one(g, cycle));
}

TEST(TypeOne, CrossedStripIsTypeOne) {
  const int k = 6;
  const Graph g = strip(k, true);
  std::vector<Vertex> cycle;
  for (int i = 0; i < k; ++i) cycle.push_back(static_cast<Vertex>(i));
  for (int i = k - 1; i >= 0; --i) cycle.push_back(static_cast<Vertex>(k + i));
  EXPECT_TRUE(is_type_one(g, cycle));
}

// ---------------------------------------------------------------------------
// Augmentations

TEST(Augmentation, AttachFanGrowsGraph) {
  const Graph base = graph::gen::cycle(5);
  AugmentationBuilder builder(base);
  const auto interior = builder.attach_fan(0, 1, 2, 4);
  EXPECT_EQ(interior.size(), 3u);  // length-1 fresh interior vertices
  const Graph g = builder.build();
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_TRUE(graph::is_connected(g));
  // Centre adjacent to all fan path vertices.
  for (Vertex p : interior) EXPECT_TRUE(g.has_edge(0, p));
}

TEST(Augmentation, AttachStripGrowsGraph) {
  const Graph base = graph::gen::cycle(6);
  AugmentationBuilder builder(base);
  const auto interior = builder.attach_strip({0, 2, 3, 5}, 4);
  EXPECT_EQ(interior.size(), 4u);  // 2*4 - 4 corners
  const Graph g = builder.build();
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Augmentation, CornerSharingRuleEnforced) {
  const Graph base = graph::gen::cycle(6);
  AugmentationBuilder builder(base);
  builder.attach_strip({0, 1, 2, 3}, 3);
  // Reusing a strip corner for another strip corner is forbidden...
  EXPECT_THROW(builder.attach_strip({0, 4, 5, 1}, 3), std::invalid_argument);
  // ...but a fan centre may share with a strip corner.
  EXPECT_NO_THROW(builder.attach_fan(0, 4, 5, 2));
}

TEST(Augmentation, DistinctCornersRequired) {
  AugmentationBuilder builder(graph::gen::cycle(5));
  EXPECT_THROW(builder.attach_fan(0, 0, 1, 3), std::invalid_argument);
  EXPECT_THROW(builder.attach_strip({0, 1, 1, 2}, 3), std::invalid_argument);
}

TEST(Augmentation, RandomAugmentationConnected) {
  std::mt19937_64 rng(109);
  AugmentationConfig cfg;
  const Augmentation aug = random_augmentation(cfg, rng);
  EXPECT_TRUE(graph::is_connected(aug.graph));
  EXPECT_EQ(aug.structure_corners.size(), 4u);
}

// ---------------------------------------------------------------------------
// Certified cactus generator

TEST(Cactus, CertifiedMinorFree) {
  std::mt19937_64 rng(113);
  for (const int t : {3, 5, 7}) {
    CactusConfig cfg;
    cfg.pieces = 6;
    cfg.max_piece_size = 8;
    cfg.t = t;
    for (int trial = 0; trial < 3; ++trial) {
      const Graph g = random_cactus_of_structures(cfg, rng);
      EXPECT_TRUE(graph::is_connected(g));
      // Cross-check certification with the exact small-hub tester.
      EXPECT_TRUE(minor::is_k2t_minor_free(g, t, 2)) << "t=" << t << " " << g.summary();
    }
  }
}

TEST(Cactus, ThetaPiecesReachTheBound) {
  // With theta links enabled the generator should produce K_{2,t-1} minors
  // (the certificate is tight).
  std::mt19937_64 rng(127);
  CactusConfig cfg;
  cfg.pieces = 8;
  cfg.t = 6;
  cfg.use_fans = false;
  cfg.use_strips = false;
  cfg.use_cycles = false;
  const Graph g = random_cactus_of_structures(cfg, rng);
  EXPECT_EQ(minor::max_k2t(g, 1), cfg.t - 1);
}

TEST(Cactus, RejectsBadConfig) {
  std::mt19937_64 rng(131);
  CactusConfig cfg;
  cfg.t = 2;
  EXPECT_THROW(random_cactus_of_structures(cfg, rng), std::invalid_argument);
  CactusConfig cfg2;
  cfg2.use_fans = cfg2.use_strips = cfg2.use_theta_links = cfg2.use_cycles = false;
  EXPECT_THROW(random_cactus_of_structures(cfg2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace lmds::ding
