// Tests for the serving subsystem: the minimal JSON layer, protocol
// decode/encode (graph decode, solve requests, error classes), the
// socket-free Session core (v1 round-trips, protocol-v2 graph handles,
// namespaces, per-request overrides, malformed-request rejection, admin
// verbs, cache snapshot save/load/warm-hit), the HTTP front-end (routing,
// status mapping), and real TCP round-trips over the loopback interface for
// both transports.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "graph/generators.hpp"
#include "server/http.hpp"
#include "server/json.hpp"
#include "server/net.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/session.hpp"

namespace lmds::server {
namespace {

using graph::Graph;

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

// ---------------------------------------------------------------------------
// JSON layer

TEST(Json, ParsesScalarsArraysObjects) {
  const JsonValue v = json_parse(
      R"({"a": 1, "b": -2.5, "c": true, "d": null, "e": [1, 2, 3], "f": {"g": "hi"}})");
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(v.find("b")->as_double(), -2.5);
  EXPECT_TRUE(v.find("c")->as_bool());
  EXPECT_TRUE(v.find("d")->is_null());
  EXPECT_EQ(v.find("e")->as_array().size(), 3u);
  EXPECT_EQ(v.find("e")->as_array()[2].as_int(), 3);
  EXPECT_EQ(v.find("f")->find("g")->as_string(), "hi");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, IntAndDoubleStayDistinct) {
  EXPECT_EQ(json_parse("5").as_int(), 5);
  EXPECT_EQ(json_parse("5.0").type(), JsonValue::Type::Double);
  EXPECT_THROW((void)json_parse("5.5").as_int(), JsonError);  // never truncates
  EXPECT_DOUBLE_EQ(json_parse("5").as_double(), 5.0);         // int promotes
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string original = "tab\t quote\" backslash\\ newline\n unicode \xC3\xA9";
  std::string encoded;
  json_append_string(encoded, original);
  EXPECT_EQ(json_parse(encoded).as_string(), original);
  EXPECT_EQ(json_parse(R"("é")").as_string(), "\xC3\xA9");
  EXPECT_EQ(json_parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1, 2", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
                          "\"unterminated", "\"bad \\x escape\"", "nan", "--1",
                          "{\"a\":1,}"}) {
    EXPECT_THROW((void)json_parse(bad), JsonError) << "accepted: " << bad;
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW((void)json_parse(deep), JsonError);
}

TEST(Json, DoubleEmissionIsLocaleIndependent) {
  std::string out;
  json_append_double(out, 0.125);
  EXPECT_EQ(out, "0.125");  // always '.', never a locale decimal comma
}

// ---------------------------------------------------------------------------
// Graph decode

TEST(Protocol, DecodesEdgeListGraph) {
  const ServerLimits limits;
  const Graph g =
      decode_graph(json_parse(R"({"n": 4, "edges": [[0,1],[1,2],[2,3]]})"), limits);
  EXPECT_EQ(g, graph::gen::path(4));
}

TEST(Protocol, DerivesVertexCountWhenAbsent) {
  const ServerLimits limits;
  const Graph g = decode_graph(json_parse(R"({"edges": [[0,1],[1,2]]})"), limits);
  EXPECT_EQ(g.num_vertices(), 3);
  // And "n" can allocate isolated trailing vertices.
  const Graph iso = decode_graph(json_parse(R"({"n": 5, "edges": [[0,1]]})"), limits);
  EXPECT_EQ(iso.num_vertices(), 5);
  EXPECT_EQ(iso.num_edges(), 1);
}

TEST(Protocol, RejectsMalformedGraphs) {
  const ServerLimits limits;
  for (const char* bad : {
           R"({"edges": [[0,0]]})",            // self-loop
           R"({"n": 2, "edges": [[0,5]]})",    // endpoint outside [0, n)
           R"({"n": -1, "edges": []})",        // negative n
           R"({"edges": [[0,-1]]})",           // negative endpoint
           R"({"edges": [[0]]})",              // not a pair
           R"({"edges": [[0,1,2]]})",          // not a pair
           R"({"edges": 7})",                  // edges not an array
           R"({"n": 3})",                      // no edges field
           R"([1,2,3])",                       // graph not an object
           R"({"edges": [[0, 1.5]]})",         // non-integer endpoint
       }) {
    EXPECT_THROW((void)decode_graph(json_parse(bad), limits), ProtocolError)
        << "accepted: " << bad;
  }
}

TEST(Protocol, RejectsOversizedGraph) {
  ServerLimits limits;
  limits.max_graph_vertices = 10;
  EXPECT_THROW((void)decode_graph(json_parse(R"({"n": 11, "edges": []})"), limits),
               ProtocolError);
  EXPECT_THROW((void)decode_graph(json_parse(R"({"edges": [[0, 10]]})"), limits),
               ProtocolError);
  EXPECT_NO_THROW((void)decode_graph(json_parse(R"({"n": 10, "edges": []})"), limits));
}

// ---------------------------------------------------------------------------
// handle_line: solve round-trips and error classes (no sockets involved)

std::string graphs_json(const std::vector<Graph>& gs) {
  std::string out = "[";
  for (std::size_t i = 0; i < gs.size(); ++i) {
    if (i) out += ',';
    out += "{\"n\":" + std::to_string(gs[i].num_vertices()) + ",\"edges\":[";
    bool first = true;
    for (const auto& [u, v] : gs[i].edges()) {
      if (!first) out += ',';
      first = false;
      out += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
    }
    out += "]}";
  }
  return out + "]";
}

std::vector<Graph> suite() {
  std::vector<Graph> gs;
  gs.push_back(graph::gen::path(8));
  gs.push_back(graph::gen::cycle(7));
  gs.push_back(graph::gen::grid(3, 4));
  gs.push_back(graph::gen::theta_chain(4, 3));
  return gs;
}

ServerOptions test_options(std::size_t cache_capacity = 64) {
  ServerOptions opts;
  opts.core.batch.threads = 2;
  opts.core.batch.shard_size = 1;
  opts.core.batch.cache_capacity = cache_capacity;
  opts.core.snapshot_dir = testing::TempDir();  // client snapshot verbs resolve here
  return opts;
}

const std::string kErr = "\"ok\":false";

TEST(ServerCore, SolveRoundTripMatchesDirectRegistry) {
  Server server(test_options());
  const std::vector<Graph> gs = suite();
  const std::string line = "{\"op\":\"solve\",\"solver\":\"theorem44\",\"measure_ratio\":true,"
                           "\"graphs\":" + graphs_json(gs) + "}";
  const JsonValue response = json_parse(server.handle_line(line));
  ASSERT_TRUE(response.find("ok")->as_bool()) << server.handle_line(line);

  api::Request req;
  req.measure_ratio = true;
  const auto direct = api::Registry::instance().run_batch("theorem44",
                                                          {gs.data(), gs.size()}, req);
  const auto& responses = response.find("responses")->as_array();
  ASSERT_EQ(responses.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_TRUE(responses[i].find("valid")->as_bool());
    EXPECT_EQ(responses[i].find("solver")->as_string(), "theorem44");
    EXPECT_EQ(responses[i].find("problem")->as_string(), "mds");
    const auto& solution = responses[i].find("solution")->as_array();
    ASSERT_EQ(solution.size(), direct[i].solution.size());
    for (std::size_t j = 0; j < solution.size(); ++j) {
      EXPECT_EQ(solution[j].as_int(), direct[i].solution[j]);
    }
    EXPECT_EQ(responses[i].find("ratio")->find("solution_size")->as_int(),
              direct[i].ratio.solution_size);
  }
  const JsonValue* diag = response.find("diag");
  EXPECT_EQ(diag->find("cache_misses")->as_int(),
            static_cast<std::int64_t>(gs.size()));
}

TEST(ServerCore, SecondIdenticalSolveIsAllCacheHits) {
  Server server(test_options());
  const std::string line = "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                           graphs_json(suite()) + "}";
  (void)server.handle_line(line);
  const JsonValue warm = json_parse(server.handle_line(line));
  EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(),
            static_cast<std::int64_t>(suite().size()));
  EXPECT_EQ(warm.find("diag")->find("cache_misses")->as_int(), 0);
}

TEST(ServerCore, EmptyBatchIsValidAndEmpty) {
  Server server(test_options());
  const JsonValue response = json_parse(
      server.handle_line(R"({"op":"solve","solver":"greedy","graphs":[]})"));
  EXPECT_TRUE(response.find("ok")->as_bool());
  EXPECT_TRUE(response.find("responses")->as_array().empty());
}

TEST(ServerCore, ErrorClassesAreDistinguished) {
  ServerOptions opts = test_options();
  opts.core.limits.max_graph_vertices = 10;
  opts.core.limits.max_batch_graphs = 2;
  Server server(opts);

  struct Case {
    const char* line;
    const char* code;
  };
  const Case cases[] = {
      // Truncated line (as the connection loop would hand it over).
      {R"({"op":"solve","solver":"greedy")", "bad_request"},
      {"not json at all", "bad_request"},
      {R"({"solver":"greedy","graphs":[]})", "bad_request"},  // no op
      {R"({"op":"frobnicate"})", "bad_request"},
      {R"({"op":"solve","solver":"no-such-solver","graphs":[]})", "unknown_solver"},
      {R"({"op":"solve","solver":"greedy"})", "bad_request"},  // no graphs
      {R"({"op":"solve","solver":"greedy","graphs":[{"edges":[[0,0]]}]})", "bad_request"},
      // Undeclared option: registry-level RequestError -> bad_request.
      {R"({"op":"solve","solver":"greedy","options":{"bogus":1},"graphs":[]})",
       "bad_request"},
      // Option with a non-scalar value.
      {R"({"op":"solve","solver":"greedy","options":{"t":[1]},"graphs":[]})",
       "bad_request"},
      // measure_traffic on a centralized-only solver.
      {R"({"op":"solve","solver":"greedy","measure_traffic":true,"graphs":[]})",
       "bad_request"},
      // Oversized graph and oversized batch.
      {R"({"op":"solve","solver":"greedy","graphs":[{"n":11,"edges":[]}]})",
       "bad_request"},
      {R"({"op":"solve","solver":"greedy","graphs":[{"edges":[]},{"edges":[]},{"edges":[]}]})",
       "bad_request"},
      {R"({"op":"save_cache"})", "bad_request"},  // no path
      // Confinement: clients name snapshots, never filesystem locations.
      {R"({"op":"save_cache","path":"/etc/passwd"})", "bad_request"},
      {R"({"op":"load_cache","path":"../../outside.bin"})", "bad_request"},
      {R"({"op":"save_cache","path":""})", "bad_request"},
      {R"({"op":"load_cache","path":"nonexistent_subdir/snap.bin"})", "io_error"},
  };
  for (const Case& c : cases) {
    const JsonValue response = json_parse(server.handle_line(c.line));
    EXPECT_FALSE(response.find("ok")->as_bool()) << c.line;
    EXPECT_EQ(response.find("code")->as_string(), c.code) << c.line;
    EXPECT_FALSE(response.find("error")->as_string().empty()) << c.line;
  }
  EXPECT_FALSE(server.stopping()) << "error handling must not stop the server";
}

TEST(ServerCore, SolversVerbEnumeratesRegistry) {
  Server server(test_options());
  const JsonValue response = json_parse(server.handle_line(R"({"op":"solvers"})"));
  ASSERT_TRUE(response.find("ok")->as_bool());
  const auto& solvers = response.find("solvers")->as_array();
  EXPECT_EQ(solvers.size(), api::Registry::instance().specs().size());
  bool saw_algorithm1 = false;
  for (const auto& s : solvers) {
    if (s.find("name")->as_string() == "algorithm1") {
      saw_algorithm1 = true;
      bool saw_t = false;
      for (const auto& p : s.find("params")->as_array()) {
        if (p.find("name")->as_string() == "t") {
          saw_t = true;
          EXPECT_EQ(p.find("type")->as_string(), "int");
          EXPECT_EQ(p.find("default")->as_int(), 5);
        }
      }
      EXPECT_TRUE(saw_t);
    }
  }
  EXPECT_TRUE(saw_algorithm1);
}

TEST(ServerCore, StatsVerbCountsWork) {
  Server server(test_options());
  (void)server.handle_line("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                           graphs_json(suite()) + "}");
  const JsonValue stats = json_parse(server.handle_line(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.find("server")->find("graphs_solved")->as_int(),
            static_cast<std::int64_t>(suite().size()));
  EXPECT_EQ(stats.find("server")->find("requests")->as_int(), 2);
  EXPECT_EQ(stats.find("cache")->find("misses")->as_int(),
            static_cast<std::int64_t>(suite().size()));
}

TEST(ServerCore, ShutdownVerbStops) {
  Server server(test_options());
  const JsonValue response = json_parse(server.handle_line(R"({"op":"shutdown"})"));
  EXPECT_TRUE(response.find("ok")->as_bool());
  EXPECT_TRUE(server.stopping());
}

// ---------------------------------------------------------------------------
// Cache snapshot persistence: the restart story

TEST(ServerCore, SnapshotSaveLoadWarmHitAcrossServerInstances) {
  // The verb takes a name relative to the server's snapshot_dir (TempDir
  // in test_options); temp_path() is where it lands on disk.
  const std::string path = "lmds_server_snapshot.bin";
  const std::string solve_line = "{\"op\":\"solve\",\"solver\":\"algorithm1\","
                                 "\"measure_ratio\":true,\"graphs\":" +
                                 graphs_json(suite()) + "}";
  // The encoded "responses" payload (everything before the diag member,
  // which legitimately differs between a cold and a warm run).
  const auto payload_of = [](const std::string& line) {
    return line.substr(0, line.find("\"diag\""));
  };
  std::string cold_payload;
  {
    Server first(test_options());
    const std::string cold_line = first.handle_line(solve_line);
    cold_payload = payload_of(cold_line);
    const JsonValue cold = json_parse(cold_line);
    ASSERT_TRUE(cold.find("ok")->as_bool());
    EXPECT_EQ(cold.find("diag")->find("cache_hits")->as_int(), 0);
    const JsonValue saved = json_parse(
        first.handle_line("{\"op\":\"save_cache\",\"path\":\"" + path + "\"}"));
    ASSERT_TRUE(saved.find("ok")->as_bool());
    EXPECT_EQ(saved.find("entries")->as_int(), static_cast<std::int64_t>(suite().size()));
  }
  {
    // A brand-new server (fresh executor, empty cache) warms from the file
    // and answers the replayed batch from cache, byte-identically.
    Server second(test_options());
    const JsonValue loaded = json_parse(
        second.handle_line("{\"op\":\"load_cache\",\"path\":\"" + path + "\"}"));
    ASSERT_TRUE(loaded.find("ok")->as_bool());
    const std::string warm_line = second.handle_line(solve_line);
    const JsonValue warm = json_parse(warm_line);
    ASSERT_TRUE(warm.find("ok")->as_bool());
    EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(),
              static_cast<std::int64_t>(suite().size()));
    EXPECT_EQ(warm.find("diag")->find("cache_misses")->as_int(), 0);
    EXPECT_EQ(payload_of(warm_line), cold_payload);
  }
  std::remove(temp_path(path).c_str());
}

TEST(ServerCore, SnapshotVerbsDisabledWithoutSnapshotDir) {
  ServerOptions opts = test_options();
  opts.core.snapshot_dir.clear();
  Server server(opts);
  const JsonValue response = json_parse(
      server.handle_line(R"({"op":"save_cache","path":"x.bin"})"));
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("code")->as_string(), "bad_request");
}

TEST(ServerCore, CorruptSnapshotIsRejectedWithoutClearingCache) {
  const std::string path = "lmds_server_corrupt.bin";
  {
    std::ofstream out(temp_path(path), std::ios::binary);
    out << "this is not a snapshot";
  }
  Server server(test_options());
  (void)server.handle_line("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                           graphs_json(suite()) + "}");
  const JsonValue response = json_parse(
      server.handle_line("{\"op\":\"load_cache\",\"path\":\"" + path + "\"}"));
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("code")->as_string(), "io_error");
  // The live cache survived the failed load: the replay still hits.
  const JsonValue warm = json_parse(
      server.handle_line("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                         graphs_json(suite()) + "}"));
  EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(),
            static_cast<std::int64_t>(suite().size()));
  std::remove(temp_path(path).c_str());
}

// ---------------------------------------------------------------------------
// Protocol v2: graph handles, namespaces, per-request overrides

TEST(ServerCore, V1InlineSolveResponseShapeUnchanged) {
  // The back-compat contract: a request that names no v2 field is answered
  // exactly as PR 4 answered it — same member order, no "namespace" member.
  Server server(test_options());
  const std::string line = "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                           graphs_json(suite()) + "}";
  const std::string response = server.handle_line(line);
  EXPECT_TRUE(response.starts_with("{\"ok\":true,\"op\":\"solve\",\"responses\":["));
  EXPECT_EQ(response.find("\"namespace\""), std::string::npos);
  const JsonValue parsed = json_parse(response);
  ASSERT_TRUE(parsed.find("ok")->as_bool());
  EXPECT_EQ(parsed.find("responses")->as_array().size(), suite().size());
}

TEST(ServerCore, SolveByHandleMatchesInlineSolve) {
  Server server(test_options());
  const std::vector<Graph> gs = suite();

  // Upload every graph; solve by handle; compare with the inline payload
  // from a second, independent server (so cache diag differences in this
  // server cannot mask a payload difference).
  std::string handles = "[";
  for (std::size_t i = 0; i < gs.size(); ++i) {
    const JsonValue put = json_parse(server.handle_line(
        "{\"op\":\"put_graph\",\"graph\":" + graphs_json({gs[i]}).substr(1,
            graphs_json({gs[i]}).size() - 2) + "}"));
    ASSERT_TRUE(put.find("ok")->as_bool());
    EXPECT_TRUE(put.find("new")->as_bool());
    if (i) handles += ',';
    handles += '"' + put.find("handle")->as_string() + '"';
  }
  handles += ']';

  const auto payload_of = [](const std::string& line) {
    return line.substr(0, line.find("\"diag\""));
  };
  const std::string by_handle = server.handle_line(
      "{\"op\":\"solve\",\"solver\":\"theorem44\",\"measure_ratio\":true,\"graphs\":" +
      handles + "}");
  Server fresh(test_options());
  const std::string inline_solve = fresh.handle_line(
      "{\"op\":\"solve\",\"solver\":\"theorem44\",\"measure_ratio\":true,\"graphs\":" +
      graphs_json(gs) + "}");
  EXPECT_EQ(payload_of(by_handle), payload_of(inline_solve));
}

TEST(ServerCore, MixedHandleAndInlineBatchAnswersInOrder) {
  Server server(test_options());
  const Graph path = graph::gen::path(8);
  const Graph cycle = graph::gen::cycle(7);
  const JsonValue put = json_parse(server.handle_line(
      "{\"op\":\"put_graph\",\"graph\":{\"n\":8,\"edges\":[[0,1],[1,2],[2,3],[3,4],[4,5],"
      "[5,6],[6,7]]}}"));
  ASSERT_TRUE(put.find("ok")->as_bool());
  const std::string handle = put.find("handle")->as_string();

  const JsonValue mixed = json_parse(server.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" + handle + "\"," +
      graphs_json({cycle}).substr(1, graphs_json({cycle}).size() - 2) + "]}"));
  ASSERT_TRUE(mixed.find("ok")->as_bool());
  const auto& responses = mixed.find("responses")->as_array();
  ASSERT_EQ(responses.size(), 2u);

  api::Request req;
  const auto direct_path = api::Registry::instance().run_batch("greedy", {&path, 1}, req);
  const auto direct_cycle = api::Registry::instance().run_batch("greedy", {&cycle, 1}, req);
  EXPECT_EQ(responses[0].find("solution")->as_array().size(),
            direct_path[0].solution.size());
  EXPECT_EQ(responses[1].find("solution")->as_array().size(),
            direct_cycle[0].solution.size());
}

TEST(ServerCore, PutGraphIsContentAddressed) {
  Server server(test_options());
  const std::string put_line =
      "{\"op\":\"put_graph\",\"graph\":{\"n\":4,\"edges\":[[0,1],[1,2],[2,3]]}}";
  const JsonValue first = json_parse(server.handle_line(put_line));
  ASSERT_TRUE(first.find("ok")->as_bool());
  EXPECT_TRUE(first.find("new")->as_bool());
  EXPECT_EQ(first.find("n")->as_int(), 4);
  EXPECT_EQ(first.find("m")->as_int(), 3);
  const JsonValue second = json_parse(server.handle_line(put_line));
  EXPECT_FALSE(second.find("new")->as_bool());
  EXPECT_EQ(second.find("handle")->as_string(), first.find("handle")->as_string());
}

TEST(ServerCore, HandleErrorPaths) {
  ServerOptions opts = test_options();
  opts.core.limits.max_graph_vertices = 10;
  opts.core.store_capacity = 1;
  Server server(opts);

  // Well-formed but never-uploaded handle: unknown_handle.
  const JsonValue unknown = json_parse(server.handle_line(
      R"({"op":"solve","solver":"greedy","graphs":["g0123456789abcdef"]})"));
  EXPECT_FALSE(unknown.find("ok")->as_bool());
  EXPECT_EQ(unknown.find("code")->as_string(), "unknown_handle");

  // Malformed handle spelling: caught at decode as bad_request.
  const JsonValue malformed = json_parse(server.handle_line(
      R"({"op":"solve","solver":"greedy","graphs":["not-a-handle"]})"));
  EXPECT_EQ(malformed.find("code")->as_string(), "bad_request");

  // Oversized put_graph: the same limit inline solve graphs obey.
  const JsonValue oversized = json_parse(server.handle_line(
      R"({"op":"put_graph","graph":{"n":11,"edges":[]}})"));
  EXPECT_EQ(oversized.find("code")->as_string(), "bad_request");

  // put -> drop -> solve: the dropped-and-evicted handle is unknown. With
  // store capacity 1, putting a second graph evicts the unpinned first.
  const JsonValue put = json_parse(server.handle_line(
      R"({"op":"put_graph","graph":{"n":3,"edges":[[0,1],[1,2]]}})"));
  ASSERT_TRUE(put.find("ok")->as_bool());
  const std::string handle = put.find("handle")->as_string();
  const JsonValue dropped = json_parse(server.handle_line(
      "{\"op\":\"drop_graph\",\"handle\":\"" + handle + "\"}"));
  EXPECT_TRUE(dropped.find("ok")->as_bool());
  (void)server.handle_line(R"({"op":"put_graph","graph":{"n":2,"edges":[[0,1]]}})");
  const JsonValue gone = json_parse(server.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" + handle + "\"]}"));
  EXPECT_EQ(gone.find("code")->as_string(), "unknown_handle");

  // drop of a never-stored handle: unknown_handle.
  const JsonValue redrop = json_parse(server.handle_line(
      R"({"op":"drop_graph","handle":"g0123456789abcdef"})"));
  EXPECT_EQ(redrop.find("code")->as_string(), "unknown_handle");

  // Store full (capacity 1, one pinned graph): server_busy, retryable.
  const JsonValue full = json_parse(server.handle_line(
      R"({"op":"put_graph","graph":{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4]]}})"));
  EXPECT_FALSE(full.find("ok")->as_bool());
  EXPECT_EQ(full.find("code")->as_string(), "server_busy");

  // A zero-capacity store is *disabled*, not busy: no drop can ever free
  // room, so telling the client to retry would be a lie.
  ServerOptions disabled = test_options();
  disabled.core.store_capacity = 0;
  Server no_store(disabled);
  const JsonValue off = json_parse(no_store.handle_line(
      R"({"op":"put_graph","graph":{"n":2,"edges":[[0,1]]}})"));
  EXPECT_EQ(off.find("code")->as_string(), "bad_request");
}

TEST(ServerCore, NamespacesIsolateCacheEntries) {
  // open_session state is per-Session (one per connection); Server's own
  // handle_line is deliberately stateless, so this test holds a Session.
  ServerOptions all_ns = test_options();
  all_ns.core.stats_all_namespaces = true;  // operator mode: full stats map
  Server server(all_ns);
  Session session(server.core());
  const std::string solve = "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                            graphs_json(suite()) + "}";
  const auto hits_of = [&](const std::string& line) {
    return json_parse(session.handle_line(line)).find("diag")->find("cache_hits")->as_int();
  };
  const auto n = static_cast<std::int64_t>(suite().size());

  // Default namespace: second identical solve is all hits.
  EXPECT_EQ(hits_of(solve), 0);
  EXPECT_EQ(hits_of(solve), n);

  // Same graphs+solver under open_session "tenant-a": cold again.
  const JsonValue opened = json_parse(session.handle_line(
      R"({"op":"open_session","namespace":"tenant-a"})"));
  ASSERT_TRUE(opened.find("ok")->as_bool());
  EXPECT_EQ(opened.find("namespace")->as_string(), "tenant-a");
  EXPECT_EQ(hits_of(solve), 0);
  EXPECT_EQ(hits_of(solve), n);

  // A per-request "namespace" field overrides the session's choice, and the
  // response echoes it. (A stateless Server::handle_line call reaches the
  // same cache — the namespaces live in the shared core, not the session.)
  const std::string in_b = "{\"op\":\"solve\",\"solver\":\"greedy\",\"namespace\":\"tenant-b\","
                           "\"graphs\":" + graphs_json(suite()) + "}";
  const JsonValue b_cold = json_parse(server.handle_line(in_b));
  EXPECT_EQ(b_cold.find("diag")->find("cache_hits")->as_int(), 0);
  EXPECT_EQ(b_cold.find("namespace")->as_string(), "tenant-b");

  // Back to the default namespace: still warm from the first pass.
  (void)session.handle_line(R"({"op":"open_session"})");
  EXPECT_EQ(hits_of(solve), n);

  // Stats reports all three namespaces with their own counters.
  const JsonValue stats = json_parse(server.handle_line(R"({"op":"stats"})"));
  const JsonValue* namespaces = stats.find("namespaces");
  ASSERT_NE(namespaces, nullptr);
  EXPECT_EQ(namespaces->find("")->find("hits")->as_int(), 2 * n);
  EXPECT_EQ(namespaces->find("tenant-a")->find("hits")->as_int(), n);
  EXPECT_EQ(namespaces->find("tenant-a")->find("misses")->as_int(), n);
  EXPECT_EQ(namespaces->find("tenant-b")->find("misses")->as_int(), n);
  EXPECT_EQ(namespaces->find("tenant-b")->find("size")->as_int(), n);

  // Bad namespaces are rejected at decode.
  const JsonValue bad = json_parse(server.handle_line(
      "{\"op\":\"open_session\",\"namespace\":\"" + std::string(300, 'x') + "\"}"));
  EXPECT_EQ(bad.find("code")->as_string(), "bad_request");

  // Without the operator flag, stats must not leak other tenants' tags —
  // knowing a tag is all it takes to read that tenant's warm cache. A
  // default-namespace caller sees only its own slice.
  Server guarded(test_options());
  (void)guarded.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"namespace\":\"tenant-secret\",\"graphs\":" +
      graphs_json(suite()) + "}");
  const JsonValue guarded_stats = json_parse(guarded.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(guarded_stats.find("namespaces")->find("tenant-secret"), nullptr);
}

TEST(ServerCore, PerRequestBatchOverrides) {
  Server server(test_options());  // configured threads=2, shard_size=1
  const std::string graphs = graphs_json(suite());

  // threads/shard_size overrides are reflected in the batch diagnostics.
  const JsonValue overridden = json_parse(server.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"batch\":{\"threads\":1,\"shard_size\":4},"
      "\"graphs\":" + graphs + "}"));
  ASSERT_TRUE(overridden.find("ok")->as_bool());
  EXPECT_EQ(overridden.find("diag")->find("threads")->as_int(), 1);
  EXPECT_EQ(overridden.find("diag")->find("shards")->as_int(),
            static_cast<std::int64_t>((suite().size() + 3) / 4));

  // no_cache computes fresh: the warm repeat still reports zero hits and
  // zero misses (nothing read, nothing written).
  const JsonValue bypass = json_parse(server.handle_line(
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"batch\":{\"no_cache\":true},\"graphs\":" +
      graphs + "}"));
  EXPECT_EQ(bypass.find("diag")->find("cache_hits")->as_int(), 0);
  EXPECT_EQ(bypass.find("diag")->find("cache_misses")->as_int(), 0);

  // Override validation: out-of-range and unknown keys are bad requests.
  for (const char* bad : {
           R"({"op":"solve","solver":"greedy","batch":{"threads":0},"graphs":[]})",
           R"({"op":"solve","solver":"greedy","batch":{"threads":100000},"graphs":[]})",
           R"({"op":"solve","solver":"greedy","batch":{"shard_size":0},"graphs":[]})",
           R"({"op":"solve","solver":"greedy","batch":{"frobnicate":1},"graphs":[]})",
           R"({"op":"solve","solver":"greedy","batch":7,"graphs":[]})",
       }) {
    const JsonValue response = json_parse(server.handle_line(bad));
    EXPECT_FALSE(response.find("ok")->as_bool()) << bad;
    EXPECT_EQ(response.find("code")->as_string(), "bad_request") << bad;
  }
}

TEST(ServerCore, StatsReportsStoreAndUptime) {
  Server server(test_options());
  (void)server.handle_line(R"({"op":"put_graph","graph":{"n":3,"edges":[[0,1],[1,2]]}})");
  const JsonValue stats = json_parse(server.handle_line(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  const JsonValue* store = stats.find("store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->find("graphs")->as_int(), 1);
  EXPECT_EQ(store->find("pinned")->as_int(), 1);
  EXPECT_EQ(store->find("puts")->as_int(), 1);
  EXPECT_GE(stats.find("server")->find("uptime_seconds")->as_double(), 0.0);
  EXPECT_EQ(stats.find("server")->find("rejected_connections")->as_int(), 0);
}

// ---------------------------------------------------------------------------
// HTTP front-end, socket-free: routing, status mapping, namespace header

int http_status(const std::string& response) {
  return std::atoi(response.c_str() + sizeof("HTTP/1.1 ") - 1);
}

std::string http_body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

HttpRequest make_http(std::string method, std::string target, std::string body,
                      std::string ns = {}) {
  HttpRequest req;
  req.method = std::move(method);
  req.target = std::move(target);
  req.body = std::move(body);
  req.ns = std::move(ns);
  return req;
}

TEST(Http, RoutesMapOntoProtocolVerbsWithStatuses) {
  CoreOptions core_opts;
  core_opts.batch.threads = 1;
  core_opts.batch.shard_size = 1;
  core_opts.batch.cache_capacity = 64;
  core_opts.snapshot_dir.clear();
  ServerCore core(core_opts, api::Registry::instance());
  Session session(core);

  // GET /v2/solvers: the registry enumeration, 200.
  std::string response =
      handle_http_request(make_http("GET", "/v2/solvers", ""), session);
  EXPECT_EQ(http_status(response), 200);
  EXPECT_EQ(json_parse(http_body(response)).find("solvers")->as_array().size(),
            api::Registry::instance().specs().size());

  // PUT /v2/graphs: 201 on first upload, 200 on content-addressed re-put.
  const std::string graph = R"({"n":4,"edges":[[0,1],[1,2],[2,3]]})";
  response = handle_http_request(make_http("PUT", "/v2/graphs", graph), session);
  EXPECT_EQ(http_status(response), 201);
  const std::string handle = json_parse(http_body(response)).find("handle")->as_string();
  response = handle_http_request(make_http("PUT", "/v2/graphs", graph), session);
  EXPECT_EQ(http_status(response), 200);

  // POST /v2/solve by handle; the repeat is a warm hit.
  const std::string solve = "{\"solver\":\"greedy\",\"graphs\":[\"" + handle + "\"]}";
  response = handle_http_request(make_http("POST", "/v2/solve", solve), session);
  EXPECT_EQ(http_status(response), 200);
  EXPECT_EQ(json_parse(http_body(response)).find("diag")->find("cache_hits")->as_int(), 0);
  response = handle_http_request(make_http("POST", "/v2/solve", solve), session);
  EXPECT_EQ(json_parse(http_body(response)).find("diag")->find("cache_hits")->as_int(), 1);

  // The namespace header isolates the cache like open_session does, and the
  // body echoes the namespace.
  response = handle_http_request(make_http("POST", "/v2/solve", solve, "tenant-a"), session);
  EXPECT_EQ(json_parse(http_body(response)).find("diag")->find("cache_hits")->as_int(), 0);
  EXPECT_EQ(json_parse(http_body(response)).find("namespace")->as_string(), "tenant-a");

  // DELETE /v2/graphs/<handle>: one drop per put (the graph was PUT twice,
  // so the refcount is 2); a drop with nothing left to release is 404.
  response = handle_http_request(make_http("DELETE", "/v2/graphs/" + handle, ""), session);
  EXPECT_EQ(http_status(response), 200);
  response = handle_http_request(make_http("DELETE", "/v2/graphs/" + handle, ""), session);
  EXPECT_EQ(http_status(response), 200);
  response = handle_http_request(make_http("DELETE", "/v2/graphs/" + handle, ""), session);
  EXPECT_EQ(http_status(response), 404);
  EXPECT_EQ(json_parse(http_body(response)).find("code")->as_string(), "unknown_handle");

  // Error statuses: unknown solver 404, malformed body 400, bad route 404,
  // GET on a POST route 404.
  response = handle_http_request(
      make_http("POST", "/v2/solve", R"({"solver":"nope","graphs":[]})"), session);
  EXPECT_EQ(http_status(response), 404);
  EXPECT_EQ(json_parse(http_body(response)).find("code")->as_string(), "unknown_solver");
  response = handle_http_request(make_http("POST", "/v2/solve", "{oops"), session);
  EXPECT_EQ(http_status(response), 400);
  response = handle_http_request(make_http("GET", "/v2/frobnicate", ""), session);
  EXPECT_EQ(http_status(response), 404);
  response = handle_http_request(make_http("GET", "/v2/solve", ""), session);
  EXPECT_EQ(http_status(response), 404);

  // GET /v2/stats carries the same body as the stats verb.
  response = handle_http_request(make_http("GET", "/v2/stats", ""), session);
  EXPECT_EQ(http_status(response), 200);
  EXPECT_GE(json_parse(http_body(response)).find("server")->find("uptime_seconds")
                ->as_double(), 0.0);
  EXPECT_FALSE(core.stopping());
}

// ---------------------------------------------------------------------------
// Real TCP round-trip over loopback

TEST(ServerSocket, EndToEndSolveAndShutdown) {
  ServerOptions opts = test_options();
  opts.port = 0;  // ephemeral
  Server server(opts);
  server.bind_and_listen();
  ASSERT_GT(server.port(), 0);
  std::thread serving([&] { server.serve(); });

  const int fd = tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  const auto exchange = [&](const std::string& line) {
    EXPECT_TRUE(send_all(fd, line + "\n"));
    const auto response = reader.next_line(1u << 20);
    EXPECT_TRUE(response.has_value());
    return json_parse(response.value_or("null"));
  };

  const JsonValue solvers = exchange(R"({"op":"solvers"})");
  EXPECT_TRUE(solvers.find("ok")->as_bool());

  const JsonValue solved = exchange("{\"op\":\"solve\",\"solver\":\"theorem44\",\"graphs\":" +
                                    graphs_json(suite()) + "}");
  ASSERT_TRUE(solved.find("ok")->as_bool());
  EXPECT_EQ(solved.find("responses")->as_array().size(), suite().size());

  const JsonValue bad = exchange(R"({"op":"solve","solver":"nope","graphs":[]})");
  EXPECT_FALSE(bad.find("ok")->as_bool());
  EXPECT_EQ(bad.find("code")->as_string(), "unknown_solver");

  const JsonValue down = exchange(R"({"op":"shutdown"})");
  EXPECT_TRUE(down.find("ok")->as_bool());
  serving.join();
  close_fd(fd);
  EXPECT_EQ(server.counters().connections, 1u);
}

TEST(ServerSocket, OversizedLineIsRejectedAndConnectionDropped) {
  ServerOptions opts = test_options();
  opts.port = 0;
  opts.core.limits.max_line_bytes = 256;
  Server server(opts);
  server.bind_and_listen();
  std::thread serving([&] { server.serve(); });

  const int fd = tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(fd, 0);
  const std::string huge(4096, 'x');  // no newline within the limit
  EXPECT_TRUE(send_all(fd, huge));
  LineReader reader(fd);
  const auto response = reader.next_line(1u << 20);
  ASSERT_TRUE(response.has_value());
  const JsonValue parsed = json_parse(*response);
  EXPECT_FALSE(parsed.find("ok")->as_bool());
  EXPECT_EQ(parsed.find("code")->as_string(), "bad_request");
  // The server dropped the connection after reporting.
  EXPECT_FALSE(reader.next_line(1u << 20).has_value());
  close_fd(fd);

  server.request_stop();
  serving.join();
}

// One HTTP exchange over a real socket; returns {status, parsed body}.
std::pair<int, JsonValue> http_socket_exchange(int fd, LineReader& reader,
                                               const std::string& method,
                                               const std::string& target,
                                               const std::string& body) {
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body;
  EXPECT_TRUE(send_all(fd, request));
  const auto status_line = reader.next_line(1u << 16);
  EXPECT_TRUE(status_line.has_value());
  const int status = std::atoi(status_line->c_str() + sizeof("HTTP/1.1 ") - 1);
  std::size_t content_length = 0;
  while (true) {
    const auto header = reader.next_line(1u << 16);
    EXPECT_TRUE(header.has_value());
    if (!header || header->empty()) break;
    if (header->starts_with("Content-Length: ")) {
      content_length = static_cast<std::size_t>(
          std::atoll(header->c_str() + sizeof("Content-Length: ") - 1));
    }
  }
  const auto payload = reader.read_exact(content_length);
  EXPECT_TRUE(payload.has_value());
  return {status, json_parse(payload.value_or("null"))};
}

TEST(ServerSocket, HttpPutSolveWarmHitStatsShutdown) {
  ServerOptions opts = test_options();
  opts.port = 0;
  opts.http_port = 0;  // second listener, ephemeral
  Server server(opts);
  server.bind_and_listen();
  ASSERT_GT(server.http_port(), 0);
  ASSERT_NE(server.http_port(), server.port());
  std::thread serving([&] { server.serve(); });

  const int fd = tcp_connect("127.0.0.1", server.http_port());
  ASSERT_GE(fd, 0);
  LineReader reader(fd);

  // put_graph -> handle (201), solve by handle cold, solve warm (all hits),
  // stats — one keep-alive connection throughout.
  auto [put_status, put] = http_socket_exchange(
      fd, reader, "PUT", "/v2/graphs", R"({"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5]]})");
  EXPECT_EQ(put_status, 201);
  ASSERT_TRUE(put.find("ok")->as_bool());
  const std::string handle = put.find("handle")->as_string();

  const std::string solve = "{\"solver\":\"algorithm1\",\"graphs\":[\"" + handle + "\"]}";
  auto [cold_status, cold] = http_socket_exchange(fd, reader, "POST", "/v2/solve", solve);
  EXPECT_EQ(cold_status, 200);
  EXPECT_EQ(cold.find("diag")->find("cache_misses")->as_int(), 1);
  auto [warm_status, warm] = http_socket_exchange(fd, reader, "POST", "/v2/solve", solve);
  EXPECT_EQ(warm_status, 200);
  EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(), 1);

  auto [stats_status, stats] = http_socket_exchange(fd, reader, "GET", "/v2/stats", "");
  EXPECT_EQ(stats_status, 200);
  EXPECT_EQ(stats.find("store")->find("graphs")->as_int(), 1);

  // Expect: 100-continue earns the interim response before the final one
  // (curl sends it for every body over ~1KB; without the interim line such
  // clients stall ~1s per upload).
  const std::string g2 = R"({"n":3,"edges":[[0,1],[1,2]]})";
  EXPECT_TRUE(send_all(fd, "PUT /v2/graphs HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\n"
                           "Content-Length: " + std::to_string(g2.size()) + "\r\n\r\n" + g2));
  const auto interim = reader.next_line(1u << 16);
  ASSERT_TRUE(interim.has_value());
  EXPECT_EQ(*interim, "HTTP/1.1 100 Continue");
  ASSERT_TRUE(reader.next_line(1u << 16).has_value());  // interim terminator
  const auto final_status = reader.next_line(1u << 16);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_TRUE(final_status->starts_with("HTTP/1.1 201"));
  std::size_t expect_body_len = 0;
  while (true) {
    const auto header = reader.next_line(1u << 16);
    ASSERT_TRUE(header.has_value());
    if (header->empty()) break;
    if (header->starts_with("Content-Length: ")) {
      expect_body_len = static_cast<std::size_t>(
          std::atoll(header->c_str() + sizeof("Content-Length: ") - 1));
    }
  }
  ASSERT_TRUE(reader.read_exact(expect_body_len).has_value());

  auto [down_status, down] = http_socket_exchange(fd, reader, "POST", "/v2/shutdown", "");
  EXPECT_EQ(down_status, 200);
  EXPECT_TRUE(down.find("ok")->as_bool());
  serving.join();
  close_fd(fd);
  EXPECT_TRUE(server.stopping());
}

TEST(ServerSocket, LineAndHttpTransportsShareOneCacheAndStore) {
  ServerOptions opts = test_options();
  opts.port = 0;
  opts.http_port = 0;
  Server server(opts);
  server.bind_and_listen();
  std::thread serving([&] { server.serve(); });

  // Upload over HTTP...
  const int hfd = tcp_connect("127.0.0.1", server.http_port());
  ASSERT_GE(hfd, 0);
  LineReader hreader(hfd);
  auto [put_status, put] = http_socket_exchange(
      hfd, hreader, "PUT", "/v2/graphs", R"({"n":4,"edges":[[0,1],[1,2],[2,3]]})");
  EXPECT_EQ(put_status, 201);
  const std::string handle = put.find("handle")->as_string();

  // ...and solve by that handle over the line protocol: the two transports
  // front one store and one cache, so the second solve is a warm hit.
  const int lfd = tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(lfd, 0);
  LineReader lreader(lfd);
  const std::string solve =
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" + handle + "\"]}";
  EXPECT_TRUE(send_all(lfd, solve + "\n"));
  const JsonValue cold = json_parse(lreader.next_line(1u << 20).value_or("null"));
  ASSERT_TRUE(cold.find("ok")->as_bool());
  EXPECT_EQ(cold.find("diag")->find("cache_misses")->as_int(), 1);
  EXPECT_TRUE(send_all(lfd, solve + "\n"));
  const JsonValue warm = json_parse(lreader.next_line(1u << 20).value_or("null"));
  EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(), 1);

  close_fd(hfd);
  close_fd(lfd);
  server.request_stop();
  serving.join();
}

TEST(ServerSocket, MaxConnectionsRejectsWithServerBusy) {
  ServerOptions opts = test_options();
  opts.port = 0;
  opts.max_connections = 1;
  Server server(opts);
  server.bind_and_listen();
  std::thread serving([&] { server.serve(); });

  // First connection occupies the only slot (exchange proves it is served).
  const int first = tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(first, 0);
  LineReader first_reader(first);
  EXPECT_TRUE(send_all(first, "{\"op\":\"solvers\"}\n"));
  ASSERT_TRUE(first_reader.next_line(1u << 20).has_value());

  // Second connection is answered with server_busy and closed — never
  // handed to a connection thread.
  const int second = tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(second, 0);
  LineReader second_reader(second);
  const auto busy = second_reader.next_line(1u << 20);
  ASSERT_TRUE(busy.has_value());
  const JsonValue parsed = json_parse(*busy);
  EXPECT_FALSE(parsed.find("ok")->as_bool());
  EXPECT_EQ(parsed.find("code")->as_string(), "server_busy");
  EXPECT_FALSE(second_reader.next_line(1u << 20).has_value());  // dropped
  close_fd(second);

  // The surviving connection still works and sees the rejection counted.
  EXPECT_TRUE(send_all(first, "{\"op\":\"stats\"}\n"));
  const JsonValue stats = json_parse(first_reader.next_line(1u << 20).value_or("null"));
  EXPECT_EQ(stats.find("server")->find("rejected_connections")->as_int(), 1);
  EXPECT_EQ(stats.find("server")->find("connections")->as_int(), 1);
  close_fd(first);

  server.request_stop();
  serving.join();
}

}  // namespace
}  // namespace lmds::server
