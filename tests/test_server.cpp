// Tests for the serving subsystem: the minimal JSON layer, protocol
// decode/encode (graph decode, solve requests, error classes), the Server's
// socket-free handle_line() core (round-trips, malformed-request rejection,
// admin verbs, cache snapshot save/load/warm-hit) and one real TCP
// round-trip over the loopback interface.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "graph/generators.hpp"
#include "server/json.hpp"
#include "server/net.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace lmds::server {
namespace {

using graph::Graph;

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

// ---------------------------------------------------------------------------
// JSON layer

TEST(Json, ParsesScalarsArraysObjects) {
  const JsonValue v = json_parse(
      R"({"a": 1, "b": -2.5, "c": true, "d": null, "e": [1, 2, 3], "f": {"g": "hi"}})");
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(v.find("b")->as_double(), -2.5);
  EXPECT_TRUE(v.find("c")->as_bool());
  EXPECT_TRUE(v.find("d")->is_null());
  EXPECT_EQ(v.find("e")->as_array().size(), 3u);
  EXPECT_EQ(v.find("e")->as_array()[2].as_int(), 3);
  EXPECT_EQ(v.find("f")->find("g")->as_string(), "hi");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, IntAndDoubleStayDistinct) {
  EXPECT_EQ(json_parse("5").as_int(), 5);
  EXPECT_EQ(json_parse("5.0").type(), JsonValue::Type::Double);
  EXPECT_THROW((void)json_parse("5.5").as_int(), JsonError);  // never truncates
  EXPECT_DOUBLE_EQ(json_parse("5").as_double(), 5.0);         // int promotes
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string original = "tab\t quote\" backslash\\ newline\n unicode \xC3\xA9";
  std::string encoded;
  json_append_string(encoded, original);
  EXPECT_EQ(json_parse(encoded).as_string(), original);
  EXPECT_EQ(json_parse(R"("é")").as_string(), "\xC3\xA9");
  EXPECT_EQ(json_parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1, 2", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
                          "\"unterminated", "\"bad \\x escape\"", "nan", "--1",
                          "{\"a\":1,}"}) {
    EXPECT_THROW((void)json_parse(bad), JsonError) << "accepted: " << bad;
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW((void)json_parse(deep), JsonError);
}

TEST(Json, DoubleEmissionIsLocaleIndependent) {
  std::string out;
  json_append_double(out, 0.125);
  EXPECT_EQ(out, "0.125");  // always '.', never a locale decimal comma
}

// ---------------------------------------------------------------------------
// Graph decode

TEST(Protocol, DecodesEdgeListGraph) {
  const ServerLimits limits;
  const Graph g =
      decode_graph(json_parse(R"({"n": 4, "edges": [[0,1],[1,2],[2,3]]})"), limits);
  EXPECT_EQ(g, graph::gen::path(4));
}

TEST(Protocol, DerivesVertexCountWhenAbsent) {
  const ServerLimits limits;
  const Graph g = decode_graph(json_parse(R"({"edges": [[0,1],[1,2]]})"), limits);
  EXPECT_EQ(g.num_vertices(), 3);
  // And "n" can allocate isolated trailing vertices.
  const Graph iso = decode_graph(json_parse(R"({"n": 5, "edges": [[0,1]]})"), limits);
  EXPECT_EQ(iso.num_vertices(), 5);
  EXPECT_EQ(iso.num_edges(), 1);
}

TEST(Protocol, RejectsMalformedGraphs) {
  const ServerLimits limits;
  for (const char* bad : {
           R"({"edges": [[0,0]]})",            // self-loop
           R"({"n": 2, "edges": [[0,5]]})",    // endpoint outside [0, n)
           R"({"n": -1, "edges": []})",        // negative n
           R"({"edges": [[0,-1]]})",           // negative endpoint
           R"({"edges": [[0]]})",              // not a pair
           R"({"edges": [[0,1,2]]})",          // not a pair
           R"({"edges": 7})",                  // edges not an array
           R"({"n": 3})",                      // no edges field
           R"([1,2,3])",                       // graph not an object
           R"({"edges": [[0, 1.5]]})",         // non-integer endpoint
       }) {
    EXPECT_THROW((void)decode_graph(json_parse(bad), limits), ProtocolError)
        << "accepted: " << bad;
  }
}

TEST(Protocol, RejectsOversizedGraph) {
  ServerLimits limits;
  limits.max_graph_vertices = 10;
  EXPECT_THROW((void)decode_graph(json_parse(R"({"n": 11, "edges": []})"), limits),
               ProtocolError);
  EXPECT_THROW((void)decode_graph(json_parse(R"({"edges": [[0, 10]]})"), limits),
               ProtocolError);
  EXPECT_NO_THROW((void)decode_graph(json_parse(R"({"n": 10, "edges": []})"), limits));
}

// ---------------------------------------------------------------------------
// handle_line: solve round-trips and error classes (no sockets involved)

std::string graphs_json(const std::vector<Graph>& gs) {
  std::string out = "[";
  for (std::size_t i = 0; i < gs.size(); ++i) {
    if (i) out += ',';
    out += "{\"n\":" + std::to_string(gs[i].num_vertices()) + ",\"edges\":[";
    bool first = true;
    for (const auto& [u, v] : gs[i].edges()) {
      if (!first) out += ',';
      first = false;
      out += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
    }
    out += "]}";
  }
  return out + "]";
}

std::vector<Graph> suite() {
  std::vector<Graph> gs;
  gs.push_back(graph::gen::path(8));
  gs.push_back(graph::gen::cycle(7));
  gs.push_back(graph::gen::grid(3, 4));
  gs.push_back(graph::gen::theta_chain(4, 3));
  return gs;
}

ServerOptions test_options(std::size_t cache_capacity = 64) {
  ServerOptions opts;
  opts.batch.threads = 2;
  opts.batch.shard_size = 1;
  opts.batch.cache_capacity = cache_capacity;
  opts.snapshot_dir = testing::TempDir();  // client snapshot verbs resolve here
  return opts;
}

const std::string kErr = "\"ok\":false";

TEST(ServerCore, SolveRoundTripMatchesDirectRegistry) {
  Server server(test_options());
  const std::vector<Graph> gs = suite();
  const std::string line = "{\"op\":\"solve\",\"solver\":\"theorem44\",\"measure_ratio\":true,"
                           "\"graphs\":" + graphs_json(gs) + "}";
  const JsonValue response = json_parse(server.handle_line(line));
  ASSERT_TRUE(response.find("ok")->as_bool()) << server.handle_line(line);

  api::Request req;
  req.measure_ratio = true;
  const auto direct = api::Registry::instance().run_batch("theorem44",
                                                          {gs.data(), gs.size()}, req);
  const auto& responses = response.find("responses")->as_array();
  ASSERT_EQ(responses.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_TRUE(responses[i].find("valid")->as_bool());
    EXPECT_EQ(responses[i].find("solver")->as_string(), "theorem44");
    EXPECT_EQ(responses[i].find("problem")->as_string(), "mds");
    const auto& solution = responses[i].find("solution")->as_array();
    ASSERT_EQ(solution.size(), direct[i].solution.size());
    for (std::size_t j = 0; j < solution.size(); ++j) {
      EXPECT_EQ(solution[j].as_int(), direct[i].solution[j]);
    }
    EXPECT_EQ(responses[i].find("ratio")->find("solution_size")->as_int(),
              direct[i].ratio.solution_size);
  }
  const JsonValue* diag = response.find("diag");
  EXPECT_EQ(diag->find("cache_misses")->as_int(),
            static_cast<std::int64_t>(gs.size()));
}

TEST(ServerCore, SecondIdenticalSolveIsAllCacheHits) {
  Server server(test_options());
  const std::string line = "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                           graphs_json(suite()) + "}";
  (void)server.handle_line(line);
  const JsonValue warm = json_parse(server.handle_line(line));
  EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(),
            static_cast<std::int64_t>(suite().size()));
  EXPECT_EQ(warm.find("diag")->find("cache_misses")->as_int(), 0);
}

TEST(ServerCore, EmptyBatchIsValidAndEmpty) {
  Server server(test_options());
  const JsonValue response = json_parse(
      server.handle_line(R"({"op":"solve","solver":"greedy","graphs":[]})"));
  EXPECT_TRUE(response.find("ok")->as_bool());
  EXPECT_TRUE(response.find("responses")->as_array().empty());
}

TEST(ServerCore, ErrorClassesAreDistinguished) {
  ServerOptions opts = test_options();
  opts.limits.max_graph_vertices = 10;
  opts.limits.max_batch_graphs = 2;
  Server server(opts);

  struct Case {
    const char* line;
    const char* code;
  };
  const Case cases[] = {
      // Truncated line (as the connection loop would hand it over).
      {R"({"op":"solve","solver":"greedy")", "bad_request"},
      {"not json at all", "bad_request"},
      {R"({"solver":"greedy","graphs":[]})", "bad_request"},  // no op
      {R"({"op":"frobnicate"})", "bad_request"},
      {R"({"op":"solve","solver":"no-such-solver","graphs":[]})", "unknown_solver"},
      {R"({"op":"solve","solver":"greedy"})", "bad_request"},  // no graphs
      {R"({"op":"solve","solver":"greedy","graphs":[{"edges":[[0,0]]}]})", "bad_request"},
      // Undeclared option: registry-level RequestError -> bad_request.
      {R"({"op":"solve","solver":"greedy","options":{"bogus":1},"graphs":[]})",
       "bad_request"},
      // Option with a non-scalar value.
      {R"({"op":"solve","solver":"greedy","options":{"t":[1]},"graphs":[]})",
       "bad_request"},
      // measure_traffic on a centralized-only solver.
      {R"({"op":"solve","solver":"greedy","measure_traffic":true,"graphs":[]})",
       "bad_request"},
      // Oversized graph and oversized batch.
      {R"({"op":"solve","solver":"greedy","graphs":[{"n":11,"edges":[]}]})",
       "bad_request"},
      {R"({"op":"solve","solver":"greedy","graphs":[{"edges":[]},{"edges":[]},{"edges":[]}]})",
       "bad_request"},
      {R"({"op":"save_cache"})", "bad_request"},  // no path
      // Confinement: clients name snapshots, never filesystem locations.
      {R"({"op":"save_cache","path":"/etc/passwd"})", "bad_request"},
      {R"({"op":"load_cache","path":"../../outside.bin"})", "bad_request"},
      {R"({"op":"save_cache","path":""})", "bad_request"},
      {R"({"op":"load_cache","path":"nonexistent_subdir/snap.bin"})", "io_error"},
  };
  for (const Case& c : cases) {
    const JsonValue response = json_parse(server.handle_line(c.line));
    EXPECT_FALSE(response.find("ok")->as_bool()) << c.line;
    EXPECT_EQ(response.find("code")->as_string(), c.code) << c.line;
    EXPECT_FALSE(response.find("error")->as_string().empty()) << c.line;
  }
  EXPECT_FALSE(server.stopping()) << "error handling must not stop the server";
}

TEST(ServerCore, SolversVerbEnumeratesRegistry) {
  Server server(test_options());
  const JsonValue response = json_parse(server.handle_line(R"({"op":"solvers"})"));
  ASSERT_TRUE(response.find("ok")->as_bool());
  const auto& solvers = response.find("solvers")->as_array();
  EXPECT_EQ(solvers.size(), api::Registry::instance().specs().size());
  bool saw_algorithm1 = false;
  for (const auto& s : solvers) {
    if (s.find("name")->as_string() == "algorithm1") {
      saw_algorithm1 = true;
      bool saw_t = false;
      for (const auto& p : s.find("params")->as_array()) {
        if (p.find("name")->as_string() == "t") {
          saw_t = true;
          EXPECT_EQ(p.find("type")->as_string(), "int");
          EXPECT_EQ(p.find("default")->as_int(), 5);
        }
      }
      EXPECT_TRUE(saw_t);
    }
  }
  EXPECT_TRUE(saw_algorithm1);
}

TEST(ServerCore, StatsVerbCountsWork) {
  Server server(test_options());
  (void)server.handle_line("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                           graphs_json(suite()) + "}");
  const JsonValue stats = json_parse(server.handle_line(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.find("server")->find("graphs_solved")->as_int(),
            static_cast<std::int64_t>(suite().size()));
  EXPECT_EQ(stats.find("server")->find("requests")->as_int(), 2);
  EXPECT_EQ(stats.find("cache")->find("misses")->as_int(),
            static_cast<std::int64_t>(suite().size()));
}

TEST(ServerCore, ShutdownVerbStops) {
  Server server(test_options());
  const JsonValue response = json_parse(server.handle_line(R"({"op":"shutdown"})"));
  EXPECT_TRUE(response.find("ok")->as_bool());
  EXPECT_TRUE(server.stopping());
}

// ---------------------------------------------------------------------------
// Cache snapshot persistence: the restart story

TEST(ServerCore, SnapshotSaveLoadWarmHitAcrossServerInstances) {
  // The verb takes a name relative to the server's snapshot_dir (TempDir
  // in test_options); temp_path() is where it lands on disk.
  const std::string path = "lmds_server_snapshot.bin";
  const std::string solve_line = "{\"op\":\"solve\",\"solver\":\"algorithm1\","
                                 "\"measure_ratio\":true,\"graphs\":" +
                                 graphs_json(suite()) + "}";
  // The encoded "responses" payload (everything before the diag member,
  // which legitimately differs between a cold and a warm run).
  const auto payload_of = [](const std::string& line) {
    return line.substr(0, line.find("\"diag\""));
  };
  std::string cold_payload;
  {
    Server first(test_options());
    const std::string cold_line = first.handle_line(solve_line);
    cold_payload = payload_of(cold_line);
    const JsonValue cold = json_parse(cold_line);
    ASSERT_TRUE(cold.find("ok")->as_bool());
    EXPECT_EQ(cold.find("diag")->find("cache_hits")->as_int(), 0);
    const JsonValue saved = json_parse(
        first.handle_line("{\"op\":\"save_cache\",\"path\":\"" + path + "\"}"));
    ASSERT_TRUE(saved.find("ok")->as_bool());
    EXPECT_EQ(saved.find("entries")->as_int(), static_cast<std::int64_t>(suite().size()));
  }
  {
    // A brand-new server (fresh executor, empty cache) warms from the file
    // and answers the replayed batch from cache, byte-identically.
    Server second(test_options());
    const JsonValue loaded = json_parse(
        second.handle_line("{\"op\":\"load_cache\",\"path\":\"" + path + "\"}"));
    ASSERT_TRUE(loaded.find("ok")->as_bool());
    const std::string warm_line = second.handle_line(solve_line);
    const JsonValue warm = json_parse(warm_line);
    ASSERT_TRUE(warm.find("ok")->as_bool());
    EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(),
              static_cast<std::int64_t>(suite().size()));
    EXPECT_EQ(warm.find("diag")->find("cache_misses")->as_int(), 0);
    EXPECT_EQ(payload_of(warm_line), cold_payload);
  }
  std::remove(temp_path(path).c_str());
}

TEST(ServerCore, SnapshotVerbsDisabledWithoutSnapshotDir) {
  ServerOptions opts = test_options();
  opts.snapshot_dir.clear();
  Server server(opts);
  const JsonValue response = json_parse(
      server.handle_line(R"({"op":"save_cache","path":"x.bin"})"));
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("code")->as_string(), "bad_request");
}

TEST(ServerCore, CorruptSnapshotIsRejectedWithoutClearingCache) {
  const std::string path = "lmds_server_corrupt.bin";
  {
    std::ofstream out(temp_path(path), std::ios::binary);
    out << "this is not a snapshot";
  }
  Server server(test_options());
  (void)server.handle_line("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                           graphs_json(suite()) + "}");
  const JsonValue response = json_parse(
      server.handle_line("{\"op\":\"load_cache\",\"path\":\"" + path + "\"}"));
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("code")->as_string(), "io_error");
  // The live cache survived the failed load: the replay still hits.
  const JsonValue warm = json_parse(
      server.handle_line("{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":" +
                         graphs_json(suite()) + "}"));
  EXPECT_EQ(warm.find("diag")->find("cache_hits")->as_int(),
            static_cast<std::int64_t>(suite().size()));
  std::remove(temp_path(path).c_str());
}

// ---------------------------------------------------------------------------
// Real TCP round-trip over loopback

TEST(ServerSocket, EndToEndSolveAndShutdown) {
  ServerOptions opts = test_options();
  opts.port = 0;  // ephemeral
  Server server(opts);
  server.bind_and_listen();
  ASSERT_GT(server.port(), 0);
  std::thread serving([&] { server.serve(); });

  const int fd = tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  const auto exchange = [&](const std::string& line) {
    EXPECT_TRUE(send_all(fd, line + "\n"));
    const auto response = reader.next_line(1u << 20);
    EXPECT_TRUE(response.has_value());
    return json_parse(response.value_or("null"));
  };

  const JsonValue solvers = exchange(R"({"op":"solvers"})");
  EXPECT_TRUE(solvers.find("ok")->as_bool());

  const JsonValue solved = exchange("{\"op\":\"solve\",\"solver\":\"theorem44\",\"graphs\":" +
                                    graphs_json(suite()) + "}");
  ASSERT_TRUE(solved.find("ok")->as_bool());
  EXPECT_EQ(solved.find("responses")->as_array().size(), suite().size());

  const JsonValue bad = exchange(R"({"op":"solve","solver":"nope","graphs":[]})");
  EXPECT_FALSE(bad.find("ok")->as_bool());
  EXPECT_EQ(bad.find("code")->as_string(), "unknown_solver");

  const JsonValue down = exchange(R"({"op":"shutdown"})");
  EXPECT_TRUE(down.find("ok")->as_bool());
  serving.join();
  close_fd(fd);
  EXPECT_EQ(server.counters().connections, 1u);
}

TEST(ServerSocket, OversizedLineIsRejectedAndConnectionDropped) {
  ServerOptions opts = test_options();
  opts.port = 0;
  opts.limits.max_line_bytes = 256;
  Server server(opts);
  server.bind_and_listen();
  std::thread serving([&] { server.serve(); });

  const int fd = tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(fd, 0);
  const std::string huge(4096, 'x');  // no newline within the limit
  EXPECT_TRUE(send_all(fd, huge));
  LineReader reader(fd);
  const auto response = reader.next_line(1u << 20);
  ASSERT_TRUE(response.has_value());
  const JsonValue parsed = json_parse(*response);
  EXPECT_FALSE(parsed.find("ok")->as_bool());
  EXPECT_EQ(parsed.find("code")->as_string(), "bad_request");
  // The server dropped the connection after reporting.
  EXPECT_FALSE(reader.next_line(1u << 20).has_value());
  close_fd(fd);

  server.request_stop();
  serving.join();
}

}  // namespace
}  // namespace lmds::server
