// TSan-targeted stress tests for the concurrent serving core: many threads
// hammer one ServerCore through the real protocol surface — solve (inline
// and by handle), put_graph/drop_graph, namespace_stats via the stats verb,
// and save_cache/load_cache snapshots — all at once. The assertions are
// deliberately coarse (every response is a well-formed protocol line, the
// counters balance at the end): the real check is the ThreadSanitizer /
// AddressSanitizer run in CI, where any data race, lock-order inversion or
// use-after-free in the shared executor/cache/store state fails the build.
// Under the plain build this doubles as a reentrancy test.
//
// Sized to stay fast under TSan's ~10x slowdown: small graphs, the cheap
// greedy solver, and capacities chosen small enough that LRU eviction,
// graph-store eviction and GraphStoreFull all actually happen mid-flight.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "graph/generators.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"
#include "server/session.hpp"

namespace lmds::server {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 48;

bool is_ok(const std::string& response) {
  return response.starts_with("{\"ok\":true");
}

// An error line's machine-readable class, "" for success lines.
std::string error_code(const std::string& response) {
  if (is_ok(response)) return "";
  const JsonValue parsed = json_parse(response);
  const JsonValue* code = parsed.find("code");
  return code ? code->as_string() : "<malformed>";
}

std::string solve_inline_request(const graph::Graph& g, int threads) {
  return R"({"op":"solve","solver":"greedy","batch":{"threads":)" +
         std::to_string(threads) + R"(},"graphs":[)" + encode_graph_json(g) + "]}";
}

std::string solve_handle_request(const std::string& handle) {
  return R"({"op":"solve","solver":"greedy","graphs":[")" + handle + R"("]})";
}

// Every thread runs the full verb mix against the shared core through its
// own Session (Sessions are single-threaded by contract; the core is the
// shared state under test).
TEST(Concurrency, HammerOneServerCoreFromManyThreads) {
  CoreOptions opts;
  opts.batch.threads = 2;      // nested parallelism: each solve fans out too
  opts.batch.shard_size = 1;
  opts.batch.cache_capacity = 24;  // small: concurrent LRU eviction is the point
  opts.store_capacity = 6;         // small: eviction + GraphStoreFull mid-flight
  opts.snapshot_dir = testing::TempDir();
  ServerCore core(opts, api::Registry::instance());

  std::atomic<std::uint64_t> solves_ok{0};
  std::atomic<std::uint64_t> store_busy{0};
  std::atomic<std::uint64_t> requests_sent{0};
  std::atomic<bool> failed{false};

  auto worker = [&](int t) {
    Session session(core);
    const auto send = [&](const std::string& line) {
      requests_sent.fetch_add(1, std::memory_order_relaxed);
      return session.handle_line(line);
    };
    // Four tenants across eight threads: namespaces are both shared (cache
    // hits across threads) and disjoint (isolation) at once.
    const std::string ns = "tenant-" + std::to_string(t % 4);
    if (!is_ok(send(R"({"op":"open_session","namespace":")" + ns + "\"}"))) {
      failed = true;
      return;
    }
    std::string handle;  // most recent put_graph handle, if any
    for (int i = 0; i < kIters && !failed; ++i) {
      // A small pool of distinct graphs per thread: enough shapes that the
      // response cache and graph store both churn, few enough that threads
      // collide on the same content-addressed entries.
      const graph::Graph g = (i + t) % 3 == 0   ? graph::gen::path(3 + (i + t) % 5)
                             : (i + t) % 3 == 1 ? graph::gen::cycle(4 + (i + t) % 4)
                                                : graph::gen::grid(2, 2 + (i + t) % 3);
      switch (i % 6) {
        case 0: {  // upload; tolerate a full store (all entries pinned)
          const std::string response =
              send(R"({"op":"put_graph","graph":)" + encode_graph_json(g) + "}");
          if (is_ok(response)) {
            const JsonValue parsed = json_parse(response);
            handle = parsed.find("handle")->as_string();
          } else if (error_code(response) == "server_busy") {
            store_busy.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed = true;
          }
          break;
        }
        case 1: {  // solve by handle (may race a drop/evict — both are valid)
          if (handle.empty()) break;
          const std::string response = send(solve_handle_request(handle));
          if (is_ok(response)) {
            solves_ok.fetch_add(1, std::memory_order_relaxed);
          } else if (error_code(response) != "unknown_handle") {
            failed = true;
          }
          break;
        }
        case 2: {  // inline solve with a per-request threads override
          const std::string response =
              send(solve_inline_request(g, 1 + i % 2));
          if (is_ok(response)) {
            solves_ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed = true;
          }
          break;
        }
        case 3: {  // release the pin (another thread may have beaten us to it)
          if (handle.empty()) break;
          const std::string response =
              send(R"({"op":"drop_graph","handle":")" + handle + "\"}");
          if (!is_ok(response) && error_code(response) != "unknown_handle") failed = true;
          handle.clear();
          break;
        }
        case 4: {  // stats: reads cache namespace_stats + store + counters
          const std::string response = send(R"({"op":"stats"})");
          if (!is_ok(response)) failed = true;
          break;
        }
        case 5: {  // snapshot churn: serialize races lookups/inserts/loads
          const std::string path = "stress-" + std::to_string(t % 2) + ".lmds";
          const std::string save =
              send(R"({"op":"save_cache","path":")" + path + "\"}");
          if (!is_ok(save)) failed = true;
          if (i % 12 == 11) {
            const std::string load =
                send(R"({"op":"load_cache","path":")" + path + "\"}");
            // A concurrent save may be mid-write; io_error is legal then,
            // a torn read is not (deserialize is all-or-nothing).
            if (!is_ok(load) && error_code(load) != "io_error") failed = true;
          }
          break;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) pool.emplace_back(worker, t);
  for (std::thread& th : pool) th.join();

  EXPECT_FALSE(failed.load()) << "a request failed with an unexpected error class";
  EXPECT_GT(solves_ok.load(), 0u);

  // The counters must balance once the dust settles: every completed solve
  // was a hit or a miss, and the store never exceeded its capacity.
  const api::CacheStats cache = core.executor().cache_stats();
  EXPECT_EQ(cache.capacity, opts.batch.cache_capacity);
  EXPECT_LE(cache.size, cache.capacity);
  EXPECT_GT(cache.hits + cache.misses, 0u);
  const api::GraphStoreStats store = core.store().stats();
  EXPECT_LE(store.size, store.capacity);
  EXPECT_LE(store.pinned, store.size);
  // Every request any thread sent was counted exactly once — no lost or
  // double-counted updates on the shared request counter.
  const ServerCounters counters = core.counters();
  EXPECT_EQ(counters.requests, requests_sent.load());
  // GraphStoreFull is an expected outcome under this capacity, not a
  // guaranteed one (it depends on interleaving) — record the tally so a CI
  // log shows whether the busy path was actually exercised.
  RecordProperty("store_busy_rejections", static_cast<int>(store_busy.load()));
}

// Raw executor reentrancy under namespace churn: concurrent run_batch calls
// with distinct per-request namespaces on one executor, against the same
// graphs — the cache must keep tenants separate while sharing capacity.
TEST(Concurrency, ConcurrentNamespacedBatchesOnOneExecutor) {
  api::BatchExecutor executor({.threads = 2, .shard_size = 1, .cache_capacity = 64});
  std::vector<graph::Graph> graphs;
  for (int n = 3; n < 11; ++n) graphs.push_back(graph::gen::path(n));

  std::atomic<bool> failed{false};
  auto caller = [&](int t) {
    api::Request req;
    api::BatchOverrides over;
    over.cache_namespace = "caller-" + std::to_string(t % 3);
    for (int round = 0; round < 6 && !failed; ++round) {
      api::BatchDiagnostics diag;
      const std::vector<api::Response> out =
          executor.run_batch("greedy", {graphs.data(), graphs.size()}, req, over, &diag);
      if (out.size() != graphs.size()) failed = true;
      for (const api::Response& r : out) {
        if (!r.valid) failed = true;
      }
      if (diag.cache_hits + diag.cache_misses != graphs.size()) failed = true;
    }
  };

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) pool.emplace_back(caller, t);
  for (std::thread& th : pool) th.join();
  EXPECT_FALSE(failed.load());

  // Three namespaces, one executor: per-tenant slices exist and their sizes
  // sum to the global size.
  const auto namespaces = executor.cache().namespace_stats();
  EXPECT_EQ(namespaces.size(), 3u);
  std::size_t total = 0;
  for (const auto& [ns, stats] : namespaces) total += stats.size;
  EXPECT_EQ(total, executor.cache_stats().size);
}

}  // namespace
}  // namespace lmds::server
