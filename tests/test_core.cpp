// Tests for the paper's algorithms: constants, Theorem 4.4 (3-round rule),
// Algorithm 1 (Theorem 4.1), Algorithm 2 (Theorem 4.3), the MVC variants and
// the baselines.

#include <gtest/gtest.h>

#include <random>

#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"
#include "core/baselines.hpp"
#include "core/constants.hpp"
#include "core/metrics.hpp"
#include "core/mvc.hpp"
#include "core/theorem44.hpp"
#include "ding/generators.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "solve/exact_mds.hpp"
#include "solve/exact_mvc.hpp"
#include "solve/tree_dp.hpp"
#include "solve/validate.hpp"

namespace lmds::core {
namespace {

using graph::Graph;
using graph::Vertex;

// ---------------------------------------------------------------------------
// Constants

TEST(Constants, RadiiFormulas) {
  const PaperConstants c{.t = 4, .d = 1};
  // f(r) = (5r+18)t: f(5) = 43*4 = 172, f(11) = 73*4 = 292.
  EXPECT_EQ(c.m32(), 172 + 2);
  EXPECT_EQ(c.m33(), 292 + 5);
}

TEST(Constants, ChargingConstants) {
  const PaperConstants c{.t = 2, .d = 1};
  EXPECT_EQ(c.c32(), 6);
  EXPECT_EQ(c.c33(), 44);
  // Reproduction finding: the printed constants sum to 51, not the claimed
  // 50 (Theorem 4.1 states c3.2(1) + c3.3(1) + 1 = 50).
  EXPECT_EQ(c.derived_ratio(), 51);
  EXPECT_EQ(PaperConstants::kClaimedRatio, 50);
}

TEST(Constants, Theorem44Ratios) {
  const PaperConstants c{.t = 7, .d = 1};
  EXPECT_EQ(c.theorem44_mds_ratio(), 13);
  EXPECT_EQ(c.theorem44_mvc_ratio(), 7);
}

// ---------------------------------------------------------------------------
// Theorem 4.4 — MDS

TEST(Theorem44, OutputDominates) {
  std::mt19937_64 rng(163);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(40, 20, rng);
    const auto result = theorem44_mds(g);
    EXPECT_TRUE(solve::is_dominating_set(g, result.solution));
    EXPECT_EQ(result.traffic.rounds, 3);
  }
}

TEST(Theorem44, FanDominatedByCentre) {
  // In a fan, N[p_i] ⊆ N[centre] strictly for every path vertex, so only
  // the centre survives.
  const Graph g = ding::fan(6);
  const auto result = theorem44_mds(g);
  EXPECT_EQ(result.solution, (std::vector<Vertex>{0}));
}

TEST(Theorem44, CliqueCollapsesToOneVertex) {
  // All of K_n is one twin class; the representative has no strict superset.
  const auto result = theorem44_mds(graph::gen::complete(7));
  EXPECT_EQ(result.solution.size(), 1u);
}

TEST(Theorem44, CliqueWithPendantsSmall) {
  // §4 example: MDS = 1. Vertex 0 strictly contains every other clique
  // vertex's neighbourhood; pendants are strictly inside {0, v}'s. The rule
  // keeps exactly vertex 0.
  const Graph g = graph::gen::clique_with_pendants(8);
  const auto result = theorem44_mds(g);
  EXPECT_EQ(result.solution, (std::vector<Vertex>{0}));
}

TEST(Theorem44, RespectsRatioOnThetaChains) {
  // Theta chains are K_{2,p+1}-minor-free; the guarantee is 2(p+1)-1.
  for (const int parallel : {2, 3, 4}) {
    const int t = parallel + 1;
    const Graph g = graph::gen::theta_chain(8, parallel);
    const auto result = theorem44_mds(g);
    EXPECT_TRUE(solve::is_dominating_set(g, result.solution));
    const int opt = solve::mds_size(g);
    EXPECT_LE(result.solution.size(), static_cast<std::size_t>((2 * t - 1) * opt))
        << "t=" << t;
  }
}

TEST(Theorem44, ThetaChainTakesEverything) {
  // On theta chains nothing strictly contains anything: the rule keeps all
  // vertices — this is exactly the Θ(t)-ratio worst case of the bench E2.
  const Graph g = graph::gen::theta_chain(4, 3);
  const auto result = theorem44_mds(g);
  EXPECT_EQ(result.solution.size(), static_cast<std::size_t>(g.num_vertices()));
}

TEST(Theorem44, LocalMatchesCentralized) {
  std::mt19937_64 rng(167);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = graph::gen::random_connected(25, 12, rng);
    const local::Network net(g);  // identity ids to match centralized
    const auto central = theorem44_mds(g);
    const auto distributed = theorem44_mds_local(net);
    EXPECT_EQ(central.solution, distributed.solution);
    EXPECT_EQ(distributed.traffic.rounds, 3);
    EXPECT_GT(distributed.traffic.messages, 0u);
  }
}

TEST(Theorem44, OutperformedByExactOnTrees) {
  std::mt19937_64 rng(171);
  const Graph g = graph::gen::random_tree(60, rng);
  const auto result = theorem44_mds(g);
  EXPECT_TRUE(solve::is_dominating_set(g, result.solution));
  EXPECT_GE(result.solution.size(), static_cast<std::size_t>(solve::tree_mds_size(g)));
}

// ---------------------------------------------------------------------------
// Theorem 4.4 — MVC

TEST(Theorem44Mvc, OutputCovers) {
  std::mt19937_64 rng(173);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(30, 20, rng);
    const auto result = theorem44_mvc(g);
    EXPECT_TRUE(solve::is_vertex_cover(g, result.solution));
  }
}

TEST(Theorem44Mvc, IsolatedEdgeTakesOneEndpoint) {
  const Graph g = graph::disjoint_union(graph::gen::path(2), graph::gen::path(2));
  const auto result = theorem44_mvc(g);
  EXPECT_EQ(result.solution, (std::vector<Vertex>{0, 2}));
}

TEST(Theorem44Mvc, PendantLeavesExcluded) {
  const Graph g = graph::gen::star(6);
  const auto result = theorem44_mvc(g);
  EXPECT_EQ(result.solution, (std::vector<Vertex>{0}));
}

TEST(Theorem44Mvc, RatioOnThetaChains) {
  for (const int parallel : {2, 3, 4}) {
    const int t = parallel + 1;
    const Graph g = graph::gen::theta_chain(6, parallel);
    const auto result = theorem44_mvc(g);
    EXPECT_TRUE(solve::is_vertex_cover(g, result.solution));
    EXPECT_LE(result.solution.size(),
              static_cast<std::size_t>(t * solve::mvc_size(g)))
        << "t=" << t;
  }
}

TEST(Theorem44Mvc, LocalMatchesCentralized) {
  std::mt19937_64 rng(179);
  const Graph g = graph::gen::random_connected(25, 10, rng);
  const local::Network net(g);
  EXPECT_EQ(theorem44_mvc(g).solution, theorem44_mvc_local(net).solution);
}

// ---------------------------------------------------------------------------
// Algorithm 1

Algorithm1Config small_radius_config(int t, int r1, int r2) {
  Algorithm1Config cfg;
  cfg.t = t;
  cfg.radius1 = r1;
  cfg.radius2 = r2;
  return cfg;
}

TEST(Algorithm1, OutputDominatesAcrossFamilies) {
  std::mt19937_64 rng(181);
  const auto check = [](const Graph& g, const Algorithm1Config& cfg) {
    const auto result = algorithm1(g, cfg);
    EXPECT_TRUE(solve::is_dominating_set(g, result.dominating_set)) << g.summary();
  };
  check(graph::gen::cycle(30), small_radius_config(3, 3, 3));
  check(graph::gen::theta_chain(6, 4), small_radius_config(5, 3, 3));
  check(graph::gen::clique_with_pendants(7), small_radius_config(7, 2, 2));
  for (int trial = 0; trial < 5; ++trial) {
    check(graph::gen::random_tree(40, rng), small_radius_config(2, 3, 3));
    ding::CactusConfig cc;
    cc.pieces = 5;
    cc.t = 5;
    check(ding::random_cactus_of_structures(cc, rng), small_radius_config(5, 3, 3));
  }
}

TEST(Algorithm1, PaperConstantRadiiOnSmallGraphs) {
  // With the true paper radii (hundreds), every ball is the whole graph on
  // small instances: local cuts = global cuts and the run still dominates.
  const Graph g = graph::gen::theta_chain(4, 2);
  Algorithm1Config cfg;
  cfg.t = 3;  // radii default to m32 = 131, m33 = 224
  EXPECT_EQ(cfg.effective_radius1(), 43 * 3 + 2);
  EXPECT_EQ(cfg.effective_radius2(), 73 * 3 + 5);
  const auto result = algorithm1(g, cfg);
  EXPECT_TRUE(solve::is_dominating_set(g, result.dominating_set));
}

TEST(Algorithm1, ThetaChainTakesInteriorHubsAndStaysConstant) {
  // The headline behaviour: on theta chains the D2 rule keeps everything
  // (ratio ~ 2t) while Algorithm 1 keeps interior hubs + brute-forced bits,
  // independent of t.
  for (const int parallel : {3, 5, 8}) {
    const Graph g = graph::gen::theta_chain(8, parallel);
    const auto result = algorithm1(g, small_radius_config(parallel + 1, 4, 4));
    EXPECT_TRUE(solve::is_dominating_set(g, result.dominating_set));
    const int opt = solve::mds_size(g);
    // Constant multiple regardless of t (generous constant, far below the
    // D2 rule's ~2t·opt ≈ n).
    EXPECT_LE(result.dominating_set.size(), static_cast<std::size_t>(6 * opt))
        << "parallel=" << parallel;
    const auto d2 = theorem44_mds(g);
    EXPECT_GT(d2.solution.size(), result.dominating_set.size());
  }
}

TEST(Algorithm1, CycleHandledByOneCuts) {
  // On a long cycle every vertex is a local 1-cut: X = V, no brute force.
  const Graph g = graph::gen::cycle(24);
  const auto result = algorithm1(g, small_radius_config(3, 3, 3));
  EXPECT_EQ(result.diag.one_cuts.size(), 24u);
  EXPECT_TRUE(result.diag.interesting.empty());
  EXPECT_EQ(result.diag.residual_components, 0);
}

TEST(Algorithm1, CliqueWithPendantsStaysSmall) {
  // MDS = 1; no interesting vertices; twin removal and brute force must keep
  // the output tiny even though there are n-1 two-cuts.
  const Graph g = graph::gen::clique_with_pendants(9);
  const auto result = algorithm1(g, small_radius_config(9, 2, 2));
  EXPECT_TRUE(solve::is_dominating_set(g, result.dominating_set));
  EXPECT_LE(result.dominating_set.size(), 3u);
}

TEST(Algorithm1, DiagnosticsConsistent) {
  const Graph g = graph::gen::theta_chain(6, 3);
  const auto result = algorithm1(g, small_radius_config(4, 3, 3));
  // Every diagnostic vertex really is in the output.
  for (Vertex v : result.diag.one_cuts) {
    EXPECT_TRUE(std::binary_search(result.dominating_set.begin(),
                                   result.dominating_set.end(), v));
  }
  for (Vertex v : result.diag.interesting) {
    EXPECT_TRUE(std::binary_search(result.dominating_set.begin(),
                                   result.dominating_set.end(), v));
  }
  EXPECT_GE(result.diag.rounds, 1);
}

TEST(Algorithm1, LocalMatchesCentralized) {
  std::mt19937_64 rng(191);
  for (int trial = 0; trial < 4; ++trial) {
    ding::CactusConfig cc;
    cc.pieces = 4;
    cc.max_piece_size = 7;
    cc.t = 5;
    const Graph g = ding::random_cactus_of_structures(cc, rng);
    const local::Network net(g);
    const auto cfg = small_radius_config(5, 3, 3);
    const auto central = algorithm1(g, cfg);
    const auto distributed = algorithm1_local(net, cfg);
    EXPECT_EQ(central.dominating_set, distributed.dominating_set) << g.summary();
    EXPECT_GT(distributed.diag.traffic.messages, 0u);
  }
}

TEST(Algorithm1, LocalMatchesCentralizedOnThetaAndCycle) {
  const auto cfg = small_radius_config(4, 3, 3);
  for (const Graph& g : {graph::gen::theta_chain(5, 3), graph::gen::cycle(20)}) {
    const local::Network net(g);
    EXPECT_EQ(algorithm1(g, cfg).dominating_set,
              algorithm1_local(net, cfg).dominating_set);
  }
}

TEST(Algorithm1, TwinRemovalAblation) {
  // Without twin removal the output can only get larger on twin-heavy
  // graphs, but must still dominate.
  const Graph g = graph::gen::clique_with_pendants(8);
  auto cfg = small_radius_config(8, 2, 2);
  cfg.twin_removal = false;
  const auto no_twin = algorithm1(g, cfg);
  EXPECT_TRUE(solve::is_dominating_set(g, no_twin.dominating_set));
  cfg.twin_removal = true;
  const auto with_twin = algorithm1(g, cfg);
  EXPECT_LE(with_twin.dominating_set.size(), no_twin.dominating_set.size());
}

// ---------------------------------------------------------------------------
// Algorithm 2

TEST(Algorithm2, MatchesAlgorithm1WithSameRadii) {
  const Graph g = graph::gen::theta_chain(5, 3);
  Algorithm2Config cfg2;
  cfg2.d = 1;
  cfg2.f = [](int) { return 1; };  // f(5)+2 = 3, f(11)+5 = 6
  const auto result2 = algorithm2(g, cfg2);
  Algorithm1Config cfg1;
  cfg1.radius1 = 3;
  cfg1.radius2 = 6;
  const auto result1 = algorithm1(g, cfg1);
  EXPECT_EQ(result1.dominating_set, result2.dominating_set);
}

TEST(Algorithm2, RequiresControlFunction) {
  Algorithm2Config cfg;
  EXPECT_THROW(algorithm2(graph::gen::path(4), cfg), std::invalid_argument);
}

TEST(Algorithm2, RatioFormula) {
  EXPECT_EQ(algorithm2_ratio(1), 51);
  EXPECT_EQ(algorithm2_ratio(2), 76);
}

TEST(Algorithm2, LocalMatchesCentralized) {
  const Graph g = graph::gen::theta_chain(4, 3);
  Algorithm2Config cfg;
  cfg.d = 1;
  cfg.f = [](int) { return 1; };
  const local::Network net(g);
  EXPECT_EQ(algorithm2(g, cfg).dominating_set, algorithm2_local(net, cfg).dominating_set);
}

TEST(Algorithm1, RoundAccountingFormula) {
  // rounds = 2 (twin) + (max(r1, 2*r2) + 1) + (residual diameter + 3).
  const Graph g = graph::gen::theta_chain(6, 3);
  Algorithm1Config cfg;
  cfg.t = 4;
  cfg.radius1 = 3;
  cfg.radius2 = 4;
  const auto result = algorithm1(g, cfg);
  EXPECT_EQ(result.diag.rounds, 2 + (8 + 1) + (result.diag.max_residual_diameter + 3));
  cfg.twin_removal = false;
  const auto no_twin = algorithm1(g, cfg);
  EXPECT_EQ(no_twin.diag.rounds, (8 + 1) + (no_twin.diag.max_residual_diameter + 3));
}

// ---------------------------------------------------------------------------
// Algorithm 1 MVC variant

TEST(Algorithm1Mvc, OutputCoversAcrossFamilies) {
  std::mt19937_64 rng(193);
  const auto cfg = small_radius_config(5, 3, 3);
  const auto check = [&](const Graph& g) {
    const auto result = algorithm1_mvc(g, cfg);
    EXPECT_TRUE(solve::is_vertex_cover(g, result.vertex_cover)) << g.summary();
  };
  check(graph::gen::cycle(25));
  check(graph::gen::theta_chain(5, 4));
  check(graph::gen::clique_with_pendants(6));
  for (int trial = 0; trial < 4; ++trial) {
    check(graph::gen::random_tree(30, rng));
  }
}

TEST(Algorithm1Mvc, ConstantFactorOnThetaChains) {
  for (const int parallel : {3, 5}) {
    const Graph g = graph::gen::theta_chain(7, parallel);
    const auto result = algorithm1_mvc(g, small_radius_config(parallel + 1, 3, 3));
    const int opt = solve::mvc_size(g);
    EXPECT_LE(result.vertex_cover.size(), static_cast<std::size_t>(6 * opt));
  }
}

// ---------------------------------------------------------------------------
// Baselines

TEST(Baselines, TakeAllIsEverything) {
  EXPECT_EQ(take_all(graph::gen::path(5)).size(), 5u);
}

TEST(Baselines, TakeAllRatioBoundOnBoundedDegree) {
  // Footnote 4: on max-degree-(t-1) graphs, n <= t * MDS.
  std::mt19937_64 rng(197);
  const int t = 5;
  const Graph g = graph::gen::random_max_degree(50, t - 1, 20, rng);
  const int opt = solve::mds_size(g);
  EXPECT_LE(static_cast<int>(take_all(g).size()), t * opt);
}

TEST(Baselines, TreeDegreeRuleDominatesAndIs3Approx) {
  std::mt19937_64 rng(199);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_tree(50, rng);
    const auto rule = tree_degree_rule(g);
    EXPECT_TRUE(solve::is_dominating_set(g, rule));
    EXPECT_LE(rule.size(), static_cast<std::size_t>(3 * solve::tree_mds_size(g)));
  }
}

TEST(Baselines, TreeDegreeRuleTinyComponents) {
  EXPECT_EQ(tree_degree_rule(graph::gen::path(2)), (std::vector<Vertex>{0}));
  EXPECT_EQ(tree_degree_rule(graph::Graph(std::vector<std::vector<Vertex>>(1))),
            (std::vector<Vertex>{0}));
}

TEST(Baselines, GammaValues) {
  const Graph g = graph::gen::star(6);
  // Centre: no other vertex dominates N[centre] (leaves are pairwise
  // non-adjacent): gamma = 5 > cap.
  EXPECT_GT(gamma(g, 0, 3), 3);
  // Leaf: the centre alone dominates N[leaf].
  EXPECT_EQ(gamma(g, 1, 3), 1);
  // Isolated vertex: nothing else covers it.
  const Graph iso(std::vector<std::vector<Vertex>>(1));
  EXPECT_GT(gamma(iso, 0, 3), 3);
}

TEST(Baselines, KsvStyleDominates) {
  std::mt19937_64 rng(211);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::gen::random_connected(35, 15, rng);
    for (const int k : {1, 2, 3}) {
      EXPECT_TRUE(solve::is_dominating_set(g, ksv_style(g, k)));
    }
  }
}

TEST(Baselines, KsvReasonableOnPlanar) {
  std::mt19937_64 rng(223);
  const Graph g = graph::gen::apollonian(40, rng);
  const auto solution = ksv_style(g, 3);
  EXPECT_TRUE(solve::is_dominating_set(g, solution));
}

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, ExactRatioOnSmallGraph) {
  const Graph g = graph::gen::cycle(9);  // MDS = 3
  const std::vector<Vertex> solution{0, 1, 3, 6};
  const auto report = measure_mds_ratio(g, solution);
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.reference, 3);
  EXPECT_NEAR(report.ratio, 4.0 / 3.0, 1e-9);
}

TEST(Metrics, TreeUsesDp) {
  std::mt19937_64 rng(227);
  const Graph g = graph::gen::random_tree(300, rng);
  const auto solution = tree_degree_rule(g);
  const auto report = measure_mds_ratio(g, solution);
  EXPECT_TRUE(report.exact);
  EXPECT_LE(report.ratio, 3.0);
}

TEST(Metrics, MvcRatio) {
  const Graph g = graph::gen::cycle(8);  // MVC = 4
  const auto cover = theorem44_mvc(g);
  const auto report = measure_mvc_ratio(g, cover.solution);
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.reference, 4);
}

}  // namespace
}  // namespace lmds::core
