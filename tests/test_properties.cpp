// Cross-module property and fuzz tests: structural invariants the paper
// relies on, checked over randomized instance streams.
//
//  * radius monotonicity of local cuts (§2: no r-local cuts ⇒ no r'-local
//    cuts for r' > r);
//  * interesting vertices always sit in local 2-cuts;
//  * twin reduction preserves MDS;
//  * SPQR skeleton edge counts reassemble the graph;
//  * exact solver cross-validation against an independent brute force;
//  * Algorithm 1 never does worse than the union bound of its parts.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/algorithm1.hpp"
#include "cuts/interesting.hpp"
#include "cuts/local_cuts.hpp"
#include "cuts/two_cuts.hpp"
#include "ding/generators.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "minor/k2t.hpp"
#include "solve/exact_mds.hpp"
#include "local/runner.hpp"
#include "solve/validate.hpp"
#include "spqr/spqr_tree.hpp"

namespace lmds {
namespace {

using graph::Graph;
using graph::Vertex;

// A rotating stream of moderate random instances.
Graph random_instance(std::mt19937_64& rng, int which) {
  switch (which % 5) {
    case 0:
      return graph::gen::random_connected(22, 8, rng);
    case 1:
      return graph::gen::random_tree(25, rng);
    case 2:
      return graph::gen::random_maximal_outerplanar(16, rng);
    case 3: {
      ding::CactusConfig cfg;
      cfg.pieces = 4;
      cfg.max_piece_size = 7;
      cfg.t = 5;
      return ding::random_cactus_of_structures(cfg, rng);
    }
    default:
      return graph::gen::theta_chain(3 + which % 3, 2 + which % 4);
  }
}

TEST(Properties, LocalCutRadiusMonotonicityGraphLevel) {
  // §2 claims: if a graph has no r-local k-cuts it has no r'-local k-cuts
  // for r' > r. Reproduction note: for k = 2 this is FALSE as literally
  // stated at small radii — an r-local 2-cut requires its two vertices
  // within distance r, so a distance-(r+1) cut pair only becomes visible at
  // radius r+1 (our fuzzer found 13-vertex counterexamples). The claim is
  // sound for k = 1, which is all the paper's proofs rely on; we pin the
  // k = 1 version here and the k = 2 caveat in EXPERIMENTS.md.
  std::mt19937_64 rng(31415);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = random_instance(rng, trial);
    for (int r = 1; r <= 4; ++r) {
      if (cuts::local_one_cuts(g, r).empty()) {
        EXPECT_TRUE(cuts::local_one_cuts(g, r + 1).empty())
            << g.summary() << " r=" << r;
      }
    }
  }
}

TEST(Properties, LocalTwoCutMonotonicityCounterexample) {
  // Concrete witness for the k = 2 caveat above: two vertices at distance 2
  // forming a 2-cut, with no adjacent pair forming one. C6 plus one pendant
  // path off opposite vertices... simplest: C8. At r = 1 only adjacent
  // pairs are candidates and none is a minimal 2-cut of its double ball
  // (paths have no minimal 2-cuts); at r = 4 the opposite pairs qualify.
  const Graph g = graph::gen::cycle(8);
  EXPECT_TRUE(cuts::local_two_cuts(g, 1).empty());
  EXPECT_FALSE(cuts::local_two_cuts(g, 4).empty());
}

TEST(Properties, GlobalCutsAreLocalCutsAtDiameter) {
  std::mt19937_64 rng(27182);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_instance(rng, trial);
    if (!graph::is_connected(g)) continue;
    const int r = g.num_vertices();
    // Radius >= diameter: the local notions coincide with the global ones.
    const auto local_pairs = cuts::local_two_cuts(g, r);
    const auto global_pairs = cuts::minimal_two_cuts(g);
    EXPECT_EQ(local_pairs, global_pairs) << g.summary();
  }
}

TEST(Properties, InterestingVerticesSitInLocalTwoCuts) {
  std::mt19937_64 rng(16180);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_instance(rng, trial);
    for (const int r : {2, 3}) {
      const auto interesting = cuts::interesting_vertices(g, r);
      const auto in_cuts = cuts::vertices_in_local_two_cuts(g, r);
      for (Vertex v : interesting) {
        EXPECT_TRUE(std::binary_search(in_cuts.begin(), in_cuts.end(), v))
            << g.summary() << " v=" << v << " r=" << r;
      }
    }
  }
}

TEST(Properties, TwinReductionPreservesMds) {
  std::mt19937_64 rng(14142);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_instance(rng, trial);
    const auto reduction = graph::remove_true_twins(g);
    EXPECT_EQ(solve::mds_size(g), solve::mds_size(reduction.reduced.graph)) << g.summary();
  }
}

TEST(Properties, TwinReductionLiftedSolutionsDominate) {
  std::mt19937_64 rng(17320);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::clique_with_pendants(5 + trial % 4);
    const auto reduction = graph::remove_true_twins(g);
    const auto reduced_mds = solve::exact_mds(reduction.reduced.graph);
    const auto lifted = reduction.lift_solution(reduced_mds);
    EXPECT_TRUE(solve::is_dominating_set(g, lifted));
  }
}

TEST(Properties, SpqrSkeletonRealEdgesPartitionGraph) {
  // Every real edge of the graph appears in exactly one skeleton.
  std::mt19937_64 rng(22360);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = graph::gen::random_maximal_outerplanar(12, rng);
    const auto tree = spqr::spqr_tree(g);
    std::map<std::pair<Vertex, Vertex>, int> real_count;
    for (const auto& node : tree.nodes) {
      for (const auto& e : node.edges) {
        if (!e.is_virtual) {
          ++real_count[{std::min(e.u, e.v), std::max(e.u, e.v)}];
        }
      }
    }
    EXPECT_EQ(real_count.size(), static_cast<std::size_t>(g.num_edges()));
    for (const auto& [edge, count] : real_count) {
      EXPECT_EQ(count, 1) << "edge {" << edge.first << "," << edge.second << "}";
      EXPECT_TRUE(g.has_edge(edge.first, edge.second));
    }
  }
}

TEST(Properties, ApollonianIsTriconnectedSingleRNode) {
  std::mt19937_64 rng(26457);
  const Graph g = graph::gen::apollonian(12, rng);
  const auto tree = spqr::spqr_tree(g);
  ASSERT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.nodes[0].type, spqr::NodeType::kR);
}

TEST(Properties, PrismIsSingleRNode) {
  // The triangular prism (C3 x K2) is 3-connected.
  graph::GraphBuilder b(6);
  b.add_cycle({0, 1, 2});
  b.add_cycle({3, 4, 5});
  b.add_edge(0, 3);
  b.add_edge(1, 4);
  b.add_edge(2, 5);
  const auto tree = spqr::spqr_tree(b.build());
  ASSERT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.nodes[0].type, spqr::NodeType::kR);
}

TEST(Properties, ExactMdsAgainstIndependentBruteForce) {
  // Cross-validate the set-cover B&B against a straight subset enumeration
  // on tiny graphs.
  std::mt19937_64 rng(33166);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::gen::random_connected(9, 5, rng);
    const int n = g.num_vertices();
    int best = n;
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<Vertex> candidate;
      for (Vertex v = 0; v < n; ++v) {
        if (mask & (1 << v)) candidate.push_back(v);
      }
      if (static_cast<int>(candidate.size()) < best &&
          solve::is_dominating_set(g, candidate)) {
        best = static_cast<int>(candidate.size());
      }
    }
    EXPECT_EQ(solve::mds_size(g), best) << g.summary();
  }
}

TEST(Properties, Algorithm1SizeDecomposition) {
  // |S| <= |X| + |I| + |brute|, with equality up to overlaps, and each part
  // within its own lemma budget.
  std::mt19937_64 rng(36055);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_instance(rng, trial);
    core::Algorithm1Config cfg;
    cfg.t = 5;
    cfg.radius1 = 3;
    cfg.radius2 = 3;
    const auto result = core::algorithm1(g, cfg);
    EXPECT_LE(result.dominating_set.size(), result.diag.one_cuts.size() +
                                                result.diag.interesting.size() +
                                                result.diag.brute_forced.size() + 1u);
    EXPECT_TRUE(solve::is_dominating_set(g, result.dominating_set));
  }
}

TEST(Properties, MaxK2tMonotoneUnderSubgraphs) {
  // Removing vertices can only lose minors.
  std::mt19937_64 rng(38729);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = graph::gen::random_connected(14, 8, rng);
    const int before = minor::max_k2t(g, 2);
    std::uniform_int_distribution<Vertex> pick(0, static_cast<Vertex>(g.num_vertices() - 1));
    const Vertex drop = pick(rng);
    const std::vector<Vertex> removed{drop};
    const auto sub = graph::remove_vertices(g, removed);
    EXPECT_LE(minor::max_k2t(sub.graph, 2), before) << g.summary();
  }
}

TEST(Properties, BallViewConsistencyUnderRelabeling) {
  // Shuffled identifiers never change which vertices are selected by an
  // id-free decision rule.
  std::mt19937_64 rng(41231);
  const Graph g = graph::gen::theta_chain(4, 3);
  const auto decide = [](const local::BallView& view) {
    return cuts::is_local_one_cut(view.graph, view.centre, 2);
  };
  const local::Network identity(g);
  const auto base = local::run_ball_algorithm_fast(identity, 4, decide).selected;
  for (int trial = 0; trial < 4; ++trial) {
    const local::Network shuffled = local::Network::with_random_ids(g, rng);
    EXPECT_EQ(local::run_ball_algorithm_fast(shuffled, 4, decide).selected, base);
  }
}

}  // namespace
}  // namespace lmds
