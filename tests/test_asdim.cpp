// Tests for the asymptotic-dimension module: BFS-band covers, r-component
// weak-diameter validation, and the Lemma 5.2 / Proposition 3.1 charging
// machinery.

#include <gtest/gtest.h>

#include <random>

#include "asdim/charging.hpp"
#include "asdim/control.hpp"
#include "asdim/cover.hpp"
#include "core/constants.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "solve/exact_mds.hpp"

namespace lmds::asdim {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(Cover, IsACover) {
  std::mt19937_64 rng(241);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::gen::random_tree(40, rng);
    for (const int r : {1, 2, 3}) {
      const Cover cover = bfs_band_cover(g, r);
      EXPECT_TRUE(validate_cover(g, cover).is_cover);
      EXPECT_EQ(cover.dimension(), 1);
    }
  }
}

TEST(Cover, PartsDisjoint) {
  std::mt19937_64 rng(251);
  const Graph g = graph::gen::random_connected(30, 10, rng);
  const Cover cover = bfs_band_cover(g, 2);
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const auto& part : cover.parts) {
    for (Vertex v : part) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = 1;
    }
  }
}

TEST(Cover, PathBandsAreBounded) {
  // On a path, each band is an interval of length r; its weak diameter is
  // at most 2r - 1 (a full band plus nothing else merges at distance r).
  const Graph g = graph::gen::path(60);
  for (const int r : {1, 2, 4}) {
    const CoverCheck check = validate_cover(g, bfs_band_cover(g, r));
    EXPECT_TRUE(check.is_cover);
    EXPECT_LE(check.max_component_weak_diameter, 2 * r) << "r=" << r;
  }
}

TEST(Cover, SpiderBranchesSeparate) {
  // Far from the root, different legs are different r-components: their
  // weak diameter stays bounded even though a part spans all legs.
  const Graph g = graph::gen::spider(5, 40);
  const CoverCheck check = validate_cover(g, bfs_band_cover(g, 3));
  EXPECT_TRUE(check.is_cover);
  EXPECT_GT(check.num_components, 5);
  EXPECT_LE(check.max_component_weak_diameter, 4 * 3);
}

TEST(Cover, TreeControlLinearInR) {
  // Measured control on random trees stays well under the paper's
  // (5r+18)t bound (with t = 2, trees are K_{2,2}-minor-free).
  std::mt19937_64 rng(257);
  std::vector<Graph> family;
  for (int i = 0; i < 5; ++i) family.push_back(graph::gen::random_tree(80, rng));
  const auto curve = measure_control_curve(family, {1, 2, 3, 5}, 2);
  for (const ControlPoint& point : curve) {
    EXPECT_LE(point.measured, point.paper_bound)
        << "r=" << point.r << " measured=" << point.measured;
  }
}

TEST(Cover, ThetaChainControlBounded) {
  std::mt19937_64 rng(263);
  std::vector<Graph> family;
  for (const int parallel : {2, 4}) family.push_back(graph::gen::theta_chain(10, parallel));
  const auto curve = measure_control_curve(family, {2, 5}, 5);
  for (const ControlPoint& point : curve) {
    EXPECT_LE(point.measured, point.paper_bound);
  }
}

TEST(Cover, RejectsBadScale) {
  EXPECT_THROW(bfs_band_cover(graph::gen::path(4), 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Charging (Lemma 5.2 / Proposition 3.1)

TEST(Charging, DisjointnessDetection) {
  const Graph g = graph::gen::path(10);
  const std::vector<std::vector<Vertex>> far_sets{{0}, {4}, {8}};
  EXPECT_TRUE(closed_neighborhoods_disjoint(g, far_sets));
  const std::vector<std::vector<Vertex>> close_sets{{0}, {2}};
  EXPECT_FALSE(closed_neighborhoods_disjoint(g, close_sets));  // share N at 1
}

TEST(Charging, Lemma52SumBound) {
  // Sets with pairwise disjoint closed neighbourhoods: sum of B-domination
  // optima is at most the global optimum.
  std::mt19937_64 rng(269);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::gen::random_connected(30, 10, rng);
    // Build far-apart singleton sets greedily (a 2-packing).
    std::vector<std::vector<Vertex>> sets;
    std::vector<char> blocked(static_cast<std::size_t>(g.num_vertices()), 0);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (blocked[static_cast<std::size_t>(v)]) continue;
      sets.push_back({v});
      for (Vertex w : graph::ball(g, v, 2)) blocked[static_cast<std::size_t>(w)] = 1;
    }
    ASSERT_TRUE(closed_neighborhoods_disjoint(g, sets));
    EXPECT_LE(sum_b_domination(g, sets), solve::mds_size(g));
  }
}

TEST(Charging, CertificateBoundedByOptimum) {
  // Proposition 3.1's inner sum: per part, Σ over (2k+3)-components B of
  // MDS(G, N^k[B]) <= MDS(G).
  std::mt19937_64 rng(271);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::gen::random_tree(35, rng);
    const int k = 1;
    const Cover cover = bfs_band_cover(g, 2 * k + 3);
    EXPECT_LE(charging_certificate(g, cover, k), solve::mds_size(g));
  }
}

TEST(Charging, CertificateOnThetaChain) {
  const Graph g = graph::gen::theta_chain(6, 3);
  const int k = 1;
  const Cover cover = bfs_band_cover(g, 2 * k + 3);
  EXPECT_LE(charging_certificate(g, cover, k), solve::mds_size(g));
}

}  // namespace
}  // namespace lmds::asdim
