// Tests for the K_{2,t}-minor machinery: vertex-disjoint connectors,
// singleton/small-hub searches, and class-membership certification of the
// generator families used in the benches.

#include <gtest/gtest.h>

#include <random>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "minor/k2t.hpp"
#include "minor/minor_check.hpp"

namespace lmds::minor {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::Vertex;

TEST(Connectors, PathHasOne) {
  const Graph g = graph::gen::path(5);
  EXPECT_EQ(max_disjoint_connectors(g, 0, 4), 1);
  EXPECT_EQ(max_disjoint_connectors(g, 0, 1), 0);  // adjacent, no interior
}

TEST(Connectors, CycleHasTwo) {
  const Graph g = graph::gen::cycle(8);
  EXPECT_EQ(max_disjoint_connectors(g, 0, 4), 2);
  EXPECT_EQ(max_disjoint_connectors(g, 0, 2), 2);
}

TEST(Connectors, CompleteBipartiteHubSides) {
  // K_{2,5}: the two degree-5 hubs see 5 disjoint connectors.
  const Graph g = graph::gen::complete_bipartite(2, 5);
  EXPECT_EQ(max_disjoint_connectors(g, 0, 1), 5);
}

TEST(Connectors, CompleteGraph) {
  // K_6: between any two vertices, the other 4 are singleton connectors.
  const Graph g = graph::gen::complete(6);
  EXPECT_EQ(max_disjoint_connectors(g, 0, 1), 4);
}

TEST(Connectors, SetHubs) {
  // Theta chain: hub sets spanning a link still see `parallel` connectors.
  const Graph g = graph::gen::theta_chain(2, 3);
  const std::vector<Vertex> a{0};
  const std::vector<Vertex> b{1, 2};  // b not connected in g - fine for flow
  EXPECT_EQ(max_disjoint_connectors(g, a, b), 3);
}

TEST(Connectors, RejectsOverlappingHubs) {
  const Graph g = graph::gen::cycle(5);
  const std::vector<Vertex> a{0, 1};
  const std::vector<Vertex> b{1, 2};
  EXPECT_THROW(max_disjoint_connectors(g, a, b), std::invalid_argument);
}

TEST(ConnectedSubsets, PathCounts) {
  // Connected subsets of P4 with size <= 2: 4 singletons + 3 edges.
  const auto subsets = connected_subsets(graph::gen::path(4), 2);
  EXPECT_EQ(subsets.size(), 7u);
}

TEST(ConnectedSubsets, AllConnected) {
  std::mt19937_64 rng(97);
  const Graph g = graph::gen::random_connected(10, 5, rng);
  for (const auto& s : connected_subsets(g, 3)) {
    const auto sub = graph::induced_subgraph(g, s);
    EXPECT_TRUE(graph::is_connected(sub.graph));
  }
}

// ---------------------------------------------------------------------------
// max_k2t

TEST(K2t, CompleteBipartiteExact) {
  for (int t = 2; t <= 6; ++t) {
    EXPECT_EQ(max_k2t(graph::gen::complete_bipartite(2, t), 1), t) << "t=" << t;
  }
}

TEST(K2t, CycleIsTwo) {
  EXPECT_EQ(max_k2t(graph::gen::cycle(9)), 2);
  EXPECT_TRUE(is_k2t_minor_free(graph::gen::cycle(9), 3));
}

TEST(K2t, TreesAreOne) {
  std::mt19937_64 rng(101);
  const Graph g = graph::gen::random_tree(15, rng);
  EXPECT_LE(max_k2t(g), 1);
  EXPECT_TRUE(is_k2t_minor_free(g, 2));
}

TEST(K2t, ThetaChainExactlyParallel) {
  for (int p = 2; p <= 5; ++p) {
    const Graph g = graph::gen::theta_chain(3, p);
    EXPECT_EQ(max_k2t(g), p) << "parallel=" << p;
    EXPECT_TRUE(is_k2t_minor_free(g, p + 1));
    EXPECT_FALSE(is_k2t_minor_free(g, p));
  }
}

TEST(K2t, SubdividedThetaNeedsBigHubs) {
  // Subdivide the hub-incident edges: singleton hubs no longer reach all
  // parallel paths in one step, but hub sets of size 3 recover them... this
  // exercises the hub-size parameter. Construct: two hubs joined by 4 paths
  // of length 3 (so each parallel path has 2 interior vertices).
  GraphBuilder b(2);
  for (int p = 0; p < 4; ++p) {
    const Vertex x = b.add_vertex();
    const Vertex y = b.add_vertex();
    b.add_edge(0, x);
    b.add_edge(x, y);
    b.add_edge(y, 1);
  }
  const Graph g = b.build();
  // Singleton hubs already see all 4 connectors (each path is one set).
  EXPECT_EQ(max_k2t(g, 1), 4);
}

TEST(K2t, K4IsK23Free) {
  EXPECT_EQ(max_k2t(graph::gen::complete(4)), 2);
  EXPECT_TRUE(is_k2t_minor_free(graph::gen::complete(4), 3));
}

TEST(K2t, OuterplanarIsK23Free) {
  std::mt19937_64 rng(103);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::gen::random_maximal_outerplanar(12, rng);
    EXPECT_TRUE(is_k2t_minor_free(g, 3)) << g.summary();
  }
}

TEST(K2t, GridHasLargeMinors) {
  // A 4x4 grid: two adjacent interior columns give hubs with 4 connectors.
  const Graph g = graph::gen::grid(4, 4);
  EXPECT_GE(max_k2t(g, 4), 3);
}

TEST(K2t, CliqueWithPendantsSeesClique) {
  // K_n gives K_{2,n-2} minors (plus pendants can act as connectors).
  const Graph g = graph::gen::clique_with_pendants(6);
  EXPECT_GE(max_k2t(g, 1), 4);
}

TEST(K2t, WheelValue) {
  // Wheel W_n: hub + cycle. Hubs {centre, rim vertex}: connectors = two arc
  // neighbours + ... the remaining rim arc is one connected set: 3 total.
  const Graph g = graph::gen::wheel(8);
  EXPECT_EQ(max_k2t(g, 1), 3);
}

}  // namespace
}  // namespace lmds::minor
