// Tests for the connectivity substrate: articulation points, block-cut
// trees, minimal 2-cuts, r-local cuts (Definition 2.1) and interesting
// vertices (§3.2).

#include <gtest/gtest.h>

#include <random>

#include "cuts/block_cut.hpp"
#include "cuts/interesting.hpp"
#include "cuts/local_cuts.hpp"
#include "cuts/two_cuts.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"

namespace lmds::cuts {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::Vertex;

// ---------------------------------------------------------------------------
// Articulation points / block-cut tree

TEST(Articulation, PathInteriorOnly) {
  const auto cuts = articulation_points(graph::gen::path(5));
  EXPECT_EQ(cuts, (std::vector<Vertex>{1, 2, 3}));
}

TEST(Articulation, CycleHasNone) {
  EXPECT_TRUE(articulation_points(graph::gen::cycle(8)).empty());
}

TEST(Articulation, StarCentre) {
  EXPECT_EQ(articulation_points(graph::gen::star(6)), (std::vector<Vertex>{0}));
}

TEST(Articulation, MatchesBruteForce) {
  std::mt19937_64 rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::gen::random_connected(25, 8, rng);
    const auto fast = articulation_points(g);
    std::vector<Vertex> brute;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (is_cut_vertex(g, v)) brute.push_back(v);
    }
    EXPECT_EQ(fast, brute);
  }
}

TEST(Articulation, DisconnectedGraph) {
  const Graph g = graph::disjoint_union(graph::gen::path(3), graph::gen::cycle(4));
  EXPECT_EQ(articulation_points(g), (std::vector<Vertex>{1}));
}

TEST(BlockCut, PathBlocks) {
  const auto bct = block_cut_tree(graph::gen::path(4));
  EXPECT_EQ(bct.num_blocks(), 3);  // each edge is a block
  EXPECT_EQ(bct.num_cut_vertices(), 2);
  // The block-cut tree of a path is itself a path of 5 nodes.
  EXPECT_EQ(bct.tree.num_vertices(), 5);
  EXPECT_EQ(bct.tree.num_edges(), 4);
  EXPECT_TRUE(graph::is_connected(bct.tree));
}

TEST(BlockCut, TwoTrianglesSharedVertex) {
  // Bowtie: triangles {0,1,2} and {2,3,4} sharing vertex 2.
  GraphBuilder b(5);
  b.add_cycle({0, 1, 2});
  b.add_cycle({2, 3, 4});
  const auto bct = block_cut_tree(b.build());
  EXPECT_EQ(bct.num_blocks(), 2);
  EXPECT_EQ(bct.cut_vertices, (std::vector<Vertex>{2}));
  EXPECT_EQ(bct.blocks_of(2).size(), 2u);
  EXPECT_EQ(bct.blocks_of(0).size(), 1u);
}

TEST(BlockCut, TreeIsATree) {
  std::mt19937_64 rng(73);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(30, 10, rng);
    const auto bct = block_cut_tree(g);
    EXPECT_TRUE(graph::is_connected(bct.tree));
    EXPECT_EQ(bct.tree.num_edges(), bct.tree.num_vertices() - 1);
  }
}

TEST(BlockCut, BiconnectedGraphSingleBlock) {
  const auto bct = block_cut_tree(graph::gen::complete(6));
  EXPECT_EQ(bct.num_blocks(), 1);
  EXPECT_EQ(bct.num_cut_vertices(), 0);
  EXPECT_EQ(bct.blocks[0].size(), 6u);
}

TEST(BlockCut, IsolatedVertexIsTrivialBlock) {
  const Graph g(std::vector<std::vector<Vertex>>(2));
  const auto bct = block_cut_tree(g);
  EXPECT_EQ(bct.num_blocks(), 2);
}

// ---------------------------------------------------------------------------
// Minimal 2-cuts

TEST(TwoCuts, PathHasAdjacentPairs) {
  // In P5 = 0-1-2-3-4, {1,2},{2,3},{1,3} separate; but minimality requires
  // two full components: {1,3} has full middle {2}? N(1)={0,2}, N(3)={2,4}:
  // components of G-{1,3}: {0},{2},{4}. {2} touches both; {0} only 1; {4}
  // only 3 -> 1 full component -> not minimal. Same for {1,2}: components
  // {0},{3,4}: {0} touches 1 only; {3,4} touches 2 only -> not minimal.
  EXPECT_TRUE(minimal_two_cuts(graph::gen::path(5)).empty());
}

TEST(TwoCuts, CycleOppositePairs) {
  // In a cycle every non-adjacent pair is a minimal 2-cut.
  const Graph g = graph::gen::cycle(6);
  const auto cuts = minimal_two_cuts(g);
  // Pairs at cycle-distance >= 2: C(6,2) - 6 adjacent = 9.
  EXPECT_EQ(cuts.size(), 9u);
  EXPECT_TRUE(is_minimal_two_cut(g, 0, 3));
  EXPECT_TRUE(is_minimal_two_cut(g, 0, 2));
  EXPECT_FALSE(is_minimal_two_cut(g, 0, 1));
}

TEST(TwoCuts, CompleteGraphHasNone) {
  EXPECT_TRUE(minimal_two_cuts(graph::gen::complete(6)).empty());
}

TEST(TwoCuts, CliqueWithPendantsAllCliquePairs) {
  // The §4 example: {0, v} separates the pendant x_v, and the clique side is
  // a second full component, so every pair {0, v} is a minimal 2-cut.
  const Graph g = graph::gen::clique_with_pendants(6);
  for (Vertex v = 1; v < 6; ++v) EXPECT_TRUE(is_minimal_two_cut(g, 0, v)) << "v=" << v;
  const auto in_cuts = vertices_in_minimal_two_cuts(g);
  // All clique vertices are in minimal 2-cuts (the paper's point: their
  // number is unbounded in MDS(G) = 1).
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_TRUE(std::binary_search(in_cuts.begin(), in_cuts.end(), v)) << "v=" << v;
  }
}

TEST(TwoCuts, ThetaChainHubs) {
  const Graph g = graph::gen::theta_chain(3, 3);
  // Consecutive hub pairs are minimal 2-cuts (internals + rest are full).
  EXPECT_TRUE(is_minimal_two_cut(g, 0, 1));
  EXPECT_TRUE(is_minimal_two_cut(g, 1, 2));
  // Non-consecutive hubs are NOT minimal: {2} alone already separates the
  // h3-side, so {0,2} has only one full component (the middle).
  EXPECT_FALSE(is_minimal_two_cut(g, 0, 2));
}

TEST(TwoCuts, FullComponentCount) {
  const Graph g = graph::gen::cycle(6);
  EXPECT_EQ(full_component_count(g, 0, 3), 2);
  EXPECT_EQ(full_component_count(g, 0, 1), 1);
}

// ---------------------------------------------------------------------------
// Local cuts

TEST(LocalCuts, EveryCycleVertexIsLocalOneCut) {
  // Paper §4: on a long cycle all vertices are local 1-cuts but none are
  // global 1-cuts.
  const Graph g = graph::gen::cycle(30);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(is_local_one_cut(g, v, 3)) << "v=" << v;
    EXPECT_FALSE(is_cut_vertex(g, v));
  }
}

TEST(LocalCuts, ShortCycleHasNoLocalOneCut) {
  // If the ball covers the whole cycle, the local cut is a global cut —
  // and cycles have none. C7 with r=3: ball(v,3) = everything.
  const Graph g = graph::gen::cycle(7);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(is_local_one_cut(g, v, 3));
  }
}

TEST(LocalCuts, GlobalCutIsLocalCutAtLargeRadius) {
  std::mt19937_64 rng(79);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gen::random_connected(20, 5, rng);
    const int r = g.num_vertices();  // radius beyond diameter
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(is_local_one_cut(g, v, r), is_cut_vertex(g, v));
    }
  }
}

TEST(LocalCuts, MonotoneInRadiusOnCycle) {
  // If v is not an r-local 1-cut then it is not an r'-local 1-cut for any
  // r' > r (on the cycle: once the ball closes, no local cut).
  const Graph g = graph::gen::cycle(12);
  EXPECT_TRUE(is_local_one_cut(g, 0, 5));
  EXPECT_FALSE(is_local_one_cut(g, 0, 6));  // ball(0,6) = C12, no cut vertex
  EXPECT_FALSE(is_local_one_cut(g, 0, 7));
}

TEST(LocalCuts, LongCycleHasNoLocalTwoCuts) {
  // The union of two r-balls on a long cycle is a path, and a path has no
  // minimal 2-cuts (each pair leaves at most one full component). This is
  // why long cycles are handled entirely by the local 1-cut step of
  // Algorithm 1.
  const Graph g = graph::gen::cycle(40);
  EXPECT_FALSE(is_local_two_cut(g, 0, 4, 4));
  EXPECT_FALSE(is_local_two_cut(g, 0, 5, 4));  // also too far apart
  EXPECT_FALSE(is_local_two_cut(g, 0, 1, 4));
  EXPECT_TRUE(local_two_cuts(g, 3).empty());
  // Globally (radius covering the whole cycle) opposite pairs ARE minimal
  // 2-cuts, and the local notion converges to them.
  EXPECT_TRUE(is_local_two_cut(g, 0, 20, 40));
}

TEST(LocalCuts, LocalTwoCutsDetectThetaHubs) {
  const Graph g = graph::gen::theta_chain(6, 3);
  // Consecutive hubs are local 2-cuts at moderate radius.
  EXPECT_TRUE(is_local_two_cut(g, 0, 1, 3));
  EXPECT_TRUE(is_local_two_cut(g, 2, 3, 3));
  const auto vertices = vertices_in_local_two_cuts(g, 3);
  for (Vertex h = 0; h <= 6; ++h) {
    EXPECT_TRUE(std::binary_search(vertices.begin(), vertices.end(), h)) << "hub " << h;
  }
}

TEST(LocalCuts, RejectsBadRadius) {
  const Graph g = graph::gen::path(4);
  EXPECT_THROW(is_local_one_cut(g, 0, 0), std::invalid_argument);
  EXPECT_THROW(local_two_cuts(g, -1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Interesting vertices

TEST(Interesting, CliqueWithPendantsHasNone) {
  // The motivating example of §4: many 2-cuts, but taking u (vertex 0) is
  // always at least as good, so no vertex should be interesting.
  const Graph g = graph::gen::clique_with_pendants(7);
  EXPECT_TRUE(globally_interesting_vertices(g).empty());
}

TEST(Interesting, ThetaChainHubsAreInteresting) {
  const Graph g = graph::gen::theta_chain(4, 3);
  // Middle hubs: cut {h1, h2} leaves components on both sides with vertices
  // non-adjacent to the partner, and neighbourhoods are incomparable.
  EXPECT_TRUE(certifies_globally_interesting(g, 1, 2));
  EXPECT_TRUE(certifies_globally_interesting(g, 2, 1));
  const auto interesting = globally_interesting_vertices(g);
  for (Vertex h = 1; h <= 3; ++h) {
    EXPECT_TRUE(std::binary_search(interesting.begin(), interesting.end(), h)) << "hub " << h;
  }
  // Endpoint hubs are not interesting: their only minimal 2-cut {h0, h1}
  // leaves a single component with a non-neighbour of the partner.
  EXPECT_FALSE(std::binary_search(interesting.begin(), interesting.end(), Vertex{0}));
  EXPECT_FALSE(std::binary_search(interesting.begin(), interesting.end(), Vertex{4}));
  // Internal (degree-2) vertices are never interesting: any minimal 2-cut
  // containing x is {h_i, h_{i+1}}-shaped... in fact x is in no minimal
  // 2-cut with a partner making it interesting.
  for (Vertex x = 5; x < g.num_vertices(); ++x) {
    EXPECT_FALSE(std::binary_search(interesting.begin(), interesting.end(), x)) << "x=" << x;
  }
}

TEST(Interesting, C6OpposingCutsAreInteresting) {
  // §5.3 uses C6: the three opposing cuts {a,d},{b,e},{c,f} are interesting.
  const Graph g = graph::gen::cycle(6);
  EXPECT_TRUE(certifies_globally_interesting(g, 0, 3));
  EXPECT_TRUE(certifies_globally_interesting(g, 3, 0));
  EXPECT_TRUE(certifies_globally_interesting(g, 1, 4));
  EXPECT_TRUE(certifies_globally_interesting(g, 2, 5));
  // Distance-2 cuts {0,2}: one side is the single vertex 1, adjacent to
  // both; the other side has non-neighbours. Only one component with a
  // non-neighbour of the partner -> not a certificate.
  EXPECT_FALSE(certifies_globally_interesting(g, 0, 2));
}

TEST(Interesting, SmallCyclesHaveNoInterestingVertices) {
  // §5.3: if G = C_k with k <= 5, there are no interesting vertices.
  for (int k = 3; k <= 5; ++k) {
    EXPECT_TRUE(globally_interesting_vertices(graph::gen::cycle(k)).empty()) << "k=" << k;
  }
}

TEST(Interesting, LocalMatchesGlobalAtLargeRadius) {
  std::mt19937_64 rng(83);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = graph::gen::random_connected(18, 6, rng);
    const int r = g.num_vertices();
    EXPECT_EQ(interesting_vertices(g, r), globally_interesting_vertices(g));
  }
}

TEST(Interesting, LongCycleLocalVsGlobal) {
  // Locally (small radius) a long cycle has no minimal 2-cuts at all, hence
  // no interesting vertices; globally every vertex is interesting through
  // its opposite cut. This is the local/global gap the radius constants
  // m3.3 are tuned around.
  const Graph g = graph::gen::cycle(40);
  EXPECT_TRUE(interesting_vertices(g, 4).empty());
  const auto global = globally_interesting_vertices(g);
  EXPECT_EQ(global.size(), 40u);
}

TEST(Interesting, AlmostInterestingWeaker) {
  const Graph g = graph::gen::theta_chain(4, 3);
  // Every interesting vertex is almost-interesting.
  for (Vertex v : globally_interesting_vertices(g)) {
    EXPECT_TRUE(is_almost_interesting(g, v));
  }
}

TEST(Interesting, TrueTwinHubsNotInteresting) {
  // Single-link theta (K_{2,p} shape): hubs are true twins after adding the
  // hub edge? Without it, N[h0] = {h0, internals}, N[h1] = {h1, internals}:
  // incomparable, but G - {h0,h1} leaves p isolated internals all adjacent
  // to h1... every component consists of a single internal adjacent to both
  // hubs, so condition (2) fails.
  const Graph g = graph::gen::theta_chain(1, 4);
  EXPECT_TRUE(globally_interesting_vertices(g).empty());
}

}  // namespace
}  // namespace lmds::cuts
