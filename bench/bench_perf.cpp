// Hot-path perf bench: CSR-native view extraction and the intra-graph
// threading mode, against the reference (seed) implementations they must
// match bit-for-bit (tests/test_hotpath.cpp holds the differential proof;
// this bench holds the speed claim).
//
// Three runs:
//   * gather_flooded — flooded gather_views (radius 3) on a ~1k-vertex grid,
//     fast vs reference, both over every vertex;
//   * cut_views      — cut-view extraction on a --vertices grid (default
//     100k): the fast path over every vertex vs the reference extrapolated
//     from a --sample subset (the reference rebuilds a full graph per view —
//     running it at every vertex would take hours by design);
//   * intra_solve    — one ksv solve of the same grid through BatchExecutor,
//     intra_threads=1 vs intra_threads=hardware, cache bypassed, solutions
//     compared differentially.
//
//   $ ./bench_perf [--vertices N] [--threads N] [--sample N] [--check] [--json FILE]
//
// --check exits 1 unless cut-view extraction is >= 3x the reference rate and
// the intra-graph mode is >= 2x single-thread (the latter only judged when
// at least 2 workers resolve — a 1-core runner cannot speed anything up).
// --json writes runs[].graphs_per_sec for scripts/bench_regression.py and
// the BENCH_* artifact trail.

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "common/parallel.hpp"
#include "graph/generators.hpp"
#include "local/view.hpp"

namespace {

using namespace lmds;
using graph::Graph;
using graph::Vertex;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string json_num(double v, int precision) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, precision);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

struct Run {
  std::string name;
  double fast_per_sec = 0;  // views/sec or solves/sec on the optimized path
  double ref_per_sec = 0;   // same unit on the reference / single-thread arm
  double speedup = 0;
};

void append_run(std::string& runs_json, const Run& r) {
  if (!runs_json.empty()) runs_json += ",\n";
  runs_json += "    {\"name\": \"" + r.name +
               "\", \"graphs_per_sec\": " + json_num(r.fast_per_sec, 2) +
               ", \"reference_per_sec\": " + json_num(r.ref_per_sec, 2) +
               ", \"speedup\": " + json_num(r.speedup, 2) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  int vertices = 100'000;
  int threads = 0;  // 0 = hardware_concurrency
  int sample = 64;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--vertices") && i + 1 < argc) {
      vertices = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--sample") && i + 1 < argc) {
      sample = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_perf [--vertices N] [--threads N] [--sample N] "
                   "[--check] [--json FILE]\n");
      return 2;
    }
  }
  if (vertices < 64) vertices = 64;
  if (sample < 1) sample = 1;
  const int workers = common::resolve_thread_count(threads);

  std::string runs_json;
  bool gate_failed = false;

  // -------------------------------------------------------------------- 1.
  // Flooded gather: small enough that the reference (per-vertex GraphBuilder
  // over the known edge set) finishes at every vertex.
  {
    const Graph g = graph::gen::grid(32, 32);
    const local::Network net(g);
    constexpr int kRadius = 3;
    constexpr int kIters = 3;

    const auto fast_start = std::chrono::steady_clock::now();
    for (int it = 0; it < kIters; ++it) {
      local::TrafficStats stats;
      (void)local::gather_views(net, kRadius, &stats);
    }
    const double fast_secs = seconds_since(fast_start) / kIters;

    const auto ref_start = std::chrono::steady_clock::now();
    {
      local::TrafficStats stats;
      (void)local::detail::gather_views_reference(net, kRadius, &stats);
    }
    const double ref_secs = seconds_since(ref_start);

    Run r;
    r.name = "gather_flooded";
    r.fast_per_sec = g.num_vertices() / fast_secs;
    r.ref_per_sec = g.num_vertices() / ref_secs;
    r.speedup = ref_secs / fast_secs;
    std::printf("gather_flooded  %6d vertices r=%d   fast %10.0f views/s   ref %10.0f views/s   %6.1fx\n",
                g.num_vertices(), kRadius, r.fast_per_sec, r.ref_per_sec, r.speedup);
    append_run(runs_json, r);
  }

  // -------------------------------------------------------------------- 2.
  // Cut-view extraction at scale: the fast path visits every vertex; the
  // reference is timed on `sample` evenly-spaced centres and extrapolated.
  int side = 1;
  while ((side + 1) * (side + 1) <= vertices) ++side;
  const Graph big = graph::gen::grid(side, side);
  const local::Network big_net(big);
  constexpr int kCutRadius = 3;
  {
    const auto fast_start = std::chrono::steady_clock::now();
    (void)local::cut_views(big_net, kCutRadius, /*threads=*/1);
    const double fast_secs = seconds_since(fast_start);

    const int probes = std::min(sample, big.num_vertices());
    const auto ref_start = std::chrono::steady_clock::now();
    for (int i = 0; i < probes; ++i) {
      const auto centre =
          static_cast<Vertex>(static_cast<long long>(i) * big.num_vertices() / probes);
      (void)local::detail::cut_view_reference(big_net, centre, kCutRadius);
    }
    const double ref_secs_per_view = seconds_since(ref_start) / probes;

    Run r;
    r.name = "cut_views";
    r.fast_per_sec = big.num_vertices() / fast_secs;
    r.ref_per_sec = 1.0 / ref_secs_per_view;
    r.speedup = r.fast_per_sec / r.ref_per_sec;
    std::printf("cut_views       %6d vertices r=%d   fast %10.0f views/s   ref %10.0f views/s   %6.1fx\n",
                big.num_vertices(), kCutRadius, r.fast_per_sec, r.ref_per_sec, r.speedup);
    append_run(runs_json, r);
    if (check && r.speedup < 3.0) {
      std::fprintf(stderr, "REGRESSION: cut-view extraction %.2fx reference (need >= 3x)\n",
                   r.speedup);
      gate_failed = true;
    }
  }

  // -------------------------------------------------------------------- 3.
  // Intra-graph threading: one huge solve through the executor, sequential
  // vs sharded, cache bypassed so both arms compute. The solutions must be
  // identical — the mode's whole contract.
  {
    api::Request req;
    api::BatchOptions opts;
    opts.threads = 1;
    api::BatchExecutor executor(opts);
    const Graph* graphs[] = {&big};

    const auto timed_solve = [&](int intra) {
      api::BatchOverrides over;
      over.bypass_cache = true;
      over.intra_graph_threads = intra;
      const auto start = std::chrono::steady_clock::now();
      auto responses = executor.run_batch("ksv", graphs, req, over);
      return std::pair{seconds_since(start), std::move(responses[0].solution)};
    };

    const auto [seq_secs, seq_solution] = timed_solve(1);
    const auto [par_secs, par_solution] = timed_solve(workers);
    if (seq_solution != par_solution) {
      std::fprintf(stderr,
                   "DIFFERENTIAL FAILURE: ksv solutions differ between intra_threads=1 "
                   "and intra_threads=%d\n",
                   workers);
      return 1;
    }

    Run r;
    r.name = "intra_solve";
    r.fast_per_sec = 1.0 / par_secs;
    r.ref_per_sec = 1.0 / seq_secs;
    r.speedup = seq_secs / par_secs;
    std::printf("intra_solve     %6d vertices ksv   1 thr %8.2f s      %2d thr %8.2f s      %6.1fx\n",
                big.num_vertices(), seq_secs, workers, par_secs, r.speedup);
    append_run(runs_json, r);
    if (check && workers >= 2 && r.speedup < 2.0) {
      std::fprintf(stderr,
                   "REGRESSION: intra-graph mode %.2fx single-thread with %d workers "
                   "(need >= 2x)\n",
                   r.speedup, workers);
      gate_failed = true;
    }
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"perf\",\n  \"vertices\": %d,\n  \"threads\": %d,\n"
                 "  \"runs\": [\n%s\n  ]\n}\n",
                 big.num_vertices(), workers, runs_json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return gate_failed ? 1 : 0;
}
