// E10 — engineering scaling (google-benchmark): wall-clock cost of the
// simulator's view gathering, the two paper algorithms, and the exact
// solvers that back the harness's ground truth. Not a paper artifact, but
// the cost model a downstream user of this library needs.

#include <benchmark/benchmark.h>

#include <random>

#include "core/algorithm1.hpp"
#include "core/theorem44.hpp"
#include "cuts/local_cuts.hpp"
#include "graph/generators.hpp"
#include "local/view.hpp"
#include "solve/exact_mds.hpp"
#include "solve/tree_dp.hpp"

namespace {

using namespace lmds;

void BM_GatherViews(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const graph::Graph g = graph::gen::theta_chain(links, 4);
  const local::Network net(g);
  for (auto _ : state) {
    local::TrafficStats stats;
    benchmark::DoNotOptimize(local::gather_views(net, 3, &stats));
  }
  state.SetComplexityN(g.num_vertices());
}
BENCHMARK(BM_GatherViews)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_Theorem44(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const graph::Graph g = graph::gen::theta_chain(links, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::theorem44_mds(g));
  }
  state.SetComplexityN(g.num_vertices());
}
BENCHMARK(BM_Theorem44)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_Algorithm1(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const graph::Graph g = graph::gen::theta_chain(links, 4);
  core::Algorithm1Config cfg;
  cfg.t = 5;
  cfg.radius1 = 3;
  cfg.radius2 = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::algorithm1(g, cfg));
  }
  state.SetComplexityN(g.num_vertices());
}
BENCHMARK(BM_Algorithm1)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_LocalOneCuts(benchmark::State& state) {
  const graph::Graph g = graph::gen::cycle(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cuts::local_one_cuts(g, 3));
  }
  state.SetComplexityN(g.num_vertices());
}
BENCHMARK(BM_LocalOneCuts)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_ExactMdsThetaChain(benchmark::State& state) {
  const graph::Graph g = graph::gen::theta_chain(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve::exact_mds(g));
  }
}
BENCHMARK(BM_ExactMdsThetaChain)->Arg(4)->Arg(8)->Arg(12);

void BM_TreeDp(benchmark::State& state) {
  std::mt19937_64 rng(99);
  const graph::Graph g = graph::gen::random_tree(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve::tree_mds(g));
  }
  state.SetComplexityN(g.num_vertices());
}
BENCHMARK(BM_TreeDp)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

}  // namespace

BENCHMARK_MAIN();
