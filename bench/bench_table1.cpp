// E1 — regenerates Table 1 of the paper: constant-round distributed MDS
// approximation across H-minor-free classes. Every row is now *data* — a
// registry solver name, its options and the row's instance list — executed
// through the uniform api::Registry::run_batch() surface, so adding an
// algorithm to the registry is all it takes to make it benchable here.
//
// Substitutions (DESIGN.md): the K_{s,t} / K_t rows of the paper cite
// Heydt et al. [12] and Kublenz-Siebertz-Vigny [18]; we run our KSV-style
// baseline as their representative. The outerplanar row runs the paper's own
// Theorem 4.4 (its generalisation of [4]).

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "ding/generators.hpp"
#include "graph/generators.hpp"

namespace {

using namespace lmds;
using graph::Graph;

struct Row {
  const char* klass;
  const char* label;
  const char* solver;  // registry key
  api::Options options;
  const char* paper_ratio;
  const char* paper_rounds;
  std::vector<Graph> graphs;
};

}  // namespace

int main() {
  std::mt19937_64 rng(20250610);
  const auto& registry = api::Registry::instance();

  std::vector<Row> rows;

  // --- trees (K3): folklore degree rule ---------------------------------
  {
    Row row{"trees (K_3)", "degree >= 2 rule", "tree-rule", {}, "3", "2", {}};
    for (int trial = 0; trial < 5; ++trial) {
      row.graphs.push_back(graph::gen::random_tree(400, rng));
    }
    rows.push_back(std::move(row));
  }

  // --- outerplanar (K4, K_{2,3}): Theorem 4.4 with t = 3 -----------------
  {
    Row row{"outerplanar (K_{2,3})", "Thm 4.4 (2t-1, t=3)", "theorem44", {}, "5", "2", {}};
    for (int trial = 0; trial < 5; ++trial) {
      row.graphs.push_back(graph::gen::random_outerplanar(60, 0.5, rng));
    }
    rows.push_back(std::move(row));
  }

  // --- planar (K5, K_{3,3}): KSV-style baseline --------------------------
  {
    Row row{"planar (K_5)", "KSV-style (for [12])", "ksv", {{"k", 3}}, "11+eps", "O(1)", {}};
    for (int trial = 0; trial < 3; ++trial) {
      row.graphs.push_back(graph::gen::apollonian(90, rng));
    }
    for (int trial = 0; trial < 2; ++trial) {
      row.graphs.push_back(graph::gen::grid(9, 12));
    }
    rows.push_back(std::move(row));
  }

  // --- K_{1,t}: take everything ------------------------------------------
  {
    const int t = 6;
    Row row{"K_{1,6}", "take all", "take-all", {}, "t = 6", "0", {}};
    for (int trial = 0; trial < 5; ++trial) {
      row.graphs.push_back(graph::gen::random_max_degree(60, t - 1, 30, rng));
    }
    rows.push_back(std::move(row));
  }

  // --- K_{2,t}: Theorem 4.4 and Algorithm 1 on the same instances --------
  {
    const int t = 6;
    std::vector<Graph> instances;
    for (int links : {6, 10}) {
      instances.push_back(graph::gen::theta_chain(links, t - 1));
    }
    ding::CactusConfig cfg;
    cfg.pieces = 10;
    cfg.t = t;
    for (int trial = 0; trial < 3; ++trial) {
      instances.push_back(ding::random_cactus_of_structures(cfg, rng));
    }
    rows.push_back(
        {"K_{2,6}", "Thm 4.4 (2t-1)", "theorem44", {}, "11", "3", instances});
    rows.push_back({"K_{2,6}",
                    "Algorithm 1 (Thm 4.1)",
                    "algorithm1",
                    {{"t", t}, {"radius1", 4}, {"radius2", 4}},
                    "50 (51)",
                    "O_t(1)",
                    std::move(instances)});
  }

  // --- K_t (via planar = K_5-minor-free): KSV-style ----------------------
  {
    Row row{"K_5 (for K_t row)", "KSV-style (for [18])", "ksv", {{"k", 4}}, "t^O(..)",
            "O(1)",  {}};
    for (int trial = 0; trial < 3; ++trial) {
      row.graphs.push_back(graph::gen::apollonian(80, rng));
    }
    rows.push_back(std::move(row));
  }

  std::printf("Table 1 reproduction — constant-round MDS approximation on minor-free classes\n");
  std::printf("(measured ratio = worst over instances vs exact MDS; * marks lower-bound refs)\n\n");
  std::printf("%-22s %-24s %-12s %-8s %9s %7s\n", "class (excluded minor)", "algorithm",
              "paper ratio", "rounds", "measured", "rounds");
  std::printf("%s\n", std::string(96, '-').c_str());

  for (const Row& row : rows) {
    api::Request req;
    req.options = row.options;
    req.measure_ratio = true;
    const auto responses =
        registry.run_batch(row.solver, {row.graphs.data(), row.graphs.size()}, req);

    double worst_ratio = 0;
    int rounds = 0;
    bool all_valid = true;
    bool exact = true;
    for (const api::Response& res : responses) {
      worst_ratio = std::max(worst_ratio, res.ratio.ratio);
      rounds = std::max(rounds, res.diag.rounds);
      all_valid = all_valid && res.valid;
      exact = exact && res.ratio.exact;
    }
    std::printf("%-22s %-24s %-12s %-8s %8.2f%s %7d    %s\n", row.klass, row.label,
                row.paper_ratio, row.paper_rounds, worst_ratio, exact ? " " : "*", rounds,
                all_valid ? "ok" : "INVALID");
  }

  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf(
      "\nShape check (what the paper claims): the Thm 4.4 row pays ~2t-1 on adversarial\n"
      "K_{2,t} inputs while Algorithm 1 stays small and t-independent; folklore rows meet\n"
      "their stated constants. Paper ratio \"50 (51)\" reflects the printed-constant sum\n"
      "c3.2(1)+c3.3(1)+1 = 51 vs the claimed 50 (see EXPERIMENTS.md).\n");
  return 0;
}
