// E1 — regenerates Table 1 of the paper: constant-round distributed MDS
// approximation across H-minor-free classes. For every row we run the row's
// algorithm on generated instances of the row's class and report the paper's
// guarantee next to the worst measured ratio and the measured LOCAL rounds.
//
// Substitutions (DESIGN.md): the K_{s,t} / K_t rows of the paper cite
// Heydt et al. [12] and Kublenz-Siebertz-Vigny [18]; we run our KSV-style
// baseline as their representative. The outerplanar row runs the paper's own
// Theorem 4.4 (its generalisation of [4]).

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/algorithm1.hpp"
#include "core/baselines.hpp"
#include "core/metrics.hpp"
#include "core/theorem44.hpp"
#include "ding/generators.hpp"
#include "graph/generators.hpp"
#include "solve/validate.hpp"

namespace {

using namespace lmds;
using graph::Graph;
using graph::Vertex;

struct RowResult {
  double worst_ratio = 0;
  int rounds = 0;
  bool all_valid = true;
  bool exact = true;
};

void accumulate(RowResult& row, const Graph& g, const std::vector<Vertex>& solution,
                int rounds) {
  const auto report = core::measure_mds_ratio(g, solution);
  row.worst_ratio = std::max(row.worst_ratio, report.ratio);
  row.rounds = std::max(row.rounds, rounds);
  row.all_valid = row.all_valid && solve::is_dominating_set(g, solution);
  row.exact = row.exact && report.exact;
}

void print_row(const char* klass, const char* algorithm, const char* paper_ratio,
               const char* paper_rounds, const RowResult& row) {
  std::printf("%-22s %-24s %-12s %-8s %8.2f%s %7d    %s\n", klass, algorithm, paper_ratio,
              paper_rounds, row.worst_ratio, row.exact ? " " : "*", row.rounds,
              row.all_valid ? "ok" : "INVALID");
}

}  // namespace

int main() {
  std::mt19937_64 rng(20250610);
  std::printf("Table 1 reproduction — constant-round MDS approximation on minor-free classes\n");
  std::printf("(measured ratio = worst over instances vs exact MDS; * marks lower-bound refs)\n\n");
  std::printf("%-22s %-24s %-12s %-8s %9s %7s\n", "class (excluded minor)", "algorithm",
              "paper ratio", "rounds", "measured", "rounds");
  std::printf("%s\n", std::string(96, '-').c_str());

  // --- trees (K3): folklore degree rule ---------------------------------
  {
    RowResult row;
    for (int trial = 0; trial < 5; ++trial) {
      const Graph g = graph::gen::random_tree(400, rng);
      accumulate(row, g, core::tree_degree_rule(g), 2);
    }
    print_row("trees (K_3)", "degree >= 2 rule", "3", "2", row);
  }

  // --- outerplanar (K4, K_{2,3}): Theorem 4.4 with t = 3 -----------------
  {
    RowResult row;
    for (int trial = 0; trial < 5; ++trial) {
      const Graph g = graph::gen::random_outerplanar(60, 0.5, rng);
      const auto result = core::theorem44_mds(g);
      accumulate(row, g, result.solution, result.traffic.rounds);
    }
    print_row("outerplanar (K_{2,3})", "Thm 4.4 (2t-1, t=3)", "5", "2", row);
  }

  // --- planar (K5, K_{3,3}): KSV-style baseline --------------------------
  {
    RowResult row;
    for (int trial = 0; trial < 3; ++trial) {
      const Graph g = graph::gen::apollonian(90, rng);
      accumulate(row, g, core::ksv_style(g, 3), 4);
    }
    for (int trial = 0; trial < 2; ++trial) {
      const Graph g = graph::gen::grid(9, 12);
      accumulate(row, g, core::ksv_style(g, 3), 4);
    }
    print_row("planar (K_5)", "KSV-style (for [12])", "11+eps", "O(1)", row);
  }

  // --- K_{1,t}: take everything ------------------------------------------
  {
    const int t = 6;
    RowResult row;
    for (int trial = 0; trial < 5; ++trial) {
      const Graph g = graph::gen::random_max_degree(60, t - 1, 30, rng);
      accumulate(row, g, core::take_all(g), 0);
    }
    print_row("K_{1,6}", "take all", "t = 6", "0", row);
  }

  // --- K_{2,t}: Theorem 4.4 ----------------------------------------------
  {
    const int t = 6;
    RowResult row;
    for (int links : {6, 10}) {
      const Graph g = graph::gen::theta_chain(links, t - 1);
      const auto result = core::theorem44_mds(g);
      accumulate(row, g, result.solution, result.traffic.rounds);
    }
    ding::CactusConfig cfg;
    cfg.pieces = 10;
    cfg.t = t;
    for (int trial = 0; trial < 3; ++trial) {
      const Graph g = ding::random_cactus_of_structures(cfg, rng);
      const auto result = core::theorem44_mds(g);
      accumulate(row, g, result.solution, result.traffic.rounds);
    }
    print_row("K_{2,6}", "Thm 4.4 (2t-1)", "11", "3", row);
  }

  // --- K_{2,t}: Algorithm 1 ----------------------------------------------
  {
    const int t = 6;
    RowResult row;
    core::Algorithm1Config cfg;
    cfg.t = t;
    cfg.radius1 = 4;
    cfg.radius2 = 4;
    for (int links : {6, 10}) {
      const Graph g = graph::gen::theta_chain(links, t - 1);
      const auto result = core::algorithm1(g, cfg);
      accumulate(row, g, result.dominating_set, result.diag.rounds);
    }
    ding::CactusConfig ccfg;
    ccfg.pieces = 10;
    ccfg.t = t;
    for (int trial = 0; trial < 3; ++trial) {
      const Graph g = ding::random_cactus_of_structures(ccfg, rng);
      const auto result = core::algorithm1(g, cfg);
      accumulate(row, g, result.dominating_set, result.diag.rounds);
    }
    print_row("K_{2,6}", "Algorithm 1 (Thm 4.1)", "50 (51)", "O_t(1)", row);
  }

  // --- K_t (via planar = K_5-minor-free): KSV-style ----------------------
  {
    RowResult row;
    for (int trial = 0; trial < 3; ++trial) {
      const Graph g = graph::gen::apollonian(80, rng);
      accumulate(row, g, core::ksv_style(g, 4), 4);
    }
    print_row("K_5 (for K_t row)", "KSV-style (for [18])", "t^O(..)", "O(1)", row);
  }

  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf(
      "\nShape check (what the paper claims): the Thm 4.4 row pays ~2t-1 on adversarial\n"
      "K_{2,t} inputs while Algorithm 1 stays small and t-independent; folklore rows meet\n"
      "their stated constants. Paper ratio \"50 (51)\" reflects the printed-constant sum\n"
      "c3.2(1)+c3.3(1)+1 = 51 vs the claimed 50 (see EXPERIMENTS.md).\n");
  return 0;
}
