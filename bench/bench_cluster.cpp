// Cluster scale-out gate: aggregate graphs/sec through a routed 2-worker
// cluster vs one worker, end-to-end through the real wire path (the router
// reaches its workers over TCP; the baseline worker is driven in-process,
// which only favors the baseline).
//
// The workload replaces solver compute with a FIXED PER-GRAPH SERVICE TIME
// (a bench-only registered solver that sleeps `service_us` then answers
// take-all): with compute held constant, the measured ratio is the router's
// fan-out concurrency — can it keep 2 workers busy at once? — independent of
// the host's core count, so the gate is meaningful on a 1-core CI runner
// and a 64-core dev box alike. Each batch is pre-balanced across the ring
// (half its unique graphs hash to each worker), every worker runs a single
// executor thread, and response caching is disabled, so a perfect router
// answers a batch in half the single worker's wall time.
//
//   $ ./bench_cluster [--batches N] [--batch-size N] [--service-us N]
//                     [--check] [--json FILE]
//
// --check exits 1 unless the 2-worker cluster clears 1.7x the single-worker
// rate — the regression gate CI runs (acceptance criterion of the cluster
// subsystem; perfect fan-out is 2.0x, 1.7x absorbs routing overhead and CI
// noise). --json writes the measurements for the BENCH_* artifact trail.

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "cluster/hash_ring.hpp"
#include "cluster/router.hpp"
#include "graph/generators.hpp"
#include "graph/hash.hpp"
#include "server/json.hpp"
#include "server/server.hpp"

namespace {

using namespace lmds;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string json_num(double v, int precision) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, precision);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

/// The bench-only solver: a fixed service time, then the (always valid)
/// take-all dominating set. Registered at startup; the workers share this
/// process, so every server in the topology can answer it.
void register_service_solver() {
  api::Registry::instance().add(
      {.name = "bench-service",
       .problem = api::Problem::Mds,
       .modes = {api::Mode::Centralized},
       .summary = "bench_cluster only: sleep service_us, answer all vertices",
       .params = {{"service_us", 2000, "fixed per-graph service time (microseconds)"}},
       .locality_radius = -1},
      [](const api::SolveContext& ctx) {
        const auto it = ctx.params.find("service_us");
        std::this_thread::sleep_for(std::chrono::microseconds(it->second.as_int()));
        api::SolverOutput out;
        out.solution.resize(static_cast<std::size_t>(ctx.graph.num_vertices()));
        std::iota(out.solution.begin(), out.solution.end(), 0);
        out.diag.rounds = 0;
        return out;
      });
}

server::ServerOptions worker_options() {
  server::ServerOptions opts;
  opts.port = 0;                // ephemeral
  opts.core.batch.threads = 1;  // serial per worker: fan-out is the only win
  opts.core.batch.shard_size = 1;
  opts.core.batch.cache_capacity = 64;
  opts.core.snapshot_dir.clear();
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  int batches = 6;
  int batch_size = 32;
  int service_us = 2000;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--batches") && i + 1 < argc) {
      batches = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--batch-size") && i + 1 < argc) {
      batch_size = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--service-us") && i + 1 < argc) {
      service_us = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_cluster [--batches N] [--batch-size N] [--service-us N]\n"
                   "                     [--check] [--json FILE]\n");
      return 2;
    }
  }
  if (batches < 1) batches = 1;
  if (batch_size < 2) batch_size = 2;
  if (batch_size % 2) ++batch_size;  // half per worker
  if (service_us < 100) service_us = 100;

  register_service_solver();

  // Two TCP workers for the router, one in-process worker as the baseline.
  server::Server worker_a(worker_options());
  server::Server worker_b(worker_options());
  worker_a.bind_and_listen();
  worker_b.bind_and_listen();
  std::thread serve_a([&] { worker_a.serve(); });
  std::thread serve_b([&] { worker_b.serve(); });
  server::Server single(worker_options());

  cluster::RouterOptions ropts;
  ropts.peers = {"127.0.0.1:" + std::to_string(worker_a.port()),
                 "127.0.0.1:" + std::to_string(worker_b.port())};
  server::Server router_front(worker_options());
  cluster::Router router(ropts, router_front.core());
  router.install();

  // Pre-balance every batch: unique path graphs, picked so exactly half hash
  // to each worker. An unbalanced batch would measure ring luck, not fan-out.
  const cluster::HashRing ring(ropts.peers, ropts.vnodes);
  std::vector<std::string> batch_lines;
  const std::string prefix =
      "{\"op\":\"solve\",\"solver\":\"bench-service\",\"options\":{\"service_us\":" +
      std::to_string(service_us) + "},\"batch\":{\"no_cache\":true},\"graphs\":[";
  int next_n = 4;
  for (int b = 0; b < batches; ++b) {
    std::vector<std::string> slots;
    int per_owner[2] = {0, 0};
    while (static_cast<int>(slots.size()) < batch_size) {
      const graph::Graph g = graph::gen::path(next_n++);
      const std::size_t owner = ring.owner_index(graph::graph_hash(g));
      if (per_owner[owner] >= batch_size / 2) continue;
      ++per_owner[owner];
      slots.push_back(server::encode_graph_json(g));
    }
    std::string line = prefix;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (i) line += ',';
      line += slots[i];
    }
    batch_lines.push_back(line + "]}");
  }

  const auto drive = [&](server::Server& srv, const char* what) {
    // One untimed warmup batch dials connections and pools them.
    const std::string warm = prefix + server::encode_graph_json(graph::gen::path(3)) + "]}";
    if (srv.handle_line(warm).find("\"ok\":true") == std::string::npos) {
      std::fprintf(stderr, "bench_cluster: %s warmup failed\n", what);
      std::exit(1);
    }
    const auto start = std::chrono::steady_clock::now();
    for (const std::string& line : batch_lines) {
      const std::string response = srv.handle_line(line);
      if (response.find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "bench_cluster: %s solve failed: %s\n", what,
                     response.substr(0, 200).c_str());
        std::exit(1);
      }
    }
    return seconds_since(start);
  };

  const int total_graphs = batches * batch_size;
  const double single_secs = drive(single, "single worker");
  const double routed_secs = drive(router_front, "routed cluster");
  const double single_rate = total_graphs / single_secs;
  const double routed_rate = total_graphs / routed_secs;
  const double speedup = routed_rate / single_rate;

  worker_a.request_stop();
  worker_b.request_stop();
  serve_a.join();
  serve_b.join();

  std::printf("Cluster scale-out — %d batches x %d graphs, %dus service time per graph\n\n",
              batches, batch_size, service_us);
  std::printf("%-22s %10s %14s\n", "topology", "seconds", "graphs/sec");
  std::printf("%s\n", std::string(48, '-').c_str());
  std::printf("%-22s %10.4f %14.1f\n", "1 worker", single_secs, single_rate);
  std::printf("%-22s %10.4f %14.1f\n", "router + 2 workers", routed_secs, routed_rate);
  std::printf("\n2-worker aggregate speedup: %.2fx (perfect fan-out: 2.00x)\n", speedup);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"cluster\",\n  \"batches\": %d,\n"
                 "  \"batch_size\": %d,\n  \"service_us\": %d,\n"
                 "  \"runs\": [\n"
                 "    {\"name\": \"single_worker\", \"graphs_per_sec\": %s},\n"
                 "    {\"name\": \"routed_2_workers\", \"graphs_per_sec\": %s}\n"
                 "  ],\n  \"cluster_speedup\": %s\n}\n",
                 batches, batch_size, service_us, json_num(single_rate, 2).c_str(),
                 json_num(routed_rate, 2).c_str(), json_num(speedup, 3).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (check && speedup < 1.7) {
    std::fprintf(stderr,
                 "REGRESSION: routed 2-worker cluster is only %.2fx one worker (need >= 1.7x)\n",
                 speedup);
    return 1;
  }
  return 0;
}
