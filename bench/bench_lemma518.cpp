// E8 — Figures 1 and 2 illustrate the proof of Lemma 5.18: in a
// K_{2,t}-minor-free graph split as A ⊔ B with A independent and every
// A-vertex of degree >= 2, |A| <= (t-1)|B| (red-edge contraction argument).
// This bench executes the quantity the figures reason about: it grows A
// greedily against random cores while staying K_{2,t}-minor-free, and
// reports the achieved |A| / |B| against the (t-1) ceiling; then it chains
// theta bundles to show the ceiling is asymptotically approached.

#include <cstdio>
#include <random>
#include <string>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "minor/k2t.hpp"
#include "solve/exact_mds.hpp"

int main() {
  using namespace lmds;
  std::mt19937_64 rng(518518);

  std::printf("Lemma 5.18 — |A| <= (t-1)|B| for bipartite-minor shapes\n\n");
  std::printf("random cores (|B| = 8, greedy A growth, 60 attempts each):\n");
  std::printf("%4s %8s %8s %12s %10s\n", "t", "|A|", "(t-1)|B|", "|A|/|B|", "margin");
  std::printf("%s\n", std::string(48, '-').c_str());

  for (int t = 3; t <= 6; ++t) {
    const int b_size = 8;
    double worst_fill = 0;
    int worst_a = 0;
    for (int trial = 0; trial < 3; ++trial) {
      const graph::Graph core_graph = graph::gen::random_connected(b_size, 5, rng);
      graph::GraphBuilder builder(b_size);
      for (const graph::Edge e : core_graph.edges()) builder.add_edge(e.u, e.v);
      std::uniform_int_distribution<graph::Vertex> pick(0, b_size - 1);
      int a_size = 0;
      for (int attempt = 0; attempt < 60; ++attempt) {
        const graph::Vertex x = pick(rng);
        const graph::Vertex y = pick(rng);
        if (x == y) continue;
        graph::GraphBuilder trial_builder = builder;
        const graph::Vertex fresh = static_cast<graph::Vertex>(b_size + a_size);
        trial_builder.add_edge(fresh, x);
        trial_builder.add_edge(fresh, y);
        const graph::Graph candidate = trial_builder.build();
        if (minor::is_k2t_minor_free(candidate, t, 2)) {
          builder = trial_builder;
          ++a_size;
        }
      }
      const double fill = static_cast<double>(a_size) / b_size;
      if (fill > worst_fill) {
        worst_fill = fill;
        worst_a = a_size;
      }
    }
    std::printf("%4d %8d %8d %12.2f %9.0f%%\n", t, worst_a, (t - 1) * 8, worst_fill,
                100.0 * worst_fill / (t - 1));
  }

  std::printf("\nextremal chains (theta bundles: every internal vertex is an A-vertex):\n");
  std::printf("%4s %8s %8s %8s %12s\n", "t", "links", "|A|", "|B|", "|A|/|B|");
  std::printf("%s\n", std::string(48, '-').c_str());
  for (int t = 3; t <= 7; ++t) {
    const int links = 12;
    const graph::Graph g = graph::gen::theta_chain(links, t - 1);
    const int a = links * (t - 1);
    const int b = links + 1;
    std::printf("%4d %8d %8d %8d %12.2f   (ceiling %d)\n", t, links, a, b,
                static_cast<double>(a) / b, t - 1);
  }
  std::printf("\nExpected shape: the chained bundles push |A|/|B| towards the (t-1)\n"
              "ceiling as the chain grows — the bound of Lemma 5.18 is asymptotically\n"
              "tight, which is why Theorem 4.4's ratio is genuinely Θ(t).\n");
  return 0;
}
