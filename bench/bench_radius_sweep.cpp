// E3 — the "constants are tricky" figure: Algorithm 1's behaviour as a
// function of the local-cut radius. The paper's radii m3.2 = 43t+2 and
// m3.3 = 73t+5 are far beyond any simulable diameter; this sweep charts
// what actually happens between radius 1 and "effectively global":
// the sets X (local 1-cuts) and I (interesting) shift work between the cut
// steps and the brute-force step, ratio stays valid throughout, and rounds
// grow linearly with the radius.
//
// Runs through api::Registry — the radius knobs travel as Request options
// and the ratio comes back on the Response, so this bench exercises exactly
// the surface a serving deployment would.

#include <cstdio>
#include <string>

#include "api/registry.hpp"
#include "graph/generators.hpp"

namespace {

void sweep(const lmds::graph::Graph& g, const char* label, int t) {
  using namespace lmds;
  const auto& registry = api::Registry::instance();
  std::printf("%s (n = %d, t = %d)\n", label, g.num_vertices(), t);
  std::printf("%6s %8s %6s %6s %8s %10s %8s %8s\n", "radius", "|S|", "|X|", "|I|", "brute",
              "res.diam", "rounds", "ratio");
  for (const int r : {1, 2, 3, 4, 6, 8, 12}) {
    api::Request req;
    req.graph = &g;
    req.options["t"] = t;
    req.options["radius1"] = r;
    req.options["radius2"] = r;
    req.measure_ratio = true;
    const api::Response res = registry.run("algorithm1", req);
    std::printf("%6d %8zu %6zu %6zu %8zu %10d %8d %8.2f\n", r, res.solution.size(),
                res.diag.one_cuts.size(), res.diag.two_cut_vertices.size(),
                res.diag.brute_forced.size(), res.diag.max_residual_diameter,
                res.diag.rounds, res.ratio.ratio);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lmds;
  std::printf("Algorithm 1 radius sweep (radius1 = radius2 = r)\n\n");
  sweep(graph::gen::theta_chain(10, 4), "theta chain", 5);
  sweep(graph::gen::cycle(48), "long cycle", 3);
  sweep(graph::gen::clique_with_pendants(12), "clique with pendants (Section 4 example)", 12);
  std::printf("Reading: small radii find few local cuts and lean on brute force\n"
              "(larger residual diameter, fewer rounds); larger radii converge to the\n"
              "global cut structure. The output stays a valid dominating set at every r.\n");
  return 0;
}
