// E3 — the "constants are tricky" figure: Algorithm 1's behaviour as a
// function of the local-cut radius. The paper's radii m3.2 = 43t+2 and
// m3.3 = 73t+5 are far beyond any simulable diameter; this sweep charts
// what actually happens between radius 1 and "effectively global":
// the sets X (local 1-cuts) and I (interesting) shift work between the cut
// steps and the brute-force step, ratio stays valid throughout, and rounds
// grow linearly with the radius.

#include <cstdio>
#include <string>

#include "core/algorithm1.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"

namespace {

void sweep(const lmds::graph::Graph& g, const char* label, int t) {
  using namespace lmds;
  std::printf("%s (n = %d, t = %d)\n", label, g.num_vertices(), t);
  std::printf("%6s %8s %6s %6s %8s %10s %8s %8s\n", "radius", "|S|", "|X|", "|I|", "brute",
              "res.diam", "rounds", "ratio");
  for (const int r : {1, 2, 3, 4, 6, 8, 12}) {
    core::Algorithm1Config cfg;
    cfg.t = t;
    cfg.radius1 = r;
    cfg.radius2 = r;
    const auto result = core::algorithm1(g, cfg);
    const auto ratio = core::measure_mds_ratio(g, result.dominating_set);
    std::printf("%6d %8zu %6zu %6zu %8zu %10d %8d %8.2f\n", r, result.dominating_set.size(),
                result.diag.one_cuts.size(), result.diag.interesting.size(),
                result.diag.brute_forced.size(), result.diag.max_residual_diameter,
                result.diag.rounds, ratio.ratio);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lmds;
  std::printf("Algorithm 1 radius sweep (radius1 = radius2 = r)\n\n");
  sweep(graph::gen::theta_chain(10, 4), "theta chain", 5);
  sweep(graph::gen::cycle(48), "long cycle", 3);
  sweep(graph::gen::clique_with_pendants(12), "clique with pendants (Section 4 example)", 12);
  std::printf("Reading: small radii find few local cuts and lean on brute force\n"
              "(larger residual diameter, fewer rounds); larger radii converge to the\n"
              "global cut structure. The output stays a valid dominating set at every r.\n");
  return 0;
}
