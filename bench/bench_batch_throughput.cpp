// E11 — batch serving throughput: graphs/sec of the sharded parallel
// run_batch vs worker count, plus the response-cache effect on a repeated
// batch. The LOCAL model is parallel per vertex; at the serving layer the
// exploitable parallelism is *across graphs* of a batch, which is what a
// deployment answering many small queries cares about (cf. Table 1: many
// instances, one request shape).
//
//   $ ./bench_batch_throughput [--preset small|full] [--json FILE]
//
// Every multi-threaded pass is checked element-wise against the threads=1
// responses (the executor's determinism guarantee), so this bench doubles as
// a stress test. With --json the measurements land in FILE for the CI
// artifact trail (BENCH_*.json).

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "ding/generators.hpp"
#include "graph/generators.hpp"

namespace {

using namespace lmds;
using graph::Graph;

std::vector<Graph> workload(bool small) {
  std::mt19937_64 rng(20250727);
  const int repeat = small ? 2 : 6;
  std::vector<Graph> gs;
  for (int rep = 0; rep < repeat; ++rep) {
    for (const int links : {6, 9, 12}) gs.push_back(graph::gen::theta_chain(links, 4));
    gs.push_back(graph::gen::grid(6, small ? 8 : 12));
    gs.push_back(graph::gen::clique_with_pendants(small ? 10 : 14));
    gs.push_back(graph::gen::random_tree(small ? 80 : 160, rng));
    gs.push_back(graph::gen::random_outerplanar(small ? 40 : 70, 0.5, rng));
    gs.push_back(graph::gen::apollonian(small ? 40 : 70, rng));
    ding::CactusConfig cc;
    cc.pieces = small ? 8 : 12;
    cc.t = 6;
    gs.push_back(ding::random_cactus_of_structures(cc, rng));
  }
  return gs;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Locale-independent fixed-point formatting for the JSON artifact: fprintf's
// "%f" obeys LC_NUMERIC, so under e.g. de_DE it writes "0,125" and corrupts
// BENCH_*.json; std::to_chars always emits '.'.
std::string json_num(double v, int precision) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, precision);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

}  // namespace

int main(int argc, char** argv) {
  bool small = true;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--preset") && i + 1 < argc) {
      small = std::string(argv[++i]) != "full";
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_batch_throughput [--preset small|full] [--json FILE]\n");
      return 2;
    }
  }

  const auto& registry = api::Registry::instance();
  const std::vector<Graph> graphs = workload(small);
  const char* solver = "algorithm1";
  api::Request req;
  req.options["t"] = 6;
  req.options["radius1"] = 3;
  req.options["radius2"] = 3;

  std::printf("Batch throughput — %s x %zu graphs (preset %s), shard_size 2\n\n", solver,
              graphs.size(), small ? "small" : "full");
  std::printf("%8s %10s %12s %10s %8s %8s\n", "threads", "seconds", "graphs/sec", "speedup",
              "shards", "stolen");
  std::printf("%s\n", std::string(62, '-').c_str());

  struct Run {
    int threads;
    double seconds;
    double rate;
  };
  std::vector<Run> runs;
  std::vector<api::Response> reference;
  for (const int threads : {1, 2, 4, 8}) {
    api::BatchOptions opts;
    opts.threads = threads;
    opts.shard_size = 2;
    api::BatchDiagnostics diag;
    const auto start = std::chrono::steady_clock::now();
    const auto responses =
        registry.run_batch(solver, {graphs.data(), graphs.size()}, req, opts, &diag);
    const double secs = seconds_since(start);
    if (threads == 1) {
      reference = responses;
    } else if (responses != reference) {
      std::fprintf(stderr, "DETERMINISM VIOLATION at threads=%d\n", threads);
      return 1;
    }
    const double rate = static_cast<double>(graphs.size()) / secs;
    runs.push_back({threads, secs, rate});
    std::printf("%8d %10.3f %12.1f %9.2fx %8d %8llu\n", threads, secs, rate,
                rate / runs.front().rate, diag.shards,
                static_cast<unsigned long long>(diag.stolen_shards));
  }

  // Response cache: a second identical batch should be all hits.
  api::BatchOptions copts;
  copts.threads = 4;
  copts.shard_size = 2;
  copts.cache_capacity = graphs.size();
  api::BatchExecutor executor(copts);
  api::BatchDiagnostics cold;
  api::BatchDiagnostics warm;
  const auto start_cold = std::chrono::steady_clock::now();
  (void)executor.run_batch(solver, {graphs.data(), graphs.size()}, req, &cold);
  const double cold_secs = seconds_since(start_cold);
  const auto start_warm = std::chrono::steady_clock::now();
  const auto warm_responses =
      executor.run_batch(solver, {graphs.data(), graphs.size()}, req, &warm);
  const double warm_secs = seconds_since(start_warm);
  if (warm_responses != reference) {
    std::fprintf(stderr, "CACHE VIOLATION: warm responses differ from uncached run\n");
    return 1;
  }
  std::printf("\nresponse cache (capacity %zu): cold %.3fs (%llu misses), warm %.3fs "
              "(%llu hits, %.0fx)\n",
              copts.cache_capacity, cold_secs,
              static_cast<unsigned long long>(cold.cache_misses), warm_secs,
              static_cast<unsigned long long>(warm.cache_hits), cold_secs / warm_secs);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"batch_throughput\",\n  \"preset\": \"%s\",\n"
                 "  \"solver\": \"%s\",\n  \"graphs\": %zu,\n  \"runs\": [",
                 small ? "small" : "full", solver, graphs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(f, "%s\n    {\"threads\": %d, \"seconds\": %s, \"graphs_per_sec\": %s, "
                      "\"speedup_vs_1\": %s}",
                   i ? "," : "", runs[i].threads, json_num(runs[i].seconds, 6).c_str(),
                   json_num(runs[i].rate, 2).c_str(),
                   json_num(runs[i].rate / runs.front().rate, 3).c_str());
    }
    std::fprintf(f,
                 "\n  ],\n  \"cache\": {\"cold_seconds\": %s, \"warm_seconds\": %s, "
                 "\"hits\": %llu, \"misses\": %llu}\n}\n",
                 json_num(cold_secs, 6).c_str(), json_num(warm_secs, 6).c_str(),
                 static_cast<unsigned long long>(warm.cache_hits),
                 static_cast<unsigned long long>(cold.cache_misses));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nReading: speedup tracks min(threads, cores) while per-graph work dominates\n"
              "shard bookkeeping; the warm pass costs only graph hashing + map lookups.\n");
  return 0;
}
