// E4 + E5 — the charging constants of Lemmas 3.2 and 3.3: measured
// #(local 1-cuts)/MDS against c3.2(1) = 6, and measured
// #(interesting vertices)/MDS against c3.3(1) = 44, across the certified
// instance families (asymptotic dimension d = 1 for all of them).
// The long-cycle family shows where the 1-cut constant is genuinely tight
// (all n vertices are local 1-cuts while MDS = n/3: ratio -> 3).

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "cuts/interesting.hpp"
#include "cuts/local_cuts.hpp"
#include "ding/generators.hpp"
#include "ding/structures.hpp"
#include "graph/generators.hpp"
#include "solve/exact_mds.hpp"

int main() {
  using namespace lmds;
  std::mt19937_64 rng(424242);

  struct Family {
    graph::Graph g;
    std::string label;
  };
  std::vector<Family> families;
  families.push_back({graph::gen::cycle(45), "cycle C45"});
  families.push_back({graph::gen::cycle(90), "cycle C90"});
  families.push_back({graph::gen::theta_chain(10, 4), "theta(10,4)"});
  families.push_back({graph::gen::caterpillar(12, 2), "caterpillar(12,2)"});
  families.push_back({graph::gen::random_tree(80, rng), "random tree n=80"});
  families.push_back({graph::gen::random_maximal_outerplanar(40, rng), "outerplanar n=40"});
  families.push_back({ding::fan(20), "fan(20)"});
  families.push_back({ding::strip(12), "strip(12)"});
  families.push_back({graph::gen::clique_with_pendants(12), "clique+pendants(12)"});
  {
    ding::CactusConfig cfg;
    cfg.pieces = 12;
    cfg.t = 5;
    families.push_back({ding::random_cactus_of_structures(cfg, rng), "cactus t=5"});
  }

  const int radius = 4;  // stands in for the paper constants (>> diameter here)
  std::printf("Charging constants (radius %d local cuts; d = 1)\n\n", radius);
  std::printf("%-24s %5s %5s | %8s %12s | %8s %12s\n", "family", "n", "MDS", "1-cuts",
              "ratio (<=6)", "interest", "ratio (<=44)");
  std::printf("%s\n", std::string(88, '-').c_str());

  double worst_one = 0;
  double worst_int = 0;
  for (const auto& family : families) {
    const int mds = solve::mds_size(family.g);
    const int ones = static_cast<int>(cuts::local_one_cuts(family.g, radius).size());
    const int interesting = static_cast<int>(cuts::interesting_vertices(family.g, radius).size());
    const double r1 = static_cast<double>(ones) / mds;
    const double r2 = static_cast<double>(interesting) / mds;
    worst_one = std::max(worst_one, r1);
    worst_int = std::max(worst_int, r2);
    std::printf("%-24s %5d %5d | %8d %12.2f | %8d %12.2f\n", family.label.c_str(),
                family.g.num_vertices(), mds, ones, r1, interesting, r2);
  }
  std::printf("%s\n", std::string(88, '-').c_str());
  std::printf("worst measured: 1-cuts/MDS = %.2f (bound 6), interesting/MDS = %.2f (bound 44)\n",
              worst_one, worst_int);
  std::printf("\nThe paper did not optimise c3.2/c3.3; the measured constants sit well\n"
              "inside the bounds, with cycles pinning the 1-cut ratio near 3.\n");
  return 0;
}
