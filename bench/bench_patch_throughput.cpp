// Protocol v2.1 — incremental vs full re-solve across churn rates, measured
// end-to-end through the Session core exactly as both transports run it:
// put a large grid once, prime its cached response, then for each churn
// level derive patched handles (clustered "hotspot" edit batches — the
// realistic dynamic-graph shape: a failing region, not uniformly random
// noise) and time a solve against each derived handle twice:
//
//   * incremental — the executor splices the parent's cached response,
//     re-solving only the dirty balls around the edited edges;
//   * full — the same request with "batch":{"no_cache":true}, forcing the
//     from-scratch solve a server without lineage would run.
//
// Every incremental response is differentially compared against its full
// counterpart in-process — the bench doubles as a large-scale instance of
// the tests/test_patch.cpp differential suite.
//
//   $ ./bench_patch_throughput [--vertices N] [--iters N] [--solver S]
//                              [--check] [--json FILE]
//
// --check exits 1 unless the incremental path is at least 5x full-solve
// throughput at every churn level <= 1% — the acceptance gate CI runs.
// --json writes runs[].graphs_per_sec for scripts/bench_regression.py and
// the BENCH_* artifact trail.

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <queue>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace {

using namespace lmds;
using graph::Edge;
using graph::Graph;
using graph::Vertex;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string json_num(double v, int precision) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, precision);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

// A clustered edit batch: BFS out from a random center and delete the first
// `count` edges whose endpoints are both inside the visited region. Edits
// that cluster spatially keep the dirty set proportional to the churn — the
// regime the incremental path is designed for (uniform random edits at the
// same churn would scatter r-balls across the whole graph).
std::vector<Edge> hotspot_deletions(const Graph& g, std::mt19937_64& rng, int count) {
  const int n = g.num_vertices();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<Vertex> frontier;
  const auto center = static_cast<Vertex>(rng() % static_cast<std::uint64_t>(n));
  seen[static_cast<std::size_t>(center)] = 1;
  frontier.push(center);
  std::set<Edge> edits;
  while (!frontier.empty() && static_cast<int>(edits.size()) < count) {
    const Vertex u = frontier.front();
    frontier.pop();
    for (Vertex w : g.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        frontier.push(w);
      }
      edits.insert(u < w ? Edge{u, w} : Edge{w, u});
      if (static_cast<int>(edits.size()) >= count) break;
    }
  }
  return {edits.begin(), edits.end()};
}

struct SolveResult {
  std::vector<long long> solution;
  long long incremental_solves = 0;
  long long incremental_dirty = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int vertices = 100'000;
  int iters = 3;
  std::string solver = "ksv";
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--vertices") && i + 1 < argc) {
      vertices = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--iters") && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--solver") && i + 1 < argc) {
      solver = argv[++i];
    } else if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_patch_throughput [--vertices N] [--iters N] [--solver S] "
                   "[--check] [--json FILE]\n");
      return 2;
    }
  }
  if (vertices < 16) vertices = 16;
  if (iters < 1) iters = 1;

  int side = 1;
  while ((side + 1) * (side + 1) <= vertices) ++side;
  const Graph g = graph::gen::grid(side, side);

  server::ServerOptions opts;
  opts.core.batch.threads = 1;
  opts.core.batch.cache_capacity = 4096;
  opts.core.store_capacity = 4096;
  opts.core.snapshot_dir.clear();
  server::Server server(opts);

  const auto exchange = [&](const std::string& line) {
    const std::string response = server.handle_line(line);
    const server::JsonValue parsed = server::json_parse(response);
    if (!parsed.find("ok")->as_bool()) {
      std::fprintf(stderr, "request failed: %s\n", response.substr(0, 200).c_str());
      std::exit(1);
    }
    return parsed;
  };

  const server::JsonValue put = exchange("{\"op\":\"put_graph\",\"graph\":" +
                                         server::encode_graph_json(g) + "}");
  const std::string parent = put.find("handle")->as_string();

  const auto solve_line = [&](const std::string& handle, bool no_cache) {
    std::string line = "{\"op\":\"solve\",\"solver\":\"" + solver + "\"";
    if (no_cache) line += ",\"batch\":{\"no_cache\":true}";
    return line + ",\"graphs\":[\"" + handle + "\"]}";
  };
  const auto parse_solve = [&](const server::JsonValue& response) {
    SolveResult r;
    for (const server::JsonValue& v :
         response.find("responses")->as_array().at(0).find("solution")->as_array()) {
      r.solution.push_back(v.as_int());
    }
    const server::JsonValue* diag = response.find("diag");
    if (const server::JsonValue* s = diag->find("incremental_solves")) {
      r.incremental_solves = s->as_int();
      r.incremental_dirty = diag->find("incremental_dirty")->as_int();
    }
    return r;
  };

  // Prime the parent's cached response — the splice base of every
  // incremental solve below.
  (void)exchange(solve_line(parent, /*no_cache=*/false));

  static constexpr double kChurn[] = {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.10};
  std::printf("Patch throughput — %d-vertex grid (%d edges), solver %s, %d patches/level\n\n",
              g.num_vertices(), g.num_edges(), solver.c_str(), iters);
  std::printf("%8s %8s %10s %12s %12s %10s %10s\n", "churn", "edits", "dirty", "incr s/req",
              "full s/req", "incr/sec", "speedup");
  std::printf("%s\n", std::string(76, '-').c_str());

  std::mt19937_64 rng(0xBE7C'9A11);
  std::string runs_json;
  bool gate_failed = false;
  for (const double churn : kChurn) {
    const int edits = std::max(1, static_cast<int>(churn * g.num_edges()));

    // Derive `iters` distinct hotspot children for this churn level.
    std::vector<std::string> children;
    while (static_cast<int>(children.size()) < iters) {
      graph::GraphPatch patch;
      patch.del = hotspot_deletions(g, rng, edits);
      if (patch.del.empty()) continue;
      const server::JsonValue patched = exchange(
          "{\"op\":\"patch_graph\",\"handle\":\"" + parent + "\"," +
          server::encode_patch_members(patch) + "}");
      children.push_back(patched.find("handle")->as_string());
    }

    // Incremental arm: each child's first solve is a top-level miss answered
    // by the ball-granular splice.
    std::vector<SolveResult> incremental;
    const auto incr_start = std::chrono::steady_clock::now();
    for (const std::string& child : children) {
      incremental.push_back(parse_solve(exchange(solve_line(child, /*no_cache=*/false))));
    }
    const double incr_secs = seconds_since(incr_start);

    // Full arm: same children, cache bypassed — the from-scratch baseline.
    std::vector<SolveResult> full;
    const auto full_start = std::chrono::steady_clock::now();
    for (const std::string& child : children) {
      full.push_back(parse_solve(exchange(solve_line(child, /*no_cache=*/true))));
    }
    const double full_secs = seconds_since(full_start);

    double dirty_sum = 0;
    for (std::size_t i = 0; i < incremental.size(); ++i) {
      if (incremental[i].incremental_solves != 1) {
        std::fprintf(stderr, "churn %.4f: child %zu was not answered incrementally\n", churn, i);
        return 1;
      }
      if (incremental[i].solution != full[i].solution) {
        std::fprintf(stderr,
                     "DIFFERENTIAL FAILURE: churn %.4f child %zu — incremental and full "
                     "solve disagree\n",
                     churn, i);
        return 1;
      }
      dirty_sum += static_cast<double>(incremental[i].incremental_dirty);
    }
    const double dirty_frac = dirty_sum / iters / g.num_vertices();
    const double incr_rate = iters / incr_secs;
    const double full_rate = iters / full_secs;
    const double speedup = incr_rate / full_rate;
    std::printf("%7.2f%% %8d %9.1f%% %12.4f %12.4f %10.2f %9.1fx\n", churn * 100, edits,
                dirty_frac * 100, incr_secs / iters, full_secs / iters, incr_rate, speedup);

    if (!runs_json.empty()) runs_json += ",\n";
    runs_json += "    {\"churn\": " + json_num(churn, 4) + ", \"edits\": " +
                 std::to_string(edits) + ", \"dirty_fraction\": " + json_num(dirty_frac, 4) +
                 ", \"graphs_per_sec\": " + json_num(incr_rate, 2) +
                 ", \"full_graphs_per_sec\": " + json_num(full_rate, 2) +
                 ", \"speedup\": " + json_num(speedup, 2) + "}";
    if (check && churn <= 0.01 && speedup < 5.0) {
      std::fprintf(stderr,
                   "REGRESSION: churn %.2f%% incremental speedup %.2fx (need >= 5x at <= 1%%)\n",
                   churn * 100, speedup);
      gate_failed = true;
    }
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"patch_throughput\",\n  \"vertices\": %d,\n"
                 "  \"edges\": %d,\n  \"solver\": \"%s\",\n  \"iters\": %d,\n"
                 "  \"runs\": [\n%s\n  ]\n}\n",
                 g.num_vertices(), g.num_edges(), solver.c_str(), iters, runs_json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return gate_failed ? 1 : 0;
}
