// E2 — the headline figure: approximation ratio as a function of t on
// adversarial K_{2,t}-minor-free inputs (theta chains). Theorem 4.4's rule
// keeps every vertex and pays Θ(t); Algorithm 1's ratio stays flat. This is
// the "ratio independent of the size of H" claim of the abstract, rendered
// as a data series.

#include <cstdio>
#include <string>

#include "core/algorithm1.hpp"
#include "core/metrics.hpp"
#include "core/theorem44.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lmds;
  std::printf("Ratio vs t on theta chains (links = 8, parallel = t-1)\n\n");
  std::printf("%4s %6s %8s | %14s | %14s | %10s\n", "t", "n", "MDS", "Thm4.4 ratio",
              "Alg.1 ratio", "2t-1 bound");
  std::printf("%s\n", std::string(70, '-').c_str());

  for (int t = 3; t <= 11; ++t) {
    const graph::Graph g = graph::gen::theta_chain(8, t - 1);

    const auto quick = core::theorem44_mds(g);
    const auto quick_ratio = core::measure_mds_ratio(g, quick.solution);

    core::Algorithm1Config cfg;
    cfg.t = t;
    cfg.radius1 = 4;
    cfg.radius2 = 4;
    const auto full = core::algorithm1(g, cfg);
    const auto full_ratio = core::measure_mds_ratio(g, full.dominating_set);

    std::printf("%4d %6d %8d | %14.2f | %14.2f | %10d\n", t, g.num_vertices(),
                quick_ratio.reference, quick_ratio.ratio, full_ratio.ratio, 2 * t - 1);
  }

  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("\nExpected shape: column 4 grows linearly in t (within the 2t-1 guarantee),\n"
              "column 5 stays constant — Theorem 4.1's t-independence.\n");
  return 0;
}
