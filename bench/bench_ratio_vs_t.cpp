// E2 — the headline figure: approximation ratio as a function of t on
// adversarial K_{2,t}-minor-free inputs (theta chains). Theorem 4.4's rule
// keeps every vertex and pays Θ(t); Algorithm 1's ratio stays flat. This is
// the "ratio independent of the size of H" claim of the abstract, rendered
// as a data series. Both algorithms run through the uniform api::Registry
// surface; the ratio comes from Response::ratio (measure_ratio flag).

#include <cstdio>
#include <string>

#include "api/registry.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lmds;
  const auto& registry = api::Registry::instance();

  std::printf("Ratio vs t on theta chains (links = 8, parallel = t-1)\n\n");
  std::printf("%4s %6s %8s | %14s | %14s | %10s\n", "t", "n", "MDS", "Thm4.4 ratio",
              "Alg.1 ratio", "2t-1 bound");
  std::printf("%s\n", std::string(70, '-').c_str());

  for (int t = 3; t <= 11; ++t) {
    const graph::Graph g = graph::gen::theta_chain(8, t - 1);

    api::Request req;
    req.graph = &g;
    req.measure_ratio = true;
    const api::Response quick = registry.run("theorem44", req);

    api::Request alg1 = req;
    alg1.options = {{"t", t}, {"radius1", 4}, {"radius2", 4}};
    const api::Response full = registry.run("algorithm1", alg1);

    std::printf("%4d %6d %8d | %14.2f | %14.2f | %10d\n", t, g.num_vertices(),
                quick.ratio.reference, quick.ratio.ratio, full.ratio.ratio, 2 * t - 1);
  }

  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("\nExpected shape: column 4 grows linearly in t (within the 2t-1 guarantee),\n"
              "column 5 stays constant — Theorem 4.1's t-independence.\n");
  return 0;
}
