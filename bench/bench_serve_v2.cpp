// E12 — protocol v2 serving throughput: repeated solve-by-handle vs
// re-sending the edge list on every request, measured end-to-end through
// the socket-free Session core (JSON parse -> decode/handle resolve ->
// executor -> response encode), which is exactly what both transports run
// per request. The workload is the issue's motivating shape — many queries
// over one large graph: a 10k-vertex grid solved repeatedly with a warm
// response cache, so the measured difference is pure request-path overhead
// (parsing and decoding a ~200KB edge list vs resolving a 17-byte handle).
//
//   $ ./bench_serve_v2 [--vertices N] [--iters N] [--check] [--json FILE]
//
// --check exits 1 unless solve-by-handle is at least 2x the inline-edge
// throughput — the regression gate CI runs (acceptance criterion of the
// protocol-v2 redesign). --json writes the measurements for the BENCH_*
// artifact trail.

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "graph/generators.hpp"
#include "server/json.hpp"
#include "server/server.hpp"

namespace {

using namespace lmds;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string json_num(double v, int precision) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, precision);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

}  // namespace

int main(int argc, char** argv) {
  int vertices = 10'000;
  int iters = 40;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--vertices") && i + 1 < argc) {
      vertices = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--iters") && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_v2 [--vertices N] [--iters N] [--check] [--json FILE]\n");
      return 2;
    }
  }
  if (vertices < 4) vertices = 4;
  if (iters < 1) iters = 1;

  // A square-ish grid with ~`vertices` vertices: large, planar (excluded-
  // minor family), cheap enough per solve that request overhead dominates.
  int side = 1;
  while ((side + 1) * (side + 1) <= vertices) ++side;
  const graph::Graph g = graph::gen::grid(side, side);

  server::ServerOptions opts;
  opts.core.batch.threads = 1;
  opts.core.batch.cache_capacity = 64;
  opts.core.snapshot_dir.clear();
  server::Server server(opts);

  const std::string graph_json = server::encode_graph_json(g);
  const std::string inline_line =
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[" + graph_json + "]}";

  // Upload once; solve by handle from then on.
  const server::JsonValue put =
      server::json_parse(server.handle_line("{\"op\":\"put_graph\",\"graph\":" + graph_json + "}"));
  if (!put.find("ok")->as_bool()) {
    std::fprintf(stderr, "put_graph failed\n");
    return 1;
  }
  const std::string handle = put.find("handle")->as_string();
  const std::string handle_line =
      "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[\"" + handle + "\"]}";

  // Warm the response cache through both spellings (same cache key), then
  // measure: every timed request is a cache hit, so the difference is the
  // request path itself.
  (void)server.handle_line(inline_line);
  (void)server.handle_line(handle_line);

  const auto time_line = [&](const std::string& line) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const std::string response = server.handle_line(line);
      if (response.find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "solve failed: %s\n", response.substr(0, 200).c_str());
        std::exit(1);
      }
    }
    return seconds_since(start);
  };

  const double inline_secs = time_line(inline_line);
  const double handle_secs = time_line(handle_line);
  const double inline_rate = iters / inline_secs;
  const double handle_rate = iters / handle_secs;
  const double speedup = handle_rate / inline_rate;

  std::printf("Serve v2 — %d-vertex grid (%d edges), %d warm solves per path\n\n",
              g.num_vertices(), g.num_edges(), iters);
  std::printf("%-22s %10s %14s %14s\n", "request path", "seconds", "req/sec", "bytes/req");
  std::printf("%s\n", std::string(64, '-').c_str());
  std::printf("%-22s %10.4f %14.1f %14zu\n", "inline edge list (v1)", inline_secs, inline_rate,
              inline_line.size());
  std::printf("%-22s %10.4f %14.1f %14zu\n", "graph handle (v2)", handle_secs, handle_rate,
              handle_line.size());
  std::printf("\nsolve-by-handle speedup: %.1fx (wire bytes shrink %zux)\n", speedup,
              inline_line.size() / handle_line.size());

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serve_v2\",\n  \"vertices\": %d,\n  \"iters\": %d,\n"
                 "  \"inline_req_per_sec\": %s,\n  \"handle_req_per_sec\": %s,\n"
                 "  \"handle_speedup\": %s\n}\n",
                 g.num_vertices(), iters, json_num(inline_rate, 2).c_str(),
                 json_num(handle_rate, 2).c_str(), json_num(speedup, 3).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (check && speedup < 2.0) {
    std::fprintf(stderr,
                 "REGRESSION: solve-by-handle is only %.2fx inline throughput (need >= 2x)\n",
                 speedup);
    return 1;
  }
  return 0;
}
