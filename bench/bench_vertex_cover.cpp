// E7 — the Minimum Vertex Cover extensions (end of Section 4): the 3-round
// t-approximation of Theorem 4.4 and the Algorithm-1 variant (all local
// 2-cuts + per-component brute force). Same t-sweep as the MDS headline
// bench: the 3-round rule's ratio grows with t, the Algorithm-1 variant
// stays flat.

#include <cstdio>
#include <random>
#include <string>

#include "core/algorithm1.hpp"
#include "core/metrics.hpp"
#include "core/mvc.hpp"
#include "core/theorem44.hpp"
#include "ding/generators.hpp"
#include "graph/generators.hpp"
#include "solve/validate.hpp"

int main() {
  using namespace lmds;
  std::printf("Vertex cover: ratio vs t on theta chains (links = 7, parallel = t-1)\n\n");
  std::printf("%4s %6s %6s | %16s | %16s | %8s\n", "t", "n", "MVC", "Thm4.4 MVC ratio",
              "Alg.1 MVC ratio", "t bound");
  std::printf("%s\n", std::string(72, '-').c_str());

  for (int t = 3; t <= 10; ++t) {
    const graph::Graph g = graph::gen::theta_chain(7, t - 1);

    const auto quick = core::theorem44_mvc(g);
    const auto quick_ratio = core::measure_mvc_ratio(g, quick.solution);

    core::Algorithm1Config cfg;
    cfg.t = t;
    cfg.radius1 = 4;
    cfg.radius2 = 4;
    const auto full = core::algorithm1_mvc(g, cfg);
    const auto full_ratio = core::measure_mvc_ratio(g, full.vertex_cover);

    const bool valid = solve::is_vertex_cover(g, quick.solution) &&
                       solve::is_vertex_cover(g, full.vertex_cover);
    std::printf("%4d %6d %6d | %16.2f | %16.2f | %8d%s\n", t, g.num_vertices(),
                quick_ratio.reference, quick_ratio.ratio, full_ratio.ratio, t,
                valid ? "" : "  INVALID");
  }
  std::printf("%s\n", std::string(72, '-').c_str());

  std::printf("\nMixed structures (cactus, t = 6):\n");
  std::mt19937_64 rng(606);
  ding::CactusConfig ccfg;
  ccfg.pieces = 10;
  ccfg.t = 6;
  for (int trial = 0; trial < 3; ++trial) {
    const graph::Graph g = ding::random_cactus_of_structures(ccfg, rng);
    const auto quick = core::theorem44_mvc(g);
    core::Algorithm1Config cfg;
    cfg.t = 6;
    cfg.radius1 = 4;
    cfg.radius2 = 4;
    const auto full = core::algorithm1_mvc(g, cfg);
    std::printf("  %-18s Thm4.4 %s   Alg.1 %s\n", g.summary().c_str(),
                core::measure_mvc_ratio(g, quick.solution).to_string().c_str(),
                core::measure_mvc_ratio(g, full.vertex_cover).to_string().c_str());
  }
  std::printf("\nExpected shape: Thm 4.4 MVC tracks ~(n/MVC) up to its t guarantee;\n"
              "the Algorithm-1 variant stays near 1 regardless of t.\n");
  return 0;
}
