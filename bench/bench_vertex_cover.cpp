// E7 — the Minimum Vertex Cover extensions (end of Section 4): the 3-round
// t-approximation of Theorem 4.4 and the Algorithm-1 variant (all local
// 2-cuts + per-component brute force). Same t-sweep as the MDS headline
// bench: the 3-round rule's ratio grows with t, the Algorithm-1 variant
// stays flat.
//
// Both solvers run through api::Registry; the mixed-structure trials go
// through the sharded run_batch overload, one batch per solver.

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "ding/generators.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lmds;
  const auto& registry = api::Registry::instance();

  std::printf("Vertex cover: ratio vs t on theta chains (links = 7, parallel = t-1)\n\n");
  std::printf("%4s %6s %6s | %16s | %16s | %8s\n", "t", "n", "MVC", "Thm4.4 MVC ratio",
              "Alg.1 MVC ratio", "t bound");
  std::printf("%s\n", std::string(72, '-').c_str());

  for (int t = 3; t <= 10; ++t) {
    const graph::Graph g = graph::gen::theta_chain(7, t - 1);

    api::Request quick_req;
    quick_req.graph = &g;
    quick_req.measure_ratio = true;
    const api::Response quick = registry.run("theorem44-mvc", quick_req);

    api::Request full_req = quick_req;
    full_req.options["t"] = t;
    full_req.options["radius1"] = 4;
    full_req.options["radius2"] = 4;
    const api::Response full = registry.run("algorithm1-mvc", full_req);

    const bool valid = quick.valid && full.valid;
    std::printf("%4d %6d %6d | %16.2f | %16.2f | %8d%s\n", t, g.num_vertices(),
                quick.ratio.reference, quick.ratio.ratio, full.ratio.ratio, t,
                valid ? "" : "  INVALID");
  }
  std::printf("%s\n", std::string(72, '-').c_str());

  // Mixed structures: one batch of cactus instances per solver through the
  // sharded executor (2 workers — the instances are independent).
  std::printf("\nMixed structures (cactus, t = 6, batched):\n");
  std::mt19937_64 rng(606);
  ding::CactusConfig ccfg;
  ccfg.pieces = 10;
  ccfg.t = 6;
  std::vector<graph::Graph> trials;
  for (int trial = 0; trial < 3; ++trial) {
    trials.push_back(ding::random_cactus_of_structures(ccfg, rng));
  }

  api::BatchOptions opts;
  opts.threads = 2;
  opts.shard_size = 1;
  api::Request quick_req;
  quick_req.measure_ratio = true;
  api::Request full_req = quick_req;
  full_req.options["t"] = 6;
  full_req.options["radius1"] = 4;
  full_req.options["radius2"] = 4;
  const auto quick_batch =
      registry.run_batch("theorem44-mvc", {trials.data(), trials.size()}, quick_req, opts);
  const auto full_batch =
      registry.run_batch("algorithm1-mvc", {trials.data(), trials.size()}, full_req, opts);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    std::printf("  %-18s Thm4.4 %s   Alg.1 %s\n", trials[i].summary().c_str(),
                quick_batch[i].ratio.to_string().c_str(),
                full_batch[i].ratio.to_string().c_str());
  }

  std::printf("\nExpected shape: Thm 4.4 MVC tracks ~(n/MVC) up to its t guarantee;\n"
              "the Algorithm-1 variant stays near 1 regardless of t.\n");
  return 0;
}
