// E9 — the asymptotic-dimension control function (Section 3): measured
// max weak diameter of r-components of BFS-band covers, per family and
// scale r, against the paper's f(r) = (5r+18)t from [3, Lemma 7.1]. The
// algorithm's radii m3.2 = f(5)+2 and m3.3 = f(11)+5 come straight from
// this curve, so the slack seen here is exactly the slack in the paper's
// round constants.

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "asdim/control.hpp"
#include "ding/generators.hpp"
#include "ding/structures.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lmds;
  std::mt19937_64 rng(11235);

  struct Family {
    std::vector<graph::Graph> graphs;
    int t;
    std::string label;
  };
  std::vector<Family> families;
  {
    Family f{{}, 2, "random trees (t=2)"};
    for (int i = 0; i < 4; ++i) f.graphs.push_back(graph::gen::random_tree(150, rng));
    families.push_back(std::move(f));
  }
  {
    Family f{{}, 3, "long cycles (t=3)"};
    f.graphs.push_back(graph::gen::cycle(120));
    f.graphs.push_back(graph::gen::cycle(75));
    families.push_back(std::move(f));
  }
  {
    Family f{{}, 5, "theta chains (t=5)"};
    f.graphs.push_back(graph::gen::theta_chain(15, 4));
    f.graphs.push_back(graph::gen::theta_chain(25, 4));
    families.push_back(std::move(f));
  }
  {
    Family f{{}, 5, "strips (t=5)"};
    f.graphs.push_back(ding::strip(30));
    f.graphs.push_back(ding::strip(30, true));
    families.push_back(std::move(f));
  }
  {
    Family f{{}, 5, "cactus (t=5)"};
    ding::CactusConfig cfg;
    cfg.pieces = 14;
    cfg.t = 5;
    for (int i = 0; i < 3; ++i) f.graphs.push_back(ding::random_cactus_of_structures(cfg, rng));
    families.push_back(std::move(f));
  }

  const std::vector<int> scales{1, 2, 3, 5, 8, 11};
  std::printf("Control function: measured r-component weak diameter vs f(r) = (5r+18)t\n\n");
  std::printf("%-22s", "family \\ r");
  for (int r : scales) std::printf(" %9d", r);
  std::printf("\n%s\n", std::string(22 + 10 * scales.size(), '-').c_str());
  for (const auto& family : families) {
    const auto curve = asdim::measure_control_curve(family.graphs, scales, family.t);
    std::printf("%-22s", family.label.c_str());
    for (const auto& point : curve) std::printf(" %4d/%-4d", point.measured, point.paper_bound);
    std::printf("\n");
  }
  std::printf("%s\n", std::string(22 + 10 * scales.size(), '-').c_str());
  std::printf("(cells are measured/bound; every measured value must stay below the bound)\n\n");
  std::printf("Radii implied for Algorithm 1 at t = 5: paper m3.2 = f(5)+2 = %d,\n"
              "m3.3 = f(11)+5 = %d; measured control suggests ~%dx smaller radii suffice\n"
              "on these families — the \"constants tricky\" gap of the repro band.\n",
              (5 * 5 + 18) * 5 + 2, (5 * 11 + 18) * 5 + 5, 10);
  return 0;
}
