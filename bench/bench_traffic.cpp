// E10b — message complexity of the LOCAL executions: the simulator counts
// every point-to-point message and every byte of knowledge actually
// transmitted by the flooding protocol. The LOCAL model itself only charges
// rounds (messages are unbounded); this bench shows what that costs in a
// real network, i.e. the gap a CONGEST implementation would need to close.

#include <cstdio>
#include <string>

#include "api/registry.hpp"
#include "graph/generators.hpp"
#include "local/view.hpp"

int main() {
  using namespace lmds;

  std::printf("View-gathering traffic on theta chains (parallel = 4)\n\n");
  std::printf("%6s %6s | %8s %12s %14s | %12s\n", "links", "n", "radius", "rounds", "messages",
              "MiB sent");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const int links : {4, 8, 16, 32}) {
    const graph::Graph g = graph::gen::theta_chain(links, 4);
    const local::Network net(g);
    for (const int radius : {2, 4, 8}) {
      local::TrafficStats stats;
      local::gather_views(net, radius, &stats);
      std::printf("%6d %6d | %8d %12d %14llu | %12.3f\n", links, g.num_vertices(), radius,
                  stats.rounds, static_cast<unsigned long long>(stats.messages),
                  static_cast<double>(stats.bytes) / (1024.0 * 1024.0));
    }
  }

  // End-to-end runs go through the registry's LOCAL path: measure_traffic
  // routes the request through the message-passing simulator and the counts
  // come back on Response::diag.traffic.
  std::printf("\nEnd-to-end algorithm traffic (theta chain, links = 12, parallel = 4):\n");
  const graph::Graph g = graph::gen::theta_chain(12, 4);
  const auto& registry = api::Registry::instance();
  {
    api::Request req;
    req.graph = &g;
    req.measure_traffic = true;
    const api::Response res = registry.run("theorem44", req);
    std::printf("  Theorem 4.4:  rounds %2d  messages %8llu  bytes %10llu\n",
                res.diag.traffic.rounds,
                static_cast<unsigned long long>(res.diag.traffic.messages),
                static_cast<unsigned long long>(res.diag.traffic.bytes));
  }
  {
    api::Request req;
    req.graph = &g;
    req.measure_traffic = true;
    req.options["t"] = 5;
    req.options["radius1"] = 3;
    req.options["radius2"] = 3;
    const api::Response res = registry.run("algorithm1", req);
    std::printf("  Algorithm 1:  rounds %2d  messages %8llu  bytes %10llu\n", res.diag.rounds,
                static_cast<unsigned long long>(res.diag.traffic.messages),
                static_cast<unsigned long long>(res.diag.traffic.bytes));
  }
  std::printf("\nReading: messages grow as (directed edges) x rounds; bytes grow faster\n"
              "(knowledge snowballs), which is precisely why these algorithms live in\n"
              "LOCAL rather than CONGEST.\n");
  return 0;
}
