// E6 — Lemma 4.2: after removing the local 1-cuts, the interesting
// vertices and the saturated set U, every residual component has bounded
// diameter. The stress family is Ding augmentations with ever longer
// strips: the input diameter grows linearly with the strip length, the
// residual diameter must plateau (long strips develop local 2-cuts at their
// rungs, so their interiors get carved up).

#include <cstdio>
#include <random>
#include <string>

#include "api/registry.hpp"
#include "ding/generators.hpp"
#include "graph/bfs.hpp"

int main() {
  using namespace lmds;
  std::mt19937_64 rng(31337);

  std::printf("Lemma 4.2 — residual component diameter vs structure length\n");
  std::printf("(radius1 = radius2 = 3, Ding augmentations: base 16 vertices, 1 fan + 2 strips)\n\n");
  std::printf("%12s %6s %12s %14s %14s %8s\n", "strip len", "n", "graph diam", "res. comps",
              "res. diam", "valid");
  std::printf("%s\n", std::string(72, '-').c_str());

  for (const int length : {4, 8, 12, 16, 20, 24}) {
    ding::AugmentationConfig cfg;
    cfg.base_vertices = 16;
    cfg.base_extra_edges = 4;
    cfg.fans = 1;
    cfg.strips = 2;
    cfg.min_length = length;
    cfg.max_length = length;
    const auto aug = ding::random_augmentation(cfg, rng);

    // Through the registry: residual-component detail arrives on
    // Response::diag, validity is the always-checked Response::valid.
    api::Request req;
    req.graph = &aug.graph;
    req.options["t"] = 6;
    req.options["radius1"] = 3;
    req.options["radius2"] = 3;
    const api::Response res = api::Registry::instance().run("algorithm1", req);
    std::printf("%12d %6d %12d %14d %14d %8s\n", length, aug.graph.num_vertices(),
                graph::diameter(aug.graph), res.diag.residual_components,
                res.diag.max_residual_diameter, res.valid ? "ok" : "INVALID");
  }

  std::printf("%s\n", std::string(72, '-').c_str());
  std::printf("\nExpected shape: column 3 (graph diameter) grows with the strip length,\n"
              "column 5 (residual diameter) plateaus — Lemma 4.2's content. The plateau\n"
              "level scales with the chosen radii, mirroring m4.2(t) = 3*m3.3 + g(t) + 3.\n");
  return 0;
}
