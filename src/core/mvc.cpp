#include "core/mvc.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "cuts/local_cuts.hpp"
#include "graph/bfs.hpp"
#include "graph/ops.hpp"
#include "local/view.hpp"
#include "solve/exact_mvc.hpp"

namespace lmds::core {

namespace {

MvcAlgorithm1Result run_mvc_pipeline(const Graph& g, const Algorithm1Config& cfg,
                                     std::vector<Vertex> one_cuts,
                                     std::vector<Vertex> two_cut_vertices) {
  MvcAlgorithm1Result result;
  const int r1 = cfg.effective_radius1();
  const int r2 = cfg.effective_radius2();
  result.diag.one_cuts = std::move(one_cuts);
  result.diag.two_cut_vertices = std::move(two_cut_vertices);

  std::vector<Vertex> s0 = result.diag.one_cuts;
  s0.insert(s0.end(), result.diag.two_cut_vertices.begin(), result.diag.two_cut_vertices.end());
  std::sort(s0.begin(), s0.end());
  s0.erase(std::unique(s0.begin(), s0.end()), s0.end());

  std::vector<char> in_s0(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : s0) in_s0[static_cast<std::size_t>(v)] = 1;

  // Residual components: G minus the chosen cut vertices. All edges with
  // both endpoints outside S0 still need covering; they live inside these
  // components.
  const auto comps = graph::components_without(g, s0);
  std::vector<Vertex> extra;
  for (const auto& component : comps.groups()) {
    if (component.size() < 2) continue;
    std::vector<graph::Edge> uncovered;
    for (Vertex v : component) {
      for (Vertex w : g.neighbors(v)) {
        if (v < w && !in_s0[static_cast<std::size_t>(w)] &&
            comps.component[static_cast<std::size_t>(w)] ==
                comps.component[static_cast<std::size_t>(v)]) {
          uncovered.push_back({v, w});
        }
      }
    }
    if (uncovered.empty()) continue;
    ++result.diag.residual_components;
    const auto sub = graph::induced_subgraph(g, component);
    result.diag.max_residual_diameter =
        std::max(result.diag.max_residual_diameter, graph::diameter(sub.graph));
    const auto cover = solve::exact_edge_cover_vertices(g, uncovered);
    extra.insert(extra.end(), cover.begin(), cover.end());
  }

  result.vertex_cover = s0;
  result.vertex_cover.insert(result.vertex_cover.end(), extra.begin(), extra.end());
  std::sort(result.vertex_cover.begin(), result.vertex_cover.end());
  result.vertex_cover.erase(std::unique(result.vertex_cover.begin(), result.vertex_cover.end()),
                            result.vertex_cover.end());
  std::sort(extra.begin(), extra.end());
  result.diag.brute_forced = std::move(extra);

  const int view_radius = std::max(r1, 2 * r2);
  result.diag.rounds = (view_radius + 1) + (result.diag.max_residual_diameter + 3);
  return result;
}

}  // namespace

MvcAlgorithm1Result algorithm1_mvc(const Graph& g, const Algorithm1Config& cfg) {
  return run_mvc_pipeline(g, cfg, cuts::local_one_cuts(g, cfg.effective_radius1()),
                          cuts::vertices_in_local_two_cuts(g, cfg.effective_radius2()));
}

MvcAlgorithm1Result algorithm1_mvc_local(const local::Network& net,
                                         const Algorithm1Config& cfg, int threads) {
  const Graph& g = net.topology();
  const int r1 = cfg.effective_radius1();
  const int r2 = cfg.effective_radius2();
  int view_radius = std::max(r1, 2 * r2);
  view_radius = std::min(view_radius, g.num_vertices());

  local::TrafficStats traffic;
  const auto views = local::gather_views(net, view_radius, &traffic, threads);

  // Per-vertex cut classification into slot arrays; ordered collect keeps
  // the cut lists bit-identical for any thread count.
  const int n = g.num_vertices();
  std::vector<char> is_one_cut(static_cast<std::size_t>(n), 0);
  std::vector<char> in_two_cut(static_cast<std::size_t>(n), 0);
  common::parallel_for(n, threads, [&](int begin, int end) {
    for (Vertex v = begin; v < end; ++v) {
      const local::BallView& view = views[static_cast<std::size_t>(v)];
      if (cuts::is_local_one_cut(view.graph, view.centre, std::min(r1, view_radius))) {
        is_one_cut[static_cast<std::size_t>(v)] = 1;
      }
      // "v is in some r2-local minimal 2-cut": scan partners inside the view.
      const int r2_eff = std::min(r2, view_radius);
      for (Vertex u : graph::ball(view.graph, view.centre, r2_eff)) {
        if (u == view.centre) continue;
        if (cuts::is_local_two_cut(view.graph, view.centre, u, r2_eff)) {
          in_two_cut[static_cast<std::size_t>(v)] = 1;
          break;
        }
      }
    }
  });
  std::vector<Vertex> one_cuts;
  std::vector<Vertex> two_cut_vertices;
  for (Vertex v = 0; v < n; ++v) {
    if (is_one_cut[static_cast<std::size_t>(v)]) one_cuts.push_back(v);
    if (in_two_cut[static_cast<std::size_t>(v)]) two_cut_vertices.push_back(v);
  }

  MvcAlgorithm1Result result =
      run_mvc_pipeline(g, cfg, std::move(one_cuts), std::move(two_cut_vertices));
  result.diag.traffic = traffic;
  return result;
}

}  // namespace lmds::core
