#pragma once
// Algorithm 2 (Theorem 4.3): the class-agnostic variant. The caller supplies
// an asymptotic dimension d and a control function f for the class of the
// input graph; the radii become m3.2 = f(5)+2 and m3.3 = f(11)+5, the ratio
// becomes c3.2(d) + c3.3(d) + 1, and no knowledge of the excluded K_{2,t} is
// needed (the round complexity silently depends on the largest K_{2,t} minor
// of the input, per the paper).

#include <functional>

#include "core/algorithm1.hpp"

namespace lmds::core {

/// A control function r -> f(r) witnessing asymptotic dimension d.
using ControlFn = std::function<int(int)>;

/// Configuration of Algorithm 2.
struct Algorithm2Config {
  int d = 1;      ///< asymptotic dimension of the input's class
  ControlFn f;    ///< its control function
  bool twin_removal = true;
};

/// Centralized execution of Algorithm 2. The output reuses the Algorithm 1
/// result type (the pipeline is identical, only the radii differ).
Algorithm1Result algorithm2(const Graph& g, const Algorithm2Config& cfg);

/// LOCAL execution of Algorithm 2 through the message-passing simulator.
Algorithm1Result algorithm2_local(const local::Network& net, const Algorithm2Config& cfg);

/// The ratio guaranteed by Theorem 4.3 for dimension d.
int algorithm2_ratio(int d);

}  // namespace lmds::core
