#pragma once
// The folklore rows of Table 1 plus a KSV-style bounded-expansion baseline.
//
//  * take_all            — 0 rounds, t-approx on K_{1,t}-minor-free graphs
//                          (footnote 4: MDS >= n/(Δ+1) and Δ <= t-1);
//  * tree_degree_rule    — 2 rounds, 3-approx on trees (footnote 3: all
//                          vertices of degree >= 2, with small-component
//                          fixups);
//  * ksv_style           — an O(1)-round adaptation of Kublenz–Siebertz–
//                          Vigny [18] for classes of bounded expansion:
//                          take every vertex whose closed neighbourhood
//                          cannot be dominated by <= k other vertices, then
//                          greedily fix the leftovers. Stands in for the
//                          K_t / K_{s,t} rows of Table 1 (see DESIGN.md,
//                          substitutions).

#include <vector>

#include "graph/graph.hpp"
#include "local/simulator.hpp"

namespace lmds::core {

using graph::Graph;
using graph::Vertex;

/// All vertices. 0 rounds; t-approximate on K_{1,t}-minor-free graphs.
std::vector<Vertex> take_all(const Graph& g);

/// Folklore tree rule: vertices of degree >= 2; a vertex of a component of
/// one or two vertices joins iff it has the smaller id. 2 rounds (the
/// degree is learned in round one, the pendant fixup in round two);
/// 3-approximate on trees with >= 3 vertices. `threads` shards the
/// per-vertex rule (<= 0 picks hardware_concurrency); output is
/// bit-identical for any thread count.
std::vector<Vertex> tree_degree_rule(const Graph& g, int threads = 1);

/// KSV-style rule with domination threshold k:
///   X  = { v : no set of <= k vertices other than v dominates N[v] },
///   then every vertex undominated by X adds the neighbour (or itself)
///   covering the most undominated vertices (min id tie-break).
/// Constant rounds; constant ratio on classes of bounded expansion with
/// suitable k (k = 2∇1+1 in [18]). `threads` shards the per-vertex gamma
/// tests and nominations into slot arrays; the sequential merge keeps the
/// output bit-identical for any thread count.
std::vector<Vertex> ksv_style(const Graph& g, int k, int threads = 1);

/// gamma(v) of §5.5: the minimum number of vertices other than v needed to
/// dominate N[v]; returns a value > cap (specifically cap+1) when more than
/// `cap` are needed. Isolated vertices return cap+1 (nothing else can cover
/// them).
int gamma(const Graph& g, Vertex v, int cap);

}  // namespace lmds::core
