#pragma once
// Algorithm 1 (Theorem 4.1): the O_t(1)-round constant-approximation for
// Minimum Dominating Set on K_{2,t}-minor-free graphs.
//
// Pipeline (on the true-twin-less graph G⁻):
//   1. X  = vertices in m3.2-local minimal 1-cuts;
//   2. I  = m3.3-interesting vertices of m3.3-local minimal 2-cuts;
//   3. U  = dominated vertices with no undominated neighbour,
//      brute-force an optimal B-dominating set per residual component of
//      G⁻ − (X ∪ I ∪ U), where B is the set of still-undominated vertices.
//
// Radii: the paper's constants m3.2 = f(5)+2 = 43t+2 and m3.3 = f(11)+5 =
// 73t+5 exceed the diameter of any graph one can simulate, at which point
// local cuts coincide with global cuts. The config therefore exposes the
// radii; radius <= 0 means "use the paper constant". Benches sweep the
// radius to chart the ratio/rounds trade-off (DESIGN.md E3).
//
// Round accounting (model-level, also measured by the simulator path):
//   * twin reduction: 2 rounds;
//   * steps 1-2: one view gather of radius max(r1, 2·r2) -> +1 rounds each;
//   * step 3: leader-based gather over residual components of measured
//     diameter D: D + 3 rounds.

#include <vector>

#include "core/constants.hpp"
#include "graph/graph.hpp"
#include "local/simulator.hpp"

namespace lmds::core {

using graph::Graph;
using graph::Vertex;

/// Configuration of Algorithm 1.
struct Algorithm1Config {
  int t = 5;        ///< class parameter (K_{2,t}-minor-free input expected)
  int radius1 = 0;  ///< m3.2 override; <= 0 means paper constant f(5)+2
  int radius2 = 0;  ///< m3.3 override; <= 0 means paper constant f(11)+5
  bool twin_removal = true;  ///< ablation switch (paper step 1)

  int effective_radius1() const {
    return radius1 > 0 ? radius1 : PaperConstants{t}.m32();
  }
  int effective_radius2() const {
    return radius2 > 0 ? radius2 : PaperConstants{t}.m33();
  }
};

/// Everything the analysis benches need about one run.
struct Algorithm1Diagnostics {
  int twin_classes = 0;                 ///< |V(G⁻)|
  std::vector<Vertex> one_cuts;         ///< X, lifted to input indices
  std::vector<Vertex> interesting;      ///< I, lifted to input indices
  std::vector<Vertex> brute_forced;     ///< step-3 additions, input indices
  int residual_components = 0;          ///< components brute-forced
  int max_residual_diameter = 0;        ///< Lemma 4.2 quantity (measured)
  int rounds = 0;                       ///< model-level round count
  local::TrafficStats traffic;          ///< filled by the simulator path
};

/// Result of Algorithm 1.
struct Algorithm1Result {
  std::vector<Vertex> dominating_set;  ///< sorted, input-graph indices
  Algorithm1Diagnostics diag;
};

/// Centralized execution (mathematically identical to the LOCAL execution;
/// the equivalence is tested).
Algorithm1Result algorithm1(const Graph& g, const Algorithm1Config& cfg);

/// LOCAL execution: per-node decisions for steps 1-2 are evaluated on
/// message-passing views; step 3 is solved per residual component with
/// leader-based round accounting. `threads` shards the per-node view
/// extraction and cut classification (<= 0 picks hardware_concurrency);
/// output is bit-identical for any thread count. The centralized step-3
/// pipeline stays sequential (see ARCHITECTURE.md, hot path).
Algorithm1Result algorithm1_local(const local::Network& net, const Algorithm1Config& cfg,
                                  int threads = 1);

}  // namespace lmds::core
