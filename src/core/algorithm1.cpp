#include "core/algorithm1.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "cuts/interesting.hpp"
#include "cuts/local_cuts.hpp"
#include "graph/bfs.hpp"
#include "graph/ops.hpp"
#include "local/view.hpp"
#include "solve/exact_mds.hpp"

namespace lmds::core {

namespace {

// Shared step 3: given the reduced graph and S0 = X ∪ I (reduced indices),
// computes U, the residual components, and the per-component optimal
// B-dominating sets. Appends the picked vertices (reduced indices) and
// fills the diagnostics fields.
std::vector<Vertex> brute_force_residual(const Graph& g, const std::vector<Vertex>& s0,
                                         Algorithm1Diagnostics& diag) {
  const int n = g.num_vertices();
  std::vector<char> in_s0(static_cast<std::size_t>(n), 0);
  for (Vertex v : s0) in_s0[static_cast<std::size_t>(v)] = 1;

  // Dominated = N[S0].
  std::vector<char> dominated(static_cast<std::size_t>(n), 0);
  for (Vertex v : s0) {
    dominated[static_cast<std::size_t>(v)] = 1;
    for (Vertex w : g.neighbors(v)) dominated[static_cast<std::size_t>(w)] = 1;
  }

  // U = dominated vertices with every neighbour dominated (paper: vertices
  // of N[S0] whose closed neighbourhood lies in N[S0]).
  std::vector<Vertex> removed = s0;
  for (Vertex v = 0; v < n; ++v) {
    if (in_s0[static_cast<std::size_t>(v)] || !dominated[static_cast<std::size_t>(v)]) continue;
    bool all_neighbors_dominated = true;
    for (Vertex w : g.neighbors(v)) {
      if (!dominated[static_cast<std::size_t>(w)]) {
        all_neighbors_dominated = false;
        break;
      }
    }
    if (all_neighbors_dominated) removed.push_back(v);
  }

  const auto comps = graph::components_without(g, removed);
  diag.residual_components = 0;
  diag.max_residual_diameter = 0;

  std::vector<Vertex> picked;
  for (const auto& component : comps.groups()) {
    if (component.empty()) continue;
    // B = undominated vertices of this component.
    std::vector<Vertex> b;
    for (Vertex v : component) {
      if (!dominated[static_cast<std::size_t>(v)]) b.push_back(v);
    }
    if (b.empty()) continue;
    ++diag.residual_components;
    const auto sub = graph::induced_subgraph(g, component);
    diag.max_residual_diameter =
        std::max(diag.max_residual_diameter, graph::diameter(sub.graph));
    const auto solution = solve::exact_b_domination(g, b);
    picked.insert(picked.end(), solution.begin(), solution.end());
  }
  std::sort(picked.begin(), picked.end());
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  return picked;
}

Algorithm1Result run_pipeline(const Graph& input, const Algorithm1Config& cfg,
                              const std::vector<Vertex>* precomputed_one_cuts,
                              const std::vector<Vertex>* precomputed_interesting) {
  Algorithm1Result result;
  const int r1 = cfg.effective_radius1();
  const int r2 = cfg.effective_radius2();

  // Step 0: true-twin reduction.
  graph::TwinReduction reduction;
  const Graph* g = &input;
  if (cfg.twin_removal) {
    reduction = graph::remove_true_twins(input);
    g = &reduction.reduced.graph;
    result.diag.twin_classes = reduction.num_classes;
  } else {
    result.diag.twin_classes = input.num_vertices();
  }

  // Steps 1-2: local cuts (either centrally computed here or supplied by the
  // LOCAL path, already in reduced indices).
  const std::vector<Vertex> x =
      precomputed_one_cuts ? *precomputed_one_cuts : cuts::local_one_cuts(*g, r1);
  const std::vector<Vertex> i =
      precomputed_interesting ? *precomputed_interesting : cuts::interesting_vertices(*g, r2);

  std::vector<Vertex> s0 = x;
  s0.insert(s0.end(), i.begin(), i.end());
  std::sort(s0.begin(), s0.end());
  s0.erase(std::unique(s0.begin(), s0.end()), s0.end());

  // Step 3: per-component brute force.
  const std::vector<Vertex> extra = brute_force_residual(*g, s0, result.diag);

  std::vector<Vertex> solution = s0;
  solution.insert(solution.end(), extra.begin(), extra.end());
  std::sort(solution.begin(), solution.end());
  solution.erase(std::unique(solution.begin(), solution.end()), solution.end());

  // Lift to input indices.
  if (cfg.twin_removal) {
    result.dominating_set = reduction.reduced.lift(solution);
    result.diag.one_cuts = reduction.reduced.lift(x);
    result.diag.interesting = reduction.reduced.lift(i);
    result.diag.brute_forced = reduction.reduced.lift(extra);
  } else {
    result.dominating_set = solution;
    result.diag.one_cuts = x;
    result.diag.interesting = i;
    result.diag.brute_forced = extra;
  }
  std::sort(result.dominating_set.begin(), result.dominating_set.end());

  // Model-level rounds: 2 (twin reduction) + view gather for steps 1-2 +
  // leader-based residual resolution.
  const int view_radius = std::max(r1, 2 * r2);
  result.diag.rounds = (cfg.twin_removal ? 2 : 0) + (view_radius + 1) +
                       (result.diag.max_residual_diameter + 3);
  return result;
}

}  // namespace

Algorithm1Result algorithm1(const Graph& g, const Algorithm1Config& cfg) {
  return run_pipeline(g, cfg, nullptr, nullptr);
}

Algorithm1Result algorithm1_local(const local::Network& net, const Algorithm1Config& cfg,
                                  int threads) {
  const int r1 = cfg.effective_radius1();
  const int r2 = cfg.effective_radius2();

  // Twin reduction (2 rounds in the model; performed consistently from
  // radius-2 knowledge — we materialise the reduced network directly).
  const Graph& input = net.topology();
  graph::TwinReduction reduction;
  const Graph* g = &input;
  std::vector<local::NodeId> reduced_ids;
  if (cfg.twin_removal) {
    reduction = graph::remove_true_twins(input);
    g = &reduction.reduced.graph;
    for (Vertex v = 0; v < g->num_vertices(); ++v) {
      reduced_ids.push_back(net.id_of(reduction.reduced.to_parent[static_cast<std::size_t>(v)]));
    }
  } else {
    for (Vertex v = 0; v < g->num_vertices(); ++v) reduced_ids.push_back(net.id_of(v));
  }
  local::Network reduced_net(*g, reduced_ids);

  // One view gather serves both cut steps. Radius max(r1, 2*r2) guarantees
  // the double balls of every candidate 2-cut partner are complete (see
  // cuts/local_cuts.hpp), but never needs to exceed the graph itself —
  // beyond the diameter the views are the whole graph already.
  int view_radius = std::max(r1, 2 * r2);
  const int diam_cap = g->num_vertices();  // safe upper bound on any view
  view_radius = std::min(view_radius, diam_cap);

  local::TrafficStats traffic;
  const auto views = local::gather_views(reduced_net, view_radius, &traffic, threads);

  // Per-vertex cut classification into slot arrays; the ordered collect
  // below keeps X and I bit-identical for any thread count.
  const int rn = g->num_vertices();
  std::vector<char> is_one_cut(static_cast<std::size_t>(rn), 0);
  std::vector<char> is_interesting_v(static_cast<std::size_t>(rn), 0);
  common::parallel_for(rn, threads, [&](int begin, int end) {
    for (Vertex v = begin; v < end; ++v) {
      const local::BallView& view = views[static_cast<std::size_t>(v)];
      if (cuts::is_local_one_cut(view.graph, view.centre, std::min(r1, view_radius))) {
        is_one_cut[static_cast<std::size_t>(v)] = 1;
      }
      if (cuts::is_interesting(view.graph, view.centre, std::min(r2, view_radius))) {
        is_interesting_v[static_cast<std::size_t>(v)] = 1;
      }
    }
  });
  std::vector<Vertex> one_cuts;
  std::vector<Vertex> interesting;
  for (Vertex v = 0; v < rn; ++v) {
    if (is_one_cut[static_cast<std::size_t>(v)]) one_cuts.push_back(v);
    if (is_interesting_v[static_cast<std::size_t>(v)]) interesting.push_back(v);
  }

  Algorithm1Config local_cfg = cfg;
  Algorithm1Result result = run_pipeline(input, local_cfg, &one_cuts, &interesting);
  result.diag.traffic = traffic;
  return result;
}

}  // namespace lmds::core
