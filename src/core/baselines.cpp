#include "core/baselines.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "solve/exact_mds.hpp"

namespace lmds::core {

std::vector<Vertex> take_all(const Graph& g) {
  std::vector<Vertex> all(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  return all;
}

std::vector<Vertex> tree_degree_rule(const Graph& g, int threads) {
  const int n = g.num_vertices();
  std::vector<char> joins(static_cast<std::size_t>(n), 0);
  common::parallel_for(n, threads, [&](int begin, int end) {
    for (Vertex v = begin; v < end; ++v) {
      const int deg = g.degree(v);
      if (deg >= 2 || deg == 0) {
        joins[static_cast<std::size_t>(v)] = 1;
        continue;
      }
      // Pendant: joins only when its single neighbour is also pendant (a K2
      // component) and v carries the smaller id.
      const Vertex u = g.neighbors(v)[0];
      if (g.degree(u) == 1 && v < u) joins[static_cast<std::size_t>(v)] = 1;
    }
  });
  std::vector<Vertex> result;
  for (Vertex v = 0; v < n; ++v) {
    if (joins[static_cast<std::size_t>(v)]) result.push_back(v);
  }
  return result;
}

int gamma(const Graph& g, Vertex v, int cap) {
  // Minimum number of vertices != v covering N[v]: a tiny set-cover over
  // candidates N^2[v] \ {v}. We only need to know whether the optimum is
  // <= cap, so try increasing sizes via the exact solver with the candidate
  // pool restricted — the solver is fast at these sizes.
  const auto targets = g.closed_neighborhood(v);
  std::vector<Vertex> candidates;
  for (Vertex c : graph::ball(g, v, 2)) {
    if (c != v) candidates.push_back(c);
  }
  try {
    const auto solution = solve::exact_set_domination(g, targets, candidates);
    const int size = static_cast<int>(solution.size());
    return size <= cap ? size : cap + 1;
  } catch (const std::runtime_error&) {
    return cap + 1;  // infeasible: e.g. isolated vertex
  }
}

std::vector<Vertex> ksv_style(const Graph& g, int k, int threads) {
  const int n = g.num_vertices();
  // gamma dominates the runtime (a tiny set-cover per vertex), and each call
  // touches only its own ball — shard it into a slot array.
  std::vector<char> in_x(static_cast<std::size_t>(n), 0);
  common::parallel_for(n, threads, [&](int begin, int end) {
    for (Vertex v = begin; v < end; ++v) {
      if (gamma(g, v, k) > k) in_x[static_cast<std::size_t>(v)] = 1;
    }
  });
  std::vector<Vertex> x;
  for (Vertex v = 0; v < n; ++v) {
    if (in_x[static_cast<std::size_t>(v)]) x.push_back(v);
  }

  std::vector<char> dominated(static_cast<std::size_t>(n), 0);
  for (Vertex v : x) {
    dominated[static_cast<std::size_t>(v)] = 1;
    for (Vertex w : g.neighbors(v)) dominated[static_cast<std::size_t>(w)] = 1;
  }

  // Cleanup phase: every undominated vertex nominates the member of its
  // closed neighbourhood covering the most undominated vertices (ties to the
  // smaller id) — one more round in the model. Each nominee is computed into
  // the nominator's own slot (reads of `dominated` only), then marked
  // sequentially: no write races, same set for any thread count.
  std::vector<Vertex> nominee(static_cast<std::size_t>(n), graph::kNoVertex);
  common::parallel_for(n, threads, [&](int begin, int end) {
    for (Vertex v = begin; v < end; ++v) {
      if (dominated[static_cast<std::size_t>(v)]) continue;
      Vertex best = v;
      int best_cover = -1;
      for (Vertex c : g.closed_neighborhood(v)) {
        int cover = dominated[static_cast<std::size_t>(c)] ? 0 : 1;
        for (Vertex w : g.neighbors(c)) {
          if (!dominated[static_cast<std::size_t>(w)]) ++cover;
        }
        if (cover > best_cover || (cover == best_cover && c < best)) {
          best_cover = cover;
          best = c;
        }
      }
      nominee[static_cast<std::size_t>(v)] = best;
    }
  });
  std::vector<char> nominated(static_cast<std::size_t>(n), 0);
  for (Vertex v = 0; v < n; ++v) {
    const Vertex b = nominee[static_cast<std::size_t>(v)];
    if (b != graph::kNoVertex) nominated[static_cast<std::size_t>(b)] = 1;
  }

  std::vector<Vertex> result = x;
  for (Vertex v = 0; v < n; ++v) {
    if (nominated[static_cast<std::size_t>(v)]) result.push_back(v);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace lmds::core
