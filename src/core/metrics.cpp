#include "core/metrics.hpp"

#include <cstdio>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "solve/bounds.hpp"
#include "solve/exact_mds.hpp"
#include "solve/exact_mvc.hpp"
#include "solve/tree_dp.hpp"

namespace lmds::core {

namespace {

// Node budget for ground-truth solving inside benches: generous but bounded.
constexpr std::uint64_t kBenchSolverBudget = 1'500'000;

RatioReport make_report(int solution, int reference, bool exact) {
  RatioReport report;
  report.solution_size = solution;
  report.reference = reference;
  report.exact = exact;
  report.ratio = reference > 0 ? static_cast<double>(solution) / reference : 0.0;
  return report;
}

bool is_forest(const Graph& g) {
  return g.num_edges() == g.num_vertices() - graph::connected_components(g).count;
}

}  // namespace

std::string RatioReport::to_string() const {
  char buffer[64];
  if (exact) {
    std::snprintf(buffer, sizeof buffer, "%d/%d = %.2f", solution_size, reference, ratio);
  } else {
    std::snprintf(buffer, sizeof buffer, "%d/>=%d <= %.2f", solution_size, reference, ratio);
  }
  return buffer;
}

RatioReport measure_mds_ratio(const Graph& g, std::span<const Vertex> solution) {
  const int size = static_cast<int>(solution.size());
  if (is_forest(g)) {
    return make_report(size, solve::tree_mds_size(g), true);
  }
  try {
    std::vector<Vertex> all(static_cast<std::size_t>(g.num_vertices()));
    for (Vertex v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
    // exact_set_domination with an explicit budget via minimum_set_cover's
    // default is wrapped by exact_mds; replicate with the bench budget.
    std::vector<std::vector<int>> sets;
    sets.reserve(all.size());
    for (Vertex c : all) {
      std::vector<int> covered;
      for (Vertex w : g.closed_neighborhood(c)) covered.push_back(w);
      sets.push_back(std::move(covered));
    }
    const auto cover = solve::minimum_set_cover(sets, g.num_vertices(), kBenchSolverBudget);
    return make_report(size, static_cast<int>(cover.size()), true);
  } catch (const std::runtime_error&) {
    return make_report(size, solve::mds_lower_bound(g), false);
  }
}

RatioReport measure_mvc_ratio(const Graph& g, std::span<const Vertex> solution) {
  const int size = static_cast<int>(solution.size());
  // The VC branch & bound has no budget hook; its matching bound keeps it
  // fast on the bench families, all of which are sparse.
  if (g.num_vertices() <= 400) {
    return make_report(size, solve::mvc_size(g), true);
  }
  return make_report(size, solve::mvc_lower_bound(g), false);
}

}  // namespace lmds::core
