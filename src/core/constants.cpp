#include "core/constants.hpp"
// Header-only; this TU pins the header into the build.
