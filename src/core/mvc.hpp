#pragma once
// Minimum Vertex Cover variant of Algorithm 1 (end of Section 4): take all
// vertices of m3.2-local 1-cuts and *all* vertices of m3.3-local minimal
// 2-cuts (not just interesting ones), then brute-force a minimum cover of
// the remaining uncovered edges in each residual component. No twin removal
// is needed for vertex cover.

#include <vector>

#include "core/algorithm1.hpp"
#include "graph/graph.hpp"
#include "local/simulator.hpp"

namespace lmds::core {

/// Diagnostics of the MVC pipeline.
struct MvcAlgorithm1Diagnostics {
  std::vector<Vertex> one_cuts;
  std::vector<Vertex> two_cut_vertices;
  std::vector<Vertex> brute_forced;
  int residual_components = 0;
  int max_residual_diameter = 0;
  int rounds = 0;
  local::TrafficStats traffic;  ///< filled by the simulator path
};

/// Result of the MVC variant.
struct MvcAlgorithm1Result {
  std::vector<Vertex> vertex_cover;  ///< sorted, input indices
  MvcAlgorithm1Diagnostics diag;
};

/// Centralized execution of the MVC variant of Algorithm 1. Reuses the
/// radius configuration of Algorithm1Config (twin_removal is ignored).
MvcAlgorithm1Result algorithm1_mvc(const Graph& g, const Algorithm1Config& cfg);

/// LOCAL execution: cut-membership decisions are evaluated on
/// message-passing views (radius max(r1, 2·r2)); the residual edge covers
/// are solved per component with leader-based round accounting. Produces
/// the same cover as the centralized path (tested).
MvcAlgorithm1Result algorithm1_mvc_local(const local::Network& net,
                                         const Algorithm1Config& cfg, int threads = 1);

}  // namespace lmds::core
