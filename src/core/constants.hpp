#pragma once
// The paper's constants, kept in one place so every bench and test pins the
// same formulas.
//
// Radii (Section 4, proof of Theorem 4.1):
//   m3.2(C_t) = f(5) + 2     (Lemma 3.2, local 1-cuts)
//   m3.3(C_t) = f(11) + 5    (Lemma 3.3, Claim 5.13; §5.3 once says f(11)+4 —
//                             we use the +5 version actually proved)
// with the control function f(r) = (5r + 18) t of K_{2,t}-minor-free classes
// ([3, Lemma 7.1]; these classes have asymptotic dimension d = 1).
//
// Charging constants:
//   c3.2(d) = 3 (d + 1),  c3.3(d) = 22 (d + 1).
//
// Reproduction note: Theorem 4.1 states the ratio c3.2(1) + c3.3(1) + 1 = 50,
// but with the printed constants the sum is 6 + 44 + 1 = 51. We expose both
// the claimed 50 and the derived value; EXPERIMENTS.md discusses the gap.

namespace lmds::core {

/// f(r) = (5r + 18) t — the control function witnessing asymptotic
/// dimension 1 for K_{2,t}-minor-free graphs.
struct ControlFunction {
  int t = 2;

  int operator()(int r) const { return (5 * r + 18) * t; }
};

/// All Theorem 4.1 / Lemma constants for the class C_t of K_{2,t}-minor-free
/// graphs (asymptotic dimension d; d = 1 for C_t).
struct PaperConstants {
  int t = 2;
  int d = 1;

  /// Radius for the local 1-cut step: f(5) + 2 = 43t + 2.
  int m32() const { return ControlFunction{t}(5) + 2; }

  /// Radius for the interesting 2-cut step: f(11) + 5 = 73t + 5.
  int m33() const { return ControlFunction{t}(11) + 5; }

  /// Lemma 3.2 charging constant: #local 1-cuts <= c32() * MDS(G).
  int c32() const { return 3 * (d + 1); }

  /// Lemma 3.3 charging constant: #interesting vertices <= c33() * MDS(G).
  int c33() const { return 22 * (d + 1); }

  /// Ratio implied by the printed constants: c32 + c33 + 1 (= 51 for d = 1).
  int derived_ratio() const { return c32() + c33() + 1; }

  /// Ratio claimed by Theorem 4.1.
  static constexpr int kClaimedRatio = 50;

  /// Theorem 4.4 ratios.
  int theorem44_mds_ratio() const { return 2 * t - 1; }
  int theorem44_mvc_ratio() const { return t; }
  static constexpr int kTheorem44Rounds = 3;
};

}  // namespace lmds::core
