#pragma once
// Theorem 4.4: the 3-round linear approximation.
//
// MDS (ratio 2t-1 on K_{2,t}-minor-free graphs): remove true twins, then
// output D2 = every vertex whose closed neighbourhood cannot be dominated by
// a single other vertex. Equivalently, at the level of the original graph:
//   v joins  iff  v is the minimum-id member of its true-twin class
//            and  no vertex u has N[v] ⊊ N[u].
// Both conditions are functions of the radius-2 ball, hence 3 rounds.
//
// MVC (ratio t): drop isolated vertices, take every vertex of degree >= 2
// plus the minimum-id endpoint of every isolated edge. The paper states this
// ratio without proof; DESIGN.md gives the reconstruction via Lemma 5.18.

#include <vector>

#include "graph/graph.hpp"
#include "local/runner.hpp"
#include "local/simulator.hpp"

namespace lmds::core {

using graph::Graph;
using graph::Vertex;

/// Result of a Theorem 4.4 run.
struct Theorem44Result {
  std::vector<Vertex> solution;  ///< vertices of the input graph
  local::TrafficStats traffic;   ///< rounds = 3 (radius-2 views)
};

/// Centralized evaluation of the 3-round MDS rule (identical output to the
/// LOCAL execution; see theorem44_mds_local). `threads` shards the
/// per-vertex rule across a fork-join pool (<= 0 picks
/// hardware_concurrency); the output is bit-identical for any thread count.
Theorem44Result theorem44_mds(const Graph& g, int threads = 1);

/// LOCAL execution through the message-passing simulator.
Theorem44Result theorem44_mds_local(const local::Network& net, int threads = 1);

/// The per-node decision as a pure view function (exposed for tests and for
/// composing with other runners). Expects a radius-2 view.
bool theorem44_mds_decision(const local::BallView& view);

/// Centralized evaluation of the 3-round MVC rule.
Theorem44Result theorem44_mvc(const Graph& g, int threads = 1);

/// LOCAL execution of the MVC rule.
Theorem44Result theorem44_mvc_local(const local::Network& net, int threads = 1);

/// Per-node decision of the MVC rule (radius-2 view; degree tests of
/// neighbours need distance-2 edges).
bool theorem44_mvc_decision(const local::BallView& view);

}  // namespace lmds::core
