#include "core/theorem44.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "core/constants.hpp"

namespace lmds::core {

namespace {

// N[a] ⊊ N[b] in the given graph (strict containment).
bool strictly_contained(const Graph& g, Vertex a, Vertex b) {
  return g.closed_neighborhood_contained(a, b) && !g.closed_neighborhood_contained(b, a);
}

// The Theorem 4.4 MDS rule evaluated for vertex v of graph g with the given
// identifiers: minimum-id twin representative, and no strictly larger closed
// neighbourhood anywhere. Any u with N[v] ⊆ N[u] is adjacent to v, so
// scanning N(v) is exhaustive.
bool mds_rule(const Graph& g, Vertex v, const std::vector<local::NodeId>& ids) {
  for (Vertex u : g.neighbors(v)) {
    if (g.true_twins(v, u) &&
        ids[static_cast<std::size_t>(u)] < ids[static_cast<std::size_t>(v)]) {
      return false;  // not the class representative
    }
    if (strictly_contained(g, v, u)) return false;  // gamma(v) == 1 in G^-
  }
  return true;
}

// The Theorem 4.4 MVC rule for vertex v.
bool mvc_rule(const Graph& g, Vertex v, const std::vector<local::NodeId>& ids) {
  const int deg = g.degree(v);
  if (deg >= 2) return true;
  if (deg == 0) return false;
  const Vertex u = g.neighbors(v)[0];
  // Isolated edge: the smaller id endpoint joins.
  return g.degree(u) == 1 && ids[static_cast<std::size_t>(v)] < ids[static_cast<std::size_t>(u)];
}

std::vector<local::NodeId> identity_ids(int n) {
  std::vector<local::NodeId> ids(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) ids[static_cast<std::size_t>(v)] = static_cast<local::NodeId>(v);
  return ids;
}

// Evaluates a pure per-vertex rule across all vertices, sharded over
// `threads` workers into a slot array; collection in vertex order keeps the
// output bit-identical for any thread count.
template <typename Rule>
std::vector<Vertex> apply_rule(const Graph& g, int threads, const Rule& rule) {
  const int n = g.num_vertices();
  std::vector<char> joins(static_cast<std::size_t>(n), 0);
  common::parallel_for(n, threads, [&](int begin, int end) {
    for (Vertex v = begin; v < end; ++v) {
      joins[static_cast<std::size_t>(v)] = rule(v) ? 1 : 0;
    }
  });
  std::vector<Vertex> out;
  for (Vertex v = 0; v < n; ++v) {
    if (joins[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

}  // namespace

bool theorem44_mds_decision(const local::BallView& view) {
  return mds_rule(view.graph, view.centre, view.ids);
}

bool theorem44_mvc_decision(const local::BallView& view) {
  return mvc_rule(view.graph, view.centre, view.ids);
}

Theorem44Result theorem44_mds(const Graph& g, int threads) {
  Theorem44Result result;
  const auto ids = identity_ids(g.num_vertices());
  result.solution = apply_rule(g, threads, [&](Vertex v) { return mds_rule(g, v, ids); });
  result.traffic.rounds = PaperConstants::kTheorem44Rounds;
  return result;
}

Theorem44Result theorem44_mds_local(const local::Network& net, int threads) {
  Theorem44Result result;
  const auto run = local::run_ball_algorithm(net, 2, theorem44_mds_decision, threads);
  result.solution = run.selected;
  result.traffic = run.traffic;
  return result;
}

Theorem44Result theorem44_mvc(const Graph& g, int threads) {
  Theorem44Result result;
  const auto ids = identity_ids(g.num_vertices());
  result.solution = apply_rule(g, threads, [&](Vertex v) { return mvc_rule(g, v, ids); });
  result.traffic.rounds = PaperConstants::kTheorem44Rounds;
  return result;
}

Theorem44Result theorem44_mvc_local(const local::Network& net, int threads) {
  Theorem44Result result;
  const auto run = local::run_ball_algorithm(net, 2, theorem44_mvc_decision, threads);
  result.solution = run.selected;
  result.traffic = run.traffic;
  return result;
}

}  // namespace lmds::core
