#include "core/algorithm2.hpp"

#include <stdexcept>

namespace lmds::core {

Algorithm1Result algorithm2(const Graph& g, const Algorithm2Config& cfg) {
  if (!cfg.f) throw std::invalid_argument("algorithm2: control function required");
  Algorithm1Config inner;
  inner.radius1 = cfg.f(5) + 2;
  inner.radius2 = cfg.f(11) + 5;
  inner.twin_removal = cfg.twin_removal;
  return algorithm1(g, inner);
}

Algorithm1Result algorithm2_local(const local::Network& net, const Algorithm2Config& cfg) {
  if (!cfg.f) throw std::invalid_argument("algorithm2_local: control function required");
  Algorithm1Config inner;
  inner.radius1 = cfg.f(5) + 2;
  inner.radius2 = cfg.f(11) + 5;
  inner.twin_removal = cfg.twin_removal;
  return algorithm1_local(net, inner);
}

int algorithm2_ratio(int d) {
  const PaperConstants constants{.t = 2, .d = d};
  return constants.derived_ratio();
}

}  // namespace lmds::core
