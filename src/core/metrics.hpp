#pragma once
// Ratio measurement helpers shared by the benches: divide a solution size by
// the exact optimum when the exact solver finishes within budget, otherwise
// by a combinatorial lower bound (clearly flagged).

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::core {

using graph::Graph;
using graph::Vertex;

/// One measured ratio.
struct RatioReport {
  int solution_size = 0;
  int reference = 0;      ///< exact optimum, or a lower bound
  bool exact = false;     ///< true iff `reference` is the exact optimum
  double ratio = 0.0;     ///< solution_size / reference

  /// e.g. "51/17 = 3.00" or ">= 2.43 (vs lower bound)".
  std::string to_string() const;

  friend bool operator==(const RatioReport&, const RatioReport&) = default;
};

/// Measures |solution| / MDS(G). Tries the exact solver (tree DP for
/// forests, branch & bound otherwise, with a node budget); falls back to the
/// 2-packing lower bound.
RatioReport measure_mds_ratio(const Graph& g, std::span<const Vertex> solution);

/// Measures |solution| / MVC(G); falls back to the matching lower bound.
RatioReport measure_mvc_ratio(const Graph& g, std::span<const Vertex> solution);

}  // namespace lmds::core
