#include "spqr/cut_forest.hpp"

#include <algorithm>
#include <set>

#include "cuts/block_cut.hpp"
#include "graph/ops.hpp"
#include "spqr/split_pairs.hpp"

namespace lmds::spqr {

namespace {

using cuts::VertexPair;

void add(std::vector<VertexPair>& family, Vertex a, Vertex b) {
  family.push_back(cuts::make_pair_sorted(a, b));
}

// Greedy non-crossing completion: offers every non-adjacent skeleton pair to
// the first family it does not cross (crossing measured by interleaving on
// the skeleton cycle — a conservative over-approximation of crossing in G).
// This covers the cuts the paper's per-block case analysis misses when
// subtrees hang off cycle vertices: 1-cut attachments certify extra
// interesting pairs that only exist in the whole graph.
void greedy_completion(const std::vector<Vertex>& w, CutForest& forest) {
  const int k = static_cast<int>(w.size());
  if (k < 4 || k > 16) return;  // tiny: nothing non-adjacent; huge: capped
  const auto at = [&](int i) { return w[static_cast<std::size_t>(((i % k) + k) % k)]; };

  std::vector<VertexPair> candidates;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 2; j < k; ++j) {
      if (i == 0 && j == k - 1) continue;
      candidates.push_back(cuts::make_pair_sorted(at(i), at(j)));
    }
  }
  const auto pos_of = [&](Vertex v) {
    for (int i = 0; i < k; ++i) {
      if (at(i) == v) return i;
    }
    return -1;
  };
  const auto cross_on_cycle = [&](VertexPair x, VertexPair y) {
    const int xu = pos_of(x.u), xv = pos_of(x.v), yu = pos_of(y.u), yv = pos_of(y.v);
    if (xu < 0 || xv < 0 || yu < 0 || yv < 0) return false;  // different node
    if (xu == yu || xu == yv || xv == yu || xv == yv) return false;
    const auto inside = [&](int p, int lo, int hi) {
      return lo < p && p < hi;  // strictly inside the arc lo..hi
    };
    const int lo = std::min(xu, xv), hi = std::max(xu, xv);
    return inside(yu, lo, hi) != inside(yv, lo, hi);
  };
  for (const VertexPair c : candidates) {
    bool placed = false;
    for (auto& family : forest.families) {
      if (std::find(family.begin(), family.end(), c) != family.end()) {
        placed = true;
        break;
      }
      const bool conflict = std::any_of(family.begin(), family.end(), [&](VertexPair other) {
        return cross_on_cycle(c, other);
      });
      if (!conflict) {
        family.push_back(c);
        placed = true;
        break;
      }
    }
    (void)placed;  // a candidate crossing all three families is skipped
  }
}

// Handles one S node: cycle order w (global ids) with `virt[i]` true when
// the cycle edge (w[i], w[i+1 mod k]) is virtual. Implements the k-cases of
// §5.3 and then runs the greedy completion.
void handle_s_node(const std::vector<Vertex>& w, const std::vector<char>& virt,
                   CutForest& forest) {
  const int k = static_cast<int>(w.size());
  auto& p1 = forest.families[0];
  auto& p2 = forest.families[1];
  auto& p3 = forest.families[2];
  const auto at = [&](int i) { return w[static_cast<std::size_t>(((i % k) + k) % k)]; };

  if (k >= 8) {
    // Long cycles: nested long-range cuts in P1, two finishing cuts in P2.
    if (k % 2 == 0) {
      for (int i = 0; i <= k / 2 - 3; ++i) add(p1, at(i), at(k - 3 - i));
      add(p2, at(k / 2 - 2), at(k - 1));
      add(p2, at(k / 2 - 1), at(k - 2));
    } else {
      const int h = (k - 1) / 2;
      for (int i = 0; i <= h - 3; ++i) add(p1, at(i), at(k - 3 - i));
      add(p1, at(h - 3 >= 0 ? h - 3 : 0), at(h));
      add(p2, at(h - 2), at(k - 1));
      add(p2, at(h - 1), at(k - 2));
    }
  } else if (k == 7) {
    add(p1, at(0), at(3));
    add(p1, at(0), at(4));
    add(p2, at(1), at(5));
    add(p3, at(2), at(6));
  } else if (k == 6) {
    add(p1, at(0), at(3));
    add(p2, at(1), at(4));
    add(p3, at(2), at(5));
  } else {
    // k <= 5: driven by the virtual edge positions.
    std::vector<int> vpos;
    for (int i = 0; i < k; ++i) {
      if (virt[static_cast<std::size_t>(i)]) vpos.push_back(i);
    }
    if (vpos.size() == 1) {
      const int r = vpos[0];  // rotate the virtual edge to (v0, v1)
      if (k == 5) {
        add(p1, at(r + 0), at(r + 2));
        add(p2, at(r + 1), at(r + 4));
      }
    } else if (vpos.size() == 2) {
      const int a = vpos[0];
      const int b = vpos[1];
      const bool shared = (b == a + 1) || (a == 0 && b == k - 1);
      if (shared) {
        // Rotate so the shared vertex is v0, virtual edges v0v1 and v0v_{k-1}.
        const int r = (a == 0 && b == k - 1) ? 0 : a + 1;
        for (int i = 2; i <= k - 2; ++i) add(p1, at(r + 0), at(r + i));
        if (k == 5) add(p2, at(r + 1), at(r + k - 1));
      } else {
        // Disjoint virtual edges v0v1 and v_i v_{i+1} after rotating to a.
        const int r = a;
        const int i = b - a;  // 2 <= i <= k-2
        for (int j = 2; j <= i; ++j) add(p1, at(r + 0), at(r + j));
        for (int j = i + 1; j <= k - 1; ++j) add(p2, at(r + 1), at(r + j));
      }
    }
  }
  greedy_completion(w, forest);
}

}  // namespace

std::vector<VertexPair> CutForest::all() const {
  std::set<VertexPair> result;
  for (const auto& family : families) result.insert(family.begin(), family.end());
  return {result.begin(), result.end()};
}

CutForest interesting_cut_forest(const Graph& g) {
  // Per the paper (§5.3), a non-2-connected graph is handled block by block;
  // cuts never span blocks (a minimal 2-cut lies inside one block, and cuts
  // from different blocks cannot cross).
  const auto bct = cuts::block_cut_tree(g);
  CutForest forest;
  for (const auto& block : bct.blocks) {
    if (block.size() < 3) continue;
    const auto sub = graph::induced_subgraph(g, block);
    const CutForest block_forest = interesting_cut_forest_biconnected(sub.graph);
    for (std::size_t i = 0; i < 3; ++i) {
      for (const VertexPair p : block_forest.families[i]) {
        forest.families[i].push_back(cuts::make_pair_sorted(
            sub.to_parent[static_cast<std::size_t>(p.u)],
            sub.to_parent[static_cast<std::size_t>(p.v)]));
      }
    }
  }
  for (auto& family : forest.families) {
    std::sort(family.begin(), family.end());
    family.erase(std::unique(family.begin(), family.end()), family.end());
  }
  return forest;
}

CutForest interesting_cut_forest_biconnected(const Graph& g) {
  const SpqrTree tree = spqr_tree(g);
  CutForest forest;
  auto& p1 = forest.families[0];

  for (const SpqrNode& node : tree.nodes) {
    switch (node.type) {
      case NodeType::kR:
        for (const SkeletonEdge& e : node.edges) {
          if (e.is_virtual) add(p1, e.u, e.v);
        }
        break;
      case NodeType::kP: {
        int virtual_count = 0;
        for (const SkeletonEdge& e : node.edges) virtual_count += e.is_virtual ? 1 : 0;
        if (virtual_count >= 2) add(p1, node.vertices[0], node.vertices[1]);
        break;
      }
      case NodeType::kS: {
        // Virtual-edge pairs first (the paper: "put all {u,v} in P1 if uv is
        // a virtual edge").
        const auto& w = node.cycle_order;
        const int k = static_cast<int>(w.size());
        std::vector<char> virt(static_cast<std::size_t>(k), 0);
        for (const SkeletonEdge& e : node.edges) {
          if (!e.is_virtual) continue;
          add(p1, e.u, e.v);
          for (int i = 0; i < k; ++i) {
            const Vertex a = w[static_cast<std::size_t>(i)];
            const Vertex b = w[static_cast<std::size_t>((i + 1) % k)];
            if ((a == e.u && b == e.v) || (a == e.v && b == e.u)) {
              virt[static_cast<std::size_t>(i)] = 1;
            }
          }
        }
        handle_s_node(w, virt, forest);
        break;
      }
    }
  }

  // Deduplicate each family.
  for (auto& family : forest.families) {
    std::sort(family.begin(), family.end());
    family.erase(std::unique(family.begin(), family.end()), family.end());
  }
  return forest;
}

}  // namespace lmds::spqr
