#include "spqr/spqr_tree.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace lmds::spqr {

namespace {

// Multigraph edge during decomposition. vid >= 0 pairs the two copies of a
// virtual edge across the split.
struct MEdge {
  Vertex u, v;
  int vid;  // -1 for real edges
};

struct Builder {
  std::vector<SpqrNode> nodes;
  std::vector<std::vector<int>> node_vids;  // per node, vid of each edge (-1 real)
  int next_vid = 0;

  std::vector<Vertex> vertex_set(const std::vector<MEdge>& edges) const {
    std::set<Vertex> vs;
    for (const MEdge& e : edges) {
      vs.insert(e.u);
      vs.insert(e.v);
    }
    return {vs.begin(), vs.end()};
  }

  void emit(NodeType type, const std::vector<MEdge>& edges, std::vector<Vertex> cycle_order) {
    SpqrNode node;
    node.type = type;
    node.vertices = vertex_set(edges);
    node.cycle_order = std::move(cycle_order);
    std::vector<int> vids;
    for (const MEdge& e : edges) {
      node.edges.push_back({e.u, e.v, e.vid >= 0, -1});
      vids.push_back(e.vid);
    }
    nodes.push_back(std::move(node));
    node_vids.push_back(std::move(vids));
  }

  // Groups of a candidate split pair: one group per connected component of
  // H - {u, v} (its edges plus the pole edges into it), plus one singleton
  // group per direct u-v edge.
  std::vector<std::vector<MEdge>> groups_of(const std::vector<MEdge>& edges, Vertex u,
                                            Vertex v) const {
    // Union-find over non-pole vertices.
    std::map<Vertex, Vertex> parent;
    const std::function<Vertex(Vertex)> find = [&](Vertex x) {
      auto it = parent.find(x);
      if (it == parent.end() || it->second == x) return x;
      return it->second = find(it->second);
    };
    const auto unite = [&](Vertex a, Vertex b) {
      parent.emplace(a, a);
      parent.emplace(b, b);
      parent[find(a)] = find(b);
    };
    for (const MEdge& e : edges) {
      const bool pu = e.u == u || e.u == v;
      const bool pv = e.v == u || e.v == v;
      if (!pu && !pv) unite(e.u, e.v);
    }
    std::map<Vertex, std::vector<MEdge>> component_group;
    std::vector<std::vector<MEdge>> direct;
    for (const MEdge& e : edges) {
      const bool pu = e.u == u || e.u == v;
      const bool pv = e.v == u || e.v == v;
      if (pu && pv) {
        direct.push_back({e});
      } else {
        const Vertex anchor = find(pu ? e.v : e.u);
        component_group[anchor].push_back(e);
      }
    }
    std::vector<std::vector<MEdge>> result;
    for (auto& [anchor, group] : component_group) result.push_back(std::move(group));
    for (auto& g : direct) result.push_back(std::move(g));
    return result;
  }

  void decompose(std::vector<MEdge> edges) {
    const auto vs = vertex_set(edges);

    if (vs.size() == 2) {
      emit(NodeType::kP, edges, {});
      return;
    }

    // Cycle check: no parallel edges and every vertex of degree exactly 2.
    {
      std::map<Vertex, std::vector<std::pair<Vertex, std::size_t>>> adj;
      std::set<std::pair<Vertex, Vertex>> seen;
      bool parallel = false;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto key = std::minmax(edges[i].u, edges[i].v);
        if (!seen.insert({key.first, key.second}).second) parallel = true;
        adj[edges[i].u].push_back({edges[i].v, i});
        adj[edges[i].v].push_back({edges[i].u, i});
      }
      bool all_degree_two = !parallel;
      if (all_degree_two) {
        for (const auto& [vertex, nb] : adj) {
          if (nb.size() != 2) {
            all_degree_two = false;
            break;
          }
        }
      }
      if (all_degree_two && edges.size() == vs.size()) {
        // Walk the cycle to record the order.
        std::vector<Vertex> order;
        Vertex start = vs.front();
        Vertex prev = graph::kNoVertex;
        Vertex cur = start;
        do {
          order.push_back(cur);
          const auto& nb = adj[cur];
          const Vertex next = (nb[0].first != prev) ? nb[0].first : nb[1].first;
          prev = cur;
          cur = next;
        } while (cur != start);
        emit(NodeType::kS, edges, std::move(order));
        return;
      }
    }

    // Look for a split pair.
    for (std::size_t a = 0; a < vs.size(); ++a) {
      for (std::size_t b = a + 1; b < vs.size(); ++b) {
        const Vertex u = vs[a];
        const Vertex v = vs[b];
        auto groups = groups_of(edges, u, v);
        const bool valid =
            groups.size() >= 3 ||
            (groups.size() == 2 && groups[0].size() >= 2 && groups[1].size() >= 2);
        if (!valid) continue;

        if (groups.size() == 2) {
          const int vid = next_vid++;
          groups[0].push_back({u, v, vid});
          groups[1].push_back({u, v, vid});
          decompose(std::move(groups[0]));
          decompose(std::move(groups[1]));
          return;
        }
        // >= 3 groups: a P hub with one virtual edge per component group and
        // the direct pole edges kept as-is.
        std::vector<MEdge> hub_edges;
        for (auto& group : groups) {
          const bool is_direct =
              group.size() == 1 && (group[0].u == u || group[0].u == v) &&
              (group[0].v == u || group[0].v == v);
          if (is_direct) {
            hub_edges.push_back(group[0]);
            continue;
          }
          const int vid = next_vid++;
          hub_edges.push_back({u, v, vid});
          group.push_back({u, v, vid});
          decompose(std::move(group));
        }
        emit(NodeType::kP, hub_edges, {});
        return;
      }
    }

    // Triconnected: R node.
    emit(NodeType::kR, edges, {});
  }
};

}  // namespace

std::vector<int> SpqrTree::nodes_of_type(NodeType type) const {
  std::vector<int> result;
  for (int i = 0; i < num_nodes(); ++i) {
    if (nodes[static_cast<std::size_t>(i)].type == type) result.push_back(i);
  }
  return result;
}

SpqrTree spqr_tree(const Graph& g) {
  if (g.num_vertices() < 3) throw std::invalid_argument("spqr_tree: need >= 3 vertices");
  {
    // 2-connectivity precondition.
    if (!graph::is_connected(g)) throw std::invalid_argument("spqr_tree: graph not connected");
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const Vertex removed[] = {v};
      if (graph::components_without(g, removed).count > 1) {
        throw std::invalid_argument("spqr_tree: graph not 2-connected");
      }
    }
  }

  Builder builder;
  std::vector<MEdge> edges;
  for (const graph::Edge e : g.edges()) edges.push_back({e.u, e.v, -1});
  builder.decompose(std::move(edges));

  // Canonicalisation: merge adjacent S-S and P-P nodes (the 2-way split can
  // carve one series chain into several S pieces).
  {
    std::vector<char> dead(builder.nodes.size(), 0);
    bool merged = true;
    while (merged) {
      merged = false;
      // vid -> list of (node, edge index) among live nodes.
      std::map<int, std::vector<std::pair<int, int>>> twins;
      for (int n = 0; n < static_cast<int>(builder.nodes.size()); ++n) {
        if (dead[static_cast<std::size_t>(n)]) continue;
        const auto& vids = builder.node_vids[static_cast<std::size_t>(n)];
        for (int e = 0; e < static_cast<int>(vids.size()); ++e) {
          if (vids[static_cast<std::size_t>(e)] >= 0) {
            twins[vids[static_cast<std::size_t>(e)]].push_back({n, e});
          }
        }
      }
      for (const auto& [vid, ends] : twins) {
        if (ends.size() != 2) continue;
        const auto [n1, e1] = ends[0];
        const auto [n2, e2] = ends[1];
        if (n1 == n2) continue;
        SpqrNode& a = builder.nodes[static_cast<std::size_t>(n1)];
        SpqrNode& b = builder.nodes[static_cast<std::size_t>(n2)];
        if (a.type != b.type || a.type == NodeType::kR) continue;

        // Merge b into a, dropping the twin virtual edges.
        std::vector<SkeletonEdge> new_edges;
        std::vector<int> new_vids;
        for (int e = 0; e < static_cast<int>(a.edges.size()); ++e) {
          if (e == e1) continue;
          new_edges.push_back(a.edges[static_cast<std::size_t>(e)]);
          new_vids.push_back(builder.node_vids[static_cast<std::size_t>(n1)][static_cast<std::size_t>(e)]);
        }
        for (int e = 0; e < static_cast<int>(b.edges.size()); ++e) {
          if (e == e2) continue;
          new_edges.push_back(b.edges[static_cast<std::size_t>(e)]);
          new_vids.push_back(builder.node_vids[static_cast<std::size_t>(n2)][static_cast<std::size_t>(e)]);
        }
        a.edges = std::move(new_edges);
        builder.node_vids[static_cast<std::size_t>(n1)] = std::move(new_vids);
        {
          std::set<Vertex> vs;
          for (const SkeletonEdge& e : a.edges) {
            vs.insert(e.u);
            vs.insert(e.v);
          }
          a.vertices.assign(vs.begin(), vs.end());
        }
        if (a.type == NodeType::kS) {
          // Re-walk the merged cycle.
          std::map<Vertex, std::vector<Vertex>> adj;
          for (const SkeletonEdge& e : a.edges) {
            adj[e.u].push_back(e.v);
            adj[e.v].push_back(e.u);
          }
          std::vector<Vertex> order;
          const Vertex start = a.vertices.front();
          Vertex prev = graph::kNoVertex;
          Vertex cur = start;
          do {
            order.push_back(cur);
            const auto& nb = adj[cur];
            const Vertex next = (nb[0] != prev) ? nb[0] : nb[1];
            prev = cur;
            cur = next;
          } while (cur != start);
          a.cycle_order = std::move(order);
        }
        dead[static_cast<std::size_t>(n2)] = 1;
        merged = true;
        break;
      }
    }
    // Compact live nodes.
    std::vector<SpqrNode> live_nodes;
    std::vector<std::vector<int>> live_vids;
    for (std::size_t n = 0; n < builder.nodes.size(); ++n) {
      if (dead[n]) continue;
      live_nodes.push_back(std::move(builder.nodes[n]));
      live_vids.push_back(std::move(builder.node_vids[n]));
    }
    builder.nodes = std::move(live_nodes);
    builder.node_vids = std::move(live_vids);
  }

  SpqrTree tree;
  tree.nodes = std::move(builder.nodes);

  // Pair up virtual twins: vid -> (node, edge index).
  std::map<int, std::vector<std::pair<int, int>>> twins;
  for (int n = 0; n < tree.num_nodes(); ++n) {
    const auto& vids = builder.node_vids[static_cast<std::size_t>(n)];
    for (int e = 0; e < static_cast<int>(vids.size()); ++e) {
      if (vids[static_cast<std::size_t>(e)] >= 0) {
        twins[vids[static_cast<std::size_t>(e)]].push_back({n, e});
      }
    }
  }
  for (const auto& [vid, ends] : twins) {
    if (ends.size() != 2) throw std::logic_error("spqr_tree: unmatched virtual edge");
    const auto [n1, e1] = ends[0];
    const auto [n2, e2] = ends[1];
    tree.nodes[static_cast<std::size_t>(n1)].edges[static_cast<std::size_t>(e1)].peer = n2;
    tree.nodes[static_cast<std::size_t>(n2)].edges[static_cast<std::size_t>(e2)].peer = n1;
    tree.tree_edges.push_back({std::min(n1, n2), std::max(n1, n2)});
  }
  std::sort(tree.tree_edges.begin(), tree.tree_edges.end());
  return tree;
}

std::vector<cuts::VertexPair> displayed_pairs(const SpqrTree& tree) {
  std::set<cuts::VertexPair> pairs;
  for (const SpqrNode& node : tree.nodes) {
    if (node.type == NodeType::kP) {
      int virtual_count = 0;
      for (const SkeletonEdge& e : node.edges) virtual_count += e.is_virtual ? 1 : 0;
      if (virtual_count >= 2) {
        pairs.insert(cuts::make_pair_sorted(node.vertices[0], node.vertices[1]));
      }
      continue;
    }
    // R and S nodes: virtual edge endpoints.
    for (const SkeletonEdge& e : node.edges) {
      if (e.is_virtual) pairs.insert(cuts::make_pair_sorted(e.u, e.v));
    }
    // S nodes: all non-adjacent cycle pairs.
    if (node.type == NodeType::kS) {
      const auto& order = node.cycle_order;
      const int k = static_cast<int>(order.size());
      for (int i = 0; i < k; ++i) {
        for (int j = i + 2; j < k; ++j) {
          if (i == 0 && j == k - 1) continue;  // adjacent around the cycle
          pairs.insert(cuts::make_pair_sorted(order[static_cast<std::size_t>(i)],
                                              order[static_cast<std::size_t>(j)]));
        }
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

}  // namespace lmds::spqr
