#pragma once
// Crossing 2-cuts (§5.3) and split-pair enumeration.
//
// Two 2-cuts c1, c2 cross when the two vertices of c1 lie in different
// components of G − c2 *and* vice versa. Cuts sharing a vertex never cross.
// The interesting-2-cut forests are exactly families of pairwise
// non-crossing cuts; cuts_cross is the predicate the tests of
// Proposition 5.8 are written against.

#include <vector>

#include "cuts/two_cuts.hpp"
#include "graph/graph.hpp"

namespace lmds::spqr {

using graph::Graph;
using graph::Vertex;

/// §5.3 crossing relation between two (minimal) 2-cuts.
bool cuts_cross(const Graph& g, cuts::VertexPair c1, cuts::VertexPair c2);

/// Split pairs of a 2-connected graph: adjacent pairs and minimal 2-cuts —
/// the pairs along which the SPQR decomposition may split.
std::vector<cuts::VertexPair> split_pairs(const Graph& g);

}  // namespace lmds::spqr
