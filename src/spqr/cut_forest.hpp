#pragma once
// Interesting-2-cut forests (§5.3): three families P1, P2, P3 of 2-cuts
// built from the SPQR tree such that (Proposition 5.8)
//   (1) every globally interesting vertex appears in some P_i together with
//       a friend, and
//   (2) within each P_i the cuts are pairwise non-crossing.
//
// The construction follows the paper's case analysis: all R-node virtual
// pairs and >=2-virtual P-node poles go to P1; S nodes (skeleton cycles of
// length k) contribute their virtual-edge pairs plus long-range cuts split
// across the families according to k and the positions of the virtual
// edges.

#include <array>
#include <vector>

#include "spqr/spqr_tree.hpp"

namespace lmds::spqr {

/// The three cut families.
struct CutForest {
  std::array<std::vector<cuts::VertexPair>, 3> families;

  /// All cuts of all families, deduplicated and sorted.
  std::vector<cuts::VertexPair> all() const;
};

/// Builds the forest for any connected graph: the graph is decomposed into
/// biconnected blocks and each block of >= 3 vertices contributes its
/// forest (a minimal 2-cut never spans blocks).
CutForest interesting_cut_forest(const Graph& g);

/// The biconnected-case construction (requires g 2-connected, >= 3
/// vertices).
CutForest interesting_cut_forest_biconnected(const Graph& g);

}  // namespace lmds::spqr
