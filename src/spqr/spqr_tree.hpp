#pragma once
// SPQR trees: the decomposition of a 2-connected graph into triconnected
// components (§5.3 of the paper). Used there to arrange interesting 2-cuts
// into three pairwise-non-crossing families (the "interesting 2-cut
// forests"); here also independently tested against the classic structure
// facts (cycles are one S node, 3-connected graphs one R node, theta
// bundles a P node with S children, and Proposition 5.7: every 2-cut shows
// up as a virtual edge / P pole pair / non-adjacent S-node pair).
//
// The construction is the straightforward recursive split decomposition on
// multigraphs (O(n·m²), fine for analysis workloads — this library never
// puts SPQR on the hot path).

#include <vector>

#include "cuts/two_cuts.hpp"
#include "graph/graph.hpp"

namespace lmds::spqr {

using graph::Graph;
using graph::Vertex;

/// Node kinds. Q nodes (single real edges) are not materialised, matching
/// the paper's convention.
enum class NodeType { kS, kP, kR };

/// An edge of a skeleton: endpoints are *global* vertex ids; a virtual edge
/// names the adjacent tree node it corresponds to.
struct SkeletonEdge {
  Vertex u = graph::kNoVertex;
  Vertex v = graph::kNoVertex;
  bool is_virtual = false;
  int peer = -1;  ///< adjacent tree node for virtual edges, else -1
};

/// One SPQR tree node.
struct SpqrNode {
  NodeType type = NodeType::kR;
  std::vector<Vertex> vertices;       ///< global ids, sorted
  std::vector<SkeletonEdge> edges;    ///< skeleton edges (may be parallel in P nodes)

  /// For S nodes: the skeleton cycle as an ordered global-vertex sequence.
  std::vector<Vertex> cycle_order;
};

/// The SPQR tree of a 2-connected graph.
struct SpqrTree {
  std::vector<SpqrNode> nodes;
  std::vector<std::pair<int, int>> tree_edges;  ///< node-index pairs

  int num_nodes() const { return static_cast<int>(nodes.size()); }

  /// Indices of nodes of the given type.
  std::vector<int> nodes_of_type(NodeType type) const;
};

/// Builds the SPQR tree. Requires g 2-connected with >= 3 vertices (throws
/// std::invalid_argument otherwise). Adjacent S nodes are merged, as are
/// adjacent P nodes, giving the canonical tree.
SpqrTree spqr_tree(const Graph& g);

/// Proposition 5.7 helper: all vertex pairs that the tree "displays" as
/// potential 2-cuts — endpoints of virtual edges (R/S nodes), poles of P
/// nodes with >= 2 virtual edges, and non-adjacent vertex pairs of S nodes.
std::vector<cuts::VertexPair> displayed_pairs(const SpqrTree& tree);

}  // namespace lmds::spqr
