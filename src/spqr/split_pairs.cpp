#include "spqr/split_pairs.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace lmds::spqr {

bool cuts_cross(const Graph& g, cuts::VertexPair c1, cuts::VertexPair c2) {
  if (c1.u == c2.u || c1.u == c2.v || c1.v == c2.u || c1.v == c2.v) return false;
  const auto separated_by = [&](cuts::VertexPair cut, cuts::VertexPair probe) {
    const Vertex removed[] = {cut.u, cut.v};
    const auto comps = graph::components_without(g, removed);
    const int cu = comps.component[static_cast<std::size_t>(probe.u)];
    const int cv = comps.component[static_cast<std::size_t>(probe.v)];
    return cu != cv;
  };
  return separated_by(c2, c1) && separated_by(c1, c2);
}

std::vector<cuts::VertexPair> split_pairs(const Graph& g) {
  std::vector<cuts::VertexPair> result = cuts::minimal_two_cuts(g);
  for (const graph::Edge e : g.edges()) {
    const cuts::VertexPair p = cuts::make_pair_sorted(e.u, e.v);
    if (!cuts::is_minimal_two_cut(g, p.u, p.v)) result.push_back(p);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace lmds::spqr
