#pragma once
// Vertex-disjoint connector machinery used by the K_{2,t}-minor tests.
//
// Fact (used throughout): G has a K_{2,t} minor iff there are two disjoint
// connected "hub" sets A, B and t vertex-disjoint connected sets C_1..C_t
// (disjoint from A ∪ B) each adjacent to both A and B. For FIXED hubs the
// maximum number of such C_i equals the maximum number of internally
// vertex-disjoint A–B paths (Menger), which we compute with a unit
// vertex-capacity max-flow (node splitting + BFS augmentation).

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::minor {

using graph::Graph;
using graph::Vertex;

/// Maximum number of vertex-disjoint connected sets, disjoint from A ∪ B,
/// each adjacent to both A and B. A and B must be disjoint and non-empty
/// (they need not be connected for the flow computation itself).
int max_disjoint_connectors(const Graph& g, std::span<const Vertex> a,
                            std::span<const Vertex> b);

/// Convenience overload for singleton hubs.
int max_disjoint_connectors(const Graph& g, Vertex a, Vertex b);

/// All connected vertex subsets of g with size in [1, max_size], as sorted
/// vertex lists. Exponential in max_size; used by the exact small-hub
/// K_{2,t} search.
std::vector<std::vector<Vertex>> connected_subsets(const Graph& g, int max_size);

}  // namespace lmds::minor
