#include "minor/k2t.hpp"

#include <algorithm>

#include "minor/minor_check.hpp"

namespace lmds::minor {

int max_k2t_singleton_hubs(const Graph& g) {
  int best = 0;
  for (Vertex a = 0; a < g.num_vertices(); ++a) {
    for (Vertex b = a + 1; b < g.num_vertices(); ++b) {
      best = std::max(best, max_disjoint_connectors(g, a, b));
    }
  }
  return best;
}

int max_k2t(const Graph& g, int max_hub_size) {
  if (max_hub_size <= 1) return max_k2t_singleton_hubs(g);
  const auto subsets = connected_subsets(g, max_hub_size);
  int best = 0;
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    for (std::size_t j = i + 1; j < subsets.size(); ++j) {
      // Hubs must be disjoint.
      const auto& a = subsets[i];
      const auto& b = subsets[j];
      bool disjoint = true;
      for (Vertex v : a) {
        if (std::binary_search(b.begin(), b.end(), v)) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) continue;
      best = std::max(best, max_disjoint_connectors(g, a, b));
    }
  }
  return best;
}

bool is_k2t_minor_free(const Graph& g, int t, int max_hub_size) {
  return max_k2t(g, max_hub_size) < t;
}

}  // namespace lmds::minor
