#pragma once
// K_{2,t}-minor detection.
//
// `max_k2t(g, max_hub_size)` returns the largest t such that a K_{2,t} minor
// with hub branch sets of size <= max_hub_size exists (0 when even K_{2,1}
// is absent). With max_hub_size >= n this is exact; the default of 3 is
// exact on all the structured families this library generates (theta chains,
// fans, strips, outerplanar blocks — their optimal hubs are single vertices
// or short paths) and is a lower bound in general. Generators certified "by
// construction" are additionally cross-checked against this in tests on
// small instances.

#include "graph/graph.hpp"

namespace lmds::minor {

using graph::Graph;
using graph::Vertex;

/// Largest t such that g has a K_{2,t} minor with connected hub sets of size
/// at most max_hub_size. Exact lower bound on the true maximum; exact value
/// when the true optimum uses hubs that small.
int max_k2t(const Graph& g, int max_hub_size = 3);

/// Fast variant restricted to singleton hubs (all vertex pairs).
int max_k2t_singleton_hubs(const Graph& g);

/// True iff no K_{2,t} minor was found with hubs of size <= max_hub_size.
/// (For certified generator families this equals true K_{2,t}-minor-freeness;
/// see header comment.)
bool is_k2t_minor_free(const Graph& g, int t, int max_hub_size = 3);

}  // namespace lmds::minor
