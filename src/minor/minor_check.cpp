#include "minor/minor_check.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace lmds::minor {

namespace {

// Unit-vertex-capacity max flow from a super-source (hub A) to a super-sink
// (hub B) via node splitting: every non-hub vertex v becomes v_in -> v_out
// with capacity 1; edges get capacity 1 in both directions between the
// corresponding in/out copies. BFS augmenting paths (Edmonds-Karp); the flow
// value is bounded by max degree so this is fast.
class VertexFlow {
 public:
  VertexFlow(const Graph& g, std::span<const Vertex> a, std::span<const Vertex> b) {
    const int n = g.num_vertices();
    role_.assign(static_cast<std::size_t>(n), Role::kFree);
    for (Vertex v : a) {
      if (!g.has_vertex(v)) throw std::invalid_argument("connectors: bad hub vertex");
      role_[static_cast<std::size_t>(v)] = Role::kSource;
    }
    for (Vertex v : b) {
      if (!g.has_vertex(v)) throw std::invalid_argument("connectors: bad hub vertex");
      if (role_[static_cast<std::size_t>(v)] == Role::kSource) {
        throw std::invalid_argument("connectors: hubs must be disjoint");
      }
      role_[static_cast<std::size_t>(v)] = Role::kSink;
    }

    // Node ids: 0 = S, 1 = T, then per free vertex v: in = 2 + 2v, out = 3 + 2v.
    num_nodes_ = 2 + 2 * n;
    head_.assign(static_cast<std::size_t>(num_nodes_), -1);

    for (Vertex v = 0; v < n; ++v) {
      if (role_[static_cast<std::size_t>(v)] != Role::kFree) continue;
      add_edge(in_node(v), out_node(v), 1);
    }
    for (const graph::Edge e : g.edges()) {
      const Role ru = role_[static_cast<std::size_t>(e.u)];
      const Role rv = role_[static_cast<std::size_t>(e.v)];
      if (ru != Role::kFree && rv != Role::kFree) continue;  // hub-hub edge irrelevant
      if (ru == Role::kSource) {
        add_edge(kSourceNode, in_node(e.v), 1);
      } else if (ru == Role::kSink) {
        add_edge(out_node(e.v), kSinkNode, 1);
      } else if (rv == Role::kSource) {
        add_edge(kSourceNode, in_node(e.u), 1);
      } else if (rv == Role::kSink) {
        add_edge(out_node(e.u), kSinkNode, 1);
      } else {
        add_edge(out_node(e.u), in_node(e.v), 1);
        add_edge(out_node(e.v), in_node(e.u), 1);
      }
    }
  }

  int max_flow() {
    int flow = 0;
    while (augment()) ++flow;
    return flow;
  }

 private:
  enum class Role { kFree, kSource, kSink };
  static constexpr int kSourceNode = 0;
  static constexpr int kSinkNode = 1;

  static int in_node(Vertex v) { return 2 + 2 * v; }
  static int out_node(Vertex v) { return 3 + 2 * v; }

  void add_edge(int from, int to, int cap) {
    // Forward edge and residual back edge, stored pairwise.
    to_.push_back(to);
    cap_.push_back(cap);
    next_.push_back(head_[static_cast<std::size_t>(from)]);
    head_[static_cast<std::size_t>(from)] = static_cast<int>(to_.size()) - 1;
    to_.push_back(from);
    cap_.push_back(0);
    next_.push_back(head_[static_cast<std::size_t>(to)]);
    head_[static_cast<std::size_t>(to)] = static_cast<int>(to_.size()) - 1;
  }

  bool augment() {
    std::vector<int> pred_edge(static_cast<std::size_t>(num_nodes_), -1);
    std::vector<char> seen(static_cast<std::size_t>(num_nodes_), 0);
    std::queue<int> queue;
    queue.push(kSourceNode);
    seen[kSourceNode] = 1;
    while (!queue.empty() && !seen[kSinkNode]) {
      const int u = queue.front();
      queue.pop();
      for (int e = head_[static_cast<std::size_t>(u)]; e != -1;
           e = next_[static_cast<std::size_t>(e)]) {
        const int w = to_[static_cast<std::size_t>(e)];
        if (cap_[static_cast<std::size_t>(e)] <= 0 || seen[static_cast<std::size_t>(w)]) continue;
        seen[static_cast<std::size_t>(w)] = 1;
        pred_edge[static_cast<std::size_t>(w)] = e;
        queue.push(w);
      }
    }
    if (!seen[kSinkNode]) return false;
    for (int v = kSinkNode; v != kSourceNode;) {
      const int e = pred_edge[static_cast<std::size_t>(v)];
      cap_[static_cast<std::size_t>(e)] -= 1;
      cap_[static_cast<std::size_t>(e ^ 1)] += 1;
      v = to_[static_cast<std::size_t>(e ^ 1)];
    }
    return true;
  }

  std::vector<Role> role_;
  int num_nodes_ = 0;
  std::vector<int> head_;
  std::vector<int> to_;
  std::vector<int> cap_;
  std::vector<int> next_;
};

}  // namespace

int max_disjoint_connectors(const Graph& g, std::span<const Vertex> a,
                            std::span<const Vertex> b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("connectors: empty hub");
  VertexFlow flow(g, a, b);
  return flow.max_flow();
}

int max_disjoint_connectors(const Graph& g, Vertex a, Vertex b) {
  const Vertex ha[] = {a};
  const Vertex hb[] = {b};
  return max_disjoint_connectors(g, ha, hb);
}

std::vector<std::vector<Vertex>> connected_subsets(const Graph& g, int max_size) {
  if (max_size < 1) return {};
  std::set<std::vector<Vertex>> seen;
  // Grow subsets by adding neighbours; start from singletons. To avoid
  // duplicates we canonicalise by sorting and use a set.
  std::vector<std::vector<Vertex>> frontier;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    frontier.push_back({v});
    seen.insert({v});
  }
  std::vector<std::vector<Vertex>> result(frontier.begin(), frontier.end());
  for (int size = 1; size < max_size; ++size) {
    std::vector<std::vector<Vertex>> next;
    for (const auto& subset : frontier) {
      for (Vertex v : subset) {
        for (Vertex w : g.neighbors(v)) {
          if (std::binary_search(subset.begin(), subset.end(), w)) continue;
          std::vector<Vertex> bigger = subset;
          bigger.insert(std::lower_bound(bigger.begin(), bigger.end(), w), w);
          if (seen.insert(bigger).second) next.push_back(std::move(bigger));
        }
      }
    }
    result.insert(result.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return result;
}

}  // namespace lmds::minor
