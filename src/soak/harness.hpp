#pragma once
// The soak run itself: boots one in-process lmds_serve (both transports,
// ephemeral ports), streams the deterministic workload (workload.hpp)
// through it under BAI arm selection (bai.hpp), oracle-checks every
// response (oracle.hpp), runs the protocol fuzz stage (fuzz.hpp), and
// returns the single JSON-able report (report.hpp).
//
// `duration` is a deterministic work budget — a fixed number of solve
// rounds and fuzz cases per unit — NOT wall-clock seconds (calibrated so a
// unit is about a second on a development machine). That is what makes
// `lmds_soak --duration 10 --seed 42` produce byte-identical reports across
// runs: same seed, same requests, same responses, same counters.

#include <cstdint>
#include <string>

#include "soak/report.hpp"

namespace lmds::soak {

struct SoakOptions {
  std::uint64_t seed = 1;
  int duration = 10;  ///< work units: kRoundsPerUnit solve rounds + kFuzzPerUnit fuzz cases each
  bool tcp = true;    ///< drive the newline-JSON line protocol
  bool http = true;   ///< drive the HTTP/1.1 front-end
  bool fuzz = true;   ///< run the protocol fuzz stage after the BAI loop
  bool timing = false;  ///< include wall_seconds in the report (breaks byte-determinism)
  std::string repro_dir = "repro";  ///< where violation repros are dumped
};

/// Solve rounds per duration unit (each round = one batch on one arm).
inline constexpr int kRoundsPerUnit = 3;
/// Fuzz cases per duration unit per enabled transport.
inline constexpr int kFuzzPerUnit = 12;
/// Graphs per solve round (one per workload family).
inline constexpr int kBatchSize = 5;

/// Runs one complete soak. Throws std::runtime_error only on harness-level
/// failures (cannot bind, cannot connect at startup); oracle violations and
/// fuzz failures are reported in the returned SoakReport, not thrown.
SoakReport run_soak(const SoakOptions& opts);

}  // namespace lmds::soak
