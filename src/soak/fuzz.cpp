#include "soak/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <vector>

namespace lmds::soak {

namespace {

// Framing guard: a mutated request must stay one line (see header comment).
void strip_newlines(std::string& s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
}

std::size_t pick_offset(std::mt19937_64& rng, std::size_t size) {
  if (size == 0) return 0;
  return static_cast<std::size_t>(rng() % size);
}

// Offsets of every quoted string in `s` (naive scan; good enough for
// protocol lines, which never contain escaped quotes in their keys).
std::vector<std::pair<std::size_t, std::size_t>> quoted_spans(const std::string& s) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '"') {
      const std::size_t start = i++;
      while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < s.size()) ++i;
        ++i;
      }
      if (i < s.size()) spans.emplace_back(start, i + 1 - start);
      ++i;
    } else {
      ++i;
    }
  }
  return spans;
}

}  // namespace

std::string_view to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::Truncate: return "truncate";
    case MutationKind::ByteFlip: return "byte_flip";
    case MutationKind::InsertJunk: return "insert_junk";
    case MutationKind::SwapKeys: return "swap_keys";
    case MutationKind::BigNumber: return "big_number";
    case MutationKind::DeepNest: return "deep_nest";
    case MutationKind::OversizeGraph: return "oversize_graph";
    case MutationKind::BinaryGarbage: return "binary_garbage";
    case MutationKind::EmptyLine: return "empty_line";
    case MutationKind::MalformedPatch: return "malformed_patch";
  }
  return "unknown";
}

std::string mutate_line(const std::string& valid_line, MutationKind kind,
                        std::mt19937_64& rng) {
  std::string out = valid_line;
  switch (kind) {
    case MutationKind::Truncate:
      out.resize(pick_offset(rng, out.size() + 1));
      break;
    case MutationKind::ByteFlip: {
      const int flips = 1 + static_cast<int>(rng() % 4);
      for (int f = 0; f < flips && !out.empty(); ++f) {
        const std::size_t at = pick_offset(rng, out.size());
        out[at] = static_cast<char>(out[at] ^ static_cast<char>(1u << (rng() % 7)));
      }
      break;
    }
    case MutationKind::InsertJunk: {
      static constexpr std::string_view kJunk = "{}[]:,\"\\x00nulltrue-1e999";
      const std::size_t at = pick_offset(rng, out.size() + 1);
      std::string junk;
      const int len = 1 + static_cast<int>(rng() % 12);
      for (int i = 0; i < len; ++i) junk += kJunk[rng() % kJunk.size()];
      out.insert(at, junk);
      break;
    }
    case MutationKind::SwapKeys: {
      const auto spans = quoted_spans(out);
      if (spans.size() >= 2) {
        const std::size_t a = rng() % spans.size();
        std::size_t b = rng() % spans.size();
        if (a == b) b = (b + 1) % spans.size();
        const auto [first, second] = std::minmax(spans[a], spans[b]);
        const std::string s1 = out.substr(first.first, first.second);
        const std::string s2 = out.substr(second.first, second.second);
        // Replace back-to-front so the earlier offset stays valid.
        out.replace(second.first, second.second, s1);
        out.replace(first.first, first.second, s2);
      }
      break;
    }
    case MutationKind::BigNumber: {
      const std::size_t digit = out.find_first_of("0123456789");
      if (digit != std::string::npos) {
        std::size_t end = digit;
        while (end < out.size() && std::isdigit(static_cast<unsigned char>(out[end]))) ++end;
        const char* huge = (rng() & 1) ? "99999999999999999999999999" : "-18446744073709551616";
        out.replace(digit, end - digit, huge);
      }
      break;
    }
    case MutationKind::DeepNest: {
      const int depth = 32 + static_cast<int>(rng() % 96);  // beyond the parser's 64 cap
      out = std::string(static_cast<std::size_t>(depth), '[') + out +
            std::string(static_cast<std::size_t>(depth), ']');
      break;
    }
    case MutationKind::OversizeGraph:
      out = oversize_solve_line(2'000'000 + static_cast<int>(rng() % 1'000'000));
      break;
    case MutationKind::BinaryGarbage: {
      const std::size_t keep = pick_offset(rng, out.size() + 1);
      out.resize(keep);
      const int len = 1 + static_cast<int>(rng() % 24);
      for (int i = 0; i < len; ++i) out += static_cast<char>(rng() & 0xff);
      break;
    }
    case MutationKind::EmptyLine:
      out.clear();
      break;
    case MutationKind::MalformedPatch: {
      // Syntactically valid patch_graph lines, each violating exactly one
      // invariant of the v2.1 edit contract — these must all come back as
      // structured protocol errors, never crash the patch pipeline. The
      // unknown-handle probes are spelled with handles no real store can
      // contain (the store's counter starts far below these hashes).
      static constexpr const char* kMalformed[] = {
          // self-loop in add
          "{\"op\":\"patch_graph\",\"handle\":\"gdeadbeefdeadbeef\",\"add\":[[3,3]]}",
          // duplicate entry inside one list
          "{\"op\":\"patch_graph\",\"handle\":\"gdeadbeefdeadbeef\",\"add\":[[0,1],[1,0]]}",
          // same pair added and deleted
          "{\"op\":\"patch_graph\",\"handle\":\"gdeadbeefdeadbeef\","
          "\"add\":[[0,2]],\"del\":[[2,0]]}",
          // well-formed handle that resolves to nothing
          "{\"op\":\"patch_graph\",\"handle\":\"gdeadbeefdeadbeef\",\"add\":[[0,2]]}",
          // handle with the wrong shape entirely
          "{\"op\":\"patch_graph\",\"handle\":\"not-a-handle\",\"add\":[[0,2]]}",
          // negative endpoint
          "{\"op\":\"patch_graph\",\"handle\":\"gdeadbeefdeadbeef\",\"del\":[[-1,4]]}",
          // no edit field at all
          "{\"op\":\"patch_graph\",\"handle\":\"gdeadbeefdeadbeef\"}",
          // shrinking n (it may only grow)
          "{\"op\":\"patch_graph\",\"handle\":\"gdeadbeefdeadbeef\",\"n\":1,\"add\":[[0,2]]}",
          // a non-pair edit entry
          "{\"op\":\"patch_graph\",\"handle\":\"gdeadbeefdeadbeef\",\"add\":[[0,1,2]]}",
      };
      out = kMalformed[rng() % std::size(kMalformed)];
      break;
    }
  }
  strip_newlines(out);
  return out;
}

std::string oversize_solve_line(int vertices) {
  // Tiny on the wire, enormous in claimed vertex count — probes the
  // max_graph_vertices guard, not the line-size one.
  return "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[{\"n\":" +
         std::to_string(vertices) + ",\"edges\":[[0,1]]}]}";
}

}  // namespace lmds::soak
