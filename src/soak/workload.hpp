#pragma once
// Workload generation for the soak harness: an infinite, deterministic
// stream of graphs from the paper's minor-free families. Case `index` of a
// run is a pure function of (run_seed, index) — the report records the two
// numbers, and a repro regenerates the exact graph bit-for-bit via the
// uint64_t-seed generator overloads (graph/generators.hpp,
// ding/generators.hpp).
//
// Each case carries the family's K_{2,t}-minor-free certificate when one is
// known by construction (trees exclude K_{2,2}, outerplanar graphs K_{2,4},
// theta chains K_{2,parallel+1}, Ding cacti K_{2,cfg.t}); the oracle only
// asserts the paper's approximation bounds on certified cases. Apollonian
// networks are planar but carry no K_{2,t} certificate, so they exercise
// validity only.

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "graph/ops.hpp"

namespace lmds::soak {

/// One generated workload item.
struct GraphCase {
  std::string family;     ///< "tree" | "outerplanar" | "theta" | "cactus" | "apollonian"
  graph::Graph graph;
  std::uint64_t seed = 0; ///< generator seed ((run_seed, index)-mixed; 0 for seedless families)
  int certified_t = 0;    ///< K_{2,certified_t}-minor-free by construction; 0 = uncertified
};

/// Number of families make_case cycles through.
inline constexpr std::uint64_t kFamilies = 5;

/// splitmix64 of (run_seed, index) — the per-case generator seed. Exposed so
/// tests and the repro dumper derive the same seed the harness used.
std::uint64_t mix_seed(std::uint64_t run_seed, std::uint64_t index);

/// Case `index` of the run seeded `run_seed`. Sizes are kept small enough
/// (tens of vertices) that the oracle's exact reference usually finishes, so
/// ratio bounds are actually asserted rather than skipped.
GraphCase make_case(std::uint64_t run_seed, std::uint64_t index);

/// A deterministic edit batch against `g` for the patch_graph soak arm: up
/// to `edits` edge toggles (an existing pick becomes a delete, an absent one
/// an add), always consistent by construction — no duplicates, no
/// add∩del, no self-loops — so the server must accept it. Pure function of
/// (g, seed); may return fewer than `edits` edits (or none on tiny graphs).
graph::GraphPatch make_patch(const graph::Graph& g, std::uint64_t seed, int edits);

}  // namespace lmds::soak
