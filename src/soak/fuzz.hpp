#pragma once
// Protocol fuzzing for the soak harness: deterministic mutations of valid
// v1/v2 request lines. The mutation engine is pure string work (seeded rng
// in, mutated line out) so tests/test_soak.cpp can round-trip every mutation
// kind through protocol.cpp's parser under asan-ubsan without a socket; the
// harness (harness.cpp) sends the same mutations at a live server and
// asserts the invariant the server must keep: answer with a protocol error
// or close the connection — never crash, never wedge.
//
// Mutated lines never contain '\n' or '\r' (stripped after mutation), so a
// mutation attacks the request *parser*, not the line framing — a framing
// break would just concatenate into a different single line anyway.

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace lmds::soak {

/// The mutation classes the fuzzer cycles through.
enum class MutationKind {
  Truncate,       ///< cut the line at a random byte
  ByteFlip,       ///< flip random bits in random bytes
  InsertJunk,     ///< splice printable garbage at a random offset
  SwapKeys,       ///< swap two quoted strings (field names/values)
  BigNumber,      ///< replace a digit run with a huge literal
  DeepNest,       ///< wrap the line in many array brackets
  OversizeGraph,  ///< a syntactically valid solve whose graph busts limits
  BinaryGarbage,  ///< non-UTF-8 noise appended to a valid prefix
  EmptyLine,      ///< the degenerate ""
  MalformedPatch, ///< a well-formed patch_graph that breaks an edit invariant
};

inline constexpr int kMutationKinds = 10;

std::string_view to_string(MutationKind kind);

/// Applies `kind` to `valid_line`. Deterministic in (valid_line, rng state).
/// The result contains no '\n'/'\r'.
std::string mutate_line(const std::string& valid_line, MutationKind kind,
                        std::mt19937_64& rng);

/// A syntactically well-formed solve line whose inline graph claims
/// `vertices` vertices — the OversizeGraph payload (also used directly by
/// the harness to probe ServerLimits::max_graph_vertices).
std::string oversize_solve_line(int vertices);

}  // namespace lmds::soak
