#pragma once
// The soak run's single JSON artifact: configurations ranked by the BAI
// sampler, per-config approximation-ratio histograms, every oracle violation
// with its replay command, fuzz coverage counters, and the server's executor
// health snapshot. One report = one CI artifact.
//
// Determinism contract: for a fixed (--seed, --duration, transport flags)
// the emitted JSON is byte-identical across runs — the acceptance gate diffs
// two runs. Everything wall-clock lives behind `wall_seconds >= 0`, which
// the harness only fills under --timing; maps are std::map (sorted
// iteration); doubles go through json_append_double (shortest round-trip,
// locale-free).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lmds::soak {

/// Fixed-bucket histogram of measured approximation ratios.
struct RatioHistogram {
  /// Upper edges; the last bucket is "> 5". A ratio lands in the first
  /// bucket whose edge it does not exceed.
  static constexpr double kEdges[] = {1.0, 1.25, 1.5, 2.0, 3.0, 5.0};
  static constexpr int kBuckets = 7;

  std::uint64_t counts[kBuckets] = {};
  std::uint64_t samples = 0;
  double max_ratio = 0.0;

  void add(double ratio);
  void append_json(std::string& out) const;
};

/// One solver/parameter configuration's ranked result.
struct ConfigResult {
  std::string name;             ///< arm label, e.g. "algorithm1-paper"
  std::string solver;           ///< registry solver name
  std::string options_members;  ///< the request's options object, e.g. {"t":5}
  std::uint64_t pulls = 0;      ///< batches the sampler gave this arm
  double mean_reward = 0.0;
  double reward_variance = 0.0;
  std::uint64_t graphs = 0;     ///< graphs solved under this config
  std::uint64_t violations = 0;
  RatioHistogram ratios;
};

/// One oracle violation or fuzz-stage failure, replayable from the report.
struct ViolationRecord {
  std::string config;   ///< arm label ("fuzz" for fuzz-stage failures)
  std::string family;
  std::uint64_t index = 0;  ///< workload case index
  std::uint64_t seed = 0;   ///< generator seed (workload.hpp mix_seed)
  std::string reason;
  std::string repro_path;  ///< file under --repro-dir ("" if dump failed)
  std::string replay;      ///< one-line mds_cli / serve_client command
};

/// Per-mutation-kind fuzz outcome counters. The three outcome classes are
/// exhaustive: the server answered an error line, answered an ok line (the
/// mutation accidentally stayed well-formed), or closed the connection.
/// Anything else would be a crash/wedge — recorded as a failure, not a
/// counter.
struct FuzzKindCounters {
  std::uint64_t attempts = 0;
  std::uint64_t error_responses = 0;
  std::uint64_t ok_responses = 0;
  std::uint64_t closed_connections = 0;
};

struct FuzzSummary {
  std::map<std::string, FuzzKindCounters> kinds;  ///< by mutation-kind name
  std::uint64_t liveness_probes = 0;  ///< post-close reconnect + stats pings
  std::uint64_t failures = 0;         ///< crashes/wedges (details in violations)
};

/// Executor health + server counters scraped from the final stats probe.
struct ExecutorSnapshot {
  std::uint64_t batches_started = 0;
  std::uint64_t shards_executed = 0;
  std::uint64_t solves_served = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t requests = 0;
  std::uint64_t graphs_solved = 0;
};

struct SoakReport {
  std::uint64_t seed = 0;
  int duration = 0;
  bool tcp = false;
  bool http = false;
  std::string sampling_rule;
  std::uint64_t decided_after = 0;  ///< rewards until BAI confidence (0 = never)
  std::string best_config;          ///< name of the winning arm
  std::vector<ConfigResult> configs;  ///< ranked, best first
  std::vector<ViolationRecord> violations;
  FuzzSummary fuzz;
  ExecutorSnapshot executor;
  double wall_seconds = -1.0;  ///< < 0 = omitted (the deterministic default)

  std::uint64_t total_violations() const { return violations.size(); }
  std::string to_json() const;
};

}  // namespace lmds::soak
