#pragma once
// The soak harness's validity oracle: every response a live server produces
// is re-checked client-side against the paper's guarantees. Two layers:
//
//  1. Validity — the returned set must actually dominate (MDS solvers) or
//     cover every edge (MVC solvers), re-verified with solve/validate.hpp on
//     the locally regenerated graph, never trusted from the wire.
//  2. Approximation ratio — when the exact reference is computable
//     (core::measure_*_ratio reports exact = true; soak keeps instances
//     small so it usually is) and the case carries a K_{2,t}-minor-free
//     certificate, the ratio must not exceed the solver's proven bound:
//       algorithm1 (paper radii, options t >= certified t)  -> 51
//                  (PaperConstants::derived_ratio; see constants.hpp on the
//                   printed-50 vs derived-51 gap)
//       theorem44       -> 2t - 1      theorem44-mvc -> t
//       greedy          -> 1 + ln n    exact / exact-mvc -> 1
//     Everything else (ksv, take-all, tree-rule, algorithm1-mvc, ablation
//     radii, uncertified families) is validity-only.
//
// The oracle is a pure function of (case, request, solution) — reusable from
// tests/test_soak.cpp without a server.

#include <span>
#include <string>
#include <string_view>

#include "api/api.hpp"
#include "soak/workload.hpp"

namespace lmds::soak {

/// What the oracle concluded about one response.
struct OracleVerdict {
  bool valid = false;          ///< solution dominates / covers
  bool ratio_checked = false;  ///< a bound applied AND the reference was exact
  double ratio = 0.0;          ///< |solution| / reference (when reference exact)
  double bound = 0.0;          ///< the bound asserted (when ratio_checked)
  std::string reason;          ///< empty iff ok()

  bool ok() const { return reason.empty(); }
};

/// The proven approximation bound for `solver` on a K_{2,certified_t}-free
/// instance of `n` vertices under `options`, or 0 when no bound applies
/// (unknown solver, uncertified case, ablation radii, options t below the
/// certificate).
double ratio_bound(std::string_view solver, const api::Options& options, int certified_t,
                   int n);

/// Checks one response. `problem` is the solver's declared problem (the
/// oracle validates against the right predicate). Never throws.
OracleVerdict check_response(const GraphCase& c, std::string_view solver,
                             const api::Options& options, api::Problem problem,
                             std::span<const graph::Vertex> solution);

}  // namespace lmds::soak
