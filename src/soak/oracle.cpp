#include "soak/oracle.hpp"

#include <cmath>

#include "core/constants.hpp"
#include "core/metrics.hpp"
#include "solve/validate.hpp"

namespace lmds::soak {

namespace {

int option_int(const api::Options& options, std::string_view name, int fallback) {
  const auto it = options.find(name);
  return it == options.end() ? fallback : it->second.as_int();
}

}  // namespace

double ratio_bound(std::string_view solver, const api::Options& options, int certified_t,
                   int n) {
  if (solver == "exact" || solver == "exact-mvc") return 1.0;
  if (solver == "greedy") return 1.0 + std::log(static_cast<double>(n));
  if (certified_t <= 0) return 0.0;  // no certificate, no minor-free bound
  if (solver == "theorem44") {
    return static_cast<double>(core::PaperConstants{certified_t, 1}.theorem44_mds_ratio());
  }
  if (solver == "theorem44-mvc") {
    return static_cast<double>(core::PaperConstants{certified_t, 1}.theorem44_mvc_ratio());
  }
  if (solver == "algorithm1") {
    // Theorem 4.1's constant holds for the paper's radii only — the registry
    // defaults (radius1 = radius2 = 4) are ablation overrides with no proven
    // bound — and for an options t at least the certificate's (the class
    // parameter must contain the input's class).
    const int t = option_int(options, "t", 5);
    const int radius1 = option_int(options, "radius1", 4);
    const int radius2 = option_int(options, "radius2", 4);
    if (t < certified_t || radius1 > 0 || radius2 > 0) return 0.0;
    return static_cast<double>(core::PaperConstants{t, 1}.derived_ratio());
  }
  return 0.0;  // ksv / take-all / tree-rule / algorithm1-mvc: validity only
}

OracleVerdict check_response(const GraphCase& c, std::string_view solver,
                             const api::Options& options, api::Problem problem,
                             std::span<const graph::Vertex> solution) {
  OracleVerdict v;
  const int n = c.graph.num_vertices();
  for (const graph::Vertex u : solution) {
    if (u < 0 || u >= n) {
      v.reason = "solution names vertex " + std::to_string(u) + " outside [0, " +
                 std::to_string(n) + ")";
      return v;
    }
  }
  v.valid = problem == api::Problem::Mvc ? solve::is_vertex_cover(c.graph, solution)
                                         : solve::is_dominating_set(c.graph, solution);
  if (!v.valid) {
    v.reason = problem == api::Problem::Mvc ? "solution is not a vertex cover"
                                            : "solution is not a dominating set";
    return v;
  }

  const double bound = ratio_bound(solver, options, c.certified_t, n);
  if (bound <= 0.0) return v;  // validity-only solver/case

  const core::RatioReport report = problem == api::Problem::Mvc
                                       ? core::measure_mvc_ratio(c.graph, solution)
                                       : core::measure_mds_ratio(c.graph, solution);
  if (!report.exact) return v;  // reference is only a lower bound: a ratio
                                // above the bound would not be a violation
  v.ratio_checked = true;
  v.ratio = report.ratio;
  v.bound = bound;
  if (report.ratio > bound + 1e-9) {
    v.reason = "ratio " + report.to_string() + " exceeds the proven bound " +
               std::to_string(bound) + " for " + std::string(solver) + " on " + c.family +
               " (K_{2," + std::to_string(c.certified_t) + "}-minor-free)";
  }
  return v;
}

}  // namespace lmds::soak
