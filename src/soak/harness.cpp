#include "soak/harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "soak/bai.hpp"
#include "soak/fuzz.hpp"
#include "soak/oracle.hpp"
#include "soak/workload.hpp"
#include "solve/bounds.hpp"

namespace lmds::soak {

namespace {

using server::JsonValue;
using server::ProtocolClient;

/// One BAI arm: a solver plus the options the soak always sends with it.
struct ArmConfig {
  const char* name;
  const char* solver;
  api::Problem problem;
  std::vector<std::pair<std::string, int>> int_options;

  std::string options_members() const {
    if (int_options.empty()) return "{}";
    std::string out = "{";
    for (std::size_t i = 0; i < int_options.size(); ++i) {
      if (i) out += ',';
      out += '"' + int_options[i].first + "\":" + std::to_string(int_options[i].second);
    }
    return out + "}";
  }

  api::Options options() const {
    api::Options o;
    for (const auto& [k, v] : int_options) o[k] = v;
    return o;
  }
};

const std::vector<ArmConfig>& arm_table() {
  // algorithm1 twice on purpose: the paper radii (whose 51-bound the oracle
  // asserts) against the registry's r=4 ablation — the exact comparison the
  // radius-sweep bench makes, now ranked live by reward.
  static const std::vector<ArmConfig> kArms = {
      {"algorithm1-paper", "algorithm1", api::Problem::Mds,
       {{"t", 5}, {"radius1", 0}, {"radius2", 0}}},
      {"algorithm1-r4", "algorithm1", api::Problem::Mds,
       {{"t", 5}, {"radius1", 4}, {"radius2", 4}}},
      {"theorem44", "theorem44", api::Problem::Mds, {}},
      {"theorem44-mvc", "theorem44-mvc", api::Problem::Mvc, {}},
      {"greedy", "greedy", api::Problem::Mds, {}},
      {"ksv-k3", "ksv", api::Problem::Mds, {{"k", 3}}},
      {"tree-rule", "tree-rule", api::Problem::Mds, {}},
  };
  return kArms;
}

/// The solve request line the repro file records: self-contained (inline
/// graph), replayable with `serve_client --send`.
std::string solve_line_for(const ArmConfig& arm, const GraphCase& c) {
  std::string line = "{\"op\":\"solve\",\"solver\":\"" + std::string(arm.solver) + "\"";
  if (!arm.int_options.empty()) line += ",\"options\":" + arm.options_members();
  line += ",\"graphs\":[" + server::encode_graph_json(c.graph) + "]}";
  return line;
}

std::string mds_cli_replay(const ArmConfig& arm, const std::string& edges_path) {
  std::string cmd = "./mds_cli " + std::string(arm.solver) + " " + edges_path;
  for (const auto& [k, v] : arm.int_options) cmd += " --" + k + " " + std::to_string(v);
  return cmd;
}

/// The repro dumper: offending graph as an edge list + the full request as
/// JSON under repro_dir, plus a one-line replay command (printed and kept in
/// the report).
ViolationRecord dump_violation(const SoakOptions& opts, const ArmConfig& arm,
                               const GraphCase& c, std::uint64_t index,
                               const std::string& reason) {
  ViolationRecord rec;
  rec.config = arm.name;
  rec.family = c.family;
  rec.index = index;
  rec.seed = c.seed;
  rec.reason = reason;
  const std::string base = opts.repro_dir + "/soak-" + std::to_string(opts.seed) + "-case-" +
                           std::to_string(index) + "-" + arm.name;
  try {
    std::filesystem::create_directories(opts.repro_dir);
    const std::string edges_path = base + ".edges";
    {
      std::ofstream edges(edges_path);
      graph::write_edge_list(edges, c.graph);
      if (!edges) throw std::runtime_error("cannot write " + edges_path);
    }
    const std::string request_line = solve_line_for(arm, c);
    {
      std::ofstream meta(base + ".json");
      meta << "{\"family\":\"" << c.family << "\",\"seed\":" << c.seed
           << ",\"certified_t\":" << c.certified_t << ",\"reason\":";
      std::string escaped;
      server::json_append_string(escaped, reason);
      meta << escaped << ",\"request\":";
      escaped.clear();
      server::json_append_string(escaped, request_line);
      meta << escaped << "}\n";
      if (!meta) throw std::runtime_error("cannot write " + base + ".json");
    }
    rec.repro_path = base + ".json";
    rec.replay = mds_cli_replay(arm, edges_path);
    std::fprintf(stderr, "soak: ORACLE VIOLATION [%s/%s case %llu] %s\n  replay: %s\n",
                 arm.name, c.family.c_str(), static_cast<unsigned long long>(index),
                 reason.c_str(), rec.replay.c_str());
    std::fprintf(stderr, "  or: ./serve_client --port <PORT> --send \"$(python3 -c "
                         "'import json,sys;print(json.load(open(sys.argv[1]))[\"request\"])' "
                         "%s)\"\n",
                 rec.repro_path.c_str());
  } catch (const std::exception& e) {
    rec.repro_path.clear();
    rec.replay = mds_cli_replay(arm, base + ".edges");
    std::fprintf(stderr, "soak: ORACLE VIOLATION [%s case %llu] %s (repro dump failed: %s)\n",
                 arm.name, static_cast<unsigned long long>(index), reason.c_str(), e.what());
  }
  return rec;
}

std::uint64_t field_u64(const JsonValue& obj, std::string_view outer, std::string_view inner) {
  const JsonValue* o = obj.find(outer);
  if (!o) return 0;
  const JsonValue* v = o->find(inner);
  return v && v->type() == JsonValue::Type::Int ? static_cast<std::uint64_t>(v->as_int()) : 0;
}

}  // namespace

SoakReport run_soak(const SoakOptions& opts) {
  const auto wall_start = std::chrono::steady_clock::now();
  SoakReport report;
  report.seed = opts.seed;
  report.duration = opts.duration;
  report.tcp = opts.tcp;
  report.http = opts.http;
  report.sampling_rule = "top-two";

  // One in-process server, both listeners on ephemeral ports. threads = 1 in
  // the executor keeps every counter (cache hits, shard counts) a pure
  // function of the request sequence — the byte-determinism the report
  // promises. The snapshot verbs are disabled: the fuzz stage must not be
  // able to touch the filesystem through a lucky mutation.
  server::ServerOptions sopts;
  sopts.port = 0;
  sopts.http_port = 0;
  sopts.core.batch = {.threads = 1, .shard_size = 4, .cache_capacity = 4096};
  sopts.core.snapshot_dir = "";
  server::Server server(sopts);
  server.bind_and_listen();
  std::thread serving([&server] { server.serve(); });

  const std::string host = "127.0.0.1";
  const int line_port = server.port();
  const int http_port = server.http_port();

  const auto& arms = arm_table();
  std::vector<ConfigResult> results(arms.size());
  for (std::size_t a = 0; a < arms.size(); ++a) {
    results[a].name = arms[a].name;
    results[a].solver = arms[a].solver;
    results[a].options_members = arms[a].options_members();
  }

  BaiSampler sampler(arms.size(), SamplingRule::TopTwo, /*threshold=*/3.0,
                     /*min_pulls=*/2, mix_seed(opts.seed, 0xBA1));

  try {
    ProtocolClient line_client(host, line_port, /*http=*/false, "");
    ProtocolClient http_client(host, http_port, /*http=*/true, "");
    static constexpr const char* kNamespaces[] = {"", "soak-a", "soak-b"};

    const int rounds = opts.duration * kRoundsPerUnit;
    std::uint64_t next_index = 0;
    for (int round = 0; round < rounds; ++round) {
      const bool use_http = opts.http && (!opts.tcp || round % 2 == 1);
      ProtocolClient& client = use_http ? http_client : line_client;
      const std::string ns = kNamespaces[static_cast<std::size_t>(round) % 3];
      const bool by_handle = round % 3 == 2;

      // Admin-verb mixing: a long-lived client interleaves admin traffic
      // with solves, so the soak covers those paths continuously too.
      if (round % 4 == 0) server::require_ok(client.exchange("stats", ""), "stats");
      if (round % 6 == 3) server::require_ok(client.exchange("solvers", ""), "solvers");

      const std::size_t a = sampler.next_arm();
      const ArmConfig& arm = arms[a];

      std::vector<GraphCase> batch;
      batch.reserve(kBatchSize);
      const std::uint64_t base_index = next_index;
      for (int i = 0; i < kBatchSize; ++i) batch.push_back(make_case(opts.seed, next_index++));

      // Graph refs: inline edge lists, or store handles (upload, solve
      // twice — the repeat must hit the response cache — then drop).
      std::vector<std::string> handles;
      std::string graphs_json = "[";
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (i) graphs_json += ',';
        if (by_handle) {
          const JsonValue put = client.put_graph(server::encode_graph_json(batch[i].graph));
          server::require_ok(put, "put_graph");
          handles.push_back(put.find("handle")->as_string());
          graphs_json += '"' + handles.back() + '"';
        } else {
          graphs_json += server::encode_graph_json(batch[i].graph);
        }
      }
      graphs_json += ']';

      std::string members = "\"solver\":\"" + std::string(arm.solver) + "\"";
      if (!arm.int_options.empty()) members += ",\"options\":" + arm.options_members();
      if (!ns.empty()) members += ",\"namespace\":\"" + ns + "\"";
      members += ",\"graphs\":" + graphs_json;

      // Reward inputs, filled from the first pass: solution quality
      // (combinatorial lower bound over returned size, <= 1, bigger is
      // better) and a deterministic cost model (graph volume n + m as the
      // unit of work) — the throughput-and-ratio proxy that keeps the
      // report byte-deterministic where measured wall-clock would not be.
      double quality_sum = 0.0;
      double cost_sum = 0.0;

      const int passes = by_handle ? 2 : 1;  // the repeat must hit the cache
      for (int pass = 0; pass < passes; ++pass) {
        const JsonValue response = client.exchange("solve", members);
        const JsonValue* ok = response.find("ok");
        if (!ok || !ok->as_bool()) {
          const JsonValue* err = response.find("error");
          report.violations.push_back(dump_violation(
              opts, arm, batch[0], base_index,
              "server rejected a valid solve: " +
                  (err ? err->as_string() : std::string("(no error field)"))));
          ++results[a].violations;
          continue;
        }
        const auto& responses = response.find("responses")->as_array();
        for (std::size_t i = 0; i < responses.size() && i < batch.size(); ++i) {
          std::vector<graph::Vertex> solution;
          for (const JsonValue& v : responses[i].find("solution")->as_array()) {
            solution.push_back(static_cast<graph::Vertex>(v.as_int()));
          }
          const OracleVerdict verdict = check_response(batch[i], arm.solver, arm.options(),
                                                       arm.problem, solution);
          if (pass == 0) {
            ++results[a].graphs;
            if (verdict.ratio_checked) results[a].ratios.add(verdict.ratio);
            const int lb = arm.problem == api::Problem::Mvc
                               ? solve::mvc_lower_bound(batch[i].graph)
                               : solve::mds_lower_bound(batch[i].graph);
            quality_sum += static_cast<double>(lb) /
                           static_cast<double>(solution.empty() ? 1 : solution.size());
            cost_sum += static_cast<double>(batch[i].graph.num_vertices() +
                                            batch[i].graph.num_edges());
          }
          if (!verdict.ok()) {
            report.violations.push_back(dump_violation(opts, arm, batch[i], base_index + i,
                                                       verdict.reason));
            ++results[a].violations;
          }
        }
      }
      // Dynamic-graph arm (v2.1): patch each stored handle with a small
      // deterministic edit batch and solve the derived child with the same
      // arm — the oracle re-validates against the actually-patched graph.
      // LOCAL solvers ride the incremental re-solve here; the rest must fall
      // back to a full solve with identical output (tests/test_patch.cpp
      // asserts the bit-identity, the soak asserts it never stops holding).
      if (by_handle) {
        for (std::size_t i = 0; i < handles.size(); ++i) {
          const GraphCase& parent = batch[i];
          const graph::GraphPatch patch = make_patch(
              parent.graph, mix_seed(opts.seed, (base_index + i) ^ 0xED17ULL), /*edits=*/3);
          if (patch.add.empty() && patch.del.empty()) continue;
          const JsonValue patched =
              client.patch_graph(handles[i], server::encode_patch_members(patch));
          server::require_ok(patched, "patch_graph");
          const std::string child = patched.find("handle")->as_string();

          GraphCase child_case;
          child_case.family = parent.family + "+patch";
          child_case.graph = graph::apply_patch(parent.graph, patch).graph;
          child_case.seed = parent.seed;
          child_case.certified_t = 0;  // edits void the construction certificate

          std::string child_members = "\"solver\":\"" + std::string(arm.solver) + "\"";
          if (!arm.int_options.empty()) child_members += ",\"options\":" + arm.options_members();
          if (!ns.empty()) child_members += ",\"namespace\":\"" + ns + "\"";
          child_members += ",\"graphs\":[\"" + child + "\"]";
          const JsonValue response = client.exchange("solve", child_members);
          const JsonValue* ok = response.find("ok");
          if (!ok || !ok->as_bool()) {
            const JsonValue* err = response.find("error");
            report.violations.push_back(dump_violation(
                opts, arm, child_case, base_index + i,
                "server rejected a patched-handle solve: " +
                    (err ? err->as_string() : std::string("(no error field)"))));
            ++results[a].violations;
          } else {
            std::vector<graph::Vertex> solution;
            for (const JsonValue& v :
                 response.find("responses")->as_array().at(0).find("solution")->as_array()) {
              solution.push_back(static_cast<graph::Vertex>(v.as_int()));
            }
            const OracleVerdict verdict = check_response(child_case, arm.solver, arm.options(),
                                                         arm.problem, solution);
            if (!verdict.ok()) {
              report.violations.push_back(
                  dump_violation(opts, arm, child_case, base_index + i, verdict.reason));
              ++results[a].violations;
            }
          }
          if (child != handles[i]) {
            server::require_ok(client.drop_graph(child), "drop_graph");
          }
        }
      }
      for (const std::string& h : handles) server::require_ok(client.drop_graph(h), "drop_graph");

      const double quality = quality_sum / static_cast<double>(batch.size());
      const double cost = cost_sum / static_cast<double>(batch.size());
      sampler.record(a, quality * (200.0 / (200.0 + cost)));
    }
  } catch (const std::exception& e) {
    // A dead client connection mid-loop means the server died under valid
    // traffic — the worst possible soak outcome.
    ViolationRecord rec;
    rec.config = "harness";
    rec.reason = std::string("soak loop aborted: ") + e.what();
    report.violations.push_back(std::move(rec));
  }

  for (std::size_t a = 0; a < arms.size(); ++a) {
    results[a].pulls = sampler.arms()[a].pulls;
    results[a].mean_reward = sampler.arms()[a].mean;
    results[a].reward_variance = sampler.arms()[a].variance();
  }
  report.decided_after = sampler.decided_after();
  report.best_config = results[sampler.best_arm()].name;
  std::sort(results.begin(), results.end(), [](const ConfigResult& x, const ConfigResult& y) {
    if (x.mean_reward != y.mean_reward) return x.mean_reward > y.mean_reward;
    return x.name < y.name;
  });
  report.configs = std::move(results);

  // ---------------------------------------------------------------- fuzz —
  if (opts.fuzz) {
    std::mt19937_64 fuzz_rng(mix_seed(opts.seed, 0xF022));
    const GraphCase small = make_case(opts.seed, 0);
    const std::string graph_json = server::encode_graph_json(small.graph);
    const std::vector<std::string> bases = {
        "{\"op\":\"solve\",\"solver\":\"greedy\",\"graphs\":[" + graph_json + "]}",
        "{\"op\":\"solve\",\"solver\":\"theorem44\",\"namespace\":\"soak-a\",\"graphs\":[" +
            graph_json + "]}",
        "{\"op\":\"put_graph\",\"graph\":" + graph_json + "}",
        "{\"op\":\"patch_graph\",\"handle\":\"g0123456789abcdef\","
        "\"add\":[[0,2]],\"del\":[],\"n\":30}",
        "{\"op\":\"drop_graph\",\"handle\":\"g0123456789abcdef\"}",
        "{\"op\":\"stats\"}",
        "{\"op\":\"open_session\",\"namespace\":\"soak-b\"}",
    };

    const auto probe_liveness = [&](const char* after) -> bool {
      ++report.fuzz.liveness_probes;
      try {
        ProtocolClient probe(host, line_port, /*http=*/false, "");
        server::require_ok(probe.exchange("stats", ""), "liveness stats");
        return true;
      } catch (const std::exception& e) {
        ++report.fuzz.failures;
        ViolationRecord rec;
        rec.config = "fuzz";
        rec.reason = std::string("server unresponsive after ") + after + ": " + e.what();
        report.violations.push_back(std::move(rec));
        return false;
      }
    };

    const int cases = opts.duration * kFuzzPerUnit;
    if (opts.tcp) {
      std::unique_ptr<ProtocolClient> fc;
      for (int i = 0; i < cases; ++i) {
        const auto kind = static_cast<MutationKind>(i % kMutationKinds);
        FuzzKindCounters& k = report.fuzz.kinds[std::string(to_string(kind))];
        ++k.attempts;
        const std::string mutated =
            mutate_line(bases[static_cast<std::size_t>(i) % bases.size()], kind, fuzz_rng);
        if (!fc) fc = std::make_unique<ProtocolClient>(host, line_port, false, "");
        // The line loop ignores blank lines (keep-alive), so an empty
        // mutation gets a stats chaser — the response proves the server
        // swallowed the blank without wedging.
        const std::string wire =
            mutated.empty() ? "\n{\"op\":\"stats\"}\n" : mutated + "\n";
        std::optional<std::string> response;
        if (fc->send_raw(wire)) response = fc->read_raw_line();
        if (!response) {
          ++k.closed_connections;
          fc.reset();
          if (!probe_liveness(to_string(kind).data())) break;
          continue;
        }
        try {
          const JsonValue body = server::json_parse(*response);
          const JsonValue* ok = body.find("ok");
          if (ok && ok->as_bool()) {
            ++k.ok_responses;  // mutation happened to stay well-formed
          } else {
            ++k.error_responses;
          }
        } catch (const std::exception&) {
          // A non-JSON line would break the protocol's own contract.
          ++report.fuzz.failures;
          ViolationRecord rec;
          rec.config = "fuzz";
          rec.reason = "non-JSON response line after " + std::string(to_string(kind)) +
                       " mutation: " + mutated.substr(0, 120);
          report.violations.push_back(std::move(rec));
        }
      }
    }
    if (opts.http) {
      static constexpr struct {
        const char* method;
        const char* target;
      } kRoutes[] = {{"POST", "/v2/solve"},
                     {"PUT", "/v2/graphs"},
                     {"POST", "/v2/solve"},
                     {"GET", "/v2/nonexistent"},
                     {"BREW", "/v2/solve"},
                     {"POST", "/v2/graphs/zzz"},
                     {"POST", "/v2/graphs/g0123456789abcdef/patch"}};
      for (int i = 0; i < cases; ++i) {
        const auto kind = static_cast<MutationKind>(i % kMutationKinds);
        FuzzKindCounters& k = report.fuzz.kinds[std::string(to_string(kind))];
        ++k.attempts;
        const std::string body =
            mutate_line(bases[static_cast<std::size_t>(i) % bases.size()], kind, fuzz_rng);
        const auto& route = kRoutes[static_cast<std::size_t>(i) % std::size(kRoutes)];
        try {
          // Fresh connection per case (HTTP errors may close), valid framing
          // with a recomputed Content-Length — the fuzz targets the request
          // body and route, never the framing (a framing attack would just
          // hang the client side of this very loop).
          ProtocolClient hc(host, http_port, /*http=*/true, "");
          const JsonValue parsed = hc.exchange_http(route.method, route.target, body);
          const JsonValue* ok = parsed.find("ok");
          if (ok && ok->as_bool()) {
            ++k.ok_responses;
          } else {
            ++k.error_responses;
          }
        } catch (const std::exception&) {
          ++k.closed_connections;
          if (!probe_liveness(to_string(kind).data())) break;
        }
      }
    }
  }

  // Final stats probe: the executor-health satellite feeding the report.
  try {
    ProtocolClient probe(host, line_port, /*http=*/false, "");
    const JsonValue stats = probe.exchange("stats", "");
    report.executor.batches_started = field_u64(stats, "executor", "batches_started");
    report.executor.shards_executed = field_u64(stats, "executor", "shards_executed");
    report.executor.solves_served = field_u64(stats, "executor", "solves_served");
    report.executor.cache_hits = field_u64(stats, "cache", "hits");
    report.executor.cache_misses = field_u64(stats, "cache", "misses");
    report.executor.requests = field_u64(stats, "server", "requests");
    report.executor.graphs_solved = field_u64(stats, "server", "graphs_solved");
  } catch (const std::exception& e) {
    ViolationRecord rec;
    rec.config = "harness";
    rec.reason = std::string("final stats probe failed: ") + e.what();
    report.violations.push_back(std::move(rec));
  }

  server.request_stop();
  serving.join();

  if (opts.timing) {
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  }
  return report;
}

}  // namespace lmds::soak
