#include "soak/workload.hpp"

#include <random>
#include <set>
#include <utility>

#include "ding/generators.hpp"
#include "graph/generators.hpp"

namespace lmds::soak {

std::uint64_t mix_seed(std::uint64_t run_seed, std::uint64_t index) {
  // splitmix64: the standard seed-sequence mixer — adjacent (run_seed, index)
  // pairs land on statistically unrelated generator seeds.
  std::uint64_t z = run_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

GraphCase make_case(std::uint64_t run_seed, std::uint64_t index) {
  const std::uint64_t seed = mix_seed(run_seed, index);
  GraphCase c;
  c.seed = seed;
  // Size wobble derived from the case seed itself, so a repro needs nothing
  // beyond (run_seed, index) — or just `seed`, which determines both shape
  // parameters and random bits.
  const int wobble = static_cast<int>(seed % 17);
  switch (index % kFamilies) {
    case 0:
      c.family = "tree";
      c.graph = graph::gen::random_tree(24 + wobble, seed);
      c.certified_t = 2;  // forests have no cycle, hence no K_{2,2} minor
      break;
    case 1:
      c.family = "outerplanar";
      c.graph = graph::gen::random_maximal_outerplanar(18 + wobble, seed);
      c.certified_t = 3;  // outerplanar = K_4- and K_{2,3}-minor-free
      break;
    case 2: {
      c.family = "theta";
      const int links = 2 + static_cast<int>(seed % 4);
      const int parallel = 2 + static_cast<int>((seed >> 8) % 3);
      c.graph = graph::gen::theta_chain(links, parallel);
      c.seed = 0;  // deterministic family: shape comes from the mixed seed,
                   // but no RNG is consumed
      c.certified_t = parallel + 1;
      break;
    }
    case 3: {
      c.family = "cactus";
      ding::CactusConfig cfg;
      cfg.pieces = 4 + static_cast<int>(seed % 4);
      cfg.max_piece_size = 8;
      cfg.t = 5;
      c.graph = ding::random_cactus_of_structures(cfg, seed);
      c.certified_t = cfg.t;
      break;
    }
    default:
      c.family = "apollonian";
      c.graph = graph::gen::apollonian(14 + wobble, seed);
      c.certified_t = 0;  // planar, but no K_{2,t} certificate — validity only
      break;
  }
  return c;
}

graph::GraphPatch make_patch(const graph::Graph& g, std::uint64_t seed, int edits) {
  graph::GraphPatch p;
  const int n = g.num_vertices();
  if (n < 2) return p;
  std::mt19937_64 rng(seed);
  // One pool across adds and deletes keeps the batch consistent: a pair is
  // picked at most once, so add∩del = ∅ and neither list repeats.
  std::set<graph::Edge> chosen;
  for (int e = 0; e < edits; ++e) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      auto u = static_cast<graph::Vertex>(rng() % static_cast<std::uint64_t>(n));
      auto v = static_cast<graph::Vertex>(rng() % static_cast<std::uint64_t>(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (!chosen.insert({u, v}).second) continue;
      (g.has_edge(u, v) ? p.del : p.add).push_back({u, v});
      break;
    }
  }
  return p;
}

}  // namespace lmds::soak
