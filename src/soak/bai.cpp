#include "soak/bai.hpp"

#include <cmath>
#include <stdexcept>

namespace lmds::soak {

BaiSampler::BaiSampler(std::size_t arms, SamplingRule rule, double threshold,
                       std::uint64_t min_pulls, std::uint64_t seed)
    : arms_(arms), rule_(rule), threshold_(threshold), min_pulls_(min_pulls), rng_(seed) {
  if (arms == 0) throw std::invalid_argument("BaiSampler: need at least one arm");
}

std::size_t BaiSampler::next_arm() {
  // Warm-up (and the RoundRobin rule forever): uniform rotation, so every
  // arm owns min_pulls_ samples before any mean is trusted.
  const bool warming =
      rule_ == SamplingRule::RoundRobin || total_ < min_pulls_ * arms_.size();
  if (warming) {
    const std::size_t arm = cursor_;
    cursor_ = (cursor_ + 1) % arms_.size();
    return arm;
  }
  if (confident_ || arms_.size() == 1) return best_arm();  // exploit the leader
  // TopTwo: a fair seeded coin picks leader or challenger.
  return (rng_() & 1) == 0 ? best_arm() : challenger_arm();
}

void BaiSampler::record(std::size_t arm, double reward) {
  ArmStats& s = arms_.at(arm);
  ++s.pulls;
  const double delta = reward - s.mean;
  s.mean += delta / static_cast<double>(s.pulls);
  s.m2 += delta * (reward - s.mean);
  ++total_;
  if (!confident_) update_confidence();
}

std::size_t BaiSampler::best_arm() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < arms_.size(); ++i) {
    if (arms_[i].mean > arms_[best].mean) best = i;
  }
  return best;
}

std::size_t BaiSampler::challenger_arm() const {
  const std::size_t leader = best_arm();
  std::size_t challenger = leader == 0 ? 1 % arms_.size() : 0;
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (i == leader) continue;
    if (arms_[i].mean > arms_[challenger].mean) challenger = i;
  }
  return challenger;
}

void BaiSampler::update_confidence() {
  if (arms_.size() < 2) {
    if (arms_[0].pulls >= min_pulls_) {
      confident_ = true;
      decided_after_ = total_;
    }
    return;
  }
  const ArmStats& leader = arms_[best_arm()];
  const ArmStats& runner = arms_[challenger_arm()];
  if (leader.pulls < min_pulls_ || runner.pulls < min_pulls_) return;
  // Welch z-score of the mean gap. A degenerate zero-variance pair with a
  // real gap is infinitely separated; with no gap it never separates.
  const double se2 = leader.variance() / static_cast<double>(leader.pulls) +
                     runner.variance() / static_cast<double>(runner.pulls);
  const double gap = leader.mean - runner.mean;
  if (gap <= 0.0) return;
  const bool separated = se2 <= 0.0 || gap / std::sqrt(se2) >= threshold_;
  if (separated) {
    confident_ = true;
    decided_after_ = total_;
  }
}

}  // namespace lmds::soak
