#pragma once
// Best-arm identification for the soak harness, after the autoplay+BAI loop
// of MAGPIE (SNIPPETS.md snippet 1): the solver/parameter configurations are
// the arms, one batch's quality-and-throughput score is the reward, and the
// sampler decides which configuration the next batch runs — ranking configs
// without exhaustively sweeping them.
//
// Two sampling rules:
//  * RoundRobin — uniform rotation, the exhaustive-sweep baseline;
//  * TopTwo    — after a warm-up of min_pulls per arm, alternate between the
//                empirical leader and its strongest challenger (the
//                top-two-sampling family), with a seeded coin deciding which
//                of the two fires.
//
// Stopping: the sampler reports confident() once a Welch-style z-score
// between leader and challenger clears `threshold`. The harness keeps
// sampling after that (exploiting the leader) — the soak loop's length is
// the duration budget, not the stopping rule — but the report records when
// confidence was reached. Everything is deterministic for a fixed seed.

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace lmds::soak {

enum class SamplingRule { RoundRobin, TopTwo };

/// Welford-accumulated statistics of one arm.
struct ArmStats {
  std::uint64_t pulls = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations

  double variance() const { return pulls < 2 ? 0.0 : m2 / static_cast<double>(pulls - 1); }
};

class BaiSampler {
 public:
  /// `threshold` is the z-score at which the leader is declared confidently
  /// best; `min_pulls` is the per-arm warm-up before TopTwo (or stopping)
  /// engages. `seed` drives the TopTwo coin only.
  BaiSampler(std::size_t arms, SamplingRule rule, double threshold, std::uint64_t min_pulls,
             std::uint64_t seed);

  /// The arm the next batch should run.
  std::size_t next_arm();

  /// Records one reward for `arm`.
  void record(std::size_t arm, double reward);

  /// True once the leader/challenger z-score cleared the threshold (sticky).
  bool confident() const { return confident_; }
  /// Total rewards recorded when confidence was first reached (0 = never).
  std::uint64_t decided_after() const { return decided_after_; }

  /// Empirically best arm (highest mean; lowest index wins ties).
  std::size_t best_arm() const;
  /// Leader's strongest challenger: the arm a top-two rule would test the
  /// leader against (highest mean among the rest).
  std::size_t challenger_arm() const;

  const std::vector<ArmStats>& arms() const { return arms_; }
  std::uint64_t total_pulls() const { return total_; }

 private:
  void update_confidence();

  std::vector<ArmStats> arms_;
  SamplingRule rule_;
  double threshold_;
  std::uint64_t min_pulls_;
  std::mt19937_64 rng_;
  std::uint64_t total_ = 0;
  std::size_t cursor_ = 0;  ///< round-robin position
  bool confident_ = false;
  std::uint64_t decided_after_ = 0;
};

}  // namespace lmds::soak
