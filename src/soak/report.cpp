#include "soak/report.hpp"

#include <algorithm>

#include "server/json.hpp"

namespace lmds::soak {

using server::json_append_double;
using server::json_append_string;

void RatioHistogram::add(double ratio) {
  ++samples;
  max_ratio = std::max(max_ratio, ratio);
  for (int b = 0; b < kBuckets - 1; ++b) {
    if (ratio <= kEdges[b] + 1e-12) {
      ++counts[b];
      return;
    }
  }
  ++counts[kBuckets - 1];
}

void RatioHistogram::append_json(std::string& out) const {
  out += "{\"edges\":[";
  for (int b = 0; b < kBuckets - 1; ++b) {
    if (b) out += ',';
    json_append_double(out, kEdges[b]);
  }
  out += "],\"counts\":[";
  for (int b = 0; b < kBuckets; ++b) {
    if (b) out += ',';
    out += std::to_string(counts[b]);
  }
  out += "],\"samples\":" + std::to_string(samples) + ",\"max\":";
  json_append_double(out, max_ratio);
  out += '}';
}

std::string SoakReport::to_json() const {
  std::string out = "{\"soak\":{\"seed\":" + std::to_string(seed) +
                    ",\"duration\":" + std::to_string(duration) +
                    ",\"transports\":{\"tcp\":" + (tcp ? "true" : "false") +
                    ",\"http\":" + (http ? "true" : "false") + "}";
  if (wall_seconds >= 0.0) {
    out += ",\"wall_seconds\":";
    json_append_double(out, wall_seconds);
  }
  out += "},\"bai\":{\"rule\":";
  json_append_string(out, sampling_rule);
  out += ",\"decided_after\":" + std::to_string(decided_after) + ",\"best\":";
  json_append_string(out, best_config);
  out += "},\"configs\":[";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& c = configs[i];
    if (i) out += ',';
    out += "{\"name\":";
    json_append_string(out, c.name);
    out += ",\"solver\":";
    json_append_string(out, c.solver);
    out += ",\"options\":" + (c.options_members.empty() ? "{}" : c.options_members);
    out += ",\"pulls\":" + std::to_string(c.pulls) + ",\"mean_reward\":";
    json_append_double(out, c.mean_reward);
    out += ",\"reward_variance\":";
    json_append_double(out, c.reward_variance);
    out += ",\"graphs\":" + std::to_string(c.graphs) +
           ",\"violations\":" + std::to_string(c.violations) + ",\"ratios\":";
    c.ratios.append_json(out);
    out += '}';
  }
  out += "],\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const ViolationRecord& v = violations[i];
    if (i) out += ',';
    out += "{\"config\":";
    json_append_string(out, v.config);
    out += ",\"family\":";
    json_append_string(out, v.family);
    out += ",\"index\":" + std::to_string(v.index) + ",\"seed\":" + std::to_string(v.seed) +
           ",\"reason\":";
    json_append_string(out, v.reason);
    out += ",\"repro\":";
    json_append_string(out, v.repro_path);
    out += ",\"replay\":";
    json_append_string(out, v.replay);
    out += '}';
  }
  out += "],\"fuzz\":{\"kinds\":{";
  bool first = true;
  for (const auto& [kind, k] : fuzz.kinds) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, kind);
    out += ":{\"attempts\":" + std::to_string(k.attempts) +
           ",\"error_responses\":" + std::to_string(k.error_responses) +
           ",\"ok_responses\":" + std::to_string(k.ok_responses) +
           ",\"closed_connections\":" + std::to_string(k.closed_connections) + "}";
  }
  out += "},\"liveness_probes\":" + std::to_string(fuzz.liveness_probes) +
         ",\"failures\":" + std::to_string(fuzz.failures) + "}";
  out += ",\"executor\":{\"batches_started\":" + std::to_string(executor.batches_started) +
         ",\"shards_executed\":" + std::to_string(executor.shards_executed) +
         ",\"solves_served\":" + std::to_string(executor.solves_served) +
         ",\"cache_hits\":" + std::to_string(executor.cache_hits) +
         ",\"cache_misses\":" + std::to_string(executor.cache_misses) +
         ",\"requests\":" + std::to_string(executor.requests) +
         ",\"graphs_solved\":" + std::to_string(executor.graphs_solved) + "}";
  out += ",\"oracle_violations\":" + std::to_string(total_violations()) + "}";
  return out;
}

}  // namespace lmds::soak
