// lmds_soak — the long-running quality harness (src/soak) as a CLI: boots an
// in-process lmds_serve on ephemeral ports, streams deterministic minor-free
// workloads through it over TCP and HTTP under BAI arm selection, oracle-
// checks every response against the paper's bounds, fuzzes the protocol, and
// writes one JSON report.
//
//   $ ./lmds_soak --duration 10 --seed 42 --report soak.json
//   $ ./lmds_soak --check                        # CI smoke: short + strict
//
// `--duration N` is a deterministic work budget (N work units, roughly a
// second each), not wall-clock — two runs with the same seed/duration/flags
// emit byte-identical reports (the determinism CI gate diffs them).
// `--timing` adds measured wall_seconds to the report and gives that up.
//
// Exit codes: 0 clean; 1 oracle violations (repros under --repro-dir);
//             2 usage; 3 fuzz failure (server crashed or wedged).

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "soak/harness.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lmds_soak [--seed N] [--duration UNITS] [--check]\n"
               "                 [--report FILE] [--repro-dir DIR]\n"
               "                 [--tcp-only] [--http-only] [--no-fuzz] [--timing]\n"
               "--check is the CI smoke: --duration 2 with every stage enabled.\n"
               "--duration is a deterministic work budget (~1s per unit), so equal\n"
               "seeds produce byte-identical reports; --timing trades that for\n"
               "measured wall_seconds.\n");
  return 2;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_int(const char* text, int& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc() && ptr == end && out > 0;
}

}  // namespace

int main(int argc, char** argv) {
  lmds::soak::SoakOptions opts;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--seed" && value) {
      if (!parse_u64(value, opts.seed)) {
        std::fprintf(stderr, "lmds_soak: bad seed '%s'\n", value);
        return usage();
      }
      ++i;
    } else if (arg == "--duration" && value) {
      if (!parse_int(value, opts.duration)) {
        std::fprintf(stderr, "lmds_soak: bad duration '%s'\n", value);
        return usage();
      }
      ++i;
    } else if (arg == "--check") {
      opts.duration = 2;
    } else if (arg == "--report" && value) {
      report_path = value;
      ++i;
    } else if (arg == "--repro-dir" && value) {
      opts.repro_dir = value;
      ++i;
    } else if (arg == "--tcp-only") {
      opts.http = false;
    } else if (arg == "--http-only") {
      opts.tcp = false;
    } else if (arg == "--no-fuzz") {
      opts.fuzz = false;
    } else if (arg == "--timing") {
      opts.timing = true;
    } else {
      std::fprintf(stderr, "lmds_soak: bad flag: %s\n", arg.c_str());
      return usage();
    }
  }
  if (!opts.tcp && !opts.http) {
    std::fprintf(stderr, "lmds_soak: --tcp-only and --http-only exclude each other\n");
    return usage();
  }

  lmds::soak::SoakReport report;
  try {
    report = lmds::soak::run_soak(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lmds_soak: harness failure: %s\n", e.what());
    return 3;
  }

  const std::string json = report.to_json();
  if (report_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::ofstream out(report_path);
    out << json << '\n';
    if (!out) {
      std::fprintf(stderr, "lmds_soak: cannot write report to %s\n", report_path.c_str());
      return 2;
    }
  }

  std::fprintf(stderr,
               "lmds_soak: seed=%llu duration=%d best=%s violations=%llu fuzz_failures=%llu\n",
               static_cast<unsigned long long>(report.seed), report.duration,
               report.best_config.c_str(),
               static_cast<unsigned long long>(report.total_violations()),
               static_cast<unsigned long long>(report.fuzz.failures));
  if (report.fuzz.failures > 0) return 3;
  if (report.total_violations() > 0) return 1;
  return 0;
}
