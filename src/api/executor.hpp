#pragma once
// Thread-parallel, sharded batch execution over the solver registry — the
// serving engine the ROADMAP's run_batch seam promised. The LOCAL model of
// the paper is inherently parallel (every vertex decides from its r-ball);
// the systems analogue at the serving layer is parallelism *across graphs*:
// a batch is cut into shards, shards are dealt round-robin onto per-worker
// queues, and a fixed-size pool of workers drains its own queue first, then
// steals from its sibling queues in cyclic order.
//
// Guarantees:
//  * Deterministic results — response i answers graphs[i] and is written to
//    a preallocated slot, so the Response vector is identical for any thread
//    count (every solver in the registry is deterministic; asserted over the
//    generator suite in tests/test_batch.cpp).
//  * Fail fast — a solver exception makes every worker abandon its
//    unclaimed shards; after the pool drains, the exception with the lowest
//    graph index among those attempted is rethrown.
//  * Reentrancy — one BatchExecutor may serve concurrent run_batch calls
//    from many threads. The executor itself holds no mutex and no
//    LMDS_GUARDED_BY members on purpose: opts_/registry_ are immutable after
//    construction, shard queues and cursors are per-call locals (the cursors
//    atomics), and the only cross-call shared state is cache_, whose locking
//    is annotated and checked inside ResponseCache itself (api/cache.hpp).
//    Exercised under TSan by tests/test_concurrency.cpp.

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"
#include "api/cache.hpp"
#include "api/graph_store.hpp"

namespace lmds::api {

class Registry;

/// Tuning knobs of one batch execution.
struct BatchOptions {
  /// Worker parallelism. 1 runs inline on the calling thread; <= 0 picks
  /// std::thread::hardware_concurrency(). The effective count is clamped to
  /// the number of shards.
  int threads = 1;
  /// Graphs per shard — the work-queue granularity. Small shards balance
  /// better, large shards amortize queue traffic; <= 0 is an error.
  int shard_size = 4;
  /// LRU response-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 0;
  /// Worker count for sharding EACH solve's per-vertex work (the second
  /// threading mode: intra-graph). 1 = sequential solves; <= 0 picks
  /// hardware_concurrency. Responses are bit-identical for every value, so
  /// this never enters cache keys — composes freely with `threads`
  /// (cross-graph) and with caching.
  int intra_graph_threads = 1;
};

/// Per-request deviations from the executor's configured BatchOptions — the
/// serving layer's "per-request options" (protocol v2). Everything unset
/// falls back to the BatchOptions the executor was built with; the response
/// cache itself (capacity, contents) is always the executor's.
struct BatchOverrides {
  std::optional<int> threads;     ///< worker parallelism for this batch only
  std::optional<int> shard_size;  ///< shard granularity for this batch only
  /// Intra-graph worker count for this batch only (see
  /// BatchOptions::intra_graph_threads). Never part of any cache key.
  std::optional<int> intra_graph_threads;
  /// Compute every response fresh and leave the cache untouched (no lookups,
  /// no inserts) — for clients that must not observe or pollute shared state.
  bool bypass_cache = false;
  /// Tenant tag threaded into every CacheKey of this batch ("" = default
  /// namespace). Distinct namespaces never share cache entries.
  std::string cache_namespace;
};

/// What one run_batch call did — the executor-level Diagnostics. Cache
/// counters are counted at this batch's own cache accesses (exact even with
/// concurrent run_batch calls on one executor); lifetime totals are
/// BatchExecutor::cache_stats().
struct BatchDiagnostics {
  int threads = 1;           ///< workers actually used
  int intra_threads = 1;     ///< per-solve worker count (resolved; 1 = off)
  int shards = 0;            ///< shards the batch was cut into
  std::uint64_t stolen_shards = 0;  ///< shards drained from a sibling's queue
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  // Ball-granular incremental re-solve (patched-graph batches only; see the
  // `lineages` span of run_batch). These count whole responses / vertices,
  // not cache accesses: an incremental solve's parent and sub-solve lookups
  // hit the executor's lifetime CacheStats but not cache_hits above, which
  // stays "top-level key accesses" so existing dashboards keep their meaning.
  std::uint64_t incremental_solves = 0;     ///< responses spliced from a parent's cached response
  std::uint64_t incremental_fallbacks = 0;  ///< lineage present but a full re-solve was taken
  std::uint64_t incremental_dirty = 0;      ///< vertices re-decided across incremental solves
};

/// Lifetime load counters of one BatchExecutor, readable while batches run —
/// the server surfaces them under `stats`/`GET /v2/stats` as `"executor"`, so
/// a soak report can correlate ratio anomalies with load. Counted with
/// relaxed atomics inside the executor; a snapshot is not a consistent cut
/// across fields, which is fine for health reporting.
struct ExecutorHealth {
  std::uint64_t batches_started = 0;    ///< run_batch calls accepted (post-validation)
  std::uint64_t batches_in_flight = 0;  ///< run_batch calls currently executing
  std::uint64_t shards_executed = 0;    ///< shards dealt across all batches
  std::uint64_t solves_served = 0;      ///< per-graph responses produced (cache hits included)
};

/// Sharded parallel batch runner with a response cache that persists across
/// run_batch calls (a Registry-level convenience overload exists for one-shot
/// batches; hold a BatchExecutor to get cross-batch cache hits).
class BatchExecutor {
 public:
  /// Runs against Registry::instance().
  explicit BatchExecutor(BatchOptions opts = {});
  /// Runs against a specific registry (tests use local registries).
  BatchExecutor(BatchOptions opts, const Registry& registry);

  /// Executes one request shape across many graphs (req.graph is ignored);
  /// response i answers graphs[i]. Request validation (unknown solver,
  /// undeclared or type-mismatched option, traffic on a centralized-only
  /// solver) throws RequestError before any work starts. If `diag` is
  /// non-null it receives this batch's executor diagnostics.
  std::vector<Response> run_batch(std::string_view solver, std::span<const Graph> graphs,
                                  const Request& req, BatchDiagnostics* diag = nullptr);

  /// Same, with per-request overrides (threads, shard size, cache bypass,
  /// cache namespace). An overridden shard_size <= 0 or threads out of
  /// sanity range throws RequestError — it is the request's fault, not the
  /// executor's configuration.
  std::vector<Response> run_batch(std::string_view solver, std::span<const Graph> graphs,
                                  const Request& req, const BatchOverrides& over,
                                  BatchDiagnostics* diag = nullptr);

  /// Pointer-span variant for callers whose graphs are not contiguous —
  /// the serving layer's solve-by-handle path hands the GraphStore's stored
  /// graphs straight to the pool, no per-request copies. Every pointer must
  /// be non-null and outlive the call. `graph_hashes`, when non-empty, must
  /// parallel `graphs` and carries precomputed graph_hash fingerprints (a
  /// graph-store handle *is* its graph's hash, so handle solves skip the
  /// O(V+E) hash walk entirely); a 0 entry means "unknown, compute" — the
  /// one-in-2^64 graph whose real hash is 0 merely loses the skip.
  ///
  /// `lineages`, when non-empty, parallels `graphs`: entry i is graphs[i]'s
  /// GraphStore::PatchLineage (nullptr for non-derived graphs). On a cache
  /// miss for a derived graph whose solver declares a locality_radius, the
  /// executor answers incrementally: it BFS-bounds the set of vertices whose
  /// radius-r ball touches an edited edge, re-runs the solver only on the
  /// induced support subgraph (memoized under a ball-signature cache
  /// sub-key, so the entry survives edits outside its ball), and splices
  /// those decisions into the parent's cached response. Falls back to a full
  /// re-solve — bit-identical results either way — when the parent response
  /// is not cached, the solver is not decomposable, the cache is
  /// bypassed/disabled, or the request measures traffic or ratio.
  std::vector<Response> run_batch(std::string_view solver,
                                  std::span<const Graph* const> graphs, const Request& req,
                                  const BatchOverrides& over,
                                  BatchDiagnostics* diag = nullptr,
                                  std::span<const std::uint64_t> graph_hashes = {},
                                  std::span<const std::shared_ptr<const PatchLineage>>
                                      lineages = {});

  const BatchOptions& options() const { return opts_; }
  /// Lifetime counters of the executor's cache.
  CacheStats cache_stats() const { return cache_.stats(); }
  /// Snapshot of the executor's load counters (see ExecutorHealth).
  ExecutorHealth health() const {
    ExecutorHealth h;
    h.batches_started = batches_started_.load(std::memory_order_relaxed);
    h.batches_in_flight = batches_in_flight_.load(std::memory_order_relaxed);
    h.shards_executed = shards_executed_.load(std::memory_order_relaxed);
    h.solves_served = solves_served_.load(std::memory_order_relaxed);
    return h;
  }
  void clear_cache() { cache_.clear(); }
  /// The executor's response cache — exposed so a serving front-end can
  /// snapshot it across restarts (ResponseCache::serialize/deserialize).
  ResponseCache& cache() { return cache_; }
  const ResponseCache& cache() const { return cache_; }

 private:
  /// The one real implementation; the public overloads adapt their graph
  /// containers into the accessor.
  std::vector<Response> run_impl(std::string_view solver,
                                 const std::function<const Graph&(std::size_t)>& graph_at,
                                 std::size_t count, const Request& req,
                                 const BatchOverrides& over, BatchDiagnostics* diag,
                                 std::span<const std::uint64_t> graph_hashes = {},
                                 std::span<const std::shared_ptr<const PatchLineage>>
                                     lineages = {});

  BatchOptions opts_;
  const Registry& registry_;
  ResponseCache cache_;
  // Health counters (not part of the no-shared-state claim above: they are
  // monotone relaxed atomics, observational only, never read back by workers).
  std::atomic<std::uint64_t> batches_started_{0};
  std::atomic<std::uint64_t> batches_in_flight_{0};
  std::atomic<std::uint64_t> shards_executed_{0};
  std::atomic<std::uint64_t> solves_served_{0};
};

}  // namespace lmds::api
