#pragma once
// Thread-safe LRU response cache for the batch executor (and any long-lived
// serving front-end built on it). A cached Response is keyed on
//
//   (graph_hash(G), solver name, canonicalized options, namespace)
//
// where "canonicalized options" is the *resolved* parameter map — every
// declared parameter present, request values coerced to their declared types
// — plus the measure_traffic / measure_ratio flags, serialized in sorted
// order. Canonicalization means a request that spells out a default and one
// that omits it share a cache line. The namespace is an opaque tenant tag
// ("" = the default namespace): two requests that differ only in namespace
// never share an entry, which is how a multi-tenant serving front-end keeps
// one client's warm cache invisible to another (protocol v2, src/server/).
//
// Identity is decided by the 64-bit graph fingerprint, not the graph itself:
// two distinct graphs colliding on all 64 bits would alias (probability
// ~2^-40 across a million distinct graphs). The serving layer accepts that
// trade by design — the cache stores no graph copies and key comparison is
// O(|options string|).
//
// Hits return a copy of the stored Response, bit-identical to the Response
// the original run produced (asserted in tests/test_batch.cpp).
//
// Persistence: serialize() / deserialize() snapshot the entries (keys +
// responses, in recency order) to a versioned binary stream, so a long-lived
// server can warm its cache across restarts (src/server/, lmds_serve).

#include <cstdint>
#include <iosfwd>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/api.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace lmds::api {

/// Composite cache key; see file comment for the composition rules.
struct CacheKey {
  std::uint64_t graph_hash = 0;
  std::string solver;
  std::string options;  ///< canonical_options() of the resolved request
  std::string ns;       ///< tenant namespace; "" = default

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// Serializes resolved params + request flags into the canonical key string,
/// e.g. "radius1=4;radius2=4;t=5;twin_removal=true;|traffic=0;ratio=1".
/// `params` must already be resolved (Registry::resolve_options). Any
/// '=', ';', '|' or '\' inside a field is backslash-escaped, so two distinct
/// parameter maps can never serialize to the same key string — important
/// once string/enum ParamValues exist, and frozen into the snapshot format.
std::string canonical_options(const Options& params, bool measure_traffic,
                              bool measure_ratio);

/// Cumulative counters; surfaced per batch through BatchDiagnostics and for
/// the cache's lifetime through ResponseCache::stats(). A miss is counted
/// when a computed Response is inserted, not at lookup time, so hits + misses
/// always equals the number of *completed* requests even when a solve throws
/// between the failed lookup and the insert.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;      ///< entries currently held
  std::size_t capacity = 0;  ///< maximum entries (0 = caching disabled)

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// Per-namespace slice of the counters above. Capacity is shared across
/// namespaces (one LRU list), so an insert in one namespace may evict
/// another's entry — the eviction is charged to the namespace that *lost*
/// the entry, and `size` is how many entries the namespace currently holds.
struct NamespaceStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;

  friend bool operator==(const NamespaceStats&, const NamespaceStats&) = default;
};

/// Fixed-capacity LRU map CacheKey -> Response. All operations take an
/// internal mutex, so one cache may back concurrent run_batch calls.
class ResponseCache {
 public:
  /// capacity == 0 constructs a disabled cache: lookups miss without
  /// counting, inserts are dropped.
  explicit ResponseCache(std::size_t capacity);

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }

  /// Returns a copy of the cached Response and promotes the entry to
  /// most-recently-used; std::nullopt on miss. Counts a hit on success;
  /// a miss is counted by the insert() that completes the request.
  std::optional<Response> lookup(const CacheKey& key) LMDS_EXCLUDES(mu_);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used one
  /// when at capacity. Counts one miss — insert() is called exactly once per
  /// computed Response, so the counter tracks completed work, not attempts.
  /// Returns true iff an entry was evicted.
  bool insert(const CacheKey& key, const Response& value) LMDS_EXCLUDES(mu_);

  CacheStats stats() const LMDS_EXCLUDES(mu_);
  /// Counters sliced by CacheKey::ns, keyed by namespace (the default
  /// namespace appears as ""). A namespace appears once it was ever touched;
  /// clear() zeroes sizes but keeps the lifetime hit/miss/eviction counters.
  /// The map is bounded: namespaces are client-supplied, so once ~1024
  /// distinct ones have been seen, the counters of namespaces currently
  /// holding no entries are pruned to make room (live namespaces are
  /// bounded by the cache capacity itself).
  std::map<std::string, NamespaceStats> namespace_stats() const LMDS_EXCLUDES(mu_);
  void clear() LMDS_EXCLUDES(mu_);

  /// Writes a versioned binary snapshot of the entries (keys + responses,
  /// least- to most-recently-used) to `out`. Counters are not part of the
  /// snapshot — they describe this process's lifetime, not the data.
  void serialize(std::ostream& out) const LMDS_EXCLUDES(mu_);

  /// Replaces the current entries with a snapshot previously written by
  /// serialize(). Accepts the current format (version 2, with per-entry
  /// namespaces) and the pre-namespace version 1 (entries land in the
  /// default namespace ""). Recency order is preserved; if the snapshot holds more
  /// entries than this cache's capacity, only the most recent ones are kept
  /// (silently, not counted as evictions). Lifetime counters are untouched.
  /// Throws std::runtime_error on a bad magic/version or truncated stream,
  /// leaving the cache unchanged. A disabled cache ignores the snapshot.
  void deserialize(std::istream& in) LMDS_EXCLUDES(mu_);

  /// Merges a snapshot into the live entries instead of replacing them:
  /// entries whose key is already present are skipped, absent ones fill the
  /// *spare* capacity (they are queued behind every live entry in recency
  /// order, and once the cache is full the rest of the snapshot is ignored —
  /// replicated data never evicts locally-hot entries). Hit/miss/eviction
  /// counters are untouched, so peer replication cannot skew a server's
  /// observed hit rate. Same format/error behavior as deserialize().
  void merge(std::istream& in) LMDS_EXCLUDES(mu_);

  /// File convenience over serialize()/deserialize(); throws
  /// std::runtime_error when the file cannot be opened or written.
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

 private:
  using LruList = std::list<std::pair<CacheKey, Response>>;  // front = MRU

  /// Evicts the least-recently-used entry, charging the eviction to the
  /// namespace losing it (capacity is shared; that need not be the
  /// inserting namespace).
  void evict_lru_locked() LMDS_REQUIRES(mu_);

  /// Keeps the client-supplied namespace counter map bounded: before `ns`
  /// would grow it past its cap, prunes the counters of namespaces that
  /// currently hold no entries.
  void prune_idle_namespaces_locked(const std::string& ns) LMDS_REQUIRES(mu_);

  /// Replaces the live entries with `entries` (already capacity-clamped,
  /// MRU-first), rebuilds the index, and recomputes per-namespace sizes —
  /// deserialize()'s commit step, after all parsing that can throw.
  void install_entries_locked(LruList entries) LMDS_REQUIRES(mu_);

  /// Parses a full snapshot stream into an MRU-first list, validating magic,
  /// version and footer. `clamp` > 0 drops the least-recent entries beyond
  /// that count while parsing; 0 keeps everything. Throws on a corrupt or
  /// truncated stream without touching any live state (it is static — the
  /// shared front half of deserialize() and merge()).
  static LruList parse_snapshot(std::istream& in, std::size_t clamp);

  const std::size_t capacity_;
  mutable common::Mutex mu_;
  LruList lru_ LMDS_GUARDED_BY(mu_);
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_
      LMDS_GUARDED_BY(mu_);
  std::uint64_t hits_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ LMDS_GUARDED_BY(mu_) = 0;
  std::map<std::string, NamespaceStats> ns_stats_ LMDS_GUARDED_BY(mu_);
};

}  // namespace lmds::api
