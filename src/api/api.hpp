#pragma once
// Unified solver API types: every MDS / MVC algorithm in the library is
// described by a SolverSpec and invoked through one Request -> Response
// surface (see registry.hpp for the process-wide Registry).
//
// The point is the *comparison*: Table 1 of the paper lines up Algorithm 1,
// the 3-round Theorem 4.4 rule, folklore baselines and KSV-style rules, yet
// each used to be a bespoke struct (`Algorithm1Result`, `Theorem44Result`,
// bare vectors...). One uniform surface is also the seam the ROADMAP's
// serving/batching/caching layers build on: callers hold a Request, not a
// call site per algorithm.

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/metrics.hpp"
#include "graph/graph.hpp"
#include "local/simulator.hpp"

namespace lmds::api {

using graph::Graph;
using graph::Vertex;

/// Which covering problem a solver answers.
enum class Problem { Mds, Mvc };

/// How a solver executes. Centralized evaluates the rule on the whole graph;
/// Local runs the message-passing simulator and measures real traffic.
enum class Mode { Centralized, Local };

std::string_view to_string(Problem p);
std::string_view to_string(Mode m);

/// Thrown by Registry for malformed requests — unknown solver name, null
/// graph, an option the spec does not declare, or measure_traffic on a
/// solver without a Local mode. Distinct from algorithm failures, which
/// propagate the algorithm's own exception types, so callers (e.g. the CLI)
/// can map the two to different exit codes.
struct RequestError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// A typed solver parameter value: int, bool or double. Implicit construction
/// keeps `options["t"] = 5` working; the declared type lives in the ParamSpec
/// default, and Registry::resolve_options coerces request values to it
/// (int -> bool, int -> double) or throws RequestError on a real mismatch.
class ParamValue {
 public:
  enum class Type { Int, Bool, Double };

  ParamValue() = default;
  ParamValue(int v) : v_(v) {}     // NOLINT(google-explicit-constructor)
  ParamValue(bool v) : v_(v) {}    // NOLINT(google-explicit-constructor)
  ParamValue(double v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  ParamValue(const void*) = delete;  // otherwise a char* would select bool

  Type type() const { return static_cast<Type>(v_.index()); }

  /// Strict accessors: as_int demands an Int (so a double knob can never be
  /// silently truncated); as_bool additionally accepts an Int as 0/false,
  /// nonzero/true; as_double additionally promotes an Int. Violations throw
  /// std::invalid_argument.
  int as_int() const;
  bool as_bool() const;
  double as_double() const;

  /// "5", "true", "0.25" — used by generated usage text and cache keys.
  std::string to_string() const;

  friend bool operator==(const ParamValue&, const ParamValue&) = default;

 private:
  std::variant<int, bool, double> v_;  // index order must match Type
};

std::string_view to_string(ParamValue::Type t);

/// Parses the textual spelling of a parameter value against its declared
/// type — the one strict parser shared by mds_cli and the serve_client
/// driver. Rules: Double accepts any finite decimal ("0.25", "1e-3");
/// Bool accepts "true"/"false" (an integer spelling falls through to Int and
/// is coerced by the registry, 0 = false); Int accepts a decimal integer
/// that fits in int. Trailing garbage ("5x"), out-of-range values
/// ("99999999999" — no silent wraparound), empty strings, and non-finite
/// doubles ("inf", "nan") all return std::nullopt.
std::optional<ParamValue> parse_param_value(std::string_view text,
                                            ParamValue::Type declared);

/// One named typed parameter a solver accepts. The default's type *is* the
/// parameter's declared type.
struct ParamSpec {
  std::string name;
  ParamValue default_value = 0;
  std::string description;

  ParamValue::Type type() const { return default_value.type(); }
};

/// Static description of a registered solver.
struct SolverSpec {
  std::string name;     ///< registry key, e.g. "algorithm1"
  Problem problem = Problem::Mds;
  std::vector<Mode> modes = {Mode::Centralized};  ///< supported execution modes
  std::string summary;  ///< one line for --help / docs
  std::vector<ParamSpec> params;
  /// LOCAL decomposability radius: if >= 0, a vertex's membership in the
  /// solution is a pure function of its radius-`locality_radius` ball as an
  /// *induced labelled subgraph* — vertex ids may be compared for order
  /// (tie-breaks) but never used as values, so any order-preserving
  /// relabelling of the ball yields the same decision. This is the license
  /// for the executor's ball-granular incremental re-solve after an edge
  /// patch: only vertices whose ball touches an edited edge can change.
  /// -1 = not decomposable (global coordination, diagnostics or optimality),
  /// and patched graphs fall back to a full re-solve.
  int locality_radius = -1;

  bool supports(Mode m) const;
  /// Default of a declared parameter; throws std::invalid_argument if the
  /// spec does not declare `param`.
  ParamValue param_default(std::string_view param) const;
};

/// Named typed options; anything unset falls back to the SolverSpec
/// default. Transparent comparator so lookups take string_view. Sorted, so
/// iterating yields a canonical order (the response-cache key relies on it).
using Options = std::map<std::string, ParamValue, std::less<>>;

/// One solve request. The graph is borrowed, not owned — it must outlive the
/// run() call (batch entry points take spans of graphs instead).
struct Request {
  const Graph* graph = nullptr;
  Options options;
  /// Execute the LOCAL path through the message-passing simulator and fill
  /// Diagnostics::traffic with measured rounds/messages/bytes. Requesting
  /// this on a solver without a Local mode is an error.
  bool measure_traffic = false;
  /// Fill Response::ratio via core::measure_mds_ratio / measure_mvc_ratio
  /// (runs the exact solver or a lower bound — costs time on big graphs).
  bool measure_ratio = false;
};

/// Execution detail common to every solver, folding the fields of the old
/// Algorithm1Diagnostics / MvcAlgorithm1Diagnostics and local::TrafficStats
/// into one shape. Fields a solver has nothing to say about keep their
/// zero/empty defaults.
struct Diagnostics {
  int rounds = -1;  ///< model-level LOCAL rounds; -1 = centralized-only solver
  local::TrafficStats traffic;    ///< measured iff traffic_measured
  bool traffic_measured = false;  ///< true iff the run went through the simulator
  // Algorithm-1 family detail:
  int twin_classes = 0;                  ///< |V(G⁻)| (MDS pipeline only)
  std::vector<Vertex> one_cuts;          ///< X, input indices
  std::vector<Vertex> two_cut_vertices;  ///< I (MDS: interesting) or all 2-cut vertices (MVC)
  std::vector<Vertex> brute_forced;      ///< step-3 additions
  int residual_components = 0;
  int max_residual_diameter = 0;

  friend bool operator==(const Diagnostics&, const Diagnostics&) = default;
};

/// One solve response. `solution` is sorted in input-graph indices; `valid`
/// is always checked against solve::is_dominating_set / is_vertex_cover.
struct Response {
  std::string solver;
  Problem problem = Problem::Mds;
  std::vector<Vertex> solution;
  bool valid = false;
  core::RatioReport ratio;      ///< meaningful iff ratio_measured
  bool ratio_measured = false;
  Diagnostics diag;

  /// Field-wise equality — the batch executor's determinism guarantee
  /// ("threads=8 equals threads=1" and "cache hit equals fresh run") is
  /// asserted with this operator in tests/test_batch.cpp.
  friend bool operator==(const Response&, const Response&) = default;
};

}  // namespace lmds::api
