#pragma once
// Unified solver API types: every MDS / MVC algorithm in the library is
// described by a SolverSpec and invoked through one Request -> Response
// surface (see registry.hpp for the process-wide Registry).
//
// The point is the *comparison*: Table 1 of the paper lines up Algorithm 1,
// the 3-round Theorem 4.4 rule, folklore baselines and KSV-style rules, yet
// each used to be a bespoke struct (`Algorithm1Result`, `Theorem44Result`,
// bare vectors...). One uniform surface is also the seam the ROADMAP's
// serving/batching/caching layers build on: callers hold a Request, not a
// call site per algorithm.

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.hpp"
#include "graph/graph.hpp"
#include "local/simulator.hpp"

namespace lmds::api {

using graph::Graph;
using graph::Vertex;

/// Which covering problem a solver answers.
enum class Problem { Mds, Mvc };

/// How a solver executes. Centralized evaluates the rule on the whole graph;
/// Local runs the message-passing simulator and measures real traffic.
enum class Mode { Centralized, Local };

std::string_view to_string(Problem p);
std::string_view to_string(Mode m);

/// Thrown by Registry for malformed requests — unknown solver name, null
/// graph, an option the spec does not declare, or measure_traffic on a
/// solver without a Local mode. Distinct from algorithm failures, which
/// propagate the algorithm's own exception types, so callers (e.g. the CLI)
/// can map the two to different exit codes.
struct RequestError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// One named integer parameter a solver accepts, with its default.
struct ParamSpec {
  std::string name;
  int default_value = 0;
  std::string description;
};

/// Static description of a registered solver.
struct SolverSpec {
  std::string name;     ///< registry key, e.g. "algorithm1"
  Problem problem = Problem::Mds;
  std::vector<Mode> modes = {Mode::Centralized};  ///< supported execution modes
  std::string summary;  ///< one line for --help / docs
  std::vector<ParamSpec> params;

  bool supports(Mode m) const;
  /// Default of a declared parameter; throws std::invalid_argument if the
  /// spec does not declare `param`.
  int param_default(std::string_view param) const;
};

/// Named integer options; anything unset falls back to the SolverSpec
/// default. Transparent comparator so lookups take string_view.
using Options = std::map<std::string, int, std::less<>>;

/// One solve request. The graph is borrowed, not owned — it must outlive the
/// run() call (batch entry points take spans of graphs instead).
struct Request {
  const Graph* graph = nullptr;
  Options options;
  /// Execute the LOCAL path through the message-passing simulator and fill
  /// Diagnostics::traffic with measured rounds/messages/bytes. Requesting
  /// this on a solver without a Local mode is an error.
  bool measure_traffic = false;
  /// Fill Response::ratio via core::measure_mds_ratio / measure_mvc_ratio
  /// (runs the exact solver or a lower bound — costs time on big graphs).
  bool measure_ratio = false;
};

/// Execution detail common to every solver, folding the fields of the old
/// Algorithm1Diagnostics / MvcAlgorithm1Diagnostics and local::TrafficStats
/// into one shape. Fields a solver has nothing to say about keep their
/// zero/empty defaults.
struct Diagnostics {
  int rounds = -1;  ///< model-level LOCAL rounds; -1 = centralized-only solver
  local::TrafficStats traffic;    ///< measured iff traffic_measured
  bool traffic_measured = false;  ///< true iff the run went through the simulator
  // Algorithm-1 family detail:
  int twin_classes = 0;                  ///< |V(G⁻)| (MDS pipeline only)
  std::vector<Vertex> one_cuts;          ///< X, input indices
  std::vector<Vertex> two_cut_vertices;  ///< I (MDS: interesting) or all 2-cut vertices (MVC)
  std::vector<Vertex> brute_forced;      ///< step-3 additions
  int residual_components = 0;
  int max_residual_diameter = 0;
};

/// One solve response. `solution` is sorted in input-graph indices; `valid`
/// is always checked against solve::is_dominating_set / is_vertex_cover.
struct Response {
  std::string solver;
  Problem problem = Problem::Mds;
  std::vector<Vertex> solution;
  bool valid = false;
  core::RatioReport ratio;      ///< meaningful iff ratio_measured
  bool ratio_measured = false;
  Diagnostics diag;
};

}  // namespace lmds::api
