// Registration of every built-in algorithm with the unified registry. Each
// adapter translates SolveContext -> the algorithm's native call and folds
// its bespoke result struct into the uniform SolverOutput. Outputs are
// bit-identical to the direct calls (asserted by tests/test_api.cpp).

#include "api/registry.hpp"
#include "core/algorithm1.hpp"
#include "core/baselines.hpp"
#include "core/mvc.hpp"
#include "core/theorem44.hpp"
#include "solve/exact_mds.hpp"
#include "solve/exact_mvc.hpp"
#include "solve/greedy.hpp"

namespace lmds::api {

namespace {

const ParamValue& param(const SolveContext& ctx, std::string_view name) {
  const auto it = ctx.params.find(name);
  if (it == ctx.params.end()) {
    // The registry resolves every *declared* parameter; reaching here means
    // an adapter asked for a name its spec does not declare.
    throw std::logic_error("adapter read undeclared parameter '" + std::string(name) + "'");
  }
  return it->second;
}

core::Algorithm1Config algorithm1_config(const SolveContext& ctx) {
  core::Algorithm1Config cfg;
  cfg.t = param(ctx, "t").as_int();
  cfg.radius1 = param(ctx, "radius1").as_int();
  cfg.radius2 = param(ctx, "radius2").as_int();
  if (ctx.params.contains("twin_removal")) {
    cfg.twin_removal = param(ctx, "twin_removal").as_bool();
  }
  return cfg;
}

// A function, not a namespace-scope global: registration may be triggered
// from another TU's static initializer via Registry::instance(), which would
// observe a dynamically-initialized global before its constructor ran.
std::vector<ParamSpec> algorithm1_params() {
  return {
      {"t", 5, "class parameter: input assumed K_{2,t}-minor-free"},
      {"radius1", 4, "m3.2 override; <= 0 means the paper constant 43t+2"},
      {"radius2", 4, "m3.3 override; <= 0 means the paper constant 73t+5"},
  };
}

// Folds the fields the MDS and MVC pipeline diagnostics share into the
// unified shape. `two_cut_vertices` is passed explicitly because the source
// member differs (`interesting` vs `two_cut_vertices`).
template <typename PipelineDiag>
Diagnostics fold_pipeline_diag(PipelineDiag& d, std::vector<Vertex>&& two_cut_vertices,
                               bool local) {
  Diagnostics out;
  out.rounds = d.rounds;
  out.traffic = d.traffic;
  out.traffic_measured = local;
  out.one_cuts = std::move(d.one_cuts);
  out.two_cut_vertices = std::move(two_cut_vertices);
  out.brute_forced = std::move(d.brute_forced);
  out.residual_components = d.residual_components;
  out.max_residual_diameter = d.max_residual_diameter;
  return out;
}

SolverOutput from_algorithm1(core::Algorithm1Result&& result, bool local) {
  SolverOutput out;
  out.solution = std::move(result.dominating_set);
  out.diag = fold_pipeline_diag(result.diag, std::move(result.diag.interesting), local);
  out.diag.twin_classes = result.diag.twin_classes;
  return out;
}

SolverOutput from_theorem44(core::Theorem44Result&& result, bool local) {
  SolverOutput out;
  out.solution = std::move(result.solution);
  out.diag.rounds = result.traffic.rounds;
  if (local) {
    out.diag.traffic = result.traffic;
    out.diag.traffic_measured = true;
  }
  return out;
}

SolverOutput plain(std::vector<Vertex> solution, int rounds) {
  SolverOutput out;
  out.solution = std::move(solution);
  out.diag.rounds = rounds;
  return out;
}

}  // namespace

// Declared (and called) by Registry::instance() in registry.cpp.
void register_builtin_solvers(Registry& reg) {
  reg.add(
      {.name = "algorithm1",
       .problem = Problem::Mds,
       .modes = {Mode::Centralized, Mode::Local},
       .summary = "Algorithm 1 (Thm 4.1): O_t(1)-round constant-approx MDS via local cuts",
       .params = [] {
         auto p = algorithm1_params();
         p.push_back({"twin_removal", true, "paper step 1 ablation switch (false disables)"});
         return p;
       }()},
      [](const SolveContext& ctx) {
        const auto cfg = algorithm1_config(ctx);
        auto result = ctx.local
                          ? core::algorithm1_local(local::Network(ctx.graph), cfg,
                                                   ctx.intra_threads)
                          : core::algorithm1(ctx.graph, cfg);
        return from_algorithm1(std::move(result), ctx.local);
      });

  reg.add(
      {.name = "algorithm1-mvc",
       .problem = Problem::Mvc,
       .modes = {Mode::Centralized, Mode::Local},
       .summary = "Algorithm 1 MVC variant (end of §4): cut vertices + residual edge covers",
       .params = algorithm1_params()},
      [](const SolveContext& ctx) {
        const auto cfg = algorithm1_config(ctx);
        auto result = ctx.local
                          ? core::algorithm1_mvc_local(local::Network(ctx.graph), cfg,
                                                       ctx.intra_threads)
                          : core::algorithm1_mvc(ctx.graph, cfg);
        SolverOutput out;
        out.solution = std::move(result.vertex_cover);
        out.diag = fold_pipeline_diag(result.diag, std::move(result.diag.two_cut_vertices),
                                      ctx.local);
        return out;
      });

  reg.add({.name = "theorem44",
           .problem = Problem::Mds,
           .modes = {Mode::Centralized, Mode::Local},
           .summary = "Theorem 4.4: 3-round (2t-1)-approx MDS (D2 rule on G^-)",
           .params = {},
           // v joins unless a neighbour true-twins or strictly contains it;
           // both tests read N[u] for u in N[v], i.e. ball(v, 2).
           .locality_radius = 2},
          [](const SolveContext& ctx) {
            auto result =
                ctx.local
                    ? core::theorem44_mds_local(local::Network(ctx.graph), ctx.intra_threads)
                    : core::theorem44_mds(ctx.graph, ctx.intra_threads);
            return from_theorem44(std::move(result), ctx.local);
          });

  reg.add({.name = "theorem44-mvc",
           .problem = Problem::Mvc,
           .modes = {Mode::Centralized, Mode::Local},
           .summary = "Theorem 4.4: 3-round t-approx MVC (degree >= 2 rule)",
           .params = {},
           // deg(v) >= 2 joins; an isolated edge elects its smaller endpoint,
           // which needs the neighbour's degree — ball(v, 2).
           .locality_radius = 2},
          [](const SolveContext& ctx) {
            auto result =
                ctx.local
                    ? core::theorem44_mvc_local(local::Network(ctx.graph), ctx.intra_threads)
                    : core::theorem44_mvc(ctx.graph, ctx.intra_threads);
            return from_theorem44(std::move(result), ctx.local);
          });

  reg.add({.name = "greedy",
           .problem = Problem::Mds,
           .modes = {Mode::Centralized},
           .summary = "centralized (1+ln n)-greedy dominating set baseline",
           .params = {}},
          [](const SolveContext& ctx) { return plain(solve::greedy_mds(ctx.graph), -1); });

  reg.add({.name = "exact",
           .problem = Problem::Mds,
           .modes = {Mode::Centralized},
           .summary = "exact minimum dominating set (set-cover branch & bound)",
           .params = {}},
          [](const SolveContext& ctx) { return plain(solve::exact_mds(ctx.graph), -1); });

  reg.add({.name = "exact-mvc",
           .problem = Problem::Mvc,
           .modes = {Mode::Centralized},
           .summary = "exact minimum vertex cover (branch & bound)",
           .params = {}},
          [](const SolveContext& ctx) { return plain(solve::exact_mvc(ctx.graph), -1); });

  // KSV-style rule: the gamma test reads radius-2 balls (3 rounds) and the
  // greedy fixup is one more round — the "4" bench_table1 always annotated.
  reg.add({.name = "ksv",
           .problem = Problem::Mds,
           .modes = {Mode::Centralized},
           .summary = "KSV-style bounded-expansion rule [18]: gamma(v) > k joins, greedy fixup",
           .params = {{"k", 3, "domination threshold (k = 2*grad+1 in [18])"}},
           // gamma(y) reads ball(y, 2); v's "dominated" flag needs gamma of
           // ball(v, 3), so its nomination is f(ball(v, 5)); membership of b
           // needs the nominations of N[b] — ball(b, 6). The greedy-fixup
           // tie-break compares candidate ids for order only.
           .locality_radius = 6},
          [](const SolveContext& ctx) {
            return plain(
                core::ksv_style(ctx.graph, param(ctx, "k").as_int(), ctx.intra_threads), 4);
          });

  reg.add({.name = "take-all",
           .problem = Problem::Mds,
           .modes = {Mode::Centralized},
           .summary = "all vertices: 0 rounds, t-approx on K_{1,t}-minor-free graphs",
           .params = {},
           .locality_radius = 0},
          [](const SolveContext& ctx) { return plain(core::take_all(ctx.graph), 0); });

  reg.add({.name = "tree-rule",
           .problem = Problem::Mds,
           .modes = {Mode::Centralized},
           .summary = "folklore tree rule: degree >= 2 plus small-component fixups, 2 rounds",
           .params = {},
           // Same shape as theorem44-mvc's rule: the pendant fixup reads the
           // neighbour's degree — ball(v, 2).
           .locality_radius = 2},
          [](const SolveContext& ctx) {
            return plain(core::tree_degree_rule(ctx.graph, ctx.intra_threads), 2);
          });
}

}  // namespace lmds::api
