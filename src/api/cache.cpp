#include "api/cache.hpp"

#include "graph/hash.hpp"

namespace lmds::api {

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = key.graph_hash;
  for (const char c : key.solver) h = graph::mix64(h ^ static_cast<unsigned char>(c));
  for (const char c : key.options) h = graph::mix64(h ^ static_cast<unsigned char>(c));
  return static_cast<std::size_t>(h);
}

std::string canonical_options(const Options& params, bool measure_traffic,
                              bool measure_ratio) {
  std::string out;
  for (const auto& [name, value] : params) {  // std::map: sorted, canonical
    out += name;
    out += '=';
    out += value.to_string();
    out += ';';
  }
  out += "|traffic=";
  out += measure_traffic ? '1' : '0';
  out += ";ratio=";
  out += measure_ratio ? '1' : '0';
  return out;
}

ResponseCache::ResponseCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<Response> ResponseCache::lookup(const CacheKey& key) {
  if (!enabled()) return std::nullopt;
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  ++hits_;
  return it->second->second;
}

bool ResponseCache::insert(const CacheKey& key, const Response& value) {
  if (!enabled()) return false;
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent workers may compute the same entry; keep the first, just
    // refresh recency — the Responses are identical by determinism.
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  bool evicted = false;
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    evicted = true;
  }
  lru_.emplace_front(key, value);
  index_[key] = lru_.begin();
  return evicted;
}

CacheStats ResponseCache::stats() const {
  std::lock_guard lock(mu_);
  return {hits_, misses_, evictions_, lru_.size(), capacity_};
}

void ResponseCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace lmds::api
