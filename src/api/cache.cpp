#include "api/cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "graph/hash.hpp"

namespace lmds::api {

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = key.graph_hash;
  for (const char c : key.solver) h = graph::mix64(h ^ static_cast<unsigned char>(c));
  for (const char c : key.options) h = graph::mix64(h ^ static_cast<unsigned char>(c));
  // Mix a separator first so ("ab", "") and ("a", "b") across the
  // options/ns boundary cannot collide trivially.
  h = graph::mix64(h ^ 0x9e3779b97f4a7c15ULL);
  for (const char c : key.ns) h = graph::mix64(h ^ static_cast<unsigned char>(c));
  return static_cast<std::size_t>(h);
}

namespace {

// Backslash-escapes the structural characters of the canonical key grammar.
// Without this, a future string-valued parameter (or a parameter *name*)
// containing '=' or ';' could make two distinct option maps serialize to the
// same key string — e.g. {"a=1;b": 2} vs {"a": 1, "b": 2}.
void append_escaped(std::string& out, std::string_view field) {
  for (const char c : field) {
    if (c == '\\' || c == '=' || c == ';' || c == '|') out += '\\';
    out += c;
  }
}

// Namespaces are client-supplied, so the per-namespace counter map must not
// grow without bound on a long-lived multi-tenant server. Counters of idle
// namespaces (no entries currently held) are pruned once the map reaches
// this size; namespaces with live entries are bounded by the cache capacity
// itself (each needs at least one entry).
constexpr std::size_t kMaxIdleNamespaceStats = 1024;

}  // namespace

std::string canonical_options(const Options& params, bool measure_traffic,
                              bool measure_ratio) {
  std::string out;
  for (const auto& [name, value] : params) {  // std::map: sorted, canonical
    append_escaped(out, name);
    out += '=';
    append_escaped(out, value.to_string());
    out += ';';
  }
  out += "|traffic=";
  out += measure_traffic ? '1' : '0';
  out += ";ratio=";
  out += measure_ratio ? '1' : '0';
  return out;
}

ResponseCache::ResponseCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<Response> ResponseCache::lookup(const CacheKey& key) {
  if (!enabled()) return std::nullopt;
  common::MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;  // the completing insert() counts the miss
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  ++hits_;
  ++ns_stats_[key.ns].hits;
  return it->second->second;
}

void ResponseCache::evict_lru_locked() {
  NamespaceStats& loser = ns_stats_[lru_.back().first.ns];
  ++loser.evictions;
  --loser.size;
  index_.erase(lru_.back().first);
  lru_.pop_back();
  ++evictions_;
}

void ResponseCache::prune_idle_namespaces_locked(const std::string& ns) {
  if (ns_stats_.size() >= kMaxIdleNamespaceStats && !ns_stats_.contains(ns)) {
    // A fresh namespace would push the counter map past its bound: drop the
    // counters of namespaces holding no entries (their history, not their
    // data — the entries of live namespaces are never touched).
    std::erase_if(ns_stats_, [](const auto& kv) { return kv.second.size == 0; });
  }
}

bool ResponseCache::insert(const CacheKey& key, const Response& value) {
  if (!enabled()) return false;
  common::MutexLock lock(mu_);
  ++misses_;  // one computed Response reached the cache — the request's miss
  prune_idle_namespaces_locked(key.ns);
  ++ns_stats_[key.ns].misses;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent workers may compute the same entry; keep the first, just
    // refresh recency — the Responses are identical by determinism.
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  const bool evict = lru_.size() >= capacity_;
  if (evict) evict_lru_locked();
  lru_.emplace_front(key, value);
  index_[key] = lru_.begin();
  ++ns_stats_[key.ns].size;
  return evict;
}

CacheStats ResponseCache::stats() const {
  common::MutexLock lock(mu_);
  return {hits_, misses_, evictions_, lru_.size(), capacity_};
}

std::map<std::string, NamespaceStats> ResponseCache::namespace_stats() const {
  common::MutexLock lock(mu_);
  return ns_stats_;
}

void ResponseCache::clear() {
  common::MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  for (auto& [ns, stats] : ns_stats_) stats.size = 0;
}

// ---------------------------------------------------------------------------
// Snapshot format (little-endian, version 2):
//
//   magic   "LMDSCACH"                       8 bytes
//   version u32                              = 2
//   count   u64
//   count entries, least- to most-recently-used:
//     CacheKey   { graph_hash u64, solver str, options str, ns str }
//                (version 1 lacked the ns str; deserialize() still reads
//                 such snapshots and places the entries in namespace "")
//     Response   { solver str, problem u8, solution vec<i32>, valid u8,
//                  ratio { size i32, reference i32, exact u8, ratio f64 },
//                  ratio_measured u8,
//                  diag { rounds i32,
//                         traffic { rounds i32, messages u64, bytes u64 },
//                         traffic_measured u8, twin_classes i32,
//                         one_cuts vec<i32>, two_cut_vertices vec<i32>,
//                         brute_forced vec<i32>,
//                         residual_components i32,
//                         max_residual_diameter i32 } }
//   footer  u64 = kFooter
//
// str = u32 length + bytes; vec<i32> = u32 count + i32 each; f64 = IEEE bits
// as u64. The footer catches truncation: a snapshot cut anywhere fails the
// footer read (or an inner read) and deserialize() throws without touching
// the live entries.

namespace {

constexpr char kMagic[8] = {'L', 'M', 'D', 'S', 'C', 'A', 'C', 'H'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersionPreNamespace = 1;  // still readable
constexpr std::uint64_t kFooter = 0x4C4D44534E415053ULL;  // "LMDSNAPS"

void put_bytes(std::ostream& out, const void* p, std::size_t n) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void put_u8(std::ostream& out, std::uint8_t v) { put_bytes(out, &v, 1); }

void put_u32(std::ostream& out, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  put_bytes(out, b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  put_bytes(out, b, 8);
}

void put_i32(std::ostream& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::ostream& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

void put_str(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  put_bytes(out, s.data(), s.size());
}

void put_vertices(std::ostream& out, const std::vector<Vertex>& vs) {
  put_u32(out, static_cast<std::uint32_t>(vs.size()));
  for (const Vertex v : vs) put_i32(out, v);
}

[[noreturn]] void truncated() {
  throw std::runtime_error("cache snapshot: truncated or corrupt stream");
}

void get_bytes(std::istream& in, void* p, std::size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) truncated();
}

std::uint8_t get_u8(std::istream& in) {
  std::uint8_t v;
  get_bytes(in, &v, 1);
  return v;
}

std::uint32_t get_u32(std::istream& in) {
  std::uint8_t b[4];
  get_bytes(in, b, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  std::uint8_t b[8];
  get_bytes(in, b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::int32_t get_i32(std::istream& in) { return static_cast<std::int32_t>(get_u32(in)); }

double get_f64(std::istream& in) { return std::bit_cast<double>(get_u64(in)); }

// Length prefixes in a corrupt snapshot are attacker/garbage-controlled, so
// the readers below never allocate a declared length up front — they grow
// with the bytes actually present, and a truncated stream throws after
// consuming only what existed. (A long-but-corrupt stream is bounded by its
// own size, which the operator chose to load.)
constexpr std::uint32_t kReadChunk = 1u << 16;

std::string get_str(std::istream& in) {
  std::uint32_t n = get_u32(in);
  std::string s;
  char buf[kReadChunk];
  while (n > 0) {
    const std::uint32_t take = std::min(n, kReadChunk);
    get_bytes(in, buf, take);
    s.append(buf, take);
    n -= take;
  }
  return s;
}

std::vector<Vertex> get_vertices(std::istream& in) {
  const std::uint32_t n = get_u32(in);
  std::vector<Vertex> vs;
  vs.reserve(std::min(n, kReadChunk));
  for (std::uint32_t i = 0; i < n; ++i) vs.push_back(get_i32(in));
  return vs;
}

void put_response(std::ostream& out, const Response& r) {
  put_str(out, r.solver);
  put_u8(out, r.problem == Problem::Mds ? 0 : 1);
  put_vertices(out, r.solution);
  put_u8(out, r.valid ? 1 : 0);
  put_i32(out, r.ratio.solution_size);
  put_i32(out, r.ratio.reference);
  put_u8(out, r.ratio.exact ? 1 : 0);
  put_f64(out, r.ratio.ratio);
  put_u8(out, r.ratio_measured ? 1 : 0);
  put_i32(out, r.diag.rounds);
  put_i32(out, r.diag.traffic.rounds);
  put_u64(out, r.diag.traffic.messages);
  put_u64(out, r.diag.traffic.bytes);
  put_u8(out, r.diag.traffic_measured ? 1 : 0);
  put_i32(out, r.diag.twin_classes);
  put_vertices(out, r.diag.one_cuts);
  put_vertices(out, r.diag.two_cut_vertices);
  put_vertices(out, r.diag.brute_forced);
  put_i32(out, r.diag.residual_components);
  put_i32(out, r.diag.max_residual_diameter);
}

Response get_response(std::istream& in) {
  Response r;
  r.solver = get_str(in);
  r.problem = get_u8(in) == 0 ? Problem::Mds : Problem::Mvc;
  r.solution = get_vertices(in);
  r.valid = get_u8(in) != 0;
  r.ratio.solution_size = get_i32(in);
  r.ratio.reference = get_i32(in);
  r.ratio.exact = get_u8(in) != 0;
  r.ratio.ratio = get_f64(in);
  r.ratio_measured = get_u8(in) != 0;
  r.diag.rounds = get_i32(in);
  r.diag.traffic.rounds = get_i32(in);
  r.diag.traffic.messages = get_u64(in);
  r.diag.traffic.bytes = get_u64(in);
  r.diag.traffic_measured = get_u8(in) != 0;
  r.diag.twin_classes = get_i32(in);
  r.diag.one_cuts = get_vertices(in);
  r.diag.two_cut_vertices = get_vertices(in);
  r.diag.brute_forced = get_vertices(in);
  r.diag.residual_components = get_i32(in);
  r.diag.max_residual_diameter = get_i32(in);
  return r;
}

}  // namespace

void ResponseCache::serialize(std::ostream& out) const {
  common::MutexLock lock(mu_);
  put_bytes(out, kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u64(out, lru_.size());
  // Back-to-front = LRU first, so replaying the stream through ordered
  // inserts reproduces the recency order exactly.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    put_u64(out, it->first.graph_hash);
    put_str(out, it->first.solver);
    put_str(out, it->first.options);
    put_str(out, it->first.ns);
    put_response(out, it->second);
  }
  put_u64(out, kFooter);
  if (!out) throw std::runtime_error("cache snapshot: stream write failed");
}

ResponseCache::LruList ResponseCache::parse_snapshot(std::istream& in,
                                                     std::size_t clamp) {
  char magic[8];
  get_bytes(in, magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("cache snapshot: bad magic (not a snapshot file)");
  }
  const std::uint32_t version = get_u32(in);
  if (version != kVersion && version != kVersionPreNamespace) {
    throw std::runtime_error("cache snapshot: unsupported version " +
                             std::to_string(version));
  }
  const std::uint64_t count = get_u64(in);

  // Parse the whole snapshot before touching live state: a truncation throws
  // from here and the caller's cache is left exactly as it was.
  LruList entries;  // built MRU-first, i.e. in final list order
  for (std::uint64_t i = 0; i < count; ++i) {
    CacheKey key;
    key.graph_hash = get_u64(in);
    key.solver = get_str(in);
    key.options = get_str(in);
    // Version 1 predates namespaces; its entries belong to the default one.
    key.ns = version >= kVersion ? get_str(in) : std::string();
    Response value = get_response(in);
    entries.emplace_front(std::move(key), std::move(value));
    if (clamp > 0 && entries.size() > clamp) entries.pop_back();  // drop oldest
  }
  if (get_u64(in) != kFooter) truncated();
  return entries;
}

void ResponseCache::deserialize(std::istream& in) {
  LruList entries = parse_snapshot(in, enabled() ? capacity_ : 0);
  if (!enabled()) return;

  common::MutexLock lock(mu_);
  install_entries_locked(std::move(entries));
}

void ResponseCache::merge(std::istream& in) {
  LruList entries = parse_snapshot(in, enabled() ? capacity_ : 0);
  if (!enabled()) return;

  common::MutexLock lock(mu_);
  // MRU-first traversal + push_back keeps the snapshot's relative recency
  // while queueing every merged entry behind the live ones; once full, the
  // remaining (older) snapshot entries are dropped rather than evicting
  // anything the server already holds.
  for (auto& [key, value] : entries) {
    if (lru_.size() >= capacity_) break;
    if (index_.contains(key)) continue;
    prune_idle_namespaces_locked(key.ns);
    ++ns_stats_[key.ns].size;
    lru_.emplace_back(std::move(key), std::move(value));
    index_[lru_.back().first] = std::prev(lru_.end());
  }
}

void ResponseCache::install_entries_locked(LruList entries) {
  lru_ = std::move(entries);
  index_.clear();
  for (auto it = lru_.begin(); it != lru_.end();) {
    // Front-to-back is most- to least-recent; on a (corrupt) duplicate key
    // keep the more recent copy so list and index stay consistent.
    if (index_.emplace(it->first, it).second) {
      ++it;
    } else {
      it = lru_.erase(it);
    }
  }
  // Per-namespace sizes describe the entries just loaded; the hit/miss
  // counters stay lifetime-of-this-process, like the global ones.
  for (auto& [ns, stats] : ns_stats_) stats.size = 0;
  for (const auto& [key, value] : lru_) ++ns_stats_[key.ns].size;
}

void ResponseCache::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cache snapshot: cannot write " + path);
  serialize(out);
  out.flush();
  if (!out) throw std::runtime_error("cache snapshot: write to " + path + " failed");
}

void ResponseCache::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cache snapshot: cannot open " + path);
  deserialize(in);
}

}  // namespace lmds::api
