#include "api/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "api/registry.hpp"
#include "common/mutex.hpp"
#include "graph/bfs.hpp"
#include "graph/hash.hpp"
#include "graph/ops.hpp"
#include "solve/validate.hpp"

namespace lmds::api {

BatchExecutor::BatchExecutor(BatchOptions opts) : BatchExecutor(opts, Registry::instance()) {}

BatchExecutor::BatchExecutor(BatchOptions opts, const Registry& registry)
    : opts_(opts), registry_(registry), cache_(opts.cache_capacity) {
  if (opts_.shard_size <= 0) {
    throw std::invalid_argument("BatchOptions::shard_size must be positive");
  }
}

std::vector<Response> BatchExecutor::run_batch(std::string_view solver,
                                               std::span<const Graph> graphs,
                                               const Request& req, BatchDiagnostics* diag) {
  return run_batch(solver, graphs, req, BatchOverrides{}, diag);
}

std::vector<Response> BatchExecutor::run_batch(std::string_view solver,
                                               std::span<const Graph> graphs,
                                               const Request& req, const BatchOverrides& over,
                                               BatchDiagnostics* diag) {
  return run_impl(
      solver, [graphs](std::size_t i) -> const Graph& { return graphs[i]; }, graphs.size(),
      req, over, diag);
}

std::vector<Response> BatchExecutor::run_batch(
    std::string_view solver, std::span<const Graph* const> graphs, const Request& req,
    const BatchOverrides& over, BatchDiagnostics* diag,
    std::span<const std::uint64_t> graph_hashes,
    std::span<const std::shared_ptr<const PatchLineage>> lineages) {
  return run_impl(
      solver, [graphs](std::size_t i) -> const Graph& { return *graphs[i]; }, graphs.size(),
      req, over, diag, graph_hashes, lineages);
}

std::vector<Response> BatchExecutor::run_impl(
    std::string_view solver, const std::function<const Graph&(std::size_t)>& graph_at,
    std::size_t count, const Request& req, const BatchOverrides& over,
    BatchDiagnostics* diag, std::span<const std::uint64_t> graph_hashes,
    std::span<const std::shared_ptr<const PatchLineage>> lineages) {
  // Validate once, up front: a malformed request throws here, on the calling
  // thread, before any worker spawns or cache entry is touched. Workers then
  // take the trusted run_resolved path — one name lookup per graph, no
  // per-graph re-validation or options rebuild. Override values are part of
  // the request, so they are validated with RequestError too.
  const Options resolved = registry_.resolve_options(solver, req);
  if (over.shard_size && *over.shard_size <= 0) {
    throw RequestError("shard_size override must be positive");
  }
  if (over.threads && *over.threads > 4096) {
    throw RequestError("threads override too large (max 4096)");
  }
  if (over.intra_graph_threads && *over.intra_graph_threads > 4096) {
    throw RequestError("intra_threads override too large (max 4096)");
  }
  const std::size_t shard_size =
      static_cast<std::size_t>(over.shard_size.value_or(opts_.shard_size));
  const int shards = static_cast<int>((count + shard_size - 1) / shard_size);

  int workers = over.threads.value_or(opts_.threads);
  if (workers <= 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = std::max(1, std::min(workers, shards));

  // The second threading mode: shard each solve's own per-vertex work.
  // Resolved here (not deep in the solver) so diagnostics can report the
  // actual count; never folded into cache keys — responses are bit-identical
  // for every value.
  int intra_threads = over.intra_graph_threads.value_or(opts_.intra_graph_threads);
  if (intra_threads <= 0) intra_threads = std::max(1u, std::thread::hardware_concurrency());

  const bool use_cache = cache_.enabled() && !over.bypass_cache;

  // Health counters: the batch exists once validation passed. The in-flight
  // gauge must drop on every exit path (including a rethrown solver error),
  // hence the RAII guard.
  batches_started_.fetch_add(1, std::memory_order_relaxed);
  batches_in_flight_.fetch_add(1, std::memory_order_relaxed);
  shards_executed_.fetch_add(static_cast<std::uint64_t>(shards), std::memory_order_relaxed);
  struct InFlightGuard {
    std::atomic<std::uint64_t>& gauge;
    ~InFlightGuard() { gauge.fetch_sub(1, std::memory_order_relaxed); }
  } in_flight_guard{batches_in_flight_};

  std::vector<Response> out(count);
  // Per-batch counters: concurrent run_batch calls share the cache, so the
  // per-batch numbers must be counted at the access sites, not diffed from
  // the cache's global stats.
  std::uint64_t stolen_total = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> incr_solves{0};
  std::atomic<std::uint64_t> incr_fallbacks{0};
  std::atomic<std::uint64_t> incr_dirty{0};
  // Incremental eligibility, per batch: the splice base is the parent's
  // *cached* response, so the cache must be live; traffic/ratio are global
  // measurements a per-vertex splice cannot patch, so they force a full run.
  const SolverSpec* spec = registry_.find(solver);
  const int locality = spec ? spec->locality_radius : -1;
  const bool lineage_ok =
      !lineages.empty() && use_cache && !req.measure_traffic && !req.measure_ratio;
  if (count > 0) {
    const std::string options_key =
        use_cache ? canonical_options(resolved, req.measure_traffic, req.measure_ratio)
                  : std::string();

    // The shard queue: shards dealt round-robin onto one queue per worker,
    // each queue drained through an atomic cursor. Any worker may pop from
    // any queue, so "stealing" is just advancing a sibling's cursor — no
    // locks, and a shard is claimed exactly once.
    std::vector<std::vector<int>> queues(static_cast<std::size_t>(workers));
    for (int s = 0; s < shards; ++s) {
      queues[static_cast<std::size_t>(s % workers)].push_back(s);
    }
    std::vector<std::atomic<std::size_t>> cursors(static_cast<std::size_t>(workers));
    std::atomic<std::uint64_t> stolen{0};

    // First failure (lowest graph index among the shards that actually ran)
    // wins; the flag makes every worker abandon unclaimed shards.
    std::atomic<bool> failed{false};
    common::Mutex error_mu;  // guards first_error + error_index (locals, so
                             // GUARDED_BY cannot name them — see run_impl's
                             // catch block, the only locked path)
    std::exception_ptr first_error;
    std::size_t error_index = count;

    // Ball-granular incremental re-solve of a patched graph `g` against its
    // lineage. Correctness rests on the locality contract (SolverSpec::
    // locality_radius): a vertex at distance > r from every edited endpoint
    // (in parent AND child — a deleted edge can shorten paths only in the
    // parent, an added one only in the child) has the exact same induced
    // radius-r ball in both graphs, so its parent decision stands verbatim.
    // Every other ("dirty") vertex is re-decided on H = child[ball(dirty, r)]:
    // for dirty v, ball_H(v, r) == ball_child(v, r) (all shortest paths stay
    // inside the support), induced_subgraph relabels order-preservingly, and
    // the contract allows ids to be used for order only — so running the
    // solver on H and lifting yields the vertex's exact full-solve decision.
    // nullopt = fall back to a full re-solve (results identical either way).
    auto incremental_solve = [&](const Graph& g,
                                 const PatchLineage& lin) -> std::optional<Response> {
      const CacheKey parent_key{lin.parent_hash, std::string(solver), options_key,
                                over.cache_namespace};
      std::optional<Response> parent = cache_.lookup(parent_key);
      if (!parent) return std::nullopt;
      const Graph& pg = *lin.parent;
      const auto pn = static_cast<graph::Vertex>(pg.num_vertices());
      const auto cn = static_cast<graph::Vertex>(g.num_vertices());

      std::vector<graph::Vertex> child_eps;
      for (const auto* edits : {&lin.added, &lin.removed}) {
        for (const graph::Edge& e : *edits) {
          child_eps.push_back(e.u);
          child_eps.push_back(e.v);
        }
      }
      std::sort(child_eps.begin(), child_eps.end());
      child_eps.erase(std::unique(child_eps.begin(), child_eps.end()), child_eps.end());
      std::vector<graph::Vertex> parent_eps;  // added edges may name new vertices
      for (graph::Vertex v : child_eps) {
        if (v < pn) parent_eps.push_back(v);
      }

      std::vector<char> dirty(static_cast<std::size_t>(cn), 0);
      for (graph::Vertex v : graph::ball_of_set(pg, parent_eps, locality)) {
        dirty[static_cast<std::size_t>(v)] = 1;
      }
      for (graph::Vertex v : graph::ball_of_set(g, child_eps, locality)) {
        dirty[static_cast<std::size_t>(v)] = 1;
      }
      for (graph::Vertex v = pn; v < cn; ++v) dirty[static_cast<std::size_t>(v)] = 1;
      std::vector<graph::Vertex> dirty_list;
      for (graph::Vertex v = 0; v < cn; ++v) {
        if (dirty[static_cast<std::size_t>(v)]) dirty_list.push_back(v);
      }

      std::vector<char> in_parent(static_cast<std::size_t>(pn), 0);
      for (graph::Vertex v : parent->solution) in_parent[static_cast<std::size_t>(v)] = 1;
      Response result = *std::move(parent);  // solver/problem/diag carry over:
      // every decomposable solver's diagnostics are solution-independent
      // constants (its round count), and traffic/ratio are excluded above.
      result.solution.clear();
      std::vector<char> in_sub;
      graph::Subgraph support;
      if (!dirty_list.empty()) {
        support = graph::induced_subgraph(g, graph::ball_of_set(g, dirty_list, locality));
        // Memoized under the ball-signature sub-key: content hash of the
        // support subgraph + a "|ball=r<r>" marker no canonical_options()
        // string can collide with (its fields escape '|'). Identical dirty
        // regions — e.g. the same edit replayed elsewhere in the graph —
        // share the entry, so sub-solves survive edits outside their ball.
        const CacheKey sub_key{graph::graph_hash(support.graph), std::string(solver),
                               options_key + "|ball=r" + std::to_string(locality),
                               over.cache_namespace};
        Response sub;
        if (std::optional<Response> sub_hit = cache_.lookup(sub_key)) {
          sub = *std::move(sub_hit);
        } else {
          sub = registry_.run_resolved(solver, support.graph, resolved, false, false,
                                       intra_threads);
          cache_.insert(sub_key, sub);
        }
        in_sub.assign(static_cast<std::size_t>(support.graph.num_vertices()), 0);
        for (graph::Vertex v : sub.solution) in_sub[static_cast<std::size_t>(v)] = 1;
      }
      for (graph::Vertex v = 0; v < cn; ++v) {
        // A clean vertex is < pn by construction (new vertices are all dirty).
        const bool member =
            dirty[static_cast<std::size_t>(v)]
                ? in_sub[static_cast<std::size_t>(
                      support.from_parent[static_cast<std::size_t>(v)])] != 0
                : in_parent[static_cast<std::size_t>(v)] != 0;
        if (member) result.solution.push_back(v);
      }
      result.valid = spec->problem == Problem::Mvc
                         ? solve::is_vertex_cover(g, result.solution)
                         : solve::is_dominating_set(g, result.solution);
      incr_dirty.fetch_add(dirty_list.size(), std::memory_order_relaxed);
      return result;
    };

    auto run_one = [&](std::size_t i) {
      const Graph& g = graph_at(i);
      CacheKey key;
      if (use_cache) {
        const std::uint64_t hash = i < graph_hashes.size() && graph_hashes[i] != 0
                                       ? graph_hashes[i]
                                       : graph::graph_hash(g);
        key = CacheKey{hash, std::string(solver), options_key, over.cache_namespace};
        if (std::optional<Response> hit = cache_.lookup(key)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          out[i] = *std::move(hit);
          return;
        }
      }
      if (const PatchLineage* lin =
              lineage_ok && i < lineages.size() ? lineages[i].get() : nullptr) {
        if (std::optional<Response> spliced =
                locality >= 0 ? incremental_solve(g, *lin) : std::nullopt) {
          incr_solves.fetch_add(1, std::memory_order_relaxed);
          out[i] = *std::move(spliced);
          misses.fetch_add(1, std::memory_order_relaxed);
          if (cache_.insert(key, out[i])) {
            evictions.fetch_add(1, std::memory_order_relaxed);
          }
          return;
        }
        incr_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
      out[i] = registry_.run_resolved(solver, g, resolved, req.measure_traffic,
                                      req.measure_ratio, intra_threads);
      // The miss is counted only now that the compute succeeded (a throwing
      // solve never reaches here), keeping hits + misses equal to completed
      // work; ResponseCache::insert counts its own lifetime miss the same way.
      if (use_cache) {
        misses.fetch_add(1, std::memory_order_relaxed);
        if (cache_.insert(key, out[i])) {
          evictions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    };

    auto worker = [&](int w) {
      for (int offset = 0; offset < workers; ++offset) {
        const auto q = static_cast<std::size_t>((w + offset) % workers);
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t pos = cursors[q].fetch_add(1, std::memory_order_relaxed);
          if (pos >= queues[q].size()) break;
          if (offset != 0) stolen.fetch_add(1, std::memory_order_relaxed);
          const auto shard = static_cast<std::size_t>(queues[q][pos]);
          const std::size_t begin = shard * shard_size;
          const std::size_t end = std::min(begin + shard_size, count);
          for (std::size_t i = begin; i != end; ++i) {
            try {
              run_one(i);
            } catch (...) {
              common::MutexLock lock(error_mu);
              if (!first_error || i < error_index) {
                first_error = std::current_exception();
                error_index = i;
              }
              failed.store(true, std::memory_order_relaxed);
              break;
            }
          }
        }
      }
    };

    // Fixed-size pool: workers 1..n-1 on their own threads, worker 0 on the
    // calling thread — a threads=1 batch never spawns, and a saturated
    // process still makes progress on the caller.
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (std::thread& t : pool) t.join();

    if (first_error) std::rethrow_exception(first_error);
    stolen_total = stolen.load();
    solves_served_.fetch_add(count, std::memory_order_relaxed);
  }

  if (diag) {
    diag->threads = workers;
    diag->intra_threads = intra_threads;
    diag->shards = shards;
    diag->stolen_shards = stolen_total;
    diag->cache_hits = hits.load();
    diag->cache_misses = misses.load();
    diag->cache_evictions = evictions.load();
    diag->incremental_solves = incr_solves.load();
    diag->incremental_fallbacks = incr_fallbacks.load();
    diag->incremental_dirty = incr_dirty.load();
  }
  return out;
}

}  // namespace lmds::api
