#include "api/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "api/registry.hpp"
#include "common/mutex.hpp"
#include "graph/hash.hpp"

namespace lmds::api {

BatchExecutor::BatchExecutor(BatchOptions opts) : BatchExecutor(opts, Registry::instance()) {}

BatchExecutor::BatchExecutor(BatchOptions opts, const Registry& registry)
    : opts_(opts), registry_(registry), cache_(opts.cache_capacity) {
  if (opts_.shard_size <= 0) {
    throw std::invalid_argument("BatchOptions::shard_size must be positive");
  }
}

std::vector<Response> BatchExecutor::run_batch(std::string_view solver,
                                               std::span<const Graph> graphs,
                                               const Request& req, BatchDiagnostics* diag) {
  return run_batch(solver, graphs, req, BatchOverrides{}, diag);
}

std::vector<Response> BatchExecutor::run_batch(std::string_view solver,
                                               std::span<const Graph> graphs,
                                               const Request& req, const BatchOverrides& over,
                                               BatchDiagnostics* diag) {
  return run_impl(
      solver, [graphs](std::size_t i) -> const Graph& { return graphs[i]; }, graphs.size(),
      req, over, diag);
}

std::vector<Response> BatchExecutor::run_batch(std::string_view solver,
                                               std::span<const Graph* const> graphs,
                                               const Request& req, const BatchOverrides& over,
                                               BatchDiagnostics* diag,
                                               std::span<const std::uint64_t> graph_hashes) {
  return run_impl(
      solver, [graphs](std::size_t i) -> const Graph& { return *graphs[i]; }, graphs.size(),
      req, over, diag, graph_hashes);
}

std::vector<Response> BatchExecutor::run_impl(
    std::string_view solver, const std::function<const Graph&(std::size_t)>& graph_at,
    std::size_t count, const Request& req, const BatchOverrides& over,
    BatchDiagnostics* diag, std::span<const std::uint64_t> graph_hashes) {
  // Validate once, up front: a malformed request throws here, on the calling
  // thread, before any worker spawns or cache entry is touched. Workers then
  // take the trusted run_resolved path — one name lookup per graph, no
  // per-graph re-validation or options rebuild. Override values are part of
  // the request, so they are validated with RequestError too.
  const Options resolved = registry_.resolve_options(solver, req);
  if (over.shard_size && *over.shard_size <= 0) {
    throw RequestError("shard_size override must be positive");
  }
  if (over.threads && *over.threads > 4096) {
    throw RequestError("threads override too large (max 4096)");
  }
  const std::size_t shard_size =
      static_cast<std::size_t>(over.shard_size.value_or(opts_.shard_size));
  const int shards = static_cast<int>((count + shard_size - 1) / shard_size);

  int workers = over.threads.value_or(opts_.threads);
  if (workers <= 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = std::max(1, std::min(workers, shards));

  const bool use_cache = cache_.enabled() && !over.bypass_cache;

  // Health counters: the batch exists once validation passed. The in-flight
  // gauge must drop on every exit path (including a rethrown solver error),
  // hence the RAII guard.
  batches_started_.fetch_add(1, std::memory_order_relaxed);
  batches_in_flight_.fetch_add(1, std::memory_order_relaxed);
  shards_executed_.fetch_add(static_cast<std::uint64_t>(shards), std::memory_order_relaxed);
  struct InFlightGuard {
    std::atomic<std::uint64_t>& gauge;
    ~InFlightGuard() { gauge.fetch_sub(1, std::memory_order_relaxed); }
  } in_flight_guard{batches_in_flight_};

  std::vector<Response> out(count);
  // Per-batch counters: concurrent run_batch calls share the cache, so the
  // per-batch numbers must be counted at the access sites, not diffed from
  // the cache's global stats.
  std::uint64_t stolen_total = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  if (count > 0) {
    const std::string options_key =
        use_cache ? canonical_options(resolved, req.measure_traffic, req.measure_ratio)
                  : std::string();

    // The shard queue: shards dealt round-robin onto one queue per worker,
    // each queue drained through an atomic cursor. Any worker may pop from
    // any queue, so "stealing" is just advancing a sibling's cursor — no
    // locks, and a shard is claimed exactly once.
    std::vector<std::vector<int>> queues(static_cast<std::size_t>(workers));
    for (int s = 0; s < shards; ++s) {
      queues[static_cast<std::size_t>(s % workers)].push_back(s);
    }
    std::vector<std::atomic<std::size_t>> cursors(static_cast<std::size_t>(workers));
    std::atomic<std::uint64_t> stolen{0};

    // First failure (lowest graph index among the shards that actually ran)
    // wins; the flag makes every worker abandon unclaimed shards.
    std::atomic<bool> failed{false};
    common::Mutex error_mu;  // guards first_error + error_index (locals, so
                             // GUARDED_BY cannot name them — see run_impl's
                             // catch block, the only locked path)
    std::exception_ptr first_error;
    std::size_t error_index = count;

    auto run_one = [&](std::size_t i) {
      const Graph& g = graph_at(i);
      CacheKey key;
      if (use_cache) {
        const std::uint64_t hash = i < graph_hashes.size() && graph_hashes[i] != 0
                                       ? graph_hashes[i]
                                       : graph::graph_hash(g);
        key = CacheKey{hash, std::string(solver), options_key, over.cache_namespace};
        if (std::optional<Response> hit = cache_.lookup(key)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          out[i] = *std::move(hit);
          return;
        }
      }
      out[i] = registry_.run_resolved(solver, g, resolved, req.measure_traffic,
                                      req.measure_ratio);
      // The miss is counted only now that the compute succeeded (a throwing
      // solve never reaches here), keeping hits + misses equal to completed
      // work; ResponseCache::insert counts its own lifetime miss the same way.
      if (use_cache) {
        misses.fetch_add(1, std::memory_order_relaxed);
        if (cache_.insert(key, out[i])) {
          evictions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    };

    auto worker = [&](int w) {
      for (int offset = 0; offset < workers; ++offset) {
        const auto q = static_cast<std::size_t>((w + offset) % workers);
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t pos = cursors[q].fetch_add(1, std::memory_order_relaxed);
          if (pos >= queues[q].size()) break;
          if (offset != 0) stolen.fetch_add(1, std::memory_order_relaxed);
          const auto shard = static_cast<std::size_t>(queues[q][pos]);
          const std::size_t begin = shard * shard_size;
          const std::size_t end = std::min(begin + shard_size, count);
          for (std::size_t i = begin; i != end; ++i) {
            try {
              run_one(i);
            } catch (...) {
              common::MutexLock lock(error_mu);
              if (!first_error || i < error_index) {
                first_error = std::current_exception();
                error_index = i;
              }
              failed.store(true, std::memory_order_relaxed);
              break;
            }
          }
        }
      }
    };

    // Fixed-size pool: workers 1..n-1 on their own threads, worker 0 on the
    // calling thread — a threads=1 batch never spawns, and a saturated
    // process still makes progress on the caller.
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (std::thread& t : pool) t.join();

    if (first_error) std::rethrow_exception(first_error);
    stolen_total = stolen.load();
    solves_served_.fetch_add(count, std::memory_order_relaxed);
  }

  if (diag) {
    diag->threads = workers;
    diag->shards = shards;
    diag->stolen_shards = stolen_total;
    diag->cache_hits = hits.load();
    diag->cache_misses = misses.load();
    diag->cache_evictions = evictions.load();
  }
  return out;
}

}  // namespace lmds::api
