#include "api/registry.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "solve/validate.hpp"

namespace lmds::api {

std::string_view to_string(Problem p) { return p == Problem::Mds ? "mds" : "mvc"; }

std::string_view to_string(Mode m) {
  return m == Mode::Centralized ? "centralized" : "local";
}

std::string_view to_string(ParamValue::Type t) {
  switch (t) {
    case ParamValue::Type::Int: return "int";
    case ParamValue::Type::Bool: return "bool";
    case ParamValue::Type::Double: return "double";
  }
  return "?";
}

int ParamValue::as_int() const {
  if (type() != Type::Int) {
    throw std::invalid_argument("ParamValue " + to_string() + " is not an int");
  }
  return std::get<int>(v_);
}

bool ParamValue::as_bool() const {
  if (type() == Type::Bool) return std::get<bool>(v_);
  if (type() == Type::Int) return std::get<int>(v_) != 0;
  throw std::invalid_argument("ParamValue " + to_string() + " is not a bool");
}

double ParamValue::as_double() const {
  if (type() == Type::Double) return std::get<double>(v_);
  if (type() == Type::Int) return std::get<int>(v_);
  throw std::invalid_argument("ParamValue " + to_string() + " is not a double");
}

std::string ParamValue::to_string() const {
  switch (type()) {
    case Type::Int: return std::to_string(std::get<int>(v_));
    case Type::Bool: return std::get<bool>(v_) ? "true" : "false";
    case Type::Double: {
      // %.17g round-trips every double, so distinct values never alias in
      // the canonical cache key.
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", std::get<double>(v_));
      return buf;
    }
  }
  return {};
}

std::optional<ParamValue> parse_param_value(std::string_view text,
                                            ParamValue::Type declared) {
  if (text.empty()) return std::nullopt;
  const char* first = text.data();
  const char* last = first + text.size();
  if (declared == ParamValue::Type::Double) {
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || !std::isfinite(value)) return std::nullopt;
    return ParamValue(value);
  }
  if (declared == ParamValue::Type::Bool) {
    if (text == "true") return ParamValue(true);
    if (text == "false") return ParamValue(false);
    // Integer spellings ("0", "1") fall through; the registry coerces.
  }
  int value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  // ec is errc::result_out_of_range when the digits overflow int — rejected,
  // never wrapped.
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return ParamValue(value);
}

bool SolverSpec::supports(Mode m) const {
  return std::find(modes.begin(), modes.end(), m) != modes.end();
}

ParamValue SolverSpec::param_default(std::string_view param) const {
  for (const ParamSpec& p : params) {
    if (p.name == param) return p.default_value;
  }
  throw std::invalid_argument("solver '" + name + "' has no parameter '" +
                              std::string(param) + "'");
}

// The built-in registration hook lives in builtin_solvers.cpp; keeping it a
// plain function (not static-initializer magic) makes registration immune to
// static-library dead-stripping and init-order issues.
void register_builtin_solvers(Registry& reg);

Registry& Registry::instance() {
  static Registry* reg = [] {
    auto* r = new Registry();
    register_builtin_solvers(*r);
    return r;
  }();
  return *reg;
}

void Registry::add(SolverSpec spec, SolveFn fn) {
  if (spec.name.empty()) throw std::invalid_argument("solver name must be non-empty");
  if (!fn) throw std::invalid_argument("solver '" + spec.name + "' has no solve function");
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), spec.name,
      [](const Entry& e, const std::string& name) { return e.spec.name < name; });
  if (pos != entries_.end() && pos->spec.name == spec.name) {
    throw std::invalid_argument("solver '" + spec.name + "' is already registered");
  }
  entries_.insert(pos, Entry{std::move(spec), std::move(fn)});
}

const Registry::Entry* Registry::find_entry(std::string_view name) const {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, std::string_view n) { return e.spec.name < n; });
  if (pos == entries_.end() || pos->spec.name != name) return nullptr;
  return &*pos;
}

const SolverSpec* Registry::find(std::string_view name) const {
  const Entry* e = find_entry(name);
  return e ? &e->spec : nullptr;
}

const SolverSpec& Registry::at(std::string_view name) const {
  const SolverSpec* spec = find(name);
  if (!spec) throw RequestError("unknown solver '" + std::string(name) + "'");
  return *spec;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.spec.name);
  return out;
}

std::vector<const SolverSpec*> Registry::specs() const {
  std::vector<const SolverSpec*> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(&e.spec);
  return out;
}

namespace {

// Coerces a request-supplied value to the declared type of `p`: exact type
// matches pass through, Int widens to Bool (0 = false) and Double. Anything
// else — a double for an int knob, say — is a RequestError, not a silent
// truncation.
ParamValue coerce(const SolverSpec& spec, const ParamSpec& p, const ParamValue& value) {
  if (value.type() == p.type()) return value;
  if (value.type() == ParamValue::Type::Int) {
    if (p.type() == ParamValue::Type::Bool) return value.as_int() != 0;
    if (p.type() == ParamValue::Type::Double) return value.as_double();
  }
  throw RequestError("solver '" + spec.name + "' parameter '" + p.name + "' is " +
                     std::string(to_string(p.type())) + ", got " +
                     std::string(to_string(value.type())) + " (" + value.to_string() + ")");
}

Options resolve_against(const SolverSpec& spec, const Request& req) {
  if (req.measure_traffic && !spec.supports(Mode::Local)) {
    throw RequestError("solver '" + spec.name +
                       "' has no Local mode; cannot measure traffic");
  }
  for (const auto& [key, value] : req.options) {
    (void)value;
    const bool declared = std::any_of(spec.params.begin(), spec.params.end(),
                                      [&](const ParamSpec& p) { return p.name == key; });
    if (!declared) {
      throw RequestError("solver '" + spec.name + "' has no parameter '" + key + "'");
    }
  }
  Options params;
  for (const ParamSpec& p : spec.params) {
    const auto it = req.options.find(p.name);
    params[p.name] = it != req.options.end() ? coerce(spec, p, it->second) : p.default_value;
  }
  return params;
}

}  // namespace

Options Registry::resolve_options(std::string_view name, const Request& req) const {
  const Entry* entry = find_entry(name);
  if (!entry) throw RequestError("unknown solver '" + std::string(name) + "'");
  return resolve_against(entry->spec, req);
}

Response Registry::run(std::string_view name, const Request& req) const {
  const Entry* entry = find_entry(name);
  if (!entry) throw RequestError("unknown solver '" + std::string(name) + "'");
  if (!req.graph) {
    throw RequestError("solver '" + entry->spec.name + "': request has no graph");
  }
  return run_entry(*entry, *req.graph, resolve_against(entry->spec, req),
                   req.measure_traffic, req.measure_ratio, 1);
}

Response Registry::run_resolved(std::string_view name, const Graph& g,
                                const Options& resolved, bool measure_traffic,
                                bool measure_ratio, int intra_threads) const {
  const Entry* entry = find_entry(name);
  if (!entry) throw RequestError("unknown solver '" + std::string(name) + "'");
  return run_entry(*entry, g, resolved, measure_traffic, measure_ratio, intra_threads);
}

Response Registry::run_entry(const Entry& entry, const Graph& g, const Options& params,
                             bool measure_traffic, bool measure_ratio,
                             int intra_threads) const {
  const SolverSpec& spec = entry.spec;
  const SolveContext ctx{g, params, measure_traffic, intra_threads};
  SolverOutput out = entry.solve(ctx);

  Response res;
  res.solver = spec.name;
  res.problem = spec.problem;
  res.solution = std::move(out.solution);
  std::sort(res.solution.begin(), res.solution.end());
  res.diag = std::move(out.diag);
  res.valid = spec.problem == Problem::Mds ? solve::is_dominating_set(g, res.solution)
                                           : solve::is_vertex_cover(g, res.solution);
  if (measure_ratio) {
    res.ratio = spec.problem == Problem::Mds ? core::measure_mds_ratio(g, res.solution)
                                             : core::measure_mvc_ratio(g, res.solution);
    res.ratio_measured = true;
  }
  return res;
}

std::vector<Response> Registry::run_batch(std::string_view name,
                                          std::span<const Graph> graphs,
                                          const Request& req) const {
  std::vector<Response> out;
  out.reserve(graphs.size());
  Request one = req;  // one copy of the options map, not one per graph
  for (const Graph& g : graphs) {
    one.graph = &g;
    out.push_back(run(name, one));
  }
  return out;
}

std::vector<Response> Registry::run_batch(std::string_view name,
                                          std::span<const Graph> graphs, const Request& req,
                                          const BatchOptions& opts,
                                          BatchDiagnostics* diag) const {
  BatchExecutor executor(opts, *this);
  return executor.run_batch(name, graphs, req, diag);
}

}  // namespace lmds::api
