#include "api/graph_store.hpp"

#include <algorithm>

#include "graph/hash.hpp"

namespace lmds::api {

GraphStore::GraphStore(const StoreOptions& opts) : opts_(opts) {}

std::string GraphStore::handle_for(std::uint64_t hash) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "g";
  for (int shift = 60; shift >= 0; shift -= 4) out += kHex[(hash >> shift) & 0xF];
  return out;
}

std::optional<std::uint64_t> GraphStore::parse_handle(std::string_view handle) {
  if (handle.size() != 17 || handle.front() != 'g') return std::nullopt;
  std::uint64_t hash = 0;
  for (const char c : handle.substr(1)) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;  // uppercase deliberately rejected: one spelling
    }
    hash = (hash << 4) | static_cast<std::uint64_t>(digit);
  }
  return hash;
}

void GraphStore::evict_unpinned_locked() {
  // Least-recently-used first, but skip entries that are still the parent of
  // a stored derived handle: evicting one would sever the child's lineage
  // chain while the child stays resolvable (regression-tested in
  // tests/test_patch.cpp).
  for (auto lru = unpinned_.rbegin(); lru != unpinned_.rend(); ++lru) {
    const auto it = entries_.find(*lru);
    if (it->second.child_refs > 0) continue;
    unpinned_.erase(std::next(lru).base());
    erase_entry_locked(it);
    ++evictions_;
    return;
  }
  throw GraphStoreFull("graph store full: " + std::to_string(entries_.size()) +
                       " graphs stored, all pinned or parents of derived handles "
                       "(drop_graph frees capacity)");
}

void GraphStore::erase_entry_locked(std::unordered_map<std::uint64_t, Entry>::iterator it) {
  if (const auto& lin = it->second.lineage) {
    // The erased entry releases its own claim on its parent. A guard
    // against 0 keeps a re-put parent (evicted and later re-inserted,
    // never re-claimed) from going negative.
    const auto parent_it = entries_.find(lin->parent_hash);
    if (parent_it != entries_.end() && parent_it->second.child_refs > 0) {
      --parent_it->second.child_refs;
    }
  }
  uncharge_namespace_locked(it->second.ns, it->second.bytes);
  entries_.erase(it);
}

void GraphStore::charge_namespace_locked(const std::string& ns, std::uint64_t bytes) {
  const auto current = [&] {
    const auto it = ns_bytes_.find(ns);
    return it == ns_bytes_.end() ? std::uint64_t{0} : it->second;
  };
  if (opts_.max_namespace_bytes != 0) {
    // Over quota: reclaim this namespace's OWN unpinned entries (LRU first)
    // before rejecting, so "drop_graph then retry" always works. Another
    // namespace's data is never touched, and pinned entries never silently
    // vanish — if reclaiming cannot make room, the put is refused.
    while (current() + bytes > opts_.max_namespace_bytes) {
      auto lru = unpinned_.rbegin();
      for (; lru != unpinned_.rend(); ++lru) {
        const auto it = entries_.find(*lru);
        if (it->second.ns == ns && it->second.child_refs == 0) break;
      }
      if (lru == unpinned_.rend()) break;  // nothing of ours left to free
      const auto it = entries_.find(*lru);
      unpinned_.erase(std::next(lru).base());
      erase_entry_locked(it);
      ++evictions_;
    }
    if (current() + bytes > opts_.max_namespace_bytes) {
      ++quota_rejections_;
      throw GraphStoreFull("namespace \"" + ns + "\" graph-store quota exceeded: " +
                           std::to_string(current()) + " + " + std::to_string(bytes) +
                           " bytes > limit " + std::to_string(opts_.max_namespace_bytes) +
                           " (drop_graph frees quota)");
    }
  }
  ns_bytes_[ns] += bytes;
}

void GraphStore::uncharge_namespace_locked(const std::string& ns, std::uint64_t bytes) {
  const auto it = ns_bytes_.find(ns);
  if (it == ns_bytes_.end()) return;
  it->second = it->second > bytes ? it->second - bytes : 0;
  // Erase at zero so the map stays bounded by live entries, not by every
  // client-supplied tag ever seen.
  if (it->second == 0) ns_bytes_.erase(it);
}

void GraphStore::pin_locked(Entry& entry, SessionId session) {
  if (entry.refs == 0) {
    unpinned_.erase(entry.lru_it);
  }
  ++entry.refs;
  Lease& lease = entry.leases[session];
  ++lease.count;
  if (session != kSharedSession && opts_.lease_ttl.count() > 0) {
    lease.deadline = std::chrono::steady_clock::now() + opts_.lease_ttl;
  }
}

std::size_t GraphStore::expire_leases_locked() {
  if (opts_.lease_ttl.count() <= 0) return 0;
  const auto now = std::chrono::steady_clock::now();
  std::size_t released = 0;
  for (auto& [hash, entry] : entries_) {
    // refs == 0 implies no leases (they are erased as they empty), so an
    // already-unpinned entry cannot be double-inserted into unpinned_.
    if (entry.refs == 0) continue;
    for (auto lease_it = entry.leases.begin(); lease_it != entry.leases.end();) {
      if (lease_it->first == kSharedSession || lease_it->second.deadline >= now) {
        ++lease_it;
        continue;
      }
      released += static_cast<std::size_t>(lease_it->second.count);
      entry.refs -= lease_it->second.count;
      lease_it = entry.leases.erase(lease_it);
    }
    if (entry.refs == 0) {
      unpinned_.push_front(hash);
      entry.lru_it = unpinned_.begin();
    }
  }
  lease_expiries_ += released;
  return released;
}

GraphStore::PutResult GraphStore::put(graph::Graph g, SessionId session, std::string_view ns) {
  const std::uint64_t hash = graph::graph_hash(g);
  PutResult out;
  out.handle = handle_for(hash);
  out.hash = hash;
  out.vertices = g.num_vertices();
  out.edges = g.num_edges();

  common::MutexLock lock(mu_);
  expire_leases_locked();
  if (const auto it = entries_.find(hash); it != entries_.end()) {
    // Content-addressed reuse: re-pin, discarding the caller's copy.
    pin_locked(it->second, session);
    ++reuses_;
    return out;
  }
  if (entries_.size() >= opts_.capacity) evict_unpinned_locked();
  // Quota after eviction: freeing an unrelated namespace's LRU entry first
  // is harmless, and this order never leaves charged bytes without an entry.
  const std::uint64_t bytes = approx_bytes(out.vertices, out.edges);
  charge_namespace_locked(std::string(ns), bytes);
  Entry entry;
  entry.graph = std::make_shared<const graph::Graph>(std::move(g));
  entry.refs = 1;
  entry.leases[session] = Lease{
      .count = 1,
      .deadline = session != kSharedSession && opts_.lease_ttl.count() > 0
                      ? std::chrono::steady_clock::now() + opts_.lease_ttl
                      : std::chrono::steady_clock::time_point{}};
  entry.ns = std::string(ns);
  entry.bytes = bytes;
  entries_.emplace(hash, std::move(entry));
  ++puts_;
  out.inserted = true;
  return out;
}

GraphStore::PutResult GraphStore::put_replica(graph::Graph g, std::string_view ns) {
  const std::uint64_t hash = graph::graph_hash(g);
  PutResult out;
  out.handle = handle_for(hash);
  out.hash = hash;
  out.vertices = g.num_vertices();
  out.edges = g.num_edges();

  common::MutexLock lock(mu_);
  if (const auto it = entries_.find(hash); it != entries_.end()) {
    // Already present (the common replication case — handles are globally
    // stable). Promote, don't pin: nobody owns a replica.
    if (it->second.refs == 0) {
      unpinned_.splice(unpinned_.begin(), unpinned_, it->second.lru_it);
    }
    ++reuses_;
    return out;
  }
  if (entries_.size() >= opts_.capacity) evict_unpinned_locked();
  const std::uint64_t bytes = approx_bytes(out.vertices, out.edges);
  charge_namespace_locked(std::string(ns), bytes);
  Entry entry;
  entry.graph = std::make_shared<const graph::Graph>(std::move(g));
  entry.refs = 0;
  entry.ns = std::string(ns);
  entry.bytes = bytes;
  const auto [it, ok] = entries_.emplace(hash, std::move(entry));
  (void)ok;
  unpinned_.push_front(hash);
  it->second.lru_it = unpinned_.begin();
  ++puts_;
  out.inserted = true;
  return out;
}

GraphStore::PatchResult GraphStore::patch(std::string_view handle, const graph::GraphPatch& p,
                                          SessionId session, std::string_view ns) {
  const std::optional<std::uint64_t> parent_hash = parse_handle(handle);
  std::shared_ptr<const graph::Graph> parent;
  if (parent_hash) {
    common::MutexLock lock(mu_);
    if (const auto it = entries_.find(*parent_hash); it != entries_.end()) {
      if (it->second.refs == 0) {
        unpinned_.splice(unpinned_.begin(), unpinned_, it->second.lru_it);
      } else if (const auto lease_it = it->second.leases.find(session);
                 lease_it != it->second.leases.end() && session != kSharedSession &&
                 opts_.lease_ttl.count() > 0) {
        // Patching through a handle is a touch: renew the owner's lease.
        lease_it->second.deadline = std::chrono::steady_clock::now() + opts_.lease_ttl;
      }
      parent = it->second.graph;
    }
  }
  if (!parent) {
    throw UnknownGraphHandle("unknown graph handle \"" + std::string(handle) + "\"");
  }

  // Apply + hash outside the lock — both are O(n + m). The parent graph is
  // pinned by our shared_ptr even if it is concurrently dropped and evicted.
  graph::PatchedGraph patched = graph::apply_patch(*parent, p);
  const std::uint64_t child_hash = graph::graph_hash(patched.graph);

  PatchResult out;
  out.put.handle = handle_for(child_hash);
  out.put.hash = child_hash;
  out.put.vertices = patched.graph.num_vertices();
  out.put.edges = patched.graph.num_edges();
  out.parent = std::string(handle);

  common::MutexLock lock(mu_);
  expire_leases_locked();
  if (const auto it = entries_.find(child_hash); it != entries_.end()) {
    // Content-addressed reuse (includes the no-op patch, whose child is the
    // parent itself): re-pin the existing entry, keep its original lineage.
    pin_locked(it->second, session);
    ++reuses_;
    return out;
  }
  if (entries_.size() >= opts_.capacity) evict_unpinned_locked();
  const std::uint64_t bytes = approx_bytes(out.put.vertices, out.put.edges);
  charge_namespace_locked(std::string(ns), bytes);
  auto lineage = std::make_shared<PatchLineage>();
  lineage->parent = std::move(parent);
  lineage->parent_hash = *parent_hash;
  lineage->added = std::move(patched.added);
  lineage->removed = std::move(patched.removed);
  Entry entry;
  entry.graph = std::make_shared<const graph::Graph>(std::move(patched.graph));
  entry.refs = 1;
  entry.leases[session] = Lease{
      .count = 1,
      .deadline = session != kSharedSession && opts_.lease_ttl.count() > 0
                      ? std::chrono::steady_clock::now() + opts_.lease_ttl
                      : std::chrono::steady_clock::time_point{}};
  entry.lineage = std::move(lineage);
  entry.ns = std::string(ns);
  entry.bytes = bytes;
  entries_.emplace(child_hash, std::move(entry));
  // Eviction protection for the parent — if its entry still exists. (It may
  // have been dropped and evicted while we hashed; the lineage's shared_ptr
  // alone then keeps the parent graph alive.)
  if (const auto parent_it = entries_.find(*parent_hash); parent_it != entries_.end()) {
    ++parent_it->second.child_refs;
  }
  ++patches_;
  out.put.inserted = true;
  return out;
}

std::shared_ptr<const PatchLineage> GraphStore::lineage(std::string_view handle) const {
  const std::optional<std::uint64_t> hash = parse_handle(handle);
  if (!hash) return nullptr;
  common::MutexLock lock(mu_);
  const auto it = entries_.find(*hash);
  return it == entries_.end() ? nullptr : it->second.lineage;
}

std::shared_ptr<const graph::Graph> GraphStore::get(std::string_view handle,
                                                    SessionId session) {
  const std::optional<std::uint64_t> hash = parse_handle(handle);
  if (!hash) return nullptr;
  common::MutexLock lock(mu_);
  const auto it = entries_.find(*hash);
  if (it == entries_.end()) return nullptr;
  if (it->second.refs == 0) {
    // Keep a live-but-unpinned graph from being the next eviction victim.
    unpinned_.splice(unpinned_.begin(), unpinned_, it->second.lru_it);
  } else if (session != kSharedSession && opts_.lease_ttl.count() > 0) {
    // Solving by handle is a touch: renew the owner's lease so an active
    // client's pins never expire under it.
    if (const auto lease_it = it->second.leases.find(session);
        lease_it != it->second.leases.end()) {
      lease_it->second.deadline = std::chrono::steady_clock::now() + opts_.lease_ttl;
    }
  }
  return it->second.graph;
}

bool GraphStore::drop(std::string_view handle, SessionId session) {
  const std::optional<std::uint64_t> hash = parse_handle(handle);
  if (!hash) return false;
  common::MutexLock lock(mu_);
  const auto it = entries_.find(*hash);
  if (it == entries_.end()) return false;
  // Ownership-safe: only a session holding a lease may release a pin, and
  // only its own. (refs == 0 means nobody holds anything — the entry merely
  // lingers as an evictable cache line.)
  const auto lease_it = it->second.leases.find(session);
  if (it->second.refs == 0 || lease_it == it->second.leases.end()) return false;
  ++drops_;
  if (--lease_it->second.count == 0) it->second.leases.erase(lease_it);
  if (--it->second.refs == 0) {
    // Last reference released: the entry lingers as an evictable LRU line
    // (a re-put of the same graph is free until capacity reclaims it).
    unpinned_.push_front(*hash);
    it->second.lru_it = unpinned_.begin();
  }
  return true;
}

std::size_t GraphStore::release_session(SessionId session) {
  if (session == kSharedSession) return 0;
  common::MutexLock lock(mu_);
  std::size_t released = 0;
  for (auto& [hash, entry] : entries_) {
    const auto lease_it = entry.leases.find(session);
    if (lease_it == entry.leases.end()) continue;
    released += static_cast<std::size_t>(lease_it->second.count);
    entry.refs -= lease_it->second.count;
    entry.leases.erase(lease_it);
    if (entry.refs == 0) {
      unpinned_.push_front(hash);
      entry.lru_it = unpinned_.begin();
    }
  }
  return released;
}

std::size_t GraphStore::expire_leases() {
  common::MutexLock lock(mu_);
  return expire_leases_locked();
}

std::vector<std::pair<std::string, std::shared_ptr<const graph::Graph>>>
GraphStore::snapshot_graphs() const {
  common::MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const graph::Graph>>> out;
  out.reserve(entries_.size());
  for (const auto& [hash, entry] : entries_) {
    out.emplace_back(handle_for(hash), entry.graph);
  }
  return out;
}

GraphStoreStats GraphStore::stats() const {
  common::MutexLock lock(mu_);
  GraphStoreStats s;
  s.puts = puts_;
  s.patches = patches_;
  s.reuses = reuses_;
  s.drops = drops_;
  s.evictions = evictions_;
  s.lease_expiries = lease_expiries_;
  s.quota_rejections = quota_rejections_;
  s.size = entries_.size();
  s.pinned = entries_.size() - unpinned_.size();
  s.capacity = opts_.capacity;
  s.namespace_bytes = ns_bytes_;
  for (const auto& [hash, entry] : entries_) {
    for (const auto& [session, lease] : entry.leases) {
      s.session_pins[session] += static_cast<std::uint64_t>(lease.count);
    }
  }
  return s;
}

}  // namespace lmds::api
