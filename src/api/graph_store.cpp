#include "api/graph_store.hpp"

#include <algorithm>

#include "graph/hash.hpp"

namespace lmds::api {

GraphStore::GraphStore(std::size_t capacity) : capacity_(capacity) {}

std::string GraphStore::handle_for(std::uint64_t hash) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "g";
  for (int shift = 60; shift >= 0; shift -= 4) out += kHex[(hash >> shift) & 0xF];
  return out;
}

std::optional<std::uint64_t> GraphStore::parse_handle(std::string_view handle) {
  if (handle.size() != 17 || handle.front() != 'g') return std::nullopt;
  std::uint64_t hash = 0;
  for (const char c : handle.substr(1)) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;  // uppercase deliberately rejected: one spelling
    }
    hash = (hash << 4) | static_cast<std::uint64_t>(digit);
  }
  return hash;
}

void GraphStore::evict_unpinned_locked() {
  // Least-recently-used first, but skip entries that are still the parent of
  // a stored derived handle: evicting one would sever the child's lineage
  // chain while the child stays resolvable (regression-tested in
  // tests/test_patch.cpp).
  for (auto lru = unpinned_.rbegin(); lru != unpinned_.rend(); ++lru) {
    const auto it = entries_.find(*lru);
    if (it->second.child_refs > 0) continue;
    if (const auto& lin = it->second.lineage) {
      // The evicted entry releases its own claim on its parent. A guard
      // against 0 keeps a re-put parent (evicted and later re-inserted,
      // never re-claimed) from going negative.
      const auto parent_it = entries_.find(lin->parent_hash);
      if (parent_it != entries_.end() && parent_it->second.child_refs > 0) {
        --parent_it->second.child_refs;
      }
    }
    entries_.erase(it);
    unpinned_.erase(std::next(lru).base());
    ++evictions_;
    return;
  }
  throw GraphStoreFull("graph store full: " + std::to_string(entries_.size()) +
                       " graphs stored, all pinned or parents of derived handles "
                       "(drop_graph frees capacity)");
}

GraphStore::PutResult GraphStore::put(graph::Graph g) {
  const std::uint64_t hash = graph::graph_hash(g);
  PutResult out;
  out.handle = handle_for(hash);
  out.hash = hash;
  out.vertices = g.num_vertices();
  out.edges = g.num_edges();

  common::MutexLock lock(mu_);
  if (const auto it = entries_.find(hash); it != entries_.end()) {
    // Content-addressed reuse: re-pin, discarding the caller's copy.
    if (it->second.refs == 0) unpinned_.erase(it->second.lru_it);
    ++it->second.refs;
    ++reuses_;
    return out;
  }
  if (entries_.size() >= capacity_) evict_unpinned_locked();
  Entry entry;
  entry.graph = std::make_shared<const graph::Graph>(std::move(g));
  entry.refs = 1;
  entries_.emplace(hash, std::move(entry));
  ++puts_;
  out.inserted = true;
  return out;
}

GraphStore::PatchResult GraphStore::patch(std::string_view handle, const graph::GraphPatch& p) {
  const std::optional<std::uint64_t> parent_hash = parse_handle(handle);
  std::shared_ptr<const graph::Graph> parent;
  if (parent_hash) {
    common::MutexLock lock(mu_);
    if (const auto it = entries_.find(*parent_hash); it != entries_.end()) {
      if (it->second.refs == 0) {
        unpinned_.splice(unpinned_.begin(), unpinned_, it->second.lru_it);
      }
      parent = it->second.graph;
    }
  }
  if (!parent) {
    throw UnknownGraphHandle("unknown graph handle \"" + std::string(handle) + "\"");
  }

  // Apply + hash outside the lock — both are O(n + m). The parent graph is
  // pinned by our shared_ptr even if it is concurrently dropped and evicted.
  graph::PatchedGraph patched = graph::apply_patch(*parent, p);
  const std::uint64_t child_hash = graph::graph_hash(patched.graph);

  PatchResult out;
  out.put.handle = handle_for(child_hash);
  out.put.hash = child_hash;
  out.put.vertices = patched.graph.num_vertices();
  out.put.edges = patched.graph.num_edges();
  out.parent = std::string(handle);

  common::MutexLock lock(mu_);
  if (const auto it = entries_.find(child_hash); it != entries_.end()) {
    // Content-addressed reuse (includes the no-op patch, whose child is the
    // parent itself): re-pin the existing entry, keep its original lineage.
    if (it->second.refs == 0) unpinned_.erase(it->second.lru_it);
    ++it->second.refs;
    ++reuses_;
    return out;
  }
  if (entries_.size() >= capacity_) evict_unpinned_locked();
  auto lineage = std::make_shared<PatchLineage>();
  lineage->parent = std::move(parent);
  lineage->parent_hash = *parent_hash;
  lineage->added = std::move(patched.added);
  lineage->removed = std::move(patched.removed);
  Entry entry;
  entry.graph = std::make_shared<const graph::Graph>(std::move(patched.graph));
  entry.refs = 1;
  entry.lineage = std::move(lineage);
  entries_.emplace(child_hash, std::move(entry));
  // Eviction protection for the parent — if its entry still exists. (It may
  // have been dropped and evicted while we hashed; the lineage's shared_ptr
  // alone then keeps the parent graph alive.)
  if (const auto parent_it = entries_.find(*parent_hash); parent_it != entries_.end()) {
    ++parent_it->second.child_refs;
  }
  ++patches_;
  out.put.inserted = true;
  return out;
}

std::shared_ptr<const PatchLineage> GraphStore::lineage(std::string_view handle) const {
  const std::optional<std::uint64_t> hash = parse_handle(handle);
  if (!hash) return nullptr;
  common::MutexLock lock(mu_);
  const auto it = entries_.find(*hash);
  return it == entries_.end() ? nullptr : it->second.lineage;
}

std::shared_ptr<const graph::Graph> GraphStore::get(std::string_view handle) {
  const std::optional<std::uint64_t> hash = parse_handle(handle);
  if (!hash) return nullptr;
  common::MutexLock lock(mu_);
  const auto it = entries_.find(*hash);
  if (it == entries_.end()) return nullptr;
  if (it->second.refs == 0) {
    // Keep a live-but-unpinned graph from being the next eviction victim.
    unpinned_.splice(unpinned_.begin(), unpinned_, it->second.lru_it);
  }
  return it->second.graph;
}

bool GraphStore::drop(std::string_view handle) {
  const std::optional<std::uint64_t> hash = parse_handle(handle);
  if (!hash) return false;
  common::MutexLock lock(mu_);
  const auto it = entries_.find(*hash);
  if (it == entries_.end()) return false;
  // Every put was already dropped: there is no reference left to release
  // (the entry merely lingers as an evictable cache line).
  if (it->second.refs == 0) return false;
  ++drops_;
  if (--it->second.refs == 0) {
    // Last reference released: the entry lingers as an evictable LRU line
    // (a re-put of the same graph is free until capacity reclaims it).
    unpinned_.push_front(*hash);
    it->second.lru_it = unpinned_.begin();
  }
  return true;
}

GraphStoreStats GraphStore::stats() const {
  common::MutexLock lock(mu_);
  GraphStoreStats s;
  s.puts = puts_;
  s.patches = patches_;
  s.reuses = reuses_;
  s.drops = drops_;
  s.evictions = evictions_;
  s.size = entries_.size();
  s.pinned = entries_.size() - unpinned_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace lmds::api
