#pragma once
// The process-wide solver registry: name -> (SolverSpec, adapter). All of
// the library's algorithms self-register on first access of
// Registry::instance(), so enumerating `specs()` is guaranteed to see every
// solver the CLI, benches and tests can reach — the lists can never drift.
//
//   const auto& reg = api::Registry::instance();
//   api::Request req;
//   req.graph = &g;
//   req.options["t"] = 5;
//   api::Response res = reg.run("algorithm1", req);
//
// run_batch() executes one request shape across many graphs — the serving /
// batching seam of the ROADMAP (a later PR shards this across threads or
// backends without touching any call site).

#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"

namespace lmds::api {

/// Everything an adapter sees: the graph, fully-resolved parameters (every
/// declared ParamSpec present — defaults merged in), and whether to take the
/// LOCAL simulator path.
struct SolveContext {
  const Graph& graph;
  const Options& params;
  bool local = false;
};

/// What an adapter produces; the registry fills in the rest of Response
/// (solver name, problem, validity, optional ratio).
struct SolverOutput {
  std::vector<Vertex> solution;
  Diagnostics diag;
};

/// Adapter from the uniform surface to one concrete algorithm.
using SolveFn = std::function<SolverOutput(const SolveContext&)>;

class Registry {
 public:
  /// The process-wide registry with every built-in solver registered.
  static Registry& instance();

  /// Registers a solver. Throws std::invalid_argument on an empty or
  /// duplicate name.
  void add(SolverSpec spec, SolveFn fn);

  /// Spec lookup; nullptr when `name` is not registered.
  const SolverSpec* find(std::string_view name) const;

  /// Spec lookup; throws std::invalid_argument when `name` is unknown.
  const SolverSpec& at(std::string_view name) const;

  /// Registered solver names, sorted.
  std::vector<std::string> names() const;

  /// All specs, sorted by name.
  std::vector<const SolverSpec*> specs() const;

  /// Runs one request. Throws std::invalid_argument for an unknown solver,
  /// a null graph, an option the spec does not declare, or measure_traffic
  /// on a solver without a Local mode. Solution is sorted; validity is
  /// always checked; ratio measured iff requested.
  Response run(std::string_view name, const Request& req) const;

  /// Runs the same request shape across many graphs (req.graph is ignored);
  /// response i answers graphs[i]. The batching seam for the serving layer.
  std::vector<Response> run_batch(std::string_view name, std::span<const Graph> graphs,
                                  const Request& req) const;

 private:
  struct Entry {
    SolverSpec spec;
    SolveFn solve;
  };
  std::vector<Entry> entries_;  // sorted by spec.name

  const Entry* find_entry(std::string_view name) const;
};

}  // namespace lmds::api
