#pragma once
// The process-wide solver registry: name -> (SolverSpec, adapter). All of
// the library's algorithms self-register on first access of
// Registry::instance(), so enumerating `specs()` is guaranteed to see every
// solver the CLI, benches and tests can reach — the lists can never drift.
//
//   const auto& reg = api::Registry::instance();
//   api::Request req;
//   req.graph = &g;
//   req.options["t"] = 5;
//   api::Response res = reg.run("algorithm1", req);
//
// run_batch() executes one request shape across many graphs — the serving /
// batching seam of the ROADMAP. The BatchOptions overload shards the batch
// across a worker pool with response caching (see executor.hpp); hold a
// BatchExecutor instead when cache hits should survive across batches.

#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"
#include "api/executor.hpp"

namespace lmds::api {

/// Everything an adapter sees: the graph, fully-resolved parameters (every
/// declared ParamSpec present — defaults merged in), and whether to take the
/// LOCAL simulator path.
struct SolveContext {
  const Graph& graph;
  const Options& params;
  bool local = false;
  /// Worker count for sharding THIS solve's per-vertex work (view gathers,
  /// per-ball decisions). 1 = sequential; <= 0 picks hardware_concurrency.
  /// Outputs are bit-identical for every value (slot-per-vertex merge), so
  /// this never enters any cache key.
  int intra_threads = 1;
};

/// What an adapter produces; the registry fills in the rest of Response
/// (solver name, problem, validity, optional ratio).
struct SolverOutput {
  std::vector<Vertex> solution;
  Diagnostics diag;
};

/// Adapter from the uniform surface to one concrete algorithm.
using SolveFn = std::function<SolverOutput(const SolveContext&)>;

class Registry {
 public:
  /// The process-wide registry with every built-in solver registered.
  static Registry& instance();

  /// Registers a solver. Throws std::invalid_argument on an empty or
  /// duplicate name.
  void add(SolverSpec spec, SolveFn fn);

  /// Spec lookup; nullptr when `name` is not registered.
  const SolverSpec* find(std::string_view name) const;

  /// Spec lookup; throws std::invalid_argument when `name` is unknown.
  const SolverSpec& at(std::string_view name) const;

  /// Registered solver names, sorted.
  std::vector<std::string> names() const;

  /// All specs, sorted by name.
  std::vector<const SolverSpec*> specs() const;

  /// Runs one request. Throws std::invalid_argument for an unknown solver,
  /// a null graph, an option the spec does not declare, or measure_traffic
  /// on a solver without a Local mode. Solution is sorted; validity is
  /// always checked; ratio measured iff requested.
  Response run(std::string_view name, const Request& req) const;

  /// Hot-path variant for batch execution: `resolved` must be a map
  /// resolve_options() returned for this solver (every declared parameter
  /// present with its declared type) — it is trusted, not re-validated, so
  /// per-graph cost is one name lookup plus the solve itself.
  /// `intra_threads` shards the single solve's per-vertex work (see
  /// SolveContext::intra_threads); the response is bit-identical for every
  /// value.
  Response run_resolved(std::string_view name, const Graph& g, const Options& resolved,
                        bool measure_traffic, bool measure_ratio,
                        int intra_threads = 1) const;

  /// Validates `req` against `name`'s spec and returns the fully-resolved
  /// parameter map: every declared parameter present (request value or spec
  /// default) and coerced to its declared type — Int is accepted for a Bool
  /// parameter (0 = false) and promoted for a Double one; any other mismatch
  /// throws. Throws RequestError exactly where run() would: unknown solver,
  /// undeclared option, type mismatch, measure_traffic without a Local mode.
  Options resolve_options(std::string_view name, const Request& req) const;

  /// Runs the same request shape across many graphs (req.graph is ignored);
  /// response i answers graphs[i]. Sequential and uncached — byte-for-byte
  /// the behaviour of calling run() in a loop.
  std::vector<Response> run_batch(std::string_view name, std::span<const Graph> graphs,
                                  const Request& req) const;

  /// Sharded parallel variant: executes through a transient BatchExecutor
  /// with `opts` (worker pool + work-stealing shard queue + LRU response
  /// cache). Responses are identical to the sequential overload for every
  /// thread count. The cache lives only for this call; `diag`, when
  /// non-null, receives the executor's per-batch diagnostics.
  std::vector<Response> run_batch(std::string_view name, std::span<const Graph> graphs,
                                  const Request& req, const BatchOptions& opts,
                                  BatchDiagnostics* diag = nullptr) const;

 private:
  struct Entry {
    SolverSpec spec;
    SolveFn solve;
  };
  std::vector<Entry> entries_;  // sorted by spec.name

  const Entry* find_entry(std::string_view name) const;
  Response run_entry(const Entry& entry, const Graph& g, const Options& params,
                     bool measure_traffic, bool measure_ratio, int intra_threads) const;
};

}  // namespace lmds::api
