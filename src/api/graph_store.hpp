#pragma once
// Content-addressed store of uploaded graphs — the serving layer's answer to
// "many queries over few graphs". A client uploads a graph once (put), gets
// back a stable handle derived from the 64-bit structural fingerprint
// (src/graph/hash.hpp), and solves by handle from then on: repeated solve
// traffic skips the edge-list re-send and the JSON decode entirely.
//
// Semantics:
//  * Content-addressed — put() of an identical graph returns the same
//    handle and bumps a refcount instead of storing a second copy. The
//    handle is "g" + 16 hex digits of graph_hash; two *distinct* graphs
//    colliding on all 64 bits would share a handle (probability ~2^-40
//    across a million graphs) — the same deliberate trade the response
//    cache makes. Handles are globally stable: every server derives the
//    same handle for the same graph, which is what makes consistent-hash
//    routing and peer replication (src/cluster/) coherent.
//  * Lease-owned pins — every pin belongs to a SessionId. Session
//    kSharedSession (0) is the legacy anonymous owner: its pins form one
//    shared counter any caller may release, and they never expire. Sessions
//    >= 1 (server connections) own their pins: drop() by another session
//    fails instead of releasing them, release_session() frees them all when
//    the connection goes away, and — with a nonzero lease_ttl — leases not
//    renewed by any get/put/patch from their owner expire, so a wedged
//    client cannot pin capacity forever.
//  * Refcounted — drop() undoes one put() by the same owner. An entry whose
//    total refcount reaches zero is not freed eagerly: it moves to an
//    unpinned LRU side-list and stays resolvable (a re-put is free) until
//    capacity pressure evicts it.
//  * Capacity-evicting — put() of a *new* graph at capacity evicts unpinned
//    entries, least-recently-used first. If every stored graph is still
//    pinned (refcount > 0), put() throws GraphStoreFull — the caller (the
//    server) reports a retryable error instead of growing without bound.
//  * Namespace-quota'd — each entry charges its approximate byte footprint
//    to the namespace that first stored it. With a nonzero
//    max_namespace_bytes, a put/patch that would push one namespace past
//    its quota throws GraphStoreFull (the server answers server_busy), so
//    one tenant cannot silently evict everyone else's graphs.
//
// Thread-safe: all operations take an internal mutex. get() hands out
// shared_ptr<const Graph>, so a solve keeps its graph alive even if a
// concurrent drop/evict removes the entry mid-batch.

#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"

namespace lmds::api {

/// Thrown by GraphStore::put when the store is at capacity and every entry
/// is still pinned, or when a namespace byte quota would be exceeded —
/// retryable after a drop_graph, hence "busy" not "bad".
struct GraphStoreFull : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown by GraphStore::patch when the parent handle resolves to nothing
/// (never stored, dropped and evicted, or malformed).
struct UnknownGraphHandle : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Owner of a pin lease. kSharedSession (0) is the anonymous legacy owner;
/// server connections allocate ids >= 1 (ServerCore::allocate_session_id).
using SessionId = std::uint64_t;
inline constexpr SessionId kSharedSession = 0;

/// Provenance of a handle created by patch(): the parent graph (the
/// shared_ptr keeps the parent's CSR alive independently of store eviction),
/// its fingerprint, and the normalized edit lists (u < v, sorted). The
/// executor's ball-granular incremental re-solve consumes this to bound
/// which vertices an edit can have re-decided (api/executor.hpp).
struct PatchLineage {
  std::shared_ptr<const graph::Graph> parent;
  std::uint64_t parent_hash = 0;
  std::vector<graph::Edge> added;
  std::vector<graph::Edge> removed;
};

/// Lifetime counters; `size`/`pinned` and the two maps are instantaneous.
struct GraphStoreStats {
  std::uint64_t puts = 0;       ///< put() calls that stored a new graph
  std::uint64_t reuses = 0;     ///< put()/patch() calls answered by an existing entry
  std::uint64_t patches = 0;    ///< patch() calls that stored a new derived graph
  std::uint64_t drops = 0;      ///< successful drop() calls
  std::uint64_t evictions = 0;  ///< unpinned entries reclaimed by capacity
  std::uint64_t lease_expiries = 0;   ///< pins released by lease timeout
  std::uint64_t quota_rejections = 0; ///< puts/patches refused by a namespace quota
  std::size_t size = 0;         ///< graphs currently stored
  std::size_t pinned = 0;       ///< graphs with refcount > 0
  std::size_t capacity = 0;
  /// Approximate stored bytes charged per namespace (only namespaces
  /// currently holding entries appear).
  std::map<std::string, std::uint64_t> namespace_bytes;
  /// Live pin count per owning session (kSharedSession appears as 0).
  std::map<SessionId, std::uint64_t> session_pins;

  friend bool operator==(const GraphStoreStats&, const GraphStoreStats&) = default;
};

class GraphStore {
 public:
  /// Tuning beyond raw capacity; the extra knobs default to "off" so a
  /// GraphStore(capacity) behaves exactly as before they existed.
  struct StoreOptions {
    /// Maximum stored graphs (pinned + unpinned). 0 disables the store:
    /// every put() throws GraphStoreFull.
    std::size_t capacity = 1024;
    /// Per-namespace quota on approximate stored bytes (0 = unlimited).
    std::uint64_t max_namespace_bytes = 0;
    /// How long an owned (session >= 1) pin survives without its owner
    /// touching the entry; 0 = leases never expire.
    std::chrono::milliseconds lease_ttl{0};
  };

  explicit GraphStore(std::size_t capacity) : GraphStore(StoreOptions{.capacity = capacity}) {}
  explicit GraphStore(const StoreOptions& opts);

  struct PutResult {
    std::string handle;
    std::uint64_t hash = 0;
    bool inserted = false;  ///< false = content-addressed reuse of an entry
    int vertices = 0;
    int edges = 0;
  };

  /// Stores (or re-pins) a graph and returns its handle; the pin is leased
  /// to `session` and its bytes charged to `ns` when the entry is new.
  /// Throws GraphStoreFull when a new entry is needed and the store is at
  /// capacity with nothing evictable, or when `ns` would exceed its quota.
  PutResult put(graph::Graph g, SessionId session = kSharedSession,
                std::string_view ns = {}) LMDS_EXCLUDES(mu_);

  /// Stores a graph *unpinned* (resolvable, evictable, owned by nobody) —
  /// how replicate_in installs a peer's graphs without holding them hostage
  /// to capacity. An existing entry is promoted to most-recent instead.
  /// Throws GraphStoreFull like put().
  PutResult put_replica(graph::Graph g, std::string_view ns = {}) LMDS_EXCLUDES(mu_);

  /// Resolves a handle; nullptr when unknown (never stored, dropped *and*
  /// evicted, or malformed). Promotes an unpinned entry to most recent and
  /// renews `session`'s lease on it, if one is held.
  std::shared_ptr<const graph::Graph> get(std::string_view handle,
                                          SessionId session = kSharedSession)
      LMDS_EXCLUDES(mu_);

  /// Undoes one put() by the same owner. Returns false when the handle
  /// resolves to nothing or `session` holds no lease on it — one session
  /// cannot release another's pins.
  bool drop(std::string_view handle, SessionId session = kSharedSession) LMDS_EXCLUDES(mu_);

  struct PatchResult {
    PutResult put;       ///< the child: same fields a put() would return
    std::string parent;  ///< the (echoed) parent handle
  };

  /// Applies a batch of edge edits (graph::apply_patch) to a stored handle
  /// and stores — or, content-addressed, re-pins — the resulting child
  /// graph, recording a PatchLineage so solves against the child can be
  /// answered incrementally from the parent's cached response. While a
  /// derived entry is alive its parent entry is protected from capacity
  /// eviction (child_refs), so the lineage chain stays resolvable. Throws
  /// UnknownGraphHandle, std::invalid_argument (malformed edits —
  /// apply_patch's rules) or GraphStoreFull.
  PatchResult patch(std::string_view handle, const graph::GraphPatch& p,
                    SessionId session = kSharedSession, std::string_view ns = {})
      LMDS_EXCLUDES(mu_);

  /// Lineage of a patched handle; nullptr for put() handles and handles
  /// that resolve to nothing. The returned record is immutable and safe to
  /// hold across a concurrent drop/evict of either entry.
  std::shared_ptr<const PatchLineage> lineage(std::string_view handle) const
      LMDS_EXCLUDES(mu_);

  /// Releases every pin `session` holds (connection teardown, crashed
  /// client). Returns the number of pins released. No-op for
  /// kSharedSession — anonymous pins have no owner to clean up after.
  std::size_t release_session(SessionId session) LMDS_EXCLUDES(mu_);

  /// Expires owned leases whose ttl ran out (no-op when lease_ttl is 0).
  /// Called lazily by every put/patch/stats, and callable directly (tests,
  /// a server's idle sweep). Returns the number of pins released.
  std::size_t expire_leases() LMDS_EXCLUDES(mu_);

  /// Every stored graph with its handle, most-recently-stored order not
  /// guaranteed — the replication verbs' snapshot of store contents. The
  /// shared_ptrs keep the graphs alive independently of concurrent evicts.
  std::vector<std::pair<std::string, std::shared_ptr<const graph::Graph>>>
  snapshot_graphs() const LMDS_EXCLUDES(mu_);

  GraphStoreStats stats() const LMDS_EXCLUDES(mu_);
  std::size_t capacity() const { return opts_.capacity; }
  const StoreOptions& options() const { return opts_; }

  /// "g" + 16 lowercase hex digits of the fingerprint.
  static std::string handle_for(std::uint64_t hash);
  /// Inverse of handle_for; nullopt on anything not of that exact shape.
  static std::optional<std::uint64_t> parse_handle(std::string_view handle);

  /// The byte footprint charged against a namespace quota: an O(1) estimate
  /// of the CSR + edge-list memory, not an exact accounting (it is an
  /// admission metric, and exactness would buy nothing).
  static std::uint64_t approx_bytes(int vertices, int edges) {
    return 64 + 16 * static_cast<std::uint64_t>(vertices) +
           16 * static_cast<std::uint64_t>(edges);
  }

 private:
  /// One owner's claim on an entry. `deadline` only matters for sessions
  /// >= 1 with a nonzero lease_ttl; it is renewed by put/get/patch.
  struct Lease {
    int count = 0;
    std::chrono::steady_clock::time_point deadline{};
  };

  struct Entry {
    std::shared_ptr<const graph::Graph> graph;
    /// Total pins = sum of lease counts (kept denormalized: the hot paths
    /// only ask "pinned at all?").
    int refs = 0;
    std::map<SessionId, Lease> leases;
    /// Valid iff refs == 0: position in unpinned_ (front = most recent).
    std::list<std::uint64_t>::iterator lru_it;
    /// Set iff the entry was created by patch(); immutable afterwards.
    std::shared_ptr<const PatchLineage> lineage;
    /// Stored entries whose lineage names this entry as parent. While
    /// nonzero the entry is skipped by capacity eviction even when
    /// unpinned — evicting it would sever a live child's lineage chain.
    int child_refs = 0;
    /// Namespace charged for this entry's bytes (set at insert; a re-pin
    /// from another namespace does not re-charge).
    std::string ns;
    std::uint64_t bytes = 0;
  };

  /// Frees the least-recently-used unpinned entry that no stored child
  /// depends on; throws GraphStoreFull when every entry is pinned or
  /// eviction-protected by a derived handle.
  void evict_unpinned_locked() LMDS_REQUIRES(mu_);
  /// Charges `bytes` to `ns`, throwing GraphStoreFull (and counting a
  /// quota rejection) when the namespace quota would be exceeded.
  void charge_namespace_locked(const std::string& ns, std::uint64_t bytes)
      LMDS_REQUIRES(mu_);
  void uncharge_namespace_locked(const std::string& ns, std::uint64_t bytes)
      LMDS_REQUIRES(mu_);
  /// Removes the entry `it` points at (already unpinned) and settles its
  /// namespace + lineage accounting.
  void erase_entry_locked(std::unordered_map<std::uint64_t, Entry>::iterator it)
      LMDS_REQUIRES(mu_);
  /// Adds one pin for `session` on `entry`, renewing its lease deadline.
  void pin_locked(Entry& entry, SessionId session) LMDS_REQUIRES(mu_);
  /// Lazy lease-ttl sweep; no-op when lease_ttl is 0.
  std::size_t expire_leases_locked() LMDS_REQUIRES(mu_);

  const StoreOptions opts_;
  mutable common::Mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_ LMDS_GUARDED_BY(mu_);
  /// front = most recently released/used
  std::list<std::uint64_t> unpinned_ LMDS_GUARDED_BY(mu_);
  /// Approximate bytes charged per namespace (keys erased at zero, so the
  /// map is bounded by live entries, not by every tag ever seen).
  std::map<std::string, std::uint64_t> ns_bytes_ LMDS_GUARDED_BY(mu_);
  std::uint64_t puts_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t patches_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t reuses_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t drops_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t lease_expiries_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t quota_rejections_ LMDS_GUARDED_BY(mu_) = 0;
};

}  // namespace lmds::api
