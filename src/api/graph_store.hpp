#pragma once
// Content-addressed store of uploaded graphs — the serving layer's answer to
// "many queries over few graphs". A client uploads a graph once (put), gets
// back a stable handle derived from the 64-bit structural fingerprint
// (src/graph/hash.hpp), and solves by handle from then on: repeated solve
// traffic skips the edge-list re-send and the JSON decode entirely.
//
// Semantics:
//  * Content-addressed — put() of an identical graph returns the same
//    handle and bumps a refcount instead of storing a second copy. The
//    handle is "g" + 16 hex digits of graph_hash; two *distinct* graphs
//    colliding on all 64 bits would share a handle (probability ~2^-40
//    across a million graphs) — the same deliberate trade the response
//    cache makes.
//  * Refcounted — drop() undoes one put(). An entry whose refcount reaches
//    zero is not freed eagerly: it moves to an unpinned LRU side-list and
//    stays resolvable (a re-put is free) until capacity pressure evicts it.
//  * Capacity-evicting — put() of a *new* graph at capacity evicts unpinned
//    entries, least-recently-used first. If every stored graph is still
//    pinned (refcount > 0), put() throws GraphStoreFull — the caller (the
//    server) reports a retryable error instead of growing without bound.
//
// Thread-safe: all operations take an internal mutex. get() hands out
// shared_ptr<const Graph>, so a solve keeps its graph alive even if a
// concurrent drop/evict removes the entry mid-batch.

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"

namespace lmds::api {

/// Thrown by GraphStore::put when the store is at capacity and every entry
/// is still pinned — retryable after a drop_graph, hence "busy" not "bad".
struct GraphStoreFull : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown by GraphStore::patch when the parent handle resolves to nothing
/// (never stored, dropped and evicted, or malformed).
struct UnknownGraphHandle : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Provenance of a handle created by patch(): the parent graph (the
/// shared_ptr keeps the parent's CSR alive independently of store eviction),
/// its fingerprint, and the normalized edit lists (u < v, sorted). The
/// executor's ball-granular incremental re-solve consumes this to bound
/// which vertices an edit can have re-decided (api/executor.hpp).
struct PatchLineage {
  std::shared_ptr<const graph::Graph> parent;
  std::uint64_t parent_hash = 0;
  std::vector<graph::Edge> added;
  std::vector<graph::Edge> removed;
};

/// Lifetime counters; `size`/`pinned` are instantaneous.
struct GraphStoreStats {
  std::uint64_t puts = 0;       ///< put() calls that stored a new graph
  std::uint64_t reuses = 0;     ///< put()/patch() calls answered by an existing entry
  std::uint64_t patches = 0;    ///< patch() calls that stored a new derived graph
  std::uint64_t drops = 0;      ///< successful drop() calls
  std::uint64_t evictions = 0;  ///< unpinned entries reclaimed by capacity
  std::size_t size = 0;         ///< graphs currently stored
  std::size_t pinned = 0;       ///< graphs with refcount > 0
  std::size_t capacity = 0;

  friend bool operator==(const GraphStoreStats&, const GraphStoreStats&) = default;
};

class GraphStore {
 public:
  /// capacity = maximum stored graphs (pinned + unpinned). 0 disables the
  /// store: every put() throws GraphStoreFull.
  explicit GraphStore(std::size_t capacity);

  struct PutResult {
    std::string handle;
    std::uint64_t hash = 0;
    bool inserted = false;  ///< false = content-addressed reuse of an entry
    int vertices = 0;
    int edges = 0;
  };

  /// Stores (or re-pins) a graph and returns its handle. Throws
  /// GraphStoreFull when a new entry is needed, the store is at capacity
  /// and nothing is evictable.
  PutResult put(graph::Graph g) LMDS_EXCLUDES(mu_);

  /// Resolves a handle; nullptr when unknown (never stored, dropped *and*
  /// evicted, or malformed). Promotes an unpinned entry to most recent.
  std::shared_ptr<const graph::Graph> get(std::string_view handle) LMDS_EXCLUDES(mu_);

  /// Undoes one put(). Returns false when the handle resolves to nothing.
  bool drop(std::string_view handle) LMDS_EXCLUDES(mu_);

  struct PatchResult {
    PutResult put;       ///< the child: same fields a put() would return
    std::string parent;  ///< the (echoed) parent handle
  };

  /// Applies a batch of edge edits (graph::apply_patch) to a stored handle
  /// and stores — or, content-addressed, re-pins — the resulting child
  /// graph, recording a PatchLineage so solves against the child can be
  /// answered incrementally from the parent's cached response. While a
  /// derived entry is alive its parent entry is protected from capacity
  /// eviction (child_refs), so the lineage chain stays resolvable. Throws
  /// UnknownGraphHandle, std::invalid_argument (malformed edits —
  /// apply_patch's rules) or GraphStoreFull.
  PatchResult patch(std::string_view handle, const graph::GraphPatch& p) LMDS_EXCLUDES(mu_);

  /// Lineage of a patched handle; nullptr for put() handles and handles
  /// that resolve to nothing. The returned record is immutable and safe to
  /// hold across a concurrent drop/evict of either entry.
  std::shared_ptr<const PatchLineage> lineage(std::string_view handle) const
      LMDS_EXCLUDES(mu_);

  GraphStoreStats stats() const LMDS_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }

  /// "g" + 16 lowercase hex digits of the fingerprint.
  static std::string handle_for(std::uint64_t hash);
  /// Inverse of handle_for; nullopt on anything not of that exact shape.
  static std::optional<std::uint64_t> parse_handle(std::string_view handle);

 private:
  struct Entry {
    std::shared_ptr<const graph::Graph> graph;
    int refs = 0;
    /// Valid iff refs == 0: position in unpinned_ (front = most recent).
    std::list<std::uint64_t>::iterator lru_it;
    /// Set iff the entry was created by patch(); immutable afterwards.
    std::shared_ptr<const PatchLineage> lineage;
    /// Stored entries whose lineage names this entry as parent. While
    /// nonzero the entry is skipped by capacity eviction even when
    /// unpinned — evicting it would sever a live child's lineage chain.
    int child_refs = 0;
  };

  /// Frees the least-recently-used unpinned entry that no stored child
  /// depends on; throws GraphStoreFull when every entry is pinned or
  /// eviction-protected by a derived handle.
  void evict_unpinned_locked() LMDS_REQUIRES(mu_);

  const std::size_t capacity_;
  mutable common::Mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_ LMDS_GUARDED_BY(mu_);
  /// front = most recently released/used
  std::list<std::uint64_t> unpinned_ LMDS_GUARDED_BY(mu_);
  std::uint64_t puts_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t patches_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t reuses_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t drops_ LMDS_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ LMDS_GUARDED_BY(mu_) = 0;
};

}  // namespace lmds::api
