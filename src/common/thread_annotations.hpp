#pragma once
// Clang thread-safety-analysis attribute macros — the static half of the
// concurrency correctness layer (the dynamic half is the sanitizer presets,
// CMakePresets.json). Under Clang, `-Wthread-safety` turns these into a
// compile-time lock-discipline checker: a member declared GUARDED_BY(mu_)
// read or written without mu_ held is a build error in CI
// (-Werror=thread-safety). Under GCC and MSVC every macro expands to
// nothing, so the annotated code compiles unchanged everywhere.
//
// The analysis only sees lock acquisitions through annotated types, and
// std::mutex / std::lock_guard carry no annotations under libstdc++ — use
// lmds::common::Mutex and lmds::common::MutexLock (src/common/mutex.hpp)
// instead of the std types on any path you want checked.
//
// Conventions in this codebase (see docs/DEVELOPING.md):
//  * Every member a mutex protects is GUARDED_BY(that mutex).
//  * A private helper that must run under the lock is named FooLocked() and
//    declared REQUIRES(mu_) — callers must hold mu_, and the analysis
//    proves they do.
//  * Public entry points that take the lock themselves are EXCLUDES(mu_),
//    which catches self-deadlock (calling a locking method while already
//    holding the lock) at compile time.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LMDS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LMDS_THREAD_ANNOTATION
#define LMDS_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// On a class: instances are lockable capabilities (mutexes).
#define LMDS_CAPABILITY(x) LMDS_THREAD_ANNOTATION(capability(x))

/// On a class: RAII object that holds a capability for its lifetime.
#define LMDS_SCOPED_CAPABILITY LMDS_THREAD_ANNOTATION(scoped_lockable)

/// On a data member: may only be accessed with `x` held.
#define LMDS_GUARDED_BY(x) LMDS_THREAD_ANNOTATION(guarded_by(x))

/// On a pointer member: the pointee (not the pointer) needs `x` held.
#define LMDS_PT_GUARDED_BY(x) LMDS_THREAD_ANNOTATION(pt_guarded_by(x))

/// On a function: callers must already hold the listed capabilities
/// (the FooLocked() contract).
#define LMDS_REQUIRES(...) \
  LMDS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// On a function: callers must NOT hold the listed capabilities — the
/// function acquires them itself (catches recursive self-deadlock).
#define LMDS_EXCLUDES(...) LMDS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// On a function: acquires the capability and holds it on return.
#define LMDS_ACQUIRE(...) \
  LMDS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// On a function: releases a held capability.
#define LMDS_RELEASE(...) \
  LMDS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// On a function: returns a reference to the capability guarding its result.
#define LMDS_RETURN_CAPABILITY(x) LMDS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only where the
/// analysis cannot follow a correct pattern, and say why in a comment.
#define LMDS_NO_THREAD_SAFETY_ANALYSIS \
  LMDS_THREAD_ANNOTATION(no_thread_safety_analysis)
