#pragma once
// Deterministic fork-join parallelism for per-vertex work — the intra-graph
// threading primitive behind gather_views, the LOCAL runners and the
// executor's multi-threaded-single-solve mode. The contract that keeps every
// output bit-identical for any thread count: work is split into contiguous
// index chunks, each chunk writes only its own slots of a preallocated
// result array, and the caller collects slots in index order afterwards.

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace lmds::common {

/// Resolves a thread-count knob: positive values pass through, <= 0 means
/// std::thread::hardware_concurrency() (at least 1).
inline int resolve_thread_count(int threads) {
  if (threads > 0) return threads;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

/// Runs fn(begin, end) over a partition of [0, n) into contiguous chunks,
/// one per worker. Worker 0 runs on the calling thread, so threads <= 1
/// never spawns. The first exception (lowest worker index) is rethrown
/// after all workers joined — no thread is ever abandoned.
template <typename Fn>
void parallel_for(int n, int threads, const Fn& fn) {
  if (n <= 0) return;
  int workers = std::min(resolve_thread_count(threads), n);
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  const int chunk = (n + workers - 1) / workers;
  workers = (n + chunk - 1) / chunk;  // drop workers an uneven split starves
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  const auto run = [&](int w) {
    const int begin = w * chunk;
    const int end = std::min(n, begin + chunk);
    try {
      fn(begin, end);
    } catch (...) {
      errors[static_cast<std::size_t>(w)] = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) pool.emplace_back(run, w);
  run(0);
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace lmds::common
