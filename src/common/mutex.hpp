#pragma once
// Annotated mutex wrapper for the concurrent serving core. A thin shell
// around std::mutex whose lock/unlock carry Clang thread-safety attributes
// (src/common/thread_annotations.hpp): members declared
// LMDS_GUARDED_BY(mu_) are statically checked to be touched only while mu_
// is held, and FooLocked() helpers declared LMDS_REQUIRES(mu_) are
// statically checked to be called only under the lock. std::mutex itself is
// unannotated under libstdc++, which is the whole reason this wrapper
// exists — behaviourally it IS a std::mutex.

#include <mutex>

#include "common/thread_annotations.hpp"

namespace lmds::common {

/// std::mutex with Clang capability annotations. Same cost, same semantics.
class LMDS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LMDS_ACQUIRE() { mu_.lock(); }
  void unlock() LMDS_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard over Mutex, visible to the analysis as a scoped
/// capability: the lock is held from construction to end of scope.
class LMDS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LMDS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LMDS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace lmds::common
