#pragma once
// The charging machinery behind Lemma 5.2 and Proposition 3.1: sets with
// pairwise disjoint closed neighbourhoods have Σ MDS(G, R_i) <= MDS(G),
// which is how local counts (1-cuts per cover part, interesting vertices
// per part) get charged against the global optimum.

#include <vector>

#include "asdim/cover.hpp"
#include "graph/graph.hpp"

namespace lmds::asdim {

/// True iff the closed neighbourhoods N[R_i] are pairwise disjoint
/// (precondition of Lemma 5.2).
bool closed_neighborhoods_disjoint(const Graph& g, const std::vector<std::vector<Vertex>>& sets);

/// Σ_i MDS(G, R_i), each term exact (Section 2's B-domination).
int sum_b_domination(const Graph& g, const std::vector<std::vector<Vertex>>& sets);

/// Proposition 3.1-style certificate for a cover: for every part, sums
/// MDS(G, N^k[B]) over the part's (2k+3)-components B, and returns the
/// maximum part-sum. Lemma 5.2 guarantees each part-sum <= MDS(G) whenever
/// the components' N^{k+1}-neighbourhoods are disjoint (they are, at
/// distance >= 2k+4).
int charging_certificate(const Graph& g, const Cover& cover, int k);

}  // namespace lmds::asdim
