#include "asdim/cover.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/ops.hpp"

namespace lmds::asdim {

Cover bfs_band_cover(const Graph& g, int r) {
  if (r < 1) throw std::invalid_argument("bfs_band_cover: r >= 1 required");
  Cover cover;
  cover.r = r;
  cover.parts.assign(2, {});

  const auto comps = graph::connected_components(g);
  for (const auto& component : comps.groups()) {
    if (component.empty()) continue;
    const Vertex root = component.front();
    const auto dist = graph::bfs_distances(g, root);
    for (Vertex v : component) {
      const int band = dist[static_cast<std::size_t>(v)] / r;
      cover.parts[static_cast<std::size_t>(band % 2)].push_back(v);
    }
  }
  for (auto& part : cover.parts) std::sort(part.begin(), part.end());
  return cover;
}

CoverCheck validate_cover(const Graph& g, const Cover& cover) {
  CoverCheck check;
  std::vector<char> covered(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const auto& part : cover.parts) {
    for (Vertex v : part) covered[static_cast<std::size_t>(v)] = 1;
    for (const auto& component : graph::r_components(g, part, cover.r)) {
      ++check.num_components;
      check.max_component_weak_diameter =
          std::max(check.max_component_weak_diameter, graph::weak_diameter(g, component));
    }
  }
  check.is_cover = std::all_of(covered.begin(), covered.end(), [](char c) { return c != 0; });
  return check;
}

int measured_control(const Graph& g, int r) {
  return validate_cover(g, bfs_band_cover(g, r)).max_component_weak_diameter;
}

}  // namespace lmds::asdim
