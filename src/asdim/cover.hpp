#pragma once
// Asymptotic dimension machinery (Section 3).
//
// A class has asymptotic dimension <= d with control function f when every
// graph admits, for every r, a cover V = B_0 ∪ ... ∪ B_d whose r-components
// (components of the "within distance r" relation inside a part) have weak
// diameter <= f(r).
//
// We implement the classic BFS-band construction witnessing dimension 1 on
// tree-like classes: distance layers from a root are grouped into bands of
// width r, alternating bands go to B_0 / B_1. Two vertices of the same part
// within distance r land in the same band stack, and on the generator
// families the band r-components stay O(r·t)-bounded — validate_cover
// measures this, and bench E9 compares against the paper's f(r) = (5r+18)t.

#include <vector>

#include "graph/graph.hpp"

namespace lmds::asdim {

using graph::Graph;
using graph::Vertex;

/// A (d+1)-part cover for a fixed scale r.
struct Cover {
  std::vector<std::vector<Vertex>> parts;  ///< parts[i] sorted
  int r = 1;

  int dimension() const { return static_cast<int>(parts.size()) - 1; }
};

/// Two-part BFS-band cover at scale r: bands of r consecutive BFS layers,
/// even-indexed bands to part 0, odd to part 1. Works per connected
/// component (roots at the minimum vertex of each).
Cover bfs_band_cover(const Graph& g, int r);

/// Validation result of a cover.
struct CoverCheck {
  bool is_cover = false;                 ///< every vertex in some part
  int max_component_weak_diameter = 0;   ///< max over parts and r-components
  int num_components = 0;                ///< total r-components across parts
};

/// Measures the cover's quality: extracts the r-components of every part
/// (graph::r_components) and takes the max weak diameter.
CoverCheck validate_cover(const Graph& g, const Cover& cover);

/// The empirical control value at scale r: the max r-component weak
/// diameter of the BFS-band cover. The class-level control function is the
/// sup over the class; bench E9 reports this per family against (5r+18)t.
int measured_control(const Graph& g, int r);

}  // namespace lmds::asdim
