#include "asdim/charging.hpp"

#include <algorithm>

#include "graph/bfs.hpp"
#include "graph/ops.hpp"
#include "solve/exact_mds.hpp"

namespace lmds::asdim {

bool closed_neighborhoods_disjoint(const Graph& g,
                                   const std::vector<std::vector<Vertex>>& sets) {
  std::vector<int> owner(static_cast<std::size_t>(g.num_vertices()), -1);
  for (int i = 0; i < static_cast<int>(sets.size()); ++i) {
    for (Vertex v : sets[static_cast<std::size_t>(i)]) {
      for (Vertex w : g.closed_neighborhood(v)) {
        int& slot = owner[static_cast<std::size_t>(w)];
        if (slot != -1 && slot != i) return false;
        slot = i;
      }
    }
  }
  return true;
}

int sum_b_domination(const Graph& g, const std::vector<std::vector<Vertex>>& sets) {
  int total = 0;
  for (const auto& set : sets) {
    total += static_cast<int>(solve::exact_b_domination(g, set).size());
  }
  return total;
}

int charging_certificate(const Graph& g, const Cover& cover, int k) {
  int max_part_sum = 0;
  const int scale = 2 * k + 3;
  for (const auto& part : cover.parts) {
    if (part.empty()) continue;
    int part_sum = 0;
    for (const auto& component : graph::r_components(g, part, scale)) {
      const auto target = graph::ball_of_set(g, component, k);
      part_sum += static_cast<int>(solve::exact_b_domination(g, target).size());
    }
    max_part_sum = std::max(max_part_sum, part_sum);
  }
  return max_part_sum;
}

}  // namespace lmds::asdim
