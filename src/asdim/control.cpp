#include "asdim/control.hpp"

#include <algorithm>

#include "core/constants.hpp"

namespace lmds::asdim {

std::vector<ControlPoint> measure_control_curve(const std::vector<Graph>& family,
                                                const std::vector<int>& scales, int t) {
  std::vector<ControlPoint> curve;
  for (int r : scales) {
    ControlPoint point;
    point.r = r;
    point.paper_bound = core::ControlFunction{t}(r);
    for (const Graph& g : family) {
      point.measured = std::max(point.measured, measured_control(g, r));
    }
    curve.push_back(point);
  }
  return curve;
}

}  // namespace lmds::asdim
