#pragma once
// Control-function measurement across a family of graphs: the empirical
// counterpart of f(r) = (5r+18)t from [3, Lemma 7.1], reported by bench E9.

#include <functional>
#include <string>
#include <vector>

#include "asdim/cover.hpp"

namespace lmds::asdim {

/// One measured point: scale r, measured max weak diameter, paper bound.
struct ControlPoint {
  int r = 0;
  int measured = 0;
  int paper_bound = 0;
};

/// Measures the BFS-band control value on every graph of the family at each
/// scale, keeping the max per scale (the family-level control function is a
/// sup). paper_bound is filled from f(r) = (5r+18)t.
std::vector<ControlPoint> measure_control_curve(const std::vector<Graph>& family,
                                                const std::vector<int>& scales, int t);

}  // namespace lmds::asdim
