#pragma once
// Adapters that run ball-decision functions as LOCAL algorithms.
//
// A BallDecision is a pure function BallView -> bool ("do I join the output
// set?"). run_ball_algorithm gathers radius-r views through the
// message-passing simulator and applies the decision at every node,
// reporting the measured rounds/messages/bytes. run_ball_algorithm_fast
// computes the same output through cut views (no traffic simulation) — the
// two are tested to agree, and benches choose per their needs.
//
// Both runners accept a thread count: per-vertex view extraction and
// decisions shard across a fork-join pool, each vertex writing a
// preallocated slot, and the selected set is collected in vertex order —
// results are bit-identical for every thread count. Decisions must be pure
// (they are: every decision in this library reads only its BallView).

#include <functional>

#include "local/view.hpp"

namespace lmds::local {

/// Decision function of a single node given its view.
using BallDecision = std::function<bool(const BallView&)>;

/// Output of a LOCAL execution.
struct RunResult {
  std::vector<Vertex> selected;  ///< vertices (global indices) that joined
  TrafficStats traffic;
};

/// Full message-passing execution: radius-r views in r+1 rounds, then apply
/// `decide` at every node. `threads` <= 0 picks hardware_concurrency.
RunResult run_ball_algorithm(const Network& net, int radius, const BallDecision& decide,
                             int threads = 1);

/// Same output, computed without simulating traffic (traffic reports the
/// model cost: rounds = radius + 1, messages/bytes = 0).
RunResult run_ball_algorithm_fast(const Network& net, int radius, const BallDecision& decide,
                                  int threads = 1);

}  // namespace lmds::local
