#include "local/view.hpp"

#include <algorithm>
#include <numeric>
#include <span>
#include <stdexcept>

#include "common/parallel.hpp"
#include "graph/builder.hpp"
#include "graph/ops.hpp"

namespace lmds::local {

Vertex BallView::local_index_of(NodeId id) const {
  if (id_order.size() == ids.size() && !id_order.empty()) {
    const auto it = std::lower_bound(
        id_order.begin(), id_order.end(), id,
        [&](Vertex v, NodeId target) { return ids[static_cast<std::size_t>(v)] < target; });
    if (it != id_order.end() && ids[static_cast<std::size_t>(*it)] == id) return *it;
    return graph::kNoVertex;
  }
  // Hand-assembled view without an index: linear scan, as before.
  for (Vertex v = 0; v < num_vertices(); ++v) {
    if (ids[static_cast<std::size_t>(v)] == id) return v;
  }
  return graph::kNoVertex;
}

void BallView::build_id_index() {
  id_order.resize(ids.size());
  std::iota(id_order.begin(), id_order.end(), Vertex{0});
  std::sort(id_order.begin(), id_order.end(), [&](Vertex a, Vertex b) {
    return ids[static_cast<std::size_t>(a)] < ids[static_cast<std::size_t>(b)];
  });
}

std::vector<Vertex> BallView::inner_ball(int k) const {
  std::vector<Vertex> result;
  for (Vertex v = 0; v < num_vertices(); ++v) {
    if (dist[static_cast<std::size_t>(v)] <= k) result.push_back(v);
  }
  return result;
}

namespace detail {

std::vector<int> edge_ids_per_slot(const Graph& g) {
  std::vector<int> ids(static_cast<std::size_t>(g.num_edges()) * 2);
  int next_id = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nb = g.neighbors(u);
    const std::size_t base = g.adjacency_offset(u);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      const Vertex w = nb[j];
      if (u < w) {
        // Rows are visited in ascending u and are sorted, so u < w slots are
        // met in exactly g.edges() order: sequential ids match edge indices.
        ids[base + j] = next_id++;
      } else {
        // The mirror slot in w's row (w < u) was assigned on an earlier row.
        const auto wn = g.neighbors(w);
        const std::size_t pos =
            static_cast<std::size_t>(std::lower_bound(wn.begin(), wn.end(), u) - wn.begin());
        ids[base + j] = ids[g.adjacency_offset(w) + pos];
      }
    }
  }
  return ids;
}

}  // namespace detail

namespace {

// The CSR-native extraction core. Radius-capped BFS from `centre` over the
// topology CSR — when `knowledge` is given, an edge is traversable only if
// the centre has heard of it (slot_ids maps CSR slots to flooding edge
// indices) — then the sorted ball is relabelled monotonically straight into
// the view's CSR arrays. Monotone relabelling keeps every row sorted, so
// the trusted constructor's invariants hold by construction, and the result
// is bit-identical to the seed's induced_subgraph-based extraction.
BallView extract_view(const Network& net, Vertex centre, int radius,
                      const FloodingState* knowledge, std::span<const int> slot_ids,
                      ViewScratch& s) {
  const Graph& g = net.topology();
  graph::BfsScratch& bfs = s.bfs;
  bfs.begin(g.num_vertices());
  std::vector<Vertex>& current = bfs.current();
  std::vector<Vertex>& next = bfs.next();
  bfs.mark(centre, 0);
  current.push_back(centre);
  for (int d = 0; !current.empty() && d < radius; ++d) {
    next.clear();
    for (Vertex u : current) {
      const auto nb = g.neighbors(u);
      const std::size_t base = g.adjacency_offset(u);
      for (std::size_t j = 0; j < nb.size(); ++j) {
        const Vertex w = nb[j];
        if (bfs.seen(w)) continue;
        if (knowledge != nullptr && !knowledge->knows_edge(centre, slot_ids[base + j])) continue;
        bfs.mark(w, d + 1);
        next.push_back(w);
      }
    }
    std::swap(current, next);
  }

  s.ball.assign(bfs.visited().begin(), bfs.visited().end());
  std::sort(s.ball.begin(), s.ball.end());
  const std::size_t k = s.ball.size();
  if (s.local_of.size() < static_cast<std::size_t>(g.num_vertices())) {
    s.local_of.resize(static_cast<std::size_t>(g.num_vertices()));
  }
  for (std::size_t i = 0; i < k; ++i) {
    s.local_of[static_cast<std::size_t>(s.ball[i])] = static_cast<Vertex>(i);
  }

  // A slot {u, w} enters the view iff w is in the ball (== visited: the BFS
  // is capped at the view radius) and the centre knows the edge — exactly
  // the edge set of induced_subgraph(known graph, ball).
  std::vector<std::size_t> offsets(k + 1, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const Vertex u = s.ball[i];
    const auto nb = g.neighbors(u);
    const std::size_t base = g.adjacency_offset(u);
    std::size_t deg = 0;
    for (std::size_t j = 0; j < nb.size(); ++j) {
      if (!bfs.seen(nb[j])) continue;
      if (knowledge != nullptr && !knowledge->knows_edge(centre, slot_ids[base + j])) continue;
      ++deg;
    }
    offsets[i + 1] = offsets[i] + deg;
  }
  std::vector<Vertex> neighbors(offsets.back());
  for (std::size_t i = 0; i < k; ++i) {
    const Vertex u = s.ball[i];
    const auto nb = g.neighbors(u);
    const std::size_t base = g.adjacency_offset(u);
    Vertex* out = neighbors.data() + offsets[i];
    for (std::size_t j = 0; j < nb.size(); ++j) {
      const Vertex w = nb[j];
      if (!bfs.seen(w)) continue;
      if (knowledge != nullptr && !knowledge->knows_edge(centre, slot_ids[base + j])) continue;
      *out++ = s.local_of[static_cast<std::size_t>(w)];
    }
  }

  BallView view;
  view.graph = graph::detail::TrustedCsr::build(std::move(offsets), std::move(neighbors));
  view.radius = radius;
  view.ids.reserve(k);
  view.dist.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    view.ids.push_back(net.id_of(s.ball[i]));
    view.dist.push_back(bfs.dist(s.ball[i]));
  }
  view.centre = s.local_of[static_cast<std::size_t>(centre)];
  view.build_id_index();
  return view;
}

}  // namespace

std::vector<BallView> gather_views(const Network& net, int radius, TrafficStats* stats,
                                   int threads) {
  if (radius < 0) throw std::invalid_argument("gather_views: radius must be >= 0");
  TrafficStats local_stats;
  FloodingState flooding(net);
  // r+1 rounds deliver every edge with an endpoint at distance <= r, a
  // superset of E(G[N^r[v]]); extraction trims to the exact ball.
  flooding.run(radius + 1, local_stats);
  if (stats != nullptr) *stats += local_stats;

  const std::vector<int> slot_ids = detail::edge_ids_per_slot(net.topology());
  const int n = net.num_nodes();
  std::vector<BallView> views(static_cast<std::size_t>(n));
  common::parallel_for(n, threads, [&](int begin, int end) {
    ViewScratch scratch;
    for (Vertex v = begin; v < end; ++v) {
      views[static_cast<std::size_t>(v)] =
          extract_view(net, v, radius, &flooding, slot_ids, scratch);
    }
  });
  return views;
}

BallView cut_view(const Network& net, Vertex centre, int radius) {
  ViewScratch scratch;
  return cut_view_into(net, centre, radius, scratch);
}

BallView cut_view_into(const Network& net, Vertex centre, int radius, ViewScratch& scratch) {
  if (radius < 0) throw std::invalid_argument("cut_view: radius must be >= 0");
  return extract_view(net, centre, radius, nullptr, {}, scratch);
}

std::vector<BallView> cut_views(const Network& net, int radius, int threads) {
  if (radius < 0) throw std::invalid_argument("cut_views: radius must be >= 0");
  const int n = net.num_nodes();
  std::vector<BallView> views(static_cast<std::size_t>(n));
  common::parallel_for(n, threads, [&](int begin, int end) {
    ViewScratch scratch;
    for (Vertex v = begin; v < end; ++v) {
      views[static_cast<std::size_t>(v)] = extract_view(net, v, radius, nullptr, {}, scratch);
    }
  });
  return views;
}

namespace detail {

namespace {

// Builds the view of `centre` from an arbitrary set of known edges. The
// known edges must include all edges of G[N^radius[centre]] (guaranteed
// after radius+1 flooding rounds).
BallView view_from_edges(const Network& net, Vertex centre,
                         const std::vector<graph::Edge>& known, int radius) {
  // Build the known graph on global indices, then BFS from the centre.
  graph::GraphBuilder b(net.num_nodes());
  for (const graph::Edge& e : known) b.add_edge(e.u, e.v);
  const Graph known_graph = b.build();
  const auto dist = graph::bfs_distances(known_graph, centre);

  std::vector<Vertex> ball;
  for (Vertex v = 0; v < net.num_nodes(); ++v) {
    const int d = dist[static_cast<std::size_t>(v)];
    if (d >= 0 && d <= radius) ball.push_back(v);
  }
  const auto sub = graph::induced_subgraph(known_graph, ball);

  BallView view;
  view.graph = sub.graph;
  view.radius = radius;
  view.ids.reserve(ball.size());
  view.dist.reserve(ball.size());
  for (Vertex local = 0; local < sub.graph.num_vertices(); ++local) {
    const Vertex global = sub.to_parent[static_cast<std::size_t>(local)];
    view.ids.push_back(net.id_of(global));
    view.dist.push_back(dist[static_cast<std::size_t>(global)]);
  }
  view.centre = sub.from_parent[static_cast<std::size_t>(centre)];
  view.build_id_index();
  return view;
}

}  // namespace

std::vector<BallView> gather_views_reference(const Network& net, int radius,
                                             TrafficStats* stats) {
  if (radius < 0) throw std::invalid_argument("gather_views: radius must be >= 0");
  TrafficStats local_stats;
  FloodingState flooding(net);
  flooding.run(radius + 1, local_stats);
  if (stats != nullptr) *stats += local_stats;

  const auto all_edges = net.topology().edges();
  std::vector<BallView> views;
  views.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (Vertex v = 0; v < net.num_nodes(); ++v) {
    std::vector<graph::Edge> known;
    for (int e : flooding.known_edges(v)) known.push_back(all_edges[static_cast<std::size_t>(e)]);
    views.push_back(view_from_edges(net, v, known, radius));
  }
  return views;
}

BallView cut_view_reference(const Network& net, Vertex centre, int radius) {
  if (radius < 0) throw std::invalid_argument("cut_view: radius must be >= 0");
  return view_from_edges(net, centre, net.topology().edges(), radius);
}

}  // namespace detail

}  // namespace lmds::local
