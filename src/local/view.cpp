#include "local/view.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/ops.hpp"

namespace lmds::local {

Vertex BallView::local_index_of(NodeId id) const {
  for (Vertex v = 0; v < num_vertices(); ++v) {
    if (ids[static_cast<std::size_t>(v)] == id) return v;
  }
  return graph::kNoVertex;
}

std::vector<Vertex> BallView::inner_ball(int k) const {
  std::vector<Vertex> result;
  for (Vertex v = 0; v < num_vertices(); ++v) {
    if (dist[static_cast<std::size_t>(v)] <= k) result.push_back(v);
  }
  return result;
}

namespace {

// Builds the view of `centre` from an arbitrary set of known edges. The
// known edges must include all edges of G[N^radius[centre]] (guaranteed
// after radius+1 flooding rounds).
BallView view_from_edges(const Network& net, Vertex centre,
                         const std::vector<graph::Edge>& known, int radius) {
  // Build the known graph on global indices, then BFS from the centre.
  graph::GraphBuilder b(net.num_nodes());
  for (const graph::Edge& e : known) b.add_edge(e.u, e.v);
  const Graph known_graph = b.build();
  const auto dist = graph::bfs_distances(known_graph, centre);

  std::vector<Vertex> ball;
  for (Vertex v = 0; v < net.num_nodes(); ++v) {
    const int d = dist[static_cast<std::size_t>(v)];
    if (d >= 0 && d <= radius) ball.push_back(v);
  }
  const auto sub = graph::induced_subgraph(known_graph, ball);

  BallView view;
  view.graph = sub.graph;
  view.radius = radius;
  view.ids.reserve(ball.size());
  view.dist.reserve(ball.size());
  for (Vertex local = 0; local < sub.graph.num_vertices(); ++local) {
    const Vertex global = sub.to_parent[static_cast<std::size_t>(local)];
    view.ids.push_back(net.id_of(global));
    view.dist.push_back(dist[static_cast<std::size_t>(global)]);
  }
  view.centre = sub.from_parent[static_cast<std::size_t>(centre)];
  return view;
}

}  // namespace

std::vector<BallView> gather_views(const Network& net, int radius, TrafficStats* stats) {
  if (radius < 0) throw std::invalid_argument("gather_views: radius must be >= 0");
  TrafficStats local_stats;
  FloodingState flooding(net);
  // r+1 rounds deliver every edge with an endpoint at distance <= r, a
  // superset of E(G[N^r[v]]); view_from_edges trims to the exact ball.
  flooding.run(radius + 1, local_stats);
  if (stats != nullptr) *stats += local_stats;

  const auto all_edges = net.topology().edges();
  std::vector<BallView> views;
  views.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (Vertex v = 0; v < net.num_nodes(); ++v) {
    std::vector<graph::Edge> known;
    for (int e : flooding.known_edges(v)) known.push_back(all_edges[static_cast<std::size_t>(e)]);
    views.push_back(view_from_edges(net, v, known, radius));
  }
  return views;
}

BallView cut_view(const Network& net, Vertex centre, int radius) {
  if (radius < 0) throw std::invalid_argument("cut_view: radius must be >= 0");
  return view_from_edges(net, centre, net.topology().edges(), radius);
}

}  // namespace lmds::local
