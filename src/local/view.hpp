#pragma once
// Ball views: what a node actually knows after r+1 rounds of flooding —
// the induced subgraph on N^r[v] with identifiers and distances. Every
// LOCAL algorithm in this library is a pure function of a BallView, which
// makes locality true by construction: the decision code cannot read
// anything the protocol did not deliver.
//
// Extraction is CSR-native (the per-solve hot path): each view is cut
// directly out of the topology CSR restricted to the centre's flooding
// knowledge bitset — a radius-capped BFS over known edges into a reusable
// ViewScratch arena, then a monotone relabelling straight into the view's
// CSR arrays. No per-vertex GraphBuilder, no full-graph BFS, no n-sized
// allocation per centre. The seed implementations survive in detail:: as
// the differential baselines (tests/test_hotpath.cpp, bench_perf).

#include <vector>

#include "graph/bfs.hpp"
#include "local/simulator.hpp"

namespace lmds::local {

/// A radius-r view centred at some node.
struct BallView {
  Graph graph;                ///< induced subgraph on N^r[centre], re-indexed
  std::vector<NodeId> ids;    ///< ids[i] = global identifier of local vertex i
  std::vector<int> dist;      ///< dist[i] = distance from the centre
  Vertex centre = 0;          ///< local index of the view's centre
  int radius = 0;
  /// Local indices sorted by id — the binary-search index behind
  /// local_index_of. Every library extraction path builds it; a
  /// hand-assembled view may call build_id_index() or rely on the linear
  /// fallback. ids are NOT sorted by local index (local order follows the
  /// topology, ids are adversarial), hence the explicit permutation.
  std::vector<Vertex> id_order;

  int num_vertices() const { return graph.num_vertices(); }

  /// Local index of the vertex with the given identifier, or kNoVertex.
  /// O(log k) through id_order when present, O(k) otherwise.
  Vertex local_index_of(NodeId id) const;

  /// (Re)builds id_order from ids. Idempotent; ids must be unique.
  void build_id_index();

  /// Vertices at distance <= k from the centre (k <= radius), sorted.
  std::vector<Vertex> inner_ball(int k) const;
};

/// Reusable per-worker extraction arena: the BFS scratch plus the ball and
/// global->local relabelling buffers. One ViewScratch serves any number of
/// consecutive extractions (it grows to the largest graph seen); it must not
/// be shared between threads concurrently — parallel gathers give each
/// worker its own (see docs/ARCHITECTURE.md "hot path").
struct ViewScratch {
  graph::BfsScratch bfs;
  std::vector<graph::Vertex> ball;      ///< sorted global ball of the last centre
  std::vector<graph::Vertex> local_of;  ///< global -> local; valid where bfs.seen()
};

/// Gathers the radius-r views of all nodes by running r+1 flooding rounds.
/// If stats is non-null, the traffic of this phase is added to it.
/// `threads` shards the per-vertex extraction across a fork-join pool
/// (<= 0 picks hardware_concurrency); the result is bit-identical for every
/// thread count — each view lands in its own preallocated slot.
std::vector<BallView> gather_views(const Network& net, int radius, TrafficStats* stats = nullptr,
                                   int threads = 1);

/// Reference-semantics view that bypasses message passing and cuts the view
/// directly out of the topology. gather_views must agree with this exactly
/// (tested); benches use it when only decisions, not traffic, matter.
BallView cut_view(const Network& net, Vertex centre, int radius);

/// cut_view into a caller-owned scratch — the allocation-free variant for
/// per-vertex loops.
BallView cut_view_into(const Network& net, Vertex centre, int radius, ViewScratch& scratch);

/// All n cut views, extraction sharded across `threads` workers (<= 0 picks
/// hardware_concurrency). Bit-identical to calling cut_view per vertex.
std::vector<BallView> cut_views(const Network& net, int radius, int threads = 1);

namespace detail {

/// Seed implementations, kept verbatim: per-vertex GraphBuilder + full-graph
/// BFS + induced_subgraph. They are the differential baselines the hot path
/// is tested and benched against — never call them from product code.
std::vector<BallView> gather_views_reference(const Network& net, int radius,
                                             TrafficStats* stats = nullptr);
BallView cut_view_reference(const Network& net, Vertex centre, int radius);

/// Undirected edge id of every directed CSR slot of g: slot
/// adjacency_offset(u) + j holds the index of edge {u, neighbors(u)[j]} in
/// g.edges() order — the bridge between the topology CSR and the flooding
/// knowledge bitset, computed once per gather.
std::vector<int> edge_ids_per_slot(const Graph& g);

}  // namespace detail

}  // namespace lmds::local
