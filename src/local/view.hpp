#pragma once
// Ball views: what a node actually knows after r+1 rounds of flooding —
// the induced subgraph on N^r[v] with identifiers and distances. Every
// LOCAL algorithm in this library is a pure function of a BallView, which
// makes locality true by construction: the decision code cannot read
// anything the protocol did not deliver.

#include <vector>

#include "local/simulator.hpp"

namespace lmds::local {

/// A radius-r view centred at some node.
struct BallView {
  Graph graph;                ///< induced subgraph on N^r[centre], re-indexed
  std::vector<NodeId> ids;    ///< ids[i] = global identifier of local vertex i
  std::vector<int> dist;      ///< dist[i] = distance from the centre
  Vertex centre = 0;          ///< local index of the view's centre
  int radius = 0;

  int num_vertices() const { return graph.num_vertices(); }

  /// Local index of the vertex with the given identifier, or kNoVertex.
  Vertex local_index_of(NodeId id) const;

  /// Vertices at distance <= k from the centre (k <= radius), sorted.
  std::vector<Vertex> inner_ball(int k) const;
};

/// Gathers the radius-r views of all nodes by running r+1 flooding rounds.
/// If stats is non-null, the traffic of this phase is added to it.
std::vector<BallView> gather_views(const Network& net, int radius, TrafficStats* stats = nullptr);

/// Reference implementation that bypasses message passing and cuts the view
/// directly out of the topology. gather_views must agree with this exactly
/// (tested); benches use it when only decisions, not traffic, matter.
BallView cut_view(const Network& net, Vertex centre, int radius);

}  // namespace lmds::local
