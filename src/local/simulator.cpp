#include "local/simulator.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

namespace lmds::local {

Network::Network(Graph g) : graph_(std::move(g)) {
  ids_.resize(static_cast<std::size_t>(graph_.num_vertices()));
  for (Vertex v = 0; v < graph_.num_vertices(); ++v) {
    ids_[static_cast<std::size_t>(v)] = static_cast<NodeId>(v);
  }
}

Network::Network(Graph g, std::vector<NodeId> ids) : graph_(std::move(g)), ids_(std::move(ids)) {
  if (static_cast<int>(ids_.size()) != graph_.num_vertices()) {
    throw std::invalid_argument("Network: one id per vertex required");
  }
  std::set<NodeId> unique(ids_.begin(), ids_.end());
  if (static_cast<int>(unique.size()) != graph_.num_vertices()) {
    throw std::invalid_argument("Network: ids must be unique");
  }
}

Network Network::with_random_ids(Graph g, std::mt19937_64& rng) {
  const int n = g.num_vertices();
  std::set<NodeId> chosen;
  std::uniform_int_distribution<NodeId> draw(0, static_cast<NodeId>(1) << 48);
  while (static_cast<int>(chosen.size()) < n) chosen.insert(draw(rng));
  // The set yields the ids sorted; assigning them in that order would make
  // NodeId monotone in vertex index — a hidden correlation no adversarial ID
  // assignment has. Shuffle (deterministically, from the same rng) so the
  // id order carries no information about the topology order.
  std::vector<NodeId> ids(chosen.begin(), chosen.end());
  std::shuffle(ids.begin(), ids.end(), rng);
  return Network(std::move(g), std::move(ids));
}

FloodingState::FloodingState(const Network& net) : net_(&net), edges_(net.topology().edges()) {
  const int n = net.num_nodes();
  words_per_node_ = static_cast<int>((edges_.size() + 63) / 64);
  knowledge_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(words_per_node_), 0);
  // Round 0 knowledge: a node knows its incident edges (it can see its
  // ports; learning neighbour IDs costs the first round in the strictest
  // reading, which is why a radius-r view costs r+1 rounds in our
  // accounting — the +1 pays for edge/ID discovery).
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    row(edges_[e].u)[e / 64] |= std::uint64_t{1} << (e % 64);
    row(edges_[e].v)[e / 64] |= std::uint64_t{1} << (e % 64);
  }
}

void FloodingState::step(TrafficStats& stats) {
  const int n = net_->num_nodes();
  const Graph& g = net_->topology();
  // Synchronous semantics: all sends read the pre-round knowledge. The live
  // buffer is that pre-round state; unions land in next_, and one swap ends
  // the round — the old whole-bitset copy is gone.
  next_.resize(knowledge_.size());
  const auto next_row = [&](Vertex v) {
    return next_.data() + static_cast<std::size_t>(v) * static_cast<std::size_t>(words_per_node_);
  };
  popcounts_.resize(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    const std::uint64_t* from = row(v);
    std::uint64_t popcount = 0;
    for (int w = 0; w < words_per_node_; ++w) popcount += std::popcount(from[w]);
    popcounts_[static_cast<std::size_t>(v)] = popcount;
  }
  std::uint64_t bits_sent = 0;
  for (Vertex u = 0; u < n; ++u) {
    const std::uint64_t* own = row(u);
    std::uint64_t* to = next_row(u);
    std::copy(own, own + words_per_node_, to);
    for (Vertex v : g.neighbors(u)) {
      const std::uint64_t* from = row(v);
      for (int w = 0; w < words_per_node_; ++w) to[w] |= from[w];
      stats.messages += 1;
      bits_sent += popcounts_[static_cast<std::size_t>(v)];
    }
  }
  knowledge_.swap(next_);
  // An edge record is two 48-bit ids ~ 12 bytes.
  stats.bytes += bits_sent * 12;
  stats.rounds += 1;
  ++rounds_done_;
}

void FloodingState::run(int rounds, TrafficStats& stats) {
  for (int i = 0; i < rounds; ++i) step(stats);
}

std::vector<int> FloodingState::known_edges(Vertex v) const {
  std::vector<int> result;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (knows_edge(v, static_cast<int>(e))) result.push_back(static_cast<int>(e));
  }
  return result;
}

}  // namespace lmds::local
