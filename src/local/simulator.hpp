#pragma once
// The LOCAL model simulator (Linial's model, as described in §1 of the
// paper): a synchronous network where, per round, every vertex exchanges
// unbounded messages with its neighbours and performs arbitrary local
// computation. Nodes start knowing only their own O(log n)-bit identifier
// and their incident edges; r+1 rounds of full-knowledge flooding give every
// node exactly the edges with an endpoint at distance <= r, from which it
// can reconstruct G[N^r[v]].
//
// The simulator executes the flooding *as real message passing* (knowledge
// sets grow only through neighbour messages) and accounts rounds, message
// count and message bytes, so the round complexities reported by the benches
// are measured, not asserted.

#include <cstdint>
#include <random>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::local {

using graph::Graph;
using graph::Vertex;

/// Globally unique node identifier (the O(log n)-bit ID of the model).
using NodeId = std::uint64_t;

/// Accumulated communication statistics of a protocol execution.
struct TrafficStats {
  int rounds = 0;
  std::uint64_t messages = 0;  ///< one per directed edge per round
  std::uint64_t bytes = 0;     ///< serialized knowledge actually transmitted

  TrafficStats& operator+=(const TrafficStats& other) {
    rounds += other.rounds;
    messages += other.messages;
    bytes += other.bytes;
    return *this;
  }

  friend bool operator==(const TrafficStats&, const TrafficStats&) = default;
};

/// A network: a topology plus the identifier assignment. Vertices are the
/// simulator's internal indices; NodeIds are what the distributed algorithm
/// actually sees.
class Network {
 public:
  /// Identity identifiers (id of vertex v is v) — convenient for tests.
  explicit Network(Graph g);

  /// Custom identifiers; must be unique.
  Network(Graph g, std::vector<NodeId> ids);

  /// Random distinct identifiers drawn from a large space, mimicking the
  /// adversarial ID assignment of the model.
  static Network with_random_ids(Graph g, std::mt19937_64& rng);

  const Graph& topology() const { return graph_; }
  int num_nodes() const { return graph_.num_vertices(); }
  NodeId id_of(Vertex v) const { return ids_[static_cast<std::size_t>(v)]; }
  const std::vector<NodeId>& ids() const { return ids_; }

 private:
  Graph graph_;
  std::vector<NodeId> ids_;
};

/// Per-node knowledge after flooding: which edges (by index into
/// topology().edges()) and which vertices each node has heard of.
class FloodingState {
 public:
  explicit FloodingState(const Network& net);

  /// Executes one synchronous round: every node broadcasts its entire
  /// knowledge to all neighbours; knowledge sets take unions. Updates stats.
  /// Double-buffered: the pre-round knowledge is read from the live buffer
  /// while unions are written to a second one, then the buffers swap — no
  /// per-round copy of the whole n x words bitset.
  void step(TrafficStats& stats);

  /// Runs `rounds` rounds.
  void run(int rounds, TrafficStats& stats);

  /// Number of completed rounds.
  int rounds_done() const { return rounds_done_; }

  /// True iff node v has heard of edge index e. Inline — this is the test
  /// the CSR-native view extraction runs once per traversed adjacency slot.
  bool knows_edge(Vertex v, int e) const {
    return (row(v)[static_cast<std::size_t>(e) / 64] >>
            (static_cast<std::size_t>(e) % 64)) & 1;
  }

  /// Edge indices known to node v, ascending.
  std::vector<int> known_edges(Vertex v) const;

 private:
  const Network* net_;
  std::vector<graph::Edge> edges_;
  int words_per_node_ = 0;
  std::vector<std::uint64_t> knowledge_;  // num_nodes x words_per_node bitset
  std::vector<std::uint64_t> next_;       // step()'s write buffer, swapped in
  std::vector<std::uint64_t> popcounts_;  // per-sender row popcounts, reused
  int rounds_done_ = 0;

  std::uint64_t* row(Vertex v) {
    return knowledge_.data() + static_cast<std::size_t>(v) * static_cast<std::size_t>(words_per_node_);
  }
  const std::uint64_t* row(Vertex v) const {
    return knowledge_.data() + static_cast<std::size_t>(v) * static_cast<std::size_t>(words_per_node_);
  }
};

}  // namespace lmds::local
