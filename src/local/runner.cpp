#include "local/runner.hpp"

namespace lmds::local {

RunResult run_ball_algorithm(const Network& net, int radius, const BallDecision& decide) {
  RunResult result;
  const auto views = gather_views(net, radius, &result.traffic);
  for (Vertex v = 0; v < net.num_nodes(); ++v) {
    if (decide(views[static_cast<std::size_t>(v)])) result.selected.push_back(v);
  }
  return result;
}

RunResult run_ball_algorithm_fast(const Network& net, int radius, const BallDecision& decide) {
  RunResult result;
  result.traffic.rounds = radius + 1;
  for (Vertex v = 0; v < net.num_nodes(); ++v) {
    if (decide(cut_view(net, v, radius))) result.selected.push_back(v);
  }
  return result;
}

}  // namespace lmds::local
