#include "local/runner.hpp"

#include "common/parallel.hpp"

namespace lmds::local {

namespace {

// Slot-per-vertex merge: workers fill disjoint ranges of `joined`, then the
// selected list is collected in vertex order — identical for any thread
// count.
std::vector<Vertex> collect(const std::vector<char>& joined) {
  std::vector<Vertex> selected;
  for (Vertex v = 0; v < static_cast<Vertex>(joined.size()); ++v) {
    if (joined[static_cast<std::size_t>(v)]) selected.push_back(v);
  }
  return selected;
}

}  // namespace

RunResult run_ball_algorithm(const Network& net, int radius, const BallDecision& decide,
                             int threads) {
  RunResult result;
  const auto views = gather_views(net, radius, &result.traffic, threads);
  std::vector<char> joined(static_cast<std::size_t>(net.num_nodes()), 0);
  common::parallel_for(net.num_nodes(), threads, [&](int begin, int end) {
    for (Vertex v = begin; v < end; ++v) {
      joined[static_cast<std::size_t>(v)] = decide(views[static_cast<std::size_t>(v)]) ? 1 : 0;
    }
  });
  result.selected = collect(joined);
  return result;
}

RunResult run_ball_algorithm_fast(const Network& net, int radius, const BallDecision& decide,
                                  int threads) {
  RunResult result;
  result.traffic.rounds = radius + 1;
  std::vector<char> joined(static_cast<std::size_t>(net.num_nodes()), 0);
  common::parallel_for(net.num_nodes(), threads, [&](int begin, int end) {
    ViewScratch scratch;
    for (Vertex v = begin; v < end; ++v) {
      joined[static_cast<std::size_t>(v)] =
          decide(cut_view_into(net, v, radius, scratch)) ? 1 : 0;
    }
  });
  result.selected = collect(joined);
  return result;
}

}  // namespace lmds::local
