#include "solve/greedy.hpp"

#include <algorithm>

namespace lmds::solve {

std::vector<Vertex> greedy_mds(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<char> dominated(static_cast<std::size_t>(n), 0);
  int remaining = n;
  std::vector<Vertex> result;
  while (remaining > 0) {
    Vertex best = graph::kNoVertex;
    int best_gain = 0;
    for (Vertex v = 0; v < n; ++v) {
      int gain = dominated[static_cast<std::size_t>(v)] ? 0 : 1;
      for (Vertex w : g.neighbors(v)) {
        if (!dominated[static_cast<std::size_t>(w)]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    result.push_back(best);
    if (!dominated[static_cast<std::size_t>(best)]) {
      dominated[static_cast<std::size_t>(best)] = 1;
      --remaining;
    }
    for (Vertex w : g.neighbors(best)) {
      if (!dominated[static_cast<std::size_t>(w)]) {
        dominated[static_cast<std::size_t>(w)] = 1;
        --remaining;
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<Vertex> greedy_mvc(const Graph& g) {
  std::vector<char> matched(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<Vertex> cover;
  for (const graph::Edge e : g.edges()) {
    if (!matched[static_cast<std::size_t>(e.u)] && !matched[static_cast<std::size_t>(e.v)]) {
      matched[static_cast<std::size_t>(e.u)] = 1;
      matched[static_cast<std::size_t>(e.v)] = 1;
      cover.push_back(e.u);
      cover.push_back(e.v);
    }
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

}  // namespace lmds::solve
