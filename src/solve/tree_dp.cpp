#include "solve/tree_dp.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace lmds::solve {

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

// States of the classic domination DP on rooted trees:
//   0 — v in the dominating set,
//   1 — v not in the set, dominated by one of its children,
//   2 — v not in the set and not yet dominated (the parent must take it).
enum : int { kTaken = 0, kDominatedByChild = 1, kNeedsParent = 2 };

}  // namespace

std::vector<Vertex> tree_mds(const Graph& g) {
  const int n = g.num_vertices();
  const auto comps = graph::connected_components(g);
  if (g.num_edges() != n - comps.count) {
    throw std::invalid_argument("tree_mds: graph has a cycle");
  }
  if (n == 0) return {};

  std::vector<std::array<int, 3>> dp(static_cast<std::size_t>(n), {kInf, kInf, kInf});
  std::vector<Vertex> parent(static_cast<std::size_t>(n), graph::kNoVertex);
  std::vector<Vertex> order;  // BFS order per component; processed in reverse
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<Vertex> roots;

  for (Vertex r = 0; r < n; ++r) {
    if (visited[static_cast<std::size_t>(r)]) continue;
    roots.push_back(r);
    visited[static_cast<std::size_t>(r)] = 1;
    std::size_t head = order.size();
    order.push_back(r);
    while (head < order.size()) {
      const Vertex u = order[head++];
      for (Vertex w : g.neighbors(u)) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          parent[static_cast<std::size_t>(w)] = u;
          order.push_back(w);
        }
      }
    }
  }

  // Bottom-up DP.
  for (std::size_t i = order.size(); i-- > 0;) {
    const Vertex v = order[i];
    int taken = 1;
    int needs_parent = 0;
    int dominated = 0;
    int best_switch = kInf;  // cheapest price to force one child into the set
    bool has_child = false;
    for (Vertex c : g.neighbors(v)) {
      if (parent[static_cast<std::size_t>(c)] != v) continue;
      has_child = true;
      const auto& d = dp[static_cast<std::size_t>(c)];
      taken += std::min({d[kTaken], d[kDominatedByChild], d[kNeedsParent]});
      const int not_needing = std::min(d[kTaken], d[kDominatedByChild]);
      needs_parent += not_needing;
      dominated += not_needing;
      best_switch = std::min(best_switch, d[kTaken] - not_needing);
    }
    dp[static_cast<std::size_t>(v)][kTaken] = taken;
    // A childless vertex can still wait for its parent (cost 0); the root
    // never selects kNeedsParent, so isolated vertices are safe.
    dp[static_cast<std::size_t>(v)][kNeedsParent] = needs_parent;
    dp[static_cast<std::size_t>(v)][kDominatedByChild] =
        has_child ? dominated + best_switch : kInf;
  }

  // Top-down reconstruction.
  std::vector<int> state(static_cast<std::size_t>(n), -1);
  std::vector<Vertex> result;
  for (Vertex r : roots) {
    const auto& d = dp[static_cast<std::size_t>(r)];
    state[static_cast<std::size_t>(r)] = d[kTaken] <= d[kDominatedByChild] ? kTaken
                                                                           : kDominatedByChild;
  }
  for (const Vertex v : order) {
    const int sv = state[static_cast<std::size_t>(v)];
    if (sv == kTaken) result.push_back(v);

    // Decide children's states.
    Vertex forced = graph::kNoVertex;
    if (sv == kDominatedByChild) {
      // Re-find the cheapest child to force into the set.
      int best = kInf;
      for (Vertex c : g.neighbors(v)) {
        if (parent[static_cast<std::size_t>(c)] != v) continue;
        const auto& d = dp[static_cast<std::size_t>(c)];
        const int price = d[kTaken] - std::min(d[kTaken], d[kDominatedByChild]);
        if (price < best) {
          best = price;
          forced = c;
        }
      }
    }
    for (Vertex c : g.neighbors(v)) {
      if (parent[static_cast<std::size_t>(c)] != v) continue;
      const auto& d = dp[static_cast<std::size_t>(c)];
      int sc;
      if (sv == kTaken) {
        // Child may be anything, pick the cheapest.
        sc = kTaken;
        if (d[kDominatedByChild] < d[sc]) sc = kDominatedByChild;
        if (d[kNeedsParent] < d[sc]) sc = kNeedsParent;
      } else if (c == forced) {
        sc = kTaken;
      } else {
        sc = d[kTaken] <= d[kDominatedByChild] ? kTaken : kDominatedByChild;
      }
      state[static_cast<std::size_t>(c)] = sc;
    }
  }

  std::sort(result.begin(), result.end());
  return result;
}

int tree_mds_size(const Graph& g) { return static_cast<int>(tree_mds(g).size()); }

}  // namespace lmds::solve
