#pragma once
// Exact minimum vertex cover via branch & bound with classic reductions
// (degree-0/1 elimination, matching lower bound, max-degree branching).
// Used as ground truth for the MVC variants of Theorems 4.1 and 4.4.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::solve {

using graph::Graph;
using graph::Vertex;

/// Exact minimum vertex cover of g.
std::vector<Vertex> exact_mvc(const Graph& g);

/// |exact_mvc(g)|.
int mvc_size(const Graph& g);

/// Exact minimum set of vertices covering the given edge subset of g
/// (endpoints of uncovered edges are the only useful candidates). Used by
/// the residual brute-force step of the Algorithm-1 MVC variant.
std::vector<Vertex> exact_edge_cover_vertices(const Graph& g, std::span<const graph::Edge> edges);

}  // namespace lmds::solve
