#pragma once
// Sequential approximation baselines: the classical ln(n)-greedy for
// dominating set and the maximal-matching 2-approximation for vertex cover.
// These are centralized reference points the benches print next to the
// paper's LOCAL algorithms.

#include <vector>

#include "graph/graph.hpp"

namespace lmds::solve {

using graph::Graph;
using graph::Vertex;

/// Greedy dominating set: repeatedly add the vertex covering the most
/// still-undominated vertices. (1 + ln n)-approximate.
std::vector<Vertex> greedy_mds(const Graph& g);

/// Greedy vertex cover: both endpoints of a maximal matching. 2-approximate.
std::vector<Vertex> greedy_mvc(const Graph& g);

}  // namespace lmds::solve
