#pragma once
// Exact minimum (B-)dominating set via set-cover branch & bound.
//
// This is the sequential solver behind two different uses in the paper:
//  * the brute-force step of Algorithm 1/2 ("compute an optimal dominating
//    set of all other undominated vertices in each component") — components
//    there have bounded weak diameter (Lemma 4.2) so exact solving is cheap;
//  * the harness's ground truth MDS(G) for measuring true approximation
//    ratios on generated instances.
//
// The engine is a classic set-cover branch & bound: reduce (unit targets,
// subsumed candidates), bound (greedy upper bound, fractional-free lower
// bound from the most-constrained target), branch on the uncovered target
// with the fewest covering candidates.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::solve {

using graph::Graph;
using graph::Vertex;

/// Generic exact minimum set cover. `sets[i]` lists the elements of
/// 0..universe-1 covered by set i. Returns indices of a minimum family whose
/// union is the whole universe. Throws std::runtime_error if no cover exists
/// or if the search exceeds `max_nodes` branch-and-bound nodes.
std::vector<int> minimum_set_cover(const std::vector<std::vector<int>>& sets, int universe,
                                   std::uint64_t max_nodes = 50'000'000);

/// Exact minimum dominating set of g.
std::vector<Vertex> exact_mds(const Graph& g);

/// |exact_mds(g)| — convenience, the MDS(G) of the paper.
int mds_size(const Graph& g);

/// Exact MDS(G, B): a minimum set S ⊆ N[B] such that every vertex of B is in
/// S or adjacent to S (Section 2). Candidates outside N[B] are never needed.
std::vector<Vertex> exact_b_domination(const Graph& g, std::span<const Vertex> b);

/// Exact minimum S ⊆ candidates dominating all of targets. Throws
/// std::runtime_error when the instance is infeasible.
std::vector<Vertex> exact_set_domination(const Graph& g, std::span<const Vertex> targets,
                                         std::span<const Vertex> candidates);

}  // namespace lmds::solve
