#pragma once
// Combinatorial lower bounds used when exact solving is out of reach:
//  * 2-packing: vertices pairwise at distance >= 3 have disjoint closed
//    neighbourhoods, so any dominating set needs one vertex per packed
//    vertex (this is exactly the disjointness mechanism of Lemma 5.2);
//  * maximal matching: lower bound on vertex cover;
//  * degree bound: MDS(G) >= n / (Δ + 1) (footnote 4 of the paper, the
//    argument behind the 0-round t-approximation on K_{1,t}-minor-free
//    graphs).

#include <vector>

#include "graph/graph.hpp"

namespace lmds::solve {

using graph::Graph;
using graph::Vertex;

/// Greedy maximal 2-packing (distance >= 3 apart). Its size lower-bounds
/// MDS(G).
std::vector<Vertex> two_packing(const Graph& g);

/// |two_packing(g)| — a lower bound on MDS(G).
int mds_lower_bound(const Graph& g);

/// Size of a greedy maximal matching — a lower bound on MVC(G).
int mvc_lower_bound(const Graph& g);

/// ceil(n / (Δ+1)) — the degree lower bound on MDS(G).
int mds_degree_lower_bound(const Graph& g);

}  // namespace lmds::solve
