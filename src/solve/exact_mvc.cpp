#include "solve/exact_mvc.hpp"

#include <algorithm>
#include <stdexcept>

namespace lmds::solve {

namespace {

// Vertex cover branch & bound over an explicit edge list. Works on the
// "uncovered edges" abstraction so it serves both exact_mvc and
// exact_edge_cover_vertices.
class VertexCoverSolver {
 public:
  VertexCoverSolver(int n, std::vector<graph::Edge> edges) : n_(n), edges_(std::move(edges)) {
    adj_.resize(static_cast<std::size_t>(n_));
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      adj_[static_cast<std::size_t>(edges_[i].u)].push_back(static_cast<int>(i));
      adj_[static_cast<std::size_t>(edges_[i].v)].push_back(static_cast<int>(i));
    }
    edge_covered_.assign(edges_.size(), 0);
    in_cover_.assign(static_cast<std::size_t>(n_), 0);
    uncovered_ = static_cast<int>(edges_.size());
  }

  std::vector<Vertex> solve() {
    best_ = greedy();
    std::vector<Vertex> chosen;
    branch(chosen);
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  // 2-approximate greedy (take both endpoints of a maximal matching) as the
  // initial upper bound.
  std::vector<Vertex> greedy() const {
    std::vector<char> matched(static_cast<std::size_t>(n_), 0);
    std::vector<Vertex> cover;
    for (const graph::Edge& e : edges_) {
      if (!matched[static_cast<std::size_t>(e.u)] && !matched[static_cast<std::size_t>(e.v)]) {
        matched[static_cast<std::size_t>(e.u)] = 1;
        matched[static_cast<std::size_t>(e.v)] = 1;
        cover.push_back(e.u);
        cover.push_back(e.v);
      }
    }
    return cover;
  }

  int live_degree(Vertex v) const {
    int deg = 0;
    for (int ei : adj_[static_cast<std::size_t>(v)]) {
      if (!edge_covered_[static_cast<std::size_t>(ei)]) ++deg;
    }
    return deg;
  }

  void take(Vertex v, std::vector<Vertex>& chosen, std::vector<int>& newly_covered) {
    chosen.push_back(v);
    in_cover_[static_cast<std::size_t>(v)] = 1;
    for (int ei : adj_[static_cast<std::size_t>(v)]) {
      if (!edge_covered_[static_cast<std::size_t>(ei)]) {
        edge_covered_[static_cast<std::size_t>(ei)] = 1;
        newly_covered.push_back(ei);
        --uncovered_;
      }
    }
  }

  void untake(Vertex v, std::vector<Vertex>& chosen, const std::vector<int>& newly_covered) {
    chosen.pop_back();
    in_cover_[static_cast<std::size_t>(v)] = 0;
    for (int ei : newly_covered) {
      edge_covered_[static_cast<std::size_t>(ei)] = 0;
      ++uncovered_;
    }
  }

  // Maximal matching on uncovered edges: its size lower-bounds the cover.
  int matching_lower_bound() const {
    std::vector<char> used(static_cast<std::size_t>(n_), 0);
    int matching = 0;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (edge_covered_[i]) continue;
      const graph::Edge& e = edges_[i];
      if (!used[static_cast<std::size_t>(e.u)] && !used[static_cast<std::size_t>(e.v)]) {
        used[static_cast<std::size_t>(e.u)] = 1;
        used[static_cast<std::size_t>(e.v)] = 1;
        ++matching;
      }
    }
    return matching;
  }

  void branch(std::vector<Vertex>& chosen) {
    if (uncovered_ == 0) {
      if (chosen.size() < best_.size()) best_ = chosen;
      return;
    }
    if (chosen.size() + static_cast<std::size_t>(matching_lower_bound()) >= best_.size()) return;

    // Degree-1 reduction: an uncovered pendant edge is optimally covered by
    // the endpoint of larger live degree.
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (edge_covered_[i]) continue;
      const graph::Edge& e = edges_[i];
      const int du = live_degree(e.u);
      const int dv = live_degree(e.v);
      if (du == 1 || dv == 1) {
        const Vertex pick = (du == 1) ? e.v : e.u;
        std::vector<int> newly;
        take(pick, chosen, newly);
        branch(chosen);
        untake(pick, chosen, newly);
        return;
      }
    }

    // Branch on a vertex of maximum live degree: either it is in the cover,
    // or all its live neighbours are.
    Vertex pivot = graph::kNoVertex;
    int max_deg = 0;
    for (Vertex v = 0; v < n_; ++v) {
      const int d = live_degree(v);
      if (d > max_deg) {
        max_deg = d;
        pivot = v;
      }
    }

    {
      std::vector<int> newly;
      take(pivot, chosen, newly);
      branch(chosen);
      untake(pivot, chosen, newly);
    }
    {
      // Exclude pivot: every live edge at pivot must be covered by the other
      // endpoint.
      std::vector<Vertex> others;
      for (int ei : adj_[static_cast<std::size_t>(pivot)]) {
        if (edge_covered_[static_cast<std::size_t>(ei)]) continue;
        const graph::Edge& e = edges_[static_cast<std::size_t>(ei)];
        others.push_back(e.u == pivot ? e.v : e.u);
      }
      std::sort(others.begin(), others.end());
      others.erase(std::unique(others.begin(), others.end()), others.end());
      std::vector<std::vector<int>> undo(others.size());
      for (std::size_t i = 0; i < others.size(); ++i) take(others[i], chosen, undo[i]);
      branch(chosen);
      for (std::size_t i = others.size(); i-- > 0;) untake(others[i], chosen, undo[i]);
    }
  }

  int n_;
  std::vector<graph::Edge> edges_;
  std::vector<std::vector<int>> adj_;  // vertex -> incident edge indices
  std::vector<char> edge_covered_;
  std::vector<char> in_cover_;
  int uncovered_ = 0;
  std::vector<Vertex> best_;
};

}  // namespace

std::vector<Vertex> exact_mvc(const Graph& g) {
  VertexCoverSolver solver(g.num_vertices(), g.edges());
  return solver.solve();
}

int mvc_size(const Graph& g) { return static_cast<int>(exact_mvc(g).size()); }

std::vector<Vertex> exact_edge_cover_vertices(const Graph& g,
                                              std::span<const graph::Edge> edges) {
  std::vector<graph::Edge> list(edges.begin(), edges.end());
  for (const graph::Edge& e : list) {
    if (!g.has_edge(e.u, e.v)) {
      throw std::invalid_argument("exact_edge_cover_vertices: not an edge of g");
    }
  }
  VertexCoverSolver solver(g.num_vertices(), std::move(list));
  return solver.solve();
}

}  // namespace lmds::solve
