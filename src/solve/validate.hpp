#pragma once
// Solution validation predicates shared by solvers, tests and benches.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::solve {

using graph::Graph;
using graph::Vertex;

/// True iff every vertex of g is in s or adjacent to a vertex of s.
inline bool is_dominating_set(const Graph& g, std::span<const Vertex> s) {
  std::vector<char> dominated(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : s) {
    dominated[static_cast<std::size_t>(v)] = 1;
    for (Vertex w : g.neighbors(v)) dominated[static_cast<std::size_t>(w)] = 1;
  }
  for (char d : dominated) {
    if (!d) return false;
  }
  return true;
}

/// True iff every vertex of b is in s or adjacent to a vertex of s
/// (the "B-dominating" notion of Section 2).
inline bool is_b_dominating_set(const Graph& g, std::span<const Vertex> s,
                                std::span<const Vertex> b) {
  std::vector<char> dominated(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : s) {
    dominated[static_cast<std::size_t>(v)] = 1;
    for (Vertex w : g.neighbors(v)) dominated[static_cast<std::size_t>(w)] = 1;
  }
  for (Vertex v : b) {
    if (!dominated[static_cast<std::size_t>(v)]) return false;
  }
  return true;
}

/// True iff every edge of g has an endpoint in s.
inline bool is_vertex_cover(const Graph& g, std::span<const Vertex> s) {
  std::vector<char> in(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : s) in[static_cast<std::size_t>(v)] = 1;
  for (const graph::Edge e : g.edges()) {
    if (!in[static_cast<std::size_t>(e.u)] && !in[static_cast<std::size_t>(e.v)]) return false;
  }
  return true;
}

}  // namespace lmds::solve
