#include "solve/bounds.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace lmds::solve {

std::vector<Vertex> two_packing(const Graph& g) {
  // blocked[v] == 1 when v is within distance 2 of an already packed vertex.
  std::vector<char> blocked(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<Vertex> packed;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (blocked[static_cast<std::size_t>(v)]) continue;
    packed.push_back(v);
    for (Vertex w : graph::ball(g, v, 2)) blocked[static_cast<std::size_t>(w)] = 1;
  }
  return packed;
}

int mds_lower_bound(const Graph& g) { return static_cast<int>(two_packing(g).size()); }

int mvc_lower_bound(const Graph& g) {
  std::vector<char> matched(static_cast<std::size_t>(g.num_vertices()), 0);
  int matching = 0;
  for (const graph::Edge e : g.edges()) {
    if (!matched[static_cast<std::size_t>(e.u)] && !matched[static_cast<std::size_t>(e.v)]) {
      matched[static_cast<std::size_t>(e.u)] = 1;
      matched[static_cast<std::size_t>(e.v)] = 1;
      ++matching;
    }
  }
  return matching;
}

int mds_degree_lower_bound(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0) return 0;
  int max_degree = 0;
  for (Vertex v = 0; v < n; ++v) max_degree = std::max(max_degree, g.degree(v));
  return (n + max_degree) / (max_degree + 1);
}

}  // namespace lmds::solve
