#pragma once
// Linear-time exact minimum dominating set on forests via the classic
// three-state dynamic program. Cross-checks the branch & bound solver in
// tests and provides ground truth on large tree instances in benches.

#include <vector>

#include "graph/graph.hpp"

namespace lmds::solve {

using graph::Graph;
using graph::Vertex;

/// Exact MDS of a forest. Throws std::invalid_argument if g has a cycle.
std::vector<Vertex> tree_mds(const Graph& g);

/// |tree_mds(g)|.
int tree_mds_size(const Graph& g);

}  // namespace lmds::solve
