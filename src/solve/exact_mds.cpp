#include "solve/exact_mds.hpp"

#include <algorithm>
#include <stdexcept>

namespace lmds::solve {

namespace {

// Branch-and-bound state for minimum set cover.
class SetCoverSolver {
 public:
  SetCoverSolver(const std::vector<std::vector<int>>& sets, int universe, std::uint64_t max_nodes)
      : sets_(sets), universe_(universe), max_nodes_(max_nodes) {
    covering_.resize(static_cast<std::size_t>(universe));
    for (int s = 0; s < static_cast<int>(sets_.size()); ++s) {
      for (int e : sets_[static_cast<std::size_t>(s)]) {
        if (e < 0 || e >= universe) throw std::invalid_argument("set cover: element out of range");
        covering_[static_cast<std::size_t>(e)].push_back(s);
      }
    }
    for (int e = 0; e < universe; ++e) {
      if (covering_[static_cast<std::size_t>(e)].empty()) {
        throw std::runtime_error("set cover: element " + std::to_string(e) + " uncoverable");
      }
    }
    cover_count_.assign(static_cast<std::size_t>(universe), 0);
    uncovered_ = universe;
  }

  std::vector<int> solve() {
    best_ = greedy();
    std::vector<int> chosen;
    branch(chosen);
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  // Greedy cover used as the initial upper bound (the universe is coverable,
  // so greedy always terminates).
  std::vector<int> greedy() {
    std::vector<char> covered(static_cast<std::size_t>(universe_), 0);
    int remaining = universe_;
    std::vector<int> result;
    while (remaining > 0) {
      int best_set = -1;
      int best_gain = 0;
      for (int s = 0; s < static_cast<int>(sets_.size()); ++s) {
        int gain = 0;
        for (int e : sets_[static_cast<std::size_t>(s)]) {
          if (!covered[static_cast<std::size_t>(e)]) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_set = s;
        }
      }
      result.push_back(best_set);
      for (int e : sets_[static_cast<std::size_t>(best_set)]) {
        if (!covered[static_cast<std::size_t>(e)]) {
          covered[static_cast<std::size_t>(e)] = 1;
          --remaining;
        }
      }
    }
    return result;
  }

  void choose(int s, std::vector<int>& chosen) {
    chosen.push_back(s);
    for (int e : sets_[static_cast<std::size_t>(s)]) {
      if (cover_count_[static_cast<std::size_t>(e)]++ == 0) --uncovered_;
    }
  }

  void unchoose(int s, std::vector<int>& chosen) {
    chosen.pop_back();
    for (int e : sets_[static_cast<std::size_t>(s)]) {
      if (--cover_count_[static_cast<std::size_t>(e)] == 0) ++uncovered_;
    }
  }

  // Lower bound: a greedy packing of uncovered elements whose candidate sets
  // are pairwise disjoint — each packed element needs its own set. Mirrors
  // the disjoint-neighbourhood argument of Lemma 5.2.
  int lower_bound() const {
    std::vector<char> used_set(sets_.size(), 0);
    int packed = 0;
    for (int e = 0; e < universe_; ++e) {
      if (cover_count_[static_cast<std::size_t>(e)] > 0) continue;
      bool disjoint = true;
      for (int s : covering_[static_cast<std::size_t>(e)]) {
        if (used_set[static_cast<std::size_t>(s)]) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) continue;
      for (int s : covering_[static_cast<std::size_t>(e)]) {
        used_set[static_cast<std::size_t>(s)] = 1;
      }
      ++packed;
    }
    return packed;
  }

  void branch(std::vector<int>& chosen) {
    if (++nodes_ > max_nodes_) throw std::runtime_error("set cover: node budget exceeded");
    if (uncovered_ == 0) {
      if (chosen.size() < best_.size()) best_ = chosen;
      return;
    }
    if (chosen.size() + 1 >= best_.size()) return;  // even one more set cannot improve
    if (chosen.size() + static_cast<std::size_t>(lower_bound()) >= best_.size()) return;

    // Pick the uncovered element with the fewest candidate sets.
    int pivot = -1;
    std::size_t fewest = sets_.size() + 1;
    for (int e = 0; e < universe_; ++e) {
      if (cover_count_[static_cast<std::size_t>(e)] > 0) continue;
      const auto k = covering_[static_cast<std::size_t>(e)].size();
      if (k < fewest) {
        fewest = k;
        pivot = e;
      }
    }

    // Branch on which candidate covers the pivot, biggest coverage first.
    std::vector<int> candidates = covering_[static_cast<std::size_t>(pivot)];
    std::sort(candidates.begin(), candidates.end(), [this](int a, int b) {
      return sets_[static_cast<std::size_t>(a)].size() > sets_[static_cast<std::size_t>(b)].size();
    });
    for (int s : candidates) {
      choose(s, chosen);
      branch(chosen);
      unchoose(s, chosen);
    }
  }

  const std::vector<std::vector<int>>& sets_;
  int universe_;
  std::uint64_t max_nodes_;
  std::uint64_t nodes_ = 0;
  std::vector<std::vector<int>> covering_;  // element -> sets covering it
  std::vector<int> cover_count_;
  int uncovered_ = 0;
  std::vector<int> best_;
};

}  // namespace

std::vector<int> minimum_set_cover(const std::vector<std::vector<int>>& sets, int universe,
                                   std::uint64_t max_nodes) {
  if (universe == 0) return {};
  SetCoverSolver solver(sets, universe, max_nodes);
  return solver.solve();
}

std::vector<Vertex> exact_set_domination(const Graph& g, std::span<const Vertex> targets,
                                         std::span<const Vertex> candidates) {
  // Map targets to dense element ids.
  std::vector<int> element(static_cast<std::size_t>(g.num_vertices()), -1);
  int universe = 0;
  for (Vertex t : targets) {
    if (!g.has_vertex(t)) throw std::invalid_argument("exact_set_domination: bad target");
    if (element[static_cast<std::size_t>(t)] == -1) {
      element[static_cast<std::size_t>(t)] = universe++;
    }
  }
  std::vector<std::vector<int>> sets;
  std::vector<Vertex> set_vertex;
  sets.reserve(candidates.size());
  for (Vertex c : candidates) {
    if (!g.has_vertex(c)) throw std::invalid_argument("exact_set_domination: bad candidate");
    std::vector<int> covered;
    for (Vertex w : g.closed_neighborhood(c)) {
      const int e = element[static_cast<std::size_t>(w)];
      if (e != -1) covered.push_back(e);
    }
    if (covered.empty()) continue;  // useless candidate
    sets.push_back(std::move(covered));
    set_vertex.push_back(c);
  }
  const auto picked = minimum_set_cover(sets, universe);
  std::vector<Vertex> result;
  result.reserve(picked.size());
  for (int s : picked) result.push_back(set_vertex[static_cast<std::size_t>(s)]);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<Vertex> exact_b_domination(const Graph& g, std::span<const Vertex> b) {
  // Candidates can be restricted to N[B] without loss (Section 2).
  std::vector<char> in_candidates(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : b) {
    in_candidates[static_cast<std::size_t>(v)] = 1;
    for (Vertex w : g.neighbors(v)) in_candidates[static_cast<std::size_t>(w)] = 1;
  }
  std::vector<Vertex> candidates;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (in_candidates[static_cast<std::size_t>(v)]) candidates.push_back(v);
  }
  return exact_set_domination(g, b, candidates);
}

std::vector<Vertex> exact_mds(const Graph& g) {
  std::vector<Vertex> all(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  return exact_set_domination(g, all, all);
}

int mds_size(const Graph& g) { return static_cast<int>(exact_mds(g).size()); }

}  // namespace lmds::solve
