#include "ding/generators.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace lmds::ding {

Graph random_cactus_of_structures(const CactusConfig& cfg, std::mt19937_64& rng) {
  if (cfg.t < 3) throw std::invalid_argument("cactus: t >= 3 required");
  if (cfg.pieces < 1) throw std::invalid_argument("cactus: pieces >= 1 required");
  if (!(cfg.use_fans || cfg.use_strips || cfg.use_theta_links || cfg.use_cycles)) {
    throw std::invalid_argument("cactus: no structure kind enabled");
  }

  graph::GraphBuilder b(1);
  std::vector<Vertex> glue_points{0};  // vertices future pieces may glue onto
  std::uniform_int_distribution<int> piece_size(3, std::max(3, cfg.max_piece_size));

  std::vector<int> kinds;
  if (cfg.use_fans) kinds.push_back(0);
  // Strips are only certified K_{2,5}-minor-free [8], so they are eligible
  // pieces only when the requested excluded minor is at least K_{2,5}.
  if (cfg.use_strips && cfg.t >= 5) kinds.push_back(1);
  if (cfg.use_theta_links) kinds.push_back(2);
  if (cfg.use_cycles) kinds.push_back(3);
  if (kinds.empty()) throw std::invalid_argument("cactus: no structure kind usable for this t");
  std::uniform_int_distribution<std::size_t> pick_kind(0, kinds.size() - 1);

  for (int piece = 0; piece < cfg.pieces; ++piece) {
    std::uniform_int_distribution<std::size_t> pick_glue(0, glue_points.size() - 1);
    const Vertex glue = glue_points[pick_glue(rng)];
    const int size = piece_size(rng);
    const int kind = kinds[pick_kind(rng)];
    const Vertex base = static_cast<Vertex>(b.num_vertices());
    switch (kind) {
      case 0: {  // fan glued at its centre: centre = glue, fresh path
        const int length = std::max(1, size - 2);
        std::vector<Vertex> path;
        for (int i = 0; i <= length; ++i) path.push_back(base + static_cast<Vertex>(i));
        b.add_path(path);
        for (Vertex p : path) b.add_edge(glue, p);
        for (Vertex p : path) glue_points.push_back(p);
        break;
      }
      case 1: {  // strip glued at one corner
        const int length = std::max(2, size / 2);
        const Graph s = strip(length, false);
        // Corner t_0 of the strip is identified with glue; everything else
        // is fresh, shifted by (base - 1) with an offset fix for vertex 0.
        const auto remap = [&](Vertex v) -> Vertex {
          if (v == 0) return glue;
          return base + v - 1;
        };
        for (const graph::Edge e : s.edges()) b.add_edge(remap(e.u), remap(e.v));
        for (Vertex v = 1; v < s.num_vertices(); ++v) glue_points.push_back(remap(v));
        break;
      }
      case 2: {  // theta bundle: glue --(t-1 parallel 2-paths)-- fresh hub
        const Vertex hub = base;
        for (int p = 0; p < cfg.t - 1; ++p) {
          const Vertex mid = base + 1 + static_cast<Vertex>(p);
          b.add_edge(glue, mid);
          b.add_edge(mid, hub);
        }
        glue_points.push_back(hub);
        break;
      }
      default: {  // cycle through glue
        const int length = std::max(3, size);
        std::vector<Vertex> cyc{glue};
        for (int i = 0; i + 1 < length; ++i) cyc.push_back(base + static_cast<Vertex>(i));
        b.add_cycle(cyc);
        for (std::size_t i = 1; i < cyc.size(); ++i) glue_points.push_back(cyc[i]);
        break;
      }
    }
  }
  return b.build();
}

Graph random_cactus_of_structures(const CactusConfig& cfg, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_cactus_of_structures(cfg, rng);
}

Augmentation random_augmentation(const AugmentationConfig& cfg, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_augmentation(cfg, rng);
}

Augmentation random_augmentation(const AugmentationConfig& cfg, std::mt19937_64& rng) {
  if (cfg.base_vertices < 5) throw std::invalid_argument("augmentation: base too small");
  const Graph base = graph::gen::random_connected(cfg.base_vertices, cfg.base_extra_edges, rng);
  AugmentationBuilder builder(base);
  Augmentation result;
  std::uniform_int_distribution<int> length(cfg.min_length, std::max(cfg.min_length, cfg.max_length));

  // Pick distinct base vertices for each attachment so the corner-sharing
  // rule is trivially satisfied (except fan centres, which may repeat).
  std::vector<Vertex> pool(static_cast<std::size_t>(cfg.base_vertices));
  for (Vertex v = 0; v < cfg.base_vertices; ++v) pool[static_cast<std::size_t>(v)] = v;
  std::shuffle(pool.begin(), pool.end(), rng);
  std::size_t cursor = 0;
  const auto draw = [&]() -> Vertex {
    if (cursor >= pool.size()) {
      throw std::invalid_argument("augmentation: base too small for requested attachments");
    }
    return pool[cursor++];
  };

  for (int f = 0; f < cfg.fans; ++f) {
    const Vertex centre = draw();
    const Vertex front = draw();
    const Vertex back = draw();
    const int len = length(rng);
    builder.attach_fan(centre, front, back, len);
    result.structure_corners.push_back({centre, front, back});
    result.structure_lengths.push_back(len);
  }
  for (int s = 0; s < cfg.strips; ++s) {
    const std::array<Vertex, 4> corners{draw(), draw(), draw(), draw()};
    const int len = std::max(2, length(rng));
    builder.attach_strip(corners, len, cfg.crossed_strips);
    result.structure_corners.push_back({corners.begin(), corners.end()});
    result.structure_lengths.push_back(len);
  }
  result.graph = builder.build();
  return result;
}

}  // namespace lmds::ding
