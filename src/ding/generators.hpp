#pragma once
// Certified K_{2,t}-minor-free workload generators built from Ding's
// structures.
//
// Certification strategy: K_{2,t} is 2-connected for t >= 2, so any K_{2,t}
// minor of a graph lives inside one of its blocks. A 1-sum (vertex gluing)
// of K_{2,t}-minor-free pieces is therefore K_{2,t}-minor-free. The pieces
// used here, with their guaranteed excluded minors:
//   * fans           — K_{2,3}-minor-free (verified in tests),
//   * strips         — K_{2,5}-minor-free [8],
//   * theta links    — a bundle of p parallel length-2 paths between two
//                      hubs is K_{2,p+1}-minor-free,
//   * cycles, edges  — K_{2,2}/K_{2,3}-minor-free.
// random_cactus_of_structures glues such pieces along a random tree skeleton
// at single shared vertices, so the result excludes K_{2,t} for
// t = max piece parameter + 1.

#include <cstdint>
#include <random>
#include <vector>

#include "ding/structures.hpp"
#include "graph/graph.hpp"

namespace lmds::ding {

/// Which structures random_cactus_of_structures may use.
struct CactusConfig {
  int pieces = 10;          ///< number of glued structures
  int max_piece_size = 12;  ///< cap on vertices added per piece
  int t = 5;                ///< certified excluded minor: K_{2,t} (t >= 3)
  bool use_fans = true;
  bool use_strips = true;
  bool use_theta_links = true;
  bool use_cycles = true;
};

/// Random 1-sum of fans / strips / theta bundles / cycles along a tree
/// skeleton. Certified K_{2,cfg.t}-minor-free by construction (see header
/// comment); small instances are cross-checked in tests with the exact
/// tester.
Graph random_cactus_of_structures(const CactusConfig& cfg, std::mt19937_64& rng);
/// Seed overload: owns a fresh engine, so one uint64_t fully determines the
/// graph (the replay contract the soak harness's repro files rely on).
Graph random_cactus_of_structures(const CactusConfig& cfg, std::uint64_t seed);

/// A Ding augmentation workload: a small random connected base graph with
/// random fans and strips attached at distinct vertices (corner-sharing rule
/// respected). Matches the A_m shape of Proposition 5.15; *not* certified
/// K_{2,t}-minor-free for a specific t — callers that need a certificate
/// should check with minor::max_k2t or use random_cactus_of_structures.
struct AugmentationConfig {
  int base_vertices = 16;  ///< must cover 3 corners per fan + 4 per strip
  int base_extra_edges = 4;
  int fans = 2;
  int strips = 2;
  int min_length = 3;
  int max_length = 10;
  bool crossed_strips = false;
};

/// Result of random_augmentation: the graph plus the corner vertices of each
/// attached structure (used by the Lemma 4.2 residual-diameter bench).
struct Augmentation {
  Graph graph;
  std::vector<std::vector<Vertex>> structure_corners;
  std::vector<int> structure_lengths;
};

Augmentation random_augmentation(const AugmentationConfig& cfg, std::mt19937_64& rng);
Augmentation random_augmentation(const AugmentationConfig& cfg, std::uint64_t seed);

}  // namespace lmds::ding
