#pragma once
// Ding's structure theory for K_{2,t}-minor-free graphs [8] (§5.4 of the
// paper): type-I graphs (reference cycle with restricted crossing chords),
// fans, strips, and augmentations of small base graphs.
//
// These structures serve two purposes here:
//  * workload generation with certified class membership (fans are
//    K_{2,3}-minor-free, strips K_{2,5}-minor-free, 1-sums preserve
//    K_{2,t}-minor-freeness since K_{2,t} is 2-connected for t >= 2);
//  * the residual-diameter experiment for Lemma 4.2 (long strips force
//    local 2-cuts at their corners).

#include <array>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::ding {

using graph::Graph;
using graph::Vertex;

/// A fan of the given length: centre vertex 0 adjacent to every vertex of
/// the path 1..length+1. Corners (in Ding's sense) are
/// {centre, path-front, path-back} = {0, 1, length+1}. Requires length >= 1.
Graph fan(int length);

/// Corner triple of fan(length).
std::array<Vertex, 3> fan_corners(int length);

/// A strip of the given length: two horizontal paths t_0..t_{k-1} (vertices
/// 0..k-1) and b_0..b_{k-1} (vertices k..2k-1) closed into a reference cycle
/// by the end edges t_0–b_0 and t_{k-1}–b_{k-1}, plus interior rungs
/// t_i–b_i. With crossed = true the interior rungs are replaced by crossing
/// pairs t_i–b_{i+1}, t_{i+1}–b_i (still type-I: the crossing endpoints are
/// consecutive on the cycle). Corners are {t_0, b_0, b_{k-1}, t_{k-1}}.
/// Requires length >= 2.
Graph strip(int length, bool crossed = false);

/// Corner quadruple of strip(length).
std::array<Vertex, 4> strip_corners(int length);

/// Radius of a strip-like structure per Ding: max over all vertices h of the
/// distance from h to the corner set (we report max over vertices of the
/// min-distance to a corner, the quantity that bounds brute-force locality).
int structure_radius(const Graph& g, std::span<const Vertex> corners);

/// Type-I validity check (the generalisation of outerplanar graphs used by
/// Ding): `cycle` must be a Hamiltonian cycle of g; every chord may cross at
/// most one other chord; and when chords ab, cd cross, either both ac, bd or
/// both ad, bc are edges of the cycle. Returns false when `cycle` is not a
/// Hamiltonian cycle.
bool is_type_one(const Graph& g, std::span<const Vertex> cycle);

/// Incrementally attaches disjoint fans and strips to a base graph by corner
/// identification — Ding's "augmentation". The constraint from [8] is
/// enforced: two corners may share a base vertex only if one of them is a
/// fan centre and the other is a fan centre or strip corner.
class AugmentationBuilder {
 public:
  explicit AugmentationBuilder(const Graph& base);

  /// Attaches a fan, identifying (centre, front, back) with the three
  /// distinct base vertices given. Returns the indices of the new interior
  /// path vertices.
  std::vector<Vertex> attach_fan(Vertex centre_at, Vertex front_at, Vertex back_at, int length);

  /// Attaches a strip, identifying its four corners with the distinct base
  /// vertices given. Returns the indices of the new interior vertices.
  std::vector<Vertex> attach_strip(const std::array<Vertex, 4>& corners_at, int length,
                                   bool crossed = false);

  /// Number of vertices in the graph built so far.
  int num_vertices() const { return next_vertex_; }

  /// The augmented graph.
  Graph build() const;

 private:
  enum class CornerUse { kNone, kFanCentre, kOtherCorner };

  void use_corner(Vertex base_vertex, CornerUse use);
  void b_edge(Vertex u, Vertex v) { edges_.emplace_back(u, v); }

  std::vector<std::pair<Vertex, Vertex>> edges_;
  std::vector<CornerUse> corner_use_;
  int base_vertices_ = 0;
  int next_vertex_ = 0;
};

}  // namespace lmds::ding
