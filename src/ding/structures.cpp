#include "ding/structures.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace lmds::ding {

Graph fan(int length) {
  if (length < 1) throw std::invalid_argument("fan: length >= 1 required");
  graph::GraphBuilder b(length + 2);
  for (Vertex p = 1; p <= length + 1; ++p) {
    b.add_edge(0, p);
    if (p <= length) b.add_edge(p, p + 1);
  }
  return b.build();
}

std::array<Vertex, 3> fan_corners(int length) {
  return {0, 1, static_cast<Vertex>(length + 1)};
}

Graph strip(int length, bool crossed) {
  if (length < 2) throw std::invalid_argument("strip: length >= 2 required");
  const int k = length;
  graph::GraphBuilder b(2 * k);
  const auto top = [](int i) { return static_cast<Vertex>(i); };
  const auto bottom = [k](int i) { return static_cast<Vertex>(k + i); };
  for (int i = 0; i + 1 < k; ++i) {
    b.add_edge(top(i), top(i + 1));
    b.add_edge(bottom(i), bottom(i + 1));
  }
  b.add_edge(top(0), bottom(0));
  b.add_edge(top(k - 1), bottom(k - 1));
  if (crossed) {
    for (int i = 1; i + 2 < k; i += 2) {
      b.add_edge(top(i), bottom(i + 1));
      b.add_edge(top(i + 1), bottom(i));
    }
  } else {
    for (int i = 1; i + 1 < k; ++i) b.add_edge(top(i), bottom(i));
  }
  return b.build();
}

std::array<Vertex, 4> strip_corners(int length) {
  return {0, static_cast<Vertex>(length), static_cast<Vertex>(2 * length - 1),
          static_cast<Vertex>(length - 1)};
}

int structure_radius(const Graph& g, std::span<const Vertex> corners) {
  const auto dist = graph::bfs_distances_multi(g, corners);
  int radius = 0;
  for (int d : dist) radius = std::max(radius, d);
  return radius;
}

bool is_type_one(const Graph& g, std::span<const Vertex> cycle) {
  const int n = g.num_vertices();
  if (static_cast<int>(cycle.size()) != n || n < 3) return false;
  // Check Hamiltonian cycle.
  std::vector<int> position(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const Vertex v = cycle[static_cast<std::size_t>(i)];
    if (!g.has_vertex(v) || position[static_cast<std::size_t>(v)] != -1) return false;
    position[static_cast<std::size_t>(v)] = i;
  }
  for (int i = 0; i < n; ++i) {
    if (!g.has_edge(cycle[static_cast<std::size_t>(i)],
                    cycle[static_cast<std::size_t>((i + 1) % n)])) {
      return false;
    }
  }

  // Collect chords as position pairs (i, j) with i < j.
  struct Chord {
    int i, j;
  };
  std::vector<Chord> chords;
  for (const graph::Edge e : g.edges()) {
    int i = position[static_cast<std::size_t>(e.u)];
    int j = position[static_cast<std::size_t>(e.v)];
    if (i > j) std::swap(i, j);
    const bool cycle_edge = (j == i + 1) || (i == 0 && j == n - 1);
    if (!cycle_edge) chords.push_back({i, j});
  }

  const auto crosses = [n](const Chord& a, const Chord& b) {
    // Chords cross iff exactly one endpoint of b lies strictly inside the
    // arc (a.i, a.j).
    const auto inside = [&](int p) { return a.i < p && p < a.j; };
    (void)n;
    const bool bi = inside(b.i);
    const bool bj = inside(b.j);
    // Shared endpoints never count as crossing.
    if (b.i == a.i || b.i == a.j || b.j == a.i || b.j == a.j) return false;
    return bi != bj;
  };
  const auto cycle_adjacent = [n](int p, int q) {
    const int d = std::abs(p - q);
    return d == 1 || d == n - 1;
  };

  for (std::size_t x = 0; x < chords.size(); ++x) {
    int crossings = 0;
    for (std::size_t y = 0; y < chords.size(); ++y) {
      if (x == y || !crosses(chords[x], chords[y])) continue;
      ++crossings;
      // Crossing pattern restriction: endpoints pair up along the cycle.
      const Chord& a = chords[x];
      const Chord& b = chords[y];
      const bool pattern1 = cycle_adjacent(a.i, b.i) && cycle_adjacent(a.j, b.j);
      const bool pattern2 = cycle_adjacent(a.i, b.j) && cycle_adjacent(a.j, b.i);
      if (!pattern1 && !pattern2) return false;
    }
    if (crossings > 1) return false;
  }
  return true;
}

AugmentationBuilder::AugmentationBuilder(const Graph& base) {
  base_vertices_ = base.num_vertices();
  next_vertex_ = base_vertices_;
  corner_use_.assign(static_cast<std::size_t>(base_vertices_), CornerUse::kNone);
  for (const graph::Edge e : base.edges()) edges_.emplace_back(e.u, e.v);
}

void AugmentationBuilder::use_corner(Vertex base_vertex, CornerUse use) {
  if (base_vertex < 0 || base_vertex >= base_vertices_) {
    throw std::invalid_argument("augmentation: corner must map to a base vertex");
  }
  CornerUse& slot = corner_use_[static_cast<std::size_t>(base_vertex)];
  if (slot == CornerUse::kNone) {
    slot = use;
    return;
  }
  // Ding's sharing rule: a shared vertex needs at least one fan centre among
  // the two corners identified with it.
  if (slot == CornerUse::kFanCentre || use == CornerUse::kFanCentre) {
    if (use == CornerUse::kFanCentre) slot = CornerUse::kFanCentre;
    return;
  }
  throw std::invalid_argument(
      "augmentation: two non-centre corners may not share a base vertex");
}

std::vector<Vertex> AugmentationBuilder::attach_fan(Vertex centre_at, Vertex front_at,
                                                    Vertex back_at, int length) {
  if (length < 1) throw std::invalid_argument("attach_fan: length >= 1 required");
  if (centre_at == front_at || centre_at == back_at || front_at == back_at) {
    throw std::invalid_argument("attach_fan: corners must be distinct vertices");
  }
  use_corner(centre_at, CornerUse::kFanCentre);
  use_corner(front_at, CornerUse::kOtherCorner);
  use_corner(back_at, CornerUse::kOtherCorner);

  // Path front_at = p_0, interior p_1..p_{length-1} fresh, p_length = back_at;
  // centre adjacent to all path vertices.
  std::vector<Vertex> interior;
  Vertex prev = front_at;
  b_edge(centre_at, front_at);
  for (int i = 1; i < length; ++i) {
    const Vertex fresh = static_cast<Vertex>(next_vertex_++);
    interior.push_back(fresh);
    b_edge(prev, fresh);
    b_edge(centre_at, fresh);
    prev = fresh;
  }
  b_edge(prev, back_at);
  b_edge(centre_at, back_at);
  return interior;
}

std::vector<Vertex> AugmentationBuilder::attach_strip(const std::array<Vertex, 4>& corners_at,
                                                      int length, bool crossed) {
  if (length < 2) throw std::invalid_argument("attach_strip: length >= 2 required");
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      if (corners_at[i] == corners_at[j]) {
        throw std::invalid_argument("attach_strip: corners must be distinct vertices");
      }
    }
  }
  for (Vertex c : corners_at) use_corner(c, CornerUse::kOtherCorner);

  // Recreate strip(length) with its four corners replaced by corners_at.
  const Graph s = strip(length, crossed);
  const auto corners = strip_corners(length);
  std::vector<Vertex> map(static_cast<std::size_t>(s.num_vertices()), graph::kNoVertex);
  map[static_cast<std::size_t>(corners[0])] = corners_at[0];
  map[static_cast<std::size_t>(corners[1])] = corners_at[1];
  map[static_cast<std::size_t>(corners[2])] = corners_at[2];
  map[static_cast<std::size_t>(corners[3])] = corners_at[3];
  std::vector<Vertex> interior;
  for (Vertex v = 0; v < s.num_vertices(); ++v) {
    if (map[static_cast<std::size_t>(v)] == graph::kNoVertex) {
      map[static_cast<std::size_t>(v)] = static_cast<Vertex>(next_vertex_++);
      interior.push_back(map[static_cast<std::size_t>(v)]);
    }
  }
  for (const graph::Edge e : s.edges()) {
    b_edge(map[static_cast<std::size_t>(e.u)], map[static_cast<std::size_t>(e.v)]);
  }
  return interior;
}

Graph AugmentationBuilder::build() const {
  graph::GraphBuilder b(next_vertex_);
  for (const auto& [u, v] : edges_) b.add_edge(u, v);
  return b.build();
}

}  // namespace lmds::ding
