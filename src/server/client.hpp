#pragma once
// Client side of the lmds_serve wire protocol — one connection, either
// transport, behind "send this verb with these JSON object members, give me
// the parsed response body". Factored out of examples/serve_client.cpp so the
// soak harness (src/soak) drives a live server through exactly the code path
// a real client uses; serve_client now links this too, so the two cannot
// drift.
//
// The client is deliberately blocking: every exchange writes one request and
// reads one response. The protocol guarantees the server either answers or
// closes the connection, so "no answer, no close" is a server wedge — which
// is precisely what soak timeouts are for.

#include <optional>
#include <string>

#include "server/json.hpp"
#include "server/net.hpp"

namespace lmds::server {

/// Knobs for how patient a ProtocolClient is with a slow or dead peer. The
/// defaults reproduce the historical behavior (block forever, no reconnect)
/// so existing callers — soak, serve_client, tests — are unchanged; the
/// cluster router dials peers with real timeouts and reconnect enabled.
struct ClientOptions {
  int connect_timeout_ms = 0;     ///< bound on the TCP connect; 0 = kernel default
  int io_timeout_ms = 0;          ///< bound on each read/write; 0 = block forever
  bool reconnect_on_eof = false;  ///< retry an exchange once over a fresh
                                  ///< connection when the server closed this one
                                  ///< (host:port ctor only; a session namespace
                                  ///< is re-opened on the new connection)
};

/// One client connection to an lmds_serve instance. Owns the socket.
class ProtocolClient {
 public:
  /// Connects to host:port. `http` selects the HTTP/1.1 front-end framing
  /// (the verbs move into routes); `ns` is the cache namespace every request
  /// runs in ("" = default; line protocol selects it via open_session(),
  /// HTTP carries it as the X-Lmds-Namespace header on each request).
  /// Throws std::runtime_error when the TCP connect fails (or times out).
  ProtocolClient(const std::string& host, int port, bool http, std::string ns,
                 ClientOptions options = {});

  /// Adopts an already-connected socket (tests, ephemeral-port setups).
  /// reconnect_on_eof is ignored — the endpoint is unknown.
  ProtocolClient(int fd, bool http, std::string ns, ClientOptions options = {});

  ~ProtocolClient();
  ProtocolClient(const ProtocolClient&) = delete;
  ProtocolClient& operator=(const ProtocolClient&) = delete;

  bool http() const { return http_; }
  const std::string& ns() const { return ns_; }

  /// `members` are the request-object members without the op, e.g.
  /// "\"solver\":\"greedy\",\"graphs\":[...]" (empty for admin verbs).
  /// Over HTTP the op maps onto its route; ops without an HTTP route throw.
  JsonValue exchange(const std::string& op, const std::string& members);

  /// Graph-store verbs (PUT /v2/graphs and DELETE /v2/graphs/<h> over HTTP).
  JsonValue put_graph(const std::string& graph_json);
  JsonValue drop_graph(const std::string& handle);

  /// patch_graph: derives a new handle from `handle` by a batch of edge
  /// edits. `patch_members` are the edit fields as braceless JSON object
  /// members (what encode_patch_members produces, e.g.
  /// `"add":[[0,3]],"del":[],"n":8`). Over HTTP this is
  /// POST /v2/graphs/<handle>/patch with `{patch_members}` as the body.
  JsonValue patch_graph(const std::string& handle, const std::string& patch_members);

  /// Line protocol: the session-wide namespace selection. No-op over HTTP or
  /// with the default namespace; throws if the server refuses.
  void open_session();

  /// One raw line-protocol round trip: sends `line` + '\n', parses the
  /// response line. The fuzzer's entry point for mutated requests.
  JsonValue exchange_line(const std::string& line);

  /// One raw HTTP round trip with correct framing (Content-Length computed
  /// from `body`). Public so the fuzzer can aim mutated bodies at routes.
  JsonValue exchange_http(const std::string& method, const std::string& target,
                          const std::string& body);

  /// Lowest-level access for fuzzing: send bytes verbatim / read one line.
  /// send_raw returns false when the server already closed the connection;
  /// read_raw_line returns nullopt on close.
  bool send_raw(const std::string& bytes);
  std::optional<std::string> read_raw_line(std::size_t max_bytes = 64u << 20);

 private:
  /// The unretried bodies of exchange_line/exchange_http; throw the cpp-local
  /// ConnectionClosed on an EOF so the public wrappers can reconnect once.
  JsonValue exchange_line_once(const std::string& line);
  JsonValue exchange_http_once(const std::string& method, const std::string& target,
                               const std::string& body);
  bool can_reconnect() const { return options_.reconnect_on_eof && port_ >= 0; }
  void reconnect();

  int fd_;
  LineReader reader_;
  bool http_;
  std::string ns_;
  ClientOptions options_;
  std::string host_;  ///< empty when the socket was adopted
  int port_ = -1;     ///< <0 when the socket was adopted
};

/// Throws std::runtime_error("<what> failed: ...") unless the response body
/// has "ok":true.
void require_ok(const JsonValue& response, const std::string& what);

}  // namespace lmds::server
