#pragma once
// Minimal HTTP/1.1 front-end over the transport-agnostic Session core — the
// second transport next to the newline-delimited TCP line protocol. Both
// speak the same protocol v2; HTTP moves the verb into the route and the
// namespace into a header:
//
//   PUT    /v2/graphs            body = {"n":..,"edges":[[u,v],...]}
//                                -> put_graph      (201 on new, 200 on reuse)
//   POST   /v2/graphs/<handle>/patch
//                                body = {"add":..,"del":..,"n":..}
//                                -> patch_graph    (201 on new, 200 on reuse)
//   DELETE /v2/graphs/<handle>   -> drop_graph
//   POST   /v2/solve             body = solve request without the "op" field
//   GET    /v2/solvers           -> solvers
//   GET    /v2/stats             -> stats
//   POST   /v2/shutdown          -> shutdown
//
//   X-Lmds-Namespace: tenant-a   per-request cache namespace (equivalent of
//                                open_session; absent = default namespace).
//                                A "namespace" field in a solve body wins.
//
// Response bodies are byte-identical to the line protocol's response lines;
// the HTTP status is derived from the protocol's error code (bad_request ->
// 400, unknown_solver/unknown_handle -> 404, server_busy -> 503, everything
// else that fails -> 500). Keep-alive is honored; a malformed request gets
// a 400 and closes the connection (resynchronizing framing is guesswork).
//
// Parsing and response building are socket-free (only read_http_request
// touches a LineReader, which tests drive over a pipe), so the whole
// front-end is exercised in tests/test_server.cpp without a network.

#include <optional>
#include <string>
#include <string_view>

#include "server/net.hpp"
#include "server/protocol.hpp"
#include "server/session.hpp"

namespace lmds::server {

/// One parsed HTTP request, reduced to what the router needs.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string target;  ///< path only; a query string is stripped
  std::string body;
  std::string ns;           ///< X-Lmds-Namespace value ("" when absent)
  bool keep_alive = true;   ///< HTTP/1.1 default unless "Connection: close"
};

/// Thrown by read_http_request on a malformed or over-limit request; the
/// connection loop answers `status` and drops the connection.
class HttpError : public std::runtime_error {
 public:
  HttpError(int status, const std::string& what) : std::runtime_error(what), status_(status) {}
  int status() const { return status_; }

 private:
  int status_;
};

/// Reads one request (request line + headers + Content-Length body) from
/// `reader`. std::nullopt on clean EOF before a request line (client done).
/// Throws HttpError on malformed framing, an unsupported Transfer-Encoding,
/// or a body beyond limits.max_line_bytes. `fd` is written the interim
/// "100 Continue" when the client sent Expect: 100-continue (curl does for
/// bodies over ~1KB — exactly this API's graph uploads; without the interim
/// response such clients stall ~1s per request before sending the body).
std::optional<HttpRequest> read_http_request(LineReader& reader, int fd,
                                             const ServerLimits& limits);

/// Routes `req` into `session` and returns the complete HTTP/1.1 response
/// bytes (status line, headers, JSON body). Never throws for request-level
/// failures. Sets session namespace from the request's header first.
std::string handle_http_request(const HttpRequest& req, Session& session);

/// A standalone error response (for over-limit rejects and the
/// --max-connections 503), body {"ok":false,"code":...,"error":...}.
std::string http_error_response(int status, ErrorCode code, std::string_view message);

}  // namespace lmds::server
