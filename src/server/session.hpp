#pragma once
// The transport-agnostic serving core (protocol v2). Everything that used to
// live inside Server::handle_line is here, split into two pieces so any
// number of transports (the TCP line protocol, the HTTP front-end, tests,
// future replication) can share one process-wide state:
//
//  * ServerCore — the shared, thread-safe state: one BatchExecutor (and its
//    ResponseCache), one GraphStore, the request limits, the snapshot
//    directory, lifetime counters, uptime, and the stop flag + callback.
//  * Session — one client's view of the core. A Session is cheap, owned by
//    one connection (or one test), and carries the only piece of per-client
//    protocol state: the cache namespace selected with open_session. It is
//    NOT thread-safe — one Session per connection/thread.
//
// Session::handle_line is the whole wire protocol: one JSON request line in,
// one JSON response line out, no sockets involved. dispatch() is the same
// entry one level down (verb + parsed body) for transports like HTTP whose
// framing already separated the two.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "api/executor.hpp"
#include "api/graph_store.hpp"
#include "api/registry.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "server/protocol.hpp"

namespace lmds::server {

class Session;

/// Configuration of a ServerCore — the transport-independent subset of what
/// lmds_serve exposes as flags.
struct CoreOptions {
  api::BatchOptions batch{.threads = 1, .shard_size = 4, .cache_capacity = 1024};
  ServerLimits limits;
  /// Graph-store capacity in graphs (see api::GraphStore; 0 disables
  /// put_graph).
  std::size_t store_capacity = 1024;
  /// Pin-lease TTL for owned (connection) sessions in milliseconds; a pin
  /// not renewed by any get/put/patch from its owner within the TTL is
  /// released. 0 = leases never expire (the historical behavior).
  int lease_ttl_ms = 0;
  /// Namespace tags are the only thing separating tenants, so by default a
  /// stats request reports only the caller's own namespace slice. True
  /// exposes every namespace's counters (operator/debug deployments).
  bool stats_all_namespaces = false;
  /// Directory the save_cache/load_cache verbs resolve client-supplied paths
  /// under. Clients may only name relative paths without ".." — they can
  /// never write or probe outside this directory. Empty disables the two
  /// verbs entirely (they answer bad_request).
  std::string snapshot_dir = ".";
};

class ServerCore {
 public:
  ServerCore(CoreOptions opts, const api::Registry& registry);

  const CoreOptions& options() const { return opts_; }
  const api::Registry& registry() const { return registry_; }
  api::BatchExecutor& executor() { return executor_; }
  api::GraphStore& store() { return store_; }

  /// Seconds since this core was constructed.
  double uptime_seconds() const;

  ServerCounters counters() const;
  void count_connection() { connections_.fetch_add(1, std::memory_order_relaxed); }
  void count_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void count_request() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void count_graphs(std::uint64_t n) { graphs_solved_.fetch_add(n, std::memory_order_relaxed); }

  /// True once a shutdown verb was handled or request_stop() called.
  bool stopping() const { return stop_.load(); }
  /// Idempotent; invokes the on_stop callback (set by the socket owner to
  /// unblock its accept loop) exactly once. Safe from any thread — a
  /// shutdown verb arrives on a connection thread.
  void request_stop() LMDS_EXCLUDES(stop_mu_);
  /// Transport hook fired by the first request_stop(). Normally set before
  /// serving; the mutex makes a late or replaced registration safe too.
  void set_stop_callback(std::function<void()> cb) LMDS_EXCLUDES(stop_mu_);

  /// Fresh pin-lease owner id for one connection (>= 1; 0 is the shared
  /// anonymous session).
  api::SessionId allocate_session_id() {
    return next_session_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-namespace admission control (limits.max_namespace_inflight).
  /// try_begin_solve returns false — the caller answers server_busy — when
  /// the namespace already has its quota of solves in flight; end_solve
  /// releases the slot. Admission, not queueing: a rejected request never
  /// waits, so one tenant's burst cannot occupy the worker pool's backlog.
  bool try_begin_solve(const std::string& ns) LMDS_EXCLUDES(admit_mu_);
  void end_solve(const std::string& ns) LMDS_EXCLUDES(admit_mu_);

  /// Cluster hook, consulted at the top of Session::dispatch: return a
  /// response line to answer the verb (the router intercepting solve /
  /// put_graph / patch_graph / ...), or std::nullopt to fall through to the
  /// local implementation. Install BEFORE serving starts — the function is
  /// read unsynchronized from connection threads, relying on the
  /// happens-before of thread creation. This is how lmds_serve --router
  /// layers src/cluster/ on top of the server library without the server
  /// linking the router.
  using DispatchOverride =
      std::function<std::optional<std::string>(Session&, std::string_view, const JsonValue&)>;
  void set_dispatch_override(DispatchOverride override) { override_ = std::move(override); }
  const DispatchOverride& dispatch_override() const { return override_; }

 private:
  CoreOptions opts_;
  const api::Registry& registry_;
  api::BatchExecutor executor_;
  api::GraphStore store_;
  std::chrono::steady_clock::time_point start_;

  std::atomic<bool> stop_{false};
  common::Mutex stop_mu_;
  std::function<void()> on_stop_ LMDS_GUARDED_BY(stop_mu_);

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> graphs_solved_{0};

  std::atomic<api::SessionId> next_session_{1};
  common::Mutex admit_mu_;
  /// Solves in flight per namespace; keys erased at zero so the map is
  /// bounded by concurrent requests, not by every tag ever seen.
  std::map<std::string, int> inflight_ LMDS_GUARDED_BY(admit_mu_);

  DispatchOverride override_;  ///< set before serving, then read-only
};

class Session {
 public:
  /// How this session owns its graph-store pins. Shared — the default, and
  /// what every pre-lease caller gets — pins as the anonymous
  /// kSharedSession: pins form one shared counter, never expire, and
  /// survive the Session object. Owned allocates a fresh SessionId: pins
  /// belong to this session alone (another session's drop_graph fails),
  /// expire under the core's lease TTL, and are all released when the
  /// Session is destroyed — which the connection loops tie to the life of
  /// the connection, so a crashed client frees its pins.
  enum class LeaseScope { Shared, Owned };

  explicit Session(ServerCore& core, LeaseScope scope = LeaseScope::Shared)
      : core_(core),
        session_id_(scope == LeaseScope::Owned ? core.allocate_session_id()
                                               : api::kSharedSession) {}
  ~Session() {
    if (session_id_ != api::kSharedSession) core_.store().release_session(session_id_);
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Handles one protocol line and returns the response line (no trailing
  /// '\n'). Never throws for request-level failures — those become
  /// {"ok":false,...} lines; only programming errors propagate.
  std::string handle_line(std::string_view line);

  /// The framing-free entry: `root` is the parsed request body, `verb` the
  /// operation (from the body's "op" over the line protocol, from the route
  /// over HTTP). Consults the core's dispatch override (the cluster router)
  /// first, then falls through to dispatch_local. Counts the request and
  /// returns the response body.
  std::string dispatch(std::string_view verb, const JsonValue& root);

  /// dispatch without the override hook — always the local implementation.
  /// The router calls this for the verbs it answers from its own core (and
  /// it is what keeps the override from recursing into itself).
  std::string dispatch_local(std::string_view verb, const JsonValue& root);

  /// This session's cache namespace ("" = default). Selected by the
  /// open_session verb; HTTP sets it per request from a header.
  const std::string& ns() const { return ns_; }
  void set_ns(std::string ns) { ns_ = std::move(ns); }

  ServerCore& core() { return core_; }

  /// This session's pin-lease owner id (api::kSharedSession for Shared).
  api::SessionId session_id() const { return session_id_; }

 private:
  std::string do_solve(const JsonValue& root);
  std::string do_put_graph(const JsonValue& root);
  std::string do_patch_graph(const JsonValue& root);
  std::string do_drop_graph(const JsonValue& root);
  std::string do_open_session(const JsonValue& root);
  std::string do_stats();
  std::string do_snapshot(std::string_view verb, const JsonValue& root);
  std::string do_replicate_out(const JsonValue& root);
  std::string do_replicate_in(const JsonValue& root);
  /// Validates a client-supplied snapshot path and resolves it under the
  /// core's snapshot_dir; throws ProtocolError on traversal attempts.
  std::string resolve_snapshot_path(const std::string& path) const;

  ServerCore& core_;
  const api::SessionId session_id_;
  std::string ns_;
};

}  // namespace lmds::server
