#pragma once
// Thin POSIX TCP helpers shared by the server's connection loop, the
// serve_client example and the socket tests. Linux/POSIX only — the serving
// subsystem is gated out of the build elsewhere (CMake) if the platform
// lacks these headers.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace lmds::server {

/// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"). Returns the
/// connected fd, or -1 with errno set.
int tcp_connect(const std::string& host, int port);

/// Same, but gives up after `timeout_ms` milliseconds (ETIMEDOUT) instead of
/// blocking for the kernel's SYN-retry eternity — the router's dial path to a
/// possibly-dead peer. timeout_ms <= 0 falls back to the blocking connect.
/// The returned fd is back in blocking mode.
int tcp_connect(const std::string& host, int port, int timeout_ms);

/// Bounds every subsequent recv/send on `fd` to `timeout_ms` milliseconds
/// (SO_RCVTIMEO / SO_SNDTIMEO); 0 restores fully blocking I/O. Returns false
/// with errno set if either setsockopt fails. A timed-out recv surfaces in
/// LineReader as timed_out(), distinct from EOF.
bool set_io_timeout(int fd, int timeout_ms);

/// Writes all of `data`, retrying on short writes / EINTR. Returns false on
/// a write error (e.g. peer closed).
bool send_all(int fd, std::string_view data);

/// Incremental newline-delimited reader over one fd. Reads in chunks,
/// buffers the remainder, hands back complete lines without the '\n'.
///
/// Deliberately unsynchronized (no mutex, no annotations): a LineReader is
/// owned by exactly one connection thread for its whole life. A concurrent
/// shutdown(2) on the fd from the stop path is safe — it only makes the
/// blocked recv() return 0 — but sharing the reader itself between threads
/// is a bug the TSan CI job would flag.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next complete line. std::nullopt on EOF with no buffered data, or when
  /// a line exceeds max_bytes (oversized_ is set — the caller should drop
  /// the connection; resynchronizing inside a half-read line is guesswork).
  std::optional<std::string> next_line(std::size_t max_bytes);

  /// Exactly `n` bytes (buffered remainder first, then the socket) — the
  /// HTTP front-end's Content-Length body read. std::nullopt when the peer
  /// closes before `n` bytes arrive.
  std::optional<std::string> read_exact(std::size_t n);

  bool oversized() const { return oversized_; }

  /// True when the last std::nullopt came from an I/O timeout (fd configured
  /// via set_io_timeout) rather than a real EOF/error. The connection is
  /// still alive but the peer went quiet — callers decide whether that is
  /// fatal (ProtocolClient treats it as io_error) or retryable.
  bool timed_out() const { return timed_out_; }

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
  bool oversized_ = false;
  bool timed_out_ = false;
};

/// close(2) wrapper that ignores EINTR; safe on -1.
void close_fd(int fd);

/// Thread-safe strerror: formats `err` (an errno value) via strerror_r into
/// a caller-owned string. std::strerror may return a pointer into a shared
/// static buffer, which is a data race once two threads format errors at
/// once (clang-tidy's concurrency-mt-unsafe flags every use).
std::string errno_string(int err);

}  // namespace lmds::server
