#include "server/session.hpp"

#include <memory>
#include <vector>

#include "cluster/replication.hpp"
#include "server/client.hpp"
#include "server/json.hpp"

namespace lmds::server {

namespace {

api::GraphStore::StoreOptions store_options(const CoreOptions& opts) {
  return {.capacity = opts.store_capacity,
          .max_namespace_bytes = opts.limits.max_namespace_store_bytes,
          .lease_ttl = std::chrono::milliseconds(opts.lease_ttl_ms)};
}

}  // namespace

ServerCore::ServerCore(CoreOptions opts, const api::Registry& registry)
    : opts_(std::move(opts)),
      registry_(registry),
      executor_(opts_.batch, registry),
      store_(store_options(opts_)),
      start_(std::chrono::steady_clock::now()) {}

double ServerCore::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

ServerCounters ServerCore::counters() const {
  return {connections_.load(), rejected_.load(), requests_.load(), graphs_solved_.load()};
}

void ServerCore::request_stop() {
  if (stop_.exchange(true)) return;
  // Copy the callback out under the lock, invoke it outside: the Server's
  // callback takes its own connection mutex, and holding stop_mu_ across
  // foreign code is how lock-order inversions start.
  std::function<void()> cb;
  {
    common::MutexLock lock(stop_mu_);
    cb = on_stop_;
  }
  if (cb) cb();
}

void ServerCore::set_stop_callback(std::function<void()> cb) {
  common::MutexLock lock(stop_mu_);
  on_stop_ = std::move(cb);
}

bool ServerCore::try_begin_solve(const std::string& ns) {
  const int limit = opts_.limits.max_namespace_inflight;
  if (limit <= 0) return true;
  common::MutexLock lock(admit_mu_);
  int& count = inflight_[ns];
  if (count >= limit) {
    if (count == 0) inflight_.erase(ns);  // limit 0 handled above; keep tidy
    return false;
  }
  ++count;
  return true;
}

void ServerCore::end_solve(const std::string& ns) {
  if (opts_.limits.max_namespace_inflight <= 0) return;
  common::MutexLock lock(admit_mu_);
  const auto it = inflight_.find(ns);
  if (it == inflight_.end()) return;
  if (--it->second <= 0) inflight_.erase(it);
}

std::string Session::handle_line(std::string_view line) {
  JsonValue root;
  try {
    root = json_parse(line);
  } catch (const JsonError& e) {
    core_.count_request();
    return encode_error(ErrorCode::BadRequest, std::string("invalid JSON: ") + e.what());
  }
  const JsonValue* op = root.find("op");
  if (!op || op->type() != JsonValue::Type::String) {
    core_.count_request();
    return encode_error(ErrorCode::BadRequest, "request needs a string \"op\" field");
  }
  return dispatch(op->as_string(), root);
}

std::string Session::dispatch(std::string_view verb, const JsonValue& root) {
  if (const ServerCore::DispatchOverride& override = core_.dispatch_override()) {
    if (std::optional<std::string> routed = override(*this, verb, root)) {
      core_.count_request();
      return *std::move(routed);
    }
  }
  return dispatch_local(verb, root);
}

std::string Session::dispatch_local(std::string_view verb, const JsonValue& root) {
  core_.count_request();
  try {
    if (verb == "solve") return do_solve(root);
    if (verb == "put_graph") return do_put_graph(root);
    if (verb == "patch_graph") return do_patch_graph(root);
    if (verb == "drop_graph") return do_drop_graph(root);
    if (verb == "open_session") return do_open_session(root);
    if (verb == "solvers") return encode_solvers(core_.registry());
    if (verb == "stats") return do_stats();
    if (verb == "save_cache" || verb == "load_cache") return do_snapshot(verb, root);
    if (verb == "replicate_out") return do_replicate_out(root);
    if (verb == "replicate_in") return do_replicate_in(root);
    if (verb == "shutdown") {
      core_.request_stop();
      return encode_ok("shutdown");
    }
    return encode_error(ErrorCode::BadRequest, "unknown op \"" + std::string(verb) + "\"");
  } catch (const ProtocolError& e) {
    return encode_error(e.code(), e.what());
  }
}

namespace {

/// RAII slot from ServerCore::try_begin_solve.
class AdmissionSlot {
 public:
  AdmissionSlot(ServerCore& core, std::string ns)
      : core_(core), ns_(std::move(ns)), admitted_(core.try_begin_solve(ns_)) {}
  ~AdmissionSlot() {
    if (admitted_) core_.end_solve(ns_);
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  bool admitted() const { return admitted_; }

 private:
  ServerCore& core_;
  std::string ns_;
  bool admitted_;
};

}  // namespace

std::string Session::do_solve(const JsonValue& root) {
  SolveRequest req = decode_solve(root, core_.registry(), core_.options().limits);

  // Request-level namespace wins over the session's open_session choice.
  req.overrides.cache_namespace = req.ns.value_or(ns_);

  // Per-namespace admission control: over-quota requests bounce *before*
  // any graph resolution or solver work, with a retryable busy answer.
  const AdmissionSlot slot(core_, req.overrides.cache_namespace);
  if (!slot.admitted()) {
    return encode_error(
        ErrorCode::ServerBusy,
        "namespace \"" + req.overrides.cache_namespace + "\" has " +
            std::to_string(core_.options().limits.max_namespace_inflight) +
            " solves in flight (per-namespace admission limit); retry shortly");
  }

  // Resolve the graph references into one pointer span: inline graphs live
  // in `decoded` (reserved up front — growth must not move earlier decodes),
  // handles resolve against the store with their shared_ptrs held in
  // `pinned` so a concurrent drop/evict cannot free a graph mid-batch.
  std::vector<graph::Graph> decoded;
  decoded.reserve(req.graphs.size());
  std::vector<std::shared_ptr<const graph::Graph>> pinned;
  std::vector<const graph::Graph*> ptrs;
  ptrs.reserve(req.graphs.size());
  // A handle IS its graph's fingerprint, so handle entries hand the
  // executor a precomputed hash and skip the O(V+E) hash walk; inline
  // entries leave 0 = "compute".
  std::vector<std::uint64_t> hashes(req.graphs.size(), 0);
  // Patched handles additionally hand over their lineage, unlocking the
  // executor's ball-granular incremental re-solve (nullptr elsewhere).
  std::vector<std::shared_ptr<const api::PatchLineage>> lineages(req.graphs.size());
  for (GraphRef& ref : req.graphs) {
    if (const auto* handle = std::get_if<std::string>(&ref)) {
      std::shared_ptr<const graph::Graph> g = core_.store().get(*handle, session_id_);
      if (!g) {
        throw ProtocolError(ErrorCode::UnknownHandle,
                            "unknown graph handle \"" + *handle +
                                "\" (expired, dropped, or never put)");
      }
      hashes[ptrs.size()] = api::GraphStore::parse_handle(*handle).value_or(0);
      lineages[ptrs.size()] = core_.store().lineage(*handle);
      ptrs.push_back(g.get());
      pinned.push_back(std::move(g));
    } else {
      decoded.push_back(std::move(std::get<graph::Graph>(ref)));
      ptrs.push_back(&decoded.back());
    }
  }

  api::BatchDiagnostics diag;
  std::vector<api::Response> responses;
  try {
    responses = core_.executor().run_batch(req.solver, {ptrs.data(), ptrs.size()},
                                           req.request, req.overrides, &diag,
                                           {hashes.data(), hashes.size()},
                                           {lineages.data(), lineages.size()});
  } catch (const api::RequestError& e) {
    // Undeclared option, type mismatch, traffic on a centralized-only
    // solver — the request's fault, not the solver's.
    return encode_error(ErrorCode::BadRequest, e.what());
  } catch (const std::exception& e) {
    return encode_error(ErrorCode::SolverFailure,
                        "solver '" + req.solver + "' failed: " + e.what());
  }
  core_.count_graphs(req.graphs.size());
  return encode_solve_result({responses.data(), responses.size()}, diag,
                             req.overrides.cache_namespace);
}

std::string Session::do_put_graph(const JsonValue& root) {
  if (core_.store().capacity() == 0) {
    // Not server_busy: with a zero-capacity store no drop_graph can ever
    // free room, so telling the client to retry would loop forever.
    throw ProtocolError(ErrorCode::BadRequest,
                        "put_graph is disabled on this server (graph store capacity 0)");
  }
  const JsonValue* graph = root.find("graph");
  if (!graph) {
    throw ProtocolError(ErrorCode::BadRequest, "put_graph needs a \"graph\" object");
  }
  graph::Graph g = decode_graph(*graph, core_.options().limits);
  api::GraphStore::PutResult put;
  try {
    put = core_.store().put(std::move(g), session_id_, ns_);
  } catch (const api::GraphStoreFull& e) {
    // Retryable once a client drops a graph — busy, not malformed.
    return encode_error(ErrorCode::ServerBusy, e.what());
  }
  std::string extra = "\"handle\":";
  json_append_string(extra, put.handle);
  extra += ",\"n\":" + std::to_string(put.vertices) + ",\"m\":" + std::to_string(put.edges) +
           ",\"new\":" + (put.inserted ? std::string("true") : std::string("false"));
  return encode_ok("put_graph", extra);
}

std::string Session::do_patch_graph(const JsonValue& root) {
  if (core_.store().capacity() == 0) {
    // Same reasoning as put_graph: nothing could ever be patched, so this is
    // a configuration fact, not a transient condition.
    throw ProtocolError(ErrorCode::BadRequest,
                        "patch_graph is disabled on this server (graph store capacity 0)");
  }
  const JsonValue* handle = root.find("handle");
  if (!handle || handle->type() != JsonValue::Type::String) {
    throw ProtocolError(ErrorCode::BadRequest, "patch_graph needs a string \"handle\" field");
  }
  if (!api::GraphStore::parse_handle(handle->as_string())) {
    // Shape errors are the request's fault; only well-formed handles that
    // resolve to nothing get the (retryable-after-put) unknown_handle code.
    throw ProtocolError(ErrorCode::BadRequest,
                        "\"" + handle->as_string() +
                            "\" is not a graph handle (expected \"g\" + 16 hex digits)");
  }
  const graph::GraphPatch patch = decode_patch(root, core_.options().limits);
  api::GraphStore::PatchResult result;
  try {
    result = core_.store().patch(handle->as_string(), patch, session_id_, ns_);
  } catch (const api::UnknownGraphHandle& e) {
    throw ProtocolError(ErrorCode::UnknownHandle,
                        std::string(e.what()) + " (expired, dropped, or never put)");
  } catch (const api::GraphStoreFull& e) {
    return encode_error(ErrorCode::ServerBusy, e.what());
  } catch (const std::invalid_argument& e) {
    // apply_patch's consistency validation against the actual parent:
    // duplicate edits, deletes of absent edges, adds of present ones...
    throw ProtocolError(ErrorCode::BadRequest, e.what());
  }
  std::string extra = "\"handle\":";
  json_append_string(extra, result.put.handle);
  extra += ",\"parent\":";
  json_append_string(extra, result.parent);
  extra += ",\"n\":" + std::to_string(result.put.vertices) +
           ",\"m\":" + std::to_string(result.put.edges) +
           ",\"new\":" + (result.put.inserted ? std::string("true") : std::string("false"));
  return encode_ok("patch_graph", extra);
}

std::string Session::do_drop_graph(const JsonValue& root) {
  const JsonValue* handle = root.find("handle");
  if (!handle || handle->type() != JsonValue::Type::String) {
    throw ProtocolError(ErrorCode::BadRequest, "drop_graph needs a string \"handle\" field");
  }
  if (!core_.store().drop(handle->as_string(), session_id_)) {
    // Covers both "no such handle" and "pinned by someone else" — the codes
    // are deliberately identical, so one tenant cannot probe another's pins.
    throw ProtocolError(ErrorCode::UnknownHandle,
                        "unknown graph handle \"" + handle->as_string() +
                            "\" (or not pinned by this session)");
  }
  std::string extra = "\"handle\":";
  json_append_string(extra, handle->as_string());
  return encode_ok("drop_graph", extra);
}

std::string Session::do_open_session(const JsonValue& root) {
  std::string ns;
  if (const JsonValue* v = root.find("namespace")) {
    ns = decode_namespace(*v, core_.options().limits);
  }
  ns_ = std::move(ns);
  std::string extra = "\"namespace\":";
  json_append_string(extra, ns_);
  return encode_ok("open_session", extra);
}

std::string Session::do_stats() {
  api::BatchExecutor& executor = core_.executor();
  core_.store().expire_leases();  // report post-expiry reality, not stale pins
  std::map<std::string, api::NamespaceStats> namespaces =
      executor.cache().namespace_stats();
  api::GraphStoreStats store = core_.store().stats();
  if (!core_.options().stats_all_namespaces) {
    // Don't leak other tenants' namespace tags: knowing a tag is all it
    // takes to read that tenant's warm cache, so a client sees only its own
    // slice (operators opt into the full map). Same rule for the store's
    // byte accounting and pin-lease map: own namespace, own session only.
    std::map<std::string, api::NamespaceStats> own;
    if (const auto it = namespaces.find(ns_); it != namespaces.end()) own.insert(*it);
    namespaces = std::move(own);
    std::map<std::string, std::uint64_t> own_bytes;
    if (const auto it = store.namespace_bytes.find(ns_); it != store.namespace_bytes.end()) {
      own_bytes.insert(*it);
    }
    store.namespace_bytes = std::move(own_bytes);
    std::map<api::SessionId, std::uint64_t> own_pins;
    if (const auto it = store.session_pins.find(session_id_);
        it != store.session_pins.end()) {
      own_pins.insert(*it);
    }
    store.session_pins = std::move(own_pins);
  }
  return encode_stats(executor.cache_stats(), namespaces, store, executor.health(),
                      core_.counters(), core_.uptime_seconds());
}

std::string Session::do_replicate_out(const JsonValue& root) {
  const std::string members =
      cluster::encode_replication_members(core_.store(), core_.executor().cache());
  const JsonValue* peer = root.find("peer");
  if (!peer) return encode_ok("replicate_out", members);  // pull: payload inline

  // Push mode: dial the peer and hand the payload to its replicate_in.
  if (peer->type() != JsonValue::Type::String) {
    throw ProtocolError(ErrorCode::BadRequest, "replicate \"peer\" must be \"host:port\"");
  }
  const std::string& addr = peer->as_string();
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    throw ProtocolError(ErrorCode::BadRequest, "replicate \"peer\" must be \"host:port\"");
  }
  int port = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    const char c = addr[i];
    if (c < '0' || c > '9') {
      throw ProtocolError(ErrorCode::BadRequest, "replicate \"peer\" port must be numeric");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      throw ProtocolError(ErrorCode::BadRequest, "replicate \"peer\" port out of range");
    }
  }
  try {
    ClientOptions peer_opts;
    peer_opts.connect_timeout_ms = 5000;
    peer_opts.io_timeout_ms = 60000;  // a big payload may take a moment
    ProtocolClient client(addr.substr(0, colon), port, /*http=*/false, "", peer_opts);
    const JsonValue response = client.exchange("replicate_in", members);
    require_ok(response, "replicate_in on " + addr);
    std::string extra = "\"peer\":";
    json_append_string(extra, addr);
    const JsonValue* installed = response.find("installed");
    const JsonValue* present = response.find("present");
    extra += ",\"installed\":" +
             std::to_string(installed ? installed->as_int() : 0) + ",\"present\":" +
             std::to_string(present ? present->as_int() : 0);
    return encode_ok("replicate_out", extra);
  } catch (const std::exception& e) {
    return encode_error(ErrorCode::IoError,
                        "replicate to " + addr + " failed: " + e.what());
  }
}

std::string Session::do_replicate_in(const JsonValue& root) {
  const cluster::ReplicationResult result = cluster::apply_replication(
      root, core_.store(), core_.executor().cache(), core_.options().limits);
  std::string extra = "\"installed\":" + std::to_string(result.installed) +
                      ",\"present\":" + std::to_string(result.present) +
                      ",\"rejected\":" + std::to_string(result.rejected) +
                      ",\"cache_merged\":" + (result.cache_merged ? "true" : "false");
  return encode_ok("replicate_in", extra);
}

std::string Session::do_snapshot(std::string_view verb, const JsonValue& root) {
  const JsonValue* path = root.find("path");
  if (!path || path->type() != JsonValue::Type::String) {
    return encode_error(ErrorCode::BadRequest,
                        "\"" + std::string(verb) + "\" needs a string \"path\" field");
  }
  const std::string resolved = resolve_snapshot_path(path->as_string());
  try {
    if (verb == "save_cache") {
      core_.executor().cache().save_file(resolved);
    } else {
      core_.executor().cache().load_file(resolved);
    }
  } catch (const std::exception& e) {
    return encode_error(ErrorCode::IoError, e.what());
  }
  std::string extra = "\"path\":";
  json_append_string(extra, path->as_string());
  extra += ",\"entries\":" + std::to_string(core_.executor().cache_stats().size);
  return encode_ok(verb, extra);
}

std::string Session::resolve_snapshot_path(const std::string& path) const {
  const std::string& dir = core_.options().snapshot_dir;
  if (dir.empty()) {
    throw ProtocolError(ErrorCode::BadRequest,
                        "snapshot verbs are disabled (no snapshot directory configured)");
  }
  // Clients name snapshots, not filesystem locations: a relative path with
  // no ".." segment, resolved under the operator-chosen directory. Anything
  // else could truncate/probe arbitrary files the server can access.
  if (path.empty() || path.front() == '/' || path.find("..") != std::string::npos) {
    throw ProtocolError(ErrorCode::BadRequest,
                        "snapshot path must be relative without \"..\" (it resolves "
                        "under the server's snapshot directory)");
  }
  return dir + "/" + path;
}

}  // namespace lmds::server
