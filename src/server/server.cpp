#include "server/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "server/json.hpp"
#include "server/net.hpp"

namespace lmds::server {

Server::Server(ServerOptions opts) : Server(std::move(opts), api::Registry::instance()) {}

Server::Server(ServerOptions opts, const api::Registry& registry)
    : opts_(std::move(opts)), registry_(registry), executor_(opts_.batch, registry) {}

Server::~Server() {
  request_stop();
  std::lock_guard lock(conn_mu_);
  for (const auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
    close_fd(conn->fd);
  }
  conns_.clear();
  close_fd(listen_fd_);
}

ServerCounters Server::counters() const {
  return {connections_.load(), requests_.load(), graphs_solved_.load()};
}

std::string Server::handle_line(std::string_view line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  JsonValue root;
  try {
    root = json_parse(line);
  } catch (const JsonError& e) {
    return encode_error(ErrorCode::BadRequest, std::string("invalid JSON: ") + e.what());
  }
  const JsonValue* op = root.find("op");
  if (!op || op->type() != JsonValue::Type::String) {
    return encode_error(ErrorCode::BadRequest, "request needs a string \"op\" field");
  }
  const std::string& verb = op->as_string();

  try {
    if (verb == "solve") {
      SolveRequest req = decode_solve(root, registry_, opts_.limits);
      api::BatchDiagnostics diag;
      std::vector<api::Response> responses;
      try {
        responses = executor_.run_batch(req.solver, {req.graphs.data(), req.graphs.size()},
                                        req.request, &diag);
      } catch (const api::RequestError& e) {
        // Undeclared option, type mismatch, traffic on a centralized-only
        // solver — the request's fault, not the solver's.
        return encode_error(ErrorCode::BadRequest, e.what());
      } catch (const std::exception& e) {
        return encode_error(ErrorCode::SolverFailure,
                            "solver '" + req.solver + "' failed: " + e.what());
      }
      graphs_solved_.fetch_add(req.graphs.size(), std::memory_order_relaxed);
      return encode_solve_result({responses.data(), responses.size()}, diag);
    }
    if (verb == "solvers") return encode_solvers(registry_);
    if (verb == "stats") return encode_stats(executor_.cache_stats(), counters());
    if (verb == "save_cache" || verb == "load_cache") {
      const JsonValue* path = root.find("path");
      if (!path || path->type() != JsonValue::Type::String) {
        return encode_error(ErrorCode::BadRequest,
                            "\"" + verb + "\" needs a string \"path\" field");
      }
      const std::string resolved = resolve_snapshot_path(path->as_string());
      try {
        if (verb == "save_cache") {
          executor_.cache().save_file(resolved);
        } else {
          executor_.cache().load_file(resolved);
        }
      } catch (const std::exception& e) {
        return encode_error(ErrorCode::IoError, e.what());
      }
      std::string extra = "\"path\":";
      json_append_string(extra, path->as_string());
      extra += ",\"entries\":" + std::to_string(executor_.cache_stats().size);
      return encode_ok(verb, extra);
    }
    if (verb == "shutdown") {
      request_stop();
      return encode_ok("shutdown");
    }
    return encode_error(ErrorCode::BadRequest, "unknown op \"" + verb + "\"");
  } catch (const ProtocolError& e) {
    return encode_error(e.code(), e.what());
  }
}

void Server::bind_and_listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid host address: " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw std::runtime_error("bind(" + opts_.host + ":" + std::to_string(opts_.port) +
                             "): " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error("listen(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw std::runtime_error("getsockname(): " + std::string(std::strerror(errno)));
  }
  bound_port_ = ntohs(bound.sin_port);
}

std::string Server::resolve_snapshot_path(const std::string& path) const {
  if (opts_.snapshot_dir.empty()) {
    throw ProtocolError(ErrorCode::BadRequest,
                        "snapshot verbs are disabled (no snapshot directory configured)");
  }
  // Clients name snapshots, not filesystem locations: a relative path with
  // no ".." segment, resolved under the operator-chosen directory. Anything
  // else could truncate/probe arbitrary files the server can access.
  if (path.empty() || path.front() == '/' || path.find("..") != std::string::npos) {
    throw ProtocolError(ErrorCode::BadRequest,
                        "snapshot path must be relative without \"..\" (it resolves "
                        "under the server's snapshot directory)");
  }
  return opts_.snapshot_dir + "/" + path;
}

void Server::reap_finished_locked() {
  std::erase_if(conns_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load()) return false;
    if (conn->thread.joinable()) conn->thread.join();  // finished: joins instantly
    close_fd(conn->fd);
    return true;
  });
}

void Server::serve() {
  if (listen_fd_ < 0) throw std::runtime_error("serve() before bind_and_listen()");
  while (!stop_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // Per-connection failures must not take down a long-lived server: a
      // client aborting its handshake (ECONNABORTED/EPROTO) is retryable,
      // and resource pressure (fd table full, no buffers) gets a brief
      // back-off. Anything else — notably the EINVAL after request_stop()
      // shuts the listener — ends the loop.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      break;
    }
    if (stop_.load()) {
      close_fd(fd);
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(conn_mu_);
    reap_finished_locked();  // bound dead threads by live connections, not total served
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.push_back(std::move(conn));
    raw->thread = std::thread(&Server::handle_connection, this, raw);
  }
  // Drain: join every connection thread before returning so the caller can
  // safely destroy the Server (threads reference `this`).
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard lock(conn_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    close_fd(conn->fd);
  }
}

void Server::handle_connection(Connection* conn) {
  const int fd = conn->fd;
  LineReader reader(fd);
  while (!stop_.load()) {
    std::optional<std::string> line = reader.next_line(opts_.limits.max_line_bytes);
    if (!line) {
      if (reader.oversized()) {
        // The line never terminated within the limit; report and drop the
        // connection — resynchronizing mid-line would misparse what follows.
        (void)send_all(fd, encode_error(ErrorCode::BadRequest,
                                        "request line exceeds " +
                                            std::to_string(opts_.limits.max_line_bytes) +
                                            " bytes") +
                               "\n");
      }
      break;
    }
    if (line->empty()) continue;  // blank keep-alive lines are ignored
    const std::string response = handle_line(*line);
    if (!send_all(fd, response + "\n")) break;
  }
  ::shutdown(fd, SHUT_RDWR);  // the owner (reap/drain/destructor) closes it
  conn->done.store(true);
}

void Server::request_stop() {
  if (stop_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  std::lock_guard lock(conn_mu_);
  // SHUT_RD only: unblocks each connection's recv() while still letting an
  // in-flight response (the shutdown ack itself) reach the client. The fd
  // is guaranteed open here — only reap/drain (same mutex) may close it.
  for (const auto& conn : conns_) {
    if (!conn->done.load()) ::shutdown(conn->fd, SHUT_RD);
  }
}

}  // namespace lmds::server
