#include "server/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <stdexcept>

#include "server/http.hpp"
#include "server/json.hpp"
#include "server/net.hpp"

namespace lmds::server {

Server::Server(ServerOptions opts) : Server(std::move(opts), api::Registry::instance()) {}

Server::Server(ServerOptions opts, const api::Registry& registry)
    : opts_(std::move(opts)), core_(opts_.core, registry) {
  // The stop callback unblocks accept() in serve() and wakes blocked
  // connection reads; registered here so a shutdown verb handled through
  // any Session (any transport, or handle_line in a test) stops the server.
  core_.set_stop_callback([this] {
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (http_listen_fd_ >= 0) ::shutdown(http_listen_fd_, SHUT_RDWR);
    common::MutexLock lock(conn_mu_);
    // SHUT_RD only: unblocks each connection's recv() while still letting an
    // in-flight response (the shutdown ack itself) reach the client. The fd
    // is guaranteed open here — only reap/drain (same mutex) may close it.
    for (const auto& conn : conns_) {
      if (!conn->done.load()) ::shutdown(conn->fd, SHUT_RD);
    }
  });
}

Server::~Server() {
  request_stop();
  common::MutexLock lock(conn_mu_);
  for (const auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
    close_fd(conn->fd);
  }
  conns_.clear();
  close_fd(listen_fd_);
  close_fd(http_listen_fd_);
}

std::string Server::handle_line(std::string_view line) {
  // A fresh Session per call: stateless and safe to call from any number of
  // threads, exactly like PR 4's handle_line. Callers that want open_session
  // state hold their own Session over core().
  Session session(core_);
  return session.handle_line(line);
}

std::pair<int, int> Server::bind_one(int port) const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + errno_string(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    close_fd(fd);
    throw std::runtime_error("invalid host address: " + opts_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string error = errno_string(errno);
    close_fd(fd);
    throw std::runtime_error("bind(" + opts_.host + ":" + std::to_string(port) +
                             "): " + error);
  }
  if (::listen(fd, 64) != 0) {
    const std::string error = errno_string(errno);
    close_fd(fd);
    throw std::runtime_error("listen(): " + error);
  }
  // Non-blocking listeners: a connection that is reset between poll() and
  // accept() must yield EAGAIN, not block the single accepting thread on
  // one listener while the other starves.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    const std::string error = errno_string(errno);
    close_fd(fd);
    throw std::runtime_error("fcntl(O_NONBLOCK): " + error);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string error = errno_string(errno);
    close_fd(fd);
    throw std::runtime_error("getsockname(): " + error);
  }
  return {fd, ntohs(bound.sin_port)};
}

void Server::bind_and_listen() {
  std::tie(listen_fd_, bound_port_) = bind_one(opts_.port);
  if (opts_.http_port >= 0) {
    std::tie(http_listen_fd_, bound_http_port_) = bind_one(opts_.http_port);
  }
}

std::size_t Server::reap_finished_locked() {
  std::erase_if(conns_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load()) return false;
    if (conn->thread.joinable()) conn->thread.join();  // finished: joins instantly
    close_fd(conn->fd);
    return true;
  });
  return conns_.size();
}

void Server::serve() {
  if (listen_fd_ < 0) throw std::runtime_error("serve() before bind_and_listen()");
  while (!core_.stopping()) {
    pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds++] = {listen_fd_, POLLIN, 0};
    if (http_listen_fd_ >= 0) fds[nfds++] = {http_listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP))) continue;
      const bool http = fds[i].fd == http_listen_fd_;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) {
        // Per-connection failures must not take down a long-lived server: a
        // client aborting its handshake (ECONNABORTED/EPROTO) is retryable,
        // and resource pressure (fd table full, no buffers) gets a brief
        // back-off. Anything else — notably the EINVAL after request_stop()
        // shuts the listener — ends the loop.
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // raced: back to poll()
        if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          continue;
        }
        core_.request_stop();
        break;
      }
      if (core_.stopping()) {
        close_fd(fd);
        break;
      }
      common::MutexLock lock(conn_mu_);
      // Bound dead threads by live connections, not total served — and use
      // the live count to enforce the connection cap.
      const std::size_t live = reap_finished_locked();
      if (live >= opts_.max_connections) {
        // Accept storms must not translate into unbounded threads: answer
        // server_busy on the accepting thread (one tiny write) and close.
        const std::string busy = "connection limit reached (" +
                                 std::to_string(opts_.max_connections) +
                                 " concurrent connections); retry later";
        if (http) {
          (void)send_all(fd, http_error_response(503, ErrorCode::ServerBusy, busy));
        } else {
          (void)send_all(fd, encode_error(ErrorCode::ServerBusy, busy) + "\n");
        }
        // Closing with unread request bytes in the receive queue makes TCP
        // send an RST that can destroy the queued response. Half-close the
        // write side (flush + FIN), then consume whatever the client already
        // transmitted — non-blocking, so a slow client cannot stall the
        // accept loop; bytes still in flight after this keep the small
        // residual race.
        ::shutdown(fd, SHUT_WR);
        char drain[4096];
        while (::recv(fd, drain, sizeof drain, MSG_DONTWAIT) > 0) {
        }
        close_fd(fd);
        core_.count_rejected();
        continue;
      }
      core_.count_connection();
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->http = http;
      Connection* raw = conn.get();
      conns_.push_back(std::move(conn));
      raw->thread = std::thread(&Server::handle_connection, this, raw);
    }
  }
  // Drain: join every connection thread before returning so the caller can
  // safely destroy the Server (threads reference `this`).
  std::vector<std::unique_ptr<Connection>> conns;
  {
    common::MutexLock lock(conn_mu_);
    conns.swap(conns_);
  }
  // The stop callback SHUT_RDs connections it sees under conn_mu_, but this
  // drain may win that lock first and swap conns_ out from under it — so
  // wake every still-blocked recv() here too before joining, or a reader
  // that missed the callback would block the drain forever.
  for (const auto& conn : conns) {
    if (!conn->done.load()) ::shutdown(conn->fd, SHUT_RD);
  }
  for (const auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    close_fd(conn->fd);
  }
}

void Server::handle_connection(Connection* conn) {
  if (conn->http) {
    serve_http_connection(conn->fd);
  } else {
    serve_line_connection(conn->fd);
  }
  ::shutdown(conn->fd, SHUT_RDWR);  // the owner (reap/drain/destructor) closes it
  conn->done.store(true);
}

void Server::serve_line_connection(int fd) {
  LineReader reader(fd);
  // Owned lease scope: pins made on this connection belong to it and are
  // released when the Session dies with the connection — a crashed client
  // cannot leave capacity pinned (tested by tests/test_cluster.cpp).
  Session session(core_, Session::LeaseScope::Owned);  // + open_session state
  while (!core_.stopping()) {
    std::optional<std::string> line = reader.next_line(opts_.core.limits.max_line_bytes);
    if (!line) {
      if (reader.oversized()) {
        // The line never terminated within the limit; report and drop the
        // connection — resynchronizing mid-line would misparse what follows.
        (void)send_all(fd, encode_error(ErrorCode::BadRequest,
                                        "request line exceeds " +
                                            std::to_string(opts_.core.limits.max_line_bytes) +
                                            " bytes") +
                               "\n");
      }
      break;
    }
    if (line->empty()) continue;  // blank keep-alive lines are ignored
    const std::string response = session.handle_line(*line);
    if (!send_all(fd, response + "\n")) break;
  }
}

void Server::serve_http_connection(int fd) {
  LineReader reader(fd);
  // Owned for the same reason as the line transport; namespace comes from
  // each request's header.
  Session session(core_, Session::LeaseScope::Owned);
  while (!core_.stopping()) {
    std::optional<HttpRequest> request;
    try {
      request = read_http_request(reader, fd, opts_.core.limits);
    } catch (const HttpError& e) {
      // Framing is unrecoverable mid-stream: answer once and drop.
      (void)send_all(fd, http_error_response(e.status(), ErrorCode::BadRequest, e.what()));
      break;
    }
    if (!request) break;  // clean EOF
    const std::string response = handle_http_request(*request, session);
    if (!send_all(fd, response)) break;
    if (!request->keep_alive) break;
  }
}

void Server::request_stop() { core_.request_stop(); }

}  // namespace lmds::server
