#pragma once
// Minimal self-contained JSON for the lmds_serve wire protocol: a tagged
// value type, a strict recursive-descent parser, and locale-independent
// string/number emission helpers. Deliberately tiny — the protocol
// (src/server/protocol.hpp) only needs objects, arrays, strings, numbers and
// booleans — and dependency-free, since the repo vendors no third-party
// libraries.
//
// Numbers: a literal without '.', 'e' or 'E' that fits std::int64_t parses
// as Int, everything else as Double. Both satisfy as_double(); only Int
// satisfies as_int() — mirroring ParamValue's "never truncate silently"
// rule one layer down.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lmds::server {

/// Thrown by json_parse on malformed input and by the as_*() accessors on a
/// type mismatch. The serving loop maps it to a "bad_request" error line.
struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;  // null
  JsonValue(std::nullptr_t) {}                  // NOLINT(google-explicit-constructor)
  JsonValue(bool v) : v_(v) {}                  // NOLINT(google-explicit-constructor)
  JsonValue(std::int64_t v) : v_(v) {}          // NOLINT(google-explicit-constructor)
  JsonValue(double v) : v_(v) {}                // NOLINT(google-explicit-constructor)
  JsonValue(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(Array v) : v_(std::move(v)) {}      // NOLINT(google-explicit-constructor)
  JsonValue(Object v) : v_(std::move(v)) {}     // NOLINT(google-explicit-constructor)

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::Null; }

  /// Strict accessors; throw JsonError on type mismatch. as_double accepts
  /// Int (exact promotion); as_int does not accept Double.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when this is not an object or the key is
  /// absent — the protocol's "optional field" idiom.
  const JsonValue* find(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object>
      v_;  // index order must match Type
};

std::string_view to_string(JsonValue::Type t);

/// Parses exactly one JSON value spanning the whole input (trailing
/// whitespace allowed, trailing garbage is an error). Nesting deeper than 64
/// levels is rejected. Throws JsonError with a byte offset in the message.
JsonValue json_parse(std::string_view text);

/// Appends `s` as a quoted JSON string with the mandatory escapes.
void json_append_string(std::string& out, std::string_view s);

/// Appends a finite double in locale-independent shortest round-trip form
/// (std::to_chars — never a decimal comma). Non-finite values emit null.
void json_append_double(std::string& out, double v);

/// Serializes a parsed value back to compact JSON (no whitespace). Object
/// members emit in std::map order, i.e. sorted by key — NOT the original
/// wire order, so a parse→dump round trip is canonicalizing, not
/// byte-preserving. The router therefore never dumps whole responses (their
/// bit-identity is contractual); it dumps the small values it builds itself.
std::string json_dump(const JsonValue& v);

}  // namespace lmds::server
