#include "server/client.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>

namespace lmds::server {

namespace {

// An exchange that died because the server closed the connection — the one
// failure mode reconnect_on_eof may retry. Timeouts and protocol garbage
// stay plain runtime_errors: the connection is not known-dead, so replaying
// the request on a fresh one could double-apply it.
struct ConnectionClosed : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int connect_or_throw(const std::string& host, int port, int timeout_ms) {
  const int fd = tcp_connect(host, port, timeout_ms);
  if (fd < 0) {
    throw std::runtime_error("cannot connect to " + host + ":" + std::to_string(port) +
                             ": " + errno_string(errno));
  }
  return fd;
}

}  // namespace

ProtocolClient::ProtocolClient(const std::string& host, int port, bool http, std::string ns,
                               ClientOptions options)
    : ProtocolClient(connect_or_throw(host, port, options.connect_timeout_ms), http,
                     std::move(ns), options) {
  host_ = host;
  port_ = port;
}

ProtocolClient::ProtocolClient(int fd, bool http, std::string ns, ClientOptions options)
    : fd_(fd), reader_(fd), http_(http), ns_(std::move(ns)), options_(options) {
  if (options_.io_timeout_ms > 0) set_io_timeout(fd_, options_.io_timeout_ms);
}

ProtocolClient::~ProtocolClient() { close_fd(fd_); }

void ProtocolClient::reconnect() {
  const int fd = connect_or_throw(host_, port_, options_.connect_timeout_ms);
  close_fd(fd_);
  fd_ = fd;
  reader_ = LineReader(fd_);
  if (options_.io_timeout_ms > 0) set_io_timeout(fd_, options_.io_timeout_ms);
  if (!http_ && !ns_.empty()) {
    // The namespace was session state on the dead connection; restore it
    // before replaying the caller's request. No retry inside a retry.
    const JsonValue response =
        exchange_line_once("{\"op\":\"open_session\",\"namespace\":" + [&] {
          std::string quoted;
          json_append_string(quoted, ns_);
          return quoted;
        }() + "}");
    const JsonValue* ok = response.find("ok");
    if (!ok || !ok->as_bool()) throw std::runtime_error("open_session failed after reconnect");
  }
}

JsonValue ProtocolClient::exchange(const std::string& op, const std::string& members) {
  if (!http_) {
    std::string line = "{\"op\":\"" + op + "\"";
    if (!members.empty()) line += "," + members;
    line += "}";
    return exchange_line(line);
  }
  // HTTP: the verb moves into the route.
  if (op == "solve") return exchange_http("POST", "/v2/solve", "{" + members + "}");
  if (op == "solvers") return exchange_http("GET", "/v2/solvers", "");
  if (op == "stats") return exchange_http("GET", "/v2/stats", "");
  if (op == "shutdown") return exchange_http("POST", "/v2/shutdown", "");
  if (op == "replicate_in") return exchange_http("POST", "/v2/replicate", "{" + members + "}");
  if (op == "replicate_out") {
    // Pull mode (no members) fetches the payload; push mode carries a peer.
    if (members.empty()) return exchange_http("GET", "/v2/replicate", "");
    return exchange_http("POST", "/v2/replicate/push", "{" + members + "}");
  }
  throw std::runtime_error("op '" + op + "' has no HTTP route in this client");
}

JsonValue ProtocolClient::put_graph(const std::string& graph_json) {
  if (http_) return exchange_http("PUT", "/v2/graphs", graph_json);
  return exchange_line("{\"op\":\"put_graph\",\"graph\":" + graph_json + "}");
}

JsonValue ProtocolClient::drop_graph(const std::string& handle) {
  if (http_) return exchange_http("DELETE", "/v2/graphs/" + handle, "");
  return exchange_line("{\"op\":\"drop_graph\",\"handle\":\"" + handle + "\"}");
}

JsonValue ProtocolClient::patch_graph(const std::string& handle,
                                      const std::string& patch_members) {
  if (http_) {
    return exchange_http("POST", "/v2/graphs/" + handle + "/patch", "{" + patch_members + "}");
  }
  return exchange_line("{\"op\":\"patch_graph\",\"handle\":\"" + handle + "\"," +
                       patch_members + "}");
}

void ProtocolClient::open_session() {
  if (http_ || ns_.empty()) return;
  std::string line = "{\"op\":\"open_session\",\"namespace\":";
  json_append_string(line, ns_);
  line += "}";
  const JsonValue response = exchange_line(line);
  const JsonValue* ok = response.find("ok");
  if (!ok || !ok->as_bool()) throw std::runtime_error("open_session failed");
}

JsonValue ProtocolClient::exchange_line(const std::string& line) {
  if (!can_reconnect()) return exchange_line_once(line);
  try {
    return exchange_line_once(line);
  } catch (const ConnectionClosed&) {
    reconnect();
    return exchange_line_once(line);
  }
}

JsonValue ProtocolClient::exchange_http(const std::string& method, const std::string& target,
                                        const std::string& body) {
  if (!can_reconnect()) return exchange_http_once(method, target, body);
  try {
    return exchange_http_once(method, target, body);
  } catch (const ConnectionClosed&) {
    reconnect();
    return exchange_http_once(method, target, body);
  }
}

JsonValue ProtocolClient::exchange_line_once(const std::string& line) {
  if (!send_all(fd_, line + "\n")) {
    throw ConnectionClosed("send failed (server closed the connection?)");
  }
  const auto response = reader_.next_line(64u << 20);
  if (!response) {
    if (reader_.timed_out()) throw std::runtime_error("read timed out waiting for the server");
    throw ConnectionClosed("server closed the connection mid-exchange");
  }
  return json_parse(*response);
}

JsonValue ProtocolClient::exchange_http_once(const std::string& method,
                                             const std::string& target,
                                             const std::string& body) {
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: lmds\r\n";
  if (!ns_.empty()) request += "X-Lmds-Namespace: " + ns_ + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  if (!send_all(fd_, request)) {
    throw ConnectionClosed("send failed (server closed the connection?)");
  }
  // Status line, headers (only Content-Length matters to us), body. Only an
  // EOF *before any response byte* is retryable — past the status line the
  // server may have acted on the request, so a replay could double-apply.
  const auto status_line = reader_.next_line(1u << 16);
  if (!status_line) {
    if (reader_.timed_out()) throw std::runtime_error("read timed out waiting for the server");
    throw ConnectionClosed("server closed the connection before responding");
  }
  if (!status_line->starts_with("HTTP/1.1 ")) {
    throw std::runtime_error("bad HTTP status line");
  }
  std::size_t content_length = 0;
  while (true) {
    const auto header = reader_.next_line(1u << 16);
    if (!header) throw std::runtime_error("connection closed inside HTTP headers");
    if (header->empty()) break;
    static constexpr std::string_view kPrefix = "content-length:";
    std::string lowered = *header;
    for (char& c : lowered) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lowered.starts_with(kPrefix)) {
      content_length = static_cast<std::size_t>(
          std::strtoull(header->c_str() + kPrefix.size(), nullptr, 10));
    }
  }
  const auto body_bytes = reader_.read_exact(content_length);
  if (!body_bytes) throw std::runtime_error("connection closed inside HTTP body");
  return json_parse(*body_bytes);
}

bool ProtocolClient::send_raw(const std::string& bytes) { return send_all(fd_, bytes); }

std::optional<std::string> ProtocolClient::read_raw_line(std::size_t max_bytes) {
  return reader_.next_line(max_bytes);
}

void require_ok(const JsonValue& response, const std::string& what) {
  const JsonValue* ok = response.find("ok");
  if (ok && ok->as_bool()) return;
  const JsonValue* error = response.find("error");
  throw std::runtime_error(what + " failed: " +
                           (error ? error->as_string() : std::string("no error field")));
}

}  // namespace lmds::server
