#include "server/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

namespace lmds::server {

int tcp_connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd(fd);
    errno = EINVAL;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    close_fd(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int tcp_connect(const std::string& host, int port, int timeout_ms) {
  if (timeout_ms <= 0) return tcp_connect(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd(fd);
    errno = EINVAL;
    return -1;
  }
  // Non-blocking connect + poll-for-writable is the portable way to put a
  // deadline on the three-way handshake; SO_SNDTIMEO does not apply to
  // connect(2) on Linux.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    const int saved = errno;
    close_fd(fd);
    errno = saved;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    const int saved = errno;
    close_fd(fd);
    errno = saved;
    return -1;
  }
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  int rc;
  while ((rc = ::poll(&pfd, 1, timeout_ms)) < 0 && errno == EINTR) {
  }
  if (rc == 0) {
    close_fd(fd);
    errno = ETIMEDOUT;
    return -1;
  }
  int err = 0;
  socklen_t len = sizeof err;
  if (rc < 0 ||
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    const int saved = err != 0 ? err : errno;
    close_fd(fd);
    errno = saved;
    return -1;
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {  // back to blocking
    const int saved = errno;
    close_fd(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

bool set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  }
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0 &&
         ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) == 0;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::optional<std::string> LineReader::next_line(std::size_t max_bytes) {
  if (oversized_) return std::nullopt;
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > max_bytes) {
      oversized_ = true;
      return std::nullopt;
    }
    if (eof_) {
      // Trailing data without a final newline still counts as a line.
      if (buffer_.empty()) return std::nullopt;
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the fd is still usable, report "no line" but
        // remember why so the caller can tell silence from a closed peer.
        timed_out_ = true;
        return std::nullopt;
      }
      eof_ = true;  // connection error: treat as EOF
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    timed_out_ = false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> LineReader::read_exact(std::size_t n) {
  while (buffer_.size() < n && !eof_) {
    char chunk[65536];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        timed_out_ = true;
        return std::nullopt;
      }
      eof_ = true;
      break;
    }
    if (got == 0) {
      eof_ = true;
      break;
    }
    timed_out_ = false;
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
  if (buffer_.size() < n) return std::nullopt;  // peer closed mid-body
  std::string out = buffer_.substr(0, n);
  buffer_.erase(0, n);
  return out;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

namespace {
// strerror_r comes in two flavors; glibc with _GNU_SOURCE (the g++ default)
// returns char*, POSIX returns int and fills the buffer. Overloading on the
// result type handles both without a feature-test-macro dance.
// [[maybe_unused]]: exactly one overload is instantiated per libc.
[[maybe_unused]] std::string strerror_result(const char* msg, const char* /*buf*/) {
  return msg;
}
[[maybe_unused]] std::string strerror_result(int rc, const char* buf) {
  return rc == 0 ? std::string(buf) : std::string("unknown error");
}
}  // namespace

std::string errno_string(int err) {
  char buf[256] = {};
  return strerror_result(::strerror_r(err, buf, sizeof buf), buf);
}

}  // namespace lmds::server
