// lmds_serve — the long-lived batch-serving front-end. Owns one ServerCore
// (worker pool + work-stealing shards + LRU response cache + graph store)
// and answers protocol v2 (src/server/protocol.hpp) over the newline-
// delimited JSON/TCP line protocol, plus — with --http-port — the HTTP/1.1
// front-end of src/server/http.hpp over the same core. See README.md
// "Serving" for the protocol by example.
//
//   $ ./lmds_serve --port 7411 --http-port 7412 --threads 4
//         --cache-capacity 4096 --snapshot cache.lmds
//
// --snapshot FILE warms the response cache from FILE at startup (when it
// exists) and saves it back on clean shutdown, so a restarted server answers
// replayed batches from cache; the save_cache / load_cache admin verbs do
// the same on demand, at client-chosen names confined to --snapshot-dir.
//
// Cluster mode (src/cluster/, docs/CLUSTER.md):
//
//   workers:  ./lmds_serve --port 7421 --lease-ttl-ms 30000
//             ./lmds_serve --port 7422 --lease-ttl-ms 30000
//   router:   ./lmds_serve --port 7411 --router
//                 --peer 127.0.0.1:7421 --peer 127.0.0.1:7422
//
// The router consistent-hashes graph handles across the peers, fans solve
// batches out, and reassembles the responses bit-identical to a single
// server. --max-namespace-bytes / --max-namespace-inflight bound one
// tenant's store footprint and concurrency on any server (worker or not).
//
// Exit codes: 0 clean shutdown; 1 startup failure (bad flags, bind error).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "cluster/router.hpp"
#include "server/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lmds_serve [--host H] [--port P] [--port-file FILE]\n"
               "                  [--http-port P] [--http-port-file FILE]\n"
               "                  [--threads N] [--shard-size N] [--cache-capacity N]\n"
               "                  [--store-capacity N] [--max-connections N]\n"
               "                  [--stats-all-namespaces]\n"
               "                  [--snapshot FILE] [--snapshot-dir DIR | --no-snapshot-verbs]\n"
               "                  [--max-line-bytes N] [--max-graph-vertices N]\n"
               "                  [--max-batch-graphs N]\n"
               "                  [--lease-ttl-ms N] [--max-namespace-bytes N]\n"
               "                  [--max-namespace-inflight N]\n"
               "                  [--router --peer HOST:PORT ... [--vnodes N]]\n"
               "defaults: 127.0.0.1:7411, threads 0 (hardware), shard_size 4,\n"
               "          cache 4096 entries, graph store 1024 graphs,\n"
               "          max 256 concurrent connections, HTTP disabled;\n"
               "          --port/--http-port 0 picks an ephemeral port\n"
               "          (printed on stdout and to --port-file/--http-port-file).\n"
               "Client save_cache/load_cache paths resolve under --snapshot-dir\n"
               "(default: the working directory); --no-snapshot-verbs disables them.\n"
               "--snapshot itself is operator-local and unrestricted.\n"
               "--lease-ttl-ms: pins made over a connection expire that many ms\n"
               "after the owner's last touch (0 = never, the default).\n"
               "--max-namespace-bytes / --max-namespace-inflight: per-tenant\n"
               "store-size and solve-concurrency quotas (0 = unlimited).\n"
               "--router turns this server into a cluster coordinator over the\n"
               "--peer workers (at least one required; see docs/CLUSTER.md).\n");
  return 1;
}

// The same strict parser mds_cli uses for --param values: trailing garbage
// and out-of-range values are rejected, never wrapped.
bool parse_int_flag(const char* raw, int min, int max, int* out) {
  const auto v = lmds::api::parse_param_value(raw, lmds::api::ParamValue::Type::Int);
  if (!v || v->as_int() < min || v->as_int() > max) return false;
  *out = v->as_int();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lmds;

  server::ServerOptions opts;
  opts.port = 7411;
  opts.core.batch.threads = 0;  // hardware concurrency
  opts.core.batch.cache_capacity = 4096;
  std::string snapshot;
  std::string port_file;
  std::string http_port_file;
  bool router_mode = false;
  cluster::RouterOptions router_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    int parsed = 0;
    if (arg == "--host" && value) {
      opts.host = value;
      ++i;
    } else if (arg == "--port" && value && parse_int_flag(value, 0, 65535, &parsed)) {
      opts.port = parsed;
      ++i;
    } else if (arg == "--port-file" && value) {
      port_file = value;
      ++i;
    } else if (arg == "--http-port" && value && parse_int_flag(value, 0, 65535, &parsed)) {
      opts.http_port = parsed;
      ++i;
    } else if (arg == "--http-port-file" && value) {
      http_port_file = value;
      ++i;
    } else if (arg == "--max-connections" && value && parse_int_flag(value, 1, 1 << 20, &parsed)) {
      opts.max_connections = static_cast<std::size_t>(parsed);
      ++i;
    } else if (arg == "--store-capacity" && value && parse_int_flag(value, 0, 1 << 30, &parsed)) {
      opts.core.store_capacity = static_cast<std::size_t>(parsed);
      ++i;
    } else if (arg == "--stats-all-namespaces") {
      opts.core.stats_all_namespaces = true;
    } else if (arg == "--threads" && value && parse_int_flag(value, 0, 4096, &parsed)) {
      opts.core.batch.threads = parsed;
      ++i;
    } else if (arg == "--shard-size" && value && parse_int_flag(value, 1, 1 << 20, &parsed)) {
      opts.core.batch.shard_size = parsed;
      ++i;
    } else if (arg == "--cache-capacity" && value &&
               parse_int_flag(value, 0, 1 << 30, &parsed)) {
      opts.core.batch.cache_capacity = static_cast<std::size_t>(parsed);
      ++i;
    } else if (arg == "--snapshot" && value) {
      snapshot = value;
      ++i;
    } else if (arg == "--snapshot-dir" && value) {
      opts.core.snapshot_dir = value;
      ++i;
    } else if (arg == "--no-snapshot-verbs") {
      opts.core.snapshot_dir.clear();
    } else if (arg == "--max-line-bytes" && value &&
               parse_int_flag(value, 64, 1 << 30, &parsed)) {
      opts.core.limits.max_line_bytes = static_cast<std::size_t>(parsed);
      ++i;
    } else if (arg == "--max-graph-vertices" && value &&
               parse_int_flag(value, 1, 1 << 30, &parsed)) {
      opts.core.limits.max_graph_vertices = parsed;
      ++i;
    } else if (arg == "--max-batch-graphs" && value &&
               parse_int_flag(value, 1, 1 << 30, &parsed)) {
      opts.core.limits.max_batch_graphs = static_cast<std::size_t>(parsed);
      ++i;
    } else if (arg == "--lease-ttl-ms" && value &&
               parse_int_flag(value, 0, 1 << 30, &parsed)) {
      opts.core.lease_ttl_ms = parsed;
      ++i;
    } else if (arg == "--max-namespace-bytes" && value &&
               parse_int_flag(value, 0, 1 << 30, &parsed)) {
      opts.core.limits.max_namespace_store_bytes = static_cast<std::uint64_t>(parsed);
      ++i;
    } else if (arg == "--max-namespace-inflight" && value &&
               parse_int_flag(value, 0, 1 << 20, &parsed)) {
      opts.core.limits.max_namespace_inflight = parsed;
      ++i;
    } else if (arg == "--router") {
      router_mode = true;
    } else if (arg == "--peer" && value) {
      router_opts.peers.emplace_back(value);
      ++i;
    } else if (arg == "--vnodes" && value && parse_int_flag(value, 1, 1 << 16, &parsed)) {
      router_opts.vnodes = parsed;
      ++i;
    } else {
      std::fprintf(stderr, "lmds_serve: bad flag or value: %s\n", arg.c_str());
      return usage();
    }
  }

  if (!http_port_file.empty() && opts.http_port < 0) {
    // Fail fast: silently never writing the file would hang any supervisor
    // polling it for the bound port.
    std::fprintf(stderr, "lmds_serve: --http-port-file requires --http-port\n");
    return usage();
  }
  if (router_mode && router_opts.peers.empty()) {
    std::fprintf(stderr, "lmds_serve: --router requires at least one --peer HOST:PORT\n");
    return usage();
  }
  if (!router_mode && !router_opts.peers.empty()) {
    std::fprintf(stderr, "lmds_serve: --peer only makes sense with --router\n");
    return usage();
  }

  try {
    server::Server srv(opts);

    // The router must be installed before serving starts (the dispatch
    // override is read unsynchronized from connection threads) and must
    // outlive the server's connection threads, which serve() joins.
    std::unique_ptr<cluster::Router> router;
    if (router_mode) {
      router = std::make_unique<cluster::Router>(router_opts, srv.core());
      router->install();
      std::fprintf(stderr, "lmds_serve: routing across %zu peers\n",
                   router->ring().size());
    }

    if (!snapshot.empty()) {
      // A missing snapshot is the normal cold start; a corrupt one is worth
      // a warning but not a refusal to serve.
      if (std::ifstream probe(snapshot, std::ios::binary); probe) {
        try {
          srv.executor().cache().load_file(snapshot);
          std::fprintf(stderr, "lmds_serve: warmed %zu cache entries from %s\n",
                       srv.executor().cache_stats().size, snapshot.c_str());
        } catch (const std::exception& e) {
          std::fprintf(stderr, "lmds_serve: ignoring snapshot %s: %s\n", snapshot.c_str(),
                       e.what());
        }
      }
    }

    srv.bind_and_listen();
    std::printf("lmds_serve listening on %s:%d\n", opts.host.c_str(), srv.port());
    if (srv.http_port() >= 0) {
      std::printf("lmds_serve HTTP on %s:%d\n", opts.host.c_str(), srv.http_port());
    }
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream pf(port_file, std::ios::trunc);
      pf << srv.port() << '\n';
      if (!pf) {
        std::fprintf(stderr, "lmds_serve: cannot write %s\n", port_file.c_str());
        return 1;
      }
    }
    if (!http_port_file.empty() && srv.http_port() >= 0) {
      std::ofstream pf(http_port_file, std::ios::trunc);
      pf << srv.http_port() << '\n';
      if (!pf) {
        std::fprintf(stderr, "lmds_serve: cannot write %s\n", http_port_file.c_str());
        return 1;
      }
    }

    srv.serve();

    if (!snapshot.empty()) {
      try {
        srv.executor().cache().save_file(snapshot);
        std::fprintf(stderr, "lmds_serve: saved %zu cache entries to %s\n",
                     srv.executor().cache_stats().size, snapshot.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "lmds_serve: snapshot save failed: %s\n", e.what());
      }
    }
    const server::ServerCounters c = srv.counters();
    std::fprintf(stderr,
                 "lmds_serve: shutdown after %llu connections, %llu requests, "
                 "%llu graphs\n",
                 static_cast<unsigned long long>(c.connections),
                 static_cast<unsigned long long>(c.requests),
                 static_cast<unsigned long long>(c.graphs_solved));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lmds_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
