#pragma once
// The long-lived serving front-end: one Server owns one BatchExecutor (and
// therefore one cross-request ResponseCache) and answers the newline-
// delimited JSON protocol of protocol.hpp over a TCP socket.
//
// Layering:
//   * handle_line() is the socket-free core — one request line in, one
//     response line out. All protocol tests drive this directly.
//   * bind_and_listen()/serve() add the POSIX socket loop: one thread per
//     connection (the executor is reentrant; concurrent connections share
//     the response cache), a shutdown verb or request_stop() unblocks
//     accept() and drains the connection threads.
//
// Cache persistence: the save_cache/load_cache verbs snapshot the executor's
// ResponseCache (ResponseCache::serialize/deserialize), and lmds_serve's
// --snapshot flag loads the file at startup / saves it on shutdown — a
// restarted server answers a replayed batch from cache (asserted in
// tests/test_server.cpp and the CI smoke step).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "server/protocol.hpp"

namespace lmds::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port from port()
  api::BatchOptions batch{.threads = 1, .shard_size = 4, .cache_capacity = 1024};
  ServerLimits limits;
  /// Directory the save_cache/load_cache verbs resolve client-supplied paths
  /// under. Clients may only name relative paths without ".." — they can
  /// never write or probe outside this directory. Empty disables the two
  /// verbs entirely (they answer bad_request).
  std::string snapshot_dir = ".";
};

class Server {
 public:
  /// Serves Registry::instance().
  explicit Server(ServerOptions opts);
  /// Serves a specific registry (tests use local registries).
  Server(ServerOptions opts, const api::Registry& registry);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one protocol line and returns the response line (no trailing
  /// '\n'). Never throws for request-level failures — those become
  /// {"ok":false,...} lines; only programming errors propagate.
  std::string handle_line(std::string_view line);

  /// True once a shutdown request was handled (or request_stop() called).
  bool stopping() const { return stop_.load(); }

  /// The executor whose cache outlives individual requests.
  api::BatchExecutor& executor() { return executor_; }
  const ServerOptions& options() const { return opts_; }
  ServerCounters counters() const;

  /// Binds host:port and starts listening; throws std::runtime_error on
  /// failure. After this, port() returns the actually-bound port.
  void bind_and_listen();
  int port() const { return bound_port_; }

  /// Blocking accept loop; returns after a shutdown verb or request_stop().
  /// All connection threads are joined before returning.
  void serve();

  /// Thread-safe: unblocks serve() and closes open connections.
  void request_stop();

 private:
  /// One accepted connection. The handler thread flips `done` as its last
  /// act; the fd stays open until the owner (reap/drain) joins and closes —
  /// never closed concurrently with request_stop()'s shutdown(2).
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void handle_connection(Connection* conn);
  /// Joins and frees finished connections (called from the accept loop, so
  /// a long-lived server does not accumulate one dead thread per client).
  void reap_finished_locked();
  /// Validates a client-supplied snapshot path and resolves it under
  /// opts_.snapshot_dir; throws ProtocolError on traversal attempts.
  std::string resolve_snapshot_path(const std::string& path) const;

  ServerOptions opts_;
  const api::Registry& registry_;
  api::BatchExecutor executor_;

  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  int bound_port_ = 0;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> graphs_solved_{0};

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace lmds::server
