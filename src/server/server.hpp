#pragma once
// The long-lived serving front-end: one Server owns one ServerCore (executor
// + response cache + graph store, see session.hpp) and exposes it over two
// transports at once — the newline-delimited JSON line protocol and the
// HTTP/1.1 front-end (http.hpp) — each on its own TCP listener.
//
// Layering:
//   * ServerCore / Session (session.hpp) are the socket-free protocol core —
//     one request in, one response out. All protocol tests drive them
//     directly; Server::handle_line remains as the one-liner over an
//     internal admin Session.
//   * bind_and_listen()/serve() add the POSIX socket loop: poll() across
//     the listeners, one thread per connection (the executor is reentrant;
//     concurrent connections share the response cache and graph store), a
//     shutdown verb or request_stop() unblocks the loop and drains the
//     connection threads. Accepts beyond max_connections are answered with
//     a server_busy error (503 over HTTP) and closed, never threaded.
//
// Cache persistence: the save_cache/load_cache verbs snapshot the executor's
// ResponseCache (ResponseCache::serialize/deserialize), and lmds_serve's
// --snapshot flag loads the file at startup / saves it on shutdown — a
// restarted server answers a replayed batch from cache (asserted in
// tests/test_server.cpp and the CI smoke step).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "server/protocol.hpp"
#include "server/session.hpp"

namespace lmds::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;       ///< line protocol; 0 = ephemeral (read back via port())
  int http_port = -1; ///< HTTP front-end; -1 disables it, 0 = ephemeral
  /// Concurrent connections across both transports; accepts beyond the cap
  /// are rejected with server_busy instead of spawning a thread.
  std::size_t max_connections = 256;
  /// Everything transport-independent (executor tuning, limits, graph-store
  /// capacity, snapshot dir) lives in the embedded CoreOptions — one set of
  /// defaults, shared with tests that build a ServerCore directly.
  CoreOptions core;
};

class Server {
 public:
  /// Serves Registry::instance().
  explicit Server(ServerOptions opts);
  /// Serves a specific registry (tests use local registries).
  Server(ServerOptions opts, const api::Registry& registry);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one protocol line and returns the response line (no trailing
  /// '\n'). Stateless — a fresh Session per call, safe from any thread;
  /// hold a Session over core() instead when open_session state matters.
  /// Never throws for request-level failures.
  std::string handle_line(std::string_view line);

  /// True once a shutdown request was handled (or request_stop() called).
  bool stopping() const { return core_.stopping(); }

  /// The shared protocol core (executor, graph store, counters, limits).
  ServerCore& core() { return core_; }
  /// The executor whose cache outlives individual requests.
  api::BatchExecutor& executor() { return core_.executor(); }
  const ServerOptions& options() const { return opts_; }
  ServerCounters counters() const { return core_.counters(); }

  /// Binds the line-protocol listener (and the HTTP one when
  /// options().http_port >= 0); throws std::runtime_error on failure. After
  /// this, port()/http_port() return the actually-bound ports.
  void bind_and_listen();
  int port() const { return bound_port_; }
  int http_port() const { return bound_http_port_; }

  /// Blocking accept loop over both listeners; returns after a shutdown
  /// verb or request_stop(). All connection threads are joined first.
  void serve();

  /// Thread-safe: unblocks serve() and closes open connections.
  void request_stop();

 private:
  /// One accepted connection. The handler thread flips `done` as its last
  /// act; the fd stays open until the owner (reap/drain) joins and closes —
  /// never closed concurrently with request_stop()'s shutdown(2).
  struct Connection {
    int fd = -1;
    bool http = false;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Binds host:port, returns {fd, bound_port}.
  std::pair<int, int> bind_one(int port) const;
  void handle_connection(Connection* conn);
  void serve_line_connection(int fd);
  void serve_http_connection(int fd);
  /// Joins and frees finished connections (called from the accept loop, so
  /// a long-lived server does not accumulate one dead thread per client).
  /// Returns the number of connections still live.
  std::size_t reap_finished_locked() LMDS_REQUIRES(conn_mu_);

  ServerOptions opts_;
  ServerCore core_;

  // Written by bind_and_listen() before serve() spawns any thread, then
  // only read (the stop callback's shutdown(2) and the destructor's close)
  // — the thread-creation happens-before edge covers them, no lock needed.
  int listen_fd_ = -1;
  int http_listen_fd_ = -1;
  int bound_port_ = 0;
  int bound_http_port_ = -1;

  common::Mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> conns_ LMDS_GUARDED_BY(conn_mu_);
};

}  // namespace lmds::server
