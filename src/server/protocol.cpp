#include "server/protocol.hpp"

#include <limits>

#include "graph/builder.hpp"

namespace lmds::server {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::UnknownSolver: return "unknown_solver";
    case ErrorCode::UnknownHandle: return "unknown_handle";
    case ErrorCode::SolverFailure: return "solver_failure";
    case ErrorCode::IoError: return "io_error";
    case ErrorCode::ServerBusy: return "server_busy";
  }
  return "?";
}

namespace {

[[noreturn]] void bad_request(const std::string& what) {
  throw ProtocolError(ErrorCode::BadRequest, what);
}

int int_field(const JsonValue& v, std::string_view what) {
  std::int64_t value = 0;
  try {
    value = v.as_int();
  } catch (const JsonError& e) {
    bad_request(std::string(what) + ": " + e.what());
  }
  if (value < std::numeric_limits<int>::min() || value > std::numeric_limits<int>::max()) {
    bad_request(std::string(what) + ": " + std::to_string(value) + " out of int range");
  }
  return static_cast<int>(value);
}

}  // namespace

graph::Graph decode_graph(const JsonValue& v, const ServerLimits& limits) {
  if (v.type() != JsonValue::Type::Object) bad_request("graph must be an object");
  const JsonValue* edges = v.find("edges");
  if (!edges) bad_request("graph has no \"edges\" array");
  if (edges->type() != JsonValue::Type::Array) bad_request("\"edges\" must be an array");

  int declared_n = -1;
  if (const JsonValue* n = v.find("n")) {
    declared_n = int_field(*n, "graph \"n\"");
    if (declared_n < 0) bad_request("graph \"n\" must be >= 0");
    if (declared_n > limits.max_graph_vertices) {
      bad_request("graph too large: n=" + std::to_string(declared_n) + " exceeds limit " +
                  std::to_string(limits.max_graph_vertices));
    }
  }

  graph::GraphBuilder builder(declared_n >= 0 ? declared_n : 0);
  for (const JsonValue& e : edges->as_array()) {
    if (e.type() != JsonValue::Type::Array || e.as_array().size() != 2) {
      bad_request("each edge must be a [u, v] pair");
    }
    const int u = int_field(e.as_array()[0], "edge endpoint");
    const int w = int_field(e.as_array()[1], "edge endpoint");
    if (u < 0 || w < 0) bad_request("edge endpoints must be >= 0");
    const int hi = std::max(u, w);
    if (declared_n >= 0 && hi >= declared_n) {
      bad_request("edge endpoint " + std::to_string(hi) + " outside [0, n=" +
                  std::to_string(declared_n) + ")");
    }
    if (hi >= limits.max_graph_vertices) {
      bad_request("graph too large: endpoint " + std::to_string(hi) + " exceeds limit " +
                  std::to_string(limits.max_graph_vertices));
    }
    if (u == w) bad_request("self-loop at vertex " + std::to_string(u));
    builder.add_edge(u, w);
  }
  return builder.build();
}

graph::GraphPatch decode_patch(const JsonValue& root, const ServerLimits& limits) {
  graph::GraphPatch patch;
  const auto decode_edits = [&](const char* field, std::vector<graph::Edge>& out_edges) {
    const JsonValue* list = root.find(field);
    if (!list) return false;
    if (list->type() != JsonValue::Type::Array) {
      bad_request("patch \"" + std::string(field) + "\" must be an array of [u, v] pairs");
    }
    for (const JsonValue& e : list->as_array()) {
      if (e.type() != JsonValue::Type::Array || e.as_array().size() != 2) {
        bad_request("each patch edge must be a [u, v] pair");
      }
      const int u = int_field(e.as_array()[0], "patch edge endpoint");
      const int w = int_field(e.as_array()[1], "patch edge endpoint");
      if (u < 0 || w < 0) bad_request("patch edge endpoints must be >= 0");
      if (u == w) {
        bad_request("patch self-loop at vertex " + std::to_string(u) + " in \"" +
                    std::string(field) + "\"");
      }
      if (std::max(u, w) >= limits.max_graph_vertices) {
        bad_request("patch too large: endpoint " + std::to_string(std::max(u, w)) +
                    " exceeds limit " + std::to_string(limits.max_graph_vertices));
      }
      out_edges.push_back({std::min(u, w), std::max(u, w)});
    }
    return true;
  };
  bool any = decode_edits("add", patch.add);
  any = decode_edits("del", patch.del) || any;
  if (const JsonValue* n = root.find("n")) {
    any = true;
    patch.n = int_field(*n, "patch \"n\"");
    if (patch.n < 0) bad_request("patch \"n\" must be >= 0");
    if (patch.n > limits.max_graph_vertices) {
      bad_request("patch too large: n=" + std::to_string(patch.n) + " exceeds limit " +
                  std::to_string(limits.max_graph_vertices));
    }
  }
  if (!any) bad_request("patch_graph needs at least one of \"add\", \"del\", \"n\"");
  return patch;
}

std::string decode_namespace(const JsonValue& v, const ServerLimits& limits) {
  if (v.type() != JsonValue::Type::String) bad_request("\"namespace\" must be a string");
  const std::string& ns = v.as_string();
  if (ns.size() > limits.max_namespace_bytes) {
    bad_request("namespace too long: " + std::to_string(ns.size()) + " bytes exceeds limit " +
                std::to_string(limits.max_namespace_bytes));
  }
  for (const char c : ns) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7F) {
      bad_request("namespace must not contain control characters");
    }
  }
  return ns;
}

SolveRequest decode_solve(const JsonValue& root, const api::Registry& registry,
                          const ServerLimits& limits) {
  SolveRequest out;
  const JsonValue* solver = root.find("solver");
  if (!solver || solver->type() != JsonValue::Type::String) {
    bad_request("solve request needs a string \"solver\" field");
  }
  out.solver = solver->as_string();
  if (!registry.find(out.solver)) {
    throw ProtocolError(ErrorCode::UnknownSolver,
                        "unknown solver '" + out.solver + "' (try {\"op\":\"solvers\"})");
  }

  if (const JsonValue* options = root.find("options")) {
    if (options->type() != JsonValue::Type::Object) {
      bad_request("\"options\" must be an object");
    }
    for (const auto& [name, value] : options->as_object()) {
      switch (value.type()) {
        case JsonValue::Type::Bool: out.request.options[name] = value.as_bool(); break;
        case JsonValue::Type::Int:
          out.request.options[name] = int_field(value, "option \"" + name + "\"");
          break;
        case JsonValue::Type::Double: out.request.options[name] = value.as_double(); break;
        default:
          bad_request("option \"" + name + "\" must be a number or bool, got " +
                      std::string(to_string(value.type())));
      }
    }
  }
  if (const JsonValue* flag = root.find("measure_traffic")) {
    if (flag->type() != JsonValue::Type::Bool) bad_request("\"measure_traffic\" must be a bool");
    out.request.measure_traffic = flag->as_bool();
  }
  if (const JsonValue* flag = root.find("measure_ratio")) {
    if (flag->type() != JsonValue::Type::Bool) bad_request("\"measure_ratio\" must be a bool");
    out.request.measure_ratio = flag->as_bool();
  }

  // Per-request executor overrides (protocol v2). Limits are enforced here,
  // at decode time, so a rejected override never reaches the worker pool.
  if (const JsonValue* batch = root.find("batch")) {
    if (batch->type() != JsonValue::Type::Object) bad_request("\"batch\" must be an object");
    for (const auto& [name, value] : batch->as_object()) {
      if (name == "threads") {
        const int threads = int_field(value, "batch \"threads\"");
        if (threads < 1 || threads > limits.max_request_threads) {
          bad_request("batch \"threads\" must be in [1, " +
                      std::to_string(limits.max_request_threads) + "]");
        }
        out.overrides.threads = threads;
      } else if (name == "intra_threads") {
        const int intra = int_field(value, "batch \"intra_threads\"");
        if (intra < 1 || intra > limits.max_request_threads) {
          bad_request("batch \"intra_threads\" must be in [1, " +
                      std::to_string(limits.max_request_threads) + "]");
        }
        out.overrides.intra_graph_threads = intra;
      } else if (name == "shard_size") {
        const int shard = int_field(value, "batch \"shard_size\"");
        if (shard < 1 || shard > (1 << 20)) {
          bad_request("batch \"shard_size\" must be in [1, 1048576]");
        }
        out.overrides.shard_size = shard;
      } else if (name == "no_cache") {
        if (value.type() != JsonValue::Type::Bool) {
          bad_request("batch \"no_cache\" must be a bool");
        }
        out.overrides.bypass_cache = value.as_bool();
      } else {
        bad_request("unknown batch override \"" + name +
                    "\" (expected threads, intra_threads, shard_size, no_cache)");
      }
    }
  }
  if (const JsonValue* ns = root.find("namespace")) {
    out.ns = decode_namespace(*ns, limits);
  }

  const JsonValue* graphs = root.find("graphs");
  if (!graphs || graphs->type() != JsonValue::Type::Array) {
    bad_request("solve request needs a \"graphs\" array");
  }
  if (graphs->as_array().size() > limits.max_batch_graphs) {
    bad_request("batch too large: " + std::to_string(graphs->as_array().size()) +
                " graphs exceeds limit " + std::to_string(limits.max_batch_graphs));
  }
  out.graphs.reserve(graphs->as_array().size());
  for (const JsonValue& g : graphs->as_array()) {
    if (g.type() == JsonValue::Type::String) {
      // v2: a graph-store handle. Shape-check now so an obvious typo fails
      // as bad_request, not as a handle that could never exist.
      const std::string& handle = g.as_string();
      if (!api::GraphStore::parse_handle(handle)) {
        bad_request("\"" + handle +
                    "\" is not a graph handle (expected \"g\" + 16 hex digits)");
      }
      out.graphs.emplace_back(handle);
    } else {
      out.graphs.emplace_back(decode_graph(g, limits));
    }
  }
  return out;
}

std::string encode_graph_json(const graph::Graph& g) {
  std::string out = "{\"n\":" + std::to_string(g.num_vertices()) + ",\"edges\":[";
  bool first = true;
  for (const auto& [u, v] : g.edges()) {
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
  }
  out += "]}";
  return out;
}

std::string encode_patch_members(const graph::GraphPatch& patch) {
  const auto append_edges = [](std::string& out, const std::vector<graph::Edge>& edges) {
    out += '[';
    bool first = true;
    for (const auto& [u, v] : edges) {
      if (!first) out += ',';
      first = false;
      out += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
    }
    out += ']';
  };
  std::string out = "\"add\":";
  append_edges(out, patch.add);
  out += ",\"del\":";
  append_edges(out, patch.del);
  if (patch.n >= 0) out += ",\"n\":" + std::to_string(patch.n);
  return out;
}

std::string encode_error(ErrorCode code, std::string_view message) {
  std::string out = "{\"ok\":false,\"code\":";
  json_append_string(out, to_string(code));
  out += ",\"error\":";
  json_append_string(out, message);
  out += '}';
  return out;
}

namespace {

void append_vertices(std::string& out, const std::vector<api::Vertex>& vs) {
  out += '[';
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(vs[i]);
  }
  out += ']';
}

void append_response(std::string& out, const api::Response& r) {
  out += "{\"solver\":";
  json_append_string(out, r.solver);
  out += ",\"problem\":";
  json_append_string(out, to_string(r.problem));
  out += ",\"solution\":";
  append_vertices(out, r.solution);
  out += ",\"valid\":";
  out += r.valid ? "true" : "false";
  out += ",\"rounds\":";
  out += std::to_string(r.diag.rounds);
  if (r.diag.traffic_measured) {
    out += ",\"traffic\":{\"rounds\":" + std::to_string(r.diag.traffic.rounds) +
           ",\"messages\":" + std::to_string(r.diag.traffic.messages) +
           ",\"bytes\":" + std::to_string(r.diag.traffic.bytes) + '}';
  }
  if (r.ratio_measured) {
    out += ",\"ratio\":{\"solution_size\":" + std::to_string(r.ratio.solution_size) +
           ",\"reference\":" + std::to_string(r.ratio.reference) + ",\"exact\":";
    out += r.ratio.exact ? "true" : "false";
    out += ",\"ratio\":";
    json_append_double(out, r.ratio.ratio);
    out += '}';
  }
  out += '}';
}

// Everything after the "responses" array — shared by the local and the
// routed (raw-splice) encoder so the two cannot drift: a routed line's tail
// is byte-for-byte the tail a single server would emit for the same merged
// diagnostics.
void append_solve_tail(std::string& out, const api::BatchDiagnostics& diag,
                       std::string_view ns) {
  out += "],";
  if (!ns.empty()) {
    // Echoed so a client multiplexing namespaces can match responses; absent
    // for the default namespace, keeping v1 responses byte-identical.
    out += "\"namespace\":";
    json_append_string(out, ns);
    out += ',';
  }
  out += "\"diag\":{\"threads\":" + std::to_string(diag.threads);
  if (diag.intra_threads > 1) {
    // Emitted only when intra-graph sharding was actually on — keeps every
    // single-threaded response line byte-identical to pre-intra clients.
    out += ",\"intra_threads\":" + std::to_string(diag.intra_threads);
  }
  out += ",\"shards\":" + std::to_string(diag.shards) +
         ",\"stolen_shards\":" + std::to_string(diag.stolen_shards) +
         ",\"cache_hits\":" + std::to_string(diag.cache_hits) +
         ",\"cache_misses\":" + std::to_string(diag.cache_misses) +
         ",\"cache_evictions\":" + std::to_string(diag.cache_evictions);
  if (diag.incremental_solves || diag.incremental_fallbacks) {
    // Only for batches that actually carried lineage — keeps every pre-v2.1
    // response line byte-identical.
    out += ",\"incremental_solves\":" + std::to_string(diag.incremental_solves) +
           ",\"incremental_fallbacks\":" + std::to_string(diag.incremental_fallbacks) +
           ",\"incremental_dirty\":" + std::to_string(diag.incremental_dirty);
  }
  out += "}}";
}

}  // namespace

std::string encode_solve_result(std::span<const api::Response> responses,
                                const api::BatchDiagnostics& diag, std::string_view ns) {
  std::string out = "{\"ok\":true,\"op\":\"solve\",\"responses\":[";
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (i) out += ',';
    append_response(out, responses[i]);
  }
  append_solve_tail(out, diag, ns);
  return out;
}

std::string encode_solve_result_raw(std::span<const std::string_view> raw_responses,
                                    const api::BatchDiagnostics& diag,
                                    std::string_view ns) {
  std::string out = "{\"ok\":true,\"op\":\"solve\",\"responses\":[";
  for (std::size_t i = 0; i < raw_responses.size(); ++i) {
    if (i) out += ',';
    out += raw_responses[i];
  }
  append_solve_tail(out, diag, ns);
  return out;
}

std::string encode_solvers(const api::Registry& registry) {
  std::string out = "{\"ok\":true,\"op\":\"solvers\",\"solvers\":[";
  bool first_spec = true;
  for (const api::SolverSpec* spec : registry.specs()) {
    if (!first_spec) out += ',';
    first_spec = false;
    out += "{\"name\":";
    json_append_string(out, spec->name);
    out += ",\"problem\":";
    json_append_string(out, to_string(spec->problem));
    out += ",\"modes\":[";
    for (std::size_t i = 0; i < spec->modes.size(); ++i) {
      if (i) out += ',';
      json_append_string(out, to_string(spec->modes[i]));
    }
    out += "],\"summary\":";
    json_append_string(out, spec->summary);
    out += ",\"params\":[";
    for (std::size_t i = 0; i < spec->params.size(); ++i) {
      const api::ParamSpec& p = spec->params[i];
      if (i) out += ',';
      out += "{\"name\":";
      json_append_string(out, p.name);
      out += ",\"type\":";
      json_append_string(out, to_string(p.type()));
      out += ",\"default\":";
      switch (p.type()) {
        case api::ParamValue::Type::Int:
          out += std::to_string(p.default_value.as_int());
          break;
        case api::ParamValue::Type::Bool:
          out += p.default_value.as_bool() ? "true" : "false";
          break;
        case api::ParamValue::Type::Double:
          json_append_double(out, p.default_value.as_double());
          break;
      }
      out += ",\"description\":";
      json_append_string(out, p.description);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string encode_stats(const api::CacheStats& cache,
                         const std::map<std::string, api::NamespaceStats>& namespaces,
                         const api::GraphStoreStats& store,
                         const api::ExecutorHealth& executor, const ServerCounters& server,
                         double uptime_seconds) {
  std::string out = "{\"ok\":true,\"op\":\"stats\",\"cache\":{\"hits\":" +
                    std::to_string(cache.hits) + ",\"misses\":" + std::to_string(cache.misses) +
                    ",\"evictions\":" + std::to_string(cache.evictions) +
                    ",\"size\":" + std::to_string(cache.size) +
                    ",\"capacity\":" + std::to_string(cache.capacity) + "}";
  out += ",\"namespaces\":{";
  bool first = true;
  for (const auto& [ns, s] : namespaces) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, ns);  // "" is the default namespace
    out += ":{\"hits\":" + std::to_string(s.hits) + ",\"misses\":" + std::to_string(s.misses) +
           ",\"evictions\":" + std::to_string(s.evictions) +
           ",\"size\":" + std::to_string(s.size) + "}";
  }
  out += "},\"store\":{\"graphs\":" + std::to_string(store.size) +
         ",\"pinned\":" + std::to_string(store.pinned) +
         ",\"capacity\":" + std::to_string(store.capacity) +
         ",\"puts\":" + std::to_string(store.puts) +
         ",\"patches\":" + std::to_string(store.patches) +
         ",\"reuses\":" + std::to_string(store.reuses) +
         ",\"drops\":" + std::to_string(store.drops) +
         ",\"evictions\":" + std::to_string(store.evictions);
  // Multi-tenancy visibility (pin leases + namespace byte accounting).
  // Emitted only when the feature left a trace, so every stats line from a
  // server not using leases/quotas stays byte-identical to before.
  if (store.lease_expiries) {
    out += ",\"lease_expiries\":" + std::to_string(store.lease_expiries);
  }
  if (store.quota_rejections) {
    out += ",\"quota_rejections\":" + std::to_string(store.quota_rejections);
  }
  if (!store.namespace_bytes.empty()) {
    out += ",\"namespace_bytes\":{";
    bool first_ns = true;
    for (const auto& [ns, bytes] : store.namespace_bytes) {
      if (!first_ns) out += ',';
      first_ns = false;
      json_append_string(out, ns);
      out += ':' + std::to_string(bytes);
    }
    out += '}';
  }
  if (!store.session_pins.empty()) {
    out += ",\"session_pins\":{";
    bool first_session = true;
    for (const auto& [session, pins] : store.session_pins) {
      if (!first_session) out += ',';
      first_session = false;
      // Session ids are numeric but JSON keys are strings; 0 is the shared
      // (anonymous, legacy) session.
      json_append_string(out, std::to_string(session));
      out += ':' + std::to_string(pins);
    }
    out += '}';
  }
  out += "}";
  out += ",\"executor\":{\"batches_started\":" + std::to_string(executor.batches_started) +
         ",\"batches_in_flight\":" + std::to_string(executor.batches_in_flight) +
         ",\"shards_executed\":" + std::to_string(executor.shards_executed) +
         ",\"solves_served\":" + std::to_string(executor.solves_served) + "}";
  out += ",\"server\":{\"connections\":" + std::to_string(server.connections) +
         ",\"rejected_connections\":" + std::to_string(server.rejected) +
         ",\"requests\":" + std::to_string(server.requests) +
         ",\"graphs_solved\":" + std::to_string(server.graphs_solved) +
         ",\"uptime_seconds\":";
  json_append_double(out, uptime_seconds);
  out += "}}";
  return out;
}

std::string encode_ok(std::string_view op, std::string_view extra_members) {
  std::string out = "{\"ok\":true,\"op\":";
  json_append_string(out, op);
  if (!extra_members.empty()) {
    out += ',';
    out += extra_members;
  }
  out += '}';
  return out;
}

}  // namespace lmds::server
