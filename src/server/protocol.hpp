#pragma once
// The lmds_serve wire protocol: newline-delimited JSON, one request object
// per line in, one response object per line out.
//
// Solve request:
//   {"op":"solve","solver":"algorithm1",
//    "options":{"t":5,"twin_removal":true},          // optional
//    "measure_traffic":false,"measure_ratio":true,   // optional, default false
//    "graphs":[{"n":4,"edges":[[0,1],[1,2]]}, ...]}  // edge-list graphs
//
// Admin requests:
//   {"op":"solvers"}                  registry enumeration
//   {"op":"stats"}                    cache + server counters
//   {"op":"save_cache","path":"f"}    snapshot the response cache to disk
//   {"op":"load_cache","path":"f"}    warm the response cache from disk
//   {"op":"shutdown"}                 stop accepting, drain, exit
//
// Responses: {"ok":true,"op":...,...} on success;
// {"ok":false,"code":"bad_request"|"unknown_solver"|"solver_failure"|
//  "io_error","error":"message"} on failure. A solve response carries one
// entry per input graph plus the batch's executor diagnostics:
//   {"ok":true,"op":"solve","responses":[{"solver":..,"problem":"mds",
//    "solution":[..],"valid":true,"rounds":..,
//    "traffic":{..}?,"ratio":{..}?}, ...],
//    "diag":{"threads":..,"shards":..,"stolen_shards":..,"cache_hits":..,
//            "cache_misses":..,"cache_evictions":..}}
//
// This header is socket-free: parsing/encoding is pure string work, so
// tests/test_server.cpp exercises the whole protocol without a network.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "graph/graph.hpp"
#include "server/json.hpp"

namespace lmds::server {

/// Wire-visible failure classes; the `code` field of an error line.
enum class ErrorCode { BadRequest, UnknownSolver, SolverFailure, IoError };

std::string_view to_string(ErrorCode code);

/// Thrown by the decode helpers; the serving loop turns it into an error
/// line via encode_error(code(), what()).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Request-size guard rails, enforced before any solver runs. Defaults are
/// deliberately generous; lmds_serve exposes them as flags.
struct ServerLimits {
  std::size_t max_line_bytes = 8u << 20;  ///< one request line, newline included
  int max_graph_vertices = 1'000'000;     ///< per decoded graph
  std::size_t max_batch_graphs = 10'000;  ///< graphs per solve request
};

/// A decoded solve request: the solver name, the request shape (options +
/// flags; Request::graph stays null — batch entry points take the spans) and
/// the decoded graphs.
struct SolveRequest {
  std::string solver;
  api::Request request;
  std::vector<graph::Graph> graphs;
};

/// Decodes {"n":int?,"edges":[[u,v],...]} into a Graph. `n` is optional —
/// absent, it becomes max endpoint + 1. Throws ProtocolError(BadRequest) on
/// a malformed shape, an endpoint outside [0, n), a self-loop, or n beyond
/// limits.max_graph_vertices.
graph::Graph decode_graph(const JsonValue& v, const ServerLimits& limits);

/// Decodes a parsed {"op":"solve",...} object. Validates the solver name
/// against `registry` (UnknownSolver) and every option value's JSON type
/// (BadRequest; int/bool/double map onto ParamValue, coercion rules are the
/// registry's). Does not run anything.
SolveRequest decode_solve(const JsonValue& root, const api::Registry& registry,
                          const ServerLimits& limits);

/// One error line (no trailing newline), e.g.
/// {"ok":false,"code":"bad_request","error":"..."}.
std::string encode_error(ErrorCode code, std::string_view message);

/// The solve success line: responses[i] answers graphs[i].
std::string encode_solve_result(std::span<const api::Response> responses,
                                const api::BatchDiagnostics& diag);

/// The solvers success line: every registered SolverSpec with params.
std::string encode_solvers(const api::Registry& registry);

/// Lifetime counters a `stats` line reports next to the cache's.
struct ServerCounters {
  std::uint64_t connections = 0;  ///< connections accepted
  std::uint64_t requests = 0;     ///< request lines handled (any op)
  std::uint64_t graphs_solved = 0;  ///< graphs answered across solve ops
};

/// The stats success line.
std::string encode_stats(const api::CacheStats& cache, const ServerCounters& server);

/// Generic {"ok":true,"op":<op>} line with optional extra fields appended
/// verbatim (must be valid JSON object members, e.g. "\"entries\":3").
std::string encode_ok(std::string_view op, std::string_view extra_members = {});

}  // namespace lmds::server
