#pragma once
// The lmds_serve wire protocol (v2): newline-delimited JSON over TCP, one
// request object per line in, one response object per line out; the same
// verbs are also reachable over the HTTP front-end (src/server/http.hpp).
//
// Solve request (v2 — graphs may be inline edge lists *or* store handles):
//   {"op":"solve","solver":"algorithm1",
//    "options":{"t":5,"twin_removal":true},          // optional
//    "measure_traffic":false,"measure_ratio":true,   // optional, default false
//    "batch":{"threads":2,"shard_size":8,            // optional per-request
//             "no_cache":false},                     //   executor overrides
//    "namespace":"tenant-a",                         // optional cache namespace
//    "graphs":[{"n":4,"edges":[[0,1],[1,2]]},        // v1 inline edge list
//              "g00e1f2a3b4c5d6e7"]}                 // v2 graph-store handle
//
// A request whose graphs are all inline edge lists and that names no v2
// field is exactly the v1 protocol and is answered unchanged — v1 clients
// keep working against a v2 server.
//
// Graph-store requests:
//   {"op":"put_graph","graph":{"n":4,"edges":[[0,1]]}}   -> {"handle":...}
//   {"op":"drop_graph","handle":"g00e1..."}
//
// Dynamic graphs (v2.1): a batch of edge edits against a stored handle
// yields a new content-addressed handle (HTTP: POST /v2/graphs/<h>/patch
// with the add/del/n object as the body):
//   {"op":"patch_graph","handle":"g00e1...",
//    "add":[[0,3],[2,5]],"del":[[0,1]],"n":8}    // all three optional,
//                                                // at least one required
//   -> {"ok":true,"op":"patch_graph","handle":"g7c2...","parent":"g00e1...",
//       "n":8,"m":13,"new":true}                 // "new":false = the child
//                                                // already existed (re-pin)
// The child structurally shares unchanged adjacency with its parent and
// records its lineage, so a solve against it with a LOCAL solver is answered
// incrementally (ball-granular re-solve; see api/executor.hpp). The edits
// must be consistent: no self-loops, no duplicates, added edges absent,
// deleted edges present, n only grows — anything else is a bad_request.
//
// Session requests:
//   {"op":"open_session","namespace":"tenant-a"}  select this connection's
//                                                 default cache namespace
//
// Admin requests:
//   {"op":"solvers"}                  registry enumeration
//   {"op":"stats"}                    cache (global + per-namespace), graph
//                                     store (incl. per-namespace bytes and
//                                     per-session pin-lease counts when any
//                                     exist), server counters, uptime
//   {"op":"save_cache","path":"f"}    snapshot the response cache to disk
//   {"op":"load_cache","path":"f"}    warm the response cache from disk
//   {"op":"shutdown"}                 stop accepting, drain, exit
//
// Cluster replication (src/cluster/replication.hpp builds the payloads):
//   {"op":"replicate_out"}            export this server's graph store +
//                                     cache snapshot as an inline payload
//                                     (HTTP: GET /v2/replicate)
//   {"op":"replicate_out","peer":"host:port"}   push the payload to a peer's
//                                     replicate_in (HTTP: POST
//                                     /v2/replicate/push)
//   {"op":"replicate_in","graphs":[...],"cache":"<base64>"}   install a
//                                     payload: graphs land unpinned, cache
//                                     entries merge without evicting local
//                                     ones (HTTP: POST /v2/replicate)
//
// Responses: {"ok":true,"op":...,...} on success;
// {"ok":false,"code":"bad_request"|"unknown_solver"|"unknown_handle"|
//  "solver_failure"|"io_error"|"server_busy","error":"message"} on failure.
// A solve response carries one entry per input graph plus the batch's
// executor diagnostics:
//   {"ok":true,"op":"solve","responses":[{"solver":..,"problem":"mds",
//    "solution":[..],"valid":true,"rounds":..,
//    "traffic":{..}?,"ratio":{..}?}, ...],
//    "namespace":"tenant-a",   // only when non-default
//    "diag":{"threads":..,"shards":..,"stolen_shards":..,"cache_hits":..,
//            "cache_misses":..,"cache_evictions":..,
//            "incremental_solves":..,"incremental_fallbacks":..,   // only when
//            "incremental_dirty":..}}                              // nonzero
//
// This header is socket-free: parsing/encoding is pure string work, so
// tests/test_server.cpp exercises the whole protocol without a network.

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "api/executor.hpp"
#include "api/graph_store.hpp"
#include "api/registry.hpp"
#include "graph/graph.hpp"
#include "server/json.hpp"

namespace lmds::server {

/// Wire-visible failure classes; the `code` field of an error line.
enum class ErrorCode {
  BadRequest,
  UnknownSolver,
  UnknownHandle,
  SolverFailure,
  IoError,
  ServerBusy,
};

std::string_view to_string(ErrorCode code);

/// Thrown by the decode helpers; the serving loop turns it into an error
/// line via encode_error(code(), what()).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Request-size guard rails, enforced before any solver runs. Defaults are
/// deliberately generous; lmds_serve exposes them as flags.
struct ServerLimits {
  std::size_t max_line_bytes = 8u << 20;  ///< one request line / HTTP body
  int max_graph_vertices = 1'000'000;     ///< per decoded graph
  std::size_t max_batch_graphs = 10'000;  ///< graphs per solve request
  int max_request_threads = 64;           ///< cap on a per-request threads override
  std::size_t max_namespace_bytes = 128;  ///< cap on a namespace tag
  /// Multi-tenant quotas (0 = unlimited, the historical behavior).
  std::uint64_t max_namespace_store_bytes = 0;  ///< approx graph-store bytes
                                                ///< one namespace may hold;
                                                ///< exceeding = server_busy
  int max_namespace_inflight = 0;  ///< concurrent solve requests one
                                   ///< namespace may have in flight;
                                   ///< exceeding = server_busy (admission
                                   ///< control, never a queue)
};

/// One entry of a solve request's "graphs" array: an inline edge-list graph
/// (v1) or a graph-store handle (v2).
using GraphRef = std::variant<graph::Graph, std::string>;

/// A decoded solve request: the solver name, the request shape (options +
/// flags; Request::graph stays null — batch entry points take the spans),
/// the graph references in request order, the per-request executor
/// overrides (threads / shard_size / no_cache; the cache namespace is
/// filled in by the Session from `ns` or its open_session state).
struct SolveRequest {
  std::string solver;
  api::Request request;
  std::vector<GraphRef> graphs;
  api::BatchOverrides overrides;
  std::optional<std::string> ns;  ///< request-level namespace override
};

/// Decodes {"n":int?,"edges":[[u,v],...]} into a Graph. `n` is optional —
/// absent, it becomes max endpoint + 1. Throws ProtocolError(BadRequest) on
/// a malformed shape, an endpoint outside [0, n), a self-loop, or n beyond
/// limits.max_graph_vertices.
graph::Graph decode_graph(const JsonValue& v, const ServerLimits& limits);

/// The client-side inverse of decode_graph: encodes a Graph as the wire's
/// {"n":..,"edges":[[u,v],...]} object (serve_client, benches — one encoder,
/// so clients cannot drift from the protocol).
std::string encode_graph_json(const graph::Graph& g);

/// Decodes the edit fields of a patch_graph request — "add"/"del" arrays of
/// [u,v] pairs plus an optional "n" — against the same size limits
/// decode_graph enforces. Shape problems (non-pair entries, negative or
/// over-limit endpoints, self-loops, every field absent) throw
/// ProtocolError(BadRequest) here; edit consistency against the actual
/// parent graph (duplicates, absent deletes, already-present adds) is
/// graph::apply_patch's job at execution time.
graph::GraphPatch decode_patch(const JsonValue& root, const ServerLimits& limits);

/// The client-side inverse of decode_patch: the edit fields as JSON object
/// *members* without braces (`"add":[[0,3]],"del":[],"n":8`), so the line
/// protocol can splice them next to "op"/"handle" and the HTTP front-end can
/// wrap them as a POST body (server::ProtocolClient::patch_graph does both).
std::string encode_patch_members(const graph::GraphPatch& patch);

/// Decodes a parsed {"op":"solve",...} object. Validates the solver name
/// against `registry` (UnknownSolver), every option value's JSON type
/// (BadRequest; int/bool/double map onto ParamValue, coercion rules are the
/// registry's), the per-request "batch" overrides against `limits`, and the
/// namespace tag. Handles are validated for shape only — resolution against
/// the store happens at execution time. Does not run anything.
SolveRequest decode_solve(const JsonValue& root, const api::Registry& registry,
                          const ServerLimits& limits);

/// Validates a namespace tag: at most limits.max_namespace_bytes bytes, no
/// control characters. Returns it; throws ProtocolError(BadRequest) else.
std::string decode_namespace(const JsonValue& v, const ServerLimits& limits);

/// One error line (no trailing newline), e.g.
/// {"ok":false,"code":"bad_request","error":"..."}.
std::string encode_error(ErrorCode code, std::string_view message);

/// The solve success line: responses[i] answers graphs[i]. A non-empty `ns`
/// is echoed as a "namespace" member (absent for the default namespace, so
/// v1 responses are byte-identical to before namespaces existed).
std::string encode_solve_result(std::span<const api::Response> responses,
                                const api::BatchDiagnostics& diag,
                                std::string_view ns = {});

/// The router's variant: each element of `raw_responses` is the *verbatim
/// text* of one already-encoded response object, spliced into the
/// "responses" array unreparsed. This is what makes a routed batch
/// bit-identical to a single-server solve — re-encoding parsed JSON would
/// reorder object keys (JsonValue::Object is a sorted map).
std::string encode_solve_result_raw(std::span<const std::string_view> raw_responses,
                                    const api::BatchDiagnostics& diag,
                                    std::string_view ns = {});

/// The solvers success line: every registered SolverSpec with params.
std::string encode_solvers(const api::Registry& registry);

/// Lifetime counters a `stats` line reports next to the cache's.
struct ServerCounters {
  std::uint64_t connections = 0;  ///< connections accepted and served
  std::uint64_t rejected = 0;     ///< connections refused by --max-connections
  std::uint64_t requests = 0;     ///< request lines handled (any op)
  std::uint64_t graphs_solved = 0;  ///< graphs answered across solve ops
};

/// The stats success line: global cache counters, the per-namespace slices,
/// graph-store counters, executor health (batches started / in flight,
/// shards executed, solves served — api::ExecutorHealth), server counters
/// and uptime.
std::string encode_stats(const api::CacheStats& cache,
                         const std::map<std::string, api::NamespaceStats>& namespaces,
                         const api::GraphStoreStats& store,
                         const api::ExecutorHealth& executor, const ServerCounters& server,
                         double uptime_seconds);

/// Generic {"ok":true,"op":<op>} line with optional extra fields appended
/// verbatim (must be valid JSON object members, e.g. "\"entries\":3").
std::string encode_ok(std::string_view op, std::string_view extra_members = {});

}  // namespace lmds::server
